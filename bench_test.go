// Package repro's root benchmarks map one testing.B benchmark to each table
// and figure of the paper's evaluation (Section IV). Every benchmark
// iteration runs the figure's workload on the simulated cluster and reports
// the *virtual* collective runtime as the custom metric "virtual-us/op"
// (the number the paper plots); the wall-clock ns/op measures the simulator
// itself. Quick shapes keep `go test -bench=.` under a few minutes; the
// full paper-scale sweeps live in cmd/pipmcoll-bench -full, with results
// recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/fabric"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// benchSpec runs one measurement per b.N iteration and reports the virtual
// runtime metric.
func benchSpec(b *testing.B, spec bench.Spec) {
	b.Helper()
	var virtual float64
	for i := 0; i < b.N; i++ {
		m, err := bench.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		virtual = m.MeanMicros()
	}
	b.ReportMetric(virtual, "virtual-us/op")
}

// benchFigure sweeps a figure's series (libraries) at representative points.
func benchFigure(b *testing.B, op bench.Op, nodes, ppn int, sizes []int, ls []*libs.Library) {
	b.Helper()
	for _, size := range sizes {
		for _, l := range ls {
			b.Run(fmt.Sprintf("%s/%dB", l.Name(), size), func(b *testing.B) {
				benchSpec(b, bench.Spec{Lib: l, Op: op, Nodes: nodes, PPN: ppn,
					Bytes: size, Warmup: 1, Iters: 1})
			})
		}
	}
}

func pipPair() []*libs.Library { return []*libs.Library{libs.PiPMPICH(), libs.PiPMColl()} }

// BenchmarkFig1MessageRate regenerates Figure 1a: message rate at 4 kB for
// increasing sender/receiver pair counts.
func BenchmarkFig1MessageRate(b *testing.B) {
	for _, k := range []int{1, 4, 18} {
		b.Run(fmt.Sprintf("pairs%d", k), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate, _ = bench.FloodRates(k, 200, 4<<10, fabric.DefaultParams())
			}
			b.ReportMetric(rate/1e6, "Mmsg/s")
		})
	}
}

// BenchmarkFig1Throughput regenerates Figure 1b: throughput at 128 kB.
func BenchmarkFig1Throughput(b *testing.B) {
	for _, k := range []int{1, 4, 18} {
		b.Run(fmt.Sprintf("pairs%d", k), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				_, bw = bench.FloodRates(k, 50, 128<<10, fabric.DefaultParams())
			}
			b.ReportMetric(bw/1e9, "GB/s")
		})
	}
}

// BenchmarkFig6Scatter regenerates Figure 6: scatter scalability, baseline
// vs PiP-MColl at 16 B and 1 kB.
func BenchmarkFig6Scatter(b *testing.B) {
	benchFigure(b, bench.OpScatter, 8, 6, []int{16, 1 << 10}, pipPair())
}

// BenchmarkFig7Allgather regenerates Figure 7: allgather scalability.
func BenchmarkFig7Allgather(b *testing.B) {
	benchFigure(b, bench.OpAllgather, 8, 6, []int{16, 1 << 10}, pipPair())
}

// BenchmarkFig8Allreduce regenerates Figure 8: allreduce scalability at 16
// and 1k doubles.
func BenchmarkFig8Allreduce(b *testing.B) {
	benchFigure(b, bench.OpAllreduce, 8, 6, []int{16 * 8, 1024 * 8}, pipPair())
}

// BenchmarkFig9ScatterSmall regenerates Figure 9: small-message scatter
// across all five libraries.
func BenchmarkFig9ScatterSmall(b *testing.B) {
	benchFigure(b, bench.OpScatter, 16, 6, []int{16, 256, 1 << 10}, libs.All())
}

// BenchmarkFig10AllgatherSmall regenerates Figure 10: small-message
// allgather across all five libraries.
func BenchmarkFig10AllgatherSmall(b *testing.B) {
	benchFigure(b, bench.OpAllgather, 16, 6, []int{16, 64, 512}, libs.All())
}

// BenchmarkFig11AllreduceSmall regenerates Figure 11: small-count allreduce
// across all five libraries.
func BenchmarkFig11AllreduceSmall(b *testing.B) {
	benchFigure(b, bench.OpAllreduce, 16, 6, []int{2 * 8, 32 * 8, 64 * 8}, libs.All())
}

// BenchmarkFig12ScatterLarge regenerates Figure 12: medium/large scatter.
func BenchmarkFig12ScatterLarge(b *testing.B) {
	benchFigure(b, bench.OpScatter, 8, 4, []int{1 << 10, 64 << 10, 512 << 10}, libs.All())
}

// BenchmarkFig13AllgatherLarge regenerates Figure 13: medium/large
// allgather including the PiP-MColl-small ablation (the 64 kB switch).
func BenchmarkFig13AllgatherLarge(b *testing.B) {
	ls := append(libs.All(), libs.PiPMCollSmall())
	benchFigure(b, bench.OpAllgather, 8, 4, []int{4 << 10, 64 << 10, 256 << 10}, ls)
}

// BenchmarkFig14AllreduceLarge regenerates Figure 14: medium/large
// allreduce including the PiP-MColl-small ablation (the 8k-count switch).
func BenchmarkFig14AllreduceLarge(b *testing.B) {
	ls := append(libs.All(), libs.PiPMCollSmall())
	benchFigure(b, bench.OpAllreduce, 8, 6, []int{1024 * 8, 16384 * 8, 262144 * 8}, ls)
}

// BenchmarkAblationOverlap quantifies DESIGN.md ablation 2: the PiP-MColl
// large allgather (overlapped intranode broadcast) against the same
// algorithm forced through the small path (no overlap) at one size.
func BenchmarkAblationOverlap(b *testing.B) {
	for _, l := range []*libs.Library{libs.PiPMColl(), libs.PiPMCollSmall()} {
		b.Run(l.Name(), func(b *testing.B) {
			benchSpec(b, bench.Spec{Lib: l, Op: bench.OpAllgather,
				Nodes: 8, PPN: 4, Bytes: 128 << 10, Warmup: 1, Iters: 1})
		})
	}
}

// BenchmarkAblationTransport quantifies DESIGN.md ablation 4: identical
// flat algorithms over each intranode mechanism.
func BenchmarkAblationTransport(b *testing.B) {
	for _, l := range []*libs.Library{libs.PiPMPICH(), libs.OpenMPI()} {
		b.Run(l.Name(), func(b *testing.B) {
			benchSpec(b, bench.Spec{Lib: l, Op: bench.OpAllreduce,
				Nodes: 4, PPN: 4, Bytes: 64 << 10, Warmup: 1, Iters: 1})
		})
	}
}

// benchApp times a mini-application end to end on a fresh 4x4 world per
// iteration, reporting the virtual makespan.
func benchApp(b *testing.B, l *libs.Library, body func(*mpi.Rank)) {
	b.Helper()
	var virtual float64
	for i := 0; i < b.N; i++ {
		world := mpi.MustNewWorld(topology.New(4, 4, topology.Block), l.Config())
		if err := world.Run(body); err != nil {
			b.Fatal(err)
		}
		virtual = simtime.Duration(world.Horizon()).Microseconds()
	}
	b.ReportMetric(virtual, "virtual-us/op")
}

// BenchmarkAppE5 runs each mini-application end to end under PiP-MColl and
// the PiP-MPICH baseline — the extension experiment E5's headline points.
func BenchmarkAppE5(b *testing.B) {
	for _, l := range pipPair() {
		l := l
		b.Run("CG/"+l.Name(), func(b *testing.B) {
			benchApp(b, l, func(r *mpi.Rank) { apps.CG(r, l, 1600, 40) })
		})
		b.Run("KMeans/"+l.Name(), func(b *testing.B) {
			benchApp(b, l, func(r *mpi.Rank) { apps.KMeans(r, l, 300, 8, 6, 8) })
		})
		b.Run("SampleSort/"+l.Name(), func(b *testing.B) {
			benchApp(b, l, func(r *mpi.Rank) { apps.SampleSort(r, 1024) })
		})
		b.Run("Jacobi/"+l.Name(), func(b *testing.B) {
			benchApp(b, l, func(r *mpi.Rank) { apps.Jacobi2D(r, l, 128, 20) })
		})
	}
}
