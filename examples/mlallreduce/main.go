// mlallreduce models the communication pattern of data-parallel deep
// learning — the workload class the paper's introduction motivates (SCaffe,
// TensorFlow-over-MPI): every training step, all ranks average a gradient
// vector with MPI_Allreduce. The example runs a short synthetic training
// loop per library, layer by layer (a mix of small bias vectors and large
// weight tensors, so both allreduce algorithms are exercised), and prints
// the virtual time each library spends communicating per step.
//
//	go run ./examples/mlallreduce
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// layer is one parameter tensor of the synthetic model.
type layer struct {
	name  string
	elems int
}

// A small MLP-like model: large weight matrices, tiny biases.
var model = []layer{
	{"fc1.weight", 64 * 1024},
	{"fc1.bias", 64},
	{"fc2.weight", 128 * 1024},
	{"fc2.bias", 128},
	{"head.weight", 8 * 1024},
	{"head.bias", 16},
}

func main() {
	const (
		nodes = 8
		ppn   = 6
		steps = 3
	)
	cluster := topology.New(nodes, ppn, topology.Block)
	fmt.Printf("data-parallel training on %v, %d steps, %d layers\n\n", cluster, steps, len(model))
	fmt.Printf("%-12s %16s %16s\n", "library", "comm/step", "total comm")

	for _, lib := range []*libs.Library{libs.IntelMPI(), libs.OpenMPI(), libs.MVAPICH2(), libs.PiPMPICH(), libs.PiPMColl()} {
		world, err := mpi.NewWorld(cluster, lib.Config())
		if err != nil {
			log.Fatal(err)
		}
		var total simtime.Duration
		err = world.Run(func(r *mpi.Rank) {
			// Per-layer gradient buffers, filled with a deterministic
			// pattern standing in for backprop output.
			grads := make([][]byte, len(model))
			sums := make([][]byte, len(model))
			for i, l := range model {
				grads[i] = make([]byte, l.elems*nums.F64Size)
				sums[i] = make([]byte, l.elems*nums.F64Size)
				nums.Fill(grads[i], r.Rank()+i)
			}
			for step := 0; step < steps; step++ {
				// "Compute": charge a fixed backprop time so the
				// communication overlaps realistically with
				// slightly skewed arrival (stragglers).
				r.Proc().Advance(simtime.Micros(50 + float64(r.Rank()%5)))

				r.HarnessBarrier()
				start := r.Now()
				for i := range model {
					lib.Allreduce(r, grads[i], sums[i], nums.Sum)
				}
				r.HarnessBarrier()
				if r.Rank() == 0 {
					total += r.Now().Sub(start)
				}
			}
			// Spot-check the last layer's average on every rank.
			size := float64(r.Size())
			want := 0.0
			for k := 0; k < r.Size(); k++ {
				want += nums.PatternValue(k+len(model)-1, 0)
			}
			if got := nums.F64At(sums[len(model)-1], 0); got != want {
				log.Fatalf("rank %d: gradient sum %v, want %v (size %v)", r.Rank(), got, want, size)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %16v %16v\n", lib.Name(), total/steps, total)
	}
	fmt.Println("\n(gradient averaging verified on every rank)")

	overlapDemo(cluster)
}

// overlapDemo contrasts blocking and nonblocking gradient averaging: with
// MPI_Iallreduce, each layer's collective overlaps the next layer's
// backprop (the standard deep-learning trick), so a step costs roughly
// max(compute, comm) instead of compute + comm.
func overlapDemo(cluster *topology.Cluster) {
	fmt.Println("\noverlap: blocking vs nonblocking PiP-MColl allreduce")
	for _, async := range []bool{false, true} {
		world, err := mpi.NewWorld(cluster, libs.PiPMColl().Config())
		if err != nil {
			log.Fatal(err)
		}
		cl := core.Coll{}
		err = world.Run(func(r *mpi.Rank) {
			grads := make([][]byte, len(model))
			sums := make([][]byte, len(model))
			for i, l := range model {
				grads[i] = make([]byte, l.elems*nums.F64Size)
				sums[i] = make([]byte, l.elems*nums.F64Size)
				nums.Fill(grads[i], r.Rank()+i)
			}
			perLayerCompute := simtime.Micros(120)
			if async {
				// Backprop layer by layer; each finished layer's
				// allreduce rides a helper while the next layer
				// computes.
				var ops []*mpi.AsyncOp
				for i := range model {
					r.Proc().Advance(perLayerCompute)
					ops = append(ops, cl.IAllreduce(r, grads[i], sums[i], nums.Sum))
				}
				for _, op := range ops {
					op.Wait(r)
				}
			} else {
				for i := range model {
					r.Proc().Advance(perLayerCompute)
					cl.Allreduce(r, grads[i], sums[i], nums.Sum)
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		mode := "blocking "
		if async {
			mode = "iallreduce"
		}
		fmt.Printf("  %s step: %v\n", mode, simtime.Duration(world.Horizon()))
	}
}
