// apps runs the three miniature HPC applications (conjugate gradient,
// k-means, sample sort) end to end on the simulated cluster and compares
// the communication-bound runtimes across libraries — the closest the
// repository gets to the application-level wins the paper's introduction
// promises.
//
//	go run ./examples/apps
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/topology"
)

const (
	nodes = 4
	ppn   = 4
)

func main() {
	cluster := topology.New(nodes, ppn, topology.Block)
	fmt.Printf("mini-apps on %v\n\n", cluster)
	fmt.Printf("%-12s %14s %14s %14s %14s\n", "library", "CG(50 iters)", "kmeans(10 it)", "samplesort", "jacobi(30 it)")

	for _, lib := range []*libs.Library{libs.IntelMPI(), libs.OpenMPI(), libs.MVAPICH2(), libs.PiPMPICH(), libs.PiPMColl()} {
		times := make([]simtime.Duration, 4)
		// CG: allreduce-dominated (two dot products per iteration).
		times[0] = timed(lib, cluster, func(r *mpi.Rank) {
			res := apps.CG(r, lib, 1600, 50)
			if res.Residual > 1 {
				log.Fatalf("CG did not converge: %v", res.Residual)
			}
		})
		// K-means: one fat allreduce per iteration.
		times[1] = timed(lib, cluster, func(r *mpi.Rank) {
			apps.KMeans(r, lib, 400, 8, 6, 10)
		})
		// Sample sort: alltoallv-dominated.
		times[2] = timed(lib, cluster, func(r *mpi.Rank) {
			res := apps.SampleSort(r, 2048)
			if res.Global != cluster.Size()*2048 {
				log.Fatalf("sort lost elements: %d", res.Global)
			}
		})
		// Jacobi: halo p2p + small Max-allreduce per sweep.
		times[3] = timed(lib, cluster, func(r *mpi.Rank) {
			apps.Jacobi2D(r, lib, 128, 30)
		})
		fmt.Printf("%-12s %14v %14v %14v %14v\n", lib.Name(), times[0], times[1], times[2], times[3])
	}
	fmt.Println("\n(CG residuals, k-means centroids and sort order verified in-simulation)")
}

// timed runs body on a fresh world and returns the virtual makespan.
func timed(lib *libs.Library, cluster *topology.Cluster, body func(*mpi.Rank)) simtime.Duration {
	world, err := mpi.NewWorld(cluster, lib.Config())
	if err != nil {
		log.Fatal(err)
	}
	if err := world.Run(body); err != nil {
		log.Fatal(err)
	}
	return simtime.Duration(world.Horizon())
}
