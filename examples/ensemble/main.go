// ensemble demonstrates communicators: an ensemble of models trains in
// parallel, each on its own sub-communicator carved with MPI_Comm_split.
// Every step, members of one ensemble group average their gradients with a
// group-local allreduce (baseline algorithms over the comm view), then the
// group leaders exchange ensemble statistics over a leaders-only
// communicator. Disjoint groups communicate concurrently without
// interfering — the tag-window isolation the communicator layer provides.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"log"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

const (
	nodes    = 4
	ppn      = 4
	groups   = 4 // ensemble members
	gradDim  = 4096
	steps    = 3
	groupDim = gradDim * nums.F64Size
)

func main() {
	cluster := topology.New(nodes, ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, mpi.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	size := cluster.Size()
	perGroup := size / groups
	fmt.Printf("ensemble of %d models on %v (%d ranks each), %d steps\n\n",
		groups, cluster, perGroup, steps)

	var makespan simtime.Time
	err = world.Run(func(r *mpi.Rank) {
		me := r.Rank()
		group := me % groups // round-robin over groups mixes nodes
		gc := mpi.WorldComm(r).Split(group, me)
		gv := coll.CommView(gc)

		// Leaders communicator: group index 0 of each group.
		leaderColor := mpi.Undefined
		if gc.Rank() == 0 {
			leaderColor = 0
		}
		lc := mpi.WorldComm(r).Split(leaderColor, group)

		grad := make([]byte, groupDim)
		avg := make([]byte, groupDim)
		losses := make([]byte, groups*nums.F64Size)
		for step := 0; step < steps; step++ {
			// "Backprop": group- and step-dependent gradients plus a
			// compute-time skew.
			nums.Fill(grad, group*100+step)
			r.Proc().Advance(simtime.Micros(80 + float64(me%7)*3))

			// Group-local gradient averaging.
			coll.AllreduceRecDoubling(gv, grad, avg, nums.Sum)

			// Verify inside the simulation: all group members hold the
			// same vector, equal to perGroup times the pattern.
			want := nums.PatternValue(group*100+step, 0) * float64(perGroup)
			if got := nums.F64At(avg, 0); got != want {
				log.Fatalf("rank %d group %d step %d: avg[0]=%v want %v", me, group, step, got, want)
			}

			// Leaders exchange a per-group scalar (the "loss") so every
			// group can see ensemble progress.
			if lc != nil {
				mine := make([]byte, nums.F64Size)
				nums.SetF64At(mine, 0, float64(1000*group+step))
				coll.AllgatherBruck(coll.CommView(lc), mine, losses)
				for g := 0; g < groups; g++ {
					if got := nums.F64At(losses, g); got != float64(1000*g+step) {
						log.Fatalf("leader of group %d: loss[%d]=%v", group, g, got)
					}
				}
			}
			// Leaders broadcast the ensemble stats into their group.
			coll.Bcast(gv, 0, losses)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	makespan = world.Horizon()
	fmt.Printf("all %d groups trained concurrently; ensemble stats verified everywhere\n", groups)
	fmt.Printf("virtual makespan: %v\n", makespan)
}
