// Quickstart: build an 8-node simulated cluster with 6 processes per node
// through the public pipmcoll package, run one MPI_Allreduce through
// PiP-MColl and through the PiP-MPICH baseline, verify both results, and
// print the virtual runtimes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pipmcoll"
)

func main() {
	const (
		nodes = 8
		ppn   = 6
		elems = 1024 // one float64 vector per process
	)
	cluster := pipmcoll.NewCluster(nodes, ppn)
	fmt.Printf("cluster: %v\n\n", cluster)

	for _, name := range []string{"PiP-MPICH", "PiP-MColl"} {
		lib, err := pipmcoll.LibraryByName(name)
		if err != nil {
			log.Fatal(err)
		}
		world, err := pipmcoll.NewWorld(cluster, lib.Config())
		if err != nil {
			log.Fatal(err)
		}
		var elapsedUS float64
		err = world.Run(func(r *pipmcoll.Rank) {
			// Every rank contributes the vector [rank, rank, ...];
			// the sum at index i is size*(size-1)/2 everywhere.
			send := make([]byte, elems*8)
			for i := 0; i < elems; i++ {
				pipmcoll.SetFloat64At(send, i, float64(r.Rank()))
			}
			recv := make([]byte, len(send))

			r.HarnessBarrier()
			start := r.Now()
			lib.Allreduce(r, send, recv, pipmcoll.Sum)
			r.HarnessBarrier()
			if r.Rank() == 0 {
				elapsedUS = r.Now().Sub(start).Microseconds()
			}

			want := float64(r.Size()*(r.Size()-1)) / 2
			for i := 0; i < elems; i++ {
				if got := pipmcoll.Float64At(recv, i); got != want {
					log.Fatalf("rank %d: recv[%d] = %v, want %v", r.Rank(), i, got, want)
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s allreduce of %d doubles x %d ranks: %.4gus (verified)\n",
			lib.Name(), elems, cluster.Size(), elapsedUS)
	}
}
