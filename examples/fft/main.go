// fft models the communication of a distributed 2D FFT — the
// alltoall-dominated workload class the paper's introduction cites (impacts
// of MPI collectives on large FFT computation). The grid is distributed by
// rows; after the row-direction transform, a global transpose redistributes
// it by columns, which is exactly one MPI_Alltoall of equal blocks. The
// example runs the transpose with each library and verifies the
// redistributed grid element-by-element.
//
//	go run ./examples/fft
package main

import (
	"fmt"
	"log"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

const (
	nodes = 4
	ppn   = 4
)

func main() {
	cluster := topology.New(nodes, ppn, topology.Block)
	// Two grids: the small one's transpose blocks ride PiP-MColl's
	// node-aggregated path, the large one's the pairwise exchange.
	for _, grid := range []int{128, 1024} {
		transpose(cluster, grid)
	}
	fmt.Println("(transposed grids verified element-by-element on every rank)")
}

func transpose(cluster *topology.Cluster, grid int) {
	size := cluster.Size()
	rows := grid / size // rows per rank before transpose
	fmt.Printf("2D FFT transpose of a %dx%d grid on %v (%d rows/rank)\n", grid, grid, cluster, rows)
	fmt.Printf("%-12s %14s\n", "library", "transpose")

	for _, lib := range libs.All() {
		world, err := mpi.NewWorld(cluster, lib.Config())
		if err != nil {
			log.Fatal(err)
		}
		var elapsed simtime.Duration
		err = world.Run(func(r *mpi.Rank) {
			me := r.Rank()
			// Local slab: rows [me*rows, (me+1)*rows), each row holding
			// grid doubles; element (i,j) = 1e6*i + j.
			slab := make([]byte, rows*grid*nums.F64Size)
			for i := 0; i < rows; i++ {
				for j := 0; j < grid; j++ {
					nums.SetF64At(slab, i*grid+j, float64((me*rows+i))*1e6+float64(j))
				}
			}
			// Pack for alltoall: the block for rank q holds my rows'
			// columns [q*rows, (q+1)*rows) — rows x rows doubles.
			block := rows * rows * nums.F64Size
			send := make([]byte, size*block)
			for q := 0; q < size; q++ {
				for i := 0; i < rows; i++ {
					for j := 0; j < rows; j++ {
						v := nums.F64At(slab, i*grid+q*rows+j)
						nums.SetF64At(send[q*block:], i*rows+j, v)
					}
				}
			}
			recv := make([]byte, size*block)
			r.HarnessBarrier()
			start := r.Now()
			lib.Alltoall(r, send, recv)
			r.HarnessBarrier()
			if me == 0 {
				elapsed = r.Now().Sub(start)
			}
			// After the transpose this rank owns columns
			// [me*rows, (me+1)*rows): verify every element.
			for q := 0; q < size; q++ {
				for i := 0; i < rows; i++ { // row index within source q
					for j := 0; j < rows; j++ { // my column offset
						got := nums.F64At(recv[q*block:], i*rows+j)
						globalRow := q*rows + i
						globalCol := me*rows + j
						want := float64(globalRow)*1e6 + float64(globalCol)
						if got != want {
							log.Fatalf("rank %d: element (%d,%d) = %v, want %v",
								me, globalRow, globalCol, got, want)
						}
					}
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14v\n", lib.Name(), elapsed)
	}
	fmt.Println()
}
