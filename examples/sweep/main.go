// sweep runs all three collectives across a message-size ladder for every
// library profile and prints where PiP-MColl's advantage peaks and where
// its size-based algorithm switches land — a compact, runnable version of
// the paper's Figures 9-14 story.
//
//	go run ./examples/sweep
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/libs"
)

func main() {
	const nodes, ppn = 8, 4
	sizes := []int{64, 512, 4 << 10, 32 << 10, 128 << 10}
	ls := append(libs.All(), libs.PiPMCollSmall())

	for _, op := range []bench.Op{bench.OpScatter, bench.OpAllgather, bench.OpAllreduce} {
		fmt.Printf("=== %s on %dx%d (mean virtual µs; best per row marked *)\n", op, nodes, ppn)
		fmt.Printf("%-8s", "size")
		for _, l := range ls {
			fmt.Printf(" %15s", l.Name())
		}
		fmt.Println()
		for _, size := range sizes {
			fmt.Printf("%-8s", label(size))
			best := -1.0
			times := make([]float64, len(ls))
			for i, l := range ls {
				m := bench.MustRun(bench.Spec{Lib: l, Op: op, Nodes: nodes,
					PPN: ppn, Bytes: size, Warmup: 1, Iters: 2})
				times[i] = m.MeanMicros()
				if best < 0 || times[i] < best {
					best = times[i]
				}
			}
			for _, tm := range times {
				mark := " "
				if tm == best {
					mark = "*"
				}
				fmt.Printf(" %14.4g%s", tm, mark)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func label(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%dkB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
