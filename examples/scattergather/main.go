// scattergather models a master/worker domain decomposition — the pattern
// behind parallel accelerator tracking codes like Pelegant that the paper's
// introduction cites: a root rank scatters particle blocks to all workers,
// each worker advances its particles locally, and an allgather reassembles
// the full phase-space on every rank for the next collective step.
//
//	go run ./examples/scattergather
package main

import (
	"fmt"
	"log"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

const (
	nodes          = 8
	ppn            = 4
	particlesEach  = 512 // particles per rank
	bytesParticle  = 16  // (position, momentum) as two float64s
	turns          = 4   // tracking turns
	computePerTurn = 120 // µs of local particle pushing per turn
)

func main() {
	cluster := topology.New(nodes, ppn, topology.Block)
	size := cluster.Size()
	chunk := particlesEach * bytesParticle
	fmt.Printf("particle tracking on %v: %d particles, %d turns\n\n",
		cluster, size*particlesEach, turns)
	fmt.Printf("%-12s %14s %14s %14s\n", "library", "scatter", "allgather/turn", "total")

	for _, lib := range []*libs.Library{libs.PiPMPICH(), libs.MVAPICH2(), libs.PiPMColl()} {
		world, err := mpi.NewWorld(cluster, lib.Config())
		if err != nil {
			log.Fatal(err)
		}
		var scatterTime, gatherTime simtime.Duration
		err = world.Run(func(r *mpi.Rank) {
			// The root owns the initial beam: particle j of rank i's
			// block carries (1000*i + j) in its first coordinate.
			var beam []byte
			if r.Rank() == 0 {
				beam = make([]byte, size*chunk)
				for i := 0; i < size; i++ {
					for j := 0; j < particlesEach; j++ {
						off := i*chunk + j*bytesParticle
						nums.SetF64At(beam[off:], 0, float64(1000*i+j))
						nums.SetF64At(beam[off:], 1, 0) // momentum
					}
				}
			}
			mine := make([]byte, chunk)
			r.HarnessBarrier()
			t0 := r.Now()
			lib.Scatter(r, 0, beam, mine)
			r.HarnessBarrier()
			if r.Rank() == 0 {
				scatterTime = r.Now().Sub(t0)
			}

			full := make([]byte, size*chunk)
			for turn := 0; turn < turns; turn++ {
				// Push particles: advance the momentum coordinate.
				r.Proc().Advance(simtime.Micros(computePerTurn))
				for j := 0; j < particlesEach; j++ {
					off := j * bytesParticle
					nums.SetF64At(mine[off:], 1, nums.F64At(mine[off:], 1)+1)
				}
				r.HarnessBarrier()
				t := r.Now()
				lib.Allgather(r, mine, full)
				r.HarnessBarrier()
				if r.Rank() == 0 {
					gatherTime += r.Now().Sub(t)
				}
			}

			// Verify: every rank sees every particle with the right
			// identity and momentum == turns.
			for i := 0; i < size; i++ {
				for j := 0; j < particlesEach; j += 97 {
					off := i*chunk + j*bytesParticle
					if id := nums.F64At(full[off:], 0); id != float64(1000*i+j) {
						log.Fatalf("rank %d: particle (%d,%d) id %v", r.Rank(), i, j, id)
					}
					if p := nums.F64At(full[off:], 1); p != turns {
						log.Fatalf("rank %d: particle (%d,%d) momentum %v, want %d", r.Rank(), i, j, p, turns)
					}
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14v %14v %14v\n",
			lib.Name(), scatterTime, gatherTime/turns, scatterTime+gatherTime)
	}
	fmt.Println("\n(full phase-space verified on every rank after every run)")
}
