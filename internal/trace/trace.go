// Package trace records simulation events — point-to-point sends and
// receives with their virtual timestamps — for debugging, validation, and
// communication-volume accounting. The MPI layer emits events when a tracer
// is attached to the world; analysis helpers aggregate volumes and check
// causality invariants (every receive at or after its matching send).
package trace

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/simtime"
)

// Kind labels an event.
type Kind int

// Event kinds emitted by the runtime.
const (
	KindSend Kind = iota
	KindRecv
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Kind      Kind
	At        simtime.Time
	Src, Dst  int // world ranks
	Tag       int
	Bytes     int
	Intranode bool
}

// String formats the event compactly.
func (e Event) String() string {
	where := "inter"
	if e.Intranode {
		where = "intra"
	}
	return fmt.Sprintf("%v %s %d->%d tag=%d %dB (%s)", e.At, e.Kind, e.Src, e.Dst, e.Tag, e.Bytes, where)
}

// Log is an append-only event recorder with ring-buffer retention. Within
// one simulation the engine serializes recording processes, but logs are
// also read from test goroutines and shared across concurrently-run worlds
// (the bench runner runs cells in parallel), so all methods lock.
type Log struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// NewLog returns a recorder keeping at most limit events (0 = unbounded).
//
// The limit is a ring-buffer bound on *retention*, not on recording: every
// Record succeeds, and once limit events are held each new event evicts the
// oldest one. Aggregations over a saturated log (Volume, CheckCausality)
// therefore describe only the trailing window — in particular CheckCausality
// can report a false "recv without send" when the matching send was evicted.
// Use limit 0 when completeness matters more than memory.
func NewLog(limit int) *Log { return &Log{limit: limit} }

// Record appends an event, dropping the oldest beyond the limit.
func (l *Log) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit > 0 && len(l.events) == l.limit {
		copy(l.events, l.events[1:])
		l.events[len(l.events)-1] = e
		return
	}
	l.events = append(l.events, e)
}

// Events returns a copy of the recorded events in order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards all events; the limit is retained.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = l.events[:0]
}

// snapshot returns the events under the lock, for the aggregation helpers.
func (l *Log) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Volume sums payload bytes by event kind and locality.
type Volume struct {
	SendsIntra, SendsInter int64
	BytesIntra, BytesInter int64
}

// Volume aggregates the send events.
func (l *Log) Volume() Volume {
	var v Volume
	for _, e := range l.snapshot() {
		if e.Kind != KindSend {
			continue
		}
		if e.Intranode {
			v.SendsIntra++
			v.BytesIntra += int64(e.Bytes)
		} else {
			v.SendsInter++
			v.BytesInter += int64(e.Bytes)
		}
	}
	return v
}

// CheckCausality verifies that every receive happens at or after a matching
// send (same src, dst, tag, size) that has not already been consumed, and
// returns a description of the first violation, or "".
func (l *Log) CheckCausality() string {
	type key struct {
		src, dst, tag, bytes int
	}
	pending := map[key][]simtime.Time{}
	for _, e := range l.snapshot() {
		k := key{e.Src, e.Dst, e.Tag, e.Bytes}
		switch e.Kind {
		case KindSend:
			pending[k] = append(pending[k], e.At)
		case KindRecv:
			times := pending[k]
			if len(times) == 0 {
				return fmt.Sprintf("recv without send: %v", e)
			}
			if e.At < times[0] {
				return fmt.Sprintf("recv %v before send at %v", e, times[0])
			}
			pending[k] = times[1:]
		}
	}
	return ""
}

// Format renders the log, one event per line.
func (l *Log) Format() string {
	var b strings.Builder
	for _, e := range l.snapshot() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
