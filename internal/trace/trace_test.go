package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
)

func ev(k Kind, at int64, src, dst, tag, n int, intra bool) Event {
	return Event{Kind: k, At: simtime.Time(at), Src: src, Dst: dst, Tag: tag, Bytes: n, Intranode: intra}
}

func TestRecordAndVolume(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindSend, 1, 0, 1, 7, 100, false))
	l.Record(ev(KindSend, 2, 1, 0, 7, 50, true))
	l.Record(ev(KindRecv, 3, 0, 1, 7, 100, false))
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	v := l.Volume()
	if v.SendsInter != 1 || v.BytesInter != 100 || v.SendsIntra != 1 || v.BytesIntra != 50 {
		t.Fatalf("volume = %+v", v)
	}
}

func TestRingLimit(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Record(ev(KindSend, int64(i), i, 0, 0, 1, false))
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Events()[0].Src != 3 || l.Events()[1].Src != 4 {
		t.Fatalf("retained wrong events: %v", l.Events())
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCausalityOK(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindSend, 10, 0, 1, 1, 8, false))
	l.Record(ev(KindRecv, 20, 0, 1, 1, 8, false))
	if msg := l.CheckCausality(); msg != "" {
		t.Fatalf("false violation: %s", msg)
	}
}

func TestCausalityViolations(t *testing.T) {
	orphan := NewLog(0)
	orphan.Record(ev(KindRecv, 5, 0, 1, 1, 8, false))
	if orphan.CheckCausality() == "" {
		t.Fatal("orphan recv not detected")
	}
	early := NewLog(0)
	early.Record(ev(KindSend, 10, 0, 1, 1, 8, false))
	early.Record(ev(KindRecv, 5, 0, 1, 1, 8, false))
	if early.CheckCausality() == "" {
		t.Fatal("time-travelling recv not detected")
	}
}

func TestFormatAndStrings(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindSend, 1000, 2, 3, 9, 64, true))
	out := l.Format()
	for _, want := range []string{"send", "2->3", "64B", "intra", "tag=9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q: %s", want, out)
		}
	}
	if KindSend.String() != "send" || KindRecv.String() != "recv" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

// TestConcurrentRecord hammers one log from many goroutines — the bench
// runner shares logs across concurrently-run worlds — and checks nothing is
// lost (unbounded log) and the ring bound holds (limited log). Run with
// -race to make the locking claim meaningful.
func TestConcurrentRecord(t *testing.T) {
	const workers, per = 8, 500
	unbounded := NewLog(0)
	ring := NewLog(64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := ev(KindSend, int64(i), w, 0, 0, 1, false)
				unbounded.Record(e)
				ring.Record(e)
				if i%64 == 0 {
					_ = unbounded.Volume()
					_ = ring.Events()
					_ = unbounded.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := unbounded.Len(); got != workers*per {
		t.Errorf("unbounded log kept %d events, want %d", got, workers*per)
	}
	if v := unbounded.Volume(); v.SendsInter != workers*per || v.BytesInter != workers*per {
		t.Errorf("volume = %+v, want %d sends", v, workers*per)
	}
	if got := ring.Len(); got != 64 {
		t.Errorf("ring log kept %d events, want its 64-event bound", got)
	}
}

// TestEventsReturnsCopy verifies the accessor hands back a snapshot that
// later records cannot mutate.
func TestEventsReturnsCopy(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindSend, 1, 0, 1, 0, 8, false))
	snap := l.Events()
	l.Record(ev(KindRecv, 2, 0, 1, 0, 8, false))
	if len(snap) != 1 {
		t.Fatalf("snapshot grew: %v", snap)
	}
	snap[0].Src = 99
	if l.Events()[0].Src == 99 {
		t.Fatal("mutating the snapshot reached the log")
	}
}
