package trace

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func ev(k Kind, at int64, src, dst, tag, n int, intra bool) Event {
	return Event{Kind: k, At: simtime.Time(at), Src: src, Dst: dst, Tag: tag, Bytes: n, Intranode: intra}
}

func TestRecordAndVolume(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindSend, 1, 0, 1, 7, 100, false))
	l.Record(ev(KindSend, 2, 1, 0, 7, 50, true))
	l.Record(ev(KindRecv, 3, 0, 1, 7, 100, false))
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	v := l.Volume()
	if v.SendsInter != 1 || v.BytesInter != 100 || v.SendsIntra != 1 || v.BytesIntra != 50 {
		t.Fatalf("volume = %+v", v)
	}
}

func TestRingLimit(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Record(ev(KindSend, int64(i), i, 0, 0, 1, false))
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Events()[0].Src != 3 || l.Events()[1].Src != 4 {
		t.Fatalf("retained wrong events: %v", l.Events())
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCausalityOK(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindSend, 10, 0, 1, 1, 8, false))
	l.Record(ev(KindRecv, 20, 0, 1, 1, 8, false))
	if msg := l.CheckCausality(); msg != "" {
		t.Fatalf("false violation: %s", msg)
	}
}

func TestCausalityViolations(t *testing.T) {
	orphan := NewLog(0)
	orphan.Record(ev(KindRecv, 5, 0, 1, 1, 8, false))
	if orphan.CheckCausality() == "" {
		t.Fatal("orphan recv not detected")
	}
	early := NewLog(0)
	early.Record(ev(KindSend, 10, 0, 1, 1, 8, false))
	early.Record(ev(KindRecv, 5, 0, 1, 1, 8, false))
	if early.CheckCausality() == "" {
		t.Fatal("time-travelling recv not detected")
	}
}

func TestFormatAndStrings(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindSend, 1000, 2, 3, 9, 64, true))
	out := l.Format()
	for _, want := range []string{"send", "2->3", "64B", "intra", "tag=9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q: %s", want, out)
		}
	}
	if KindSend.String() != "send" || KindRecv.String() != "recv" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
