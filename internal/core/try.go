package core

import (
	"repro/internal/mpi"
	"repro/internal/nums"
)

// Try* wrappers: each runs the collective and returns nil on success, or the
// typed failure the ULFM layer detected — *mpi.ProcFailedError when a member
// of the world died before or during the operation, *mpi.RevokedError when
// the operation raced a revocation. Panics that are not ULFM failures
// (programming errors, the caller's own death) propagate unchanged.
//
// Buffer-state contract on failure: when a Try* call returns a non-nil
// error, the operation did not complete and the caller's buffers are in an
// undefined intermediate state — recv/buf may hold any mixture of old bytes,
// partial results, and data from completed phases, and send buffers may or
// may not have been read. Survivors must not interpret the buffers; the
// defined recovery is to shrink the communicator and re-run the collective
// from the original send data on the survivors (see internal/recover), which
// is exactly what ULFM specifies for collectives that raise
// MPI_ERR_PROC_FAILED.

// TryScatter is Scatter returning the ULFM failure instead of unwinding.
func (cl Coll) TryScatter(r *mpi.Rank, root int, send, recv []byte) error {
	return mpi.Try(func() { cl.Scatter(r, root, send, recv) })
}

// TryAllgather is Allgather returning the ULFM failure instead of unwinding.
func (cl Coll) TryAllgather(r *mpi.Rank, send, recv []byte) error {
	return mpi.Try(func() { cl.Allgather(r, send, recv) })
}

// TryAllreduce is Allreduce returning the ULFM failure instead of unwinding.
func (cl Coll) TryAllreduce(r *mpi.Rank, send, recv []byte, op nums.Op) error {
	return mpi.Try(func() { cl.Allreduce(r, send, recv, op) })
}

// TryAlltoall is Alltoall returning the ULFM failure instead of unwinding.
func (cl Coll) TryAlltoall(r *mpi.Rank, send, recv []byte) error {
	return mpi.Try(func() { cl.Alltoall(r, send, recv) })
}

// TryGather is Gather returning the ULFM failure instead of unwinding.
func (cl Coll) TryGather(r *mpi.Rank, root int, send, recv []byte) error {
	return mpi.Try(func() { cl.Gather(r, root, send, recv) })
}

// TryReduce is Reduce returning the ULFM failure instead of unwinding.
func (cl Coll) TryReduce(r *mpi.Rank, root int, send, recv []byte, op nums.Op) error {
	return mpi.Try(func() { cl.Reduce(r, root, send, recv, op) })
}

// TryBcast is Bcast returning the ULFM failure instead of unwinding.
func (cl Coll) TryBcast(r *mpi.Rank, root int, buf []byte) error {
	return mpi.Try(func() { cl.Bcast(r, root, buf) })
}

// TryBarrier is Barrier returning the ULFM failure instead of unwinding.
func (cl Coll) TryBarrier(r *mpi.Rank) error {
	return mpi.Try(func() { cl.Barrier(r) })
}
