package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

// Property tests: every PiP-MColl collective must be correct on arbitrary
// cluster shapes, payload sizes, and roots — the shape grid in the table
// tests plus whatever the generator invents.

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 25}
}

// randomShape derives a small but irregular cluster shape and payload.
func randomShape(seed int64) (nodes, ppn, payload, root int) {
	rng := rand.New(rand.NewSource(seed))
	nodes = 1 + rng.Intn(9)
	ppn = 1 + rng.Intn(6)
	payload = 8 * (1 + rng.Intn(64)) // 8B..512B, float64-aligned
	root = rng.Intn(nodes * ppn)
	return
}

func TestPropertyScatter(t *testing.T) {
	f := func(seed int64) bool {
		nodes, ppn, payload, root := randomShape(seed)
		size := nodes * ppn
		full := expectedGather(size, payload)
		ok := true
		w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
		err := w.Run(func(r *mpi.Rank) {
			var send []byte
			if r.Rank() == root {
				send = append([]byte(nil), full...)
			}
			recv := make([]byte, payload)
			Scatter(r, root, send, recv)
			if !bytes.Equal(recv, full[r.Rank()*payload:(r.Rank()+1)*payload]) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAllgather(t *testing.T) {
	f := func(seed int64, large bool) bool {
		nodes, ppn, payload, _ := randomShape(seed)
		size := nodes * ppn
		want := expectedGather(size, payload)
		ag := AllgatherSmall
		if large {
			ag = AllgatherLarge
		}
		ok := true
		w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
		err := w.Run(func(r *mpi.Rank) {
			send := make([]byte, payload)
			nums.FillBytes(send, r.Rank())
			recv := make([]byte, size*payload)
			ag(r, send, recv)
			if !bytes.Equal(recv, want) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAllreduce(t *testing.T) {
	f := func(seed int64, large bool) bool {
		nodes, ppn, payload, _ := randomShape(seed)
		size := nodes * ppn
		want := expectedSum(size, payload/8)
		ar := AllreduceSmall
		if large {
			ar = AllreduceLarge
		}
		ok := true
		w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
		err := w.Run(func(r *mpi.Rank) {
			send := make([]byte, payload)
			nums.Fill(send, r.Rank())
			recv := make([]byte, payload)
			ar(r, send, recv, nums.Sum)
			if !bytes.Equal(recv, want) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExtensions(t *testing.T) {
	f := func(seed int64) bool {
		nodes, ppn, payload, root := randomShape(seed)
		size := nodes * ppn
		wantGather := expectedGather(size, payload)
		wantSum := expectedSum(size, payload/8)
		ok := true
		w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
		err := w.Run(func(r *mpi.Rank) {
			cl := Coll{}
			// Bcast.
			buf := make([]byte, payload)
			if r.Rank() == root {
				nums.FillBytes(buf, 3)
			}
			cl.Bcast(r, root, buf)
			wantB := make([]byte, payload)
			nums.FillBytes(wantB, 3)
			if !bytes.Equal(buf, wantB) {
				ok = false
			}
			// Gather.
			send := make([]byte, payload)
			nums.FillBytes(send, r.Rank())
			var g []byte
			if r.Rank() == root {
				g = make([]byte, size*payload)
			}
			cl.Gather(r, root, send, g)
			if r.Rank() == root && !bytes.Equal(g, wantGather) {
				ok = false
			}
			// Reduce.
			vec := make([]byte, payload)
			nums.Fill(vec, r.Rank())
			var out []byte
			if r.Rank() == root {
				out = make([]byte, payload)
			}
			cl.Reduce(r, root, vec, out, nums.Sum)
			if r.Rank() == root && !bytes.Equal(out, wantSum) {
				ok = false
			}
			// Alltoall.
			a2aSend := make([]byte, size*payload)
			for j := 0; j < size; j++ {
				nums.FillBytes(a2aSend[j*payload:(j+1)*payload], r.Rank()*1000+j)
			}
			a2aRecv := make([]byte, size*payload)
			cl.Alltoall(r, a2aSend, a2aRecv)
			if !bytes.Equal(a2aRecv, expectedAlltoall(size, payload, r.Rank())) {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVirtualTimesDeterministic: same seed, same shape -> identical
// virtual makespan across runs (the reproducibility guarantee behind the
// zero-stddev measurements).
func TestPropertyVirtualTimesDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		run := func() int64 {
			nodes, ppn, payload, _ := randomShape(seed)
			w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
			if err := w.Run(func(r *mpi.Rank) {
				send := make([]byte, payload)
				nums.Fill(send, r.Rank())
				recv := make([]byte, payload)
				AllreduceSmall(r, send, recv, nums.Sum)
			}); err != nil {
				return -1
			}
			return int64(w.Horizon())
		}
		a := run()
		return a > 0 && a == run()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
