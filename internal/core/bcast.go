package core

import (
	"fmt"

	"repro/internal/mpi"
)

// The broadcast, gather, reduce and alltoall collectives below extend
// PiP-MColl's multi-object design beyond the paper's three evaluated
// primitives, following the same construction rules: all P processes of a
// node drive the fabric concurrently, intranode movement goes through
// posted addresses, and algorithms switch with message size. DESIGN.md
// lists them as extension experiments; they are not part of the paper's
// evaluation but follow directly from its Section III recipe.

// Bcast is the multi-object MPI_Bcast. Small payloads ride a (P+1)-ary
// node tree (each holder's P processes forward the buffer to P subtree
// head nodes in parallel, collapsing tree depth from log2 N to
// log_{P+1} N), followed by the III-C intranode broadcast. Large payloads
// use the van de Geijn composition with the paper's own building blocks:
// PiP-MColl scatter of node chunks, then the multi-object ring allgather.
func (cl Coll) Bcast(r *mpi.Rank, root int, buf []byte) {
	requireBlock(r, "bcast")
	t := cl.Tun.withDefaults()
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("core: bcast root %d outside world of %d", root, size))
	}
	if len(buf) >= t.AllgatherLargeMin && len(buf)%(size) == 0 && size > 1 {
		cl.bcastLarge(r, root, buf)
		return
	}
	bcastSmall(r, root, buf, t.IntraLargeMin)
}

// bcastSmall is the (P+1)-ary multi-object broadcast tree.
func bcastSmall(r *mpi.Rank, root int, buf []byte, intraLarge int) {
	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	c := r.Cluster()
	env := r.Env()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	rootNode := c.Node(root)
	rootLocalOnNode := c.Local(root)
	vnode := (r.Node() - rootNode + N) % N

	// The root posts its buffer; on every other node the local root will
	// post after receiving. All peers read the posted slab at the end.
	if r.Rank() == root {
		env.Post(p, epoch, r.Local(), slotMain, buf)
	}

	// Walk the same (P+1)-ary subtree schedule as Scatter, but forward
	// the whole buffer instead of slabs.
	lo, hi := 0, N
	var haveBuf []byte
	var sendReqs []*mpi.Request
	read := func(owner int) []byte {
		if haveBuf == nil {
			haveBuf = env.Read(p, epoch, owner, slotMain).([]byte)
		}
		return haveBuf
	}
	owner := 0
	if vnode == 0 {
		owner = rootLocalOnNode
	}
	ph := r.PhaseStart("internode-tree")
	for round := 0; hi-lo > 1; round++ {
		sizes, starts := splitParts(hi-lo, P+1)
		if vnode == lo {
			part := r.Local() + 1
			if sizes[part] > 0 {
				src := read(owner)
				dstV := lo + starts[part]
				dst := c.Rank((dstV+rootNode)%N, 0)
				sendReqs = append(sendReqs, r.Isend(dst, tag+round, src))
			}
			hi = lo + sizes[0]
			continue
		}
		part := partOf(vnode-lo, starts, sizes)
		recvV := lo + starts[part]
		if vnode == recvV && r.Local() == 0 {
			slab := make([]byte, len(buf))
			srcHolder := c.Rank((lo+rootNode)%N, part-1)
			r.Recv(srcHolder, tag+round, slab)
			env.Post(p, epoch, 0, slotMain, slab)
		}
		lo, hi = recvV, recvV+sizes[part]
	}

	ph.End()

	// Intranode broadcast out of the posted slab.
	ph = r.PhaseStart("intra-bcast")
	src := read(owner)
	if r.Rank() != root {
		r.Env().Shm().Memcpy(p, buf, src)
	}
	for _, q := range sendReqs {
		r.Wait(q)
	}
	ph.End()
	finish(r, epoch, &nb)
}

// bcastLarge composes the paper's own primitives (van de Geijn): scatter
// the buffer as node chunks, then allgather them back with the multi-object
// ring. len(buf) must divide evenly by the world size.
func (cl Coll) bcastLarge(r *mpi.Rank, root int, buf []byte) {
	size := r.Size()
	chunk := len(buf) / size
	piece := make([]byte, chunk)
	Scatter(r, root, buf, piece)
	AllgatherLarge(r, piece, buf)
}
