package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/nums"
)

// The auxiliary intranode collectives of Section III-C. They operate purely
// through the PiP board and direct userspace copies: no MPI point-to-point,
// no size synchronization, no kernel involvement.
//
// Each takes an epoch plus a slot base so a single collective invocation can
// run several of them without board-cell collisions (slot bases must be
// slotSpan apart).

// intraBcast broadcasts buf from local rank rootLocal to every process's
// buf. Small payloads go through a temp buffer the root publishes (root
// does not wait for readers); large payloads share the root's buffer
// directly, and the root waits until all peers have copied out (III-C).
func intraBcast(r *mpi.Rank, epoch uint64, slotBase, rootLocal int, buf []byte, largeMin int) {
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	ppn := env.PPN()
	if ppn == 1 {
		return
	}
	large := len(buf) >= largeMin
	if r.Local() == rootLocal {
		src := buf
		if !large {
			tmp := make([]byte, len(buf))
			sh.Memcpy(p, tmp, buf)
			src = tmp
		}
		env.Post(p, epoch, rootLocal, slotBase+slotBcastBuf, src)
		if large {
			env.Counter(epoch, rootLocal, slotBase+slotBcastDone).WaitGE(p, uint64(ppn-1))
		}
		return
	}
	src := env.Read(p, epoch, rootLocal, slotBase+slotBcastBuf).([]byte)
	sh.Memcpy(p, buf, src)
	if large {
		env.Counter(epoch, rootLocal, slotBase+slotBcastDone).Add(p, 1)
	}
}

// intraGather collects each process's send chunk into the root's full
// buffer at offset local*len(send): the root posts its destination address,
// every peer copies its chunk in directly, and the root waits for all
// copies (III-C). full is significant only at the root.
func intraGather(r *mpi.Rank, epoch uint64, slotBase, rootLocal int, send, full []byte) {
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	ppn := env.PPN()
	chunk := len(send)
	if r.Local() == rootLocal {
		if len(full) != ppn*chunk {
			panic(fmt.Sprintf("core: intra gather %dB full buffer for %d x %dB", len(full), ppn, chunk))
		}
		env.Post(p, epoch, rootLocal, slotBase+slotGatherBuf, full)
		sh.Memcpy(p, full[rootLocal*chunk:(rootLocal+1)*chunk], send)
		env.Counter(epoch, rootLocal, slotBase+slotGatherDone).WaitGE(p, uint64(ppn-1))
		return
	}
	dst := env.Read(p, epoch, rootLocal, slotBase+slotGatherBuf).([]byte)
	sh.Memcpy(p, dst[r.Local()*chunk:(r.Local()+1)*chunk], send)
	env.Counter(epoch, rootLocal, slotBase+slotGatherDone).Add(p, 1)
}

// intraReduce combines every process's send vector into dst at the root
// (dst significant only there). Small vectors use a binomial tree of posted
// accumulators; large vectors use the chunked-parallel reduction of Figure
// 5: every process posts its source, the root posts the destination, and
// process i reduces the i-th chunk of all P sources into the destination
// (III-C). op must be commutative.
func intraReduce(r *mpi.Rank, epoch uint64, slotBase, rootLocal int, send, dst []byte, op nums.Op, largeMin int) {
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	ppn := env.PPN()
	if r.Local() == rootLocal && len(dst) != len(send) {
		panic(fmt.Sprintf("core: intra reduce buffer mismatch %d != %d", len(dst), len(send)))
	}
	if ppn == 1 {
		sh.Memcpy(p, dst, send)
		return
	}
	if len(send) >= largeMin {
		intraReduceChunked(r, epoch, slotBase, rootLocal, send, dst, op)
		return
	}

	// Binomial tree over posted accumulators. Each non-surviving process
	// posts its accumulator; the surviving partner reads it and combines.
	rel := (r.Local() - rootLocal + ppn) % ppn
	var acc []byte
	if rel == 0 {
		acc = dst
	} else {
		acc = make([]byte, len(send))
	}
	sh.Memcpy(p, acc, send)
	level := 0
	for mask := 1; mask < ppn; mask <<= 1 {
		if rel&mask != 0 {
			env.Post(p, epoch, r.Local(), slotBase+slotReduceLevel+level, acc)
			break
		}
		if rel+mask < ppn {
			peerLocal := (r.Local() + mask) % ppn
			peerAcc := env.Read(p, epoch, peerLocal, slotBase+slotReduceLevel+level).([]byte)
			sh.Combine(p, acc, peerAcc, op)
		}
		level++
	}
}

// intraReduceChunked is the large-message intranode reduce of Figure 5.
func intraReduceChunked(r *mpi.Rank, epoch uint64, slotBase, rootLocal int, send, dst []byte, op nums.Op) {
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	ppn := env.PPN()
	elems := len(send) / nums.F64Size
	if len(send)%nums.F64Size != 0 {
		panic(fmt.Sprintf("core: intra reduce on %dB non-float64 buffer", len(send)))
	}

	// Publish: root its destination, everyone their source.
	if r.Local() == rootLocal {
		env.Post(p, epoch, rootLocal, slotBase+slotReduceDst, dst)
	}
	env.Post(p, epoch, r.Local(), slotBase+slotReduceSrc+r.Local(), send)
	root := env.Read(p, epoch, rootLocal, slotBase+slotReduceDst).([]byte)

	// Process i owns chunk i: seed it from local rank 0's source, then
	// fold the other P-1 sources in.
	lo := blockDisp(elems, ppn, r.Local()) * nums.F64Size
	hi := lo + blockCnt(elems, ppn, r.Local())*nums.F64Size
	if lo < hi {
		first := env.Read(p, epoch, 0, slotBase+slotReduceSrc+0).([]byte)
		sh.Memcpy(p, root[lo:hi], first[lo:hi])
		for l := 1; l < ppn; l++ {
			src := env.Read(p, epoch, l, slotBase+slotReduceSrc+l).([]byte)
			sh.Combine(p, root[lo:hi], src[lo:hi], op)
		}
	}
	env.Counter(epoch, rootLocal, slotBase+slotReduceDone).Add(p, 1)
	if r.Local() == rootLocal {
		env.Counter(epoch, rootLocal, slotBase+slotReduceDone).WaitGE(p, uint64(ppn))
	}
}

// blockCnt and blockDisp are the allocation-free pointwise forms of
// blockCounts: the count and displacement (in elements) of block i when
// elems elements split into blocks pieces. Hot collective paths use these
// instead of materialising the slices.
func blockCnt(elems, blocks, i int) int {
	base, extra := elems/blocks, elems%blocks
	if i < extra {
		return base + 1
	}
	return base
}

func blockDisp(elems, blocks, i int) int {
	base, extra := elems/blocks, elems%blocks
	if i < extra {
		return i*base + i
	}
	return i*base + extra
}

// blockOwner inverts blockDisp/blockCnt: which of blocks pieces contains
// element q. q must lie in [0, elems).
func blockOwner(elems, blocks, q int) int {
	base, extra := elems/blocks, elems%blocks
	if base == 0 {
		return q // blocks > elems: piece i holds exactly element i
	}
	if q < extra*(base+1) {
		return q / (base + 1)
	}
	return extra + (q-extra*(base+1))/base
}

// blockCounts splits elems elements into blocks pieces as evenly as
// possible, returning per-block counts and displacements (in elements).
func blockCounts(elems, blocks int) (cnts, disps []int) {
	cnts = make([]int, blocks)
	disps = make([]int, blocks)
	base, extra := elems/blocks, elems%blocks
	off := 0
	for i := range cnts {
		cnts[i] = base
		if i < extra {
			cnts[i]++
		}
		disps[i] = off
		off += cnts[i]
	}
	return cnts, disps
}
