// Package core implements PiP-MColl, the paper's contribution: multi-object
// interprocess MPI collectives over the Process-in-Process shared address
// space. "Multi-object" means every process of a node acts as an internode
// sender/receiver simultaneously (driving its own NIC queue), while
// intranode data movement happens through direct userspace copies via
// addresses posted on the PiP board — no per-message size synchronization,
// no kernel crossings, no bounce-buffer double copies.
//
// The package provides the three primary collectives the paper evaluates —
// Scatter, Allgather, Allreduce — with the paper's size-based algorithm
// switching, plus the auxiliary intranode collectives (bcast, gather,
// reduce) of Section III-C they are built from:
//
//   - Scatter: multi-object (P+1)-ary tree with intranode scatter
//     overlapped against the asynchronous internode sends (III-A1); the
//     same algorithm serves all message sizes.
//   - Allgather: multi-object Bruck with base P+1 for small messages
//     (III-A2); multi-object ring with overlapped intranode broadcast for
//     large messages (III-B1).
//   - Allreduce: recursive multi-object Bruck with remainder reduction for
//     small vectors (III-A3); multi-object reduce-scatter + multi-object
//     ring allgather for large vectors (III-B2).
//
// All algorithms require the Block rank layout (as the paper's testbed
// uses) and commutative reduction operators.
package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Tunables are the algorithm switch points. Zero values select
// DefaultTunables.
type Tunables struct {
	// AllgatherLargeMin is the per-process payload (bytes) at which
	// Allgather switches from the Bruck to the ring algorithm. The paper
	// switches at 64 kB (Figure 13).
	AllgatherLargeMin int
	// AllreduceLargeMin is the vector size (bytes) at which Allreduce
	// switches from the recursive Bruck to the reduce-scatter algorithm.
	// The paper switches at an 8k double count = 64 kB (Figure 14).
	AllreduceLargeMin int
	// IntraLargeMin is the payload at which the auxiliary intranode
	// bcast/reduce switch from their temp-buffer/binomial small-message
	// forms to the address-sharing/chunked large-message forms (III-C).
	IntraLargeMin int
	// AlltoallAggMax is the largest per-peer chunk for which Alltoall
	// uses node aggregation (bundling all P processes' chunks into one
	// internode message); larger chunks use the pairwise exchange, where
	// aggregation's extra pack/unpack copies no longer pay off.
	AlltoallAggMax int
}

// DefaultTunables returns the paper's switch points.
func DefaultTunables() Tunables {
	return Tunables{
		AllgatherLargeMin: 64 << 10,
		AllreduceLargeMin: 64 << 10,
		IntraLargeMin:     16 << 10,
		AlltoallAggMax:    4 << 10,
	}
}

// withDefaults fills zero fields from DefaultTunables.
func (t Tunables) withDefaults() Tunables {
	d := DefaultTunables()
	if t.AllgatherLargeMin == 0 {
		t.AllgatherLargeMin = d.AllgatherLargeMin
	}
	if t.AllreduceLargeMin == 0 {
		t.AllreduceLargeMin = d.AllreduceLargeMin
	}
	if t.IntraLargeMin == 0 {
		t.IntraLargeMin = d.IntraLargeMin
	}
	if t.AlltoallAggMax == 0 {
		t.AlltoallAggMax = d.AlltoallAggMax
	}
	return t
}

// SizeClass names the algorithm band a payload falls in under these switch
// points — the PiP-MColl component of a schedule shape key (see
// bench.ScheduleMemo). Two measurement points with equal SizeClass run the
// same algorithm; the name is descriptive, not parsed.
func (t Tunables) SizeClass(op string, bytes int) string {
	d := t.withDefaults()
	switch op {
	case "allgather":
		if bytes >= d.AllgatherLargeMin {
			return "mo-ring"
		}
		return "mo-bruck"
	case "allreduce":
		if bytes >= d.AllreduceLargeMin {
			return "mo-rsag"
		}
		return "mo-recbruck"
	case "alltoall":
		if bytes <= d.AlltoallAggMax {
			return "mo-agg"
		}
		return "mo-pairwise"
	default:
		// Scatter/bcast/gather/reduce use one two-level form whose intranode
		// phase switches at IntraLargeMin.
		if bytes >= d.IntraLargeMin {
			return "mo-2level-large"
		}
		return "mo-2level-small"
	}
}

// requireBlock panics unless the cluster uses the Block layout, which the
// paper's rank arithmetic assumes.
func requireBlock(r *mpi.Rank, opName string) {
	if r.Cluster().Layout() != topology.Block {
		panic(fmt.Sprintf("core: PiP-MColl %s requires block rank layout", opName))
	}
}

// Board slots used by the collectives. Each collective invocation owns a
// fresh epoch, so slots only need to be unique within one invocation. Slot
// ranges with a local-rank or stage component add that index to the base.
const (
	slotBcastBuf    = 0   // flag, owner = intranode root: broadcast source
	slotBcastDone   = 1   // counter, owner = intranode root: copies finished
	slotGatherBuf   = 2   // flag, owner = intranode root: gather destination
	slotGatherDone  = 3   // counter, owner = intranode root
	slotReduceDst   = 4   // flag, owner = intranode root: reduce destination
	slotReduceDone  = 5   // counter, owner = intranode root
	slotMain        = 6   // flag, owner = local root: the collective's shared buffer
	slotStageDone   = 7   // counter, owner = local root: per-stage arrivals
	slotReduceSrc   = 32  // +local: flag, each process's source buffer (large reduce)
	slotReduceLevel = 64  // +level: flag, binomial reduce accumulator posts
	slotStageSnap   = 128 // +stage: flag, allreduce-small stage snapshots
	slotA2ASend     = 256 // +local: flag, alltoall posted send buffers
	slotNodeBar     = 511 // counter, owner 0: the collective's counting barrier
	slotSpan        = 512 // stride between independent intra-op slot groups
)

// tagBase returns the invocation-private internode tag window (see coll's
// tag discipline; core shares the same epoch counter so windows never
// collide across packages).
func tagBase(epoch uint64) int { return int(epoch) << 24 }

// finish closes a collective: a final node barrier, then the local root
// frees the epoch's board cells.
func finish(r *mpi.Rank, epoch uint64, nb *nodeBar) {
	nb.wait()
	if r.Local() == 0 {
		r.Env().EndEpoch(epoch)
	}
}

// nodeBar is an epoch-scoped counting barrier over the node's local ranks.
// Unlike a shared barrier object, it lives entirely in the collective's
// board epoch, so concurrent collectives on the same node (e.g. a
// nonblocking collective overlapping a blocking one) can never cross-release
// each other. Each wait charges one intranode handoff — the per-step
// multi-object synchronization cost the paper discusses for MPI_Allreduce
// at medium sizes.
type nodeBar struct {
	r         *mpi.Rank
	c         *simtime.Counter
	ppn       int
	crossings int
}

// newNodeBarrier binds a counting barrier to the collective's epoch. It
// returns a value (not a pointer) so the barrier lives on the caller's
// stack — collectives construct one per invocation, and a heap allocation
// here shows up directly in the simulator's allocs/event budget.
func newNodeBarrier(r *mpi.Rank, epoch uint64) nodeBar {
	return nodeBar{r: r, c: r.Env().Counter(epoch, 0, slotNodeBar), ppn: r.Env().PPN()}
}

// wait blocks until every local rank has crossed this barrier as many times
// as the caller. Arrival counts are monotone, so a rank racing ahead to the
// next crossing cannot release waiters of the previous one early.
func (b *nodeBar) wait() {
	b.r.Env().Shm().Handoff(b.r.Proc())
	b.crossings++
	b.c.Add(b.r.Proc(), 1)
	b.c.WaitGE(b.r.Proc(), uint64(b.ppn*b.crossings))
}
