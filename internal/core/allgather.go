package core

import (
	"fmt"

	"repro/internal/mpi"
)

// Allgather is PiP-MColl MPI_Allgather with the paper's size switch: the
// multi-object Bruck algorithm below Tun.AllgatherLargeMin bytes per
// process, the multi-object ring with overlapped intranode broadcast at or
// above it (Figure 13 switches at 64 kB).
func (cl Coll) Allgather(r *mpi.Rank, send, recv []byte) {
	if len(send) >= cl.Tun.withDefaults().AllgatherLargeMin {
		AllgatherLarge(r, send, recv)
	} else {
		AllgatherSmall(r, send, recv)
	}
}

// AllgatherSmall is the small-message PiP-MColl allgather (III-A2): an
// intranode gather into the local root's buffer, a multi-object Bruck
// exchange over node slabs with base P+1 (every process drives its own NIC
// queue with a distinct node offset), a remainder step for non-powers of
// P+1, a local re-shift into rank order, and an intranode broadcast of the
// assembled result.
func AllgatherSmall(r *mpi.Rank, send, recv []byte) {
	requireBlock(r, "allgather")
	c := r.Cluster()
	size := c.Size()
	chunk := len(send)
	if len(recv) != size*chunk {
		panic(fmt.Sprintf("core: allgather buffer mismatch: %dB recv for %d x %dB", len(recv), size, chunk))
	}

	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	me := r.Node()
	blk := P * chunk // one node slab

	// Step 1: intranode gather into the local root's staging buffer B,
	// which accumulates node slabs in *relative* node order: segment s
	// holds the slab of node (me+s) mod N.
	ph := r.PhaseStart("intra-gather")
	var B []byte
	var ownSlab []byte
	if r.Local() == 0 {
		B = make([]byte, N*blk)
		ownSlab = B[:blk]
	}
	intraGather(r, epoch, 0, 0, send, ownSlab)
	if r.Local() == 0 {
		env.Post(p, epoch, 0, slotMain, B)
	} else {
		B = env.Read(p, epoch, 0, slotMain).([]byte)
	}
	nb.wait() // gather complete before anyone ships segment 0
	ph.End()

	// Steps 2-4: multi-object Bruck over node slabs, base Bk = P+1.
	// After a full stage with span Sp, B holds segments [0, Sp*(P+1)).
	Bk := P + 1
	Sp := 1
	stage := 0
	ph = r.PhaseStart("internode-bruck")
	for Sp*Bk <= N {
		// Process l exchanges with node offset (l+1)*Sp: sends the
		// currently held Sp segments, receives the peer's Sp segments
		// into position (l+1)*Sp.
		off := (r.Local() + 1) * Sp
		srcNode := (me + off) % N
		dstNode := (me - off + N) % N
		stageTag := tag + stage*phaseGap
		rq := r.Irecv(c.Rank(srcNode, r.Local()), stageTag, B[off*blk:(off+Sp)*blk])
		sq := r.Isend(c.Rank(dstNode, r.Local()), stageTag, B[:Sp*blk])
		r.Waitall(rq, sq)
		Sp *= Bk
		stage++
		nb.wait() // all of the stage's receives landed in B
	}

	// Step 5: remainder for N not a power of P+1. Process l fetches the
	// prefix of node (me+(l+1)*Sp)'s held segments — its length
	// min(Sp, N-(l+1)*Sp) — completing coverage of [0, N).
	if Sp < N {
		off := (r.Local() + 1) * Sp
		cnt := min(Sp, N-off)
		stageTag := tag + stage*phaseGap
		var rq, sq *mpi.Request
		if cnt > 0 {
			srcNode := (me + off) % N
			rq = r.Irecv(c.Rank(srcNode, r.Local()), stageTag, B[off*blk:(off+cnt)*blk])
		}
		// Symmetric send side: some peer needs this node's prefix iff
		// its offset lands within [Sp, N).
		if off < N { // same condition by symmetry of the schedule
			dstNode := (me - off + N) % N
			sq = r.Isend(c.Rank(dstNode, r.Local()), stageTag, B[:cnt*blk])
		}
		switch {
		case rq != nil && sq != nil:
			r.Waitall(rq, sq)
		case rq != nil:
			r.Wait(rq)
		case sq != nil:
			r.Wait(sq)
		}
		nb.wait()
	}
	ph.End()

	// Step 6: shift into absolute rank order and broadcast. The shift is
	// folded into the broadcast copy-out: every process (root included)
	// copies the staged slabs from B into its own result buffer with the
	// rotation applied — two contiguous copies, all P processes in
	// parallel, no serial root pass.
	ph = r.PhaseStart("intra-bcast")
	sh.Memcpy(p, recv[me*blk:], B[:(N-me)*blk])
	sh.Memcpy(p, recv[:me*blk], B[(N-me)*blk:])
	ph.End()
	finish(r, epoch, &nb)
}

// phaseGap spaces the internode tags of successive stages.
const phaseGap = 1 << 12

// AllgatherLarge is the medium/large-message PiP-MColl allgather (III-B1):
// intranode gather into the local root's result buffer, then a multi-object
// ring over node slabs — each process ships its own C_b sub-chunk of the
// slab, so one slab moves as P concurrent messages — with the intranode
// broadcast of already-received slabs overlapped against the ring's
// asynchronous network phase.
func AllgatherLarge(r *mpi.Rank, send, recv []byte) {
	requireBlock(r, "allgather")
	c := r.Cluster()
	size := c.Size()
	chunk := len(send)
	if len(recv) != size*chunk {
		panic(fmt.Sprintf("core: allgather buffer mismatch: %dB recv for %d x %dB", len(recv), size, chunk))
	}

	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	me := r.Node()
	l := r.Local()
	blk := P * chunk

	// Step 1: intranode gather into the local root's recv at this node's
	// own slab position; post the shared result buffer.
	ph := r.PhaseStart("intra-gather")
	var shared []byte
	if l == 0 {
		shared = recv
		env.Post(p, epoch, 0, slotMain, shared)
		intraGather(r, epoch, 0, 0, send, shared[me*blk:(me+1)*blk])
	} else {
		intraGather(r, epoch, 0, 0, send, nil)
		shared = env.Read(p, epoch, 0, slotMain).([]byte)
	}
	nb.wait()
	ph.End()

	// Steps 2-5: ring over nodes; process l carries sub-chunk l of each
	// slab. Overlap: while step s's messages are in flight, copy the slab
	// that arrived in step s-1 (or the own slab at s=0) into the private
	// recv buffer.
	left := (me - 1 + N) % N
	right := (me + 1) % N
	ph = r.PhaseStart("internode-ring")
	for s := 0; s < N-1; s++ {
		sendSlab := (me - s + 2*N) % N
		recvSlab := (me - s - 1 + 2*N) % N
		stageTag := tag + s*phaseGap
		sub := func(slab int) []byte {
			base := slab*blk + l*chunk
			return shared[base : base+chunk]
		}
		rq := r.Irecv(c.Rank(left, l), stageTag, sub(recvSlab))
		sq := r.Isend(c.Rank(right, l), stageTag, sub(sendSlab))
		// Overlapped intranode broadcast: non-root processes copy the
		// slab that is already present while the network works.
		if l != 0 {
			cp := (me - s + 2*N) % N
			sh.Memcpy(p, recv[cp*blk:(cp+1)*blk], shared[cp*blk:(cp+1)*blk])
		}
		r.Waitall(rq, sq)
		nb.wait() // the slab received this step is fully assembled
	}
	// Final slab (received in the last step) still needs the local copy;
	// with a single node the loop never ran, so copy the whole (only)
	// slab instead.
	if l != 0 {
		cp := (me + 1) % N
		sh.Memcpy(p, recv[cp*blk:(cp+1)*blk], shared[cp*blk:(cp+1)*blk])
	}
	ph.End()
	finish(r, epoch, &nb)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
