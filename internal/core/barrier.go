package core

import (
	"repro/internal/mpi"
)

// Barrier is the multi-object MPI_Barrier: local ranks arrive at the node's
// counting barrier, then the node-level dissemination rounds are spread
// across the P processes — round k is driven by local rank k mod P, so up
// to P rounds proceed through distinct NIC queues — and a final node
// barrier releases everyone. With N nodes the internode phase still needs
// ceil(log2 N) sequential rounds (dissemination is inherently ordered), but
// each round's message leaves from a different queue, avoiding serial
// per-process injection overhead.
func (cl Coll) Barrier(r *mpi.Rank) {
	requireBlock(r, "barrier")
	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	c := r.Cluster()
	N := c.Nodes()
	P := c.PPN()
	me := r.Node()

	// Everyone on the node has arrived.
	nb.wait()

	// Node-level dissemination: in round k, the node signals node
	// (me + 2^k) mod N and hears from (me - 2^k) mod N. Local rank
	// k mod P drives round k.
	empty := []byte{}
	in := []byte{}
	round := 0
	for mask := 1; mask < N; mask <<= 1 {
		if r.Local() == round%P {
			// Pair with the driving rank of the same round on the
			// peer nodes.
			dstRank := c.Rank((me+mask)%N, round%P)
			srcRank := c.Rank((me-mask+N)%N, round%P)
			rq := r.Irecv(srcRank, tag+round, in)
			sq := r.Isend(dstRank, tag+round, empty)
			r.Waitall(rq, sq)
		}
		// All local ranks resynchronize so round k+1's driver cannot
		// signal before round k completed on this node.
		nb.wait()
		round++
	}
	finish(r, epoch, &nb)
}
