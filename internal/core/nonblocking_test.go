package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestIAllreduceCorrectAndOverlaps(t *testing.T) {
	const nodes, ppn, elems = 4, 3, 512
	size := nodes * ppn
	want := expectedSum(size, elems)

	// Measure the blocking collective alone, the compute alone, and the
	// overlapped version: overlap must cost less than the sum.
	elapsed := func(compute simtime.Duration, async bool) simtime.Time {
		w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
		if err := w.Run(func(r *mpi.Rank) {
			send := make([]byte, elems*nums.F64Size)
			nums.Fill(send, r.Rank())
			recv := make([]byte, len(send))
			if async {
				op := Coll{}.IAllreduce(r, send, recv, nums.Sum)
				r.Proc().Advance(compute) // overlapped computation
				op.Wait(r)
			} else {
				r.Proc().Advance(compute)
				Coll{}.Allreduce(r, send, recv, nums.Sum)
			}
			if !bytes.Equal(recv, want) {
				t.Errorf("rank %d async allreduce wrong", r.Rank())
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Horizon()
	}

	collOnly := elapsed(0, false)
	compute := simtime.Duration(collOnly) // compute as long as the collective
	sequential := elapsed(compute, false)
	overlapped := elapsed(compute, true)
	if overlapped >= sequential {
		t.Errorf("overlap gained nothing: overlapped %v vs sequential %v", overlapped, sequential)
	}
	// Perfect overlap would be max(compute, coll) = collOnly + small sync;
	// allow generous slack for helper start/wait handshakes.
	if overlapped > sequential-simtime.Time(compute)/2 {
		t.Errorf("overlap too weak: %v (collective alone %v, sequential %v)",
			overlapped, collOnly, sequential)
	}
}

func TestNonblockingAllCollectives(t *testing.T) {
	const nodes, ppn = 3, 2
	size := nodes * ppn
	const chunk = 64
	wantGather := expectedGather(size, chunk)
	wantSum := expectedSum(size, chunk/8)
	runWorld(t, nodes, ppn, func(r *mpi.Rank) {
		cl := Coll{}
		me := r.Rank()

		// Start several distinct nonblocking collectives back-to-back,
		// then wait for all of them (stress for epoch-band isolation).
		sendAG := make([]byte, chunk)
		nums.FillBytes(sendAG, me)
		recvAG := make([]byte, size*chunk)
		opAG := cl.IAllgather(r, sendAG, recvAG)

		sendAR := make([]byte, chunk)
		nums.Fill(sendAR, me)
		recvAR := make([]byte, chunk)
		opAR := cl.IAllreduce(r, sendAR, recvAR, nums.Sum)

		bufB := make([]byte, 48)
		if me == 1 {
			nums.FillBytes(bufB, 5)
		}
		opB := cl.IBcast(r, 1, bufB)

		var scatterSend []byte
		if me == 0 {
			scatterSend = append([]byte(nil), wantGather...)
		}
		scatterRecv := make([]byte, chunk)
		opS := cl.IScatter(r, 0, scatterSend, scatterRecv)

		opAG.Wait(r)
		opAR.Wait(r)
		opB.Wait(r)
		opS.Wait(r)

		if !bytes.Equal(recvAG, wantGather) {
			t.Errorf("rank %d iallgather wrong", me)
		}
		if !bytes.Equal(recvAR, wantSum) {
			t.Errorf("rank %d iallreduce wrong", me)
		}
		wantB := make([]byte, 48)
		nums.FillBytes(wantB, 5)
		if !bytes.Equal(bufB, wantB) {
			t.Errorf("rank %d ibcast wrong", me)
		}
		if !bytes.Equal(scatterRecv, wantGather[me*chunk:(me+1)*chunk]) {
			t.Errorf("rank %d iscatter wrong", me)
		}
	})
}

func TestNonblockingRootedAndAlltoall(t *testing.T) {
	const nodes, ppn = 2, 3
	size := nodes * ppn
	const chunk = 32
	runWorld(t, nodes, ppn, func(r *mpi.Rank) {
		cl := Coll{}
		me := r.Rank()
		root := size - 1

		mine := make([]byte, chunk)
		nums.FillBytes(mine, me)
		var g []byte
		if me == root {
			g = make([]byte, size*chunk)
		}
		opG := cl.IGather(r, root, mine, g)

		vec := make([]byte, chunk)
		nums.Fill(vec, me)
		var red []byte
		if me == root {
			red = make([]byte, chunk)
		}
		opR := cl.IReduce(r, root, vec, red, nums.Sum)

		a2aSend := make([]byte, size*chunk)
		for j := 0; j < size; j++ {
			nums.FillBytes(a2aSend[j*chunk:(j+1)*chunk], me*1000+j)
		}
		a2aRecv := make([]byte, size*chunk)
		opA := cl.IAlltoall(r, a2aSend, a2aRecv)

		opG.Wait(r)
		opR.Wait(r)
		opA.Wait(r)

		if me == root {
			if !bytes.Equal(g, expectedGather(size, chunk)) {
				t.Error("igather wrong")
			}
			if !bytes.Equal(red, expectedSum(size, chunk/8)) {
				t.Error("ireduce wrong")
			}
		}
		if !bytes.Equal(a2aRecv, expectedAlltoall(size, chunk, me)) {
			t.Errorf("rank %d ialltoall wrong", me)
		}
	})
}

func TestAsyncMixedWithBlocking(t *testing.T) {
	// A nonblocking collective in flight while the parent runs a
	// different blocking collective: epoch bands keep them isolated.
	runWorld(t, 2, 3, func(r *mpi.Rank) {
		size := r.Size()
		cl := Coll{}
		sendA := make([]byte, 128)
		nums.Fill(sendA, r.Rank())
		recvA := make([]byte, 128)
		op := cl.IAllreduce(r, sendA, recvA, nums.Sum)

		sendB := make([]byte, 64)
		nums.FillBytes(sendB, r.Rank())
		recvB := make([]byte, size*64)
		cl.Allgather(r, sendB, recvB) // blocking, concurrent with the async op

		op.Wait(r)
		if !bytes.Equal(recvA, expectedSum(size, 16)) {
			t.Errorf("rank %d async allreduce wrong", r.Rank())
		}
		if !bytes.Equal(recvB, expectedGather(size, 64)) {
			t.Errorf("rank %d blocking allgather wrong", r.Rank())
		}
	})
}

func TestAsyncHelperPanicsPropagate(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		op := r.Async(func(ar *mpi.Rank) {
			panic(fmt.Sprintf("helper %d exploded", ar.Rank()))
		})
		op.Wait(r)
	})
	if err == nil {
		t.Fatal("helper panic swallowed")
	}
}

func TestAsyncHelperCannotUseHarnessBarrier(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		op := r.Async(func(ar *mpi.Rank) { ar.HarnessBarrier() })
		op.Wait(r)
	})
	if err == nil {
		t.Fatal("harness barrier from helper accepted")
	}
}

func TestAsyncDeterministic(t *testing.T) {
	runOnce := func() simtime.Time {
		w := mpi.MustNewWorld(topology.New(3, 2, topology.Block), mpi.DefaultConfig())
		if err := w.Run(func(r *mpi.Rank) {
			send := make([]byte, 256)
			nums.Fill(send, r.Rank())
			recv := make([]byte, 256)
			op := Coll{}.IAllreduce(r, send, recv, nums.Sum)
			r.Proc().Advance(10 * simtime.Microsecond)
			op.Wait(r)
		}); err != nil {
			t.Fatal(err)
		}
		return w.Horizon()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("async runs diverge: %v vs %v", a, b)
	}
}

func TestMismatchedCollectiveOrderDeadlocksDetectably(t *testing.T) {
	// MPI requires all ranks to issue collectives in the same order;
	// violating it must not hang the harness — the engine's deadlock
	// detector reports the stuck processes instead.
	w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		send := make([]byte, 64)
		recv := make([]byte, 64)
		full := make([]byte, 4*64)
		if r.Rank() == 0 {
			AllreduceSmall(r, send, recv, nums.Sum) // wrong order on rank 0
			AllgatherSmall(r, send, full)
		} else {
			AllgatherSmall(r, send, full)
			AllreduceSmall(r, send, recv, nums.Sum)
		}
	})
	var dl *simtime.DeadlockError
	if !errorsAs(err, &dl) {
		t.Fatalf("err = %v, want deadlock report", err)
	}
	if len(dl.Parked) == 0 {
		t.Fatal("deadlock report lists no processes")
	}
}

func errorsAs(err error, dl **simtime.DeadlockError) bool {
	// World.Run wraps the engine diagnosis in *mpi.DeadlockError.
	return errors.As(err, dl)
}
