package core

import (
	"repro/internal/mpi"
	"repro/internal/nums"
)

// Nonblocking collectives (the I-variants of MPI): each starts the
// corresponding PiP-MColl collective on an async helper sharing the rank's
// identity and returns immediately, letting the caller overlap computation
// with the collective — the natural extension of the paper's
// intranode/internode overlap theme to the application level.
//
// MPI's nonblocking-collective rules apply: every rank must start the same
// nonblocking collectives in the same order, the buffers belong to the
// operation until Wait returns, and the caller must not run a conflicting
// collective on the same buffers concurrently.

// IAllreduce starts a nonblocking PiP-MColl allreduce.
func (cl Coll) IAllreduce(r *mpi.Rank, send, recv []byte, op nums.Op) *mpi.AsyncOp {
	return r.Async(func(ar *mpi.Rank) { cl.Allreduce(ar, send, recv, op) })
}

// IAllgather starts a nonblocking PiP-MColl allgather.
func (cl Coll) IAllgather(r *mpi.Rank, send, recv []byte) *mpi.AsyncOp {
	return r.Async(func(ar *mpi.Rank) { cl.Allgather(ar, send, recv) })
}

// IScatter starts a nonblocking PiP-MColl scatter.
func (cl Coll) IScatter(r *mpi.Rank, root int, send, recv []byte) *mpi.AsyncOp {
	return r.Async(func(ar *mpi.Rank) { cl.Scatter(ar, root, send, recv) })
}

// IBcast starts a nonblocking PiP-MColl broadcast.
func (cl Coll) IBcast(r *mpi.Rank, root int, buf []byte) *mpi.AsyncOp {
	return r.Async(func(ar *mpi.Rank) { cl.Bcast(ar, root, buf) })
}

// IGather starts a nonblocking PiP-MColl gather.
func (cl Coll) IGather(r *mpi.Rank, root int, send, recv []byte) *mpi.AsyncOp {
	return r.Async(func(ar *mpi.Rank) { cl.Gather(ar, root, send, recv) })
}

// IReduce starts a nonblocking PiP-MColl reduce.
func (cl Coll) IReduce(r *mpi.Rank, root int, send, recv []byte, op nums.Op) *mpi.AsyncOp {
	return r.Async(func(ar *mpi.Rank) { cl.Reduce(ar, root, send, recv, op) })
}

// IAlltoall starts a nonblocking PiP-MColl alltoall.
func (cl Coll) IAlltoall(r *mpi.Rank, send, recv []byte) *mpi.AsyncOp {
	return r.Async(func(ar *mpi.Rank) { cl.Alltoall(ar, send, recv) })
}
