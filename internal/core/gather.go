package core

import (
	"fmt"

	"repro/internal/mpi"
)

// subtreeEvent records one node's role in one round of the (P+1)-ary
// subtree schedule shared by Scatter (forward), Gather and Reduce
// (reversed). A node is either the holder of a subtree (it exchanges parts
// with P head nodes) or the head of a part (it exchanges its whole subtree
// with the holder).
type subtreeEvent struct {
	round  int
	holder bool
	// holder fields: the split of this round.
	sizes, starts []int
	lo            int
	// head fields: which part this node heads, under which holder, and
	// the subtree span it owns afterwards.
	part, holderV, span int
}

// subtreeSchedule walks the (P+1)-ary decomposition for a node at virtual
// index vnode and returns its events plus the node's maximal subtree span
// (N for the root node, the received span for every other node).
func subtreeSchedule(vnode, N, P int) (events []subtreeEvent, span int) {
	lo, hi := 0, N
	span = N
	if vnode != 0 {
		span = 0 // set when this node becomes a head
	}
	for round := 0; hi-lo > 1; round++ {
		sizes, starts := splitParts(hi-lo, P+1)
		if vnode == lo {
			events = append(events, subtreeEvent{round: round, holder: true,
				sizes: sizes, starts: starts, lo: lo})
			hi = lo + sizes[0]
			continue
		}
		part := partOf(vnode-lo, starts, sizes)
		recvV := lo + starts[part]
		if vnode == recvV {
			events = append(events, subtreeEvent{round: round,
				part: part, holderV: lo, span: sizes[part]})
			if span == 0 {
				span = sizes[part]
			}
		}
		lo, hi = recvV, recvV+sizes[part]
	}
	return events, span
}

// Gather is the multi-object MPI_Gather: the mirror image of Scatter. The
// (P+1)-ary schedule runs in reverse — subtree heads ship their accumulated
// slabs up to the holder, whose P processes receive the P parts
// concurrently (multi-object receive) straight into the shared staging
// buffer. Intranode contributions enter through the III-C address-posting
// gather. recv is significant only at root.
func (cl Coll) Gather(r *mpi.Rank, root int, send, recv []byte) {
	requireBlock(r, "gather")
	c := r.Cluster()
	size := c.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("core: gather root %d outside world of %d", root, size))
	}
	chunk := len(send)
	if r.Rank() == root && len(recv) != size*chunk {
		panic(fmt.Sprintf("core: gather buffer mismatch: %dB recv for %d x %dB", len(recv), size, chunk))
	}

	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	rootNode := c.Node(root)
	vnode := (r.Node() - rootNode + N) % N
	nodeBytes := P * chunk

	events, span := subtreeSchedule(vnode, N, P)

	// Allocate the node staging buffer D (covering the node's maximal
	// subtree, own slab first) and gather local chunks into its head.
	intraRoot := 0
	if vnode == 0 {
		intraRoot = c.Local(root)
	}
	var D []byte
	if r.Local() == intraRoot {
		D = make([]byte, span*nodeBytes)
		env.Post(p, epoch, intraRoot, slotMain, D)
	} else {
		D = env.Read(p, epoch, intraRoot, slotMain).([]byte)
	}
	intraGather(r, epoch, slotSpan, intraRoot, send, D[:nodeBytes])
	nb.wait()

	// Replay the schedule in reverse: leaves ship first, the root node's
	// holder rounds come last.
	for i := len(events) - 1; i >= 0; i-- {
		ev := events[i]
		if ev.holder {
			// Multi-object receive: local rank part-1 pulls part
			// `part` directly into D.
			part := r.Local() + 1
			if ev.sizes[part] > 0 {
				childV := ev.lo + ev.starts[part]
				child := c.Rank((childV+rootNode)%N, r.Local())
				at := ev.starts[part] * nodeBytes
				r.Recv(child, tag+ev.round, D[at:at+ev.sizes[part]*nodeBytes])
			}
			nb.wait() // D extended before the next (earlier) round ships it
			continue
		}
		// Head: local rank part-1 ships the whole accumulated subtree.
		if r.Local() == ev.part-1 {
			parent := c.Rank((ev.holderV+rootNode)%N, ev.part-1)
			r.Send(parent, tag+ev.round, D[:ev.span*nodeBytes])
		}
	}

	// The root rank rotates the virtual-node-ordered staging buffer into
	// absolute rank order.
	if r.Rank() == root {
		sh.Memcpy(p, recv[rootNode*nodeBytes:], D[:(N-rootNode)*nodeBytes])
		sh.Memcpy(p, recv[:rootNode*nodeBytes], D[(N-rootNode)*nodeBytes:])
	}
	finish(r, epoch, &nb)
}
