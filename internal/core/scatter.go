package core

import (
	"fmt"

	"repro/internal/mpi"
)

// Scatter is PiP-MColl MPI_Scatter (III-A1): a multi-object (P+1)-ary
// distribution tree over nodes. Each round, every node holding data uses
// all P of its processes as concurrent internode senders — process l ships
// the (l+1)-th subtree slab straight out of the shared buffer to the slab's
// first node — while the intranode scatter (each process copying its own
// chunk out of the shared buffer) overlaps with the asynchronous sends. The
// same algorithm serves every message size; its linear scaling in both C_b
// and N is what Figures 6, 9 and 12 measure.
//
// send is significant only at root and must hold Size() chunks of len(recv)
// bytes in rank order; every rank receives its chunk in recv.
func Scatter(r *mpi.Rank, root int, send, recv []byte) {
	requireBlock(r, "scatter")
	c := r.Cluster()
	size := c.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("core: scatter root %d outside world of %d", root, size))
	}
	chunk := len(recv)
	if r.Rank() == root && len(send) != size*chunk {
		panic(fmt.Sprintf("core: scatter buffer mismatch: %dB send for %d x %dB", len(send), size, chunk))
	}

	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	rootNode := c.Node(root)
	// vnode rotates node ids so the root's node is virtual node 0.
	vnode := (r.Node() - rootNode + N) % N
	nodeBytes := P * chunk

	// The root process prepares the shared buffer D in virtual-node order
	// and posts it; every local rank (including on other nodes, once
	// their local root receives) learns D from the board.
	if r.Rank() == root {
		D := send
		if rootNode != 0 {
			// Rotate so virtual node 0's slab comes first.
			D = make([]byte, len(send))
			cut := rootNode * nodeBytes
			sh.Memcpy(p, D[:len(send)-cut], send[cut:])
			sh.Memcpy(p, D[len(send)-cut:], send[:cut])
		}
		env.Post(p, epoch, r.Local(), slotMain, D)
	}

	// Walk the (P+1)-ary subtree decomposition. Every node follows the
	// same schedule; communication happens only on the rounds where this
	// node is a subtree holder (sender) or a slab's first node (receiver).
	var sendReqs []*mpi.Request
	var D []byte
	haveD := false
	readD := func(ownerLocal int) {
		if !haveD {
			D = env.Read(p, epoch, ownerLocal, slotMain).([]byte)
			haveD = true
			// Overlapped intranode scatter: grab the own chunk the
			// moment the slab is visible, while internode sends
			// (issued just before, on holder nodes) are in flight.
			sh.Memcpy(p, recv, D[r.Local()*chunk:(r.Local()+1)*chunk])
		}
	}
	rootOwner := c.Local(root) // board owner on the root's node

	ph := r.PhaseStart("internode-tree")
	lo, hi := 0, N
	for round := 0; hi-lo > 1; round++ {
		sizes, starts := splitParts(hi-lo, P+1)
		if vnode == lo {
			// Holder: process l ships slab l+1 (if any) to its
			// first node's local root.
			part := r.Local() + 1
			if sizes[part] > 0 {
				owner := rootOwner
				if vnode != 0 {
					owner = 0
				}
				readD(owner)
				dstV := lo + starts[part]
				dst := c.Rank((dstV+rootNode)%N, 0)
				slab := D[starts[part]*nodeBytes : (starts[part]+sizes[part])*nodeBytes]
				sendReqs = append(sendReqs, r.Isend(dst, tag+round, slab))
			}
			hi = lo + sizes[0]
			continue
		}
		part := partOf(vnode-lo, starts, sizes)
		recvV := lo + starts[part]
		if vnode == recvV && r.Local() == 0 {
			// This node's local root receives its subtree slab.
			srcHolder := c.Rank((lo+rootNode)%N, part-1)
			slab := make([]byte, sizes[part]*nodeBytes)
			r.Recv(srcHolder, tag+round, slab)
			env.Post(p, epoch, 0, slotMain, slab)
		}
		lo, hi = recvV, recvV+sizes[part]
	}

	ph.End()

	// Leaf: make sure the slab is visible and the own chunk copied (this
	// is where non-root processes of every node land).
	ph = r.PhaseStart("intra-scatter")
	if vnode == 0 {
		readD(rootOwner)
	} else {
		readD(0)
	}

	// Step 4: wait for all internode sends to complete.
	for _, q := range sendReqs {
		r.Wait(q)
	}
	ph.End()
	finish(r, epoch, &nb)
}

// splitParts divides n consecutive items into parts contiguous groups,
// sizes as even as possible with earlier parts larger; returns sizes and
// start offsets.
func splitParts(n, parts int) (sizes, starts []int) {
	sizes = make([]int, parts)
	starts = make([]int, parts)
	base, extra := n/parts, n%parts
	off := 0
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
		starts[i] = off
		off += sizes[i]
	}
	return sizes, starts
}

// partOf returns the index of the part containing offset off.
func partOf(off int, starts, sizes []int) int {
	for i := range starts {
		if off >= starts[i] && off < starts[i]+sizes[i] {
			return i
		}
	}
	panic(fmt.Sprintf("core: offset %d outside parts %v", off, sizes))
}
