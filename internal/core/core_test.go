package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

func runWorld(t *testing.T, nodes, ppn int, body func(*mpi.Rank)) {
	t.Helper()
	w, err := mpi.NewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatalf("world run (%dx%d): %v", nodes, ppn, err)
	}
}

// shapes stresses powers of P+1 (scatter/Bruck fast paths), non-powers
// (remainder logic), N<P, N>P, P=1 and N=1 degenerate cases.
var shapes = [][2]int{
	{1, 1}, {1, 4}, {2, 1}, {2, 3}, {3, 2}, {4, 4}, {4, 3}, // 4 = (3+1)^1
	{5, 3}, {8, 2}, {9, 2}, {16, 3}, {16, 1}, {3, 6}, {7, 2},
}

func expectedGather(size, chunk int) []byte {
	out := make([]byte, size*chunk)
	for i := 0; i < size; i++ {
		nums.FillBytes(out[i*chunk:(i+1)*chunk], i)
	}
	return out
}

func expectedSum(size, elems int) []byte {
	acc := make([]byte, elems*nums.F64Size)
	nums.Fill(acc, 0)
	for i := 1; i < size; i++ {
		b := make([]byte, elems*nums.F64Size)
		nums.Fill(b, i)
		nums.Sum.Combine(acc, b)
	}
	return acc
}

func TestScatterAllShapes(t *testing.T) {
	const chunk = 32
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, root := range []int{0, size / 2, size - 1} {
			sh, root := sh, root
			t.Run(fmt.Sprintf("%dx%d root%d", sh[0], sh[1], root), func(t *testing.T) {
				full := expectedGather(size, chunk)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					var send []byte
					if r.Rank() == root {
						send = append([]byte(nil), full...)
					}
					recv := make([]byte, chunk)
					Scatter(r, root, send, recv)
					if !bytes.Equal(recv, full[r.Rank()*chunk:(r.Rank()+1)*chunk]) {
						t.Errorf("rank %d scatter chunk wrong", r.Rank())
					}
				})
			})
		}
	}
}

func TestScatterLargeChunks(t *testing.T) {
	// Chunks past the fabric and intranode eager limits exercise
	// rendezvous paths inside the same algorithm.
	const chunk = 48 << 10
	for _, sh := range [][2]int{{3, 2}, {4, 3}} {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			size := sh[0] * sh[1]
			full := expectedGather(size, chunk)
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				var send []byte
				if r.Rank() == 0 {
					send = append([]byte(nil), full...)
				}
				recv := make([]byte, chunk)
				Scatter(r, 0, send, recv)
				if !bytes.Equal(recv, full[r.Rank()*chunk:(r.Rank()+1)*chunk]) {
					t.Errorf("rank %d large scatter chunk wrong", r.Rank())
				}
			})
		})
	}
}

func testAllgatherImpl(t *testing.T, name string, ag func(*mpi.Rank, []byte, []byte), chunk int) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		sh := sh
		t.Run(fmt.Sprintf("%s %dx%d", name, sh[0], sh[1]), func(t *testing.T) {
			want := expectedGather(size, chunk)
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				send := make([]byte, chunk)
				nums.FillBytes(send, r.Rank())
				recv := make([]byte, size*chunk)
				ag(r, send, recv)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d %s wrong", r.Rank(), name)
				}
			})
		})
	}
}

func TestAllgatherSmallAllShapes(t *testing.T) {
	testAllgatherImpl(t, "small", AllgatherSmall, 24)
}

func TestAllgatherLargeAllShapes(t *testing.T) {
	testAllgatherImpl(t, "large", AllgatherLarge, 24)
}

func TestAllgatherLargeBigChunks(t *testing.T) {
	testAllgatherImpl(t, "large-72k", AllgatherLarge, 72<<10)
}

func TestAllgatherDispatch(t *testing.T) {
	// Below and above the switch point both produce correct results.
	for _, chunk := range []int{512, 80 << 10} {
		chunk := chunk
		t.Run(fmt.Sprintf("%dB", chunk), func(t *testing.T) {
			want := expectedGather(6, chunk)
			runWorld(t, 3, 2, func(r *mpi.Rank) {
				send := make([]byte, chunk)
				nums.FillBytes(send, r.Rank())
				recv := make([]byte, 6*chunk)
				Coll{}.Allgather(r, send, recv)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d dispatch allgather wrong", r.Rank())
				}
			})
		})
	}
}

func testAllreduceImpl(t *testing.T, name string, ar func(*mpi.Rank, []byte, []byte, nums.Op), elemsList []int) {
	for _, sh := range shapes {
		for _, elems := range elemsList {
			size := sh[0] * sh[1]
			sh, elems := sh, elems
			t.Run(fmt.Sprintf("%s %dx%d n%d", name, sh[0], sh[1], elems), func(t *testing.T) {
				want := expectedSum(size, elems)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, elems*nums.F64Size)
					nums.Fill(send, r.Rank())
					recv := make([]byte, len(send))
					ar(r, send, recv, nums.Sum)
					if !bytes.Equal(recv, want) {
						t.Errorf("rank %d %s wrong: got %v want %v", r.Rank(), name,
							nums.F64(recv)[:minInt(3, elems)], nums.F64(want)[:minInt(3, elems)])
					}
				})
			})
		}
	}
}

func TestAllreduceSmallAllShapes(t *testing.T) {
	testAllreduceImpl(t, "small", AllreduceSmall, []int{1, 7, 100})
}

func TestAllreduceLargeAllShapes(t *testing.T) {
	testAllreduceImpl(t, "large", AllreduceLarge, []int{1, 7, 100, 5000})
}

func TestAllreduceDispatch(t *testing.T) {
	for _, elems := range []int{64, 16 << 10} {
		elems := elems
		t.Run(fmt.Sprintf("n%d", elems), func(t *testing.T) {
			want := expectedSum(6, elems)
			runWorld(t, 3, 2, func(r *mpi.Rank) {
				send := make([]byte, elems*nums.F64Size)
				nums.Fill(send, r.Rank())
				recv := make([]byte, len(send))
				Coll{}.Allreduce(r, send, recv, nums.Sum)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d dispatch allreduce wrong", r.Rank())
				}
			})
		})
	}
}

func TestAllreduceOtherOps(t *testing.T) {
	for _, op := range []nums.Op{nums.Max, nums.Min, nums.Prod} {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			const elems = 6
			want := make([]byte, elems*nums.F64Size)
			nums.Fill(want, 0)
			for i := 1; i < 6; i++ {
				b := make([]byte, elems*nums.F64Size)
				nums.Fill(b, i)
				op.Combine(want, b)
			}
			runWorld(t, 3, 2, func(r *mpi.Rank) {
				send := make([]byte, elems*nums.F64Size)
				nums.Fill(send, r.Rank())
				recv := make([]byte, len(send))
				AllreduceSmall(r, send, recv, op)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d %s wrong", r.Rank(), op.Name)
				}
			})
		})
	}
}

func TestIntraCollectives(t *testing.T) {
	for _, ppn := range []int{1, 2, 3, 5, 8} {
		ppn := ppn
		t.Run(fmt.Sprintf("ppn%d", ppn), func(t *testing.T) {
			runWorld(t, 2, ppn, func(r *mpi.Rank) {
				cl := Coll{}
				// IntraBcast, small and large payloads.
				for _, n := range []int{64, 64 << 10} {
					buf := make([]byte, n)
					want := make([]byte, n)
					nums.FillBytes(want, 11)
					if r.Local() == 0 {
						copy(buf, want)
					}
					cl.IntraBcast(r, 0, buf)
					if !bytes.Equal(buf, want) {
						t.Errorf("rank %d intra bcast (%dB) wrong", r.Rank(), n)
					}
				}
				// IntraGather.
				chunk := 40
				send := make([]byte, chunk)
				nums.FillBytes(send, r.Local())
				var full []byte
				if r.Local() == 1%ppn {
					full = make([]byte, ppn*chunk)
				}
				cl.IntraGather(r, 1%ppn, send, full)
				if r.Local() == 1%ppn {
					for i := 0; i < ppn; i++ {
						want := make([]byte, chunk)
						nums.FillBytes(want, i)
						if !bytes.Equal(full[i*chunk:(i+1)*chunk], want) {
							t.Errorf("intra gather chunk %d wrong on node %d", i, r.Node())
						}
					}
				}
				// IntraReduce, binomial and chunked paths.
				for _, elems := range []int{16, 8 << 10} {
					vec := make([]byte, elems*nums.F64Size)
					nums.Fill(vec, r.Local())
					var dst []byte
					if r.Local() == 0 {
						dst = make([]byte, len(vec))
					}
					cl.IntraReduce(r, 0, vec, dst, nums.Sum)
					if r.Local() == 0 {
						want := expectedSum(ppn, elems)
						if !bytes.Equal(dst, want) {
							t.Errorf("intra reduce (n=%d) wrong on node %d", elems, r.Node())
						}
					}
				}
			})
		})
	}
}

func TestIntraReduceNonRootRoot(t *testing.T) {
	// Reduce to a non-zero local root exercises the relative-rank paths.
	runWorld(t, 1, 4, func(r *mpi.Rank) {
		const elems = 10
		vec := make([]byte, elems*nums.F64Size)
		nums.Fill(vec, r.Local())
		var dst []byte
		if r.Local() == 2 {
			dst = make([]byte, len(vec))
		}
		Coll{}.IntraReduce(r, 2, vec, dst, nums.Sum)
		if r.Local() == 2 && !bytes.Equal(dst, expectedSum(4, elems)) {
			t.Error("intra reduce to local root 2 wrong")
		}
	})
}

func TestBoardCellsFreedAfterCollectives(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(3, 3, topology.Block), mpi.DefaultConfig())
	if err := w.Run(func(r *mpi.Rank) {
		send := make([]byte, 256)
		nums.Fill(send, r.Rank())
		recv := make([]byte, 256)
		for i := 0; i < 5; i++ {
			AllreduceSmall(r, send, recv, nums.Sum)
		}
		ag := make([]byte, 9*256)
		AllgatherSmall(r, send, ag)
	}); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		if cells := w.Env(n).Cells(); cells != 0 {
			t.Errorf("node %d leaked %d board cells", n, cells)
		}
	}
}

func TestRepeatedCollectivesDeterministic(t *testing.T) {
	run := func() []byte {
		var out []byte
		runWorld(t, 3, 2, func(r *mpi.Rank) {
			send := make([]byte, 128)
			nums.Fill(send, r.Rank())
			recv := make([]byte, 128)
			for i := 0; i < 3; i++ {
				AllreduceSmall(r, send, recv, nums.Sum)
			}
			if r.Rank() == 0 {
				out = append([]byte(nil), recv...)
			}
		})
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("repeated runs produced different results")
	}
}

func TestScatterRejectsRoundRobin(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 2, topology.RoundRobin), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		Scatter(r, 0, make([]byte, 4*8), make([]byte, 8))
	})
	if err == nil {
		t.Fatal("round-robin layout accepted")
	}
}

func TestScatterBadBuffersPanic(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		var send []byte
		if r.Rank() == 0 {
			send = make([]byte, 10) // not size*chunk
		}
		Scatter(r, 0, send, make([]byte, 8))
	})
	if err == nil {
		t.Fatal("bad scatter buffers accepted")
	}
}

func TestAllreduceNonF64Panics(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 1, topology.Block), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		AllreduceSmall(r, make([]byte, 7), make([]byte, 7), nums.Sum)
	})
	if err == nil {
		t.Fatal("non-float64 allreduce accepted")
	}
}

func TestTunablesDefaults(t *testing.T) {
	var z Tunables
	d := z.withDefaults()
	if d != DefaultTunables() {
		t.Fatalf("zero tunables = %+v", d)
	}
	custom := Tunables{AllgatherLargeMin: 1}.withDefaults()
	if custom.AllgatherLargeMin != 1 || custom.AllreduceLargeMin != DefaultTunables().AllreduceLargeMin {
		t.Fatalf("partial tunables = %+v", custom)
	}
}

func TestBlockArithmetic(t *testing.T) {
	// blockCnt/blockDisp/blockOwner must agree with the slice-building
	// reference blockCounts for every (elems, blocks) shape the
	// collectives use, including blocks > elems and zero-count blocks.
	for _, elems := range []int{0, 1, 2, 7, 16, 128, 1000} {
		for _, blocks := range []int{1, 2, 3, 4, 6, 8, 19} {
			cnts, disps := blockCounts(elems, blocks)
			for i := 0; i < blocks; i++ {
				if got := blockCnt(elems, blocks, i); got != cnts[i] {
					t.Fatalf("blockCnt(%d,%d,%d) = %d, want %d", elems, blocks, i, got, cnts[i])
				}
				if got := blockDisp(elems, blocks, i); got != disps[i] {
					t.Fatalf("blockDisp(%d,%d,%d) = %d, want %d", elems, blocks, i, got, disps[i])
				}
				for q := disps[i]; q < disps[i]+cnts[i]; q++ {
					if got := blockOwner(elems, blocks, q); got != i {
						t.Fatalf("blockOwner(%d,%d,%d) = %d, want %d", elems, blocks, q, got, i)
					}
				}
			}
		}
	}
}

func TestSplitParts(t *testing.T) {
	sizes, starts := splitParts(10, 4)
	wantS := []int{3, 3, 2, 2}
	wantO := []int{0, 3, 6, 8}
	for i := range wantS {
		if sizes[i] != wantS[i] || starts[i] != wantO[i] {
			t.Fatalf("splitParts(10,4) = %v %v", sizes, starts)
		}
	}
	sizes, _ = splitParts(2, 19)
	if sizes[0] != 1 || sizes[1] != 1 {
		t.Fatalf("splitParts(2,19) head = %v", sizes[:3])
	}
	if partOf(7, wantO, wantS) != 2 {
		t.Fatal("partOf wrong")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
