package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

// A PiP-MColl allreduce over a simulated 4-node cluster: every rank
// contributes its rank number and reads back the global sum.
func Example() {
	cluster := topology.New(4, 3, topology.Block)
	world := mpi.MustNewWorld(cluster, mpi.DefaultConfig())
	err := world.Run(func(r *mpi.Rank) {
		var mc core.Coll
		send := make([]byte, 8)
		nums.SetF64At(send, 0, float64(r.Rank()))
		recv := make([]byte, 8)
		mc.Allreduce(r, send, recv, nums.Sum)
		if r.Rank() == 0 {
			fmt.Printf("sum of ranks 0..11 = %v\n", nums.F64At(recv, 0))
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// sum of ranks 0..11 = 66
}

// Nonblocking collectives overlap communication with computation: the
// helper runs the allreduce while the parent advances its own clock, and
// Wait only pays the uncovered remainder.
func ExampleColl_IAllreduce() {
	cluster := topology.New(2, 2, topology.Block)
	world := mpi.MustNewWorld(cluster, mpi.DefaultConfig())
	err := world.Run(func(r *mpi.Rank) {
		var mc core.Coll
		send := make([]byte, 1024)
		nums.Fill(send, r.Rank())
		recv := make([]byte, 1024)
		op := mc.IAllreduce(r, send, recv, nums.Sum)
		// ... compute here while the collective progresses ...
		op.Wait(r)
		if r.Rank() == 0 {
			fmt.Println("overlapped allreduce complete")
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// overlapped allreduce complete
}
