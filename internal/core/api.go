package core

import (
	"repro/internal/mpi"
	"repro/internal/nums"
)

// Coll is a PiP-MColl collective context carrying the algorithm switch
// points. The zero value uses DefaultTunables.
type Coll struct {
	Tun Tunables
}

// Scatter runs PiP-MColl MPI_Scatter (the same multi-object tree for all
// sizes, per III-A1).
func (cl Coll) Scatter(r *mpi.Rank, root int, send, recv []byte) {
	Scatter(r, root, send, recv)
}

// IntraBcast broadcasts buf from the node's local rank rootLocal to all
// node peers using the III-C auxiliary broadcast (temp-buffer posting for
// small payloads, direct address sharing for large ones). It is a
// node-scope collective: every local rank of the caller's node must call it.
func (cl Coll) IntraBcast(r *mpi.Rank, rootLocal int, buf []byte) {
	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	intraBcast(r, epoch, 0, rootLocal, buf, cl.Tun.withDefaults().IntraLargeMin)
	finish(r, epoch, &nb)
}

// IntraGather collects each local rank's send chunk into full (significant
// only at rootLocal) via the III-C address-posting gather.
func (cl Coll) IntraGather(r *mpi.Rank, rootLocal int, send, full []byte) {
	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	intraGather(r, epoch, 0, rootLocal, send, full)
	finish(r, epoch, &nb)
}

// IntraReduce combines each local rank's send vector into dst at rootLocal
// (binomial below the intra switch point, chunked-parallel above, per
// III-C and Figure 5). op must be commutative.
func (cl Coll) IntraReduce(r *mpi.Rank, rootLocal int, send, dst []byte, op nums.Op) {
	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	intraReduce(r, epoch, 0, rootLocal, send, dst, op, cl.Tun.withDefaults().IntraLargeMin)
	finish(r, epoch, &nb)
}
