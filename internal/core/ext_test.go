package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// The extension collectives (Bcast, Gather, Reduce, Alltoall) get the same
// exhaustive cross-shape treatment as the paper's three primaries.

func TestBcastAllShapes(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, root := range []int{0, size - 1} {
			for _, n := range []int{100, 96 << 10} {
				sh, root, n := sh, root, n
				t.Run(fmt.Sprintf("%dx%d root%d %dB", sh[0], sh[1], root, n), func(t *testing.T) {
					want := make([]byte, n)
					nums.FillBytes(want, 33)
					runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
						buf := make([]byte, n)
						if r.Rank() == root {
							copy(buf, want)
						}
						Coll{}.Bcast(r, root, buf)
						if !bytes.Equal(buf, want) {
							t.Errorf("rank %d bcast wrong", r.Rank())
						}
					})
				})
			}
		}
	}
}

func TestBcastLargePathUsed(t *testing.T) {
	// A divisible large buffer must take the scatter+allgather path and
	// beat the small tree (its point), and still be correct under odd
	// divisibility falls back gracefully.
	elapsedFor := func(n int) int64 {
		w := mpi.MustNewWorld(topology.New(4, 3, topology.Block), mpi.DefaultConfig())
		if err := w.Run(func(r *mpi.Rank) {
			buf := make([]byte, n)
			if r.Rank() == 0 {
				nums.FillBytes(buf, 1)
			}
			Coll{}.Bcast(r, 0, buf)
		}); err != nil {
			t.Fatal(err)
		}
		return int64(w.Horizon())
	}
	big := 768 << 10 // divisible by 12
	treeOnly := elapsedFor(big + 1)
	composed := elapsedFor(big)
	if composed >= treeOnly {
		t.Errorf("van de Geijn path (%d) not faster than tree (%d) at 768kB", composed, treeOnly)
	}
}

func TestGatherAllShapes(t *testing.T) {
	const chunk = 24
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, root := range []int{0, size / 2, size - 1} {
			sh, root := sh, root
			t.Run(fmt.Sprintf("%dx%d root%d", sh[0], sh[1], root), func(t *testing.T) {
				want := expectedGather(size, chunk)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, chunk)
					nums.FillBytes(send, r.Rank())
					var recv []byte
					if r.Rank() == root {
						recv = make([]byte, size*chunk)
					}
					Coll{}.Gather(r, root, send, recv)
					if r.Rank() == root && !bytes.Equal(recv, want) {
						t.Errorf("gather at root %d wrong", root)
					}
				})
			})
		}
	}
}

func TestGatherLargeChunks(t *testing.T) {
	const chunk = 32 << 10
	runWorld(t, 4, 3, func(r *mpi.Rank) {
		send := make([]byte, chunk)
		nums.FillBytes(send, r.Rank())
		var recv []byte
		if r.Rank() == 5 {
			recv = make([]byte, 12*chunk)
		}
		Coll{}.Gather(r, 5, send, recv)
		if r.Rank() == 5 && !bytes.Equal(recv, expectedGather(12, chunk)) {
			t.Error("large gather wrong")
		}
	})
}

func TestReduceAllShapes(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, elems := range []int{1, 33, 9000} { // 9000*8 = 72kB: large path
			sh, elems := sh, elems
			t.Run(fmt.Sprintf("%dx%d n%d", sh[0], sh[1], elems), func(t *testing.T) {
				root := size - 1
				want := expectedSum(size, elems)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, elems*nums.F64Size)
					nums.Fill(send, r.Rank())
					var recv []byte
					if r.Rank() == root {
						recv = make([]byte, len(send))
					}
					Coll{}.Reduce(r, root, send, recv, nums.Sum)
					if r.Rank() == root && !bytes.Equal(recv, want) {
						t.Errorf("reduce at root wrong: got %v want %v",
							nums.F64(recv)[:minInt(3, elems)], nums.F64(want)[:minInt(3, elems)])
					}
				})
			})
		}
	}
}

func TestReduceOtherOps(t *testing.T) {
	for _, op := range []nums.Op{nums.Max, nums.Prod} {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			const elems = 8
			want := make([]byte, elems*nums.F64Size)
			nums.Fill(want, 0)
			for i := 1; i < 6; i++ {
				b := make([]byte, elems*nums.F64Size)
				nums.Fill(b, i)
				op.Combine(want, b)
			}
			runWorld(t, 2, 3, func(r *mpi.Rank) {
				send := make([]byte, elems*nums.F64Size)
				nums.Fill(send, r.Rank())
				var recv []byte
				if r.Rank() == 0 {
					recv = make([]byte, len(send))
				}
				Coll{}.Reduce(r, 0, send, recv, op)
				if r.Rank() == 0 && !bytes.Equal(recv, want) {
					t.Errorf("%s reduce wrong", op.Name)
				}
			})
		})
	}
}

// expectedAlltoall builds the reference: rank j's recv block i is rank i's
// send block j; rank i's send block j is FillBytes(seed=i*1000+j).
func expectedAlltoall(size, chunk, me int) []byte {
	out := make([]byte, size*chunk)
	for src := 0; src < size; src++ {
		nums.FillBytes(out[src*chunk:(src+1)*chunk], src*1000+me)
	}
	return out
}

func TestAlltoallAllShapes(t *testing.T) {
	const chunk = 16
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				send := make([]byte, size*chunk)
				for j := 0; j < size; j++ {
					nums.FillBytes(send[j*chunk:(j+1)*chunk], r.Rank()*1000+j)
				}
				recv := make([]byte, size*chunk)
				Coll{}.Alltoall(r, send, recv)
				if !bytes.Equal(recv, expectedAlltoall(size, chunk, r.Rank())) {
					t.Errorf("rank %d alltoall wrong", r.Rank())
				}
			})
		})
	}
}

func TestAlltoallLargeChunks(t *testing.T) {
	const chunk = 24 << 10
	runWorld(t, 3, 2, func(r *mpi.Rank) {
		size := r.Size()
		send := make([]byte, size*chunk)
		for j := 0; j < size; j++ {
			nums.FillBytes(send[j*chunk:(j+1)*chunk], r.Rank()*1000+j)
		}
		recv := make([]byte, size*chunk)
		Coll{}.Alltoall(r, send, recv)
		if !bytes.Equal(recv, expectedAlltoall(size, chunk, r.Rank())) {
			t.Errorf("rank %d large alltoall wrong", r.Rank())
		}
	})
}

func TestAlltoallBadBuffersPanic(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	if err := w.Run(func(r *mpi.Rank) {
		Coll{}.Alltoall(r, make([]byte, 9), make([]byte, 9))
	}); err == nil {
		t.Fatal("indivisible alltoall buffers accepted")
	}
}

func TestExtensionRootValidation(t *testing.T) {
	cases := []func(r *mpi.Rank){
		func(r *mpi.Rank) { Coll{}.Bcast(r, 99, make([]byte, 8)) },
		func(r *mpi.Rank) { Coll{}.Gather(r, -1, make([]byte, 8), nil) },
		func(r *mpi.Rank) { Coll{}.Reduce(r, 99, make([]byte, 8), nil, nums.Sum) },
	}
	for i, body := range cases {
		w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
		if err := w.Run(body); err == nil {
			t.Errorf("case %d: bad root accepted", i)
		}
	}
}

func TestSubtreeScheduleCoversAllNodes(t *testing.T) {
	// Every node except the root must appear as exactly one head, and
	// every head's span must tile [1, N).
	for _, tc := range []struct{ n, p int }{{1, 1}, {7, 3}, {16, 3}, {19, 18}, {128, 18}, {5, 1}} {
		headSpans := map[int]int{}
		for v := 0; v < tc.n; v++ {
			events, span := subtreeSchedule(v, tc.n, tc.p)
			if v == 0 && span != tc.n {
				t.Fatalf("N=%d P=%d: root span %d", tc.n, tc.p, span)
			}
			heads := 0
			for _, ev := range events {
				if !ev.holder {
					heads++
					headSpans[v] = ev.span
				}
			}
			if v == 0 && heads != 0 {
				t.Fatalf("N=%d P=%d: root is a head", tc.n, tc.p)
			}
			if v != 0 && heads != 1 {
				t.Fatalf("N=%d P=%d: node %d is head %d times", tc.n, tc.p, v, heads)
			}
		}
		// Tiling check: the spans of head nodes plus singleton coverage
		// must cover each non-root node exactly once.
		covered := make([]int, tc.n)
		covered[0]++ // root holds itself
		for v, span := range headSpans {
			for i := 0; i < span; i++ {
				covered[v+i]++
			}
		}
		// Every node inside a head's span is covered by that span; heads
		// of sub-spans nest, so total coverage per node equals its
		// nesting depth >= 1. Just verify nothing is uncovered.
		for v, cnt := range covered {
			if cnt == 0 {
				t.Fatalf("N=%d P=%d: node %d never covered", tc.n, tc.p, v)
			}
		}
	}
}

func TestBarrierAllShapes(t *testing.T) {
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			var maxArrive, minLeave int64
			minLeave = 1 << 62
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				r.Proc().Advance(simtime.Duration(r.Rank()+1) * simtime.Microsecond)
				arrive := int64(r.Now())
				if arrive > maxArrive {
					maxArrive = arrive
				}
				Coll{}.Barrier(r)
				leave := int64(r.Now())
				if leave < minLeave {
					minLeave = leave
				}
			})
			if minLeave < maxArrive {
				t.Errorf("a rank left the barrier (%d) before the last arrival (%d)", minLeave, maxArrive)
			}
		})
	}
}

func TestBarrierRepeated(t *testing.T) {
	runWorld(t, 3, 3, func(r *mpi.Rank) {
		for i := 0; i < 4; i++ {
			r.Proc().Advance(simtime.Duration((r.Rank()*7+i)%5) * simtime.Microsecond)
			Coll{}.Barrier(r)
		}
	})
}

func TestLargeScaleSmoke(t *testing.T) {
	// The paper's full 128x18 shape: a small-message allreduce and a
	// scatter, verified end to end (allgather at this scale exceeds the
	// harness memory budget; Fig 7/10 cover it at 64x18).
	if testing.Short() {
		t.Skip("large-scale smoke skipped in -short mode")
	}
	runWorld(t, 128, 18, func(r *mpi.Rank) {
		const elems = 16
		send := make([]byte, elems*nums.F64Size)
		nums.Fill(send, r.Rank())
		recv := make([]byte, len(send))
		AllreduceSmall(r, send, recv, nums.Sum)
		if !bytes.Equal(recv, expectedSum(r.Size(), elems)) {
			t.Errorf("rank %d large-scale allreduce wrong", r.Rank())
		}
	})
	const chunk = 64
	full := expectedGather(128*18, chunk)
	runWorld(t, 128, 18, func(r *mpi.Rank) {
		var send []byte
		if r.Rank() == 0 {
			send = full
		}
		recv := make([]byte, chunk)
		Scatter(r, 0, send, recv)
		if !bytes.Equal(recv, full[r.Rank()*chunk:(r.Rank()+1)*chunk]) {
			t.Errorf("rank %d large-scale scatter wrong", r.Rank())
		}
	})
}
