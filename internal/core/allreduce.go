package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/nums"
)

// Allreduce is PiP-MColl MPI_Allreduce with the paper's size switch: the
// recursive multi-object Bruck algorithm below Tun.AllreduceLargeMin bytes,
// the multi-object reduce-scatter + allgather at or above it (Figure 14
// switches at an 8k double count = 64 kB).
func (cl Coll) Allreduce(r *mpi.Rank, send, recv []byte, op nums.Op) {
	if len(send) >= cl.Tun.withDefaults().AllreduceLargeMin {
		AllreduceLarge(r, send, recv, op)
	} else {
		AllreduceSmall(r, send, recv, op)
	}
}

// checkReduceBufs validates an allreduce buffer pair.
func checkReduceBufs(send, recv []byte) {
	if len(send) != len(recv) {
		panic(fmt.Sprintf("core: allreduce buffer mismatch %d != %d", len(send), len(recv)))
	}
	if len(send)%nums.F64Size != 0 {
		panic(fmt.Sprintf("core: allreduce buffer %dB is not a float64 vector", len(send)))
	}
}

// AllreduceSmall is the small-message PiP-MColl allreduce (III-A3): an
// intranode reduce into the local root's accumulator, then recursive
// multi-object Bruck stages with base P+1 — at each stage, process l
// exchanges the node's running partial sum with the node at offset
// (l+1)·span and folds the received partial in, multiplying the covered
// span by P+1 — followed by a remainder phase for N not a power of P+1
// that combines snapshot partials of smaller spans, and a final intranode
// broadcast. op must be commutative.
//
// The remainder phase realizes the paper's per-stage remainder-buffer idea
// as a base-(P+1) digit decomposition: after the last full stage covering
// span S, the still-missing N-S nodes are covered by fetching, for each
// base-(P+1) digit d_j of N-S, d_j partials of span (P+1)^j from the
// appropriate node offsets — each node retains a posted snapshot of its
// partial after every stage precisely so peers can fetch these.
func AllreduceSmall(r *mpi.Rank, send, recv []byte, op nums.Op) {
	requireBlock(r, "allreduce")
	checkReduceBufs(send, recv)

	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	c := r.Cluster()
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	me := r.Node()
	l := r.Local()
	V := len(send)

	// Step 1: intranode reduce into the local root's accumulator acc,
	// shared on the board.
	ph := r.PhaseStart("intra-reduce")
	var acc []byte
	if l == 0 {
		acc = make([]byte, V)
	}
	intraReduce(r, epoch, 0, 0, send, acc, op, 1<<62) // binomial: vectors are small here
	if l == 0 {
		env.Post(p, epoch, 0, slotMain, acc)
	} else {
		acc = env.Read(p, epoch, 0, slotMain).([]byte)
	}
	nb.wait()
	ph.End()

	// Full multi-object Bruck stages. Invariant: entering a stage with
	// span Sp, acc holds the partial sum over nodes [me, me+Sp). The
	// local root snapshots and posts acc before each stage's sends so
	// (a) the stage sends a stable image and (b) the remainder phase can
	// fetch span-Sp partials later.
	Bk := P + 1
	Sp := 1
	stage := 0
	snapshot := func() []byte {
		var snap []byte
		if l == 0 {
			snap = make([]byte, V)
			sh.Memcpy(p, snap, acc)
			env.Post(p, epoch, 0, slotStageSnap+stage, snap)
		} else {
			snap = env.Read(p, epoch, 0, slotStageSnap+stage).([]byte)
		}
		return snap
	}
	snaps := []([]byte){snapshot()} // span-1 snapshot (stage 0)

	ph = r.PhaseStart("internode-bruck")
	for Sp*Bk <= N {
		off := (l + 1) * Sp
		srcNode := (me + off) % N
		dstNode := (me - off + N) % N
		stageTag := tag + stage*phaseGap
		tmp := make([]byte, V)
		rq := r.Irecv(c.Rank(srcNode, l), stageTag, tmp)
		sq := r.Isend(c.Rank(dstNode, l), stageTag, snaps[stage])
		r.Waitall(rq, sq)
		// Fold the received span-Sp partial (from offset (l+1)Sp) into
		// the shared accumulator. Commutativity makes the folding
		// order across local ranks irrelevant.
		sh.Combine(p, acc, tmp, op)
		env.Counter(epoch, 0, slotStageDone).Add(p, 1)
		if l == 0 {
			env.Counter(epoch, 0, slotStageDone).WaitGE(p, uint64(P*(stage+1)))
		}
		nb.wait()
		Sp *= Bk
		stage++
		snaps = append(snaps, snapshot())
	}
	ph.End()

	// Remainder phase: cover nodes [me+Sp, me+N) with snapshot partials.
	// Decompose rem = N-Sp in base Bk and schedule one fetch per digit
	// unit, round-robin over local ranks; symmetric sends are derived
	// from the same schedule.
	rem := N - Sp
	if rem > 0 {
		type fetch struct {
			off   int // node offset whose partial we need
			stage int // snapshot stage to pull (span Bk^stage)
		}
		var plan []fetch
		o := Sp
		span := Sp
		st := stage
		for st >= 0 {
			// span = Bk^st; digit = how many such blocks fit.
			for rem >= span {
				plan = append(plan, fetch{off: o, stage: st})
				o += span
				rem -= span
			}
			st--
			span /= Bk
		}
		var reqs []*mpi.Request
		tmps := make([][]byte, 0, len(plan))
		for i, f := range plan {
			if i%P != l {
				continue
			}
			stageTag := tag + (stage+1+i)*phaseGap
			// Receive the span partial from node me+off's stage
			// snapshot; send ours to node me-off symmetrically.
			tmp := make([]byte, V)
			tmps = append(tmps, tmp)
			reqs = append(reqs,
				r.Irecv(c.Rank((me+f.off)%N, l), stageTag, tmp),
				r.Isend(c.Rank((me-f.off+N)%N, l), stageTag, snaps[f.stage]))
		}
		r.Waitall(reqs...)
		for _, tmp := range tmps {
			sh.Combine(p, acc, tmp, op)
		}
		env.Counter(epoch, 0, slotStageDone+1).Add(p, 1)
		if l == 0 {
			env.Counter(epoch, 0, slotStageDone+1).WaitGE(p, uint64(P))
		}
		nb.wait()
	}

	// Step 7: broadcast the full result intranode.
	ph = r.PhaseStart("intra-bcast")
	if l == 0 {
		sh.Memcpy(p, recv, acc)
	}
	intraBcast(r, epoch, slotSpan, 0, recv, 1<<62) // small-message temp-buffer path
	ph.End()
	finish(r, epoch, &nb)
}

// AllreduceLarge is the medium/large-message PiP-MColl allreduce (III-B2):
// chunked intranode reduce into the local root's accumulator, a
// multi-object internode reduce-scatter — process l serves the node range
// [N·l/P, N·(l+1)/P), shipping each range-node's chunk straight out of the
// shared accumulator, while the owner of the home chunk folds in the N-1
// incoming partials — then a multi-object ring allgather of the reduced
// chunks with the intranode broadcast overlapped. op must be commutative.
func AllreduceLarge(r *mpi.Rank, send, recv []byte, op nums.Op) {
	requireBlock(r, "allreduce")
	checkReduceBufs(send, recv)

	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	c := r.Cluster()
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	me := r.Node()
	l := r.Local()
	V := len(send)
	elems := V / nums.F64Size

	// Step 1: chunked intranode reduce into the local root's shared
	// accumulator.
	ph := r.PhaseStart("intra-reduce")
	var acc []byte
	if l == 0 {
		acc = make([]byte, V)
	}
	intraReduce(r, epoch, 0, 0, send, acc, op, 0) // force the chunked path
	if l == 0 {
		env.Post(p, epoch, 0, slotMain, acc)
	} else {
		acc = env.Read(p, epoch, 0, slotMain).([]byte)
	}
	nb.wait()
	ph.End()

	// Steps 3-4: internode reduce-scatter. The vector splits into N node
	// chunks; node q owns chunk q. Process l serves nodes
	// [ranges[l], ranges[l+1]): it sends chunk q to (q, l) for each
	// foreign q in its range, and if the home node's chunk falls in its
	// range it receives and folds the N-1 partials.
	chunkOf := func(b []byte, q int) []byte {
		lo := blockDisp(elems, N, q) * nums.F64Size
		return b[lo : lo+blockCnt(elems, N, q)*nums.F64Size]
	}
	loQ := blockDisp(N, P, l)
	hiQ := loQ + blockCnt(N, P, l)

	ph = r.PhaseStart("internode-reduce-scatter")
	var sendReqs []*mpi.Request
	for q := loQ; q < hiQ; q++ {
		if q == me || blockCnt(elems, N, q) == 0 {
			continue
		}
		sendReqs = append(sendReqs, r.Isend(c.Rank(q, l), tag+q, chunkOf(acc, q)))
	}
	if me >= loQ && me < hiQ && blockCnt(elems, N, me) > 0 {
		// Home-chunk owner: fold in every other node's partial.
		tmp := make([]byte, blockCnt(elems, N, me)*nums.F64Size)
		for s := 0; s < N; s++ {
			if s == me {
				continue
			}
			r.Recv(c.Rank(s, l), tag+me, tmp)
			sh.Combine(p, chunkOf(acc, me), tmp, op)
		}
	}
	for _, q := range sendReqs {
		r.Wait(q)
	}
	nb.wait()
	ph.End()

	// Step 5: multi-object ring allgather of the node chunks with
	// overlapped intranode broadcast, mirroring AllgatherLarge but over
	// the (uneven) node chunks of the accumulator.
	subCnt := func(q int) int { return blockCnt(blockCnt(elems, N, q), P, l) }
	sub := func(b []byte, q int) []byte {
		base := (blockDisp(elems, N, q) + blockDisp(blockCnt(elems, N, q), P, l)) * nums.F64Size
		return b[base : base+subCnt(q)*nums.F64Size]
	}
	left := (me - 1 + N) % N
	right := (me + 1) % N
	copySlab := func(q int) {
		if l != 0 && blockCnt(elems, N, q) > 0 {
			sh.Memcpy(p, chunkOf(recv, q), chunkOf(acc, q))
		}
	}
	ph = r.PhaseStart("internode-ring")
	for s := 0; s < N-1; s++ {
		sendQ := (me - s + 2*N) % N
		recvQ := (me - s - 1 + 2*N) % N
		stageTag := tag + N + s*phaseGap
		var rq, sq *mpi.Request
		if subCnt(recvQ) > 0 {
			rq = r.Irecv(c.Rank(left, l), stageTag, sub(acc, recvQ))
		}
		if subCnt(sendQ) > 0 {
			sq = r.Isend(c.Rank(right, l), stageTag, sub(acc, sendQ))
		}
		copySlab((me - s + 2*N) % N) // overlap: chunk already present
		if rq != nil {
			r.Wait(rq)
		}
		if sq != nil {
			r.Wait(sq)
		}
		nb.wait()
	}
	copySlab((me + 1) % N)
	if l == 0 {
		sh.Memcpy(p, recv, acc)
	}
	ph.End()
	finish(r, epoch, &nb)
}
