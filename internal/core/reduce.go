package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/nums"
)

// Reduce is the multi-object MPI_Reduce. Small vectors ride the reversed
// (P+1)-ary tree: each subtree head ships its partial sum up to the holder
// node, whose P processes receive and fold the P partials concurrently into
// the node accumulator. Large vectors use the paper's own large-allreduce
// machinery truncated at the root: a multi-object reduce-scatter followed
// by a multi-object gather of the reduced chunks into the root's buffer.
// op must be commutative; recv is significant only at root.
func (cl Coll) Reduce(r *mpi.Rank, root int, send, recv []byte, op nums.Op) {
	requireBlock(r, "reduce")
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("core: reduce root %d outside world of %d", root, size))
	}
	if r.Rank() == root && len(recv) != len(send) {
		panic(fmt.Sprintf("core: reduce buffer mismatch %d != %d", len(recv), len(send)))
	}
	if len(send)%nums.F64Size != 0 {
		panic(fmt.Sprintf("core: reduce buffer %dB is not a float64 vector", len(send)))
	}
	if len(send) >= cl.Tun.withDefaults().AllreduceLargeMin {
		reduceLarge(r, root, send, recv, op)
	} else {
		reduceSmall(r, root, send, recv, op, cl.Tun.withDefaults().IntraLargeMin)
	}
}

// reduceSmall combines up the reversed (P+1)-ary tree.
func reduceSmall(r *mpi.Rank, root int, send, recv []byte, op nums.Op, intraLarge int) {
	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	c := r.Cluster()
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	rootNode := c.Node(root)
	vnode := (r.Node() - rootNode + N) % N
	V := len(send)

	events, _ := subtreeSchedule(vnode, N, P)

	// Intranode reduce into the node accumulator, shared via the board.
	intraRoot := 0
	if vnode == 0 {
		intraRoot = c.Local(root)
	}
	var acc []byte
	if r.Local() == intraRoot {
		acc = make([]byte, V)
		env.Post(p, epoch, intraRoot, slotMain, acc)
	} else {
		acc = env.Read(p, epoch, intraRoot, slotMain).([]byte)
	}
	intraReduce(r, epoch, slotSpan, intraRoot, send, acc, op, intraLarge)
	nb.wait()

	// Reverse replay: heads ship partials up; holders fold P partials in
	// parallel (multi-object receive + combine).
	for i := len(events) - 1; i >= 0; i-- {
		ev := events[i]
		if ev.holder {
			part := r.Local() + 1
			if ev.sizes[part] > 0 {
				childV := ev.lo + ev.starts[part]
				child := c.Rank((childV+rootNode)%N, r.Local())
				tmp := make([]byte, V)
				r.Recv(child, tag+ev.round, tmp)
				sh.Combine(p, acc, tmp, op)
			}
			nb.wait()
			continue
		}
		if r.Local() == ev.part-1 {
			parent := c.Rank((ev.holderV+rootNode)%N, ev.part-1)
			r.Send(parent, tag+ev.round, acc)
		}
	}
	if r.Rank() == root {
		sh.Memcpy(p, recv, acc)
	}
	finish(r, epoch, &nb)
}

// reduceLarge is the multi-object reduce-scatter of III-B2 followed by a
// multi-object chunk gather into the root's buffer: the owner process of
// each node chunk ships it to its counterpart local rank on the root node,
// which writes it straight into the root's posted result buffer.
func reduceLarge(r *mpi.Rank, root int, send, recv []byte, op nums.Op) {
	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	c := r.Cluster()
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	me := r.Node()
	l := r.Local()
	V := len(send)
	elems := V / nums.F64Size
	rootNode := c.Node(root)

	// Phase 1+2: chunked intranode reduce, then internode reduce-scatter
	// (identical structure to AllreduceLarge).
	var acc []byte
	if l == 0 {
		acc = make([]byte, V)
	}
	intraReduce(r, epoch, 0, 0, send, acc, op, 0)
	if l == 0 {
		env.Post(p, epoch, 0, slotMain, acc)
	} else {
		acc = env.Read(p, epoch, 0, slotMain).([]byte)
	}
	nb.wait()

	chunkOf := func(b []byte, q int) []byte {
		lo := blockDisp(elems, N, q) * nums.F64Size
		return b[lo : lo+blockCnt(elems, N, q)*nums.F64Size]
	}
	loQ := blockDisp(N, P, l)
	hiQ := loQ + blockCnt(N, P, l)

	var sendReqs []*mpi.Request
	for q := loQ; q < hiQ; q++ {
		if q == me || blockCnt(elems, N, q) == 0 {
			continue
		}
		sendReqs = append(sendReqs, r.Isend(c.Rank(q, l), tag+q, chunkOf(acc, q)))
	}
	if me >= loQ && me < hiQ && blockCnt(elems, N, me) > 0 {
		tmp := make([]byte, blockCnt(elems, N, me)*nums.F64Size)
		for s := 0; s < N; s++ {
			if s == me {
				continue
			}
			r.Recv(c.Rank(s, l), tag+me, tmp)
			sh.Combine(p, chunkOf(acc, me), tmp, op)
		}
	}
	for _, q := range sendReqs {
		r.Wait(q)
	}
	nb.wait()

	// Phase 3: multi-object chunk gather to the root. The root posts its
	// result buffer; the owner process of chunk q on node q ships it to
	// local rank owner(q) on the root node, which lands it in place.
	if r.Rank() == root {
		env.Post(p, epoch, c.Local(root), slotMain+1, recv)
	}
	owner := func(q int) int { return blockOwner(N, P, q) }
	gatherTag := tag + N + 1
	switch {
	case me != rootNode && me >= loQ && me < hiQ && blockCnt(elems, N, me) > 0:
		// This node's reduced chunk travels to the root node.
		r.Send(c.Rank(rootNode, l), gatherTag+me, chunkOf(acc, me))
	case me == rootNode:
		dst := env.Read(p, epoch, c.Local(root), slotMain+1).([]byte)
		// Local rank l receives the chunks of the nodes it owns.
		for q := loQ; q < hiQ; q++ {
			if blockCnt(elems, N, q) == 0 {
				continue
			}
			if q == rootNode {
				// The root node's own chunk is already reduced
				// in acc; its owner copies it across.
				if owner(q) == l {
					sh.Memcpy(p, chunkOf(dst, q), chunkOf(acc, q))
				}
				continue
			}
			r.Recv(c.Rank(q, l), gatherTag+q, chunkOf(dst, q))
		}
	}
	finish(r, epoch, &nb)
}
