package core

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/mpi"
)

// Alltoall is the multi-object MPI_Alltoall extension: a node-aggregated
// total exchange in the PiP style. All P send buffers of a node are
// posted, so any local process can read any peer's outgoing chunks
// directly; process l packs and ships the node-to-node bundles for the
// destination nodes in its range [N·l/P, N·(l+1)/P) — P concurrent senders
// per node — while incoming bundles arrive spread across local ranks by
// the mirrored owner function (multi-object receive). Each process then
// copies its own rows out of the staged bundles.
//
// Internode volume is the minimal (N-1)·P²·chunk per node, versus
// P·(R-1)·chunk for the flat algorithms, and every intranode byte moves as
// a single direct userspace copy.
func (cl Coll) Alltoall(r *mpi.Rank, send, recv []byte) {
	requireBlock(r, "alltoall")
	c := r.Cluster()
	size := c.Size()
	if len(send) != len(recv) || len(send)%size != 0 {
		panic(fmt.Sprintf("core: alltoall buffers must be equal and divisible by %d (got %dB/%dB)",
			size, len(send), len(recv)))
	}
	chunk := len(send) / size
	if chunk >= cl.Tun.withDefaults().AlltoallAggMax {
		// Large chunks: the pairwise exchange (every process already a
		// concurrent sender) beats node aggregation, whose pack and
		// unpack copies scale with P^2.
		coll.AlltoallPairwise(coll.World(r), send, recv)
		return
	}

	epoch := r.NextEpoch()
	nb := newNodeBarrier(r, epoch)
	tag := tagBase(epoch)
	env := r.Env()
	sh := env.Shm()
	p := r.Proc()
	N := c.Nodes()
	P := c.PPN()
	me := r.Node()
	l := r.Local()
	bundle := P * P * chunk // all (local sender, remote receiver) pairs

	// Post every process's send buffer and the node staging area (owned
	// by the local root) where incoming bundles land.
	env.Post(p, epoch, l, slotA2ASend+l, send)
	var staging []byte
	if l == 0 {
		staging = make([]byte, N*bundle)
		env.Post(p, epoch, 0, slotMain, staging)
	} else {
		staging = env.Read(p, epoch, 0, slotMain).([]byte)
	}

	peerSend := func(peer int) []byte {
		return env.Read(p, epoch, peer, slotA2ASend+peer).([]byte)
	}

	loQ := blockDisp(N, P, l)
	hiQ := loQ + blockCnt(N, P, l)
	owner := func(q int) int { return blockOwner(N, P, q) }

	// The node's own bundle never touches the network: copy it straight
	// into staging (each sender's diagonal rows, done by the local root's
	// owner to keep the copy parallel with the packing below).
	if me >= loQ && me < hiQ {
		dst := staging[me*bundle:]
		for src := 0; src < P; src++ {
			sb := peerSend(src)
			at := (c.Rank(me, 0)) * chunk
			sh.Memcpy(p, dst[src*P*chunk:(src+1)*P*chunk], sb[at:at+P*chunk])
		}
	}

	// Pack and ship one bundle per destination node in this process's
	// range; receive the bundles of source nodes owned by this local
	// rank. Sender (s, owner(q)) pairs with receiver (q, owner(s)).
	var reqs []*mpi.Request
	for q := loQ; q < hiQ; q++ {
		if q == me {
			continue
		}
		pack := make([]byte, bundle)
		for src := 0; src < P; src++ {
			sb := peerSend(src)
			at := c.Rank(q, 0) * chunk
			sh.Memcpy(p, pack[src*P*chunk:(src+1)*P*chunk], sb[at:at+P*chunk])
		}
		reqs = append(reqs, r.Isend(c.Rank(q, owner(me)), tag+q, pack))
	}
	for s := loQ; s < hiQ; s++ {
		if s == me {
			continue
		}
		// Source node s's bundle for this node, sent by (s, owner(me)):
		// land it in staging at the source slot.
		reqs = append(reqs, r.Irecv(c.Rank(s, owner(me)), tag+me, staging[s*bundle:(s+1)*bundle]))
	}
	r.Waitall(reqs...)
	nb.wait()

	// Unpack: my recv row from source rank (s, src) lives at staging
	// slot s, sender block src, position local l.
	for s := 0; s < N; s++ {
		for src := 0; src < P; src++ {
			from := staging[s*bundle+src*P*chunk+l*chunk:]
			at := c.Rank(s, src) * chunk
			sh.Memcpy(p, recv[at:at+chunk], from[:chunk])
		}
	}
	finish(r, epoch, &nb)
}
