package bench

import (
	"fmt"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// S1 is a topology-sensitivity experiment beyond the paper: the same
// allgather under increasingly oversubscribed two-level fabrics (nodes
// grouped under leaf switches whose shared uplinks throttle inter-group
// traffic). The paper's testbed is full-bisection OPA; production fat
// trees often are not, and the multi-object design's extra concurrent
// flows could in principle congest a thin uplink — S1 quantifies that.
func init() {
	Register(Figure{ID: "S1", Kind: KindSensitivity, Cells: sensS1Cells,
		Title: "Allgather under fat-tree oversubscription (sensitivity)"})
	Register(Figure{ID: "S2", Kind: KindSensitivity, Cells: sensS2Cells,
		Title: "Allgather under node memory contention (sensitivity)"})
}

// SensS1 sweeps the per-group uplink bandwidth from full bisection down to
// 8x oversubscribed for PiP-MColl and the PiP-MPICH baseline.
func SensS1(o Opts) []*stats.Table { return runSerial("S1", sensS1Cells, o) }

func sensS1Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 8, 16), pick(o, 4, 8)
	const chunk = 4 << 10
	groupSize := 4
	// Full bisection for a group is groupSize x link bandwidth.
	full := float64(groupSize) * mpi.DefaultConfig().Fabric.LinkBandwidth
	overs := []float64{1, 2, 4, 8} // oversubscription ratios
	ls := []*libs.Library{libs.PiPMPICH(), libs.PiPMColl()}
	rows := make([]string, len(overs))
	for i, ov := range overs {
		rows[i] = fmt.Sprintf("%gx", ov)
	}
	t := stats.NewTable(
		fmt.Sprintf("S1: %s allgather vs uplink oversubscription (%dx%d, groups of %d)",
			sizeLabel(chunk), nodes, ppn, groupSize),
		"oversub", "us", libNames(ls), rows)
	var cells []Cell
	for i, ov := range overs {
		for _, l := range ls {
			l, row := l, rows[i]
			cfg := l.Config()
			cfg.Fabric.GroupSize = groupSize
			cfg.Fabric.GroupLatency = simtime.Nanos(400)
			cfg.Fabric.GroupBandwidth = full / ov
			cells = append(cells, Cell{
				Key: fmt.Sprintf("s1 lib=%s nodes=%d ppn=%d bytes=%d warmup=%d iters=%d cfg=%s",
					l.Name(), nodes, ppn, chunk, o.Warmup, o.Iters, cfgKey(cfg)),
				Run: func() ([]Value, error) {
					us := measureGroupedAllgather(l, cfg, nodes, ppn, chunk, o)
					return []Value{{Table: 0, Row: row, Col: l.Name(), V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}

func measureGroupedAllgather(lib *libs.Library, cfg mpi.Config, nodes, ppn, chunk int, o Opts) float64 {
	cluster := topology.New(nodes, ppn, topology.Block)
	world := mpi.MustNewWorld(cluster, cfg)
	size := cluster.Size()
	var sum simtime.Duration
	if err := world.Run(func(r *mpi.Rank) {
		send := make([]byte, chunk)
		nums.FillBytes(send, r.Rank())
		recv := make([]byte, size*chunk)
		for it := 0; it < o.Warmup+o.Iters; it++ {
			r.HarnessBarrier()
			start := r.Now()
			lib.Allgather(r, send, recv)
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
	}); err != nil {
		panic(err)
	}
	return (sum / simtime.Duration(o.Iters)).Microseconds()
}

// SensS2 enables the aggregate node-memory-port model and sweeps its
// bandwidth: intranode-copy-heavy phases (PiP-MColl's staging and
// broadcast copies, POSIX double copies) stretch when many cores stream
// concurrently. The paper's analysis uses uncontended per-core beta_r;
// S2 quantifies how the comparison shifts when that assumption is relaxed.
func SensS2(o Opts) []*stats.Table { return runSerial("S2", sensS2Cells, o) }

func sensS2Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 8, 16), pick(o, 4, 8)
	const chunk = 16 << 10
	// Aggregate memory bandwidths: off (uncontended), then multiples of
	// the per-core copy bandwidth.
	perCore := mpi.DefaultConfig().Shm.CopyBandwidth
	levels := []float64{0, 8 * perCore, 4 * perCore, 2 * perCore}
	labels := []string{"off", "8x core", "4x core", "2x core"}
	ls := []*libs.Library{libs.IntelMPI(), libs.PiPMPICH(), libs.PiPMColl()}
	t := stats.NewTable(
		fmt.Sprintf("S2: %s allgather vs node memory contention (%dx%d)", sizeLabel(chunk), nodes, ppn),
		"mem port", "us", libNames(ls), labels)
	var cells []Cell
	for i, bw := range levels {
		for _, l := range ls {
			l, row := l, labels[i]
			cfg := l.Config()
			cfg.Shm.NodeMemBandwidth = bw
			cells = append(cells, Cell{
				Key: fmt.Sprintf("s2 lib=%s nodes=%d ppn=%d bytes=%d warmup=%d iters=%d cfg=%s",
					l.Name(), nodes, ppn, chunk, o.Warmup, o.Iters, cfgKey(cfg)),
				Run: func() ([]Value, error) {
					us := measureGroupedAllgather(l, cfg, nodes, ppn, chunk, o)
					return []Value{{Table: 0, Row: row, Col: l.Name(), V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}
