package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The crash-safety suite proves the cache's startup sweep: orphaned temp
// files from interrupted writes and torn entries left by an unclean
// shutdown are quarantined before the first read, counted as
// corruptions, and the next Load of a damaged address recomputes and
// heals instead of failing.

func TestCacheSweepQuarantinesCrashDebris(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := Opts{Warmup: 1, Iters: 1}
	vals := []Value{{Table: 0, Row: "r", Col: "c", V: 42}}
	if err := c.Store("figX", "cellA", opts, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("figX", "cellB", opts, vals); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-Store: an orphaned temp file whose rename
	// never happened, plus an entry torn to a prefix of its JSON.
	orphan := filepath.Join(dir, "cell-12345.tmp")
	if err := os.WriteFile(orphan, []byte(`[{"t":0`), 0o644); err != nil {
		t.Fatal(err)
	}
	tornPath := c.EntryPath("figX", "cellA", opts)
	full, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: the sweep must quarantine both before the first read.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.Logf = nil
	if got := c2.Corruptions(); got != 2 {
		t.Fatalf("Corruptions() = %d after sweep, want 2 (orphan + torn entry)", got)
	}
	qdir := filepath.Join(dir, QuarantineDir)
	for _, name := range []string{"cell-12345.tmp", filepath.Base(tornPath)} {
		if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
			t.Fatalf("%s not quarantined: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s still in the entry namespace after sweep", name)
		}
	}

	// The healthy entry survived the sweep untouched.
	if got, ok := c2.Load("figX", "cellB", opts); !ok || got[0].V != 42 {
		t.Fatalf("healthy entry damaged by sweep: %v %v", got, ok)
	}

	// The quarantined address is a plain miss; recomputing heals it.
	if _, ok := c2.Load("figX", "cellA", opts); ok {
		t.Fatal("quarantined entry still loads")
	}
	if err := c2.Store("figX", "cellA", opts, vals); err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Load("figX", "cellA", opts); !ok || got[0].V != 42 {
		t.Fatalf("healed entry does not load: %v %v", got, ok)
	}
}

func TestCacheSweepLogsWhatItMoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cell-9.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var lines []string
	c := &Cache{dir: dir, Logf: func(format string, args ...any) {
		lines = append(lines, format)
	}}
	if err := c.sweep(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "quarantined") {
		t.Fatalf("sweep log lines %q", lines)
	}
	if c.Corruptions() != 1 {
		t.Fatalf("Corruptions() = %d, want 1", c.Corruptions())
	}
}

// TestCacheSweepIgnoresForeignFiles: only cell temp files and .json
// entries are sweep targets — the quarantine directory itself and
// unrelated files are left alone.
func TestCacheSweepIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, QuarantineDir, "old.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Corruptions() != 0 {
		t.Fatalf("Corruptions() = %d on a clean cache, want 0", c.Corruptions())
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file touched by sweep: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "old.json")); err != nil {
		t.Fatalf("quarantined file re-swept: %v", err)
	}
}

// TestCacheCorruptionCountedExactlyOnce pins the accounting contract: one
// damaged file is one corruption, counted at the moment it is discovered
// — by the startup sweep or by a Load — and never again once healed. In
// particular, the Load right after a sweep quarantined the entry is a
// plain miss (no second count), and the Load right after a heal is a
// clean hit.
func TestCacheCorruptionCountedExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Logf = nil
	opts := Opts{Warmup: 1, Iters: 1}
	vals := []Value{{Table: 0, Row: "r", Col: "c", V: 7}}

	// Load-time discovery path: tear a live entry, Load it (one count),
	// heal it with a Store, Load again (hit, no further count).
	if err := c.Store("figY", "torn-live", opts, vals); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.EntryPath("figY", "torn-live", opts), []byte(`[{"t":0,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("figY", "torn-live", opts); ok {
		t.Fatal("torn entry loaded")
	}
	if got := c.Corruptions(); got != 1 {
		t.Fatalf("Corruptions() after load-time discovery = %d, want 1", got)
	}
	if err := c.Store("figY", "torn-live", opts, vals); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Load("figY", "torn-live", opts); !ok || got[0].V != 7 {
		t.Fatalf("healed entry does not load: %v %v", got, ok)
	}
	if got := c.Corruptions(); got != 1 {
		t.Fatalf("Corruptions() after heal = %d, want still 1 (heal must not re-count)", got)
	}

	// Sweep discovery path: tear the entry again and reopen. The sweep
	// counts it once and quarantines it; the follow-up Load of the same
	// address is a plain miss, not a second corruption.
	if err := os.WriteFile(c.EntryPath("figY", "torn-live", opts), []byte(`[{"t":0,`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.Logf = nil
	if got := c2.Corruptions(); got != 1 {
		t.Fatalf("Corruptions() after sweep = %d, want 1", got)
	}
	if _, ok := c2.Load("figY", "torn-live", opts); ok {
		t.Fatal("quarantined entry still loads")
	}
	if got := c2.Corruptions(); got != 1 {
		t.Fatalf("Corruptions() after post-sweep miss = %d, want still 1", got)
	}
	if err := c2.Store("figY", "torn-live", opts, vals); err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Load("figY", "torn-live", opts); !ok || got[0].V != 7 {
		t.Fatalf("re-healed entry does not load: %v %v", got, ok)
	}
	if got := c2.Corruptions(); got != 1 {
		t.Fatalf("Corruptions() after re-heal = %d, want still 1", got)
	}

	// Quarantined debris is out of the entry namespace for good: a third
	// OpenCache starts at zero corruptions and leaves the quarantine
	// directory untouched, so one crash can never inflate the counters of
	// every later run.
	qname := filepath.Base(c.EntryPath("figY", "torn-live", opts))
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, qname)); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	c3, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c3.Corruptions(); got != 0 {
		t.Fatalf("Corruptions() on reopen of a healed cache = %d, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, qname)); err != nil {
		t.Fatalf("quarantined file re-swept on reopen: %v", err)
	}
}
