package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The crash-safety suite proves the cache's startup sweep: orphaned temp
// files from interrupted writes and torn entries left by an unclean
// shutdown are quarantined before the first read, counted as
// corruptions, and the next Load of a damaged address recomputes and
// heals instead of failing.

func TestCacheSweepQuarantinesCrashDebris(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := Opts{Warmup: 1, Iters: 1}
	vals := []Value{{Table: 0, Row: "r", Col: "c", V: 42}}
	if err := c.Store("figX", "cellA", opts, vals); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("figX", "cellB", opts, vals); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-Store: an orphaned temp file whose rename
	// never happened, plus an entry torn to a prefix of its JSON.
	orphan := filepath.Join(dir, "cell-12345.tmp")
	if err := os.WriteFile(orphan, []byte(`[{"t":0`), 0o644); err != nil {
		t.Fatal(err)
	}
	tornPath := c.EntryPath("figX", "cellA", opts)
	full, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: the sweep must quarantine both before the first read.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.Logf = nil
	if got := c2.Corruptions(); got != 2 {
		t.Fatalf("Corruptions() = %d after sweep, want 2 (orphan + torn entry)", got)
	}
	qdir := filepath.Join(dir, QuarantineDir)
	for _, name := range []string{"cell-12345.tmp", filepath.Base(tornPath)} {
		if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
			t.Fatalf("%s not quarantined: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s still in the entry namespace after sweep", name)
		}
	}

	// The healthy entry survived the sweep untouched.
	if got, ok := c2.Load("figX", "cellB", opts); !ok || got[0].V != 42 {
		t.Fatalf("healthy entry damaged by sweep: %v %v", got, ok)
	}

	// The quarantined address is a plain miss; recomputing heals it.
	if _, ok := c2.Load("figX", "cellA", opts); ok {
		t.Fatal("quarantined entry still loads")
	}
	if err := c2.Store("figX", "cellA", opts, vals); err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Load("figX", "cellA", opts); !ok || got[0].V != 42 {
		t.Fatalf("healed entry does not load: %v %v", got, ok)
	}
}

func TestCacheSweepLogsWhatItMoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cell-9.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var lines []string
	c := &Cache{dir: dir, Logf: func(format string, args ...any) {
		lines = append(lines, format)
	}}
	if err := c.sweep(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "quarantined") {
		t.Fatalf("sweep log lines %q", lines)
	}
	if c.Corruptions() != 1 {
		t.Fatalf("Corruptions() = %d, want 1", c.Corruptions())
	}
}

// TestCacheSweepIgnoresForeignFiles: only cell temp files and .json
// entries are sweep targets — the quarantine directory itself and
// unrelated files are left alone.
func TestCacheSweepIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, QuarantineDir, "old.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Corruptions() != 0 {
		t.Fatalf("Corruptions() = %d on a clean cache, want 0", c.Corruptions())
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file touched by sweep: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "old.json")); err != nil {
		t.Fatalf("quarantined file re-swept: %v", err)
	}
}
