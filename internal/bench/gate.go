package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// The throughput gate is the SLO check over BENCH_throughput.json: a fresh
// run of the suite must not regress ns/event beyond a tolerance of the
// recorded baseline, and allocs/event must stay under per-world ceilings
// pinned here (allocations per dispatched event are deterministic on a
// given Go release, so the ceilings are safe to enforce in CI; wall-clock
// comparisons use best-of-N runs to shed scheduler noise).

// mediumAllocCeiling is the acceptance bar for the hot-path work: the
// medium throughput world (8×6 ranks, the figure-sweep shape) ran at 9.642
// allocs/event before the typed event heap, envelope/request pooling and
// observability gating; the optimized engine must stay at or below an 80%
// reduction. CI fails (gate and TestThroughputAllocCeiling alike) if a
// change pushes the engine back above this.
const mediumAllocCeiling = 1.93

// allocCeilings pins the allocs/event budget per world. The medium value
// is the long-standing acceptance bar; small and large carry proportional
// headroom over their recorded values. The replay worlds walk a recorded
// schedule with one presized heap, so their budget is two orders of
// magnitude tighter: a regression here means the walk started allocating.
var allocCeilings = map[string]float64{
	"small":                 3.20,
	"medium":                mediumAllocCeiling,
	"large":                 1.90,
	"small" + ReplaySuffix:  0.01,
	"medium" + ReplaySuffix: 0.01,
	"large" + ReplaySuffix:  0.01,
}

// replaySpeedupFloor is the acceptance bar for schedule replay: the
// goroutine-free walk must dispatch at least this many times more events
// per second than the live engine on the medium and large worlds (recorded
// speedups are 35-500x, so 5x is a loud-failure floor, not a target).
const replaySpeedupFloor = 5.0

// GateOpts configures GateThroughput.
type GateOpts struct {
	// NsTolerance is the allowed fractional ns/event regression over the
	// baseline (0.15 = +15%). Values <= 0 mean the default 0.15.
	NsTolerance float64
	// Repeats is how many times each world runs; the best (minimum)
	// ns/event and allocs/event across repeats are compared, so transient
	// host noise cannot fail the gate. Values < 1 mean 3.
	Repeats int
	// SkipWallClock disables the ns/event comparison (allocation ceilings
	// and virtual-time checks still run) — for hosts that are not
	// comparable to the one that recorded the baseline.
	SkipWallClock bool
	// Logf, when non-nil, receives per-world progress lines.
	Logf func(format string, args ...any)
}

// GateViolation describes one failed gate check.
type GateViolation struct {
	World  string
	Reason string
}

func (v GateViolation) String() string { return v.World + ": " + v.Reason }

// GateError aggregates every violation of one gate run.
type GateError struct{ Violations []GateViolation }

// Error lists every violation.
func (e *GateError) Error() string {
	msgs := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		msgs[i] = v.String()
	}
	return fmt.Sprintf("bench: throughput gate failed (%d violations):\n  %s",
		len(e.Violations), strings.Join(msgs, "\n  "))
}

// ReadThroughputJSON loads a baseline report written by WriteThroughputJSON.
func ReadThroughputJSON(path string) (ThroughputReport, error) {
	var rep ThroughputReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("bench: reading throughput baseline: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: parsing throughput baseline %s: %w", path, err)
	}
	if len(rep.Worlds) == 0 {
		return rep, fmt.Errorf("bench: throughput baseline %s has no worlds", path)
	}
	return rep, nil
}

// GateThroughput runs the throughput suite and compares it against the
// baseline report: per world, best-of-Repeats ns/event must stay within
// NsTolerance of the baseline, allocs/event must stay under the pinned
// ceiling, and virtual time must match the baseline exactly (a virtual-time
// drift means the engine changed behaviour, not just speed). Returns the
// fresh best-of results and, on failure, a *GateError naming every
// violation.
func GateThroughput(baseline ThroughputReport, o GateOpts) ([]ThroughputResult, error) {
	if o.NsTolerance <= 0 {
		o.NsTolerance = 0.15
	}
	if o.Repeats < 1 {
		o.Repeats = 3
	}
	base := make(map[string]ThroughputResult, len(baseline.Worlds))
	for _, w := range baseline.Worlds {
		base[w.World] = w
	}

	var fresh []ThroughputResult
	var violations []GateViolation
	for _, tw := range ThroughputWorlds() {
		var best, rbest ThroughputResult
		for rep := 0; rep < o.Repeats; rep++ {
			res, err := RunThroughput(tw)
			if err != nil {
				return nil, fmt.Errorf("bench: gate world %s: %w", tw.Name, err)
			}
			if rep == 0 || res.NsPerEvent < best.NsPerEvent {
				// Allocations are deterministic across repeats; wall time is
				// not, so "best" is decided by ns/event.
				best = res
			}
			rres, err := RunThroughputReplay(tw)
			if err != nil {
				return nil, fmt.Errorf("bench: gate world %s replay: %w", tw.Name, err)
			}
			if rep == 0 || rres.NsPerEvent < rbest.NsPerEvent {
				rbest = rres
			}
		}
		fresh = append(fresh, best, rbest)
		if o.Logf != nil {
			o.Logf("gate %-8s best-of-%d: %.0f ns/event, %.3f allocs/event (replay %.0f ns/event, %.4f allocs/event)",
				tw.Name, o.Repeats, best.NsPerEvent, best.AllocsPerEvent,
				rbest.NsPerEvent, rbest.AllocsPerEvent)
		}

		violations = append(violations, gateWorld(base, best, o)...)
		violations = append(violations, gateWorld(base, rbest, o)...)
		violations = append(violations, gateReplay(tw.Name, best, rbest, o)...)
	}
	if len(violations) > 0 {
		return fresh, &GateError{Violations: violations}
	}
	return fresh, nil
}

// gateReplay cross-checks a world's replay result against its own live run
// (independent of the baseline file): bit-identical events and virtual
// time, and — when wall-clock comparisons are on — the replay speedup
// floor on the medium and large worlds.
func gateReplay(world string, live, replay ThroughputResult, o GateOpts) []GateViolation {
	var violations []GateViolation
	name := world + ReplaySuffix
	if replay.Events != live.Events {
		violations = append(violations, GateViolation{name, fmt.Sprintf(
			"replayed %d events, live run dispatched %d", replay.Events, live.Events)})
	}
	if replay.VirtualUs != live.VirtualUs {
		violations = append(violations, GateViolation{name, fmt.Sprintf(
			"replay virtual time %.6fus != live %.6fus (replay not bit-identical)",
			replay.VirtualUs, live.VirtualUs)})
	}
	if !o.SkipWallClock && (world == "medium" || world == "large") &&
		replay.EventsPerSec < replaySpeedupFloor*live.EventsPerSec {
		violations = append(violations, GateViolation{name, fmt.Sprintf(
			"replay %.0f events/s is under %.0fx the live %.0f events/s",
			replay.EventsPerSec, replaySpeedupFloor, live.EventsPerSec)})
	}
	return violations
}

// gateWorld applies the gate's checks to one world's best-of result.
func gateWorld(base map[string]ThroughputResult, best ThroughputResult, o GateOpts) []GateViolation {
	b, ok := base[best.World]
	if !ok {
		return []GateViolation{{best.World, "missing from baseline"}}
	}
	var violations []GateViolation
	// Replay worlds skip the ns/event baseline comparison: their walks are
	// tens of microseconds long, so relative wall-clock tolerance is all
	// noise. Their pinned checks are the alloc ceiling, exact virtual time,
	// and the live-vs-replay speedup floor (see gateReplay).
	replayWorld := strings.HasSuffix(best.World, ReplaySuffix)
	if !o.SkipWallClock && !replayWorld && b.NsPerEvent > 0 {
		limit := b.NsPerEvent * (1 + o.NsTolerance)
		if best.NsPerEvent > limit {
			violations = append(violations, GateViolation{best.World, fmt.Sprintf(
				"ns/event %.0f exceeds baseline %.0f by more than %.0f%% (limit %.0f)",
				best.NsPerEvent, b.NsPerEvent, o.NsTolerance*100, limit)})
		}
	}
	if ceil, ok := allocCeilings[best.World]; ok && best.AllocsPerEvent > ceil {
		violations = append(violations, GateViolation{best.World, fmt.Sprintf(
			"allocs/event %.3f exceeds pinned ceiling %.2f", best.AllocsPerEvent, ceil)})
	}
	if b.VirtualUs != 0 && best.VirtualUs != b.VirtualUs {
		violations = append(violations, GateViolation{best.World, fmt.Sprintf(
			"virtual time %.6fus != baseline %.6fus (engine behaviour changed)",
			best.VirtualUs, b.VirtualUs)})
	}
	return violations
}
