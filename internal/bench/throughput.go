package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// The simulator-throughput suite measures the discrete-event engine itself:
// wall-clock ns per dispatched event, events per second, and heap
// allocations per event, on three standard world shapes. Virtual time is the
// paper's metric; these numbers bound how many figure cells the harness can
// simulate per wall-clock second, so they are tracked across PRs in
// BENCH_throughput.json.

// ThroughputWorld is one standard shape of the throughput suite. The
// workload per round is a fixed mix of the paper's three collectives at an
// eager and a rendezvous payload size, so every hot path (intranode
// eager/rendezvous, internode eager/rendezvous, barrier and counter parks)
// is exercised in realistic proportion.
type ThroughputWorld struct {
	Name   string
	Nodes  int
	PPN    int
	Rounds int
}

// ThroughputWorlds returns the standard suite: small (fits in cache,
// scheduler-dominated), medium (the figure-sweep shape the acceptance
// ceiling is pinned on), large (paper-scale rank count).
func ThroughputWorlds() []ThroughputWorld {
	return []ThroughputWorld{
		{Name: "small", Nodes: 2, PPN: 2, Rounds: 40},
		{Name: "medium", Nodes: 8, PPN: 6, Rounds: 10},
		{Name: "large", Nodes: 16, PPN: 8, Rounds: 4},
	}
}

// ThroughputResult is one world's measurement. Wall-clock figures vary with
// the host; Events and VirtualUs are deterministic and double as a
// regression check on the engine's virtual-time behaviour.
type ThroughputResult struct {
	World          string  `json:"world"`
	Ranks          int     `json:"ranks"`
	Rounds         int     `json:"rounds"`
	Events         int64   `json:"events"`
	WallNs         int64   `json:"wall_ns"`
	Allocs         uint64  `json:"allocs"`
	AllocBytes     uint64  `json:"alloc_bytes"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	VirtualUs      float64 `json:"virtual_us"`
}

// throughput payload sizes: one eager point (both transports) and one
// rendezvous point (above the intranode 4 KiB and internode 16 KiB limits).
const (
	tpEager      = 256
	tpRendezvous = 64 << 10
)

// tpSetup is one built-but-unrun throughput world: the world, the rank
// body, and the output spot-check, shared by the live and replay variants.
type tpSetup struct {
	world  *mpi.World
	size   int
	body   func(r *mpi.Rank)
	verify func() error
}

// buildThroughput constructs a throughput world with every workload buffer
// allocated up front, so measured regions reflect the simulator's own
// per-event work, not benchmark setup.
func buildThroughput(tw ThroughputWorld) (*tpSetup, error) {
	l := libs.PiPMColl()
	cluster := topology.New(tw.Nodes, tw.PPN, topology.Block)
	world, err := mpi.NewWorld(cluster, l.Config())
	if err != nil {
		return nil, err
	}
	size := cluster.Size()

	// Pre-allocate every rank's buffers outside the measured region.
	type rankBufs struct {
		scatterIn  []byte // root only
		scatterOut []byte
		gatherIn   []byte
		gatherOut  []byte
		redIn      []byte
		redOut     []byte
		bigIn      []byte
		bigOut     []byte
	}
	bufs := make([]rankBufs, size)
	for i := range bufs {
		b := &bufs[i]
		if i == 0 {
			b.scatterIn = make([]byte, size*tpEager)
			for j := 0; j < size; j++ {
				nums.FillBytes(b.scatterIn[j*tpEager:(j+1)*tpEager], j)
			}
		}
		b.scatterOut = make([]byte, tpEager)
		b.gatherIn = make([]byte, tpEager)
		nums.FillBytes(b.gatherIn, i)
		b.gatherOut = make([]byte, size*tpEager)
		b.redIn = make([]byte, tpEager)
		nums.Fill(b.redIn, i)
		b.redOut = make([]byte, tpEager)
		b.bigIn = make([]byte, tpRendezvous)
		nums.Fill(b.bigIn, i)
		b.bigOut = make([]byte, tpRendezvous)
	}

	body := func(r *mpi.Rank) {
		b := &bufs[r.Rank()]
		for round := 0; round < tw.Rounds; round++ {
			r.HarnessBarrier()
			l.Scatter(r, 0, b.scatterIn, b.scatterOut)
			l.Allgather(r, b.gatherIn, b.gatherOut)
			l.Allreduce(r, b.redIn, b.redOut, nums.Sum)
			l.Allreduce(r, b.bigIn, b.bigOut, nums.Sum)
		}
	}
	verify := func() error {
		return verifyThroughput(size, bufs[size-1].scatterOut, bufs[0].gatherOut, bufs[0].redOut)
	}
	return &tpSetup{world: world, size: size, body: body, verify: verify}, nil
}

// RunThroughput builds the world, runs the workload with no tracer or
// recorder attached (the bare configuration the hot path is optimized for),
// and reports per-event wall and allocation costs.
func RunThroughput(tw ThroughputWorld) (ThroughputResult, error) {
	s, err := buildThroughput(tw)
	if err != nil {
		return ThroughputResult{}, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	runErr := s.world.Run(s.body)
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if runErr != nil {
		return ThroughputResult{}, runErr
	}
	if err := s.verify(); err != nil {
		return ThroughputResult{}, err
	}
	return tpResult(tw.Name, s.size, tw.Rounds, s.world.Events(), wall, m0, m1,
		simtime.Duration(s.world.Horizon())), nil
}

// ReplaySuffix distinguishes the throughput suite's replay entries:
// "<world>-replay" measures the goroutine-free walk of the same world's
// recorded schedule.
const ReplaySuffix = "-replay"

// RunThroughputReplay records tw's schedule in one live (unmeasured) run,
// then measures a verified goroutine-free replay of it — the suite's view
// of schedule memoization's steady state, where every cell after the first
// is a replay. Events and virtual time are checked bit-identical to the
// live run by the walk itself.
func RunThroughputReplay(tw ThroughputWorld) (ThroughputResult, error) {
	s, err := buildThroughput(tw)
	if err != nil {
		return ThroughputResult{}, err
	}
	rec, err := s.world.Record()
	if err != nil {
		return ThroughputResult{}, err
	}
	if err := s.world.Run(s.body); err != nil {
		return ThroughputResult{}, err
	}
	if err := s.verify(); err != nil {
		return ThroughputResult{}, err
	}
	sched, err := rec.Schedule()
	if err != nil {
		return ThroughputResult{}, err
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	horizon, replayErr := sched.Replay()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if replayErr != nil {
		return ThroughputResult{}, replayErr
	}
	if horizon != s.world.Horizon() || sched.Events() != s.world.Events() {
		return ThroughputResult{}, fmt.Errorf(
			"bench: replay of %s diverged from live run (horizon %v/%v, events %d/%d)",
			tw.Name, horizon, s.world.Horizon(), sched.Events(), s.world.Events())
	}
	return tpResult(tw.Name+ReplaySuffix, s.size, tw.Rounds, sched.Events(), wall, m0, m1,
		simtime.Duration(horizon)), nil
}

// tpResult assembles one ThroughputResult from a measured region.
func tpResult(name string, ranks, rounds int, events int64, wall time.Duration,
	m0, m1 runtime.MemStats, virtual simtime.Duration) ThroughputResult {
	res := ThroughputResult{
		World:      name,
		Ranks:      ranks,
		Rounds:     rounds,
		Events:     events,
		WallNs:     wall.Nanoseconds(),
		Allocs:     m1.Mallocs - m0.Mallocs,
		AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
		VirtualUs:  virtual.Microseconds(),
	}
	if res.Events > 0 {
		res.NsPerEvent = float64(res.WallNs) / float64(res.Events)
		res.AllocsPerEvent = float64(res.Allocs) / float64(res.Events)
	}
	if res.WallNs > 0 {
		res.EventsPerSec = float64(res.Events) / (float64(res.WallNs) / 1e9)
	}
	return res
}

// verifyThroughput spot-checks the last round's collective outputs so the
// suite cannot silently measure a broken simulation.
func verifyThroughput(size int, scatterLast, gather0, red0 []byte) error {
	want := make([]byte, tpEager)
	nums.FillBytes(want, size-1)
	if !bytes.Equal(scatterLast, want) {
		return fmt.Errorf("bench: throughput scatter verification failed on rank %d", size-1)
	}
	for j := 0; j < size; j++ {
		nums.FillBytes(want, j)
		if !bytes.Equal(gather0[j*tpEager:(j+1)*tpEager], want) {
			return fmt.Errorf("bench: throughput allgather verification failed at chunk %d", j)
		}
	}
	wantRed := make([]byte, tpEager)
	nums.Fill(wantRed, 0)
	tmp := make([]byte, tpEager)
	for i := 1; i < size; i++ {
		nums.Fill(tmp, i)
		nums.Sum.Combine(wantRed, tmp)
	}
	if !bytes.Equal(red0, wantRed) {
		return fmt.Errorf("bench: throughput allreduce verification failed on rank 0")
	}
	return nil
}

// ThroughputReport is the JSON envelope written to BENCH_throughput.json;
// Schema versions the layout for later tooling.
type ThroughputReport struct {
	Schema string             `json:"schema"`
	Worlds []ThroughputResult `json:"worlds"`
}

// WriteThroughputJSON writes the suite's results to path, creating or
// truncating the file.
func WriteThroughputJSON(path string, results []ThroughputResult) error {
	rep := ThroughputReport{Schema: "pipmcoll/throughput/v1", Worlds: results}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
