package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/stats"
)

// csvConcat renders a figure result the way the CLI's -csv flag and the
// golden tests do, so byte comparison covers exactly the persisted format.
func csvConcat(tables []*stats.Table) string {
	var out string
	for _, t := range tables {
		out += t.CSV() + "\n"
	}
	return out
}

// TestParallelMatchesSerial: the runner's defining property — a parallel
// run of a representative figure is byte-identical to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	fig, err := Lookup("9")
	if err != nil {
		t.Fatal(err)
	}
	o := Opts{Warmup: 1, Iters: 1}
	serial, err := NewRunner(RunnerConfig{Parallel: 1}).RunFigure(context.Background(), fig, o)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(RunnerConfig{Parallel: 8}).RunFigure(context.Background(), fig, o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := csvConcat(parallel), csvConcat(serial); got != want {
		t.Errorf("parallel output diverged from serial.\n--- parallel ---\n%s--- serial ---\n%s", got, want)
	}
	for i := range serial {
		if !serial[i].Equal(parallel[i]) {
			t.Errorf("table %d not equal between serial and parallel runs", i)
		}
	}
}

// TestCacheRoundTrip: a second run of the same figure under the same cache
// must hit on every cell and reproduce the same tables.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Lookup("6")
	if err != nil {
		t.Fatal(err)
	}
	o := Opts{Warmup: 1, Iters: 1}
	r := NewRunner(RunnerConfig{Parallel: 4, Cache: cache})

	first, err := r.RunFigure(context.Background(), fig, o)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses == 0 {
		t.Fatalf("cold run: %d hits, %d misses", hits, misses)
	}
	cells := misses

	second, err := r.RunFigure(context.Background(), fig, o)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses = cache.Stats()
	if hits != cells || misses != cells {
		t.Fatalf("warm run not 100%% hits: %d hits, %d misses, %d cells", hits, misses, cells)
	}
	if len(first) != len(second) {
		t.Fatalf("table counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if !first[i].Equal(second[i]) {
			t.Errorf("cached table %d differs from fresh table", i)
		}
	}
	if csvConcat(first) != csvConcat(second) {
		t.Error("cached CSV output differs from fresh output")
	}
}

// TestCacheDistinguishesOpts: changing the iteration counts must miss.
func TestCacheDistinguishesOpts(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Lookup("1")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(RunnerConfig{Parallel: 2, Cache: cache})
	if _, err := r.RunFigure(context.Background(), fig, Opts{Warmup: 1, Iters: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunFigure(context.Background(), fig, Opts{Warmup: 1, Iters: 2}); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Errorf("different Opts produced %d cache hits", hits)
	}
}

// TestRunnerProgress: the progress callback must count every cell exactly
// once up to the total.
func TestRunnerProgress(t *testing.T) {
	fig, err := Lookup("1")
	if err != nil {
		t.Fatal(err)
	}
	var calls []int
	var lastTotal int
	r := NewRunner(RunnerConfig{Parallel: 4, Progress: func(done, total int) {
		calls = append(calls, done)
		lastTotal = total
	}})
	if _, err := r.RunFigure(context.Background(), fig, Opts{Warmup: 1, Iters: 1}); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 || len(calls) != lastTotal {
		t.Fatalf("progress called %d times for %d cells", len(calls), lastTotal)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress counts not monotone: %v", calls)
		}
	}
}

// TestRunnerPropagatesCellErrors: a failing cell must fail the figure with
// context, and a panicking cell must be converted to an error rather than
// killing the process.
func TestRunnerPropagatesCellErrors(t *testing.T) {
	boom := errors.New("boom")
	plan := &Plan{
		Tables: []*stats.Table{stats.NewTable("t", "x", "", []string{"c"}, []string{"r"})},
		Cells: []Cell{
			{Key: "ok", Run: func() ([]Value, error) {
				return []Value{{Table: 0, Row: "r", Col: "c", V: 1}}, nil
			}},
			{Key: "bad", Run: func() ([]Value, error) { return nil, boom }},
		},
	}
	_, err := NewRunner(RunnerConfig{Parallel: 2}).RunPlan(context.Background(), "test", plan, Opts{Warmup: 1, Iters: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("cell error not propagated: %v", err)
	}

	panicPlan := &Plan{
		Tables: plan.Tables,
		Cells: []Cell{
			{Key: "panic", Run: func() ([]Value, error) { panic("kaboom") }},
		},
	}
	_, err = NewRunner(RunnerConfig{Parallel: 1}).RunPlan(context.Background(), "test", panicPlan, Opts{Warmup: 1, Iters: 1})
	if err == nil {
		t.Fatal("panicking cell did not fail the figure")
	}
}

// TestRunnerCollectsAllFailingCells: every failing cell of a figure is
// reported at once in declaration order, each with its key, instead of the
// first failure masking the rest.
func TestRunnerCollectsAllFailingCells(t *testing.T) {
	plan := &Plan{
		Tables: []*stats.Table{stats.NewTable("t", "x", "", []string{"c"}, []string{"r"})},
		Cells: []Cell{
			{Key: "bad1", Run: func() ([]Value, error) { return nil, errors.New("one") }},
			{Key: "ok", Run: func() ([]Value, error) {
				return []Value{{Table: 0, Row: "r", Col: "c", V: 1}}, nil
			}},
			{Key: "bad2", Run: func() ([]Value, error) { return nil, errors.New("two") }},
		},
	}
	_, err := NewRunner(RunnerConfig{Parallel: 3}).RunPlan(context.Background(), "test", plan, Opts{Warmup: 1, Iters: 1})
	var ce *CellErrors
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CellErrors", err, err)
	}
	if ce.Total != 3 || len(ce.Cells) != 2 {
		t.Fatalf("aggregate reports %d/%d failures, want 2/3", len(ce.Cells), ce.Total)
	}
	if ce.Cells[0].Key != "bad1" || ce.Cells[1].Key != "bad2" {
		t.Fatalf("failing keys [%s %s], want declaration order [bad1 bad2]", ce.Cells[0].Key, ce.Cells[1].Key)
	}
	msg := err.Error()
	for _, want := range []string{"bad1", "one", "bad2", "two"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestRegistryOrderAndKinds: All() presents paper figures first in paper
// order, then extensions, ablations, sensitivity.
func TestRegistryOrderAndKinds(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("registry holds %d figures, want 22", len(all))
	}
	var ids []string
	for _, f := range all {
		ids = append(ids, f.ID)
	}
	want := []string{"1", "6", "7", "8", "9", "10", "11", "12", "13", "14",
		"E1", "E2", "E3", "E4", "E5", "A1", "A2", "A3", "S1", "S2", "S3", "S4"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("registry order %v, want %v", ids, want)
	}
	counts := map[Kind]int{}
	for _, f := range all {
		counts[f.Kind]++
	}
	if counts[KindPaper] != 10 || counts[KindExtension] != 5 ||
		counts[KindAblation] != 3 || counts[KindSensitivity] != 4 {
		t.Fatalf("kind counts: %v", counts)
	}
}

// TestRegisterValidation: incomplete and duplicate registrations panic.
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f Figure) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		Register(f)
	}
	cells := func(Opts) *Plan { return &Plan{} }
	mustPanic("empty id", Figure{Title: "x", Cells: cells})
	mustPanic("no cells", Figure{ID: "Z1", Title: "x"})
	mustPanic("duplicate", Figure{ID: "1", Title: "x", Cells: cells})
}
