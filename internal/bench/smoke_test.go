package bench

import (
	"math"
	"testing"
)

// TestDriversSmoke runs every cheap figure driver once in quick mode and
// checks structural invariants: full tables (no NaN cells), positive
// runtimes. The expensive drivers (12-14) are exercised by the claims and
// golden tests.
func TestDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("driver smoke regenerates several figures")
	}
	o := Opts{Warmup: 1, Iters: 1}
	for _, id := range []string{"7", "8", "9", "10", "E1", "E2", "E3", "A1", "S1", "S3", "S4"} {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			fig, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			tables := fig.Run(o)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				for i, row := range tb.Cells {
					for j, v := range row {
						if math.IsNaN(v) || v <= 0 {
							t.Fatalf("%s cell (%s,%s) = %v",
								tb.Title, tb.RowNames[i], tb.Columns[j], v)
						}
					}
				}
			}
		})
	}
}

// TestChaosShape: injected faults must cost latency — the noisiest and
// lossiest rows of the chaos sensitivity figures cannot beat the clean
// rows for any library.
func TestChaosShape(t *testing.T) {
	libs := []string{"IntelMPI", "PiP-MPICH", "PiP-MColl"}
	s3 := SensS3(Opts{Warmup: 1, Iters: 2})
	for _, lib := range libs {
		if noisy, clean := s3[0].Get("2us", lib), s3[0].Get("off", lib); noisy <= clean {
			t.Errorf("%s: 2us noise amplitude (%v us) not slower than quiet (%v us)", lib, noisy, clean)
		}
		if fast, slow := s3[1].Get("2us", lib), s3[1].Get("20us", lib); fast <= slow {
			t.Errorf("%s: 2us noise period (%v us) not slower than 20us period (%v us)", lib, fast, slow)
		}
	}
	s4 := SensS4(Opts{Warmup: 1, Iters: 2})
	for _, lib := range libs {
		if lossy, clean := s4[0].Get("30%", lib), s4[0].Get("0%", lib); lossy <= clean {
			t.Errorf("%s: 30%% drop rate (%v us) not slower than lossless (%v us)", lib, lossy, clean)
		}
	}
}

// TestSensitivityShape: oversubscription must monotonically slow both
// libraries while PiP-MColl keeps the advantage (the S1 finding).
func TestSensitivityShape(t *testing.T) {
	tables := SensS1(Opts{Warmup: 1, Iters: 1})
	tb := tables[0]
	prevBase, prevOurs := 0.0, 0.0
	for _, row := range tb.RowNames {
		base := tb.Get(row, "PiP-MPICH")
		ours := tb.Get(row, "PiP-MColl")
		if ours >= base {
			t.Errorf("PiP-MColl not ahead at %s oversubscription", row)
		}
		if base < prevBase || ours < prevOurs {
			t.Errorf("thinner uplink got faster at %s", row)
		}
		prevBase, prevOurs = base, ours
	}
}

// TestAblationA1Shape: the baseline must degrade with the size-sync cost
// while PiP-MColl stays flat.
func TestAblationA1Shape(t *testing.T) {
	tb := AblA1(Opts{Warmup: 1, Iters: 1})[0]
	first, last := tb.RowNames[0], tb.RowNames[len(tb.RowNames)-1]
	if tb.Get(last, "PiP-MPICH") <= tb.Get(first, "PiP-MPICH") {
		t.Error("baseline insensitive to size-sync cost")
	}
	if tb.Get(last, "PiP-MColl") != tb.Get(first, "PiP-MColl") {
		t.Error("PiP-MColl sensitive to size-sync cost (it must not pay it)")
	}
}

// TestAblationA2Shape: larger switch points must never beat the best
// smaller one at sizes past the true crossover (monotone rows).
func TestAblationA2Shape(t *testing.T) {
	tb := AblA2(Opts{Warmup: 1, Iters: 1})[0]
	for _, row := range tb.RowNames {
		// Within a row, runtime is non-decreasing as the switch point
		// moves right past the row's size (the ring stops being used).
		prev := 0.0
		for _, col := range tb.Columns {
			v := tb.Get(row, col)
			if v < prev*(1-1e-9) {
				t.Errorf("row %s not monotone at %s: %v < %v", row, col, v, prev)
			}
			prev = v
		}
	}
}

// TestSensitivityS2Shape: contention never speeds anything up, and the
// tightest memory port must slow the copy-heavy PiP-MColl phases.
func TestSensitivityS2Shape(t *testing.T) {
	tb := SensS2(Opts{Warmup: 1, Iters: 1})[0]
	for _, col := range tb.Columns {
		off := tb.Get("off", col)
		tight := tb.Get("2x core", col)
		if tight < off*(1-1e-9) {
			t.Errorf("%s faster under contention: %v vs %v", col, tight, off)
		}
	}
	if tb.Get("2x core", "PiP-MColl") <= tb.Get("off", "PiP-MColl") {
		t.Error("PiP-MColl unaffected by a 2x-core memory port")
	}
}
