package bench

import (
	"fmt"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// A Cell is one independent measurement unit of a figure: typically a
// single (library, shape, payload) point. Each cell builds its own
// simulation world when run, so cells share no mutable state and can be
// scheduled concurrently without changing any result.
type Cell struct {
	// Key identifies the cell's inputs within its figure — every parameter
	// that influences the measurement must appear in it, because it is
	// hashed (together with the figure ID, the Opts and the calibration
	// constants) into the result-cache address.
	Key string
	// Run performs the measurement and returns the table cells it fills.
	Run func() ([]Value, error)
}

// Value is one table cell produced by a Cell: a measurement routed to
// (table index, row, column) of the figure's skeleton tables. Values are
// the unit of result caching, so they carry JSON tags.
type Value struct {
	Table int     `json:"t"`
	Row   string  `json:"r"`
	Col   string  `json:"c"`
	V     float64 `json:"v"`
}

// Plan is a figure's decomposition: skeleton tables with NaN cells, the
// independent Cells that fill them, and an optional Finish hook for
// derived tables (normalized views) computed after every cell landed.
// Tables are assembled in declaration order regardless of cell completion
// order, so parallel output is byte-identical to the serial path.
type Plan struct {
	Tables []*stats.Table
	Cells  []Cell
	Finish func([]*stats.Table) []*stats.Table
}

// specKey renders a Spec into a cache-key fragment.
func specKey(s Spec) string {
	return fmt.Sprintf("run lib=%s op=%s nodes=%d ppn=%d bytes=%d warmup=%d iters=%d",
		s.Lib.Name(), s.Op, s.Nodes, s.PPN, s.Bytes, s.Warmup, s.Iters)
}

// cfgKey fingerprints a transport configuration for cells that override the
// library defaults (ablations, sensitivity sweeps, the tuner).
func cfgKey(cfg mpi.Config) string { return fmt.Sprintf("%+v", cfg) }

// libNames returns the display names of a library set — the sweep tables'
// column headers.
func libNames(ls []*libs.Library) []string {
	cols := make([]string, len(ls))
	for i, l := range ls {
		cols[i] = l.Name()
	}
	return cols
}

// sweepCells builds one cell per (point, library) pair, each running the
// standard measurement harness and filling row labels[i] of the given
// table.
func sweepCells(table int, ls []*libs.Library, points []Spec, labels []string) []Cell {
	cells := make([]Cell, 0, len(points)*len(ls))
	for i, base := range points {
		for _, l := range ls {
			spec := base
			spec.Lib = l
			row := labels[i]
			cells = append(cells, Cell{
				Key: specKey(spec),
				Run: func() ([]Value, error) {
					m, err := Run(spec)
					if err != nil {
						return nil, err
					}
					return []Value{{Table: table, Row: row, Col: spec.Lib.Name(), V: m.MeanMicros()}}, nil
				},
			})
		}
	}
	return cells
}

// normalizeFinish returns a Finish hook appending the normalized-to-refCol
// view of the first table — the paper's bar-chart style.
func normalizeFinish(refCol string) func([]*stats.Table) []*stats.Table {
	return func(ts []*stats.Table) []*stats.Table {
		return append(ts, ts[0].Normalized(refCol))
	}
}
