package bench

import (
	"bytes"
	"fmt"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Extension experiments: the multi-object Bcast, Gather, Reduce and
// Alltoall are not part of the paper's evaluation, but follow its Section
// III recipe (DESIGN.md lists them as E1-E4). Each driver sweeps message
// sizes across all library profiles on a fixed cluster, with results
// verified like the primary collectives.

// ExtOp extends the measurable operations to the extension collectives.
type extOp string

const (
	extBcast    extOp = "bcast"
	extGather   extOp = "gather"
	extReduce   extOp = "reduce"
	extAlltoall extOp = "alltoall"
)

func init() {
	Register(Figure{ID: "E1", Kind: KindExtension, Cells: extE1Cells,
		Title: "MPI_Bcast across message sizes (extension)"})
	Register(Figure{ID: "E2", Kind: KindExtension, Cells: extE2Cells,
		Title: "MPI_Gather across message sizes (extension)"})
	Register(Figure{ID: "E3", Kind: KindExtension, Cells: extE3Cells,
		Title: "MPI_Reduce across message sizes (extension)"})
	Register(Figure{ID: "E4", Kind: KindExtension, Cells: extE4Cells,
		Title: "MPI_Alltoall across message sizes (extension)"})
}

// ExtE1 sweeps broadcast sizes.
func ExtE1(o Opts) []*stats.Table { return runSerial("E1", extE1Cells, o) }

func extE1Cells(o Opts) *Plan { return extSweepCells(o, extBcast, "E1: MPI_Bcast") }

// ExtE2 sweeps gather sizes.
func ExtE2(o Opts) []*stats.Table { return runSerial("E2", extE2Cells, o) }

func extE2Cells(o Opts) *Plan { return extSweepCells(o, extGather, "E2: MPI_Gather") }

// ExtE3 sweeps reduce sizes.
func ExtE3(o Opts) []*stats.Table { return runSerial("E3", extE3Cells, o) }

func extE3Cells(o Opts) *Plan { return extSweepCells(o, extReduce, "E3: MPI_Reduce") }

// ExtE4 sweeps alltoall chunk sizes.
func ExtE4(o Opts) []*stats.Table { return runSerial("E4", extE4Cells, o) }

func extE4Cells(o Opts) *Plan { return extSweepCells(o, extAlltoall, "E4: MPI_Alltoall") }

// extSweepCells decomposes one extension sweep into one cell per
// (size, library) point.
func extSweepCells(o Opts, op extOp, title string) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 8, 16), pick(o, 4, 12)
	sizes := []int{64, 1 << 10, 16 << 10, 128 << 10}
	if op == extAlltoall {
		// Alltoall payloads are per-peer chunks; keep totals bounded.
		sizes = []int{16, 256, 4 << 10, 32 << 10}
	}
	ls := libs.All()
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = sizeLabel(s)
	}
	t := stats.NewTable(fmt.Sprintf("%s (%dx%d)", title, nodes, ppn), "size", "us", libNames(ls), rows)
	var cells []Cell
	for i, size := range sizes {
		for _, l := range ls {
			l, size, row := l, size, rows[i]
			cells = append(cells, Cell{
				Key: fmt.Sprintf("ext op=%s lib=%s nodes=%d ppn=%d bytes=%d warmup=%d iters=%d",
					op, l.Name(), nodes, ppn, size, o.Warmup, o.Iters),
				Run: func() ([]Value, error) {
					us, err := runExt(l, op, nodes, ppn, size, o)
					if err != nil {
						return nil, err
					}
					return []Value{{Table: 0, Row: row, Col: l.Name(), V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells, Finish: normalizeFinish("PiP-MColl")}
}

// runExt measures one extension point with verification.
func runExt(lib *libs.Library, op extOp, nodes, ppn, payload int, o Opts) (float64, error) {
	cluster := topology.New(nodes, ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, lib.Config())
	if err != nil {
		return 0, err
	}
	size := cluster.Size()
	root := size / 2
	var sum simtime.Duration
	var verifyErr error
	err = world.Run(func(r *mpi.Rank) {
		in, out, want := extBuffers(op, r, size, payload, root)
		total := o.Warmup + o.Iters
		for it := 0; it < total; it++ {
			r.HarnessBarrier()
			start := r.Now()
			runExtOnce(lib, op, r, root, in, out)
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
		if err := verifyExt(op, r, root, out, want); err != nil && verifyErr == nil {
			verifyErr = err
		}
	})
	if err != nil {
		return 0, fmt.Errorf("bench: %s/%s %dx%d %dB: %w", lib.Name(), op, nodes, ppn, payload, err)
	}
	if verifyErr != nil {
		return 0, verifyErr
	}
	return (simtime.Duration(sum) / simtime.Duration(o.Iters)).Microseconds(), nil
}

func extBuffers(op extOp, r *mpi.Rank, size, payload, root int) (in, out, want []byte) {
	switch op {
	case extBcast:
		want = make([]byte, payload)
		nums.FillBytes(want, 9)
		out = make([]byte, payload)
		if r.Rank() == root {
			copy(out, want)
		}
	case extGather:
		in = make([]byte, payload)
		nums.FillBytes(in, r.Rank())
		if r.Rank() == root {
			out = make([]byte, size*payload)
			want = make([]byte, size*payload)
			for i := 0; i < size; i++ {
				nums.FillBytes(want[i*payload:(i+1)*payload], i)
			}
		}
	case extReduce:
		in = make([]byte, payload)
		nums.Fill(in, r.Rank())
		if r.Rank() == root {
			out = make([]byte, payload)
			want = make([]byte, payload)
			nums.Fill(want, 0)
			tmp := make([]byte, payload)
			for i := 1; i < size; i++ {
				nums.Fill(tmp, i)
				nums.Sum.Combine(want, tmp)
			}
		}
	case extAlltoall:
		in = make([]byte, size*payload)
		for j := 0; j < size; j++ {
			nums.FillBytes(in[j*payload:(j+1)*payload], r.Rank()*1000+j)
		}
		out = make([]byte, size*payload)
		want = make([]byte, size*payload)
		for src := 0; src < size; src++ {
			nums.FillBytes(want[src*payload:(src+1)*payload], src*1000+r.Rank())
		}
	}
	return in, out, want
}

func runExtOnce(lib *libs.Library, op extOp, r *mpi.Rank, root int, in, out []byte) {
	switch op {
	case extBcast:
		lib.Bcast(r, root, out)
	case extGather:
		lib.Gather(r, root, in, out)
	case extReduce:
		lib.Reduce(r, root, in, out, nums.Sum)
	case extAlltoall:
		lib.Alltoall(r, in, out)
	}
}

func verifyExt(op extOp, r *mpi.Rank, root int, out, want []byte) error {
	if want == nil {
		return nil // non-root in a rooted collective
	}
	if op == extBcast || op == extAlltoall || r.Rank() == root {
		if !bytes.Equal(out, want) {
			return fmt.Errorf("bench: %s rank %d produced wrong result", op, r.Rank())
		}
	}
	return nil
}

// RunExtension runs one verified measurement of an extension collective for
// the validation tool, discarding the timing.
func RunExtension(lib *libs.Library, op string, nodes, ppn, payload int) error {
	_, err := runExt(lib, extOp(op), nodes, ppn, payload, Opts{Warmup: 1, Iters: 1})
	return err
}
