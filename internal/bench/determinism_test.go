package bench

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/libs"
	"repro/internal/stats"
)

// TestFig9CellGolden pins the byte-exact CSV of full figure-9 cells (every
// library at a representative small-scatter size on the quick 16x6 shape,
// with the harness's standard warm-up/iteration counts). The golden was
// recorded before the engine's allocation-free rewrite; any virtual-time
// drift — a single tick anywhere in the event ordering — shows up here as a
// CSV diff. Regenerate after an intentional calibration or algorithm change
// with:
//
//	go test ./internal/bench -run Fig9CellGolden -update
func TestFig9CellGolden(t *testing.T) {
	const bytes = 1024 // the largest fig-9 point: intranode + internode mix
	ls := libs.All()
	table := stats.NewTable("Fig 9 cell: MPI_Scatter 1 kB (16x6, quick)",
		"size", "us", libNames(ls), []string{"1024B"})
	for _, l := range ls {
		m, err := Run(Spec{Lib: l, Op: OpScatter, Nodes: 16, PPN: 6,
			Bytes: bytes, Warmup: 2, Iters: 3})
		if err != nil {
			t.Fatal(err)
		}
		table.Set("1024B", l.Name(), m.MeanMicros())
	}
	got := table.CSV()
	path := filepath.Join("testdata", "fig9_cell.golden.csv")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("fig9 cell diverged from golden output.\n--- got ---\n%s--- want ---\n%s",
			got, want)
	}
}
