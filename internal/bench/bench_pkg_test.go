package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/libs"
	"repro/internal/mpi"
)

func TestRunBasicMeasurement(t *testing.T) {
	m, err := Run(Spec{Lib: libs.PiPMColl(), Op: OpAllreduce,
		Nodes: 2, PPN: 3, Bytes: 256, Warmup: 1, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerIter) != 4 {
		t.Fatalf("got %d iterations", len(m.PerIter))
	}
	if m.Summary.Mean <= 0 {
		t.Fatalf("mean = %v", m.Summary.Mean)
	}
	// Deterministic simulation: identical iterations after warm-up.
	for _, d := range m.PerIter[1:] {
		if d != m.PerIter[0] {
			t.Fatalf("iterations differ: %v", m.PerIter)
		}
	}
	if m.Summary.StdDev != 0 {
		t.Fatalf("stddev = %v, want 0 for deterministic iterations", m.Summary.StdDev)
	}
}

func TestRunAllOpsAllLibs(t *testing.T) {
	ls := append(libs.All(), libs.PiPMCollSmall())
	for _, op := range []Op{OpScatter, OpAllgather, OpAllreduce} {
		for _, l := range ls {
			m, err := Run(Spec{Lib: l, Op: op, Nodes: 2, PPN: 2, Bytes: 64, Warmup: 1, Iters: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", l.Name(), op, err)
			}
			if m.MeanMicros() <= 0 {
				t.Fatalf("%s/%s: non-positive time", l.Name(), op)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Lib: libs.PiPMColl(), Op: OpScatter, Nodes: 0, PPN: 1, Bytes: 8, Iters: 1},
		{Lib: libs.PiPMColl(), Op: OpScatter, Nodes: 1, PPN: 1, Bytes: 0, Iters: 1},
		{Lib: libs.PiPMColl(), Op: OpAllreduce, Nodes: 1, PPN: 1, Bytes: 7, Iters: 1},
		{Lib: libs.PiPMColl(), Op: Op("bogus"), Nodes: 1, PPN: 1, Bytes: 8, Iters: 1},
		{Lib: libs.PiPMColl(), Op: OpScatter, Nodes: 1, PPN: 1, Bytes: 8, Iters: 0},
	}
	for i, s := range bad {
		if _, err := Run(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestWarmupExcluded(t *testing.T) {
	// The XPMEM profile's first iteration pays attach costs; with warm-up
	// the measured iterations must all be identical.
	m, err := Run(Spec{Lib: libs.MVAPICH2(), Op: OpAllreduce,
		Nodes: 2, PPN: 2, Bytes: 64 << 10, Warmup: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range m.PerIter[1:] {
		if d != m.PerIter[0] {
			t.Fatalf("warmed iterations differ: %v", m.PerIter)
		}
	}
	// Without warm-up, the first iteration must be the slowest.
	cold, err := Run(Spec{Lib: libs.MVAPICH2(), Op: OpAllreduce,
		Nodes: 2, PPN: 2, Bytes: 64 << 10, Warmup: 0, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cold.PerIter[0] <= cold.PerIter[1] {
		t.Fatalf("cold first iteration %v not slower than warmed %v",
			cold.PerIter[0], cold.PerIter[1])
	}
}

func TestFigureRegistry(t *testing.T) {
	figs := ByKind(KindPaper)
	if len(figs) != 10 {
		t.Fatalf("got %d paper figures", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range All() {
		if f.Cells == nil || f.Title == "" {
			t.Fatalf("figure %q incomplete", f.ID)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
		got, err := Lookup(f.ID)
		if err != nil || got.ID != f.ID {
			t.Fatalf("Lookup(%q) failed: %v", f.ID, err)
		}
	}
	if _, err := Lookup("99"); err == nil {
		t.Fatal("unknown figure resolved")
	}
}

func TestFig1ShapesHold(t *testing.T) {
	tables := Fig1(Opts{Warmup: 1, Iters: 1})
	if len(tables) != 1 {
		t.Fatalf("fig1 returned %d tables", len(tables))
	}
	tb := tables[0]
	rate1 := tb.Get("1", tb.Columns[0])
	rate18 := tb.Get("18", tb.Columns[0])
	bw1 := tb.Get("1", tb.Columns[1])
	bw18 := tb.Get("18", tb.Columns[1])
	if !(rate18 > rate1) || !(bw18 > bw1) {
		t.Fatalf("fig1 not monotone: rate %v->%v, bw %v->%v", rate1, rate18, bw1, bw18)
	}
	if bw18 > 12.5*1.05 {
		t.Fatalf("fig1 throughput %v exceeds link", bw18)
	}
}

func TestScaleFigureQuick(t *testing.T) {
	// Figure 6 in quick mode: PiP-MColl at or below the baseline at every
	// node count, both sizes.
	tables := Fig6(Opts{Warmup: 1, Iters: 1})
	if len(tables) != 2 {
		t.Fatalf("fig6 returned %d tables", len(tables))
	}
	for _, tb := range tables {
		for _, row := range tb.RowNames {
			base := tb.Get(row, "PiP-MPICH")
			ours := tb.Get(row, "PiP-MColl")
			if math.IsNaN(base) || math.IsNaN(ours) {
				t.Fatalf("missing cell in %s row %s", tb.Title, row)
			}
			if ours > base {
				t.Errorf("%s: PiP-MColl (%v us) slower than baseline (%v us) at %s nodes",
					tb.Title, ours, base, row)
			}
		}
	}
}

func TestNormalizedReferenceColumnIsOne(t *testing.T) {
	tabs := Fig11(Opts{Warmup: 1, Iters: 1})
	if len(tabs) != 2 {
		t.Fatalf("fig11 returned %d tables", len(tabs))
	}
	norm := tabs[1]
	if !strings.Contains(norm.Title, "normalized") {
		t.Fatalf("second table not normalized: %q", norm.Title)
	}
	for _, row := range norm.RowNames {
		if v := norm.Get(row, "PiP-MColl"); math.Abs(v-1) > 1e-9 {
			t.Fatalf("reference column at %s = %v", row, v)
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{16: "16B", 1 << 10: "1kB", 512 << 10: "512kB", 1 << 20: "1MB", 1500: "1500B"}
	for n, want := range cases {
		if got := sizeLabel(n); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTuneFindsCrossovers(t *testing.T) {
	res, err := Tune(mpi.DefaultConfig(), 4, 3, Opts{Warmup: 1, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) == 0 || len(res.AGSmall) != len(res.Sizes) {
		t.Fatalf("incomplete ladder: %+v", res)
	}
	// On this fabric the large algorithms win well before the paper's
	// 64 kB (ablation A2); the recommendation must reflect that.
	if res.AllgatherCrossover == 0 || res.AllgatherCrossover > 64<<10 {
		t.Errorf("allgather crossover = %d", res.AllgatherCrossover)
	}
	if res.Recommended.AllgatherLargeMin != res.AllgatherCrossover {
		t.Errorf("recommendation %d does not match crossover %d",
			res.Recommended.AllgatherLargeMin, res.AllgatherCrossover)
	}
	if res.Format() == "" {
		t.Error("empty report")
	}
	// The recommended tunables must themselves be valid and run.
	m, err := Run(Spec{Lib: libs.PiPMColl(), Op: OpAllgather, Nodes: 4, PPN: 3,
		Bytes: res.AllgatherCrossover, Warmup: 1, Iters: 1})
	if err != nil || m.MeanMicros() <= 0 {
		t.Fatalf("crossover-size run failed: %v", err)
	}
}

func TestClaimsHoldQuickMode(t *testing.T) {
	if testing.Short() {
		t.Skip("claims evaluation regenerates several figures (~25s)")
	}
	results, err := EvaluateClaims(Opts{Warmup: 1, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Claims()) {
		t.Fatalf("%d results for %d claims", len(results), len(Claims()))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s failed: %s (%s)", r.Claim.ID, r.Claim.Text, r.Detail)
		}
		if r.Detail == "" {
			t.Errorf("%s has no detail", r.Claim.ID)
		}
	}
}
