package bench

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/simtime"
)

// newFloodEngine builds the Figure 1 microbenchmark: k sender processes on
// node 0 each streaming count messages of the given size to k paired
// receivers on node 1, directly over the fabric (no MPI layer), exactly as
// the paper's point-to-point motivation experiment isolates the NIC.
func newFloodEngine(f *fabric.Fabric, k, count, bytes int) *simtime.Engine {
	e := simtime.NewEngine()
	for q := 0; q < k; q++ {
		q := q
		e.Spawn(fmt.Sprintf("sender%d", q), func(p *simtime.Proc) {
			for i := 0; i < count; i++ {
				f.Send(p, fabric.Endpoint{Node: 0, Queue: q},
					fabric.Endpoint{Node: 1, Queue: q}, bytes, nil)
			}
		})
		e.Spawn(fmt.Sprintf("recver%d", q), func(p *simtime.Proc) {
			for i := 0; i < count; i++ {
				f.Inbox(fabric.Endpoint{Node: 1, Queue: q}).Get(p, nil)
			}
		})
	}
	return e
}
