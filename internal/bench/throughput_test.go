package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/race"
)

// TestThroughputAllocCeiling enforces the allocs/event budget on the
// medium world. Wall-clock metrics vary with the host, but allocations per
// dispatched event are deterministic on a given Go release, so the ceiling
// is safe to pin in CI.
func TestThroughputAllocCeiling(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation changes heap behaviour; ceiling holds for plain builds")
	}
	if testing.Short() {
		t.Skip("medium throughput world is not short-mode material")
	}
	var medium ThroughputWorld
	for _, tw := range ThroughputWorlds() {
		if tw.Name == "medium" {
			medium = tw
		}
	}
	res, err := RunThroughput(medium)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("medium world: %d events, %.3f allocs/event, %.0f ns/event",
		res.Events, res.AllocsPerEvent, res.NsPerEvent)
	if res.AllocsPerEvent > mediumAllocCeiling {
		t.Fatalf("medium world allocates %.3f objects/event, ceiling %.2f",
			res.AllocsPerEvent, mediumAllocCeiling)
	}
}

// TestThroughputVirtualTimePinned pins each world's virtual completion
// time: the engine-performance work must never change simulated time by a
// single tick, so the values measured before the optimization are golden.
func TestThroughputVirtualTimePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is not short-mode material")
	}
	want := map[string]float64{"small": 2980.177160, "medium": 1075.493022, "large": 548.045689}
	for _, tw := range ThroughputWorlds() {
		res, err := RunThroughput(tw)
		if err != nil {
			t.Fatal(err)
		}
		if w, ok := want[tw.Name]; ok && res.VirtualUs != w {
			t.Errorf("%s world virtual time = %.6fus, want %.6fus", tw.Name, res.VirtualUs, w)
		}
		// The replay variant walks the recorded schedule of the same world,
		// so it pins to the identical virtual time — any drift means the
		// replay is not bit-identical to the live engine.
		rres, err := RunThroughputReplay(tw)
		if err != nil {
			t.Fatal(err)
		}
		if w, ok := want[tw.Name]; ok && rres.VirtualUs != w {
			t.Errorf("%s replay virtual time = %.6fus, want %.6fus", tw.Name, rres.VirtualUs, w)
		}
		if rres.Events != res.Events {
			t.Errorf("%s replay dispatched %d events, live %d", tw.Name, rres.Events, res.Events)
		}
	}
}

// TestThroughputReplaySpeedup enforces the tentpole acceptance bar on real
// wall clocks: the goroutine-free walk must beat the live engine by at
// least replaySpeedupFloor on the medium and large worlds (measured margins
// are 35-55x, so a failure here means replay fell off a cliff, not noise).
func TestThroughputReplaySpeedup(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation distorts wall-clock ratios")
	}
	if testing.Short() {
		t.Skip("wall-clock benchmark is not short-mode material")
	}
	for _, tw := range ThroughputWorlds() {
		if tw.Name == "small" {
			continue // scheduler-dominated tiny walk; ratio is noisy
		}
		var live, replay ThroughputResult
		for rep := 0; rep < 3; rep++ {
			l, err := RunThroughput(tw)
			if err != nil {
				t.Fatal(err)
			}
			r, err := RunThroughputReplay(tw)
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 || l.EventsPerSec > live.EventsPerSec {
				live = l
			}
			if rep == 0 || r.EventsPerSec > replay.EventsPerSec {
				replay = r
			}
		}
		ratio := replay.EventsPerSec / live.EventsPerSec
		t.Logf("%s: live %.0f events/s, replay %.0f events/s (%.1fx)",
			tw.Name, live.EventsPerSec, replay.EventsPerSec, ratio)
		if ratio < replaySpeedupFloor {
			t.Errorf("%s replay speedup %.1fx is under the %.0fx floor",
				tw.Name, ratio, replaySpeedupFloor)
		}
	}
}

// TestWriteThroughputJSON round-trips the report envelope.
func TestWriteThroughputJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tp.json")
	res := []ThroughputResult{{World: "small", Events: 10, NsPerEvent: 1.5}}
	if err := WriteThroughputJSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep ThroughputReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "pipmcoll/throughput/v1" || len(rep.Worlds) != 1 || rep.Worlds[0].Events != 10 {
		t.Fatalf("round-trip = %+v", rep)
	}
}
