package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/race"
)

// TestThroughputAllocCeiling enforces the allocs/event budget on the
// medium world. Wall-clock metrics vary with the host, but allocations per
// dispatched event are deterministic on a given Go release, so the ceiling
// is safe to pin in CI.
func TestThroughputAllocCeiling(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation changes heap behaviour; ceiling holds for plain builds")
	}
	if testing.Short() {
		t.Skip("medium throughput world is not short-mode material")
	}
	var medium ThroughputWorld
	for _, tw := range ThroughputWorlds() {
		if tw.Name == "medium" {
			medium = tw
		}
	}
	res, err := RunThroughput(medium)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("medium world: %d events, %.3f allocs/event, %.0f ns/event",
		res.Events, res.AllocsPerEvent, res.NsPerEvent)
	if res.AllocsPerEvent > mediumAllocCeiling {
		t.Fatalf("medium world allocates %.3f objects/event, ceiling %.2f",
			res.AllocsPerEvent, mediumAllocCeiling)
	}
}

// TestThroughputVirtualTimePinned pins each world's virtual completion
// time: the engine-performance work must never change simulated time by a
// single tick, so the values measured before the optimization are golden.
func TestThroughputVirtualTimePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is not short-mode material")
	}
	want := map[string]float64{"small": 2980.177160, "medium": 1075.493022, "large": 548.045689}
	for _, tw := range ThroughputWorlds() {
		res, err := RunThroughput(tw)
		if err != nil {
			t.Fatal(err)
		}
		if w, ok := want[tw.Name]; ok && res.VirtualUs != w {
			t.Errorf("%s world virtual time = %.6fus, want %.6fus", tw.Name, res.VirtualUs, w)
		}
	}
}

// TestWriteThroughputJSON round-trips the report envelope.
func TestWriteThroughputJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tp.json")
	res := []ThroughputResult{{World: "small", Events: 10, NsPerEvent: 1.5}}
	if err := WriteThroughputJSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep ThroughputReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "pipmcoll/throughput/v1" || len(rep.Worlds) != 1 || rep.Worlds[0].Events != 10 {
		t.Fatalf("round-trip = %+v", rep)
	}
}
