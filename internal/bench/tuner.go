package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Auto-tuning: the paper's switch points (64 kB allgather, 8k-count
// allreduce) are calibrated to its testbed; on a different fabric or
// cluster shape the Bruck/ring and recursive/reduce-scatter crossovers
// move (see ablation A2). Tune measures both algorithm variants across a
// size ladder and returns the switch points that minimize runtime for the
// given configuration — what an MPI library's tuning stage does offline.

// TuneResult reports a recommended Tunables and the measurements behind it.
type TuneResult struct {
	Recommended core.Tunables
	// Crossovers lists, per collective, the first ladder size at which
	// the large-message algorithm won (0 = it never won).
	AllgatherCrossover int
	AllreduceCrossover int
	// Ladder and per-size runtimes (µs) for transparency.
	Sizes                          []int
	AGSmall, AGLarge, ARSml, ARLrg []float64
}

// TuneFigureID is the cache namespace of the tuning ladder's cells. Any
// path that builds the ladder — Tune, TuneWith, or a query-server tune
// request — runs its plan under this ID, so they all share cache entries.
const TuneFigureID = "tune"

// Tune measures PiP-MColl's small and large algorithm variants for
// allgather and allreduce across a size ladder on the given cluster shape
// and configuration, and recommends switch points.
func Tune(cfg mpi.Config, nodes, ppn int, o Opts) (TuneResult, error) {
	return TuneWith(context.Background(), NewRunner(RunnerConfig{Parallel: 1}), cfg, nodes, ppn, o)
}

// TuneWith is Tune under a caller-provided runner: the ladder's
// (collective, variant, size) points are independent cells, so the tuning
// stage parallelizes and caches like any figure.
func TuneWith(ctx context.Context, r *Runner, cfg mpi.Config, nodes, ppn int, o Opts) (TuneResult, error) {
	plan := TunePlan(cfg, nodes, ppn, o)
	tables, err := r.RunPlan(ctx, TuneFigureID, plan, o)
	if err != nil {
		return TuneResult{}, err
	}
	return AnalyzeTune(tables[0])
}

// tuneSizes returns the ladder's fixed payload sizes.
func tuneSizes() []int {
	var sizes []int
	for s := 1 << 10; s <= 256<<10; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// TunePlan decomposes the tuning ladder into independent cells — one per
// (collective, variant, size) — with the same keys TuneWith has always
// used, so plans built here (by the CLI or the query server) hit the same
// cache entries. Run it under TuneFigureID and feed the ladder table to
// AnalyzeTune.
func TunePlan(cfg mpi.Config, nodes, ppn int, o Opts) *Plan {
	o = o.withDefaults()
	sizes := tuneSizes()
	huge := 1 << 40
	variants := []struct {
		col    string
		tun    core.Tunables
		reduce bool
	}{
		{"AG-small", core.Tunables{AllgatherLargeMin: huge}, false},
		{"AG-large", core.Tunables{AllgatherLargeMin: 1}, false},
		{"AR-small", core.Tunables{AllreduceLargeMin: huge}, true},
		{"AR-large", core.Tunables{AllreduceLargeMin: 8}, true}, // any vector: large path
	}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.col
	}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = sizeLabel(s)
	}
	t := stats.NewTable(fmt.Sprintf("tune ladder (%dx%d)", nodes, ppn), "size", "us", cols, rows)
	var cells []Cell
	for i, size := range sizes {
		for _, v := range variants {
			size, v, row := size, v, rows[i]
			cells = append(cells, Cell{
				Key: fmt.Sprintf("tune variant=%s tun=%+v nodes=%d ppn=%d bytes=%d warmup=%d iters=%d cfg=%s",
					v.col, v.tun, nodes, ppn, size, o.Warmup, o.Iters, cfgKey(cfg)),
				Run: func() ([]Value, error) {
					run := func(cl core.Coll, rk *mpi.Rank, in, out []byte) { cl.Allgather(rk, in, out) }
					if v.reduce {
						run = func(cl core.Coll, rk *mpi.Rank, in, out []byte) { cl.Allreduce(rk, in, out, nums.Sum) }
					}
					us, err := tunePoint(cfg, nodes, ppn, size, o, run, v.tun, v.reduce)
					if err != nil {
						return nil, err
					}
					return []Value{{Table: 0, Row: row, Col: v.col, V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}

// AnalyzeTune derives switch-point recommendations from a completed
// ladder table (TunePlan's table 0): per-collective, the first size at
// which the large-message algorithm won.
func AnalyzeTune(ladder *stats.Table) (TuneResult, error) {
	var res TuneResult
	res.Sizes = tuneSizes()
	if len(ladder.RowNames) != len(res.Sizes) {
		return res, fmt.Errorf("bench: tune ladder has %d rows, want %d", len(ladder.RowNames), len(res.Sizes))
	}
	for _, size := range res.Sizes {
		row := sizeLabel(size)
		ag1 := ladder.Get(row, "AG-small")
		ag2 := ladder.Get(row, "AG-large")
		ar1 := ladder.Get(row, "AR-small")
		ar2 := ladder.Get(row, "AR-large")
		res.AGSmall = append(res.AGSmall, ag1)
		res.AGLarge = append(res.AGLarge, ag2)
		res.ARSml = append(res.ARSml, ar1)
		res.ARLrg = append(res.ARLrg, ar2)
		if res.AllgatherCrossover == 0 && ag2 < ag1 {
			res.AllgatherCrossover = size
		}
		if res.AllreduceCrossover == 0 && ar2 < ar1 {
			res.AllreduceCrossover = size
		}
	}
	res.Recommended = core.DefaultTunables()
	if res.AllgatherCrossover > 0 {
		res.Recommended.AllgatherLargeMin = res.AllgatherCrossover
	}
	if res.AllreduceCrossover > 0 {
		res.Recommended.AllreduceLargeMin = res.AllreduceCrossover
	}
	return res, nil
}

// tunePoint measures one (collective, tunables, size) combination.
func tunePoint(cfg mpi.Config, nodes, ppn, size int, o Opts,
	run func(core.Coll, *mpi.Rank, []byte, []byte), tun core.Tunables, reduce bool) (float64, error) {
	cluster := topology.New(nodes, ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, cfg)
	if err != nil {
		return 0, err
	}
	cl := core.Coll{Tun: tun}
	ranks := cluster.Size()
	var sum simtime.Duration
	err = world.Run(func(r *mpi.Rank) {
		in := make([]byte, size)
		var out []byte
		if reduce {
			nums.Fill(in, r.Rank())
			out = make([]byte, size)
		} else {
			nums.FillBytes(in, r.Rank())
			out = make([]byte, ranks*size)
		}
		for it := 0; it < o.Warmup+o.Iters; it++ {
			r.HarnessBarrier()
			start := r.Now()
			run(cl, r, in, out)
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return (sum / simtime.Duration(o.Iters)).Microseconds(), nil
}

// Format renders the tuning report.
func (t TuneResult) Format() string {
	out := fmt.Sprintf("%-10s %12s %12s %12s %12s\n", "size",
		"AG-small", "AG-large", "AR-small", "AR-large")
	for i, s := range t.Sizes {
		out += fmt.Sprintf("%-10s %10.4gus %10.4gus %10.4gus %10.4gus\n",
			sizeLabel(s), t.AGSmall[i], t.AGLarge[i], t.ARSml[i], t.ARLrg[i])
	}
	out += fmt.Sprintf("\nrecommended: AllgatherLargeMin=%s AllreduceLargeMin=%s\n",
		sizeLabel(t.Recommended.AllgatherLargeMin), sizeLabel(t.Recommended.AllreduceLargeMin))
	return out
}
