package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Auto-tuning: the paper's switch points (64 kB allgather, 8k-count
// allreduce) are calibrated to its testbed; on a different fabric or
// cluster shape the Bruck/ring and recursive/reduce-scatter crossovers
// move (see ablation A2). Tune measures both algorithm variants across a
// size ladder and returns the switch points that minimize runtime for the
// given configuration — what an MPI library's tuning stage does offline.

// TuneResult reports a recommended Tunables and the measurements behind it.
type TuneResult struct {
	Recommended core.Tunables
	// Crossovers lists, per collective, the first ladder size at which
	// the large-message algorithm won (0 = it never won).
	AllgatherCrossover int
	AllreduceCrossover int
	// Ladder and per-size runtimes (µs) for transparency.
	Sizes                          []int
	AGSmall, AGLarge, ARSml, ARLrg []float64
}

// Tune measures PiP-MColl's small and large algorithm variants for
// allgather and allreduce across a size ladder on the given cluster shape
// and configuration, and recommends switch points.
func Tune(cfg mpi.Config, nodes, ppn int, o Opts) (TuneResult, error) {
	o = o.withDefaults()
	var res TuneResult
	for s := 1 << 10; s <= 256<<10; s *= 2 {
		res.Sizes = append(res.Sizes, s)
	}
	huge := 1 << 40
	smallAG := core.Tunables{AllgatherLargeMin: huge}
	largeAG := core.Tunables{AllgatherLargeMin: 1}
	smallAR := core.Tunables{AllreduceLargeMin: huge}
	largeAR := core.Tunables{AllreduceLargeMin: 8} // any vector: large path

	for _, size := range res.Sizes {
		ag1, err := tunePoint(cfg, nodes, ppn, size, o, func(cl core.Coll, r *mpi.Rank, in, out []byte) {
			cl.Allgather(r, in, out)
		}, smallAG, false)
		if err != nil {
			return res, err
		}
		ag2, err := tunePoint(cfg, nodes, ppn, size, o, func(cl core.Coll, r *mpi.Rank, in, out []byte) {
			cl.Allgather(r, in, out)
		}, largeAG, false)
		if err != nil {
			return res, err
		}
		ar1, err := tunePoint(cfg, nodes, ppn, size, o, func(cl core.Coll, r *mpi.Rank, in, out []byte) {
			cl.Allreduce(r, in, out, nums.Sum)
		}, smallAR, true)
		if err != nil {
			return res, err
		}
		ar2, err := tunePoint(cfg, nodes, ppn, size, o, func(cl core.Coll, r *mpi.Rank, in, out []byte) {
			cl.Allreduce(r, in, out, nums.Sum)
		}, largeAR, true)
		if err != nil {
			return res, err
		}
		res.AGSmall = append(res.AGSmall, ag1)
		res.AGLarge = append(res.AGLarge, ag2)
		res.ARSml = append(res.ARSml, ar1)
		res.ARLrg = append(res.ARLrg, ar2)
		if res.AllgatherCrossover == 0 && ag2 < ag1 {
			res.AllgatherCrossover = size
		}
		if res.AllreduceCrossover == 0 && ar2 < ar1 {
			res.AllreduceCrossover = size
		}
	}
	res.Recommended = core.DefaultTunables()
	if res.AllgatherCrossover > 0 {
		res.Recommended.AllgatherLargeMin = res.AllgatherCrossover
	}
	if res.AllreduceCrossover > 0 {
		res.Recommended.AllreduceLargeMin = res.AllreduceCrossover
	}
	return res, nil
}

// tunePoint measures one (collective, tunables, size) combination.
func tunePoint(cfg mpi.Config, nodes, ppn, size int, o Opts,
	run func(core.Coll, *mpi.Rank, []byte, []byte), tun core.Tunables, reduce bool) (float64, error) {
	cluster := topology.New(nodes, ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, cfg)
	if err != nil {
		return 0, err
	}
	cl := core.Coll{Tun: tun}
	ranks := cluster.Size()
	var sum simtime.Duration
	err = world.Run(func(r *mpi.Rank) {
		in := make([]byte, size)
		var out []byte
		if reduce {
			nums.Fill(in, r.Rank())
			out = make([]byte, size)
		} else {
			nums.FillBytes(in, r.Rank())
			out = make([]byte, ranks*size)
		}
		for it := 0; it < o.Warmup+o.Iters; it++ {
			r.HarnessBarrier()
			start := r.Now()
			run(cl, r, in, out)
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return (sum / simtime.Duration(o.Iters)).Microseconds(), nil
}

// Format renders the tuning report.
func (t TuneResult) Format() string {
	out := fmt.Sprintf("%-10s %12s %12s %12s %12s\n", "size",
		"AG-small", "AG-large", "AR-small", "AR-large")
	for i, s := range t.Sizes {
		out += fmt.Sprintf("%-10s %10.4gus %10.4gus %10.4gus %10.4gus\n",
			sizeLabel(s), t.AGSmall[i], t.AGLarge[i], t.ARSml[i], t.ARLrg[i])
	}
	out += fmt.Sprintf("\nrecommended: AllgatherLargeMin=%s AllreduceLargeMin=%s\n",
		sizeLabel(t.Recommended.AllgatherLargeMin), sizeLabel(t.Recommended.AllreduceLargeMin))
	return out
}
