package bench

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// S3 and S4 are resilience-sensitivity experiments beyond the paper: the
// paper's testbed is a quiet, lossless OPA fabric, but production clusters
// see OS noise, stragglers and (on lossy transports) retransmissions. S3
// sweeps OS-noise amplitude and frequency under allreduce; S4 sweeps the
// eager drop rate under allgather and additionally audits the fabric's
// loss accounting: every injected drop must be matched by a retransmit.
func init() {
	Register(Figure{ID: "S3", Kind: KindSensitivity, Cells: sensS3Cells,
		Title: "Allreduce under OS noise and stragglers (sensitivity)"})
	Register(Figure{ID: "S4", Kind: KindSensitivity, Cells: sensS4Cells,
		Title: "Allgather under eager message loss (sensitivity)"})
}

// SensS3 sweeps the OS-noise detour amplitude (at fixed frequency) and then
// the detour frequency (at fixed amplitude) for PiP-MColl against two
// baselines. Multi-object collectives synchronize more often across
// objects, so noise that delays one rank can propagate differently than in
// the single-leader designs — S3 quantifies that.
func SensS3(o Opts) []*stats.Table { return runSerial("S3", sensS3Cells, o) }

func sensS3Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 4, 8), pick(o, 4, 8)
	const chunk = 1 << 10
	const seed = 1303
	ls := []*libs.Library{libs.IntelMPI(), libs.PiPMPICH(), libs.PiPMColl()}

	// The collectives under test complete in single-digit microseconds, so
	// the noise periods are picked at that scale — long periods relative to
	// the run would mean no detour ever lands inside a timed region.
	//
	// Table 0: amplitude sweep at a fixed 5 µs mean detour period.
	amps := []simtime.Duration{0, 500 * simtime.Nanosecond, simtime.Microsecond, 2 * simtime.Microsecond}
	ampRows := []string{"off", "0.5us", "1us", "2us"}
	ampTable := stats.NewTable(
		fmt.Sprintf("S3: %s allreduce vs OS-noise amplitude (%dx%d, period 5us)",
			sizeLabel(chunk), nodes, ppn),
		"amplitude", "us", libNames(ls), ampRows)

	// Table 1: period sweep at a fixed 1 µs detour amplitude (shorter
	// period = higher noise frequency).
	periods := []simtime.Duration{20 * simtime.Microsecond, 5 * simtime.Microsecond, 2 * simtime.Microsecond}
	perRows := []string{"20us", "5us", "2us"}
	perTable := stats.NewTable(
		fmt.Sprintf("S3: %s allreduce vs OS-noise period (%dx%d, amplitude 1us)",
			sizeLabel(chunk), nodes, ppn),
		"period", "us", libNames(ls), perRows)

	noise := func(amp, period simtime.Duration) *fault.Plan {
		if amp == 0 {
			return nil
		}
		return fault.MustNew(fault.Spec{Seed: seed, Noise: []fault.Noise{{
			Amplitude: amp,
			Period:    period,
			Jitter:    0.3,
		}}})
	}

	var cells []Cell
	add := func(table int, row string, l *libs.Library, plan *fault.Plan) {
		cfg := l.Config()
		cfg.Faults = plan
		cells = append(cells, Cell{
			Key: fmt.Sprintf("s3 t=%d row=%s lib=%s nodes=%d ppn=%d bytes=%d warmup=%d iters=%d cfg=%s",
				table, row, l.Name(), nodes, ppn, chunk, o.Warmup, o.Iters, cfgKey(cfg)),
			Run: func() ([]Value, error) {
				us, _, _, err := measureFaulted(l, cfg, OpAllreduce, nodes, ppn, chunk, o)
				if err != nil {
					return nil, err
				}
				return []Value{{Table: table, Row: row, Col: l.Name(), V: us}}, nil
			},
		})
	}
	for i, amp := range amps {
		for _, l := range ls {
			add(0, ampRows[i], l, noise(amp, 5*simtime.Microsecond))
		}
	}
	for i, period := range periods {
		for _, l := range ls {
			add(1, perRows[i], l, noise(simtime.Microsecond, period))
		}
	}
	return &Plan{Tables: []*stats.Table{ampTable, perTable}, Cells: cells}
}

// SensS4 sweeps the per-attempt eager drop rate for PiP-MColl against two
// baselines. Beyond the latency series itself, every cell audits the
// fabric's loss bookkeeping — drops + corruptions must equal retransmits,
// and a lossy cell that never retransmitted is a harness bug — so the
// figure doubles as an end-to-end check of the recovery path.
func SensS4(o Opts) []*stats.Table { return runSerial("S4", sensS4Cells, o) }

func sensS4Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 4, 8), pick(o, 4, 8)
	const chunk = 4 << 10
	const seed = 1404
	rates := []float64{0, 0.02, 0.1, 0.3}
	rows := []string{"0%", "2%", "10%", "30%"}
	ls := []*libs.Library{libs.IntelMPI(), libs.PiPMPICH(), libs.PiPMColl()}
	t := stats.NewTable(
		fmt.Sprintf("S4: %s allgather vs eager drop rate (%dx%d, RTO 5us)",
			sizeLabel(chunk), nodes, ppn),
		"drop rate", "us", libNames(ls), rows)
	var cells []Cell
	for i, rate := range rates {
		for _, l := range ls {
			l, row, rate := l, rows[i], rate
			cfg := l.Config()
			if rate > 0 {
				cfg.Faults = fault.MustNew(fault.Spec{Seed: seed, Loss: fault.Loss{
					DropRate: rate,
					RTO:      5 * simtime.Microsecond,
				}})
			}
			cells = append(cells, Cell{
				Key: fmt.Sprintf("s4 rate=%g lib=%s nodes=%d ppn=%d bytes=%d warmup=%d iters=%d cfg=%s",
					rate, l.Name(), nodes, ppn, chunk, o.Warmup, o.Iters, cfgKey(cfg)),
				Run: func() ([]Value, error) {
					us, fs, eager, err := measureFaulted(l, cfg, OpAllgather, nodes, ppn, chunk, o)
					if err != nil {
						return nil, err
					}
					if fs.Drops+fs.Corruptions != fs.Retransmits {
						return nil, fmt.Errorf("loss accounting broken: %d drops + %d corruptions != %d retransmits",
							fs.Drops, fs.Corruptions, fs.Retransmits)
					}
					if rate == 0 && fs != (fabric.FaultStats{}) {
						return nil, fmt.Errorf("fault-free cell accumulated fault stats %+v", fs)
					}
					// With enough expected drops, a run that never
					// retransmitted means the recovery path is broken, not
					// that the dice came up lucky.
					if expected := rate * float64(eager); expected >= 5 && fs.Retransmits == 0 {
						return nil, fmt.Errorf("drop rate %g over %d eager messages injected no retransmits", rate, eager)
					}
					return []Value{{Table: 0, Row: row, Col: l.Name(), V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}

// measureFaulted times a collective under a (possibly faulted) transport
// configuration with the standard two-stage methodology and returns the
// mean measured latency in microseconds together with the fabric's fault
// counters and eager-message count (the population the loss plan samples
// from). Unlike the fault-free sensitivity harness it returns errors —
// chaos cells can legitimately fail (a timeout, a broken invariant) and
// the runner aggregates those per cell.
func measureFaulted(lib *libs.Library, cfg mpi.Config, op Op, nodes, ppn, chunk int, o Opts) (float64, fabric.FaultStats, int64, error) {
	cluster := topology.New(nodes, ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, cfg)
	if err != nil {
		return 0, fabric.FaultStats{}, 0, err
	}
	size := cluster.Size()
	var sum simtime.Duration
	runErr := world.Run(func(r *mpi.Rank) {
		var in, out []byte
		switch op {
		case OpAllreduce:
			in = make([]byte, chunk)
			nums.Fill(in, r.Rank())
			out = make([]byte, chunk)
		case OpAllgather:
			in = make([]byte, chunk)
			nums.FillBytes(in, r.Rank())
			out = make([]byte, size*chunk)
		default:
			panic(fmt.Sprintf("bench: measureFaulted does not support %q", op))
		}
		for it := 0; it < o.Warmup+o.Iters; it++ {
			r.HarnessBarrier()
			start := r.Now()
			switch op {
			case OpAllreduce:
				lib.Allreduce(r, in, out, nums.Sum)
			case OpAllgather:
				lib.Allgather(r, in, out)
			}
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
	})
	if runErr != nil {
		return 0, fabric.FaultStats{}, 0, runErr
	}
	return (sum / simtime.Duration(o.Iters)).Microseconds(), world.Fabric().FaultStats(), world.Fabric().Stats().Eager, nil
}
