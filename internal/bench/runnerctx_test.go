package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
)

// onePointPlan builds a single-cell plan around the given body.
func onePointPlan(key string, run func() ([]Value, error)) *Plan {
	return &Plan{
		Tables: []*stats.Table{stats.NewTable("t", "x", "", []string{"c"}, []string{"r"})},
		Cells:  []Cell{{Key: key, Run: run}},
	}
}

// TestRunPlanCancelledBeforeStart: a context cancelled up front skips every
// cell and reports context.Canceled.
func TestRunPlanCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	plan := onePointPlan("cell", func() ([]Value, error) {
		ran.Add(1)
		return []Value{{Table: 0, Row: "r", Col: "c", V: 1}}, nil
	})
	_, err := NewRunner(RunnerConfig{Parallel: 1}).RunPlan(ctx, "test", plan, Opts{Warmup: 1, Iters: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("cell ran %d times despite cancelled context", ran.Load())
	}
}

// TestRunPlanCancelMidCellReleasesSlot: cancelling while a cell simulates
// must return promptly — releasing the worker slot — even though the
// orphaned cell body is still blocked, and the abandoned result must not be
// cached.
func TestRunPlanCancelMidCellReleasesSlot(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	plan := onePointPlan("stuck", func() ([]Value, error) {
		close(started)
		<-release
		return []Value{{Table: 0, Row: "r", Col: "c", V: 1}}, nil
	})
	r := NewRunner(RunnerConfig{Parallel: 1, Cache: cache})
	done := make(chan error, 1)
	go func() {
		_, err := r.RunPlan(ctx, "test", plan, Opts{Warmup: 1, Iters: 1})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunPlan did not return after cancellation; worker slot held by abandoned cell")
	}
	// Let the orphan finish, then verify it did not write the cache.
	close(release)
	time.Sleep(10 * time.Millisecond)
	if _, ok := cache.Load("test", "stuck", Opts{Warmup: 1, Iters: 1}); ok {
		t.Fatal("abandoned cell stored its result in the cache")
	}
}

// TestRunnerCellDoneHook: the per-cell completion hook fires once per cell
// with the cache-hit flag and error, serialized with Progress.
func TestRunnerCellDoneHook(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		key    string
		cached bool
		failed bool
	}
	var events []ev
	mk := func() *Runner {
		return NewRunner(RunnerConfig{Parallel: 2, Cache: cache,
			CellDone: func(figID, key string, cached bool, err error) {
				events = append(events, ev{key, cached, err != nil})
			}})
	}
	plan := func() *Plan {
		return &Plan{
			Tables: []*stats.Table{stats.NewTable("t", "x", "", []string{"c"}, []string{"r", "s"})},
			Cells: []Cell{
				{Key: "a", Run: func() ([]Value, error) {
					return []Value{{Table: 0, Row: "r", Col: "c", V: 1}}, nil
				}},
				{Key: "b", Run: func() ([]Value, error) {
					return []Value{{Table: 0, Row: "s", Col: "c", V: 2}}, nil
				}},
			},
		}
	}
	if _, err := mk().RunPlan(context.Background(), "test", plan(), Opts{Warmup: 1, Iters: 1}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("CellDone fired %d times, want 2", len(events))
	}
	for _, e := range events {
		if e.cached || e.failed {
			t.Fatalf("cold run event %+v, want uncached success", e)
		}
	}
	events = nil
	if _, err := mk().RunPlan(context.Background(), "test", plan(), Opts{Warmup: 1, Iters: 1}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || !events[0].cached || !events[1].cached {
		t.Fatalf("warm run events %+v, want two cached completions", events)
	}
}

// TestCacheCorruptEntryRecomputes: a truncated cache file must be reported
// as a logged miss and recomputed — never fail the cell — and the recompute
// must heal the entry.
func TestCacheCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	cache.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	o := Opts{Warmup: 1, Iters: 1}
	var runs atomic.Int64
	plan := func() *Plan {
		return onePointPlan("cell", func() ([]Value, error) {
			runs.Add(1)
			return []Value{{Table: 0, Row: "r", Col: "c", V: 42}}, nil
		})
	}
	r := NewRunner(RunnerConfig{Parallel: 1, Cache: cache})
	if _, err := r.RunPlan(context.Background(), "test", plan(), o); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("cold run executed %d times", runs.Load())
	}

	// Plant a truncated entry at the cell's content address.
	path := filepath.Join(dir, CellAddress("test", "cell", o)+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	tables, err := r.RunPlan(context.Background(), "test", plan(), o)
	if err != nil {
		t.Fatalf("corrupt cache entry failed the cell: %v", err)
	}
	if runs.Load() != 2 {
		t.Fatalf("corrupt entry not recomputed: %d runs", runs.Load())
	}
	if got := tables[0].Get("r", "c"); got != 42 {
		t.Fatalf("recomputed value %g, want 42", got)
	}
	if cache.Corruptions() != 1 {
		t.Fatalf("Corruptions() = %d, want 1", cache.Corruptions())
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "corrupt") {
		t.Fatalf("corruption not logged: %q", logged)
	}

	// The recompute overwrote the damaged file: a third run is a clean hit.
	if _, err := r.RunPlan(context.Background(), "test", plan(), o); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("healed entry missed: %d runs", runs.Load())
	}
}
