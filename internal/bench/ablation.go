package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/shm"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Ablation experiments for the design choices DESIGN.md section 5 calls
// out. A1 sweeps the PiP size-synchronization cost — the overhead PiP
// imposes on a drop-in MPI transport, which PiP-MColl's address-posting
// design avoids; it explains the PiP-MPICH degradation of Figure 10. A2
// sweeps the allgather algorithm switch point around the paper's 64 kB. A3
// compares intranode mechanisms under one fixed algorithm stack.

func init() {
	Register(Figure{ID: "A1", Kind: KindAblation, Cells: ablA1Cells,
		Title: "PiP size-synchronization cost sweep (ablation)"})
	Register(Figure{ID: "A2", Kind: KindAblation, Cells: ablA2Cells,
		Title: "Allgather algorithm switch-point sweep (ablation)"})
	Register(Figure{ID: "A3", Kind: KindAblation, Cells: ablA3Cells,
		Title: "Intranode mechanism under a fixed algorithm stack (ablation)"})
}

// AblA1 sweeps the per-message PiP size-sync cost and reports the
// small-message allgather time of the PiP-MPICH baseline (which pays it on
// every intranode message) against PiP-MColl (which posts addresses once
// per collective and is insensitive to it).
func AblA1(o Opts) []*stats.Table { return runSerial("A1", ablA1Cells, o) }

func ablA1Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 8, 32), pick(o, 4, 12)
	syncs := []simtime.Duration{0, simtime.Nanos(250), simtime.Nanos(500),
		simtime.Nanos(1000), simtime.Nanos(2000)}
	cols := []string{"PiP-MPICH", "PiP-MColl"}
	rows := make([]string, len(syncs))
	for i, s := range syncs {
		rows[i] = s.String()
	}
	t := stats.NewTable(fmt.Sprintf("A1: 256B allgather vs PiP size-sync cost (%dx%d)", nodes, ppn),
		"size-sync", "us", cols, rows)
	var cells []Cell
	for i, sync := range syncs {
		for _, name := range cols {
			sync, name, row := sync, name, rows[i]
			lib, err := libs.ByName(name)
			if err != nil {
				panic(err)
			}
			cfg := lib.Config()
			cfg.Shm.PiPSizeSync = sync
			cells = append(cells, Cell{
				Key: fmt.Sprintf("a1 lib=%s nodes=%d ppn=%d bytes=256 warmup=%d iters=%d cfg=%s",
					name, nodes, ppn, o.Warmup, o.Iters, cfgKey(cfg)),
				Run: func() ([]Value, error) {
					us := measureAllgatherWithConfig(lib, cfg, nodes, ppn, 256, o)
					return []Value{{Table: 0, Row: row, Col: name, V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}

// measureAllgatherWithConfig measures a verified allgather under an
// overridden transport configuration.
func measureAllgatherWithConfig(lib *libs.Library, cfg mpi.Config, nodes, ppn, chunk int, o Opts) float64 {
	cluster := topology.New(nodes, ppn, topology.Block)
	world := mpi.MustNewWorld(cluster, cfg)
	size := cluster.Size()
	var sum simtime.Duration
	if err := world.Run(func(r *mpi.Rank) {
		send := make([]byte, chunk)
		nums.FillBytes(send, r.Rank())
		recv := make([]byte, size*chunk)
		for it := 0; it < o.Warmup+o.Iters; it++ {
			r.HarnessBarrier()
			start := r.Now()
			lib.Allgather(r, send, recv)
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
	}); err != nil {
		panic(err)
	}
	return (sum / simtime.Duration(o.Iters)).Microseconds()
}

// AblA2 sweeps the PiP-MColl allgather switch point across candidate values
// and reports the runtime at sizes bracketing the paper's 64 kB choice: the
// sweep shows where the Bruck/ring crossover falls in this fabric.
func AblA2(o Opts) []*stats.Table { return runSerial("A2", ablA2Cells, o) }

func ablA2Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 8, 8), pick(o, 4, 6)
	switches := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 1 << 30}
	sizes := []int{8 << 10, 32 << 10, 64 << 10, 128 << 10}
	cols := make([]string, len(switches))
	for i, s := range switches {
		if s == 1<<30 {
			cols[i] = "never"
		} else {
			cols[i] = sizeLabel(s)
		}
	}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = sizeLabel(s)
	}
	t := stats.NewTable(fmt.Sprintf("A2: PiP-MColl allgather runtime vs switch point (%dx%d)", nodes, ppn),
		"msg size", "us", cols, rows)
	var cells []Cell
	for i, size := range sizes {
		for j, sw := range switches {
			size, sw, row, col := size, sw, rows[i], cols[j]
			cells = append(cells, Cell{
				Key: fmt.Sprintf("a2 switch=%d nodes=%d ppn=%d bytes=%d warmup=%d iters=%d",
					sw, nodes, ppn, size, o.Warmup, o.Iters),
				Run: func() ([]Value, error) {
					us := measureCoreAllgather(core.Tunables{AllgatherLargeMin: sw}, nodes, ppn, size, o)
					return []Value{{Table: 0, Row: row, Col: col, V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}

func measureCoreAllgather(tun core.Tunables, nodes, ppn, chunk int, o Opts) float64 {
	cluster := topology.New(nodes, ppn, topology.Block)
	world := mpi.MustNewWorld(cluster, mpi.DefaultConfig())
	cl := core.Coll{Tun: tun}
	size := cluster.Size()
	var sum simtime.Duration
	if err := world.Run(func(r *mpi.Rank) {
		send := make([]byte, chunk)
		nums.FillBytes(send, r.Rank())
		recv := make([]byte, size*chunk)
		for it := 0; it < o.Warmup+o.Iters; it++ {
			r.HarnessBarrier()
			start := r.Now()
			cl.Allgather(r, send, recv)
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
	}); err != nil {
		panic(err)
	}
	return (sum / simtime.Duration(o.Iters)).Microseconds()
}

// AblA3 runs one fixed algorithm stack (the flat MPICH selection) over
// every intranode mechanism, isolating the transport axis of the paper's
// Section II comparison.
func AblA3(o Opts) []*stats.Table { return runSerial("A3", ablA3Cells, o) }

func ablA3Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 4, 8), pick(o, 4, 8)
	mechs := []shm.Mechanism{shm.PiP, shm.POSIX, shm.CMA, shm.XPMEM, shm.KNEM}
	sizes := []int{256, 8 << 10, 64 << 10, 256 << 10}
	cols := make([]string, len(mechs))
	for i, m := range mechs {
		cols[i] = m.String()
	}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = sizeLabel(s)
	}
	t := stats.NewTable(fmt.Sprintf("A3: flat allreduce vs intranode mechanism (%dx%d)", nodes, ppn),
		"vector", "us", cols, rows)
	base := libs.PiPMPICH() // flat algorithm stack; mechanism overridden below
	var cells []Cell
	for i, size := range sizes {
		for j, mech := range mechs {
			size, mech, row, col := size, mech, rows[i], cols[j]
			cfg := mpi.DefaultConfig()
			cfg.Mechanism = mech
			cells = append(cells, Cell{
				Key: fmt.Sprintf("a3 mech=%s nodes=%d ppn=%d bytes=%d warmup=%d iters=%d",
					mech, nodes, ppn, size, o.Warmup, o.Iters),
				Run: func() ([]Value, error) {
					us := measureAllreduceWithConfig(base, cfg, nodes, ppn, size, o)
					return []Value{{Table: 0, Row: row, Col: col, V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}

func measureAllreduceWithConfig(lib *libs.Library, cfg mpi.Config, nodes, ppn, vec int, o Opts) float64 {
	cluster := topology.New(nodes, ppn, topology.Block)
	world := mpi.MustNewWorld(cluster, cfg)
	var sum simtime.Duration
	if err := world.Run(func(r *mpi.Rank) {
		send := make([]byte, vec)
		nums.Fill(send, r.Rank())
		recv := make([]byte, vec)
		for it := 0; it < o.Warmup+o.Iters; it++ {
			r.HarnessBarrier()
			start := r.Now()
			lib.Allreduce(r, send, recv, nums.Sum)
			r.HarnessBarrier()
			if it >= o.Warmup && r.Rank() == 0 {
				sum += r.Now().Sub(start)
			}
		}
	}); err != nil {
		panic(err)
	}
	return (sum / simtime.Duration(o.Iters)).Microseconds()
}
