package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden figure CSVs")

// TestGoldenFigures locks the quick-mode output of representative figure
// drivers against committed CSVs. The simulation is deterministic, so any
// diff means the calibration, an algorithm, or the harness changed — all
// things a reproduction repository wants to notice. Regenerate after an
// intentional change with:
//
//	go test ./internal/bench -run Golden -update
func TestGoldenFigures(t *testing.T) {
	opts := Opts{Warmup: 1, Iters: 1}
	figs := []struct {
		name string
		id   string
	}{
		{"fig1", "1"},
		{"fig6", "6"},
		{"fig11", "11"},
		{"figE4", "E4"},
		{"figA3", "A3"},
	}
	for _, fc := range figs {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			fig, err := Lookup(fc.id)
			if err != nil {
				t.Fatal(err)
			}
			tables := fig.Run(opts)
			var got string
			for _, tb := range tables {
				got += tb.CSV() + "\n"
			}
			path := filepath.Join("testdata", fc.name+".golden.csv")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s diverged from golden output.\n--- got ---\n%s--- want ---\n%s",
					fc.name, got, want)
			}
		})
	}
}
