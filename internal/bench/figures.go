package bench

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/libs"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Opts scales the figure drivers. Quick mode keeps every run under a few
// seconds; Full mode uses the largest shapes that fit this machine's memory
// (see the package comment for why the paper's 128x18 cannot always be
// reproduced literally).
type Opts struct {
	Full   bool
	Warmup int
	Iters  int
}

// DefaultOpts returns quick-mode options with the harness's standard
// repetition counts (the simulation is deterministic, so a handful of
// iterations pins the mean; warm-up still matters for attach caches).
func DefaultOpts() Opts { return Opts{Warmup: 2, Iters: 3} }

func (o Opts) withDefaults() Opts {
	if o.Warmup == 0 && o.Iters == 0 {
		o.Warmup, o.Iters = 2, 3
	}
	if o.Iters == 0 {
		o.Iters = 1
	}
	return o
}

// pick returns quick in quick mode, full in full mode.
func pick[T any](o Opts, quick, full T) T {
	if o.Full {
		return full
	}
	return quick
}

// Figure is a named driver regenerating one paper figure.
type Figure struct {
	ID    string
	Title string
	Run   func(Opts) []*stats.Table
}

// Figures returns every paper-figure driver in paper order.
func Figures() []Figure {
	return []Figure{
		{"1", "Inter-node message rate and throughput vs sender/receiver count", Fig1},
		{"6", "MPI_Scatter vs node count (16 B, 1 kB)", Fig6},
		{"7", "MPI_Allgather vs node count (16 B, 1 kB)", Fig7},
		{"8", "MPI_Allreduce vs node count (16, 1k doubles)", Fig8},
		{"9", "MPI_Scatter small message sizes", Fig9},
		{"10", "MPI_Allgather small message sizes", Fig10},
		{"11", "MPI_Allreduce small message counts", Fig11},
		{"12", "MPI_Scatter medium/large message sizes", Fig12},
		{"13", "MPI_Allgather medium/large message sizes (with small-alg ablation)", Fig13},
		{"14", "MPI_Allreduce medium/large message counts (with small-alg ablation)", Fig14},
	}
}

// FigureByID resolves one driver, searching paper figures first, then the
// extension experiments (E1-E4).
func FigureByID(id string) (Figure, error) {
	all := append(Figures(), ExtFigures()...)
	all = append(all, AblationFigures()...)
	all = append(all, SensitivityFigures()...)
	for _, f := range all {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}

// Fig1 reproduces the motivation microbenchmark: k sender/receiver pairs
// flooding between two nodes, reporting message rate at 4 kB and throughput
// at 128 kB. It drives the fabric directly, like the paper's raw
// point-to-point test.
func Fig1(o Opts) []*stats.Table {
	o = o.withDefaults()
	ks := []int{1, 2, 4, 8, 12, 18}
	cols := []string{"msgrate-4kB (Mmsg/s)", "throughput-128kB (GB/s)"}
	rows := make([]string, len(ks))
	for i, k := range ks {
		rows[i] = fmt.Sprintf("%d", k)
	}
	t := stats.NewTable("Fig 1: p2p scaling with sender/receiver pairs", "pairs", "", cols, rows)
	count := pick(o, 200, 1000)
	for _, k := range ks {
		rate := floodRate(k, count, 4<<10)
		_, bw := floodRateBW(k, pick(o, 50, 200), 128<<10)
		t.Set(fmt.Sprintf("%d", k), cols[0], rate/1e6)
		t.Set(fmt.Sprintf("%d", k), cols[1], bw/1e9)
	}
	return []*stats.Table{t}
}

// floodRate measures achieved messages/second for k pairs.
func floodRate(k, count, bytes int) float64 {
	r, _ := floodRateBW(k, count, bytes)
	return r
}

func floodRateBW(k, count, bytes int) (msgsPerSec, bytesPerSec float64) {
	return FloodRates(k, count, bytes, fabric.DefaultParams())
}

// FloodRates measures the achieved message rate and throughput of k
// concurrent sender/receiver pairs between two nodes under the given fabric
// calibration — the Figure 1 primitive, exported for the explorer tool.
func FloodRates(k, count, bytes int, params fabric.Params) (msgsPerSec, bytesPerSec float64) {
	f := fabric.MustNew(2, k, params)
	e := newFloodEngine(f, k, count, bytes)
	if err := e.Run(); err != nil {
		panic(err)
	}
	elapsed := simtime.Duration(e.Horizon()).Seconds()
	total := float64(k * count)
	return total / elapsed, total * float64(bytes) / elapsed
}

// sweepTable runs a library x x-axis sweep and fills a table of mean
// microseconds.
func sweepTable(title, xlabel string, ls []*libs.Library, points []Spec, labels []string) *stats.Table {
	cols := make([]string, len(ls))
	for i, l := range ls {
		cols[i] = l.Name()
	}
	t := stats.NewTable(title, xlabel, "us", cols, labels)
	for i, base := range points {
		for _, l := range ls {
			spec := base
			spec.Lib = l
			m := MustRun(spec)
			t.Set(labels[i], l.Name(), m.MeanMicros())
		}
	}
	return t
}

// scalePair is the node-sweep driver shared by Figures 6-8: baseline vs
// PiP-MColl across node counts at two payload sizes.
func scalePair(o Opts, op Op, figTitle string, small, medium int, maxNodes int) []*stats.Table {
	o = o.withDefaults()
	nodes := []int{2, 4, 8}
	if o.Full {
		for n := 16; n <= maxNodes; n *= 2 {
			nodes = append(nodes, n)
		}
	}
	ppn := pick(o, 6, 18)
	ls := []*libs.Library{libs.PiPMPICH(), libs.PiPMColl()}
	var tables []*stats.Table
	for _, size := range []int{small, medium} {
		labels := make([]string, len(nodes))
		points := make([]Spec, len(nodes))
		for i, n := range nodes {
			labels[i] = fmt.Sprintf("%d", n)
			points[i] = Spec{Op: op, Nodes: n, PPN: ppn, Bytes: size,
				Warmup: o.Warmup, Iters: o.Iters}
		}
		title := fmt.Sprintf("%s, %s per process, %d ppn", figTitle, sizeLabel(size), ppn)
		tables = append(tables, sweepTable(title, "nodes", ls, points, labels))
	}
	return tables
}

// Fig6 is the scatter scalability test (paper: 16 B and 1 kB, 2..128 nodes).
func Fig6(o Opts) []*stats.Table {
	return scalePair(o, OpScatter, "Fig 6: MPI_Scatter scalability", 16, 1<<10, 128)
}

// Fig7 is the allgather scalability test. Full mode stops at 64 nodes: at
// 128x18 the 1 kB allgather result alone needs >5 GB across simulated
// ranks.
func Fig7(o Opts) []*stats.Table {
	return scalePair(o, OpAllgather, "Fig 7: MPI_Allgather scalability", 16, 1<<10, 64)
}

// Fig8 is the allreduce scalability test (16 doubles and 1k doubles).
func Fig8(o Opts) []*stats.Table {
	return scalePair(o, OpAllreduce, "Fig 8: MPI_Allreduce scalability", 16*8, 1024*8, 128)
}

// sizeSweep drives Figures 9-14: all five libraries across a payload sweep
// on a fixed cluster, reporting both raw microseconds and the
// normalized-to-PiP-MColl view the paper plots.
func sizeSweep(o Opts, op Op, title string, sizes []int, ls []*libs.Library, nodes, ppn int, countLabels bool) []*stats.Table {
	labels := make([]string, len(sizes))
	points := make([]Spec, len(sizes))
	for i, s := range sizes {
		if countLabels {
			labels[i] = fmt.Sprintf("%d", s/8)
		} else {
			labels[i] = sizeLabel(s)
		}
		points[i] = Spec{Op: op, Nodes: nodes, PPN: ppn, Bytes: s,
			Warmup: o.Warmup, Iters: o.Iters}
	}
	full := fmt.Sprintf("%s (%dx%d)", title, nodes, ppn)
	t := sweepTable(full, xlabelFor(countLabels), ls, points, labels)
	return []*stats.Table{t, t.Normalized("PiP-MColl")}
}

func xlabelFor(countLabels bool) string {
	if countLabels {
		return "doubles"
	}
	return "size"
}

// Fig9: scatter, small sizes, all libraries.
func Fig9(o Opts) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	return sizeSweep(o, OpScatter, "Fig 9: MPI_Scatter small messages",
		sizes, libs.All(), pick(o, 16, 128), pick(o, 6, 18), false)
}

// Fig10: allgather, small sizes, all libraries. Full mode uses 64 nodes
// (memory; see package comment).
func Fig10(o Opts) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{16, 32, 64, 128, 256, 512}
	return sizeSweep(o, OpAllgather, "Fig 10: MPI_Allgather small messages",
		sizes, libs.All(), pick(o, 16, 64), pick(o, 6, 18), false)
}

// Fig11: allreduce, small double counts, all libraries.
func Fig11(o Opts) []*stats.Table {
	o = o.withDefaults()
	sizes := []int{2 * 8, 4 * 8, 8 * 8, 16 * 8, 32 * 8, 64 * 8}
	return sizeSweep(o, OpAllreduce, "Fig 11: MPI_Allreduce small double counts",
		sizes, libs.All(), pick(o, 16, 128), pick(o, 6, 18), true)
}

// Fig12: scatter, medium/large sizes, all libraries. Full mode uses 32
// nodes: at 64x18 the root buffer plus per-subtree staging of the flat
// binomial baseline exceeds this machine's memory at 512 kB chunks.
func Fig12(o Opts) []*stats.Table {
	o = o.withDefaults()
	var sizes []int
	for s := 1 << 10; s <= 512<<10; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizeSweep(o, OpScatter, "Fig 12: MPI_Scatter medium/large messages",
		sizes, libs.All(), pick(o, 8, 32), pick(o, 4, 18), false)
}

// Fig13: allgather, medium/large sizes, all libraries plus the
// small-algorithm ablation. The cluster is small (memory: the allgather
// result is ranks x size per rank).
func Fig13(o Opts) []*stats.Table {
	o = o.withDefaults()
	var sizes []int
	for s := 1 << 10; s <= 512<<10; s *= 2 {
		sizes = append(sizes, s)
	}
	ls := append(libs.All(), libs.PiPMCollSmall())
	return sizeSweep(o, OpAllgather, "Fig 13: MPI_Allgather medium/large messages",
		sizes, ls, pick(o, 8, 8), pick(o, 4, 6), false)
}

// Fig14: allreduce, medium/large double counts, all libraries plus the
// small-algorithm ablation.
func Fig14(o Opts) []*stats.Table {
	o = o.withDefaults()
	var sizes []int
	for c := 1 << 10; c <= 512<<10; c *= 4 {
		sizes = append(sizes, c*8)
	}
	ls := append(libs.All(), libs.PiPMCollSmall())
	return sizeSweep(o, OpAllreduce, "Fig 14: MPI_Allreduce medium/large double counts",
		sizes, ls, pick(o, 8, 16), pick(o, 6, 9), true)
}

// sizeLabel formats a byte count like the paper's axes.
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dkB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
