package bench

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/libs"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Opts scales the figure drivers. Quick mode keeps every run under a few
// seconds; Full mode uses the largest shapes that fit this machine's memory
// (see the package comment for why the paper's 128x18 cannot always be
// reproduced literally).
type Opts struct {
	Full   bool
	Warmup int
	Iters  int
}

// DefaultOpts returns quick-mode options with the harness's standard
// repetition counts (the simulation is deterministic, so a handful of
// iterations pins the mean; warm-up still matters for attach caches).
func DefaultOpts() Opts { return Opts{Warmup: 2, Iters: 3} }

// WithDefaults returns o with the harness's standard repetition counts
// filled in — the normalization every execution path (figure drivers, the
// runner, the query API) applies before measuring or deriving cache
// addresses, so equivalent requests always key identically.
func (o Opts) WithDefaults() Opts {
	if o.Warmup == 0 && o.Iters == 0 {
		o.Warmup, o.Iters = 2, 3
	}
	if o.Iters == 0 {
		o.Iters = 1
	}
	return o
}

func (o Opts) withDefaults() Opts { return o.WithDefaults() }

// pick returns quick in quick mode, full in full mode.
func pick[T any](o Opts, quick, full T) T {
	if o.Full {
		return full
	}
	return quick
}

// The paper figures register themselves; -list groups them under the
// paper kind. Adding a figure means writing a Cells decomposition and one
// Register call — every tool (bench, report, tune) picks it up from the
// registry.
func init() {
	Register(Figure{ID: "1", Kind: KindPaper, Cells: fig1Cells,
		Title: "Inter-node message rate and throughput vs sender/receiver count"})
	Register(Figure{ID: "6", Kind: KindPaper, Cells: fig6Cells,
		Title: "MPI_Scatter vs node count (16 B, 1 kB)"})
	Register(Figure{ID: "7", Kind: KindPaper, Cells: fig7Cells,
		Title: "MPI_Allgather vs node count (16 B, 1 kB)"})
	Register(Figure{ID: "8", Kind: KindPaper, Cells: fig8Cells,
		Title: "MPI_Allreduce vs node count (16, 1k doubles)"})
	Register(Figure{ID: "9", Kind: KindPaper, Cells: fig9Cells,
		Title: "MPI_Scatter small message sizes"})
	Register(Figure{ID: "10", Kind: KindPaper, Cells: fig10Cells,
		Title: "MPI_Allgather small message sizes"})
	Register(Figure{ID: "11", Kind: KindPaper, Cells: fig11Cells,
		Title: "MPI_Allreduce small message counts"})
	Register(Figure{ID: "12", Kind: KindPaper, Cells: fig12Cells,
		Title: "MPI_Scatter medium/large message sizes"})
	Register(Figure{ID: "13", Kind: KindPaper, Cells: fig13Cells,
		Title: "MPI_Allgather medium/large message sizes (with small-alg ablation)"})
	Register(Figure{ID: "14", Kind: KindPaper, Cells: fig14Cells,
		Title: "MPI_Allreduce medium/large message counts (with small-alg ablation)"})
}

// Fig1 reproduces the motivation microbenchmark: k sender/receiver pairs
// flooding between two nodes, reporting message rate at 4 kB and throughput
// at 128 kB. It drives the fabric directly, like the paper's raw
// point-to-point test.
func Fig1(o Opts) []*stats.Table { return runSerial("1", fig1Cells, o) }

func fig1Cells(o Opts) *Plan {
	o = o.withDefaults()
	ks := []int{1, 2, 4, 8, 12, 18}
	cols := []string{"msgrate-4kB (Mmsg/s)", "throughput-128kB (GB/s)"}
	rows := make([]string, len(ks))
	for i, k := range ks {
		rows[i] = fmt.Sprintf("%d", k)
	}
	t := stats.NewTable("Fig 1: p2p scaling with sender/receiver pairs", "pairs", "", cols, rows)
	count := pick(o, 200, 1000)
	bwCount := pick(o, 50, 200)
	cells := make([]Cell, 0, len(ks))
	for i, k := range ks {
		row := rows[i]
		cells = append(cells, Cell{
			Key: fmt.Sprintf("flood k=%d count=%d bwcount=%d", k, count, bwCount),
			Run: func() ([]Value, error) {
				rate := floodRate(k, count, 4<<10)
				_, bw := floodRateBW(k, bwCount, 128<<10)
				return []Value{
					{Table: 0, Row: row, Col: cols[0], V: rate / 1e6},
					{Table: 0, Row: row, Col: cols[1], V: bw / 1e9},
				}, nil
			},
		})
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells}
}

// floodRate measures achieved messages/second for k pairs.
func floodRate(k, count, bytes int) float64 {
	r, _ := floodRateBW(k, count, bytes)
	return r
}

func floodRateBW(k, count, bytes int) (msgsPerSec, bytesPerSec float64) {
	return FloodRates(k, count, bytes, fabric.DefaultParams())
}

// FloodRates measures the achieved message rate and throughput of k
// concurrent sender/receiver pairs between two nodes under the given fabric
// calibration — the Figure 1 primitive, exported for the explorer tool.
func FloodRates(k, count, bytes int, params fabric.Params) (msgsPerSec, bytesPerSec float64) {
	f := fabric.MustNew(2, k, params)
	e := newFloodEngine(f, k, count, bytes)
	if err := e.Run(); err != nil {
		panic(err)
	}
	elapsed := simtime.Duration(e.Horizon()).Seconds()
	total := float64(k * count)
	return total / elapsed, total * float64(bytes) / elapsed
}

// scalePairCells is the node-sweep decomposition shared by Figures 6-8:
// baseline vs PiP-MColl across node counts at two payload sizes, one cell
// per (size, nodes, library).
func scalePairCells(o Opts, op Op, figTitle string, small, medium int, maxNodes int) *Plan {
	o = o.withDefaults()
	nodes := []int{2, 4, 8}
	if o.Full {
		for n := 16; n <= maxNodes; n *= 2 {
			nodes = append(nodes, n)
		}
	}
	ppn := pick(o, 6, 18)
	ls := []*libs.Library{libs.PiPMPICH(), libs.PiPMColl()}
	p := &Plan{}
	for ti, size := range []int{small, medium} {
		labels := make([]string, len(nodes))
		points := make([]Spec, len(nodes))
		for i, n := range nodes {
			labels[i] = fmt.Sprintf("%d", n)
			points[i] = Spec{Op: op, Nodes: n, PPN: ppn, Bytes: size,
				Warmup: o.Warmup, Iters: o.Iters}
		}
		title := fmt.Sprintf("%s, %s per process, %d ppn", figTitle, sizeLabel(size), ppn)
		p.Tables = append(p.Tables, stats.NewTable(title, "nodes", "us", libNames(ls), labels))
		p.Cells = append(p.Cells, sweepCells(ti, ls, points, labels)...)
	}
	return p
}

// Fig6 is the scatter scalability test (paper: 16 B and 1 kB, 2..128 nodes).
func Fig6(o Opts) []*stats.Table { return runSerial("6", fig6Cells, o) }

func fig6Cells(o Opts) *Plan {
	return scalePairCells(o, OpScatter, "Fig 6: MPI_Scatter scalability", 16, 1<<10, 128)
}

// Fig7 is the allgather scalability test. Full mode stops at 64 nodes: at
// 128x18 the 1 kB allgather result alone needs >5 GB across simulated
// ranks.
func Fig7(o Opts) []*stats.Table { return runSerial("7", fig7Cells, o) }

func fig7Cells(o Opts) *Plan {
	return scalePairCells(o, OpAllgather, "Fig 7: MPI_Allgather scalability", 16, 1<<10, 64)
}

// Fig8 is the allreduce scalability test (16 doubles and 1k doubles).
func Fig8(o Opts) []*stats.Table { return runSerial("8", fig8Cells, o) }

func fig8Cells(o Opts) *Plan {
	return scalePairCells(o, OpAllreduce, "Fig 8: MPI_Allreduce scalability", 16*8, 1024*8, 128)
}

// sizeSweepCells drives Figures 9-14: all five libraries across a payload
// sweep on a fixed cluster (one cell per size x library), reporting both
// raw microseconds and the normalized-to-PiP-MColl view the paper plots.
func sizeSweepCells(o Opts, op Op, title string, sizes []int, ls []*libs.Library, nodes, ppn int, countLabels bool) *Plan {
	labels := make([]string, len(sizes))
	points := make([]Spec, len(sizes))
	for i, s := range sizes {
		if countLabels {
			labels[i] = fmt.Sprintf("%d", s/8)
		} else {
			labels[i] = sizeLabel(s)
		}
		points[i] = Spec{Op: op, Nodes: nodes, PPN: ppn, Bytes: s,
			Warmup: o.Warmup, Iters: o.Iters}
	}
	full := fmt.Sprintf("%s (%dx%d)", title, nodes, ppn)
	t := stats.NewTable(full, xlabelFor(countLabels), "us", libNames(ls), labels)
	return &Plan{
		Tables: []*stats.Table{t},
		Cells:  sweepCells(0, ls, points, labels),
		Finish: normalizeFinish("PiP-MColl"),
	}
}

func xlabelFor(countLabels bool) string {
	if countLabels {
		return "doubles"
	}
	return "size"
}

// Fig9: scatter, small sizes, all libraries.
func Fig9(o Opts) []*stats.Table { return runSerial("9", fig9Cells, o) }

func fig9Cells(o Opts) *Plan {
	o = o.withDefaults()
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	return sizeSweepCells(o, OpScatter, "Fig 9: MPI_Scatter small messages",
		sizes, libs.All(), pick(o, 16, 128), pick(o, 6, 18), false)
}

// Fig10: allgather, small sizes, all libraries. Full mode uses 64 nodes
// (memory; see package comment).
func Fig10(o Opts) []*stats.Table { return runSerial("10", fig10Cells, o) }

func fig10Cells(o Opts) *Plan {
	o = o.withDefaults()
	sizes := []int{16, 32, 64, 128, 256, 512}
	return sizeSweepCells(o, OpAllgather, "Fig 10: MPI_Allgather small messages",
		sizes, libs.All(), pick(o, 16, 64), pick(o, 6, 18), false)
}

// Fig11: allreduce, small double counts, all libraries.
func Fig11(o Opts) []*stats.Table { return runSerial("11", fig11Cells, o) }

func fig11Cells(o Opts) *Plan {
	o = o.withDefaults()
	sizes := []int{2 * 8, 4 * 8, 8 * 8, 16 * 8, 32 * 8, 64 * 8}
	return sizeSweepCells(o, OpAllreduce, "Fig 11: MPI_Allreduce small double counts",
		sizes, libs.All(), pick(o, 16, 128), pick(o, 6, 18), true)
}

// Fig12: scatter, medium/large sizes, all libraries. Full mode uses 32
// nodes: at 64x18 the root buffer plus per-subtree staging of the flat
// binomial baseline exceeds this machine's memory at 512 kB chunks.
func Fig12(o Opts) []*stats.Table { return runSerial("12", fig12Cells, o) }

func fig12Cells(o Opts) *Plan {
	o = o.withDefaults()
	var sizes []int
	for s := 1 << 10; s <= 512<<10; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizeSweepCells(o, OpScatter, "Fig 12: MPI_Scatter medium/large messages",
		sizes, libs.All(), pick(o, 8, 32), pick(o, 4, 18), false)
}

// Fig13: allgather, medium/large sizes, all libraries plus the
// small-algorithm ablation. The cluster is small (memory: the allgather
// result is ranks x size per rank).
func Fig13(o Opts) []*stats.Table { return runSerial("13", fig13Cells, o) }

func fig13Cells(o Opts) *Plan {
	o = o.withDefaults()
	var sizes []int
	for s := 1 << 10; s <= 512<<10; s *= 2 {
		sizes = append(sizes, s)
	}
	ls := append(libs.All(), libs.PiPMCollSmall())
	return sizeSweepCells(o, OpAllgather, "Fig 13: MPI_Allgather medium/large messages",
		sizes, ls, pick(o, 8, 8), pick(o, 4, 6), false)
}

// Fig14: allreduce, medium/large double counts, all libraries plus the
// small-algorithm ablation.
func Fig14(o Opts) []*stats.Table { return runSerial("14", fig14Cells, o) }

func fig14Cells(o Opts) *Plan {
	o = o.withDefaults()
	var sizes []int
	for c := 1 << 10; c <= 512<<10; c *= 4 {
		sizes = append(sizes, c*8)
	}
	ls := append(libs.All(), libs.PiPMCollSmall())
	return sizeSweepCells(o, OpAllreduce, "Fig 14: MPI_Allreduce medium/large double counts",
		sizes, ls, pick(o, 8, 16), pick(o, 6, 9), true)
}

// sizeLabel formats a byte count like the paper's axes.
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dkB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
