package bench

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func gateBase() map[string]ThroughputResult {
	return map[string]ThroughputResult{
		"medium": {World: "medium", NsPerEvent: 5000, AllocsPerEvent: 1.52, VirtualUs: 1075.493022},
	}
}

func TestGateWorldPasses(t *testing.T) {
	best := ThroughputResult{World: "medium", NsPerEvent: 5500, AllocsPerEvent: 1.52, VirtualUs: 1075.493022}
	if v := gateWorld(gateBase(), best, GateOpts{NsTolerance: 0.15}); len(v) != 0 {
		t.Fatalf("in-tolerance run violated the gate: %v", v)
	}
}

func TestGateWorldNsRegression(t *testing.T) {
	best := ThroughputResult{World: "medium", NsPerEvent: 6000, AllocsPerEvent: 1.52, VirtualUs: 1075.493022}
	v := gateWorld(gateBase(), best, GateOpts{NsTolerance: 0.15})
	if len(v) != 1 || !strings.Contains(v[0].Reason, "ns/event") {
		t.Fatalf("+20%% ns/event regression not caught: %v", v)
	}
	// SkipWallClock turns the same run green.
	if v := gateWorld(gateBase(), best, GateOpts{NsTolerance: 0.15, SkipWallClock: true}); len(v) != 0 {
		t.Fatalf("SkipWallClock still failed wall-clock gate: %v", v)
	}
}

func TestGateWorldAllocCeiling(t *testing.T) {
	best := ThroughputResult{World: "medium", NsPerEvent: 5000,
		AllocsPerEvent: allocCeilings["medium"] + 0.01, VirtualUs: 1075.493022}
	v := gateWorld(gateBase(), best, GateOpts{NsTolerance: 0.15})
	if len(v) != 1 || !strings.Contains(v[0].Reason, "allocs/event") {
		t.Fatalf("alloc ceiling breach not caught: %v", v)
	}
}

func TestGateWorldVirtualTimeDrift(t *testing.T) {
	best := ThroughputResult{World: "medium", NsPerEvent: 5000, AllocsPerEvent: 1.52, VirtualUs: 1075.5}
	v := gateWorld(gateBase(), best, GateOpts{NsTolerance: 0.15})
	if len(v) != 1 || !strings.Contains(v[0].Reason, "virtual time") {
		t.Fatalf("virtual-time drift not caught: %v", v)
	}
}

func TestGateWorldMissingBaseline(t *testing.T) {
	best := ThroughputResult{World: "huge"}
	v := gateWorld(gateBase(), best, GateOpts{})
	if len(v) != 1 || !strings.Contains(v[0].Reason, "missing") {
		t.Fatalf("missing baseline world not caught: %v", v)
	}
}

func TestGateErrorListsEveryViolation(t *testing.T) {
	err := &GateError{Violations: []GateViolation{
		{"small", "ns/event too slow"},
		{"medium", "allocs/event too high"},
	}}
	msg := err.Error()
	if !strings.Contains(msg, "2 violations") ||
		!strings.Contains(msg, "small") || !strings.Contains(msg, "medium") {
		t.Fatalf("GateError drops violations: %s", msg)
	}
	var ge *GateError
	if !errors.As(error(err), &ge) {
		t.Fatal("GateError not unwrappable via errors.As")
	}
}

func TestReadThroughputJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	want := []ThroughputResult{{World: "medium", NsPerEvent: 5000, VirtualUs: 1}}
	if err := WriteThroughputJSON(path, want); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadThroughputJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Worlds) != 1 || rep.Worlds[0].World != "medium" {
		t.Fatalf("round-trip = %+v", rep)
	}
	if _, err := ReadThroughputJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline read did not error")
	}
}
