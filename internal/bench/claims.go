package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/stats"
)

// The claims checker encodes the paper's headline experimental claims as
// predicates over regenerated figure tables, so a reproduction run ends
// with explicit PASS/FAIL verdicts instead of eyeballed plots. Claims are
// phrased structurally (who wins, where switches pay off), matching the
// fidelity a substituted substrate can promise.

// Claim is one checkable statement from the paper.
type Claim struct {
	ID    string
	Text  string
	FigID string // the figure whose tables the predicate inspects
	Check func(tables []*stats.Table) (bool, string)
}

// ClaimResult is a claim's verdict with supporting detail.
type ClaimResult struct {
	Claim  Claim
	Pass   bool
	Detail string
}

// Claims returns the paper's checkable claims in paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID:    "C1",
			Text:  "One sender saturates neither message rate nor bandwidth; both scale with sender count and then flatten (Fig 1)",
			FigID: "1",
			Check: func(ts []*stats.Table) (bool, string) {
				tb := ts[0]
				first, last := tb.RowNames[0], tb.RowNames[len(tb.RowNames)-1]
				mid := tb.RowNames[len(tb.RowNames)/2]
				for _, col := range tb.Columns {
					lo, mi, hi := tb.Get(first, col), tb.Get(mid, col), tb.Get(last, col)
					if !(mi > lo*1.2) {
						return false, fmt.Sprintf("%s does not scale: %g -> %g", col, lo, mi)
					}
					if hi > mi*2 {
						return false, fmt.Sprintf("%s never saturates: %g -> %g", col, mi, hi)
					}
				}
				return true, "rates scale then saturate"
			},
		},
		{
			ID:    "C2",
			Text:  "PiP-MColl outperforms PiP-MPICH at every node count, more at 16 B than at 1 kB (Fig 6)",
			FigID: "6",
			Check: func(ts []*stats.Table) (bool, string) {
				speedup := func(tb *stats.Table) (float64, bool) {
					worst := math.Inf(1)
					for _, row := range tb.RowNames {
						s := tb.Get(row, "PiP-MPICH") / tb.Get(row, "PiP-MColl")
						if s < 1 {
							return s, false
						}
						worst = math.Min(worst, s)
					}
					return worst, true
				}
				sSmall, ok1 := speedup(ts[0])
				sMed, ok2 := speedup(ts[1])
				if !ok1 || !ok2 {
					return false, "baseline won somewhere"
				}
				if sSmall <= sMed {
					return false, fmt.Sprintf("16B speedup %.2f not above 1kB %.2f", sSmall, sMed)
				}
				return true, fmt.Sprintf("worst-case speedups: 16B %.2fx, 1kB %.2fx", sSmall, sMed)
			},
		},
		{
			ID:    "C3",
			Text:  "PiP-MColl is the fastest library at every small scatter size (Fig 9)",
			FigID: "9",
			Check: fastestEverywhere,
		},
		{
			ID:    "C4",
			Text:  "PiP-MColl is fastest at every small allgather size, and PiP-MPICH is sometimes the slowest of all libraries (Fig 10)",
			FigID: "10",
			Check: func(ts []*stats.Table) (bool, string) {
				if ok, why := fastestEverywhere(ts); !ok {
					return false, why
				}
				tb := ts[0]
				for _, row := range tb.RowNames {
					worst, worstCol := 0.0, ""
					for _, col := range tb.Columns {
						if v := tb.Get(row, col); v > worst {
							worst, worstCol = v, col
						}
					}
					if worstCol == "PiP-MPICH" {
						return true, fmt.Sprintf("baseline anomaly reproduced at %s", row)
					}
				}
				return false, "PiP-MPICH never the slowest"
			},
		},
		{
			ID:    "C5",
			Text:  "The large-message allgather algorithm beats the small-message one past the switch (Fig 13 ablation)",
			FigID: "13",
			Check: func(ts []*stats.Table) (bool, string) {
				tb := ts[0]
				gain := 0.0
				for _, row := range tb.RowNames {
					main := tb.Get(row, "PiP-MColl")
					small := tb.Get(row, "PiP-MColl-small")
					if small > main {
						gain = math.Max(gain, small/main)
					}
				}
				if gain < 1.5 {
					return false, fmt.Sprintf("ablation gain only %.2fx", gain)
				}
				return true, fmt.Sprintf("large algorithm up to %.2fx over always-small", gain)
			},
		},
		{
			ID:    "C6",
			Text:  "Allreduce loses to other libraries somewhere in the medium-count window but wins at the largest counts (Fig 14)",
			FigID: "14",
			Check: func(ts []*stats.Table) (bool, string) {
				tb := ts[0]
				lostSomewhere := false
				for _, row := range tb.RowNames[:len(tb.RowNames)-1] {
					for _, col := range tb.Columns {
						if col == "PiP-MColl" || col == "PiP-MColl-small" {
							continue
						}
						if tb.Get(row, col) < tb.Get(row, "PiP-MColl") {
							lostSomewhere = true
						}
					}
				}
				last := tb.RowNames[len(tb.RowNames)-1]
				for _, col := range tb.Columns {
					if col == "PiP-MColl" {
						continue
					}
					if tb.Get(last, col) < tb.Get(last, "PiP-MColl") {
						return false, fmt.Sprintf("%s faster at the largest count", col)
					}
				}
				if !lostSomewhere {
					return false, "no medium-count window found (paper reports one)"
				}
				return true, "win -> lose (medium window) -> win reproduced"
			},
		},
	}
}

// fastestEverywhere checks that PiP-MColl holds the minimum of every row of
// the figure's raw table.
func fastestEverywhere(ts []*stats.Table) (bool, string) {
	tb := ts[0]
	for _, row := range tb.RowNames {
		ours := tb.Get(row, "PiP-MColl")
		for _, col := range tb.Columns {
			if col == "PiP-MColl" || col == "PiP-MColl-small" {
				continue
			}
			if tb.Get(row, col) < ours {
				return false, fmt.Sprintf("%s beats PiP-MColl at %s", col, row)
			}
		}
	}
	return true, "PiP-MColl fastest at every size"
}

// EvaluateClaims regenerates the needed figures (each once, serially) and
// returns the verdicts in claim order.
func EvaluateClaims(o Opts) ([]ClaimResult, error) {
	return EvaluateClaimsWith(context.Background(), NewRunner(RunnerConfig{Parallel: 1}), o)
}

// EvaluateClaimsWith is EvaluateClaims under a caller-provided runner, so
// the report tool can evaluate claims in parallel with result caching.
func EvaluateClaimsWith(ctx context.Context, r *Runner, o Opts) ([]ClaimResult, error) {
	regenerated := map[string][]*stats.Table{}
	var out []ClaimResult
	for _, c := range Claims() {
		tables, ok := regenerated[c.FigID]
		if !ok {
			fig, err := Lookup(c.FigID)
			if err != nil {
				return nil, err
			}
			tables, err = r.RunFigure(ctx, fig, o)
			if err != nil {
				return nil, err
			}
			regenerated[c.FigID] = tables
		}
		pass, detail := c.Check(tables)
		out = append(out, ClaimResult{Claim: c, Pass: pass, Detail: detail})
	}
	return out, nil
}
