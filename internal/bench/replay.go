package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Schedule memoization for measurement cells. A fault-free cell's event DAG
// is fixed by its shape — topology, library algorithm band, size class,
// payload, iteration counts, and transport calibration — so the first live
// execution records the DAG (simtime.Recording) and later cells with the
// same shape replay it goroutine-free (simtime.Schedule.Replay), skipping
// the park/wake handoffs that dominate live ns/event. Replay is verified
// bit-identical in virtual time by the walk itself, and every ineligible
// configuration (fault plan, kill plan, op timeouts; tracers and recorders
// never reach this path) falls back to live mode — see mpi.(*World).Record
// for the static gate and simtime.Recording for the dynamic taint flag.

// ScheduleMemo is a concurrency-safe table of recorded schedules keyed by
// measurement shape. One memo is typically process-wide (see EnableReplay);
// the serve scheduler owns one so repeated what-if queries reuse recorded
// shapes across requests.
type ScheduleMemo struct {
	mu sync.Mutex
	m  map[string]*simtime.Schedule

	hits, misses, fallbacks atomic.Int64
	// Event-time counters (see Instrument), mirroring Cache's pattern.
	mHits, mMisses, mFallbacks atomic.Pointer[obs.Counter]
}

// NewScheduleMemo returns an empty memo.
func NewScheduleMemo() *ScheduleMemo {
	return &ScheduleMemo{m: make(map[string]*simtime.Schedule)}
}

// MemoStats is a point-in-time snapshot of a memo's accounting.
type MemoStats struct {
	Schedules int   // recorded shapes currently held
	Hits      int64 // measurements served by replay
	Misses    int64 // eligible measurements that recorded a new shape
	Fallbacks int64 // ineligible measurements that ran live unrecorded
}

// Stats returns the memo's current accounting.
func (m *ScheduleMemo) Stats() MemoStats {
	m.mu.Lock()
	n := len(m.m)
	m.mu.Unlock()
	return MemoStats{Schedules: n, Hits: m.hits.Load(), Misses: m.misses.Load(),
		Fallbacks: m.fallbacks.Load()}
}

// Instrument registers event-time counters for the memo under prefix.hits /
// prefix.misses / prefix.fallbacks, incremented at the moment each
// measurement resolves.
func (m *ScheduleMemo) Instrument(reg *obs.Registry, prefix string) {
	m.mHits.Store(reg.Counter(prefix + ".hits"))
	m.mMisses.Store(reg.Counter(prefix + ".misses"))
	m.mFallbacks.Store(reg.Counter(prefix + ".fallbacks"))
	reg.Help(prefix+".hits", "measurements served by goroutine-free schedule replay")
	reg.Help(prefix+".misses", "replay-eligible measurements that recorded a new schedule")
	reg.Help(prefix+".fallbacks", "measurements ineligible for replay (fault plan, timeouts)")
}

// replayMemo is the process-wide memo RunConfig consults, nil when replay is
// disabled (the default).
var replayMemo atomic.Pointer[ScheduleMemo]

// EnableReplay installs (or, with nil, removes) the process-wide schedule
// memo. With a memo installed, every RunConfig measurement whose
// configuration passes the static replay gate records its schedule on first
// execution and replays it on repeats; ineligible configurations run live
// exactly as before. Opt-in: the pipmcoll-bench -replay flag and the serve
// scheduler's replay table are the two callers.
func EnableReplay(m *ScheduleMemo) { replayMemo.Store(m) }

// ReplayMemo returns the installed process-wide memo, or nil.
func ReplayMemo() *ScheduleMemo { return replayMemo.Load() }

// shapeKey is the memo key: everything that determines a measurement's
// event DAG. specKey carries library, op, topology, payload and iteration
// counts; ShapeClass names the algorithm/size-class band (self-describing
// in logs); cfgKey fingerprints the transport calibration. Replay is
// bit-identical, so the key is exact — "reuse across sizes" means repeated
// cells sharing a shape (across figures, requests, or cache namespaces),
// never interpolation between shapes.
func shapeKey(spec Spec, cfg mpi.Config) string {
	return fmt.Sprintf("%s|%s|%s", specKey(spec),
		spec.Lib.ShapeClass(string(spec.Op), spec.Bytes, spec.Nodes*spec.PPN), cfgKey(cfg))
}

// run serves one measurement from the memo: replay on a recorded shape,
// record on a fresh eligible shape. handled=false means the configuration
// is statically ineligible and the caller must run live.
func (m *ScheduleMemo) run(spec Spec, cfg mpi.Config) (Measurement, bool, error) {
	if cfg.Faults != nil || cfg.OpTimeout > 0 {
		m.fallbacks.Add(1)
		bump(&m.mFallbacks)
		return Measurement{}, false, nil
	}
	key := shapeKey(spec, cfg)
	m.mu.Lock()
	sched := m.m[key]
	m.mu.Unlock()
	if sched != nil {
		meas, err := replayMeasurement(spec, sched)
		if err == nil {
			m.hits.Add(1)
			bump(&m.mHits)
			return meas, true, nil
		}
		// The walk's verification failed — a stale or corrupted entry.
		// Drop it and re-record from a fresh live run.
		m.mu.Lock()
		if m.m[key] == sched {
			delete(m.m, key)
		}
		m.mu.Unlock()
	}
	m.misses.Add(1)
	bump(&m.mMisses)
	meas, fresh, err := runConfigLive(spec, cfg, true)
	if err == nil && fresh != nil {
		m.mu.Lock()
		m.m[key] = fresh
		m.mu.Unlock()
	}
	return meas, true, err
}

// replayMeasurement rebuilds a Measurement from a verified replay walk. The
// recorded run measured per-iteration boundaries as marks (rank 0's clock at
// each measured iteration's start and end); replay is bit-identical in
// virtual time, so the recorded instants are the replayed instants.
func replayMeasurement(spec Spec, sched *simtime.Schedule) (Measurement, error) {
	if _, err := sched.Replay(); err != nil {
		return Measurement{}, err
	}
	marks := sched.Marks()
	if len(marks) != 2*spec.Iters {
		return Measurement{}, fmt.Errorf("bench: schedule has %d marks, spec needs %d",
			len(marks), 2*spec.Iters)
	}
	durs := make([]simtime.Duration, spec.Iters)
	us := make([]float64, spec.Iters)
	for i := range durs {
		durs[i] = marks[2*i+1].Sub(marks[2*i])
		us[i] = durs[i].Microseconds()
	}
	return Measurement{Spec: spec, PerIter: durs, Summary: stats.Summarize(us)}, nil
}
