package bench

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Kind classifies a figure within the evaluation: the paper's own figures,
// the extension experiments (E1-E5), the ablations (A1-A3), and the
// sensitivity studies (S1-S4). The CLI's -ext/-ablation/-sensitivity flags
// and -list groups are kind filters over the registry.
type Kind int

// Figure kinds in presentation order.
const (
	KindPaper Kind = iota
	KindExtension
	KindAblation
	KindSensitivity
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case KindPaper:
		return "paper"
	case KindExtension:
		return "extension"
	case KindAblation:
		return "ablation"
	case KindSensitivity:
		return "sensitivity"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Figure is one named experiment. Cells decomposes it into independent
// measurement units (each owning its private simulation world), which is
// what lets the Runner schedule a figure across cores and cache unchanged
// cells between invocations.
type Figure struct {
	ID    string
	Title string
	Kind  Kind
	Cells func(Opts) *Plan
}

// Run regenerates the figure serially without caching — the convenience
// path for tests and library callers; it panics on measurement errors,
// which are harness bugs. Tools wanting parallelism, caching, or error
// returns use Runner.RunFigure.
func (f Figure) Run(o Opts) []*stats.Table {
	tables, err := NewRunner(RunnerConfig{Parallel: 1}).RunFigure(context.Background(), f, o)
	if err != nil {
		panic(err)
	}
	return tables
}

var (
	regMu    sync.RWMutex
	registry []Figure
)

// Register adds a figure to the global registry. Figures register
// themselves from init functions; an incomplete figure or a duplicate ID is
// a programming error and panics.
func Register(f Figure) {
	if f.ID == "" || f.Title == "" || f.Cells == nil {
		panic(fmt.Sprintf("bench: incomplete figure %+v", f))
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, g := range registry {
		if g.ID == f.ID {
			panic(fmt.Sprintf("bench: duplicate figure id %q", f.ID))
		}
	}
	registry = append(registry, f)
}

// All returns every registered figure sorted by kind (paper, extension,
// ablation, sensitivity) and then by numeric ID within the kind.
func All() []Figure {
	regMu.RLock()
	out := append([]Figure(nil), registry...)
	regMu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return idOrdinal(out[i].ID) < idOrdinal(out[j].ID)
	})
	return out
}

// ByKind returns the registered figures of one kind, in All's order.
func ByKind(k Kind) []Figure {
	var out []Figure
	for _, f := range All() {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// Lookup resolves a figure by ID.
func Lookup(id string) (Figure, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, f := range registry {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}

// idOrdinal extracts the numeric part of an ID like "10", "E4" or "A2" so
// figures sort in paper order rather than lexically ("10" after "6").
func idOrdinal(id string) int {
	digits := strings.TrimLeftFunc(id, func(r rune) bool { return r < '0' || r > '9' })
	n, err := strconv.Atoi(digits)
	if err != nil {
		return 1 << 30
	}
	return n
}
