// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section IV): workload construction,
// the two-stage (warm-up + measurement) microbenchmark methodology,
// verification of every collective's result against a serial reference, and
// per-figure drivers emitting the same series the paper plots.
//
// Scale note: the paper's testbed is 128 nodes x 18 processes and, for
// allgather, up to 512 kB per process. A single simulation address space
// (this machine: ~15 GB) cannot hold 2304 ranks x 1.2 GB result buffers, so
// each figure driver picks the largest cluster shape that preserves the
// figure's shape (who wins, where algorithms cross over) within memory;
// EXPERIMENTS.md records the shapes used. Timing is virtual, so the smaller
// shapes lose no timing fidelity — only absolute node counts.
package bench

import (
	"bytes"
	"fmt"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Op selects the collective under test.
type Op string

// The three collectives of the paper's evaluation.
const (
	OpScatter   Op = "scatter"
	OpAllgather Op = "allgather"
	OpAllreduce Op = "allreduce"
)

// Spec describes one measurement point: a library, a collective, a cluster
// shape, and a per-process payload.
type Spec struct {
	Lib   *libs.Library
	Op    Op
	Nodes int
	PPN   int
	// Bytes is the per-process payload: the scatter/allgather chunk, or
	// the allreduce vector length (a multiple of 8).
	Bytes  int
	Warmup int // unmeasured iterations (warms XPMEM attach caches etc.)
	Iters  int // measured iterations
}

// Measurement is the outcome of running a Spec: per-iteration virtual
// runtimes plus their summary, with every iteration's result verified
// against the serial reference.
type Measurement struct {
	Spec    Spec
	PerIter []simtime.Duration
	Summary stats.Summary // over per-iteration microseconds
}

// MeanMicros returns the mean per-iteration runtime in microseconds.
func (m Measurement) MeanMicros() float64 { return m.Summary.Mean }

// Run executes a measurement point. It builds a fresh world with the
// library's transport configuration, runs warm-up and measured iterations
// separated by zero-cost harness barriers (the paper's two-stage
// methodology), verifies the collective's output on every rank, and
// returns per-iteration virtual durations.
func Run(spec Spec) (Measurement, error) {
	if err := validate(spec); err != nil {
		return Measurement{}, err
	}
	return RunConfig(spec, spec.Lib.Config())
}

// RunConfig is Run under an explicit transport configuration overriding
// the library's default — the hook for what-if cells that attach fault
// plans or calibration tweaks to a standard measurement point. Callers
// must fold the configuration into their cache keys (see cfgKey).
//
// With a process-wide schedule memo installed (EnableReplay), eligible
// configurations are served by record-once/replay-thereafter; ineligible
// ones (fault plans, op timeouts) fall back to the live path below.
func RunConfig(spec Spec, cfg mpi.Config) (Measurement, error) {
	if err := validate(spec); err != nil {
		return Measurement{}, err
	}
	if memo := ReplayMemo(); memo != nil {
		if meas, handled, err := memo.run(spec, cfg); handled {
			return meas, err
		}
	}
	meas, _, err := runConfigLive(spec, cfg, false)
	return meas, err
}

// runConfigLive executes the measurement in a live world. When record is
// true and the world's static replay gate admits the configuration, the
// run's event DAG is recorded and returned as a schedule alongside the
// measurement (nil when recording was refused or tainted — the measurement
// itself is unaffected either way, since recording only observes).
func runConfigLive(spec Spec, cfg mpi.Config, record bool) (Measurement, *simtime.Schedule, error) {
	cluster := topology.New(spec.Nodes, spec.PPN, topology.Block)
	world, err := mpi.NewWorld(cluster, cfg)
	if err != nil {
		return Measurement{}, nil, err
	}
	var rec *simtime.Recording
	if record {
		rec, _ = world.Record() // statically ineligible: run live unrecorded
	}
	size := cluster.Size()
	durs := make([]simtime.Duration, spec.Iters)
	var verifyErr error

	expect := expected(spec, size)
	runErr := world.Run(func(r *mpi.Rank) {
		in, out := buffers(spec, r, size)
		total := spec.Warmup + spec.Iters
		for it := 0; it < total; it++ {
			r.HarnessBarrier()
			start := r.Now()
			runOnce(spec, r, in, out)
			r.HarnessBarrier() // all ranks aligned at the slowest finisher
			if it >= spec.Warmup && r.Rank() == 0 {
				durs[it-spec.Warmup] = r.Now().Sub(start)
				if rec != nil {
					// Iteration boundaries ride the schedule as marks, so a
					// replay rebuilds the same per-iteration durations.
					rec.Mark(start)
					rec.Mark(r.Now())
				}
			}
			if it == total-1 {
				if err := verify(spec, r, out, expect); err != nil && verifyErr == nil {
					verifyErr = err
				}
			}
		}
	})
	if runErr != nil {
		return Measurement{}, nil, fmt.Errorf("bench: %s/%s %dx%d %dB: %w",
			spec.Lib.Name(), spec.Op, spec.Nodes, spec.PPN, spec.Bytes, runErr)
	}
	if verifyErr != nil {
		return Measurement{}, nil, verifyErr
	}
	var sched *simtime.Schedule
	if rec != nil {
		sched, _ = rec.Schedule() // tainted recording: measurement stands, no memo entry
	}
	us := make([]float64, len(durs))
	for i, d := range durs {
		us[i] = d.Microseconds()
	}
	return Measurement{Spec: spec, PerIter: durs, Summary: stats.Summarize(us)}, sched, nil
}

// MustRun is Run for driver code with program-constant specs.
func MustRun(spec Spec) Measurement {
	m, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return m
}

func validate(spec Spec) error {
	switch {
	case spec.Lib == nil:
		return fmt.Errorf("bench: no library")
	case spec.Nodes < 1 || spec.PPN < 1:
		return fmt.Errorf("bench: bad shape %dx%d", spec.Nodes, spec.PPN)
	case spec.Bytes <= 0:
		return fmt.Errorf("bench: bad payload %dB", spec.Bytes)
	case spec.Op == OpAllreduce && spec.Bytes%nums.F64Size != 0:
		return fmt.Errorf("bench: allreduce payload %dB not a float64 vector", spec.Bytes)
	case spec.Iters < 1 || spec.Warmup < 0:
		return fmt.Errorf("bench: bad iteration counts %d/%d", spec.Warmup, spec.Iters)
	case spec.Op != OpScatter && spec.Op != OpAllgather && spec.Op != OpAllreduce:
		return fmt.Errorf("bench: unknown op %q", spec.Op)
	}
	return nil
}

// buffers allocates and fills the per-rank send/recv buffers.
func buffers(spec Spec, r *mpi.Rank, size int) (in, out []byte) {
	switch spec.Op {
	case OpScatter:
		if r.Rank() == 0 {
			in = make([]byte, size*spec.Bytes)
			for i := 0; i < size; i++ {
				nums.FillBytes(in[i*spec.Bytes:(i+1)*spec.Bytes], i)
			}
		}
		out = make([]byte, spec.Bytes)
	case OpAllgather:
		in = make([]byte, spec.Bytes)
		nums.FillBytes(in, r.Rank())
		out = make([]byte, size*spec.Bytes)
	case OpAllreduce:
		in = make([]byte, spec.Bytes)
		nums.Fill(in, r.Rank())
		out = make([]byte, spec.Bytes)
	}
	return in, out
}

func runOnce(spec Spec, r *mpi.Rank, in, out []byte) {
	switch spec.Op {
	case OpScatter:
		spec.Lib.Scatter(r, 0, in, out)
	case OpAllgather:
		spec.Lib.Allgather(r, in, out)
	case OpAllreduce:
		spec.Lib.Allreduce(r, in, out, nums.Sum)
	}
}

// expected precomputes the reference output shared by all ranks (allgather
// and allreduce; scatter is verified per rank).
func expected(spec Spec, size int) []byte {
	switch spec.Op {
	case OpAllgather:
		want := make([]byte, size*spec.Bytes)
		for i := 0; i < size; i++ {
			nums.FillBytes(want[i*spec.Bytes:(i+1)*spec.Bytes], i)
		}
		return want
	case OpAllreduce:
		want := make([]byte, spec.Bytes)
		nums.Fill(want, 0)
		tmp := make([]byte, spec.Bytes)
		for i := 1; i < size; i++ {
			nums.Fill(tmp, i)
			nums.Sum.Combine(want, tmp)
		}
		return want
	default:
		return nil
	}
}

func verify(spec Spec, r *mpi.Rank, out, expect []byte) error {
	switch spec.Op {
	case OpScatter:
		want := make([]byte, spec.Bytes)
		nums.FillBytes(want, r.Rank())
		if !bytes.Equal(out, want) {
			return fmt.Errorf("bench: %s scatter rank %d received wrong chunk", spec.Lib.Name(), r.Rank())
		}
	default:
		if !bytes.Equal(out, expect) {
			return fmt.Errorf("bench: %s %s rank %d produced wrong result", spec.Lib.Name(), spec.Op, r.Rank())
		}
	}
	return nil
}
