package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ExtE5 measures the four mini-applications (internal/apps) across the
// library profiles — application-level end-to-end times rather than
// isolated collectives.
func ExtE5(o Opts) []*stats.Table {
	o = o.withDefaults()
	nodes, ppn := pick(o, 4, 8), pick(o, 4, 8)
	cluster := topology.New(nodes, ppn, topology.Block)
	ls := libs.All()
	cols := make([]string, len(ls))
	for i, l := range ls {
		cols[i] = l.Name()
	}
	rows := []string{"cg", "kmeans", "samplesort", "jacobi"}
	t := stats.NewTable(fmt.Sprintf("E5: mini-application end-to-end times (%dx%d)", nodes, ppn),
		"app", "us", cols, rows)
	for _, l := range ls {
		runs := map[string]func(*mpi.Rank){
			"cg": func(r *mpi.Rank) {
				if res := apps.CG(r, l, 1600, 40); res.Residual > 1 {
					panic(fmt.Sprintf("bench: CG diverged under %s: %v", l.Name(), res.Residual))
				}
			},
			"kmeans": func(r *mpi.Rank) { apps.KMeans(r, l, 300, 8, 6, 8) },
			"samplesort": func(r *mpi.Rank) {
				if res := apps.SampleSort(r, 1024); res.Global != cluster.Size()*1024 {
					panic(fmt.Sprintf("bench: sample sort lost elements under %s", l.Name()))
				}
			},
			"jacobi": func(r *mpi.Rank) { apps.Jacobi2D(r, l, 128, 20) },
		}
		for _, app := range rows {
			world := mpi.MustNewWorld(cluster, l.Config())
			if err := world.Run(runs[app]); err != nil {
				panic(err)
			}
			t.Set(app, l.Name(), simtime.Duration(world.Horizon()).Microseconds())
		}
	}
	return []*stats.Table{t, t.Normalized("PiP-MColl")}
}
