package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/topology"
)

func init() {
	Register(Figure{ID: "E5", Kind: KindExtension, Cells: extE5Cells,
		Title: "Mini-application end-to-end comparison (extension)"})
}

// ExtE5 measures the four mini-applications (internal/apps) across the
// library profiles — application-level end-to-end times rather than
// isolated collectives.
func ExtE5(o Opts) []*stats.Table { return runSerial("E5", extE5Cells, o) }

// extE5Cells decomposes E5 into one cell per (application, library) pair;
// each cell builds its own cluster and world, so app runs are independent.
func extE5Cells(o Opts) *Plan {
	o = o.withDefaults()
	nodes, ppn := pick(o, 4, 8), pick(o, 4, 8)
	ls := libs.All()
	rows := []string{"cg", "kmeans", "samplesort", "jacobi"}
	t := stats.NewTable(fmt.Sprintf("E5: mini-application end-to-end times (%dx%d)", nodes, ppn),
		"app", "us", libNames(ls), rows)
	var cells []Cell
	for _, l := range ls {
		for _, app := range rows {
			l, app := l, app
			cells = append(cells, Cell{
				Key: fmt.Sprintf("app=%s lib=%s nodes=%d ppn=%d", app, l.Name(), nodes, ppn),
				Run: func() ([]Value, error) {
					us, err := runApp(l, app, nodes, ppn)
					if err != nil {
						return nil, err
					}
					return []Value{{Table: 0, Row: app, Col: l.Name(), V: us}}, nil
				},
			})
		}
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: cells, Finish: normalizeFinish("PiP-MColl")}
}

// runApp runs one mini-application under one library profile and returns
// the virtual makespan in microseconds, verifying the app's own invariants.
func runApp(l *libs.Library, app string, nodes, ppn int) (float64, error) {
	cluster := topology.New(nodes, ppn, topology.Block)
	var appErr error
	runs := map[string]func(*mpi.Rank){
		"cg": func(r *mpi.Rank) {
			if res := apps.CG(r, l, 1600, 40); res.Residual > 1 && appErr == nil {
				appErr = fmt.Errorf("bench: CG diverged under %s: %v", l.Name(), res.Residual)
			}
		},
		"kmeans": func(r *mpi.Rank) { apps.KMeans(r, l, 300, 8, 6, 8) },
		"samplesort": func(r *mpi.Rank) {
			if res := apps.SampleSort(r, 1024); res.Global != cluster.Size()*1024 && appErr == nil {
				appErr = fmt.Errorf("bench: sample sort lost elements under %s", l.Name())
			}
		},
		"jacobi": func(r *mpi.Rank) { apps.Jacobi2D(r, l, 128, 20) },
	}
	run, ok := runs[app]
	if !ok {
		return 0, fmt.Errorf("bench: unknown app %q", app)
	}
	world, err := mpi.NewWorld(cluster, l.Config())
	if err != nil {
		return 0, err
	}
	if err := world.Run(run); err != nil {
		return 0, err
	}
	if appErr != nil {
		return 0, appErr
	}
	return simtime.Duration(world.Horizon()).Microseconds(), nil
}
