package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// cacheVersion invalidates every cached result when the harness's
// measurement semantics change in a way the keys cannot see (an algorithm
// fix, a new verification step). Bump it in the same commit as such a
// change.
const cacheVersion = "v1"

// Cache is the on-disk, content-addressed result store of the experiment
// runner. A cell's address hashes everything that determines its outcome —
// figure ID, the cell's own key (library, shape, payload, any config
// override), the Opts, and the simulator's calibration constants — so a
// re-run with identical inputs skips the simulation entirely, while any
// calibration or parameter change misses cleanly. Entries are JSON files
// named by the hash; writes go through a rename so concurrent workers never
// observe torn entries.
type Cache struct {
	dir string
	// Logf, when non-nil, receives diagnostics about damaged entries
	// (default: the standard logger). Set it before the cache is shared
	// across goroutines.
	Logf                  func(format string, args ...any)
	hits, misses, corrupt atomic.Int64

	// Event-time counters (see Instrument). Loaded atomically so Load can
	// increment them without a lock.
	mHits, mMisses, mCorrupt atomic.Pointer[obs.Counter]
}

// QuarantineDir is the subdirectory (relative to the cache root) where the
// startup sweep moves damaged files instead of deleting them, so a crash
// investigation can still inspect what the writer left behind.
const QuarantineDir = "quarantine"

// OpenCache opens (creating if needed) a cache rooted at dir and runs the
// crash-safety sweep: orphaned temp files from interrupted writes and
// entries that no longer parse are quarantined before the cache serves its
// first read, so a process that died mid-Store can never feed a torn entry
// to a later run. Each quarantined file counts via Corruptions.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: opening cache: %w", err)
	}
	c := &Cache{dir: dir, Logf: log.Printf}
	if err := c.sweep(); err != nil {
		return nil, err
	}
	return c, nil
}

// sweep is the startup crash-safety pass. Rename-into-place makes live
// entries atomic, but a crash can still leave (a) cell-*.tmp files whose
// rename never happened and (b) entries torn by an unclean filesystem
// shutdown. Both are moved into QuarantineDir and counted as corruptions;
// the next Load of a quarantined address is a plain miss, so the cell
// recomputes and heals the entry.
func (c *Cache) sweep() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("bench: sweeping cache: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "cell-") && strings.HasSuffix(name, ".tmp"):
			c.quarantine(name, fmt.Errorf("orphaned temp file from an interrupted write"))
		case strings.HasSuffix(name, ".json"):
			data, err := os.ReadFile(filepath.Join(c.dir, name))
			if err != nil {
				c.quarantine(name, err)
				continue
			}
			var vals []Value
			if err := json.Unmarshal(data, &vals); err != nil {
				c.quarantine(name, err)
			}
		}
	}
	return nil
}

// quarantine moves one damaged file out of the entry namespace and counts
// it as a corruption. Failure to move falls back to removal: a file that
// can be neither parsed nor moved must not shadow the healed entry a
// recomputation will write.
func (c *Cache) quarantine(name string, reason error) {
	c.corrupt.Add(1)
	bump(&c.mCorrupt)
	qdir := filepath.Join(c.dir, QuarantineDir)
	dst := filepath.Join(qdir, name)
	err := os.MkdirAll(qdir, 0o755)
	if err == nil {
		err = os.Rename(filepath.Join(c.dir, name), dst)
	}
	if err != nil {
		os.Remove(filepath.Join(c.dir, name))
		dst = "(removed: " + err.Error() + ")"
	}
	if c.Logf != nil {
		c.Logf("bench: cache sweep quarantined %s -> %s (%v)", name, dst, reason)
	}
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns the hit and miss counts accumulated since OpenCache.
// Corrupt entries count as misses (they are recomputed); Corruptions
// reports them separately.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Instrument registers event-time counters for the cache under
// prefix.hits / prefix.misses / prefix.corruptions: every Load increments
// the matching counter at the moment the event happens, so a metrics
// scrape between events always sees current values (scrape-time refresh
// from Stats cannot offer that). Safe to call while the cache is in use;
// the counters pick up from the next event.
func (c *Cache) Instrument(reg *obs.Registry, prefix string) {
	c.mHits.Store(reg.Counter(prefix + ".hits"))
	c.mMisses.Store(reg.Counter(prefix + ".misses"))
	c.mCorrupt.Store(reg.Counter(prefix + ".corruptions"))
	reg.Help(prefix+".hits", "result-cache reads answered from disk")
	reg.Help(prefix+".misses", "result-cache reads that required simulation")
	reg.Help(prefix+".corruptions", "damaged result-cache entries healed by recomputation")
}

func bump(p *atomic.Pointer[obs.Counter]) {
	if ctr := p.Load(); ctr != nil {
		ctr.Add(1)
	}
}

// Corruptions returns how many damaged (truncated, torn, or otherwise
// unparseable) files the cache has seen since OpenCache — both entries a
// Load found damaged and files the startup sweep quarantined. Each one was
// logged and treated as a miss, so the cell was recomputed and the entry
// overwritten — a corrupt file never fails a cell.
func (c *Cache) Corruptions() int64 { return c.corrupt.Load() }

// CellAddress derives the content address of one cell's result: the hash
// of everything that determines its outcome. It is a pure function of its
// inputs plus the build's calibration constants, so any process — a CLI
// run or the query server — derives the same address for the same
// experiment and shares one cache entry.
func CellAddress(figID, cellKey string, o Opts) string {
	h := sha256.Sum256([]byte(strings.Join([]string{
		cacheVersion,
		figID,
		cellKey,
		fmt.Sprintf("full=%v warmup=%d iters=%d", o.Full, o.Warmup, o.Iters),
		calibrationKey(),
	}, "\x00")))
	return hex.EncodeToString(h[:])
}

// EntryPath returns the on-disk path of one cell's cache entry. Exposed
// for the serve-side chaos hook, which simulates a torn write by planting
// garbage at exactly the path a real Store would have renamed into.
func (c *Cache) EntryPath(figID, cellKey string, o Opts) string {
	return filepath.Join(c.dir, CellAddress(figID, cellKey, o)+".json")
}

// calibrationKey fingerprints the default fabric/memory calibration every
// library profile is derived from. Cells that override the configuration
// embed their own cfgKey in the cell key on top of this.
func calibrationKey() string { return cfgKey(mpi.DefaultConfig()) }

// Load returns the cached values for a cell, if present and readable. A
// missing entry is a plain miss; a damaged entry (truncated write, torn
// file, bad JSON) is logged, counted via Corruptions, and reported as a
// miss so the runner recomputes and overwrites it instead of failing the
// cell.
func (c *Cache) Load(figID, cellKey string, o Opts) ([]Value, bool) {
	addr := CellAddress(figID, cellKey, o)
	data, err := os.ReadFile(filepath.Join(c.dir, addr+".json"))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.damaged(addr, err)
		}
		c.misses.Add(1)
		bump(&c.mMisses)
		return nil, false
	}
	var vals []Value
	if err := json.Unmarshal(data, &vals); err != nil {
		c.damaged(addr, err)
		c.misses.Add(1)
		bump(&c.mMisses)
		return nil, false
	}
	c.hits.Add(1)
	bump(&c.mHits)
	return vals, true
}

// damaged records and reports one unreadable entry.
func (c *Cache) damaged(addr string, err error) {
	c.corrupt.Add(1)
	bump(&c.mCorrupt)
	if c.Logf != nil {
		c.Logf("bench: cache entry %s corrupt (%v); recomputing", addr, err)
	}
}

// Store persists a cell's values atomically.
func (c *Cache) Store(figID, cellKey string, o Opts, vals []Value) error {
	data, err := json.Marshal(vals)
	if err != nil {
		return fmt.Errorf("bench: encoding cache entry: %w", err)
	}
	name := filepath.Join(c.dir, CellAddress(figID, cellKey, o)+".json")
	tmp, err := os.CreateTemp(c.dir, "cell-*.tmp")
	if err != nil {
		return fmt.Errorf("bench: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("bench: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("bench: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("bench: writing cache entry: %w", err)
	}
	return nil
}

// DefaultCacheDir returns the per-user cache directory the CLI tools use
// when no -cache-dir is given.
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "pipmcoll")
}
