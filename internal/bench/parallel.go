package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// RunnerConfig configures the parallel cached experiment runner.
type RunnerConfig struct {
	// Parallel bounds the number of cells simulating concurrently;
	// values below 1 mean GOMAXPROCS. Parallel: 1 reproduces the serial
	// path exactly (and every setting produces byte-identical tables,
	// since cells are independent and assembled in declaration order).
	Parallel int
	// Cache, when non-nil, short-circuits cells whose inputs are
	// unchanged since a previous run and stores fresh results.
	Cache *Cache
	// Progress, when non-nil, is called after each cell completes with
	// the figure-wide completion count. Calls are serialized.
	Progress func(done, total int)
	// CellDone, when non-nil, is called after each cell completes with
	// its figure, key, whether the result came from the cache, and its
	// error (nil on success). Calls are serialized with Progress, so a
	// server can stream per-cell completion events without extra locking.
	CellDone func(figID, key string, cached bool, err error)
	// Metrics, when non-nil, receives harness counters and histograms:
	// bench.cells / bench.cache.hits / bench.cache.misses, plus per-cell
	// wall time and worker-pool queue wait (both in wall milliseconds —
	// the harness measures its own real cost, not virtual time).
	Metrics *obs.Registry
}

// Runner schedules a figure's independent cells over a bounded worker
// pool. Determinism is preserved by construction — each cell owns a
// private simulation engine, and results are routed to fixed (table, row,
// column) addresses — so parallel output is byte-identical to serial.
type Runner struct {
	cfg RunnerConfig
}

// NewRunner returns a runner with the given configuration.
func NewRunner(cfg RunnerConfig) *Runner {
	if cfg.Parallel < 1 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{cfg: cfg}
}

// CellError records one failed measurement cell with its figure and cell
// key, so callers can report exactly which inputs failed.
type CellError struct {
	Figure string
	Key    string
	Err    error
}

// Error renders the failure with its figure and cell-key context.
func (e *CellError) Error() string {
	return fmt.Sprintf("bench: figure %s cell %q: %v", e.Figure, e.Key, e.Err)
}

// Unwrap exposes the underlying measurement error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// CellErrors aggregates every failed cell of one figure run. The runner
// always finishes the whole figure before reporting, so a single bad cell
// cannot mask others — tools print all failing keys at once.
type CellErrors struct {
	Figure string
	Total  int // cells attempted
	Cells  []*CellError
}

// Error lists every failing cell key.
func (e *CellErrors) Error() string {
	if len(e.Cells) == 1 {
		return e.Cells[0].Error()
	}
	msg := fmt.Sprintf("bench: figure %s: %d of %d cells failed:", e.Figure, len(e.Cells), e.Total)
	for _, c := range e.Cells {
		msg += fmt.Sprintf("\n  cell %q: %v", c.Key, c.Err)
	}
	return msg
}

// Unwrap exposes the per-cell errors to errors.Is/As.
func (e *CellErrors) Unwrap() []error {
	errs := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		errs[i] = c
	}
	return errs
}

// RunFigure regenerates one figure: decompose, schedule, reassemble.
// Cancelling ctx abandons cells that have not finished (see RunPlan);
// callers that never cancel pass context.Background() and get behavior
// identical to the pre-context runner.
func (r *Runner) RunFigure(ctx context.Context, f Figure, o Opts) ([]*stats.Table, error) {
	o = o.withDefaults()
	return r.RunPlan(ctx, f.ID, f.Cells(o), o)
}

// RunPlan executes a decomposed experiment under the runner's worker pool
// and fills the plan's tables in declaration order. figID namespaces the
// plan's cells in the result cache, so any caller that derives the same
// (figID, cell key, opts) triple — a CLI or the query server — shares the
// same cache entries.
//
// If ctx is cancelled, cells that have not started are skipped and cells
// in flight are abandoned: their worker slots are released immediately
// while the orphaned simulation finishes in the background with its
// result discarded. The returned error is then ctx.Err() (wrapped in
// CellErrors alongside any real failures).
func (r *Runner) RunPlan(ctx context.Context, figID string, p *Plan, o Opts) ([]*stats.Table, error) {
	o = o.withDefaults()
	n := len(p.Cells)
	results := make([][]Value, n)
	errs := make([]error, n)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	sem := make(chan struct{}, r.cfg.Parallel)
	for i := range p.Cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			enq := time.Now()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			start := time.Now()
			var cached bool
			results[i], cached, errs[i] = r.runCell(ctx, figID, p.Cells[i], o)
			if m := r.cfg.Metrics; m != nil {
				m.Counter("bench.cells").Add(1)
				m.Histogram("bench.cell.queue_wait_ms", obs.DefaultBuckets).Observe(start.Sub(enq).Seconds() * 1e3)
				m.Histogram("bench.cell.wall_ms", obs.DefaultBuckets).Observe(time.Since(start).Seconds() * 1e3)
			}
			if r.cfg.Progress != nil || r.cfg.CellDone != nil {
				mu.Lock()
				done++
				if r.cfg.CellDone != nil {
					r.cfg.CellDone(figID, p.Cells[i].Key, cached, errs[i])
				}
				if r.cfg.Progress != nil {
					r.cfg.Progress(done, n)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	var failed []*CellError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &CellError{Figure: figID, Key: p.Cells[i].Key, Err: err})
		}
	}
	if len(failed) > 0 {
		return nil, &CellErrors{Figure: figID, Total: n, Cells: failed}
	}
	for _, vals := range results {
		for _, v := range vals {
			p.Tables[v.Table].Set(v.Row, v.Col, v.V)
		}
	}
	tables := p.Tables
	if p.Finish != nil {
		tables = p.Finish(tables)
	}
	return tables, nil
}

// cellOutcome carries a cell body's result across the goroutine boundary
// that makes cells abandonable.
type cellOutcome struct {
	vals []Value
	err  error
}

// runCell measures one cell, consulting and feeding the cache. The cell
// body runs in its own goroutine so a cancelled context releases the
// worker slot immediately even mid-simulation; the orphaned body runs to
// completion in the background and its result is dropped (never cached —
// an abandoned measurement must not race a re-submission's store). Panics
// from driver code (world construction, verification) are converted to
// errors so one bad cell fails the figure instead of the process.
func (r *Runner) runCell(ctx context.Context, figID string, c Cell, o Opts) (vals []Value, cached bool, err error) {
	if r.cfg.Cache != nil {
		if cached, ok := r.cfg.Cache.Load(figID, c.Key, o); ok {
			if m := r.cfg.Metrics; m != nil {
				m.Counter("bench.cache.hits").Add(1)
			}
			return cached, true, nil
		}
		if m := r.cfg.Metrics; m != nil {
			m.Counter("bench.cache.misses").Add(1)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	out := make(chan cellOutcome, 1)
	go func() {
		var res cellOutcome
		defer func() {
			if p := recover(); p != nil {
				res = cellOutcome{err: fmt.Errorf("panic: %v", p)}
			}
			out <- res
		}()
		res.vals, res.err = c.Run()
	}()
	select {
	case res := <-out:
		if res.err != nil {
			return nil, false, res.err
		}
		if r.cfg.Cache != nil {
			if err := r.cfg.Cache.Store(figID, c.Key, o, res.vals); err != nil {
				return nil, false, err
			}
		}
		return res.vals, false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// runSerial is the compatibility path behind the exported per-figure
// driver functions (Fig1..Fig14, ExtE1.., AblA1.., SensS1..): build the
// plan and execute it serially, panicking on error as the old monolithic
// drivers did.
func runSerial(figID string, cells func(Opts) *Plan, o Opts) []*stats.Table {
	o = o.withDefaults()
	tables, err := NewRunner(RunnerConfig{Parallel: 1}).RunPlan(context.Background(), figID, cells(o), o)
	if err != nil {
		panic(err)
	}
	return tables
}
