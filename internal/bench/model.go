package bench

import (
	"math"

	"repro/internal/mpi"
	"repro/internal/simtime"
)

// Model evaluates the closed-form runtime predictions of Section III's
// extended Hockney analysis, with parameters derived from the simulator's
// calibration. The paper's α/β/γ abstraction collapses our multi-stage NIC
// pipeline into single per-message and per-byte constants, so predictions
// are structural (ordering, scaling trends) rather than exact; the
// validation test asserts exactly those structural properties.
type Model struct {
	AlphaR simtime.Duration // intranode start-up latency
	AlphaE simtime.Duration // internode per-message latency
	BetaR  float64          // intranode seconds/byte
	BetaE  float64          // internode seconds/byte (node link)
	Gamma  float64          // reduction seconds/byte
	P      int              // processes per node
	N      int              // nodes
}

// NewModel derives the paper's constants from a transport configuration.
func NewModel(cfg mpi.Config, nodes, ppn int) Model {
	f := cfg.Fabric
	s := cfg.Shm
	return Model{
		AlphaR: s.Latency,
		AlphaE: f.SendCPU + f.QueueOverhead + 2*f.LinkOverhead + f.WireLatency + f.RecvOverhead,
		BetaR:  1 / s.CopyBandwidth,
		BetaE:  1 / f.LinkBandwidth,
		Gamma:  1 / s.ReduceBandwidth,
		P:      ppn,
		N:      nodes,
	}
}

// logCeil returns ceil(log_base(n)) for n >= 1.
func logCeil(n, base int) int {
	steps := 0
	for span := 1; span < n; span *= base {
		steps++
	}
	return steps
}

func secs(s float64) simtime.Duration { return simtime.Seconds(s) }

// ScatterTime is Section III-A1's max(T_intrascatter, T_interscatter):
// T_intra = α_r + P·C_b·β_r, T_inter = α_e·ceil(log_{P+1} N) + C_b·(N-1)·P·β_e.
func (m Model) ScatterTime(cb int) simtime.Duration {
	intra := m.AlphaR + secs(float64(m.P*cb)*m.BetaR)
	inter := simtime.Duration(logCeil(m.N, m.P+1))*m.AlphaE +
		secs(float64(cb*(m.N-1)*m.P)*m.BetaE)
	if intra > inter {
		return intra
	}
	return inter
}

// AllgatherSmallTime is Section III-A2's T_intra-gathers + T_inter-allgathers:
// the intranode gather plus final broadcast term (1 + N·P·(P-1))·C_b·β_r and
// the multi-object Bruck term with its quadratic C_b growth.
func (m Model) AllgatherSmallTime(cb int) simtime.Duration {
	intra := m.AlphaR + secs(float64(1+m.N*m.P*(m.P-1))*float64(cb)*m.BetaR)
	inter := simtime.Duration(logCeil(m.N, m.P+1))*m.AlphaE +
		secs(float64(m.N-1)*float64(cb*m.P)*m.BetaE)
	return intra + inter
}

// AllgatherLargeTime is Section III-B1's T_intra-gatherl +
// max(T_intra-bcastl, T_inter-allgatherl).
func (m Model) AllgatherLargeTime(cb int) simtime.Duration {
	gather := m.AlphaR + secs(float64((m.P-1)*cb)*m.BetaR)
	bcast := simtime.Duration(m.N-1)*m.AlphaR +
		secs(float64(m.N*m.P*cb)*m.BetaR)
	inter := simtime.Duration(m.N-1)*m.AlphaE +
		secs(float64(m.P*cb*(m.N-1))*m.BetaE)
	tail := bcast
	if inter > tail {
		tail = inter
	}
	return gather + tail
}

// AllreduceSmallTime is Section III-A3's T_intra-reduces + T_inter-allreduces.
func (m Model) AllreduceSmallTime(cb int) simtime.Duration {
	l2p := logCeil(m.P, 2)
	intra := simtime.Duration(l2p)*m.AlphaR +
		secs(float64(cb*l2p)*m.BetaR) + secs(float64(cb*l2p)*m.Gamma)
	steps := logCeil(m.N, m.P+1)
	inter := simtime.Duration(steps)*m.AlphaE +
		secs(float64(cb*m.P*steps)*m.BetaE) + secs(float64(cb*steps)*m.Gamma)
	return intra + inter
}

// AllreduceLargeTime is Section III-B2's T_intra-reducel + T_inter-rscatterl
// + max(T_intra-bcastl, T_inter-allgatherl) with the allgather terms taken
// over the reduced node chunks (C_b/N per node).
func (m Model) AllreduceLargeTime(cb int) simtime.Duration {
	reduce := simtime.Duration(m.P-1)*m.AlphaR + secs(float64(cb)*m.Gamma)
	rscatter := simtime.Duration(m.P-1)*m.AlphaE +
		secs(float64(m.N-1)/float64(m.N)*float64(cb)*m.BetaE) +
		secs(float64(cb)/float64(m.N)*float64(m.N-1)*m.Gamma)
	chunk := cb / m.N
	bcast := simtime.Duration(m.N-1)*m.AlphaR + secs(float64(m.N*chunk)*m.BetaR)
	inter := simtime.Duration(m.N-1)*m.AlphaE + secs(float64(chunk*(m.N-1))*m.BetaE)
	tail := bcast
	if inter > tail {
		tail = inter
	}
	return reduce + rscatter + tail
}

// WithinFactor reports whether measured lies within factor f of predicted
// (both positive).
func WithinFactor(predicted, measured simtime.Duration, f float64) bool {
	if predicted <= 0 || measured <= 0 {
		return false
	}
	ratio := float64(measured) / float64(predicted)
	return ratio <= f && ratio >= 1/f
}

// Monotone reports whether xs is non-decreasing within a small tolerance.
func Monotone(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]*(1-1e-9) {
			return false
		}
	}
	return true
}

// Correlates reports whether two positive series have the same growth
// direction between consecutive points for at least frac of the steps — the
// structural agreement the Hockney-style model can promise.
func Correlates(pred, meas []float64, frac float64) bool {
	if len(pred) != len(meas) || len(pred) < 2 {
		return false
	}
	agree := 0
	for i := 1; i < len(pred); i++ {
		dp := pred[i] - pred[i-1]
		dm := meas[i] - meas[i-1]
		if math.Signbit(dp) == math.Signbit(dm) || dp == 0 || dm == 0 {
			agree++
		}
	}
	return float64(agree) >= frac*float64(len(pred)-1)
}
