package bench

import (
	"testing"

	"repro/internal/libs"
	"repro/internal/mpi"
)

// TestHockneyPredictions validates the simulator against the paper's
// Section III closed-form analysis: for each PiP-MColl algorithm, the
// measured virtual runtime must (a) stay within an order of magnitude of
// the prediction and (b) grow with message size whenever the model says it
// grows — the structural agreement a single-(α,β,γ) model can promise
// about a pipelined multi-queue fabric.
func TestHockneyPredictions(t *testing.T) {
	const nodes, ppn = 8, 4
	lib := libs.PiPMColl()
	m := NewModel(lib.Config(), nodes, ppn)

	cases := []struct {
		name    string
		op      Op
		sizes   []int
		predict func(int) float64 // microseconds
	}{
		{"scatter", OpScatter, []int{64, 512, 4 << 10, 32 << 10},
			func(cb int) float64 { return m.ScatterTime(cb).Microseconds() }},
		{"allgather-small", OpAllgather, []int{64, 512, 4 << 10},
			func(cb int) float64 { return m.AllgatherSmallTime(cb).Microseconds() }},
		{"allgather-large", OpAllgather, []int{64 << 10, 128 << 10},
			func(cb int) float64 { return m.AllgatherLargeTime(cb).Microseconds() }},
		{"allreduce-small", OpAllreduce, []int{64, 512, 4 << 10},
			func(cb int) float64 { return m.AllreduceSmallTime(cb).Microseconds() }},
		{"allreduce-large", OpAllreduce, []int{64 << 10, 256 << 10},
			func(cb int) float64 { return m.AllreduceLargeTime(cb).Microseconds() }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var pred, meas []float64
			for _, cb := range c.sizes {
				mm := MustRun(Spec{Lib: lib, Op: c.op, Nodes: nodes, PPN: ppn,
					Bytes: cb, Warmup: 1, Iters: 1})
				pred = append(pred, c.predict(cb))
				meas = append(meas, mm.MeanMicros())
			}
			for i, cb := range c.sizes {
				ratio := meas[i] / pred[i]
				if ratio < 0.1 || ratio > 10 {
					t.Errorf("%s %dB: measured %.3g us vs predicted %.3g us (ratio %.2f)",
						c.name, cb, meas[i], pred[i], ratio)
				}
			}
			if !Monotone(pred) {
				t.Errorf("%s: prediction not monotone: %v", c.name, pred)
			}
			if !Correlates(pred, meas, 1.0) {
				t.Errorf("%s: growth directions disagree: pred %v meas %v", c.name, pred, meas)
			}
		})
	}
}

func TestModelDerivation(t *testing.T) {
	m := NewModel(mpi.DefaultConfig(), 16, 18)
	if m.N != 16 || m.P != 18 {
		t.Fatalf("shape = %d/%d", m.N, m.P)
	}
	if m.AlphaE <= m.AlphaR {
		t.Fatal("internode latency should exceed intranode latency")
	}
	if m.BetaR >= 1/1e9 || m.BetaE >= 1/1e9 {
		t.Fatal("betas implausibly slow")
	}
}

func TestLogCeil(t *testing.T) {
	cases := []struct{ n, base, want int }{
		{1, 2, 0}, {2, 2, 1}, {3, 2, 2}, {8, 2, 3}, {9, 2, 4},
		{19, 19, 1}, {20, 19, 2}, {361, 19, 2},
	}
	for _, c := range cases {
		if got := logCeil(c.n, c.base); got != c.want {
			t.Errorf("logCeil(%d,%d) = %d, want %d", c.n, c.base, got, c.want)
		}
	}
}

func TestWithinFactorAndHelpers(t *testing.T) {
	if !WithinFactor(100, 200, 3) || WithinFactor(100, 400, 3) || WithinFactor(0, 5, 3) {
		t.Fatal("WithinFactor wrong")
	}
	if !Monotone([]float64{1, 2, 2, 3}) || Monotone([]float64{2, 1}) {
		t.Fatal("Monotone wrong")
	}
	if !Correlates([]float64{1, 2, 3}, []float64{10, 20, 30}, 1.0) {
		t.Fatal("Correlates false negative")
	}
	if Correlates([]float64{1, 2, 3}, []float64{30, 20, 10}, 1.0) {
		t.Fatal("Correlates false positive")
	}
	if Correlates([]float64{1}, []float64{1}, 1.0) {
		t.Fatal("Correlates accepted short series")
	}
}

func TestModelPredictionsScaleWithN(t *testing.T) {
	// The paper's scalability claims: scatter and allreduce-small grow
	// with N (linearly and logarithmically respectively).
	cfg := mpi.DefaultConfig()
	var scatter, ar []float64
	for _, n := range []int{4, 16, 64} {
		m := NewModel(cfg, n, 18)
		scatter = append(scatter, m.ScatterTime(1024).Microseconds())
		ar = append(ar, m.AllreduceSmallTime(1024).Microseconds())
	}
	if !Monotone(scatter) || !Monotone(ar) {
		t.Fatalf("model not monotone in N: scatter %v allreduce %v", scatter, ar)
	}
}
