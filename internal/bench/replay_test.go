package bench

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/libs"
	"repro/internal/simtime"
	"repro/internal/stats"
)

func replaySpec() Spec {
	return Spec{Lib: libs.PiPMColl(), Op: OpAllgather, Nodes: 2, PPN: 2,
		Bytes: 1024, Warmup: 1, Iters: 3}
}

// A memo's first eligible measurement records, the second replays, and both
// produce the identical Measurement — same per-iteration virtual durations,
// same summary — because replay is bit-identical in virtual time.
func TestScheduleMemoRecordThenReplay(t *testing.T) {
	spec := replaySpec()
	cfg := spec.Lib.Config()

	plain, err := Run(spec) // no memo: the reference measurement
	if err != nil {
		t.Fatal(err)
	}

	memo := NewScheduleMemo()
	first, handled, err := memo.run(spec, cfg)
	if err != nil || !handled {
		t.Fatalf("first memo run: handled=%v err=%v", handled, err)
	}
	second, handled, err := memo.run(spec, cfg)
	if err != nil || !handled {
		t.Fatalf("second memo run: handled=%v err=%v", handled, err)
	}

	st := memo.Stats()
	if st.Schedules != 1 || st.Misses != 1 || st.Hits != 1 || st.Fallbacks != 0 {
		t.Fatalf("memo stats = %+v, want 1 schedule, 1 miss, 1 hit, 0 fallbacks", st)
	}
	for _, m := range []Measurement{first, second} {
		if len(m.PerIter) != spec.Iters {
			t.Fatalf("measurement has %d iterations, want %d", len(m.PerIter), spec.Iters)
		}
		for i := range m.PerIter {
			if m.PerIter[i] != plain.PerIter[i] {
				t.Errorf("iteration %d: %v != live %v", i, m.PerIter[i], plain.PerIter[i])
			}
		}
		if m.Summary.Mean != plain.Summary.Mean {
			t.Errorf("summary mean %.6f != live %.6f", m.Summary.Mean, plain.Summary.Mean)
		}
	}
}

// Ineligible configurations — fault plans, op timeouts — are not handled by
// the memo: the caller runs live, and the memo counts a fallback.
func TestScheduleMemoFallback(t *testing.T) {
	spec := replaySpec()
	memo := NewScheduleMemo()

	faulty := spec.Lib.Config()
	plan, err := fault.New(fault.Spec{Seed: 7, Noise: []fault.Noise{
		{Amplitude: simtime.Microsecond, Period: 10 * simtime.Microsecond}}})
	if err != nil {
		t.Fatal(err)
	}
	faulty.Faults = plan
	if _, handled, err := memo.run(spec, faulty); handled || err != nil {
		t.Fatalf("fault-plan config: handled=%v err=%v, want unhandled", handled, err)
	}

	timed := spec.Lib.Config()
	timed.OpTimeout = simtime.Second
	if _, handled, err := memo.run(spec, timed); handled || err != nil {
		t.Fatalf("op-timeout config: handled=%v err=%v, want unhandled", handled, err)
	}

	st := memo.Stats()
	if st.Fallbacks != 2 || st.Hits != 0 || st.Misses != 0 || st.Schedules != 0 {
		t.Fatalf("memo stats = %+v, want 2 fallbacks only", st)
	}

	// The full path still works: RunConfig with the process memo installed
	// must serve the ineligible config live and agree with a memo-free run.
	EnableReplay(memo)
	t.Cleanup(func() { EnableReplay(nil) })
	withMemo, err := RunConfig(spec, faulty)
	if err != nil {
		t.Fatal(err)
	}
	EnableReplay(nil)
	without, err := RunConfig(spec, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if withMemo.Summary.Mean != without.Summary.Mean {
		t.Errorf("fault-plan run under memo %.6f != live %.6f",
			withMemo.Summary.Mean, without.Summary.Mean)
	}
}

// Distinct shapes must never share an entry: same op and payload on a
// different topology records its own schedule.
func TestScheduleMemoShapeIsolation(t *testing.T) {
	memo := NewScheduleMemo()
	a := replaySpec()
	b := a
	b.Nodes = 4

	ma, handled, err := memo.run(a, a.Lib.Config())
	if err != nil || !handled {
		t.Fatalf("shape a: handled=%v err=%v", handled, err)
	}
	mb, handled, err := memo.run(b, b.Lib.Config())
	if err != nil || !handled {
		t.Fatalf("shape b: handled=%v err=%v", handled, err)
	}
	st := memo.Stats()
	if st.Schedules != 2 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("memo stats = %+v, want 2 schedules from 2 misses", st)
	}
	if ma.Summary.Mean == mb.Summary.Mean {
		t.Fatalf("2x2 and 4x2 worlds agree on %.6fus — shapes not isolated?", ma.Summary.Mean)
	}
}

// TestFig9CellReplayGolden re-runs the fig-9 golden cells with the
// process-wide memo installed and every cell executed twice — the first
// records, the second replays — and requires the byte-exact CSV of the
// existing golden file. This pins the determinism suite's strongest claim
// onto the replay engine: memoized cells are indistinguishable from live
// ones down to the formatted output.
func TestFig9CellReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure cells are not short-mode material")
	}
	memo := NewScheduleMemo()
	EnableReplay(memo)
	t.Cleanup(func() { EnableReplay(nil) })

	const bytes = 1024
	ls := libs.All()
	table := stats.NewTable("Fig 9 cell: MPI_Scatter 1 kB (16x6, quick)",
		"size", "us", libNames(ls), []string{"1024B"})
	for _, l := range ls {
		spec := Spec{Lib: l, Op: OpScatter, Nodes: 16, PPN: 6,
			Bytes: bytes, Warmup: 2, Iters: 3}
		if _, err := Run(spec); err != nil { // records
			t.Fatal(err)
		}
		m, err := Run(spec) // replays
		if err != nil {
			t.Fatal(err)
		}
		table.Set("1024B", l.Name(), m.MeanMicros())
	}
	st := memo.Stats()
	if st.Hits != int64(len(ls)) || st.Misses != int64(len(ls)) {
		t.Fatalf("memo stats = %+v, want %d hits and %d misses", st, len(ls), len(ls))
	}

	got := table.CSV()
	want, err := os.ReadFile(filepath.Join("testdata", "fig9_cell.golden.csv"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if got != string(want) {
		t.Errorf("replayed fig9 cells diverged from golden output.\n--- got ---\n%s--- want ---\n%s",
			got, want)
	}
}
