package bench

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/stats"
)

// WhatIfFigureID is the cache namespace for ad-hoc single-point queries:
// measurements that belong to no registered figure, such as the query
// server's what-if requests. Two what-if runs of the same (library,
// collective, shape, payload, fault plan, opts) share one cache entry
// regardless of which process asked.
const WhatIfFigureID = "whatif"

// WhatIf is one ad-hoc measurement point: a standard Spec optionally run
// under a fault plan. It compiles to a single-cell Plan whose key folds in
// the full transport configuration whenever the plan deviates from the
// library default, following the same convention as the sensitivity and
// tuning cells.
type WhatIf struct {
	Spec  Spec
	Fault *fault.Spec
}

// Key returns the what-if cell's cache key.
func (w WhatIf) Key() (string, error) {
	key := specKey(w.Spec)
	if w.Fault != nil {
		plan, err := fault.New(*w.Fault)
		if err != nil {
			return "", err
		}
		cfg := w.Spec.Lib.Config()
		cfg.Faults = plan
		key += " cfg=" + cfgKey(cfg)
	}
	return key, nil
}

// Plan compiles the what-if point into a one-cell plan: a 1x1 table (row =
// the payload label, column = the library) receiving the mean runtime in
// microseconds.
func (w WhatIf) Plan() (*Plan, error) {
	if err := validate(w.Spec); err != nil {
		return nil, err
	}
	cfg := w.Spec.Lib.Config()
	if w.Fault != nil {
		plan, err := fault.New(*w.Fault)
		if err != nil {
			return nil, err
		}
		cfg.Faults = plan
	}
	key, err := w.Key()
	if err != nil {
		return nil, err
	}
	spec := w.Spec
	row := fmt.Sprintf("%s %s %dx%d", spec.Op, sizeLabel(spec.Bytes), spec.Nodes, spec.PPN)
	col := spec.Lib.Name()
	title := fmt.Sprintf("what-if: %s %s (%dx%d, %s per process)",
		col, spec.Op, spec.Nodes, spec.PPN, sizeLabel(spec.Bytes))
	if w.Fault != nil {
		title += " under faults"
	}
	t := stats.NewTable(title, "point", "us", []string{col}, []string{row})
	cell := Cell{
		Key: key,
		Run: func() ([]Value, error) {
			m, err := RunConfig(spec, cfg)
			if err != nil {
				return nil, err
			}
			return []Value{{Table: 0, Row: row, Col: col, V: m.MeanMicros()}}, nil
		},
	}
	return &Plan{Tables: []*stats.Table{t}, Cells: []Cell{cell}}, nil
}
