package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/query"
)

// Config configures the HTTP service. Zero values pick sane defaults.
type Config struct {
	// Workers, MaxQueue, MaxPerClient configure the cell scheduler.
	Workers      int
	MaxQueue     int
	MaxPerClient int
	// Cache is the shared on-disk result cache (nil disables caching —
	// every query simulates).
	Cache *bench.Cache
	// Metrics receives scheduler and server series; a fresh registry is
	// created when nil.
	Metrics *obs.Registry
}

// Server is the simulation-as-a-service front end. Routes:
//
//	POST /query            run a query.Request; ?stream=1 streams NDJSON
//	                       per-cell progress before the final response
//	GET  /figures          list the figure registry
//	GET  /traces/{addr}    Perfetto trace of a completed cell query
//	GET  /metrics          text dump of the metrics registry
//	GET  /healthz          liveness
type Server struct {
	sched   *Scheduler
	cache   *bench.Cache
	metrics *obs.Registry

	mu     sync.Mutex
	traces map[string]query.Request // cell content address -> normalized request
}

// New builds a server and starts its scheduler.
func New(cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	return &Server{
		sched: NewScheduler(SchedulerConfig{
			Workers:      cfg.Workers,
			MaxQueue:     cfg.MaxQueue,
			MaxPerClient: cfg.MaxPerClient,
			Cache:        cfg.Cache,
			Metrics:      cfg.Metrics,
		}),
		cache:   cfg.Cache,
		metrics: cfg.Metrics,
		traces:  make(map[string]query.Request),
	}
}

// Close stops the worker pool.
func (s *Server) Close() { s.sched.Close() }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/figures", s.handleFigures)
	mux.HandleFunc("/traces/", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// clientID identifies the requester for fair scheduling: the X-Client
// header when present (load generators and tests set it), else the remote
// host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// streamEvent is one NDJSON progress line on a streamed query.
type streamEvent struct {
	Type   string          `json:"type"` // "cell", "result", "error"
	Key    string          `json:"key,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Done   int             `json:"done,omitempty"`
	Total  int             `json:"total,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result *query.Response `json:"result,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req query.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, err := query.Build(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.Counter("serve.queries").Add(1)
	start := time.Now()

	stream := r.URL.Query().Get("stream") == "1"
	var enc *json.Encoder
	var flusher http.Flusher
	var onCell func(i int, key string, cached bool, err error)
	total := len(j.Plan.Cells)
	if stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc = json.NewEncoder(w)
		flusher, _ = w.(http.Flusher)
		done := 0
		onCell = func(_ int, key string, cached bool, err error) {
			done++
			ev := streamEvent{Type: "cell", Key: key, Cached: cached, Done: done, Total: total}
			if err != nil {
				ev.Error = err.Error()
			}
			enc.Encode(ev)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	results, hits, err := s.sched.RunJob(r.Context(), clientID(r), j, onCell)
	s.metrics.Histogram("serve.query.latency_ms", obs.DefaultBuckets).
		Observe(time.Since(start).Seconds() * 1e3)
	if err != nil {
		var over *ErrOverloaded
		switch {
		case errors.As(err, &over):
			if !stream {
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(over.RetryAfter.Seconds())))
				httpError(w, http.StatusTooManyRequests, err)
				return
			}
		case r.Context().Err() != nil:
			// Client is gone; nothing useful to write.
			return
		}
		if stream {
			enc.Encode(streamEvent{Type: "error", Error: err.Error()})
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}

	resp, err := query.NewResponse(j, j.Assemble(results), hits,
		time.Since(start).Seconds()*1e3)
	if err != nil {
		if stream {
			enc.Encode(streamEvent{Type: "error", Error: err.Error()})
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if j.Req.Kind == query.KindCell {
		// Index the completed cell by content address so its Perfetto
		// trace can be regenerated on demand at /traces/{addr}.
		s.mu.Lock()
		s.traces[j.Addresses()[0]] = j.Req
		s.mu.Unlock()
	}
	if stream {
		enc.Encode(streamEvent{Type: "result", Result: resp})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleFigures(w http.ResponseWriter, _ *http.Request) {
	type fig struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Kind  string `json:"kind"`
	}
	var out []fig
	for _, f := range bench.All() {
		out = append(out, fig{ID: f.ID, Title: f.Title, Kind: f.Kind.String()})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	addr := strings.TrimPrefix(r.URL.Path, "/traces/")
	s.mu.Lock()
	req, ok := s.traces[addr]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("no completed cell query with address %q; POST its query first", addr))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := query.WriteCellTrace(req, w); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
	s.metrics.Counter("serve.traces").Add(1)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cache != nil {
		hits, misses := s.cache.Stats()
		s.metrics.Gauge("serve.cache.hits").Set(hits)
		s.metrics.Gauge("serve.cache.misses").Set(misses)
		s.metrics.Gauge("serve.cache.corruptions").Set(s.cache.Corruptions())
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.Dump(w)
}
