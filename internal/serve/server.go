package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/query"
)

// Config configures the HTTP service. Zero values pick sane defaults.
type Config struct {
	// Workers, MaxQueue, MaxPerClient configure the cell scheduler.
	Workers      int
	MaxQueue     int
	MaxPerClient int
	// Cache is the shared on-disk result cache (nil disables caching —
	// every query simulates). The server instruments it with event-time
	// hit/miss/corruption counters under serve.cache.*.
	Cache *bench.Cache
	// Metrics receives scheduler and server series; a fresh registry is
	// created when nil.
	Metrics *obs.Registry
	// Logger receives structured request logs (one line per request with
	// its ID, outcome and stage breakdown, plus shed/abandonment events);
	// nil discards them.
	Logger *slog.Logger
	// EnablePprof mounts the stdlib /debug/pprof handlers on the server's
	// mux. Off by default: profiling endpoints on a public port are a
	// deliberate choice.
	EnablePprof bool
	// FlightRecorderSize is how many recent requests the always-on flight
	// recorder retains (0 means DefaultFlightRecorderSize).
	FlightRecorderSize int
	// CellBudget arms the scheduler's stuck-cell watchdog (0 = off): a
	// cell executing longer than this wall-clock budget is killed with a
	// typed StuckCellError and counted in serve.cells_killed.
	CellBudget time.Duration
	// Chaos is the test-only per-cell fault hook (slow cells, failing
	// cells, torn cache writes); nil in production.
	Chaos ChaosFunc
	// Replay, when non-nil, enables schedule memoization for fault-free
	// cells: record each shape's event DAG once, replay repeats
	// goroutine-free (the pipmcoll-serve -replay flag).
	Replay *bench.ScheduleMemo
}

// Server is the simulation-as-a-service front end. Routes:
//
//	POST /query            run a query.Request; ?stream=1 streams NDJSON
//	                       per-cell progress before the final response
//	GET  /figures          list the figure registry
//	GET  /traces/{addr}    Perfetto trace of a completed cell query
//	GET  /metrics          Prometheus text exposition of the metrics
//	                       registry (?format=text for the legacy dump)
//	GET  /debug/requests   flight recorder: recent requests, newest first
//	GET  /debug/pprof/*    stdlib profiling (only with EnablePprof)
//	GET  /healthz          liveness
type Server struct {
	sched   *Scheduler
	cache   *bench.Cache
	metrics *obs.Registry
	logger  *slog.Logger
	rec     *FlightRecorder
	pprofOn bool
	// ready is the /readyz signal: true while the server admits new work,
	// flipped false at drain start so load balancers stop routing here
	// while in-flight work (and warm-cache hits) finish.
	ready atomic.Bool

	mu     sync.Mutex
	traces map[string]query.Request // cell content address -> normalized request
}

// New builds a server and starts its scheduler.
func New(cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Cache != nil {
		// Event-time accounting: the counters advance when the cache event
		// happens, not when /metrics is scraped, so values are correct
		// between scrapes.
		cfg.Cache.Instrument(cfg.Metrics, "serve.cache")
	}
	registerHelp(cfg.Metrics)
	s := &Server{
		sched: NewScheduler(SchedulerConfig{
			Workers:      cfg.Workers,
			MaxQueue:     cfg.MaxQueue,
			MaxPerClient: cfg.MaxPerClient,
			Cache:        cfg.Cache,
			Metrics:      cfg.Metrics,
			Logger:       cfg.Logger,
			CellBudget:   cfg.CellBudget,
			Chaos:        cfg.Chaos,
			Replay:       cfg.Replay,
		}),
		cache:   cfg.Cache,
		metrics: cfg.Metrics,
		logger:  cfg.Logger,
		rec:     NewFlightRecorder(cfg.FlightRecorderSize),
		pprofOn: cfg.EnablePprof,
		traces:  make(map[string]query.Request),
	}
	s.ready.Store(true)
	return s
}

// drainRetryAfterS is the Retry-After hint (seconds) on draining 503s: a
// restart-supervised process is typically back within this window.
const drainRetryAfterS = 10

// BeginDrain enters the drain window: /readyz flips to 503 (load
// balancers stop routing here) and the scheduler stops admitting new
// cells — warm-cache hits and singleflight joins keep serving, requests
// needing fresh work get a typed 503 draining response. Idempotent.
func (s *Server) BeginDrain() {
	if s.ready.Swap(false) {
		s.logger.Info("drain started",
			"queue_depth", s.sched.QueueDepth(), "retry_after_s", drainRetryAfterS)
	}
	s.sched.Drain()
}

// Drain runs the full graceful-shutdown protocol: BeginDrain, then wait
// for every queued and in-flight cell to finish. If ctx expires first,
// the remaining flights are abandoned with ErrDraining (their waiters get
// typed 503s, worker slots release mid-cell, nothing partial is cached)
// and Drain returns ctx.Err(). Call before http.Server.Shutdown so the
// listener keeps answering warm hits during the window.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	err := s.sched.WaitIdle(ctx)
	if err != nil {
		s.logger.Warn("drain timed out; abandoning in-flight cells",
			"queue_depth", s.sched.QueueDepth(), "error", err)
	} else {
		s.logger.Info("drain complete")
	}
	return err
}

// Ready reports whether the server is admitting new work (the /readyz
// signal).
func (s *Server) Ready() bool { return s.ready.Load() }

// registerHelp attaches exposition help text to the server's series.
func registerHelp(r *obs.Registry) {
	r.Help("serve.queries", "total /query requests accepted for execution")
	r.Help("serve.queue.depth", "cells admitted and waiting for a worker")
	r.Help("serve.queue.rejected", "jobs shed with 429 by admission control")
	r.Help("serve.cells.fast_path", "cells answered from cache without queueing")
	r.Help("serve.cells.joined", "cells merged into an identical in-flight cell")
	r.Help("serve.cells.executed", "cell bodies simulated by a worker")
	r.Help("serve.cells.cached", "queued cells answered by the worker's cache re-probe")
	r.Help("serve.cells.abandoned", "in-flight cells cancelled because every waiter left")
	r.Help("serve.query.latency_ms", "end-to-end /query wall time in milliseconds")
	for _, s := range stageOrder {
		r.Help("serve.stage."+s+"_us", "per-request wall time in the "+s+" stage (µs)")
	}
	r.Help("serve.cell.queue_wait_us", "per-cell time from admission to worker pickup (µs)")
	r.Help("serve.cell.exec_us", "per-cell worker execution time (µs)")
	r.Help("serve.cells_killed", "flights killed by the stuck-cell watchdog (-cell-budget)")
	r.Help("serve.queue.drained_rejects", "jobs refused with 503 because the server was draining")
	r.Help("serve.deadline_exceeded", "requests that hit their own timeout_ms deadline (504)")
}

// Close stops the worker pool.
func (s *Server) Close() { s.sched.Close() }

// FlightRecorder exposes the server's request ring (the loadtest harness
// and tests read it through /debug/requests; this accessor is for
// in-process embedding).
func (s *Server) FlightRecorder() *FlightRecorder { return s.rec }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/figures", s.handleFigures)
	mux.HandleFunc("/traces/", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Liveness vs readiness: /healthz answers "is the process alive" and
	// stays 200 through a drain (restarting a draining server would defeat
	// the drain); /readyz answers "should new traffic come here" and flips
	// to 503 the moment BeginDrain runs.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() {
			fmt.Fprintln(w, "ready")
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfterS))
		http.Error(w, "draining", http.StatusServiceUnavailable)
	})
	return mux
}

// clientID identifies the requester for fair scheduling: the X-Client
// header when present (load generators and tests set it), else the remote
// host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// requestID returns the client-provided X-Request-ID or mints one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	return newRequestID()
}

// requestTimeout resolves a request's deadline: the X-Timeout-Ms header
// when present (operators can bound traffic at a proxy without touching
// bodies), else the body's timeout_ms field. 0 means no deadline.
func requestTimeout(r *http.Request, req query.Request) (time.Duration, error) {
	ms := req.TimeoutMS
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		v, err := strconv.Atoi(h)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad X-Timeout-Ms %q", h)
		}
		ms = v
	}
	if ms < 0 {
		return 0, fmt.Errorf("negative timeout_ms %d", ms)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// deadlineBody is the 504 response body: machine-readable fields naming
// the cell the request was waiting on and where its time went.
type deadlineBody struct {
	Error     string        `json:"error"`
	Cell      string        `json:"cell,omitempty"`
	Addr      string        `json:"addr,omitempty"`
	TimeoutMS float64       `json:"timeout_ms"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Stages    []query.Stage `json:"stages,omitempty"`
}

// writeDeadline renders a DeadlineError as a 504 with structured body.
func (s *Server) writeDeadline(w http.ResponseWriter, dl *DeadlineError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusGatewayTimeout)
	json.NewEncoder(w).Encode(deadlineBody{
		Error:     dl.Error(),
		Cell:      dl.Cell,
		Addr:      dl.Addr,
		TimeoutMS: dl.Timeout.Seconds() * 1e3,
		ElapsedMS: dl.Elapsed.Seconds() * 1e3,
		Stages:    dl.Stages,
	})
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// streamEvent is one NDJSON progress line on a streamed query.
type streamEvent struct {
	Type   string          `json:"type"` // "cell", "result", "error"
	Key    string          `json:"key,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Done   int             `json:"done,omitempty"`
	Total  int             `json:"total,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result *query.Response `json:"result,omitempty"`
}

// observeStages aggregates a finished trace into the per-stage histograms
// that turn individual breakdowns into p50/p99 series.
func (s *Server) observeStages(tr *Trace) {
	for _, st := range tr.Stages() {
		s.metrics.Histogram("serve.stage."+st.Name+"_us", obs.LatencyBucketsUS).Observe(st.US)
	}
}

// finishRequest is the single exit point of handleQuery's accounting: it
// stamps the record with the trace's totals, appends it to the flight
// recorder, logs one structured line, feeds the stage histograms, and —
// on any 5xx — dumps the flight recorder so the log alone reconstructs
// what the server was doing when it failed.
func (s *Server) finishRequest(tr *Trace, rec RequestRecord) {
	rec.ID = tr.ID
	rec.Client = tr.Client
	rec.Start = tr.Start
	rec.TotalUS = tr.Total().Seconds() * 1e6
	rec.Stages = tr.Stages()
	if rec.QueueDepth == 0 {
		rec.QueueDepth = s.sched.QueueDepth()
	}
	s.rec.Record(rec)
	s.observeStages(tr)

	attrs := []any{
		"request_id", rec.ID, "client", rec.Client, "kind", rec.Kind,
		"outcome", rec.Outcome, "status", rec.Status,
		"total_us", int64(rec.TotalUS), "queue_depth", rec.QueueDepth,
	}
	if rec.Key != "" {
		attrs = append(attrs, "key", rec.Key)
	}
	if rec.Addr != "" {
		attrs = append(attrs, "cell_addr", rec.Addr)
	}
	if rec.Cells > 0 {
		attrs = append(attrs, "cells", rec.Cells, "cache_hits", rec.Hits)
	}
	if rec.RetryAfter > 0 {
		attrs = append(attrs, "retry_after_s", rec.RetryAfter)
	}
	if rec.Error != "" {
		attrs = append(attrs, "error", rec.Error)
	}
	for _, st := range rec.Stages {
		attrs = append(attrs, "stage_"+st.Name+"_us", int64(st.US))
	}
	switch {
	case rec.Status >= 500:
		s.logger.Error("query", attrs...)
		s.dumpRecorder("5xx on request " + rec.ID)
	case rec.Status >= 400:
		s.logger.Warn("query", attrs...)
	default:
		s.logger.Info("query", attrs...)
	}
}

// dumpRecorderMax bounds how many flight-recorder entries a 5xx dumps to
// the log — enough context to reconstruct the surrounding traffic without
// flooding.
const dumpRecorderMax = 16

// dumpRecorder writes the most recent flight-recorder entries to the log.
func (s *Server) dumpRecorder(reason string) {
	records := s.rec.Last(dumpRecorderMax)
	s.logger.Error("flight recorder dump", "reason", reason,
		"records", len(records), "recorded_total", s.rec.Total())
	for i, r := range records {
		s.logger.Error("flight recorder entry", "age", i,
			"request_id", r.ID, "client", r.Client, "kind", r.Kind,
			"outcome", r.Outcome, "status", r.Status,
			"total_us", int64(r.TotalUS), "queue_depth", r.QueueDepth,
			"error", r.Error)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tr := NewTrace(requestID(r), clientID(r))
	w.Header().Set("X-Request-ID", tr.ID)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		s.finishRequest(tr, RequestRecord{Outcome: OutcomeBadRequest,
			Status: http.StatusMethodNotAllowed, Error: "method not allowed"})
		return
	}
	stopDecode := tr.Time(StageDecode)
	var req query.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		stopDecode()
		err = fmt.Errorf("decoding request: %w", err)
		httpError(w, http.StatusBadRequest, err)
		s.finishRequest(tr, RequestRecord{Outcome: OutcomeBadRequest,
			Status: http.StatusBadRequest, Error: err.Error()})
		return
	}
	j, err := query.Build(req)
	stopDecode()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		s.finishRequest(tr, RequestRecord{Outcome: OutcomeBadRequest,
			Status: http.StatusBadRequest, Error: err.Error()})
		return
	}
	key, _ := j.Req.Key()
	rec := RequestRecord{Kind: j.Req.Kind, Key: key, Cells: len(j.Plan.Cells)}
	if j.Req.Kind == query.KindCell {
		rec.Addr = j.Addresses()[0]
	}
	s.metrics.Counter("serve.queries").Add(1)

	// Per-request deadline: the timeout_ms field, overridden by the
	// X-Timeout-Ms header. The derived context is threaded through the
	// scheduler, so an expiring deadline abandons the request's flights
	// (worker slots free, nothing partial cached) and comes back as a 504
	// naming the cell it was waiting on.
	timeout, terr := requestTimeout(r, req)
	if terr != nil {
		httpError(w, http.StatusBadRequest, terr)
		s.finishRequest(tr, RequestRecord{Outcome: OutcomeBadRequest,
			Status: http.StatusBadRequest, Error: terr.Error()})
		return
	}
	qctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, timeout)
		defer cancel()
	}

	stream := r.URL.Query().Get("stream") == "1"
	var enc *json.Encoder
	var flusher http.Flusher
	var onCell func(i int, key string, cached bool, err error)
	total := len(j.Plan.Cells)
	if stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc = json.NewEncoder(w)
		flusher, _ = w.(http.Flusher)
		done := 0
		onCell = func(_ int, key string, cached bool, err error) {
			done++
			ev := streamEvent{Type: "cell", Key: key, Cached: cached, Done: done, Total: total}
			if err != nil {
				ev.Error = err.Error()
			}
			enc.Encode(ev)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	results, hits, err := s.sched.RunJob(qctx, tr.Client, j, tr, onCell)
	s.metrics.Histogram("serve.query.latency_ms", obs.DefaultBuckets).
		Observe(tr.Total().Seconds() * 1e3)
	if err != nil {
		var over *ErrOverloaded
		var dl *DeadlineError
		switch {
		case errors.As(err, &over):
			// Shed load must be visible: the 429 is logged with the client,
			// the cells it asked for, the queue depth that caused the
			// rejection, and the backoff hint it was given.
			rec.Outcome, rec.Status = OutcomeShed, http.StatusTooManyRequests
			rec.QueueDepth = over.Depth
			rec.RetryAfter = int(over.RetryAfter.Seconds())
			rec.Error = err.Error()
			if !stream {
				w.Header().Set("Retry-After", strconv.Itoa(rec.RetryAfter))
				httpError(w, http.StatusTooManyRequests, err)
				s.finishRequest(tr, rec)
				return
			}
		case errors.As(err, &dl), errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			// The request's own deadline fired. Fill the typed error with
			// the trace's view of where the time went, so the 504 body and
			// the flight-recorder entry both carry the stage breakdown.
			if dl == nil {
				dl = &DeadlineError{}
			}
			dl.Timeout, dl.Elapsed, dl.Stages = timeout, tr.Total(), tr.Stages()
			s.metrics.Counter("serve.deadline_exceeded").Add(1)
			rec.Outcome, rec.Status = OutcomeDeadline, http.StatusGatewayTimeout
			rec.Hits = hits
			if dl.Addr != "" {
				rec.Addr = dl.Addr
			}
			rec.Error = dl.Error()
			if !stream {
				s.writeDeadline(w, dl)
				s.finishRequest(tr, rec)
				return
			}
			err = dl
		case errors.Is(err, ErrDraining):
			// Graceful degradation during shutdown: work needing fresh
			// cells is refused with a typed, retryable 503 (warm hits never
			// reach this path — they were answered above).
			rec.Outcome, rec.Status = OutcomeDraining, http.StatusServiceUnavailable
			rec.Hits = hits
			rec.RetryAfter = drainRetryAfterS
			rec.Error = err.Error()
			if !stream {
				w.Header().Set("Retry-After", strconv.Itoa(drainRetryAfterS))
				httpError(w, http.StatusServiceUnavailable, err)
				s.finishRequest(tr, rec)
				return
			}
		case r.Context().Err() != nil:
			// Client is gone; nothing useful to write.
			rec.Outcome, rec.Status = OutcomeAbandoned, 499 // nginx's "client closed request"
			rec.Hits = hits
			rec.Error = r.Context().Err().Error()
			s.finishRequest(tr, rec)
			return
		}
		if stream {
			enc.Encode(streamEvent{Type: "error", Error: err.Error()})
			if rec.Outcome == "" {
				rec.Outcome, rec.Status = OutcomeError, http.StatusInternalServerError
				rec.Error = err.Error()
			}
			s.finishRequest(tr, rec)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		rec.Outcome, rec.Status = OutcomeError, http.StatusInternalServerError
		rec.Error = err.Error()
		s.finishRequest(tr, rec)
		return
	}

	stopEncode := tr.Time(StageEncode)
	resp, err := query.NewResponse(j, j.Assemble(results), hits,
		tr.Total().Seconds()*1e3)
	stopEncode()
	if err != nil {
		rec.Outcome, rec.Status = OutcomeError, http.StatusInternalServerError
		rec.Error = err.Error()
		if stream {
			enc.Encode(streamEvent{Type: "error", Error: err.Error()})
		} else {
			httpError(w, http.StatusInternalServerError, err)
		}
		s.finishRequest(tr, rec)
		return
	}
	resp.RequestID = tr.ID
	resp.Stages = tr.Stages()
	if j.Req.Kind == query.KindCell {
		// Index the completed cell by content address so its Perfetto
		// trace can be regenerated on demand at /traces/{addr}.
		s.mu.Lock()
		s.traces[j.Addresses()[0]] = j.Req
		s.mu.Unlock()
	}
	rec.Status, rec.Hits = http.StatusOK, hits
	rec.Outcome = OutcomeMiss
	if hits == len(j.Plan.Cells) {
		rec.Outcome = OutcomeHit
	}
	if stream {
		enc.Encode(streamEvent{Type: "result", Result: resp})
		s.finishRequest(tr, rec)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
	s.finishRequest(tr, rec)
}

func (s *Server) handleFigures(w http.ResponseWriter, _ *http.Request) {
	type fig struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Kind  string `json:"kind"`
	}
	var out []fig
	for _, f := range bench.All() {
		out = append(out, fig{ID: f.ID, Title: f.Title, Kind: f.Kind.String()})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	addr := strings.TrimPrefix(r.URL.Path, "/traces/")
	s.mu.Lock()
	req, ok := s.traces[addr]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("no completed cell query with address %q; POST its query first", addr))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := query.WriteCellTrace(req, w); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
	s.metrics.Counter("serve.traces").Add(1)
}

// handleMetrics serves Prometheus text exposition by default; the legacy
// aligned dump stays reachable at /metrics?format=text. Cache hit/miss/
// corruption series are event-time counters (serve.cache.*), so no
// scrape-time refresh happens here.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.metrics.Dump(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w)
}

// handleDebugRequests serves the flight recorder, newest first. ?n= bounds
// the count (default: everything retained).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", q))
			return
		}
		n = v
	}
	records := s.rec.Last(n)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Total   uint64          `json:"recorded_total"`
		Records []RequestRecord `json:"requests"`
	}{s.rec.Total(), records})
}
