package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/bench"
	"repro/internal/query"
)

// TestDeadline504StageSumClamped: a request that joins another client's
// in-flight cell and then hits its own deadline attributes the wait to
// singleflight_wait — and the clamped accounting keeps the stage sum at or
// under the request's wall total, the invariant /debug/requests readers
// rely on.
func TestDeadline504StageSumClamped(t *testing.T) {
	_, ts, _ := newResilServer(t, Config{Workers: 1})
	g := resetGate(nil)

	holderCode := make(chan int, 1)
	go func() {
		code, _, _ := postRaw(ts.URL, "holder", gateReq(61))
		holderCode <- code
	}()
	waitFor(t, "cell to start", func() bool { return len(g.orderSnapshot()) == 1 })

	req := gateReq(61) // identical cell: joins the holder's flight
	req.TimeoutMS = 80
	code, body := postTimed(t, ts.URL, "joiner", req, "")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("joiner: status %d, want 504 (body %s)", code, body)
	}
	var dl deadlineBody
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatalf("504 body not structured: %v (%s)", err, body)
	}
	var sumUS, flightUS float64
	for _, st := range dl.Stages {
		sumUS += st.US
		if st.Name == StageFlightWait {
			flightUS = st.US
		}
	}
	if flightUS <= 0 {
		t.Errorf("504 stages %+v attribute no singleflight_wait", dl.Stages)
	}
	if elapsedUS := dl.ElapsedMS * 1e3; sumUS > elapsedUS {
		t.Errorf("stage sum %.0fus exceeds wall total %.0fus", sumUS, elapsedUS)
	}

	// The flight-recorder record holds the same invariant.
	rec := lastOutcome(t, ts.URL, OutcomeDeadline)
	if rec == nil {
		t.Fatal("no deadline_exceeded outcome in /debug/requests")
	}
	var recSum float64
	for _, st := range rec.Stages {
		recSum += st.US
	}
	if recSum > rec.TotalUS {
		t.Errorf("recorded stage sum %.0fus exceeds total %.0fus", recSum, rec.TotalUS)
	}

	// The holder was unaffected by the joiner's deadline.
	g.release <- struct{}{}
	if code := <-holderCode; code != http.StatusOK {
		t.Fatalf("holder: status %d, want 200", code)
	}
}

// TestServerReplayMemo: Config.Replay installs the schedule memo on the
// serving path — a real (non-synthetic) cell query records its schedule,
// and the memo's counters surface under serve.replay.*.
func TestServerReplayMemo(t *testing.T) {
	memo := bench.NewScheduleMemo()
	t.Cleanup(func() { bench.EnableReplay(nil) })
	_, ts, reg := newResilServer(t, Config{Workers: 2, Replay: memo})

	req := query.Request{Cell: &query.Cell{Library: "PiP-MColl", Collective: "allgather",
		Nodes: 2, PPN: 2, Bytes: 1024}, Opts: query.Opts{Warmup: 1, Iters: 2}}
	if _, code, _ := postQuery(t, ts.URL, "replayer", req); code != http.StatusOK {
		t.Fatalf("cell query: status %d", code)
	}
	st := memo.Stats()
	if st.Misses != 1 || st.Schedules != 1 {
		t.Fatalf("memo stats after first cell = %+v, want 1 miss recording 1 schedule", st)
	}
	if v := reg.Counter("serve.replay.misses").Value(); v != 1 {
		t.Fatalf("serve.replay.misses = %d, want 1", v)
	}

	// Same shape under different measurement opts: the result cache misses
	// (opts are in the content address) but the collective's schedule shape
	// differs too (iteration counts are part of the DAG), so this records a
	// second schedule rather than replaying — both paths must keep working
	// through the server.
	req.Opts.Iters = 3
	if _, code, _ := postQuery(t, ts.URL, "replayer", req); code != http.StatusOK {
		t.Fatalf("second cell query: status %d", code)
	}
	st = memo.Stats()
	if st.Misses != 2 || st.Schedules != 2 || st.Hits != 0 {
		t.Fatalf("memo stats after second cell = %+v, want 2 misses, 2 schedules", st)
	}
}
