package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
)

// Request-scoped wall-clock stage tracing. Every query through the server
// carries a request ID and a Trace that accumulates one duration per
// lifecycle stage; the breakdown is returned in the JSON response, logged,
// recorded in the flight recorder, and aggregated into per-stage
// histograms (serve.stage.<name>_us) — so "a warm hit is fast" becomes
// "cache lookup p99 is X µs and encode p99 is Y µs".

// Stage names of the request lifecycle, in canonical display order.
const (
	// StageDecode covers reading the request body, JSON decoding, and
	// compiling it to a Job (normalization + validation + plan build).
	StageDecode = "decode"
	// StageAdmission is the scheduler's classification pass: the locked
	// section that joins live flights or admits new cells against the
	// queue bounds (including the admission decision that sheds a 429).
	StageAdmission = "admission"
	// StageCacheLookup is the total time probing the shared result cache
	// on the fast path (one probe per cell).
	StageCacheLookup = "cache_lookup"
	// StageQueueWait is time a request's fresh cells spent queued before
	// a worker picked them up (summed over cells).
	StageQueueWait = "queue_wait"
	// StageFlightWait is time spent waiting on another request's
	// in-flight cell after a singleflight join.
	StageFlightWait = "singleflight_wait"
	// StageExecute is worker time actually running cell bodies (summed
	// over this request's fresh cells).
	StageExecute = "execute"
	// StageEncode is response assembly: rendering result tables to
	// aligned text and CSV and building the wire response.
	StageEncode = "encode"
)

// stageOrder fixes the rendering order of Stages() so responses, logs and
// goldens agree.
var stageOrder = []string{
	StageDecode, StageAdmission, StageCacheLookup,
	StageQueueWait, StageFlightWait, StageExecute, StageEncode,
}

// Request IDs: a per-process random nonce plus a sequence number — unique
// across restarts, trivially greppable, and cheap (no per-request
// randomness).
var (
	ridNonce = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Int64
)

// newRequestID mints the next request ID.
func newRequestID() string {
	return fmt.Sprintf("%s-%06d", ridNonce, ridSeq.Add(1))
}

// Trace accumulates the stage spans of one request. All methods are
// nil-safe so instrumented paths need no guards, and Add is safe for
// concurrent use (a multi-cell job's waiters complete in parallel).
type Trace struct {
	ID     string
	Client string
	Start  time.Time

	mu     sync.Mutex
	stages map[string]time.Duration
}

// NewTrace starts a trace for one request.
func NewTrace(id, client string) *Trace {
	return &Trace{ID: id, Client: client, Start: time.Now(),
		stages: make(map[string]time.Duration, len(stageOrder))}
}

// Add accumulates d into the named stage.
func (t *Trace) Add(stage string, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.stages[stage] += d
	t.mu.Unlock()
}

// AddClamped accumulates d into the named stage, capped at the trace's
// remaining unattributed wall time (Total minus the current stage sum).
// Use it on paths where concurrent waiters account overlapping wall time —
// a deadline firing while several cells sit in singleflight or queue waits
// would otherwise attribute the same seconds once per cell and report a
// stage sum exceeding the request's wall total in /debug/requests.
func (t *Trace) AddClamped(stage string, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, v := range t.stages {
		sum += v
	}
	if rem := time.Since(t.Start) - sum; d > rem {
		d = rem
	}
	if d > 0 {
		t.stages[stage] += d
	}
}

// Time starts a span for the named stage; the returned stop function
// accumulates the elapsed time. Usage: defer tr.Time(StageDecode)().
func (t *Trace) Time(stage string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Add(stage, time.Since(start)) }
}

// Total is wall time since the trace started.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.Start)
}

// StageSum is the total time attributed to stages; Total minus StageSum is
// the trace's unattributed slack (handler glue, socket writes, goroutine
// wakeups).
func (t *Trace) StageSum() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, d := range t.stages {
		sum += d
	}
	return sum
}

// Stages renders the recorded spans in canonical order as wire stages
// (microseconds). Stages never entered are omitted.
func (t *Trace) Stages() []query.Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]query.Stage, 0, len(t.stages))
	for _, name := range stageOrder {
		if d, ok := t.stages[name]; ok {
			out = append(out, query.Stage{Name: name, US: d.Seconds() * 1e6})
		}
	}
	return out
}
