package serve

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/query"
)

// Typed failure modes of the hardened serving path. Each maps to a
// distinct HTTP status and flight-recorder outcome, so operators and
// retrying clients can tell "come back after the restart" (draining),
// "your deadline was too tight" (deadline) and "the server killed a
// runaway cell" (stuck) apart from generic failures.

// ErrDraining reports that the scheduler is shutting down and no longer
// admits new cells. Warm-cache hits and singleflight joins keep serving
// during the drain window — only work that would need a fresh cell is
// refused — so clients see graceful degradation, not a cliff. Mapped to
// HTTP 503 with a Retry-After hint.
var ErrDraining = fmt.Errorf("serve: draining, not admitting new cells")

// DeadlineError reports that a request's own deadline (timeout_ms /
// X-Timeout-Ms) expired before its cells finished. It names the cell the
// request was waiting on and carries the stage breakdown accumulated up
// to the deadline, so the 504 body says where the time went. The flight
// itself keeps running for any remaining waiters; this requester's
// interest is abandoned (last waiter leaving cancels the cell and frees
// the worker slot, and an abandoned result is never cached).
type DeadlineError struct {
	// Addr and Cell identify the cell the request was still waiting on
	// when the deadline fired (first unfinished cell, in plan order).
	Addr string
	Cell string
	// Timeout is the deadline the client asked for; Elapsed the wall time
	// actually spent; Stages the request's breakdown at expiry.
	Timeout time.Duration
	Elapsed time.Duration
	Stages  []query.Stage
}

// Error names the cell and summarizes where the time went.
func (e *DeadlineError) Error() string {
	s := fmt.Sprintf("serve: deadline %s exceeded after %s waiting on cell %s (addr %s)",
		e.Timeout, e.Elapsed.Round(time.Microsecond), e.Cell, e.Addr)
	for _, st := range e.Stages {
		s += fmt.Sprintf("; %s %.0fµs", st.Name, st.US)
	}
	return s
}

// StuckCellError reports that the stuck-cell watchdog killed a flight
// whose wall-clock execution exceeded the configured -cell-budget — the
// wall-clock sibling of the simulator's virtual-time deadlock watchdog.
// The cell's context is cancelled (freeing the worker slot), the kill is
// logged with the cell's stage breakdown, and serve.cells_killed counts
// it.
type StuckCellError struct {
	Addr   string
	Figure string
	Cell   string
	Budget time.Duration
}

// Error names the killed cell and the budget it blew.
func (e *StuckCellError) Error() string {
	return fmt.Sprintf("serve: cell %s/%s (addr %s) exceeded the %s wall-clock budget and was killed",
		e.Figure, e.Cell, e.Addr, e.Budget)
}

// InjectedFault is one serve-side chaos decision for a cell execution,
// returned by a SchedulerConfig.Chaos hook (test-only). Zero fields mean
// "no fault of that kind"; the fields compose.
type InjectedFault struct {
	// Delay stalls the cell body before it runs (a slow cell). The stall
	// is raced against the flight's context, so watchdog kills and
	// abandonment still release the worker.
	Delay time.Duration
	// Err fails the cell body without running it (a failing cell).
	Err error
	// TornWrite runs the cell normally but replaces its atomic cache
	// store with a partial, non-atomic write — the on-disk damage a crash
	// mid-Store would leave. The in-flight waiters still get the correct
	// values; only later reads see the torn entry (and must heal it).
	TornWrite bool
}

// ChaosFunc decides the injected fault for one cell execution; nil return
// means run clean. It sees the full cell identity (figure, key, opts) —
// the same inputs that form the content address — so a fault plan can
// target one cell precisely. Installed only by tests
// (SchedulerConfig.Chaos).
type ChaosFunc func(figID, cellKey string, o bench.Opts) *InjectedFault
