package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/race"
)

// stageMap indexes a response's stage breakdown by name.
func stageMap(st []query.Stage) map[string]float64 {
	m := make(map[string]float64, len(st))
	for _, s := range st {
		m[s.Name] = s.US
	}
	return m
}

// fetchRecords reads the flight recorder over /debug/requests.
func fetchRecords(t *testing.T, url string, n int) (uint64, []RequestRecord) {
	t.Helper()
	u := url + "/debug/requests"
	if n > 0 {
		u += "?n=" + strconv.Itoa(n)
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Total   uint64          `json:"recorded_total"`
		Records []RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Total, body.Records
}

// findRecord locates a flight-recorder entry by request ID.
func findRecord(t *testing.T, url, id string) RequestRecord {
	t.Helper()
	_, recs := fetchRecords(t, url, 0)
	for _, r := range recs {
		if r.ID == id {
			return r
		}
	}
	t.Fatalf("no flight-recorder entry for request %s (have %d records)", id, len(recs))
	return RequestRecord{}
}

// checkAccounting asserts the invariant every traced request satisfies:
// non-negative spans, and — because a single-cell request's stages are
// strictly sequential — the attributed time never exceeds the recorder's
// wall-clock total (the difference is measurable slack: handler glue,
// socket writes, goroutine wakeups).
func checkAccounting(t *testing.T, rec RequestRecord) {
	t.Helper()
	var sum float64
	for _, s := range rec.Stages {
		if s.US < 0 {
			t.Errorf("request %s: stage %s negative (%v µs)", rec.ID, s.Name, s.US)
		}
		sum += s.US
	}
	if sum > rec.TotalUS {
		t.Errorf("request %s: stage sum %.1fµs exceeds wall total %.1fµs", rec.ID, sum, rec.TotalUS)
	}
	if !race.Enabled && rec.TotalUS <= 0 {
		t.Errorf("request %s: wall total %.1fµs not positive", rec.ID, rec.TotalUS)
	}
}

// TestStageAccountingMissAndHit: a cold query attributes time to
// decode/admission/execute/encode (no singleflight wait), a warm one to
// cache_lookup (no execute, no queue wait), and both keep the attributed
// sum within the wall-clock total.
func TestStageAccountingMissAndHit(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	req := query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 41}}

	cold, code, hdr := postQuery(t, ts.URL, "a", req)
	if code != http.StatusOK {
		t.Fatalf("cold query: %d", code)
	}
	if cold.RequestID == "" {
		t.Fatal("cold response missing request_id")
	}
	if got := hdr.Get("X-Request-ID"); got != cold.RequestID {
		t.Fatalf("X-Request-ID header %q != response request_id %q", got, cold.RequestID)
	}
	cs := stageMap(cold.Stages)
	for _, want := range []string{StageDecode, StageAdmission, StageExecute, StageEncode} {
		if _, ok := cs[want]; !ok {
			t.Errorf("cold (miss) breakdown missing %s: %v", want, cold.Stages)
		}
	}
	if _, ok := cs[StageFlightWait]; ok {
		t.Errorf("cold solo query reported a singleflight wait: %v", cold.Stages)
	}
	rec := findRecord(t, ts.URL, cold.RequestID)
	if rec.Outcome != OutcomeMiss || rec.Status != http.StatusOK {
		t.Fatalf("cold record: outcome %s status %d", rec.Outcome, rec.Status)
	}
	checkAccounting(t, rec)

	warm, code, _ := postQuery(t, ts.URL, "a", req)
	if code != http.StatusOK {
		t.Fatalf("warm query: %d", code)
	}
	ws := stageMap(warm.Stages)
	for _, want := range []string{StageDecode, StageCacheLookup, StageEncode} {
		if _, ok := ws[want]; !ok {
			t.Errorf("warm (hit) breakdown missing %s: %v", want, warm.Stages)
		}
	}
	for _, absent := range []string{StageExecute, StageQueueWait, StageFlightWait} {
		if _, ok := ws[absent]; ok {
			t.Errorf("warm (hit) breakdown contains %s: %v", absent, warm.Stages)
		}
	}
	wrec := findRecord(t, ts.URL, warm.RequestID)
	if wrec.Outcome != OutcomeHit {
		t.Fatalf("warm record outcome %s, want hit", wrec.Outcome)
	}
	checkAccounting(t, wrec)
}

// TestStageAccountingQueuedAndJoined: with one worker pinned by a blocking
// cell, a second distinct query attributes queue wait, and a duplicate of
// the blocked query attributes singleflight wait instead of executing.
func TestStageAccountingQueuedAndJoined(t *testing.T) {
	ts, reg := newTestServer(t, Config{Workers: 1})
	g := resetGate(map[int]bool{21: true})

	type res struct {
		resp *query.Response
		code int
	}
	first := make(chan res, 1)
	go func() {
		r, c, _ := postQuery(t, ts.URL, "a", gateReq(21))
		first <- res{r, c}
	}()
	<-g.started // worker is now inside the blocking cell

	second := make(chan res, 1)
	go func() {
		r, c, _ := postQuery(t, ts.URL, "b", gateReq(22))
		second <- res{r, c}
	}()
	joined := make(chan res, 1)
	go func() {
		r, c, _ := postQuery(t, ts.URL, "c", gateReq(21))
		joined <- res{r, c}
	}()
	// Hold the gate until the distinct query is queued behind the pinned
	// worker and the duplicate has joined the in-flight cell.
	waitFor(t, "second queued and duplicate joined", func() bool {
		return reg.Gauge("serve.queue.depth").Value() >= 1 &&
			reg.Counter("serve.cells.joined").Value() >= 1
	})
	g.release <- struct{}{} // unblock iters=21; iters=22 then runs

	fr := <-first
	sr := <-second
	jr := <-joined
	for name, r := range map[string]res{"first": fr, "second": sr, "joined": jr} {
		if r.code != http.StatusOK {
			t.Fatalf("%s query: status %d", name, r.code)
		}
	}

	ss := stageMap(sr.resp.Stages)
	if _, ok := ss[StageQueueWait]; !ok {
		t.Errorf("queued query reported no queue wait: %v", sr.resp.Stages)
	}
	if _, ok := ss[StageExecute]; !ok {
		t.Errorf("queued query reported no execute span: %v", sr.resp.Stages)
	}
	if !race.Enabled && ss[StageQueueWait] <= 0 {
		t.Errorf("queued query queue wait = %.1fµs, want > 0", ss[StageQueueWait])
	}
	checkAccounting(t, findRecord(t, ts.URL, sr.resp.RequestID))

	// The joined request never executed anything itself: its time went to
	// the singleflight wait on the first request's in-flight cell.
	js := stageMap(jr.resp.Stages)
	if _, ok := js[StageFlightWait]; !ok {
		t.Errorf("joined query reported no singleflight wait: %v", jr.resp.Stages)
	}
	if _, ok := js[StageExecute]; ok {
		t.Errorf("joined query claims execute time: %v", jr.resp.Stages)
	}
	if jr.resp.CacheHits != 0 {
		t.Errorf("joined query reported %d cache hits", jr.resp.CacheHits)
	}
	checkAccounting(t, findRecord(t, ts.URL, jr.resp.RequestID))
}

// TestShedBurstFlightRecorder: admission control sheds a burst and the
// flight recorder replays it — every shed request recorded with outcome
// "shed", the queue depth that caused the 429, the Retry-After hint it was
// given, and an admission span but no execute/encode.
func TestShedBurstFlightRecorder(t *testing.T) {
	ts, reg := newTestServer(t, Config{Workers: 1, MaxQueue: 1, MaxPerClient: 1})
	g := resetGate(map[int]bool{31: true})

	done := make(chan struct{}, 2)
	go func() {
		postQuery(t, ts.URL, "a", gateReq(31)) // pins the worker
		done <- struct{}{}
	}()
	<-g.started
	go func() {
		postQuery(t, ts.URL, "b", gateReq(32)) // fills the one queue slot
		done <- struct{}{}
	}()
	waitFor(t, "queue slot occupied", func() bool {
		return reg.Gauge("serve.queue.depth").Value() == 1
	})

	// Burst: every one of these must shed with a 429 and a Retry-After.
	const burst = 4
	var shedIDs []string
	for i := 0; i < burst; i++ {
		_, code, hdr := postQuery(t, ts.URL, "c", gateReq(33))
		if code != http.StatusTooManyRequests {
			t.Fatalf("burst request %d: status %d, want 429", i, code)
		}
		if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
			t.Fatalf("429 without a usable Retry-After (%q)", ra)
		}
		shedIDs = append(shedIDs, hdr.Get("X-Request-ID"))
	}

	total, recs := fetchRecords(t, ts.URL, 0)
	if total < burst {
		t.Fatalf("flight recorder total %d < burst %d", total, burst)
	}
	byID := map[string]RequestRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	for _, id := range shedIDs {
		rec, ok := byID[id]
		if !ok {
			t.Fatalf("shed request %s not in flight recorder", id)
		}
		if rec.Outcome != OutcomeShed || rec.Status != http.StatusTooManyRequests {
			t.Errorf("shed record %s: outcome %s status %d", id, rec.Outcome, rec.Status)
		}
		if rec.RetryAfter < 1 {
			t.Errorf("shed record %s: retry_after_s %d, want >= 1", id, rec.RetryAfter)
		}
		if rec.QueueDepth < 1 {
			t.Errorf("shed record %s: queue_depth %d, want >= 1", id, rec.QueueDepth)
		}
		sm := stageMap(rec.Stages)
		if _, ok := sm[StageAdmission]; !ok {
			t.Errorf("shed record %s missing admission span: %v", id, rec.Stages)
		}
		for _, absent := range []string{StageExecute, StageEncode, StageQueueWait} {
			if _, ok := sm[absent]; ok {
				t.Errorf("shed record %s claims %s time: %v", id, absent, rec.Stages)
			}
		}
		checkAccounting(t, rec)
	}
	if got := reg.Counter("serve.queue.rejected").Value(); got < burst {
		t.Errorf("serve.queue.rejected = %d, want >= %d", got, burst)
	}

	// Drain: release the pinned cell so both in-flight queries finish and
	// Close is clean (iters=32 does not block on the gate).
	g.release <- struct{}{}
	<-done
	<-done
}

// TestFlightRecorderRing: the ring keeps only the most recent N records,
// newest first, while the total keeps counting.
func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		fr.Record(RequestRecord{ID: string(rune('0' + i))})
	}
	if fr.Total() != 5 {
		t.Fatalf("total = %d, want 5", fr.Total())
	}
	recs := fr.Last(0)
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	for i, want := range []string{"5", "4", "3"} {
		if recs[i].ID != want {
			t.Errorf("record %d = %s, want %s (newest first)", i, recs[i].ID, want)
		}
	}
	if got := fr.Last(1); len(got) != 1 || got[0].ID != "5" {
		t.Fatalf("Last(1) = %v", got)
	}
}

// TestRequestIDPropagation: a client-supplied X-Request-ID is used verbatim
// end to end — response header, response body, and flight recorder.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	body, _ := json.Marshal(query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 51}})
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(string(body)))
	hr.Header.Set("X-Client", "rid")
	hr.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Request-ID") != "trace-me-42" {
		t.Fatalf("header X-Request-ID = %q", resp.Header.Get("X-Request-ID"))
	}
	var qr query.Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.RequestID != "trace-me-42" {
		t.Fatalf("response request_id = %q", qr.RequestID)
	}
	rec := findRecord(t, ts.URL, "trace-me-42")
	if rec.Client != "rid" {
		t.Fatalf("record client = %q", rec.Client)
	}
}
