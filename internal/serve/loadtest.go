package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/query"
)

// LoadOpts configures a load-test run against a /query endpoint.
type LoadOpts struct {
	// Clients is the number of concurrent generators, each with its own
	// X-Client identity; PerClient is how many requests each one sends.
	Clients   int
	PerClient int
	// Request is the query every generator POSTs (typically a warm one,
	// so the run measures the serving path, not the simulator).
	Request query.Request
}

// StagePercentiles summarizes one lifecycle stage across a run, from the
// per-request breakdowns the server returns.
type StagePercentiles struct {
	Name          string
	P50, P95, P99 float64 // µs
}

// LoadResult summarizes a load-test run.
type LoadResult struct {
	Requests      int           // completed 200s
	Rejected      int           // 429s (admission control shed them)
	Errors        int           // transport failures and non-200/429 statuses
	Elapsed       time.Duration // wall time for the whole run
	QPS           float64       // successful requests per second
	P50, P95, P99 time.Duration // latency percentiles over successful requests
	Max           time.Duration
	CacheHits     int // cache_hits summed over successful responses
	// Stages are server-side per-stage percentiles in canonical lifecycle
	// order — where the wall time went, not just how much there was.
	Stages []StagePercentiles
}

// Format renders the result as aligned text.
func (r LoadResult) Format() string {
	s := fmt.Sprintf(
		"requests   %d ok, %d rejected (429), %d errors\n"+
			"elapsed    %.2fs  (%.0f qps)\n"+
			"latency    p50 %s  p95 %s  p99 %s  max %s\n"+
			"cache      %d hits across responses\n",
		r.Requests, r.Rejected, r.Errors,
		r.Elapsed.Seconds(), r.QPS, r.P50, r.P95, r.P99, r.Max, r.CacheHits)
	for _, st := range r.Stages {
		s += fmt.Sprintf("stage      %-18s p50 %8.1fµs  p95 %8.1fµs  p99 %8.1fµs\n",
			st.Name, st.P50, st.P95, st.P99)
	}
	return s
}

// pctUS picks the p-th percentile from sorted µs samples.
func pctUS(sorted []float64, p int) float64 {
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// LoadTest hammers baseURL's /query endpoint with Clients concurrent
// generators and reports throughput and latency. 429 responses count as
// shed load, not errors — a correctly overloaded server rejects crisply
// instead of wedging.
func LoadTest(baseURL string, o LoadOpts) (LoadResult, error) {
	if o.Clients < 1 {
		o.Clients = 4
	}
	if o.PerClient < 1 {
		o.PerClient = 25
	}
	body, err := o.Request.Canonical()
	if err != nil {
		return LoadResult{}, err
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		stageUS   = map[string][]float64{}
		res       LoadResult
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for i := 0; i < o.PerClient; i++ {
				req, err := http.NewRequest(http.MethodPost, baseURL+"/query", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					res.Errors++
					mu.Unlock()
					continue
				}
				req.Header.Set("X-Client", fmt.Sprintf("load-%d", c))
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					res.Errors++
				case resp.StatusCode == http.StatusTooManyRequests:
					res.Rejected++
				case resp.StatusCode != http.StatusOK:
					res.Errors++
				default:
					var qr query.Response
					if decodeErr := json.NewDecoder(resp.Body).Decode(&qr); decodeErr != nil {
						res.Errors++
					} else {
						res.Requests++
						res.CacheHits += qr.CacheHits
						latencies = append(latencies, lat)
						for _, st := range qr.Stages {
							stageUS[st.Name] = append(stageUS[st.Name], st.US)
						}
					}
				}
				mu.Unlock()
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.QPS = float64(res.Requests) / res.Elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = latencies[len(latencies)/2]
		res.P95 = latencies[len(latencies)*95/100]
		res.P99 = latencies[len(latencies)*99/100]
		res.Max = latencies[len(latencies)-1]
	}
	for _, name := range stageOrder {
		samples, ok := stageUS[name]
		if !ok {
			continue
		}
		sort.Float64s(samples)
		res.Stages = append(res.Stages, StagePercentiles{
			Name: name,
			P50:  pctUS(samples, 50), P95: pctUS(samples, 95), P99: pctUS(samples, 99),
		})
	}
	return res, nil
}
