package serve

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/query"
)

// LoadOpts configures a load-test run against a /query endpoint.
type LoadOpts struct {
	// Clients is the number of concurrent generators, each with its own
	// X-Client identity; PerClient is how many requests each one sends.
	Clients   int
	PerClient int
	// Request is the query every generator POSTs (typically a warm one,
	// so the run measures the serving path, not the simulator).
	Request query.Request
	// Retries is the per-request attempt budget (1 = no retries, the
	// historical behavior; 0 defaults to 1). With retries, a 429 is not a
	// terminal shed: the generator backs off per the server's Retry-After
	// hint (plus full jitter) and tries again, so the run measures
	// goodput — eventual success within budget — instead of raw 429s.
	Retries int
	// RetryBudget bounds one request's whole retry loop including backoff
	// sleeps (0 = 30s).
	RetryBudget time.Duration
	// Seed fixes the retry jitter for reproducible smoke runs. 0 normally
	// falls back to the clock — except under the CI smoke harnesses
	// (PIPMCOLL_SMOKE / PIPMCOLL_CHAOS set), where it defaults to
	// smokeDefaultSeed so `make serve-chaos` goodput runs are
	// deterministic without every call site remembering to pass one.
	Seed int64
}

// smokeDefaultSeed is the fixed jitter seed smoke runs fall back to when
// no explicit -seed is given.
const smokeDefaultSeed = 0x51D

// StagePercentiles summarizes one lifecycle stage across a run, from the
// per-request breakdowns the server returns.
type StagePercentiles struct {
	Name          string
	P50, P95, P99 float64 // µs
}

// LoadResult summarizes a load-test run.
type LoadResult struct {
	Requests      int           // eventual successes (200, possibly after retries)
	Rejected      int           // total 429 responses seen (including ones later retried to success)
	Errors        int           // transport failures and non-200/429 statuses seen across attempts
	GaveUp        int           // requests that exhausted their retry budget without a 200
	RetriedOK     int           // goodput recovered by retrying: shed or failed first, succeeded later
	Retries       int           // total attempts beyond each request's first
	Elapsed       time.Duration // wall time for the whole run
	QPS           float64       // successful requests per second
	P50, P95, P99 time.Duration // latency percentiles over successful requests (incl. retry backoff)
	Max           time.Duration
	CacheHits     int // cache_hits summed over successful responses
	// Seed is the effective jitter seed the run used (0 = clock-seeded,
	// nondeterministic) — reported so a smoke log always names the seed a
	// failure can be reproduced with.
	Seed int64
	// AttemptHist maps attempts-needed -> request count (1 = first try).
	AttemptHist map[int]int
	// Stages are server-side per-stage percentiles in canonical lifecycle
	// order — where the wall time went, not just how much there was.
	Stages []StagePercentiles
}

// Format renders the result as aligned text.
func (r LoadResult) Format() string {
	s := fmt.Sprintf(
		"requests   %d ok, %d gave up, %d rejected (429 seen), %d errors seen\n"+
			"goodput    %d recovered by retry, %d retries total\n"+
			"elapsed    %.2fs  (%.0f qps)\n"+
			"latency    p50 %s  p95 %s  p99 %s  max %s\n"+
			"cache      %d hits across responses\n",
		r.Requests, r.GaveUp, r.Rejected, r.Errors,
		r.RetriedOK, r.Retries,
		r.Elapsed.Seconds(), r.QPS, r.P50, r.P95, r.P99, r.Max, r.CacheHits)
	if r.Seed != 0 {
		s += fmt.Sprintf("seed       %d (fixed jitter)\n", r.Seed)
	} else {
		s += "seed       clock (nondeterministic; pass -seed to reproduce)\n"
	}
	if len(r.AttemptHist) > 0 {
		var keys []int
		for k := range r.AttemptHist {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			s += fmt.Sprintf("attempts   %d try(s): %d requests\n", k, r.AttemptHist[k])
		}
	}
	for _, st := range r.Stages {
		s += fmt.Sprintf("stage      %-18s p50 %8.1fµs  p95 %8.1fµs  p99 %8.1fµs\n",
			st.Name, st.P50, st.P95, st.P99)
	}
	return s
}

// pctUS picks the p-th percentile from sorted µs samples.
func pctUS(sorted []float64, p int) float64 {
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// LoadTest hammers baseURL's /query endpoint with Clients concurrent
// retrying generators and reports goodput, retry accounting, and latency.
// With Retries=1 a 429 counts as shed load and nothing more — a correctly
// overloaded server rejects crisply instead of wedging; with a retry
// budget, the run distinguishes "shed then succeeded on retry" from "gave
// up", which is the number overload experiments actually care about.
func LoadTest(baseURL string, o LoadOpts) (LoadResult, error) {
	if o.Clients < 1 {
		o.Clients = 4
	}
	if o.PerClient < 1 {
		o.PerClient = 25
	}
	if o.Retries < 1 {
		o.Retries = 1
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 30 * time.Second
	}
	if _, err := o.Request.Canonical(); err != nil {
		return LoadResult{}, err
	}
	if o.Seed == 0 && (os.Getenv("PIPMCOLL_SMOKE") != "" || os.Getenv("PIPMCOLL_CHAOS") != "") {
		// Smoke harnesses must be reproducible: a clock-seeded jitter run
		// that flakes in CI cannot be re-run. The env vars already gate the
		// wall-clock-sensitive smokes, so they double as the signal here.
		o.Seed = smokeDefaultSeed
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		stageUS   = map[string][]float64{}
		res       = LoadResult{AttemptHist: map[int]int{}, Seed: o.Seed}
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seed := o.Seed
			if seed != 0 {
				seed += int64(c) // distinct but reproducible per generator
			}
			cl := client.New(client.Config{
				BaseURL:     baseURL,
				ClientID:    fmt.Sprintf("load-%d", c),
				MaxAttempts: o.Retries,
				MaxElapsed:  o.RetryBudget,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    250 * time.Millisecond,
				Seed:        seed,
			})
			for i := 0; i < o.PerClient; i++ {
				t0 := time.Now()
				qr, outcome, err := cl.Query(context.Background(), o.Request)
				lat := time.Since(t0)
				mu.Lock()
				res.Rejected += outcome.Shed
				res.Retries += outcome.Retried
				for _, a := range outcome.Attempts {
					if a.Status != 200 && a.Status != 429 {
						res.Errors++
					}
				}
				if err != nil {
					res.GaveUp++
				} else {
					res.Requests++
					res.AttemptHist[len(outcome.Attempts)]++
					if len(outcome.Attempts) > 1 {
						res.RetriedOK++
					}
					res.CacheHits += qr.CacheHits
					latencies = append(latencies, lat)
					for _, st := range qr.Stages {
						stageUS[st.Name] = append(stageUS[st.Name], st.US)
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.QPS = float64(res.Requests) / res.Elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = latencies[len(latencies)/2]
		res.P95 = latencies[len(latencies)*95/100]
		res.P99 = latencies[len(latencies)*99/100]
		res.Max = latencies[len(latencies)-1]
	}
	for _, name := range stageOrder {
		samples, ok := stageUS[name]
		if !ok {
			continue
		}
		sort.Float64s(samples)
		res.Stages = append(res.Stages, StagePercentiles{
			Name: name,
			P50:  pctUS(samples, 50), P95: pctUS(samples, 95), P99: pctUS(samples, 99),
		})
	}
	return res, nil
}
