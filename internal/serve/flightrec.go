package serve

import (
	"sync"
	"time"

	"repro/internal/query"
)

// The flight recorder is the always-on "what was the server doing"
// answer: a fixed-size ring of recent request records, cheap enough to
// keep on the hot path (one short critical section per request, no
// allocation beyond the record itself), served at /debug/requests and
// auto-dumped to the log when a 5xx fires. When a query goes slow or gets
// shed, the recorder replays the surrounding traffic — client mix, queue
// depth, stage timings, outcomes — without any sampling having to be
// enabled beforehand.

// Request outcomes as recorded by the flight recorder and logged.
const (
	OutcomeHit        = "hit"               // every cell answered from cache
	OutcomeMiss       = "miss"              // at least one cell simulated; success
	OutcomeShed       = "shed"              // rejected by admission control (429)
	OutcomeAbandoned  = "abandoned"         // client disconnected mid-flight
	OutcomeError      = "error"             // execution/encode failure (5xx)
	OutcomeBadRequest = "bad_request"       // malformed or invalid request (4xx)
	OutcomeDeadline   = "deadline_exceeded" // request deadline fired mid-flight (504)
	OutcomeDraining   = "draining"          // refused during shutdown drain (503)
)

// RequestRecord is one request's flight-recorder entry.
type RequestRecord struct {
	ID      string    `json:"id"`
	Client  string    `json:"client"`
	Kind    string    `json:"kind,omitempty"` // figure | cell | tune
	Key     string    `json:"key,omitempty"`  // request content key
	Addr    string    `json:"addr,omitempty"` // first cell content address
	Outcome string    `json:"outcome"`
	Status  int       `json:"status"`
	Start   time.Time `json:"start"`
	TotalUS float64   `json:"total_us"`
	Cells   int       `json:"cells,omitempty"`
	Hits    int       `json:"cache_hits,omitempty"`
	// QueueDepth is the scheduler's queue depth observed when the record
	// was written — for shed requests, the depth that caused the 429.
	QueueDepth int           `json:"queue_depth"`
	RetryAfter int           `json:"retry_after_s,omitempty"`
	Error      string        `json:"error,omitempty"`
	Stages     []query.Stage `json:"stages,omitempty"`
}

// FlightRecorder is a bounded ring of RequestRecords. The zero value is
// unusable; use NewFlightRecorder.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []RequestRecord
	next  int
	total uint64
}

// DefaultFlightRecorderSize is the ring capacity when the config leaves it
// zero: enough to reconstruct a burst, small enough to dump.
const DefaultFlightRecorderSize = 256

// NewFlightRecorder returns a recorder retaining the last n requests
// (n < 1 means DefaultFlightRecorderSize).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = DefaultFlightRecorderSize
	}
	return &FlightRecorder{ring: make([]RequestRecord, n)}
}

// Record appends one request record, evicting the oldest when full.
func (f *FlightRecorder) Record(rec RequestRecord) {
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	f.total++
	f.mu.Unlock()
}

// Total is the number of requests recorded since start (including evicted
// ones).
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Last returns up to n records, newest first (n < 1 means everything
// retained).
func (f *FlightRecorder) Last(n int) []RequestRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	have := int(f.total)
	if have > len(f.ring) {
		have = len(f.ring)
	}
	if n < 1 || n > have {
		n = have
	}
	out := make([]RequestRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}
