package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/stats"
)

// The suite drives the full HTTP path against synthetic figures whose cell
// bodies are instrumented and gateable from the tests: zq-count counts
// executions (cache/fast-path proofs), zq-gate records execution order and
// blocks on a channel (scheduling proofs). Distinct Opts.Iters values give
// distinct content addresses, so one figure yields as many independent
// cells as a test needs.

// gateState instruments the zq-gate figure for one test.
type gateState struct {
	mu      sync.Mutex
	order   []int    // iters of each body, in execution order
	started chan int // receives iters when a body begins
	release chan struct{}
	block   map[int]bool // which iters block on release; nil = all
}

func (g *gateState) record(iters int) {
	g.mu.Lock()
	g.order = append(g.order, iters)
	g.mu.Unlock()
	select {
	case g.started <- iters:
	default:
	}
	if g.block == nil || g.block[iters] {
		<-g.release
	}
}

func (g *gateState) orderSnapshot() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.order...)
}

var (
	gate      atomic.Pointer[gateState]
	countRuns atomic.Int64
)

// resetGate installs fresh instrumentation; block limits which iters
// values wait for release tokens (nil blocks all).
func resetGate(block map[int]bool) *gateState {
	g := &gateState{started: make(chan int, 64), release: make(chan struct{}, 64), block: block}
	gate.Store(g)
	return g
}

// onePoint registers a single-cell synthetic figure.
func onePoint(id string, body func(o bench.Opts) ([]bench.Value, error)) {
	bench.Register(bench.Figure{
		ID: id, Title: "serve test figure " + id, Kind: bench.KindExtension,
		Cells: func(o bench.Opts) *bench.Plan {
			return &bench.Plan{
				Tables: []*stats.Table{stats.NewTable(id, "x", "us", []string{"c"}, []string{"r"})},
				Cells: []bench.Cell{{Key: "pt", Run: func() ([]bench.Value, error) {
					return body(o)
				}}},
			}
		},
	})
}

func init() {
	resetGate(nil)
	onePoint("zq-count", func(o bench.Opts) ([]bench.Value, error) {
		countRuns.Add(1)
		return []bench.Value{{Table: 0, Row: "r", Col: "c", V: 7}}, nil
	})
	onePoint("zq-gate", func(o bench.Opts) ([]bench.Value, error) {
		gate.Load().record(o.Iters)
		return []bench.Value{{Table: 0, Row: "r", Col: "c", V: float64(o.Iters)}}, nil
	})
}

// newTestServer builds a server over a per-test cache and registry.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Cache == nil {
		c, err := bench.OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = c
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, cfg.Metrics
}

func gateReq(iters int) query.Request {
	return query.Request{Figure: "zq-gate", Opts: query.Opts{Warmup: 1, Iters: iters}}
}

// postQuery POSTs a request as the given client and decodes the response.
func postQuery(t *testing.T, url, client string, req query.Request) (*query.Response, int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("X-Client", client)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, resp.StatusCode, resp.Header
	}
	var qr query.Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr, resp.StatusCode, resp.Header
}

// waitFor polls cond until true or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHealthzAndFigures(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/figures")
	if err != nil {
		t.Fatal(err)
	}
	var figs []struct{ ID, Title, Kind string }
	if err := json.NewDecoder(resp.Body).Decode(&figs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
	}
	if !ids["1"] || !ids["zq-count"] {
		t.Fatalf("figure listing missing entries: %v", ids)
	}
}

// TestWarmCacheSharedWithCLI is the cache-convergence acceptance test: a
// warm server query never invokes the cell function, and the same
// experiment through the CLI path (query.Execute on a bench.Runner over
// the same cache directory) is also served from the shared entry and
// produces byte-identical tables.
func TestWarmCacheSharedWithCLI(t *testing.T) {
	dir := t.TempDir()
	cache, err := bench.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, Config{Workers: 2, Cache: cache})
	countRuns.Store(0)
	req := query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 1}}

	cold, code, _ := postQuery(t, ts.URL, "a", req)
	if code != http.StatusOK {
		t.Fatalf("cold query: %d", code)
	}
	if countRuns.Load() != 1 || cold.CacheHits != 0 {
		t.Fatalf("cold query: %d runs, %d hits", countRuns.Load(), cold.CacheHits)
	}

	warm, code, _ := postQuery(t, ts.URL, "a", req)
	if code != http.StatusOK {
		t.Fatalf("warm query: %d", code)
	}
	if countRuns.Load() != 1 {
		t.Fatalf("warm query invoked the cell function (%d runs)", countRuns.Load())
	}
	if warm.CacheHits != 1 || warm.Cells != 1 {
		t.Fatalf("warm query: %d/%d cells from cache", warm.CacheHits, warm.Cells)
	}
	if warm.Tables[0].CSV != cold.Tables[0].CSV || warm.Tables[0].Text != cold.Tables[0].Text {
		t.Fatal("warm tables diverged from cold tables")
	}

	// The CLI path over the same cache directory: shared entry, identical
	// bytes, still no execution.
	cliCache, err := bench.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := bench.NewRunner(bench.RunnerConfig{Parallel: 1, Cache: cliCache})
	cli, err := query.Execute(context.Background(), r, req)
	if err != nil {
		t.Fatal(err)
	}
	if countRuns.Load() != 1 {
		t.Fatalf("CLI run re-executed the cell (%d runs): cache not shared", countRuns.Load())
	}
	if cli.Tables[0].CSV != cold.Tables[0].CSV {
		t.Fatal("CLI tables diverged from server tables")
	}
	if cli.Key != cold.Key {
		t.Fatalf("request keys diverged: %s vs %s", cli.Key, cold.Key)
	}
}

// TestSingleflightMergesConcurrentQueries: at least 8 concurrent identical
// queries cause exactly one cell execution; all get the same answer.
func TestSingleflightMergesConcurrentQueries(t *testing.T) {
	ts, reg := newTestServer(t, Config{Workers: 2})
	g := resetGate(nil)
	req := gateReq(11)

	const N = 8
	var wg sync.WaitGroup
	responses := make([]*query.Response, N)
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], codes[i], _ = postQuery(t, ts.URL, fmt.Sprintf("c%d", i), req)
		}(i)
	}
	// One query runs the cell (blocked on the gate); the other 7 must have
	// merged into its flight before we let it finish.
	waitFor(t, "7 singleflight joins", func() bool {
		return reg.Counter("serve.cells.joined").Value() == N-1
	})
	g.release <- struct{}{}
	wg.Wait()

	if got := len(g.orderSnapshot()); got != 1 {
		t.Fatalf("%d executions for %d identical concurrent queries, want 1", got, N)
	}
	if v := reg.Counter("serve.cells.executed").Value(); v != 1 {
		t.Fatalf("serve.cells.executed = %d, want 1", v)
	}
	for i := 0; i < N; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("query %d: status %d", i, codes[i])
		}
		if responses[i].Tables[0].CSV != responses[0].Tables[0].CSV {
			t.Fatalf("query %d got a different table", i)
		}
	}
}

// TestFairnessGreedyClientCannotStarve: with one worker and a greedy
// client's backlog queued, a polite client's single cell is scheduled
// round-robin — after at most one greedy cell, not after the backlog.
func TestFairnessGreedyClientCannotStarve(t *testing.T) {
	ts, reg := newTestServer(t, Config{Workers: 1})
	g := resetGate(nil)

	var wg sync.WaitGroup
	post := func(client string, iters int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, code, _ := postQuery(t, ts.URL, client, gateReq(iters)); code != http.StatusOK {
				t.Errorf("client %s iters %d: status %d", client, iters, code)
			}
		}()
	}
	post("greedy", 1) // occupies the worker, blocked on the gate
	waitFor(t, "first cell to start", func() bool { return len(g.orderSnapshot()) == 1 })
	for i := 2; i <= 4; i++ { // greedy backlog
		iters := i
		post("greedy", iters)
		waitFor(t, "greedy backlog queued", func() bool {
			return reg.Gauge("serve.queue.depth").Value() == int64(iters-1)
		})
	}
	post("polite", 9)
	waitFor(t, "polite cell queued", func() bool {
		return reg.Gauge("serve.queue.depth").Value() == 4
	})

	for i := 0; i < 5; i++ {
		g.release <- struct{}{}
	}
	wg.Wait()

	order := g.orderSnapshot()
	pos := -1
	for i, v := range order {
		if v == 9 {
			pos = i
		}
	}
	// Slot 0 was already running; fair rotation admits polite at slot 1
	// or 2, never behind the whole greedy backlog.
	if pos < 0 || pos > 2 {
		t.Fatalf("polite client ran at position %d of %v; starved by greedy backlog", pos, order)
	}
}

// TestOverloadSheds429: beyond the queue bounds, queries are rejected with
// 429 + Retry-After instead of queueing without bound, and the server
// keeps serving after the backlog drains.
func TestOverloadSheds429(t *testing.T) {
	ts, reg := newTestServer(t, Config{Workers: 1, MaxQueue: 2, MaxPerClient: 2})
	g := resetGate(nil)

	var wg sync.WaitGroup
	post := func(client string, iters int, wantOK bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, code, _ := postQuery(t, ts.URL, client, gateReq(iters)); wantOK && code != http.StatusOK {
				t.Errorf("client %s iters %d: status %d", client, iters, code)
			}
		}()
	}

	post("a", 1, true) // running
	waitFor(t, "first cell to start", func() bool { return len(g.orderSnapshot()) == 1 })
	post("a", 2, true)
	post("a", 3, true)
	waitFor(t, "backlog queued", func() bool {
		return reg.Gauge("serve.queue.depth").Value() == 2
	})

	// Per-client bound: a's third queued cell is rejected.
	_, code, hdr := postQuery(t, ts.URL, "a", gateReq(4))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over per-client bound: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	// Global bound: a different client is rejected too (queue is full).
	if _, code, _ = postQuery(t, ts.URL, "b", gateReq(5)); code != http.StatusTooManyRequests {
		t.Fatalf("over global bound: status %d, want 429", code)
	}
	if reg.Counter("serve.queue.rejected").Value() != 2 {
		t.Fatalf("serve.queue.rejected = %d, want 2", reg.Counter("serve.queue.rejected").Value())
	}

	// Not wedged: drain and serve a fresh query.
	for i := 0; i < 3; i++ {
		g.release <- struct{}{}
	}
	wg.Wait()
	countRuns.Store(0)
	if _, code, _ := postQuery(t, ts.URL, "a", query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 1}}); code != http.StatusOK {
		t.Fatalf("query after overload: status %d", code)
	}
}

// TestCancelReleasesWorkerMidCell: a client abandoning its query frees the
// worker slot even though the simulated cell never finishes; the next
// query proceeds without the gate ever releasing the orphan.
func TestCancelReleasesWorkerMidCell(t *testing.T) {
	ts, reg := newTestServer(t, Config{Workers: 1})
	g := resetGate(map[int]bool{1: true}) // only iters=1 blocks

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(gateReq(1))
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("X-Client", "quitter")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(hr)
		errc <- err
	}()
	waitFor(t, "cell to start", func() bool { return len(g.orderSnapshot()) == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned without error")
	}
	waitFor(t, "flight abandonment", func() bool {
		return reg.Counter("serve.cells.abandoned").Value() == 1
	})

	// The only worker was simulating the orphan; this completes only if
	// abandonment released the slot.
	done := make(chan int, 1)
	go func() {
		_, code, _ := postQuery(t, ts.URL, "patient", gateReq(2))
		done <- code
	}()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("follow-up query: status %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker slot still held by abandoned cell")
	}
	g.release <- struct{}{} // let the orphan goroutine exit
}

// TestStreamingProgress: ?stream=1 yields per-cell NDJSON events and a
// final result carrying the same tables as the plain path.
func TestStreamingProgress(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	countRuns.Store(0)
	body, _ := json.Marshal(query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 2}})
	resp, err := http.Post(ts.URL+"/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want cell+result", len(events))
	}
	if events[0].Type != "cell" || events[0].Done != 1 || events[0].Total != 1 {
		t.Fatalf("first event %+v", events[0])
	}
	if events[1].Type != "result" || events[1].Result == nil || len(events[1].Result.Tables) != 1 {
		t.Fatalf("final event %+v", events[1])
	}
}

// TestTraceEndpoint: a completed cell query's Perfetto trace is served at
// its content address; unknown addresses 404.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	req := query.Request{Cell: &query.Cell{Library: "PiP-MColl", Collective: "allgather",
		Nodes: 1, PPN: 2, Bytes: 64}, Opts: query.Opts{Warmup: 1, Iters: 1}}
	if _, code, _ := postQuery(t, ts.URL, "t", req); code != http.StatusOK {
		t.Fatalf("cell query: status %d", code)
	}
	j, err := query.Build(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/traces/" + j.Addresses()[0])
	if err != nil {
		t.Fatal(err)
	}
	trace, err := readAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d err %v", resp.StatusCode, err)
	}
	if !json.Valid(trace) || !bytes.Contains(trace, []byte("traceEvents")) {
		t.Fatalf("trace is not Perfetto JSON (%d bytes)", len(trace))
	}
	if resp, err = http.Get(ts.URL + "/traces/doesnotexist"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	countRuns.Store(0)
	if _, code, _ := postQuery(t, ts.URL, "m", query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 3}}); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	// Default view is Prometheus text exposition: sanitized names, typed
	// series, histogram buckets.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := readAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prom content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE serve_queries counter",
		"serve_queries 1",
		"serve_cells_executed",
		"# TYPE serve_query_latency_ms histogram",
		"serve_query_latency_ms_bucket{le=\"+Inf\"} 1",
		"serve_query_latency_ms_count 1",
		"# TYPE serve_cache_hits counter",
		"# TYPE serve_stage_execute_us histogram",
		"# HELP serve_queries total /query requests accepted for execution",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("prom exposition missing %q:\n%s", want, prom)
		}
	}
	// The legacy aligned dump stays reachable behind ?format=text.
	resp, err = http.Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := readAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serve.queries", "serve.cells.executed", "serve.query.latency_ms", "serve.cache.hits"} {
		if !bytes.Contains(dump, []byte(want)) {
			t.Errorf("legacy metrics dump missing %s:\n%s", want, dump)
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	if _, code, _ := postQuery(t, ts.URL, "x", query.Request{Figure: "no-such-figure"}); code != http.StatusBadRequest {
		t.Fatalf("unknown figure: status %d", code)
	}
	if resp, err = http.Get(ts.URL + "/query"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d", resp.StatusCode)
	}
}

// TestLoadHarness: the bundled load generator drives a warm server without
// errors and reports sane latency percentiles.
func TestLoadHarness(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})
	countRuns.Store(0)
	req := query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 4}}
	if _, code, _ := postQuery(t, ts.URL, "warm", req); code != http.StatusOK {
		t.Fatalf("warming query: status %d", code)
	}
	res, err := LoadTest(ts.URL, LoadOpts{Clients: 4, PerClient: 5, Request: req})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 20 || res.Errors != 0 || res.Rejected != 0 {
		t.Fatalf("load result %+v", res)
	}
	if countRuns.Load() != 1 {
		t.Fatalf("load test executed cells %d times; warm path broken", countRuns.Load())
	}
	if res.P95 <= 0 || res.P50 > res.Max {
		t.Fatalf("nonsense percentiles %+v", res)
	}
	if !strings.Contains(res.Format(), "qps") {
		t.Fatal("Format() missing throughput")
	}
}

// TestWarmQuerySubMillisecond is the fixed-seed warm-cache latency smoke:
// the best observed round-trip for a warm single-cell query must be
// sub-millisecond. Gated behind PIPMCOLL_SMOKE=1 (make serve-test) so
// ordinary test runs carry no timing flake risk.
func TestWarmQuerySubMillisecond(t *testing.T) {
	if os.Getenv("PIPMCOLL_SMOKE") == "" {
		t.Skip("set PIPMCOLL_SMOKE=1 to run the latency smoke")
	}
	ts, _ := newTestServer(t, Config{Workers: 2})
	req := query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 5}}
	if _, code, _ := postQuery(t, ts.URL, "smoke", req); code != http.StatusOK {
		t.Fatalf("warming query: status %d", code)
	}
	body, _ := json.Marshal(req)
	best := time.Hour
	for i := 0; i < 100; i++ {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		readAll(resp.Body)
		resp.Body.Close()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	t.Logf("best warm-query round trip: %s", best)
	if best >= time.Millisecond {
		t.Fatalf("best warm-query latency %s, want sub-millisecond", best)
	}
}

// readAll drains a response body.
func readAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }
