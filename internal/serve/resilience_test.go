package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/query"
)

// The resilience suite proves the hardened serving path: graceful drain
// (readiness flip, warm hits through the window, typed 503s for fresh
// work), per-request deadlines (504 naming the cell, worker freed,
// nothing cached), the stuck-cell watchdog, and chaos injection (slow,
// failing, torn-write cells) with retrying clients achieving 100%
// eventual success.

// syncBuffer is a race-safe log sink for asserting on server log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newResilServer is newTestServer plus access to the *Server itself, for
// driving drains directly.
func newResilServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Cache == nil {
		c, err := bench.OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = c
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, cfg.Metrics
}

// postRaw posts a request without a testing.T, so goroutines can use it
// and report through channels instead of calling Fatal off the test
// goroutine.
func postRaw(url, client string, req query.Request) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	hr.Header.Set("X-Client", client)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := readAll(resp.Body)
	return resp.StatusCode, b, err
}

// postTimed posts a request with an X-Timeout-Ms header.
func postTimed(t *testing.T, url, client string, req query.Request, timeoutMS string) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("X-Client", client)
	if timeoutMS != "" {
		hr.Header.Set("X-Timeout-Ms", timeoutMS)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := readAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// lastOutcome finds the newest /debug/requests record with the given
// outcome.
func lastOutcome(t *testing.T, url, outcome string) *RequestRecord {
	t.Helper()
	resp, err := http.Get(url + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	for i := range page.Requests { // newest first
		if page.Requests[i].Outcome == outcome {
			return &page.Requests[i]
		}
	}
	return nil
}

// TestGracefulDrain is the shutdown acceptance test: under load, drain
// flips /readyz, keeps serving warm hits, refuses fresh cells with a
// typed retryable 503, lets in-flight work complete, and finishes within
// the drain timeout with zero connection resets.
func TestGracefulDrain(t *testing.T) {
	s, ts, reg := newResilServer(t, Config{Workers: 1})
	g := resetGate(nil)

	// Warm one entry before the drain starts.
	countRuns.Store(0)
	warmReq := query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 21}}
	if _, code, _ := postQuery(t, ts.URL, "w", warmReq); code != http.StatusOK {
		t.Fatalf("warming query: status %d", code)
	}

	// In-flight work: a gate cell blocked mid-execution.
	inflightCode := make(chan int, 1)
	go func() {
		code, _, _ := postRaw(ts.URL, "inflight", gateReq(22))
		inflightCode <- code
	}()
	waitFor(t, "in-flight cell to start", func() bool { return len(g.orderSnapshot()) == 1 })

	// Before the drain, /readyz is green.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	s.BeginDrain()

	// Readiness flips immediately; liveness stays green (restarting a
	// draining server would defeat the drain).
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz without Retry-After")
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Warm-cache hits keep serving through the window.
	warm, code, _ := postQuery(t, ts.URL, "w", warmReq)
	if code != http.StatusOK || warm.CacheHits != 1 {
		t.Fatalf("warm hit during drain: status %d, hits %v", code, warm)
	}

	// Fresh cells are refused with the typed retryable 503.
	_, code, hdr := postQuery(t, ts.URL, "fresh", gateReq(23))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fresh cell during drain: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}
	if reg.Counter("serve.queue.drained_rejects").Value() != 1 {
		t.Fatalf("serve.queue.drained_rejects = %d, want 1",
			reg.Counter("serve.queue.drained_rejects").Value())
	}
	if rec := lastOutcome(t, ts.URL, OutcomeDraining); rec == nil {
		t.Fatal("no draining outcome in /debug/requests")
	}

	// Release the in-flight cell; the drain completes within its timeout
	// and the held request gets its answer — no connection reset.
	g.release <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not complete in time: %v", err)
	}
	if code := <-inflightCode; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", code)
	}
}

// TestDrainTimeoutAbandonsInflight: a cell that never finishes cannot
// hold shutdown hostage — the drain deadline abandons it with the typed
// draining error and frees its worker.
func TestDrainTimeoutAbandonsInflight(t *testing.T) {
	s, ts, _ := newResilServer(t, Config{Workers: 1})
	g := resetGate(nil)

	stuckBody := make(chan []byte, 1)
	stuckCode := make(chan int, 1)
	go func() {
		code, body, _ := postRaw(ts.URL, "stuck", gateReq(31))
		stuckCode <- code
		stuckBody <- body
	}()
	waitFor(t, "cell to start", func() bool { return len(g.orderSnapshot()) == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain of a stuck cell returned nil; want deadline error")
	}
	if code := <-stuckCode; code != http.StatusServiceUnavailable {
		t.Fatalf("abandoned request: status %d, want 503", code)
	}
	if body := <-stuckBody; !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("abandoned request body %s; want the typed draining error", body)
	}
	g.release <- struct{}{} // let the orphaned cell body exit
}

// TestDeadline504NamesCell is the deadline acceptance test: a request
// with timeout_ms gets a 504 within ~2x the deadline naming the cell it
// was waiting on, the worker slot is freed, nothing partial is cached,
// and the flight recorder logs the deadline_exceeded outcome with stage
// timings.
func TestDeadline504NamesCell(t *testing.T) {
	logbuf := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(logbuf, nil))
	_, ts, reg := newResilServer(t, Config{Workers: 1, Logger: logger})
	g := resetGate(nil)

	req := gateReq(41)
	req.TimeoutMS = 100
	start := time.Now()
	code, body := postTimed(t, ts.URL, "hurry", req, "")
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: status %d, want 504 (body %s)", code, body)
	}
	if elapsed > 2*100*time.Millisecond+500*time.Millisecond {
		t.Fatalf("504 took %s for a 100ms deadline", elapsed)
	}
	var dl deadlineBody
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatalf("504 body not structured: %v (%s)", err, body)
	}
	if dl.Cell != "pt" || dl.Addr == "" {
		t.Fatalf("504 does not name the cell: %+v", dl)
	}
	if dl.TimeoutMS != 100 || dl.ElapsedMS <= 0 {
		t.Fatalf("504 timings: %+v", dl)
	}
	if reg.Counter("serve.deadline_exceeded").Value() != 1 {
		t.Fatalf("serve.deadline_exceeded = %d", reg.Counter("serve.deadline_exceeded").Value())
	}

	// The flight recorder has the outcome with stage timings.
	rec := lastOutcome(t, ts.URL, OutcomeDeadline)
	if rec == nil {
		t.Fatal("no deadline_exceeded outcome in /debug/requests")
	}
	if len(rec.Stages) == 0 || rec.Status != http.StatusGatewayTimeout {
		t.Fatalf("deadline record %+v", rec)
	}

	// The worker slot was freed: the only worker can run a fresh cell.
	waitFor(t, "flight abandonment", func() bool {
		return reg.Counter("serve.cells.abandoned").Value() == 1
	})
	done := make(chan int, 1)
	go func() {
		code, _, _ := postRaw(ts.URL, "next", gateReq(42))
		done <- code
	}()
	waitFor(t, "next cell to start", func() bool { return len(g.orderSnapshot()) == 2 })
	g.release <- struct{}{}
	g.release <- struct{}{} // the abandoned body, then the live one
	if code := <-done; code != http.StatusOK {
		t.Fatalf("follow-up query: status %d", code)
	}

	// Nothing partial was cached: re-running the timed-out cell executes
	// the body again instead of loading an entry.
	go postRaw(ts.URL, "again", gateReq(41))
	waitFor(t, "timed-out cell to re-execute", func() bool { return len(g.orderSnapshot()) == 3 })
	g.release <- struct{}{}
}

// TestDeadlineHeaderOverridesBody: X-Timeout-Ms beats the body field, and
// a malformed header is a 400, not a silent no-deadline.
func TestDeadlineHeaderOverridesBody(t *testing.T) {
	_, ts, _ := newResilServer(t, Config{Workers: 1})
	g := resetGate(nil)

	req := gateReq(51)
	req.TimeoutMS = 60000                                // generous body deadline...
	code, body := postTimed(t, ts.URL, "hdr", req, "80") // ...tight header deadline
	if code != http.StatusGatewayTimeout {
		t.Fatalf("header deadline: status %d (body %s)", code, body)
	}
	g.release <- struct{}{}

	if code, _ := postTimed(t, ts.URL, "hdr", gateReq(52), "not-a-number"); code != http.StatusBadRequest {
		t.Fatalf("malformed X-Timeout-Ms: status %d, want 400", code)
	}
}

// TestWatchdogKillsStuckCell: with -cell-budget armed, a cell that blows
// its wall-clock budget is killed with the typed error, counted, logged
// with the 5xx flight-recorder dump, and its worker slot is freed.
func TestWatchdogKillsStuckCell(t *testing.T) {
	logbuf := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(logbuf, nil))
	_, ts, reg := newResilServer(t, Config{Workers: 1, CellBudget: 50 * time.Millisecond, Logger: logger})
	g := resetGate(map[int]bool{61: true}) // only the stuck cell blocks

	code, body := postTimed(t, ts.URL, "victim", gateReq(61), "")
	if code != http.StatusInternalServerError {
		t.Fatalf("stuck cell: status %d, want 500 (body %s)", code, body)
	}
	if !bytes.Contains(body, []byte("wall-clock budget")) {
		t.Fatalf("500 body does not carry the watchdog error: %s", body)
	}
	if reg.Counter("serve.cells_killed").Value() != 1 {
		t.Fatalf("serve.cells_killed = %d, want 1", reg.Counter("serve.cells_killed").Value())
	}
	logs := logbuf.String()
	if !strings.Contains(logs, "stuck cell killed") || !strings.Contains(logs, "cell_addr") {
		t.Fatalf("watchdog kill not logged with the cell address:\n%s", logs)
	}
	// A 5xx auto-dumps the flight recorder to the log.
	if !strings.Contains(logs, "flight recorder dump") {
		t.Fatalf("5xx did not dump the flight recorder:\n%s", logs)
	}

	// Worker freed: a fresh (non-blocking) cell completes.
	if _, code, _ := postQuery(t, ts.URL, "after", gateReq(62)); code != http.StatusOK {
		t.Fatalf("query after watchdog kill: status %d", code)
	}
	g.release <- struct{}{} // let the killed body exit
}

// TestChaosEventualSuccess is the chaos acceptance test: under injected
// slow cells, failing cells and torn cache writes, the server never
// wedges, never serves a corrupt result, and a retrying client reaches
// 100% eventual success.
func TestChaosEventualSuccess(t *testing.T) {
	cacheDir := t.TempDir()
	cache, err := bench.OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	// Chaos plan, per execution attempt (counted per cell): first attempt
	// fails, second is slowed but runs (and tears its cache write), later
	// attempts run clean.
	var mu sync.Mutex
	attempts := map[string]int{}
	chaos := func(figID, cellKey string, o bench.Opts) *InjectedFault {
		key := fmt.Sprintf("%s/%s/%d", figID, cellKey, o.Iters)
		mu.Lock()
		defer mu.Unlock()
		attempts[key]++
		switch attempts[key] {
		case 1:
			return &InjectedFault{Err: fmt.Errorf("chaos: injected cell failure")}
		case 2:
			return &InjectedFault{Delay: 5 * time.Millisecond, TornWrite: true}
		}
		return nil
	}
	_, ts, _ := newResilServer(t, Config{Workers: 2, Cache: cache, Chaos: chaos})
	resetGate(map[int]bool{}) // gate cells run without blocking

	cl := client.New(client.Config{
		BaseURL: ts.URL, ClientID: "chaos",
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		Seed: 42,
	})
	// Several distinct cells, each walking the fault plan: fail -> retry
	// -> slow+torn write -> success.
	for iters := 71; iters <= 74; iters++ {
		resp, outcome, err := cl.Query(context.Background(), gateReq(iters))
		if err != nil {
			t.Fatalf("iters %d: no eventual success: %v (attempts %d)",
				iters, err, len(outcome.Attempts))
		}
		if len(outcome.Attempts) < 2 {
			t.Fatalf("iters %d: chaos did not force a retry (%d attempts)", iters, len(outcome.Attempts))
		}
		if got := resp.Tables[0].CSV; !strings.Contains(got, fmt.Sprint(iters)) {
			t.Fatalf("iters %d: wrong result through chaos:\n%s", iters, got)
		}
	}

	// The second attempt tore every cache write. A corrupt entry must
	// never be served: the next query detects the damage, recomputes, and
	// heals — same values, corruption counted.
	before := cache.Corruptions()
	resp, outcome, err := cl.Query(context.Background(), gateReq(71))
	if err != nil {
		t.Fatalf("post-torn query: %v", err)
	}
	if len(outcome.Attempts) != 1 {
		t.Fatalf("post-torn query took %d attempts; the heal should be transparent", len(outcome.Attempts))
	}
	if cache.Corruptions() <= before {
		t.Fatal("torn entry was not detected as corrupt")
	}
	if !strings.Contains(resp.Tables[0].CSV, "71") {
		t.Fatalf("healed result wrong:\n%s", resp.Tables[0].CSV)
	}
	// Healed for good: one more read is a clean warm hit.
	resp, _, err = cl.Query(context.Background(), gateReq(71))
	if err != nil || resp.CacheHits != 1 {
		t.Fatalf("healed entry not warm: hits %v err %v", resp, err)
	}
}

// TestLoadtestRetriesToFullGoodput: the load harness with a retry budget
// turns injected first-attempt failures into 100% eventual success and
// reports the recovery in its retry accounting.
func TestLoadtestRetriesToFullGoodput(t *testing.T) {
	// Every cell fails its first execution attempt, then runs clean.
	var mu sync.Mutex
	attempts := map[string]int{}
	chaos := func(figID, cellKey string, o bench.Opts) *InjectedFault {
		key := fmt.Sprintf("%s/%s/%d", figID, cellKey, o.Iters)
		mu.Lock()
		defer mu.Unlock()
		attempts[key]++
		if attempts[key] == 1 {
			return &InjectedFault{Err: fmt.Errorf("chaos: injected cell failure")}
		}
		return nil
	}
	_, ts, _ := newResilServer(t, Config{Workers: 2, Chaos: chaos})
	resetGate(map[int]bool{})

	req := gateReq(81)
	res, err := LoadTest(ts.URL, LoadOpts{Clients: 3, PerClient: 4, Request: req, Retries: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 12 || res.GaveUp != 0 {
		t.Fatalf("goodput %d ok / %d gave up, want 12/0:\n%s", res.Requests, res.GaveUp, res.Format())
	}
	if res.RetriedOK < 1 || res.Retries < 1 {
		t.Fatalf("retry accounting missing recovery: %+v", res)
	}
	if res.AttemptHist[1] == 0 && res.AttemptHist[2] == 0 {
		t.Fatalf("attempt histogram empty: %+v", res.AttemptHist)
	}
	for _, want := range []string{"gave up", "recovered by retry", "try(s)"} {
		if !strings.Contains(res.Format(), want) {
			t.Fatalf("Format() missing %q:\n%s", want, res.Format())
		}
	}
}

// TestLoadtestAgainstDrainingServer is the fixed-seed drain smoke (make
// serve-chaos): a warm workload keeps achieving 100% success on a
// draining server, because drain only refuses fresh cells. Gated behind
// PIPMCOLL_CHAOS=1 alongside the other wall-clock-sensitive smokes.
func TestLoadtestAgainstDrainingServer(t *testing.T) {
	if os.Getenv("PIPMCOLL_CHAOS") == "" {
		t.Skip("set PIPMCOLL_CHAOS=1 to run the drain loadtest smoke")
	}
	s, ts, _ := newResilServer(t, Config{Workers: 2})
	countRuns.Store(0)
	req := query.Request{Figure: "zq-count", Opts: query.Opts{Warmup: 1, Iters: 91}}
	if _, code, _ := postQuery(t, ts.URL, "warm", req); code != http.StatusOK {
		t.Fatalf("warming query: status %d", code)
	}
	s.BeginDrain()
	res, err := LoadTest(ts.URL, LoadOpts{Clients: 4, PerClient: 10, Request: req, Retries: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 40 || res.GaveUp != 0 || res.Errors != 0 {
		t.Fatalf("warm loadtest through drain: %+v\n%s", res, res.Format())
	}
	// Fresh work, by contrast, is refused throughout the drain: the
	// retrying client gives up with the typed exhausted error. The tight
	// MaxElapsed makes it give up rather than honor the server's 10s
	// Retry-After — the drain isn't ending, so waiting is pointless.
	cl := client.New(client.Config{BaseURL: ts.URL, ClientID: "fresh",
		MaxAttempts: 2, MaxElapsed: 100 * time.Millisecond,
		BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 42})
	_, outcome, err := cl.Query(context.Background(), gateReq(92))
	var ex *client.ExhaustedError
	if err == nil || !errors.As(err, &ex) {
		t.Fatalf("fresh cell on draining server: err %v (attempts %d), want ExhaustedError",
			err, len(outcome.Attempts))
	}
	if ex.LastStatus != http.StatusServiceUnavailable {
		t.Fatalf("exhausted with last status %d, want 503", ex.LastStatus)
	}
}

// TestSchedulerDrainLifecycle covers the drain primitives directly:
// Draining flips, an idle scheduler is Idle, and WaitIdle returns
// promptly when nothing is queued or in flight.
func TestSchedulerDrainLifecycle(t *testing.T) {
	sched := NewScheduler(SchedulerConfig{Workers: 1})
	defer sched.Close()
	sched.Drain()
	if !sched.Draining() {
		t.Fatal("Draining() false after Drain()")
	}
	if !sched.Idle() {
		t.Fatal("fresh scheduler not idle")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := sched.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle on idle scheduler: %v", err)
	}
}

// TestLoadtestSmokeSeedDerivation: with no explicit seed, the smoke
// harness env vars (PIPMCOLL_SMOKE / PIPMCOLL_CHAOS) derive the fixed
// default so CI goodput runs are reproducible; outside them, the clock
// fallback is reported as such; an explicit seed always wins. The goodput
// report names the effective seed either way.
func TestLoadtestSmokeSeedDerivation(t *testing.T) {
	_, ts, _ := newResilServer(t, Config{Workers: 1})
	resetGate(map[int]bool{})
	req := gateReq(95)

	t.Setenv("PIPMCOLL_SMOKE", "")
	t.Setenv("PIPMCOLL_CHAOS", "1")
	res, err := LoadTest(ts.URL, LoadOpts{Clients: 1, PerClient: 1, Request: req})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != smokeDefaultSeed {
		t.Fatalf("seed under PIPMCOLL_CHAOS = %d, want the fixed default %d", res.Seed, smokeDefaultSeed)
	}
	if want := fmt.Sprintf("seed       %d (fixed jitter)", smokeDefaultSeed); !strings.Contains(res.Format(), want) {
		t.Fatalf("Format() missing %q:\n%s", want, res.Format())
	}

	t.Setenv("PIPMCOLL_CHAOS", "")
	res, err = LoadTest(ts.URL, LoadOpts{Clients: 1, PerClient: 1, Request: req})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 0 {
		t.Fatalf("seed outside the smoke harnesses = %d, want clock fallback 0", res.Seed)
	}
	if !strings.Contains(res.Format(), "clock") {
		t.Fatalf("Format() does not flag the clock fallback:\n%s", res.Format())
	}

	t.Setenv("PIPMCOLL_CHAOS", "1")
	res, err = LoadTest(ts.URL, LoadOpts{Clients: 1, PerClient: 1, Request: req, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 9 {
		t.Fatalf("explicit seed overridden: got %d, want 9", res.Seed)
	}
}
