// Package serve turns the deterministic benchmark harness into a
// simulation-as-a-service: an HTTP front end (Server) over a fair,
// deduplicating cell scheduler (Scheduler). Clients POST query.Requests;
// cells already in the content-addressed result cache are answered on the
// fast path without simulating, identical in-flight cells are merged
// (singleflight), and fresh work is admitted into bounded per-client FIFO
// queues drained round-robin by a fixed worker pool — so one greedy client
// cannot starve the rest, and overload degrades into explicit 429s instead
// of unbounded queueing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/query"
)

// ErrOverloaded reports that admission control rejected a job because the
// global or per-client queue bound would be exceeded. RetryAfter is the
// scheduler's backoff hint, surfaced as the HTTP Retry-After header;
// Depth is the global queue depth observed at rejection, for the shed
// log line and the flight recorder.
type ErrOverloaded struct {
	RetryAfter time.Duration
	Depth      int
}

// Error describes the rejection.
func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("serve: queue full, retry after %s", e.RetryAfter)
}

// SchedulerConfig configures the cell scheduler.
type SchedulerConfig struct {
	// Workers is the number of cells simulating concurrently (min 1).
	Workers int
	// MaxQueue bounds cells queued globally, excluding those running;
	// MaxPerClient bounds cells queued by one client. A job whose new
	// cells would exceed either bound is rejected whole with
	// ErrOverloaded (cache hits and singleflight joins are free — they
	// consume no queue capacity).
	MaxQueue     int
	MaxPerClient int
	// Cache, when non-nil, is the shared content-addressed result cache —
	// the same store the CLIs use, which is what makes server and CLI
	// runs of one experiment share entries.
	Cache *bench.Cache
	// Metrics, when non-nil, receives scheduler counters and gauges
	// under the serve.* namespace.
	Metrics *obs.Registry
	// Logger receives structured scheduler events (cell failures,
	// abandonments) with request IDs attached; nil discards them.
	Logger *slog.Logger
	// CellBudget, when positive, arms the stuck-cell watchdog: a flight
	// whose wall-clock execution exceeds the budget is cancelled with a
	// typed StuckCellError, logged with its stage breakdown, and counted
	// in serve.cells_killed. Off (0) by default — figure cells legitimately
	// run for minutes in -full mode.
	CellBudget time.Duration
	// Chaos, when non-nil, is the test-only fault hook consulted before
	// every cell execution (slow cells, failing cells, torn cache
	// writes). Production configs leave it nil.
	Chaos ChaosFunc
	// Replay, when non-nil, installs the schedule memo as the process-wide
	// replay table (bench.EnableReplay): the first execution of each
	// fault-free cell shape records its event DAG, and repeated shapes —
	// across requests and clients — replay goroutine-free. Ineligible cells
	// (fault plans, op timeouts) run live as always. Instrumented under
	// serve.replay.* when Metrics is set.
	Replay *bench.ScheduleMemo
}

// flight is one in-flight cell computation, shared by every job that needs
// the same content address. Its context is detached from any single
// requester: it is cancelled only when the last waiter abandons, which
// releases the worker slot mid-simulation (the orphaned cell body finishes
// in the background and is discarded).
type flight struct {
	addr   string
	figID  string
	cell   bench.Cell
	opts   bench.Opts
	ctx    context.Context
	cancel context.CancelCauseFunc
	// reqID is the request that enqueued the flight (joiners keep their
	// own IDs); threaded into worker logs so a slow cell can be traced
	// back to the query that caused it.
	reqID string

	waiters int // guarded by Scheduler.mu

	// Wall-clock stamps for stage accounting. enqueuedAt is written by the
	// submitter before the flight is visible to workers; startedAt and
	// finishedAt are written by the worker before done is closed, so
	// waiters may read them after <-done (the close is the barrier).
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	done   chan struct{} // closed once vals/cached/err are set
	vals   []bench.Value
	cached bool
	err    error
}

// task is one queued unit of work: a flight owed to a client's queue.
type task struct {
	client string
	fl     *flight
}

// Scheduler schedules measurement cells over a bounded worker pool with
// per-client fairness, cell-level singleflight, and cache fast-pathing.
type Scheduler struct {
	cfg SchedulerConfig

	mu       sync.Mutex
	queues   map[string][]*task // per-client FIFO of admitted tasks
	order    []string           // round-robin rotation of clients with queued work
	queued   int                // total queued tasks (not yet picked by a worker)
	inflight map[string]*flight // content address -> live flight
	draining bool               // Drain called: no new cells admitted

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxQueue < 1 {
		cfg.MaxQueue = 256
	}
	if cfg.MaxPerClient < 1 {
		cfg.MaxPerClient = cfg.MaxQueue
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Replay != nil {
		if cfg.Metrics != nil {
			cfg.Replay.Instrument(cfg.Metrics, "serve.replay")
		}
		bench.EnableReplay(cfg.Replay)
	}
	s := &Scheduler{
		cfg:      cfg,
		queues:   make(map[string][]*task),
		inflight: make(map[string]*flight),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the workers after their current cells finish. Queued tasks
// are dropped; their waiters see ErrStopped.
func (s *Scheduler) Close() {
	close(s.stop)
	s.wg.Wait()
}

// ErrStopped is reported to waiters whose queued cells were dropped by
// Close.
var ErrStopped = fmt.Errorf("serve: scheduler stopped")

// Drain stops admitting new cells: jobs that would enqueue fresh work are
// rejected with ErrDraining, while cache fast-path hits and singleflight
// joins onto already-running cells keep serving — graceful degradation
// during the shutdown window, not a cliff. Idempotent.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Idle reports whether no cells are queued or in flight.
func (s *Scheduler) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued == 0 && len(s.inflight) == 0
}

// WaitIdle blocks until every queued and in-flight cell has finished, or
// ctx expires — in which case every remaining flight is cancelled with
// ErrDraining (their waiters get the typed error, workers release their
// slots, nothing is cached) and WaitIdle returns ctx.Err(). Call Drain
// first or new work may keep the scheduler busy indefinitely.
func (s *Scheduler) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.Idle() {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			s.abortInflight(ErrDraining)
			return ctx.Err()
		}
	}
}

// abortInflight cancels every live flight with the given cause. The
// workers' context races observe the cause and finish the flights, so
// waiters unblock promptly with the typed error.
func (s *Scheduler) abortInflight(cause error) {
	s.mu.Lock()
	flights := make([]*flight, 0, len(s.inflight))
	for _, fl := range s.inflight {
		flights = append(flights, fl)
	}
	s.mu.Unlock()
	for _, fl := range flights {
		fl.cancel(cause)
	}
}

func (s *Scheduler) counter(name string) *obs.Counter {
	if s.cfg.Metrics == nil {
		return nil
	}
	return s.cfg.Metrics.Counter(name)
}

func (s *Scheduler) add(name string) {
	if c := s.counter(name); c != nil {
		c.Add(1)
	}
}

func (s *Scheduler) setDepth() {
	// callers hold s.mu
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("serve.queue.depth").Set(int64(s.queued))
	}
}

// QueueDepth reports how many admitted cells are queued (not yet picked by
// a worker).
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// observeUS records one duration into a registry histogram in µs.
func (s *Scheduler) observeUS(name string, d time.Duration) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Histogram(name, obs.LatencyBucketsUS).Observe(d.Seconds() * 1e6)
	}
}

// RetryAfter estimates how long a rejected client should back off: one
// scheduling round per queued cell ahead of it, floored at a second.
func (s *Scheduler) retryAfter() time.Duration {
	d := time.Duration(1+s.queued/s.cfg.Workers) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// RunJob executes every cell of a compiled query job on behalf of client,
// returning per-cell values in declaration order and the number of cells
// answered from the cache without simulating. onCell, when non-nil, fires
// once per completed cell (serialized). tr, when non-nil, accumulates the
// job's wall-clock stage spans (cache lookups, admission, queue wait,
// singleflight wait, execution).
//
// Admission is all-or-nothing: cells served by the cache fast path or
// merged into an existing flight are free, and the remaining new cells are
// admitted only if they fit both queue bounds — otherwise ErrOverloaded
// and nothing is enqueued. Cancelling ctx abandons this job's interest in
// its flights; a flight whose last waiter left is cancelled, which
// releases its worker slot even mid-simulation.
func (s *Scheduler) RunJob(ctx context.Context, client string, j *query.Job, tr *Trace, onCell func(i int, key string, cached bool, err error)) ([][]bench.Value, int, error) {
	n := len(j.Plan.Cells)
	opts := j.Opts()
	results := make([][]bench.Value, n)
	errs := make([]error, n)
	hits := 0

	// Fast path: answer straight from the shared result cache. No queue
	// capacity, no worker, no flight — a warm query never invokes a cell
	// function.
	pending := make([]int, 0, n)
	for i, c := range j.Plan.Cells {
		if s.cfg.Cache != nil {
			stop := tr.Time(StageCacheLookup)
			vals, ok := s.cfg.Cache.Load(j.FigID, c.Key, opts)
			stop()
			if ok {
				results[i] = vals
				hits++
				s.add("serve.cells.fast_path")
				if onCell != nil {
					onCell(i, c.Key, true, nil)
				}
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return results, hits, nil
	}

	// Classify the rest under one lock: join live flights (free) or admit
	// new ones (bounded), atomically so admission cannot be split.
	flights := make([]*flight, n)
	joinedAt := make(map[int]time.Time, len(pending))
	reqID := ""
	if tr != nil {
		reqID = tr.ID
	}
	stopAdmission := tr.Time(StageAdmission)
	s.mu.Lock()
	fresh := 0
	for _, i := range pending {
		addr := bench.CellAddress(j.FigID, j.Plan.Cells[i].Key, opts)
		if _, ok := s.inflight[addr]; !ok {
			fresh++
		}
	}
	if s.draining && fresh > 0 {
		// Drain window: joins and cache hits above stayed free, but no new
		// cell may start. All-or-nothing, like every admission decision.
		s.mu.Unlock()
		stopAdmission()
		s.add("serve.queue.drained_rejects")
		return nil, hits, ErrDraining
	}
	if s.queued+fresh > s.cfg.MaxQueue || len(s.queues[client])+fresh > s.cfg.MaxPerClient {
		retry := s.retryAfter()
		depth := s.queued
		s.mu.Unlock()
		stopAdmission()
		s.add("serve.queue.rejected")
		return nil, 0, &ErrOverloaded{RetryAfter: retry, Depth: depth}
	}
	joined, enqueued := 0, 0
	now := time.Now()
	for _, i := range pending {
		c := j.Plan.Cells[i]
		addr := bench.CellAddress(j.FigID, c.Key, opts)
		if fl, ok := s.inflight[addr]; ok {
			fl.waiters++
			flights[i] = fl
			joinedAt[i] = now
			joined++
			continue
		}
		fctx, cancel := context.WithCancelCause(context.Background())
		fl := &flight{addr: addr, figID: j.FigID, cell: c, opts: opts,
			ctx: fctx, cancel: cancel, reqID: reqID, waiters: 1,
			enqueuedAt: now, done: make(chan struct{})}
		s.inflight[addr] = fl
		flights[i] = fl
		if _, ok := s.queues[client]; !ok {
			s.order = append(s.order, client)
		}
		s.queues[client] = append(s.queues[client], &task{client: client, fl: fl})
		s.queued++
		enqueued++
	}
	s.setDepth()
	s.mu.Unlock()
	stopAdmission()
	// Stage spans derived from worker-side stamps are clamped to start no
	// earlier than this instant: enqueuedAt/joinedAt were taken inside the
	// admission lock, so anything before `admitted` is already attributed
	// to the admission stage (keeps per-cell stage sums ≤ wall total).
	admitted := time.Now()
	if joined > 0 {
		if c := s.counter("serve.cells.joined"); c != nil {
			c.Add(int64(joined))
		}
	}
	for k := 0; k < enqueued; k++ {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}

	// Wait for every flight, streaming completions as they land.
	var (
		wg     sync.WaitGroup
		cellMu sync.Mutex
	)
	for _, i := range pending {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fl := flights[i]
			select {
			case <-fl.done:
				results[i], errs[i] = fl.vals, fl.err
				// Stage accounting: a joiner waited on someone else's
				// flight; an enqueuer owns the queue wait and the worker's
				// execution time (the close of fl.done orders the stamp
				// writes before these reads).
				if _, ok := joinedAt[i]; ok {
					tr.Add(StageFlightWait, time.Since(admitted))
				} else if !fl.enqueuedAt.IsZero() && !fl.finishedAt.IsZero() {
					started := fl.startedAt
					if started.IsZero() {
						// Dropped before any worker picked it up (Close).
						started = fl.finishedAt
					}
					qstart := fl.enqueuedAt
					if qstart.Before(admitted) {
						qstart = admitted
					}
					estart := started
					if estart.Before(admitted) {
						estart = admitted
					}
					tr.Add(StageQueueWait, started.Sub(qstart))
					tr.Add(StageExecute, fl.finishedAt.Sub(estart))
				}
				cellMu.Lock()
				if fl.cached && fl.err == nil {
					hits++
				}
				if onCell != nil {
					onCell(i, j.Plan.Cells[i].Key, fl.cached, fl.err)
				}
				cellMu.Unlock()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				// The request expired mid-wait. fl.done never closed, so the
				// worker-side stamps (startedAt/finishedAt) are unsynchronized
				// and must not be read; attribute the whole wait to the stage
				// the cell was in from this request's point of view. Clamped:
				// several cells waiting in parallel cover the same wall time,
				// and the 504's stage sum must not exceed its wall total.
				if _, ok := joinedAt[i]; ok {
					tr.AddClamped(StageFlightWait, time.Since(admitted))
				} else {
					tr.AddClamped(StageQueueWait, time.Since(admitted))
				}
			case <-s.stop:
				errs[i] = ErrStopped
			}
		}(i)
	}
	wg.Wait()

	if ctx.Err() != nil {
		// Abandon: drop this job's interest in every unfinished flight.
		// The last waiter leaving cancels the flight, freeing its worker
		// slot mid-cell and unregistering it so later submitters start
		// fresh instead of joining a dying computation.
		var abandoned []string
		var waitingOn *flight // first unfinished cell, in plan order
		s.mu.Lock()
		depth := s.queued
		for _, i := range pending {
			fl := flights[i]
			select {
			case <-fl.done:
				continue
			default:
			}
			if waitingOn == nil {
				waitingOn = fl
			}
			fl.waiters--
			if fl.waiters == 0 {
				fl.cancel(context.Canceled)
				if s.inflight[fl.addr] == fl {
					delete(s.inflight, fl.addr)
				}
				s.add("serve.cells.abandoned")
				abandoned = append(abandoned, fl.addr)
			}
		}
		s.mu.Unlock()
		// A mid-cell abandonment must be visible in the logs: which client
		// walked away from which cells, and how deep the queue was.
		for _, addr := range abandoned {
			s.cfg.Logger.Info("cell abandoned",
				"request_id", reqID, "client", client,
				"cell_addr", addr, "queue_depth", depth)
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && waitingOn != nil {
			// The request's own deadline fired: name the cell it was still
			// waiting on so the 504 is actionable. The caller (server)
			// fills the timing fields from its trace.
			return nil, hits, &DeadlineError{Addr: waitingOn.addr, Cell: waitingOn.cell.Key}
		}
		return nil, hits, ctx.Err()
	}

	var failed []*bench.CellError
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &bench.CellError{Figure: j.FigID, Key: j.Plan.Cells[i].Key, Err: err})
		}
	}
	if len(failed) > 0 {
		return nil, hits, &bench.CellErrors{Figure: j.FigID, Total: n, Cells: failed}
	}
	return results, hits, nil
}

// worker drains the fair queue until Close.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		t := s.next()
		if t == nil {
			return
		}
		s.execute(t.fl)
	}
}

// next blocks until a task is available (round-robin across clients) or
// the scheduler stops.
func (s *Scheduler) next() *task {
	for {
		s.mu.Lock()
		t := s.pop()
		s.setDepth()
		s.mu.Unlock()
		if t != nil {
			return t
		}
		select {
		case <-s.wake:
		case <-s.stop:
			return nil
		}
	}
}

// pop takes the next task fairly: the client at the front of the rotation
// yields one task and, if it still has work, goes to the back — so a
// client that queued one cell waits behind at most one cell per other
// active client, however deep anyone else's backlog is. Callers hold s.mu.
func (s *Scheduler) pop() *task {
	for len(s.order) > 0 {
		c := s.order[0]
		s.order = s.order[1:]
		q := s.queues[c]
		if len(q) == 0 {
			delete(s.queues, c)
			continue
		}
		t := q[0]
		if len(q) == 1 {
			delete(s.queues, c)
		} else {
			s.queues[c] = q[1:]
			s.order = append(s.order, c)
		}
		s.queued--
		return t
	}
	return nil
}

// execute runs one flight on the calling worker: re-probe the cache
// (another front end may have stored the entry since submission), then run
// the cell body in its own goroutine raced against the flight's context so
// abandonment, drain aborts and watchdog kills release this worker
// immediately. Completed flights unregister before signalling, and
// cancelled results are never cached.
func (s *Scheduler) execute(fl *flight) {
	defer fl.cancel(nil)
	fl.startedAt = time.Now()
	if !fl.enqueuedAt.IsZero() {
		s.observeUS("serve.cell.queue_wait_us", fl.startedAt.Sub(fl.enqueuedAt))
	}
	if s.cfg.Cache != nil {
		if vals, ok := s.cfg.Cache.Load(fl.figID, fl.cell.Key, fl.opts); ok {
			s.add("serve.cells.cached")
			s.finish(fl, vals, true, nil)
			return
		}
	}
	if err := fl.ctx.Err(); err != nil {
		s.finish(fl, nil, false, context.Cause(fl.ctx))
		return
	}
	if s.cfg.CellBudget > 0 {
		// Stuck-cell watchdog: the wall-clock sibling of the simulator's
		// virtual-time deadlock watchdog. The kill is logged with the
		// cell's stage breakdown so the operator sees where the budget
		// went, not just that it went.
		stuck := &StuckCellError{Addr: fl.addr, Figure: fl.figID,
			Cell: fl.cell.Key, Budget: s.cfg.CellBudget}
		timer := time.AfterFunc(s.cfg.CellBudget, func() {
			s.add("serve.cells_killed")
			s.cfg.Logger.Error("stuck cell killed",
				"request_id", fl.reqID, "cell_addr", fl.addr,
				"figure", fl.figID, "cell", fl.cell.Key,
				"budget", s.cfg.CellBudget,
				"queue_wait_us", fl.startedAt.Sub(fl.enqueuedAt).Microseconds(),
				"exec_us", time.Since(fl.startedAt).Microseconds())
			fl.cancel(stuck)
		})
		defer timer.Stop()
	}
	var chaos *InjectedFault
	if s.cfg.Chaos != nil {
		chaos = s.cfg.Chaos(fl.figID, fl.cell.Key, fl.opts)
	}
	type outcome struct {
		vals []bench.Value
		err  error
	}
	out := make(chan outcome, 1)
	go func() {
		var res outcome
		defer func() {
			if p := recover(); p != nil {
				res = outcome{err: fmt.Errorf("panic: %v", p)}
			}
			out <- res
		}()
		if chaos != nil {
			if chaos.Delay > 0 {
				select {
				case <-time.After(chaos.Delay):
				case <-fl.ctx.Done():
					res.err = context.Cause(fl.ctx)
					return
				}
			}
			if chaos.Err != nil {
				res.err = chaos.Err
				return
			}
		}
		res.vals, res.err = fl.cell.Run()
	}()
	select {
	case res := <-out:
		if res.err == nil && s.cfg.Cache != nil {
			if chaos != nil && chaos.TornWrite {
				// Simulate a crash mid-Store: a partial, non-atomic write at
				// the entry's real path. Waiters still get correct values;
				// the damage is only visible to later reads (which must
				// detect and heal it).
				s.tornWrite(fl)
			} else if err := s.cfg.Cache.Store(fl.figID, fl.cell.Key, fl.opts, res.vals); err != nil {
				res.err = err
			}
		}
		s.add("serve.cells.executed")
		if res.err != nil {
			s.cfg.Logger.Warn("cell failed",
				"request_id", fl.reqID, "cell_addr", fl.addr,
				"figure", fl.figID, "cell", fl.cell.Key, "error", res.err)
		}
		s.finish(fl, res.vals, false, res.err)
	case <-fl.ctx.Done():
		s.finish(fl, nil, false, context.Cause(fl.ctx))
	}
}

// tornWrite plants a truncated entry at the flight's cache path — the
// serve-side chaos stand-in for a writer that died mid-write on a
// filesystem that tore the file.
func (s *Scheduler) tornWrite(fl *flight) {
	path := s.cfg.Cache.EntryPath(fl.figID, fl.cell.Key, fl.opts)
	if err := os.WriteFile(path, []byte(`[{"t":0,"r":"torn`), 0o644); err != nil {
		s.cfg.Logger.Warn("chaos torn write failed", "cell_addr", fl.addr, "error", err)
	}
}

// finish publishes a flight's outcome: unregister, stamp, then signal
// waiters (the close of done orders the stamp for readers).
func (s *Scheduler) finish(fl *flight, vals []bench.Value, cached bool, err error) {
	s.mu.Lock()
	if s.inflight[fl.addr] == fl {
		delete(s.inflight, fl.addr)
	}
	s.mu.Unlock()
	fl.vals, fl.cached, fl.err = vals, cached, err
	fl.finishedAt = time.Now()
	if !fl.startedAt.IsZero() {
		s.observeUS("serve.cell.exec_us", fl.finishedAt.Sub(fl.startedAt))
	}
	close(fl.done)
}
