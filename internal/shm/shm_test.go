package shm

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestMechanismString(t *testing.T) {
	names := map[Mechanism]string{
		PiP: "PiP", POSIX: "POSIX-SHMEM", CMA: "CMA", XPMEM: "XPMEM", KNEM: "KNEM",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Mechanism(99).String() == "" {
		t.Error("unknown mechanism produced empty string")
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.CopyBandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero copy bandwidth accepted")
	}
	bad = DefaultParams()
	bad.SyscallCost = -1
	if bad.Validate() == nil {
		t.Fatal("negative syscall cost accepted")
	}
	if _, err := NewNode(bad); err == nil {
		t.Fatal("NewNode accepted bad params")
	}
	// NaN/Inf sail through ordered comparisons, so Validate must reject
	// them explicitly.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad = DefaultParams()
		bad.CopyBandwidth = v
		if bad.Validate() == nil {
			t.Errorf("copy bandwidth %v accepted", v)
		}
		bad = DefaultParams()
		bad.NodeMemBandwidth = v
		if bad.Validate() == nil {
			t.Errorf("node memory bandwidth %v accepted", v)
		}
	}
}

func TestMemcpyMovesBytesAndChargesTime(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	e := simtime.NewEngine()
	src := []byte("the quick brown fox jumps over the lazy dog....")
	dst := make([]byte, len(src))
	e.Spawn("p", func(p *simtime.Proc) {
		before := p.Now()
		nd.Memcpy(p, dst, src)
		want := simtime.TransferTime(len(src), nd.Params().CopyBandwidth)
		if got := p.Now().Sub(before); got != want {
			t.Errorf("memcpy charged %v, want %v", got, want)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("memcpy did not move bytes")
	}
	if s := nd.Stats(); s.Copies != 1 || s.Bytes != int64(len(src)) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemcpyLengthMismatchPanics(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		nd.Memcpy(p, make([]byte, 3), make([]byte, 4))
	})
	if err := e.Run(); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestTransferCostOrdering(t *testing.T) {
	// For a medium message, the paper's ordering must hold:
	// PiP (single copy, no syscall) < XPMEM warm < CMA < KNEM, and
	// POSIX double copy worse than single copy mechanisms at size.
	nd := MustNewNode(DefaultParams())
	const n = 64 << 10
	pip := nd.TransferCost(PiP, 0, 1, n)
	posix := nd.TransferCost(POSIX, 0, 1, n)
	_ = nd.TransferCost(XPMEM, 0, 1, n) // cold: includes attach
	xpmemWarm := nd.TransferCost(XPMEM, 0, 1, n)
	cma := nd.TransferCost(CMA, 0, 1, n)
	knem := nd.TransferCost(KNEM, 0, 1, n)
	if !(pip < xpmemWarm+1 && xpmemWarm < cma && cma < knem) {
		t.Errorf("ordering violated: pip=%v xpmem=%v cma=%v knem=%v", pip, xpmemWarm, cma, knem)
	}
	if posix <= cma {
		t.Errorf("POSIX double copy %v should exceed CMA %v at 64kB", posix, cma)
	}
}

func TestSmallMessageOrdering(t *testing.T) {
	// For tiny messages the syscall mechanisms must lose to POSIX and PiP:
	// this is the premise of the paper's small-message analysis.
	nd := MustNewNode(DefaultParams())
	const n = 16
	posix := nd.TransferCost(POSIX, 0, 1, n)
	cma := nd.TransferCost(CMA, 0, 1, n)
	knem := nd.TransferCost(KNEM, 0, 1, n)
	pip := nd.TransferCost(PiP, 0, 1, n)
	if posix >= cma || posix >= knem {
		t.Errorf("POSIX %v should beat syscall mechanisms (cma=%v knem=%v) at 16B", posix, cma, knem)
	}
	if pip >= cma {
		t.Errorf("PiP copy %v should beat CMA %v at 16B", pip, cma)
	}
}

func TestXPMEMAttachCachedPerPair(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	const n = 1024
	cold := nd.TransferCost(XPMEM, 2, 3, n)
	warm := nd.TransferCost(XPMEM, 2, 3, n)
	otherPair := nd.TransferCost(XPMEM, 3, 2, n)
	if cold <= warm {
		t.Errorf("cold %v should exceed warm %v", cold, warm)
	}
	if otherPair != cold {
		t.Errorf("distinct pair should pay attach again: %v vs %v", otherPair, cold)
	}
	if nd.Stats().Attaches != 2 {
		t.Errorf("attaches = %d, want 2", nd.Stats().Attaches)
	}
	nd.ResetAttachCache()
	if again := nd.TransferCost(XPMEM, 2, 3, n); again != cold {
		t.Errorf("after reset, attach should be paid again: %v vs %v", again, cold)
	}
}

func TestSizeSyncCounts(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		nd.SizeSync(p)
		if p.Now() != simtime.Time(0).Add(nd.Params().PiPSizeSync) {
			t.Errorf("size sync charged %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if nd.Stats().SizeSyncs != 1 {
		t.Fatalf("size syncs = %d", nd.Stats().SizeSyncs)
	}
}

func TestReduceFloat64(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	e := simtime.NewEngine()
	acc := []float64{1, 2, 3}
	src := []float64{10, 20, 30}
	e.Spawn("p", func(p *simtime.Proc) {
		nd.ReduceFloat64(p, acc, src, func(a, b float64) float64 { return a + b })
		want := simtime.TransferTime(24, nd.Params().ReduceBandwidth)
		if p.Now() != simtime.Time(0).Add(want) {
			t.Errorf("reduce charged %v, want %v", p.Now(), want)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{11, 22, 33} {
		if acc[i] != want {
			t.Fatalf("acc = %v", acc)
		}
	}
}

func TestReduceLengthMismatchPanics(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		nd.ReduceFloat64(p, make([]float64, 2), make([]float64, 3), func(a, b float64) float64 { return a })
	})
	if err := e.Run(); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestUnknownMechanismPanics(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mechanism accepted")
		}
	}()
	nd.TransferCost(Mechanism(42), 0, 1, 8)
}

// Property: every mechanism's transfer cost is monotone in message size and
// scales at least linearly past the fixed overheads.
func TestTransferCostMonotone(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mech := []Mechanism{PiP, POSIX, CMA, XPMEM, KNEM}[rng.Intn(5)]
		a := rng.Intn(1 << 20)
		b := a + 1 + rng.Intn(1<<20)
		// Warm the attach cache so XPMEM compares copy cost only.
		nd.TransferCost(mech, 0, 1, 1)
		ca := nd.TransferCost(mech, 0, 1, a)
		cb := nd.TransferCost(mech, 0, 1, b)
		return cb >= ca
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Memcpy is exact for arbitrary payloads.
func TestMemcpyProperty(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	f := func(data []byte) bool {
		dst := make([]byte, len(data))
		e := simtime.NewEngine()
		e.Spawn("p", func(p *simtime.Proc) { nd.Memcpy(p, dst, data) })
		if err := e.Run(); err != nil {
			return false
		}
		return bytes.Equal(dst, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemContentionDisabledByDefault(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	e := simtime.NewEngine()
	const n = 1 << 20
	per := simtime.TransferTime(n, nd.Params().CopyBandwidth)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("c%d", i), func(p *simtime.Proc) {
			nd.Memcpy(p, make([]byte, n), make([]byte, n))
			if p.Now() != simtime.Time(0).Add(per) {
				t.Errorf("copier %d took %v, want uncontended %v", i, p.Now(), per)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemContentionSerializesAggregate(t *testing.T) {
	params := DefaultParams()
	params.NodeMemBandwidth = params.CopyBandwidth // aggregate == one core
	nd := MustNewNode(params)
	e := simtime.NewEngine()
	const n = 1 << 20
	per := simtime.TransferTime(n, params.CopyBandwidth)
	var latest simtime.Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("c%d", i), func(p *simtime.Proc) {
			nd.Memcpy(p, make([]byte, n), make([]byte, n))
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Four concurrent copies through a port as fast as one core must
	// serialize: the last finishes at ~4x the single-copy time.
	if want := simtime.Time(0).Add(4 * per); latest != want {
		t.Fatalf("last copier finished at %v, want %v", latest, want)
	}
}

func TestMemContentionValidation(t *testing.T) {
	bad := DefaultParams()
	bad.NodeMemBandwidth = -1
	if bad.Validate() == nil {
		t.Fatal("negative node memory bandwidth accepted")
	}
}

func TestChargeTransferAppliesMechanismCost(t *testing.T) {
	nd := MustNewNode(DefaultParams())
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		before := p.Now()
		nd.ChargeTransfer(p, CMA, 0, 1, 4096)
		want := nd.Params().SyscallCost + nd.Params().PageFaultCost +
			simtime.TransferTime(4096, nd.Params().CopyBandwidth)
		if got := p.Now().Sub(before); got != want {
			t.Errorf("ChargeTransfer charged %v, want %v", got, want)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
