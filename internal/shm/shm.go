// Package shm models the intranode data paths the paper compares: PiP
// userspace shared address space, POSIX shared-memory bounce buffers, and
// the kernel-assisted mechanisms CMA, XPMEM, KNEM and LiMiC.
//
// Section II of the paper characterizes each mechanism by its copy count and
// system-call profile; those characteristics are exactly this package's cost
// model:
//
//	PiP    — single userspace copy, no syscall; a per-message size
//	         synchronization when used as a drop-in MPI transport
//	         (PiP-MPICH), which PiP-MColl's algorithms avoid.
//	POSIX  — double copy through a bounce buffer (copy-in + copy-out),
//	         no per-message syscall: fast for tiny messages, poor for
//	         medium/large ones.
//	CMA    — single copy via process_vm_readv: one syscall (plus page
//	         faulting) on every transfer.
//	XPMEM  — data sharing: an attach syscall the first time a peer's
//	         buffer region is mapped, then single userspace copies.
//	KNEM/LiMiC — kernel module data exchange: registration plus a
//	         syscall-driven copy per transfer.
//
// Copies are real (bytes actually move through Go slices) so correctness is
// testable; costs are charged to the calling process's virtual clock.
package shm

import (
	"fmt"
	"math"

	"repro/internal/nums"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Mechanism selects an intranode data path.
type Mechanism int

const (
	// PiP is the Process-in-Process shared address space: peers read and
	// write each other's memory directly in userspace.
	PiP Mechanism = iota
	// POSIX is a POSIX shared-memory bounce-buffer transport.
	POSIX
	// CMA is Cross Memory Attach (process_vm_readv/writev).
	CMA
	// XPMEM is the data-sharing kernel module with expose/attach.
	XPMEM
	// KNEM is the kernel-assisted data-exchange module (LiMiC behaves
	// identically at this model's granularity).
	KNEM
)

// String returns the mechanism's conventional name.
func (m Mechanism) String() string {
	switch m {
	case PiP:
		return "PiP"
	case POSIX:
		return "POSIX-SHMEM"
	case CMA:
		return "CMA"
	case XPMEM:
		return "XPMEM"
	case KNEM:
		return "KNEM"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Params calibrate the intranode memory system of one node. Defaults (see
// DefaultParams) approximate a Xeon E5-2695v4 Broadwell socket.
type Params struct {
	// CopyBandwidth is the effective single-core memcpy bandwidth in
	// bytes/s (the Hockney 1/β_r).
	CopyBandwidth float64
	// ReduceBandwidth is the single-core streaming reduction speed in
	// bytes/s (the paper's 1/γ).
	ReduceBandwidth float64
	// Latency is the base intranode handoff latency α_r: cacheline
	// ping-pong to notify a peer.
	Latency simtime.Duration
	// SyscallCost is charged per kernel crossing (CMA, KNEM transfers;
	// XPMEM attach uses AttachCost instead).
	SyscallCost simtime.Duration
	// PageFaultCost is charged per kernel-assisted transfer to model the
	// page pinning/fault overhead the paper attributes to CMA and KNEM.
	PageFaultCost simtime.Duration
	// AttachCost is the one-time XPMEM expose+attach cost per
	// (source local rank, destination local rank) pair.
	AttachCost simtime.Duration
	// RegisterCost is KNEM/LiMiC's per-transfer buffer registration.
	RegisterCost simtime.Duration
	// PiPSizeSync is the per-message size-synchronization overhead PiP
	// imposes when used as a drop-in MPI transport: sender and receiver
	// must agree on the message size before data moves. PiP-MColl's
	// algorithms amortize this via one-shot address posting.
	PiPSizeSync simtime.Duration
	// PostCost is the cost of posting an address/flag to peers in the
	// PiP shared address space (one store plus making it visible).
	PostCost simtime.Duration
	// NodeMemBandwidth optionally caps the node's aggregate copy/reduce
	// bandwidth in bytes/s: when many cores stream concurrently, each
	// operation finishes no earlier than the shared memory system allows
	// (max of its per-core time and its slot on the aggregate port).
	// Zero disables the model (per-core costs only), the default — the
	// paper's Hockney analysis uses per-core β_r, and all recorded
	// experiments run without contention.
	NodeMemBandwidth float64
}

// DefaultParams returns the Broadwell-like calibration used by the paper
// experiments.
func DefaultParams() Params {
	return Params{
		CopyBandwidth:   6.0e9,
		ReduceBandwidth: 3.0e9,
		Latency:         simtime.Nanos(150),
		SyscallCost:     simtime.Nanos(450),
		PageFaultCost:   simtime.Nanos(350),
		AttachCost:      simtime.Nanos(2000),
		RegisterCost:    simtime.Nanos(250),
		PiPSizeSync:     simtime.Nanos(500),
		PostCost:        simtime.Nanos(40),
	}
}

// Validate reports an error for nonsensical parameters.
func (p Params) Validate() error {
	// NaN slips through ordered comparisons (every one is false), so the
	// float fields are checked for finiteness explicitly.
	for _, bw := range []float64{p.CopyBandwidth, p.ReduceBandwidth, p.NodeMemBandwidth} {
		if math.IsNaN(bw) || math.IsInf(bw, 0) {
			return fmt.Errorf("shm: non-finite bandwidth: %+v", p)
		}
	}
	if p.CopyBandwidth <= 0 || p.ReduceBandwidth <= 0 {
		return fmt.Errorf("shm: bandwidths must be positive: %+v", p)
	}
	if p.NodeMemBandwidth < 0 {
		return fmt.Errorf("shm: negative node memory bandwidth: %+v", p)
	}
	for _, d := range []simtime.Duration{
		p.Latency, p.SyscallCost, p.PageFaultCost, p.AttachCost,
		p.RegisterCost, p.PiPSizeSync, p.PostCost,
	} {
		if d < 0 {
			return fmt.Errorf("shm: negative duration parameter: %+v", p)
		}
	}
	return nil
}

// Node models the shared-memory domain of one node: cost accounting plus the
// XPMEM attach cache. It is driven by simtime processes, which serialize all
// access.
type Node struct {
	params   Params
	attached map[[2]int]bool // XPMEM (src local, dst local) attach cache
	memPort  simtime.Station // aggregate memory port (NodeMemBandwidth > 0)
	stats    Stats
	rec      *obs.Recorder
}

// Stats counts intranode traffic for tests and utilization reports.
type Stats struct {
	Copies    int64
	Bytes     int64
	Reduces   int64
	RedBytes  int64
	Syscalls   int64
	Attaches   int64
	SizeSyncs  int64
	Agreements int64
}

// NewNode returns a node-local shared-memory domain.
func NewNode(params Params) (*Node, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Node{params: params, attached: make(map[[2]int]bool)}, nil
}

// MustNewNode is NewNode that panics on error.
func MustNewNode(params Params) *Node {
	n, err := NewNode(params)
	if err != nil {
		panic(err)
	}
	return n
}

// Params returns the node's calibration.
func (nd *Node) Params() Params { return nd.params }

// Observe attaches a recorder: every charged intranode operation is recorded
// as a cost-component path segment on the calling process (copy, reduce,
// size-sync, handoff, post), making PiP's per-message size-synchronization
// overhead explicitly attributable in critical-path reports.
func (nd *Node) Observe(rec *obs.Recorder) { nd.rec = rec }

// segStart returns the timestamp opening a cost segment, or -1 when no
// recorder is attached — untraced runs skip even the clock read, so the
// charge paths do zero observability work.
func (nd *Node) segStart(p *simtime.Proc) simtime.Time {
	if nd.rec == nil {
		return -1
	}
	return p.Now()
}

// seg records [start, now) on p's cost timeline; a -1 start (untraced run,
// see segStart) records nothing.
func (nd *Node) seg(p *simtime.Proc, cat string, start simtime.Time) {
	if start >= 0 && nd.rec != nil {
		nd.rec.PathSegFor(p, cat, start, p.Now())
	}
}

// Stats returns cumulative counters.
func (nd *Node) Stats() Stats { return nd.stats }

// copyCost is the pure data-movement time for n bytes at copy bandwidth.
func (nd *Node) copyCost(n int) simtime.Duration {
	return simtime.TransferTime(n, nd.params.CopyBandwidth)
}

// Memcpy copies src into dst (lengths must match) as a direct userspace copy
// in the PiP shared address space, charging the calling process the
// single-copy cost. This is the primitive PiP-MColl's intranode phases use
// after addresses have been posted.
func (nd *Node) Memcpy(p *simtime.Proc, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("shm: memcpy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
	t0 := nd.segStart(p)
	nd.chargeStreaming(p, nd.copyCost(len(src)), len(src))
	nd.seg(p, "copy", t0)
	nd.stats.Copies++
	nd.stats.Bytes += int64(len(src))
}

// chargeStreaming advances p by a streaming operation's cost: its per-core
// time, stretched by the node's aggregate memory port when that model is
// enabled (the operation occupies the port for bytes/NodeMemBandwidth and
// finishes no earlier than its port slot).
func (nd *Node) chargeStreaming(p *simtime.Proc, perCore simtime.Duration, bytes int) {
	target := p.Now().Add(perCore)
	if nd.params.NodeMemBandwidth > 0 {
		_, done := nd.memPort.Use(p.Now(), simtime.TransferTime(bytes, nd.params.NodeMemBandwidth))
		if done > target {
			target = done
		}
	}
	p.AdvanceTo(target)
}

// Post charges the cost of publishing an address or flag to node peers.
func (nd *Node) Post(p *simtime.Proc) {
	t0 := nd.segStart(p)
	p.Advance(nd.params.PostCost)
	nd.seg(p, "post", t0)
}

// Handoff charges one intranode notification latency α_r.
func (nd *Node) Handoff(p *simtime.Proc) {
	t0 := nd.segStart(p)
	p.Advance(nd.params.Latency)
	nd.seg(p, "handoff", t0)
}

// Agreement charges the cost of one fault-tolerant agreement round over the
// shared address space: a flag post plus one notification latency per
// participating party (each survivor's arrival must become visible to the
// decider). The recovery layer (Comm.Shrink / Comm.Agree) calls this per
// round so membership changes have an honest shared-memory price.
func (nd *Node) Agreement(p *simtime.Proc, parties int) {
	if parties < 1 {
		parties = 1
	}
	t0 := nd.segStart(p)
	p.Advance(nd.params.PostCost + simtime.Duration(parties)*nd.params.Latency)
	nd.stats.Agreements++
	nd.seg(p, "agreement", t0)
	if nd.rec != nil {
		nd.rec.Metrics().Counter("shm.agreements").Add(1)
	}
}

// TransferCost returns the time the mechanism needs to move n bytes between
// two local ranks, charged to whichever side performs the copy under that
// mechanism, and updates mechanism state (attach caches, counters). It does
// not move bytes; callers pair it with a real copy.
func (nd *Node) TransferCost(mech Mechanism, srcLocal, dstLocal, n int) simtime.Duration {
	pr := nd.params
	switch mech {
	case PiP:
		// Single userspace copy; the per-message size sync is charged
		// separately via SizeSync so callers can model sender and
		// receiver sides individually.
		return nd.copyCost(n)
	case POSIX:
		// Double copy through the bounce buffer.
		return 2 * nd.copyCost(n)
	case CMA:
		nd.stats.Syscalls++
		return pr.SyscallCost + pr.PageFaultCost + nd.copyCost(n)
	case XPMEM:
		key := [2]int{srcLocal, dstLocal}
		var attach simtime.Duration
		if !nd.attached[key] {
			nd.attached[key] = true
			nd.stats.Attaches++
			attach = pr.AttachCost
		}
		return attach + nd.copyCost(n)
	case KNEM:
		nd.stats.Syscalls++
		return pr.SyscallCost + pr.PageFaultCost + pr.RegisterCost + nd.copyCost(n)
	default:
		panic(fmt.Sprintf("shm: unknown mechanism %v", mech))
	}
}

// SizeSync charges the PiP per-message size synchronization to the calling
// process. PiP-MPICH pays this on every point-to-point message; PiP-MColl
// pays it never (its algorithms exchange addresses once per collective).
func (nd *Node) SizeSync(p *simtime.Proc) {
	t0 := nd.segStart(p)
	p.Advance(nd.params.PiPSizeSync)
	nd.stats.SizeSyncs++
	if nd.rec != nil {
		nd.rec.PathSegFor(p, "size-sync", t0, p.Now())
		nd.rec.ProcSpan(p, "size-sync", "size-sync", t0, p.Now())
		nd.rec.Metrics().Counter("shm.size-syncs").Add(1)
	}
}

// ReduceFloat64 combines src into acc element-wise with op, charging the
// streaming reduction cost (the paper's γ per byte over both inputs' bytes).
func (nd *Node) ReduceFloat64(p *simtime.Proc, acc, src []float64, op func(a, b float64) float64) {
	if len(acc) != len(src) {
		panic(fmt.Sprintf("shm: reduce length mismatch %d != %d", len(acc), len(src)))
	}
	for i, v := range src {
		acc[i] = op(acc[i], v)
	}
	t0 := nd.segStart(p)
	nd.chargeStreaming(p, simtime.TransferTime(8*len(src), nd.params.ReduceBandwidth), 8*len(src))
	nd.seg(p, "reduce", t0)
	nd.stats.Reduces++
	nd.stats.RedBytes += int64(8 * len(src))
}

// Combine folds src into acc with a nums reduction operator, charging the
// streaming reduction cost over the combined byte count. This is the
// byte-buffer twin of ReduceFloat64 used by the MPI collectives.
func (nd *Node) Combine(p *simtime.Proc, acc, src []byte, op nums.Op) {
	op.Combine(acc, src)
	t0 := nd.segStart(p)
	nd.chargeStreaming(p, simtime.TransferTime(len(src), nd.params.ReduceBandwidth), len(src))
	nd.seg(p, "reduce", t0)
	nd.stats.Reduces++
	nd.stats.RedBytes += int64(len(src))
}

// ChargeTransfer performs the cost side of a mechanism transfer (see
// TransferCost) with aggregate memory contention applied when enabled.
func (nd *Node) ChargeTransfer(p *simtime.Proc, mech Mechanism, srcLocal, dstLocal, n int) {
	t0 := nd.segStart(p)
	nd.chargeStreaming(p, nd.TransferCost(mech, srcLocal, dstLocal, n), n)
	nd.seg(p, "copy", t0)
}

// ResetAttachCache forgets XPMEM attachments, as after a job restart.
func (nd *Node) ResetAttachCache() {
	nd.attached = make(map[[2]int]bool)
}
