package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/simtime"
)

// killWorld builds a world whose fault plan kills the given ranks at the
// given virtual times.
func killWorld(t *testing.T, nodes, ppn int, kills ...fault.KillRank) *World {
	t.Helper()
	return newWorld(t, nodes, ppn, func(cfg *Config) {
		cfg.Faults = fault.MustNew(fault.Spec{KillRanks: kills})
	})
}

// TestKillRankSendFailsFast: sending to a rank already dead fails at op
// entry with the typed error, not a deadlock.
func TestKillRankSendFailsFast(t *testing.T) {
	w := killWorld(t, 2, 1, fault.KillRank{Rank: 1, At: 0})
	var got error
	err := w.Run(func(r *Rank) {
		if r.Rank() != 0 {
			// Rank 1 dies at its first op boundary; give it one.
			r.Proc().Sleep(simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8)) // never executes: dies at entry
			return
		}
		r.Proc().Sleep(10 * simtime.Microsecond) // let rank 1 die first
		got = Try(func() { r.Send(1, 1, make([]byte, 8)) })
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	var pf *ProcFailedError
	if !errors.As(got, &pf) || pf.Rank != 1 {
		t.Fatalf("want ProcFailedError{Rank:1}, got %v", got)
	}
	if !w.Dead(1) || w.Dead(0) {
		t.Fatalf("dead set wrong: %v", w.DeadRanks())
	}
}

// TestKillRankRecvDetectedAtQuiescence: a receive blocked on a rank that
// dies later is failed by the quiescence detector with the typed error —
// the case that used to be a watchdog deadlock.
func TestKillRankRecvDetectedAtQuiescence(t *testing.T) {
	kill := simtime.Time(5 * simtime.Microsecond)
	w := killWorld(t, 2, 1, fault.KillRank{Rank: 1, At: kill})
	var got error
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Proc().Sleep(10 * simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8)) // dies at entry instead
			return
		}
		buf := make([]byte, 8)
		got = Try(func() { r.Recv(1, 1, buf) })
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	var pf *ProcFailedError
	if !errors.As(got, &pf) {
		t.Fatalf("want ProcFailedError, got %v", got)
	}
	if pf.Rank != 1 {
		t.Fatalf("wrong dead peer %d", pf.Rank)
	}
	if pf.DetectedAt < kill {
		t.Fatalf("detected at %v, before the kill at %v", pf.DetectedAt, kill)
	}
}

// TestKillDeliveredWhileBlocked: the rank is parked inside an operation when
// its kill time passes — the quiescence detector delivers the death into the
// blocked wait (no op boundary is ever reached) and the peer still gets the
// typed error, not a deadlock.
func TestKillDeliveredWhileBlocked(t *testing.T) {
	kill := simtime.Time(5 * simtime.Microsecond)
	w := killWorld(t, 2, 1, fault.KillRank{Rank: 1, At: kill})
	var got error
	err := w.Run(func(r *Rank) {
		buf := make([]byte, 8)
		if r.Rank() == 1 {
			r.Recv(0, 1, buf) // blocks forever; dies in place at 5us
			return
		}
		got = Try(func() { r.Recv(1, 1, buf) })
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	var pf *ProcFailedError
	if !errors.As(got, &pf) || pf.Rank != 1 {
		t.Fatalf("want ProcFailedError{Rank:1}, got %v", got)
	}
	if pf.DetectedAt < kill {
		t.Fatalf("detected at %v, before the kill at %v", pf.DetectedAt, kill)
	}
	if !w.Dead(1) {
		t.Fatal("blocked-kill path did not execute death bookkeeping")
	}
	if len(w.DeadRanks()) != 1 {
		t.Fatalf("dead ranks %v", w.DeadRanks())
	}
}

// TestKillUnhandledEscapesAsTypedError: without a Try, the detection unwinds
// the rank body and World.Run returns the typed error itself.
func TestKillUnhandledEscapesAsTypedError(t *testing.T) {
	w := killWorld(t, 2, 1, fault.KillRank{Rank: 1, At: 0})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Proc().Sleep(simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8))
			return
		}
		r.Recv(1, 1, make([]byte, 8))
	})
	var pf *ProcFailedError
	if !errors.As(err, &pf) || pf.Rank != 1 {
		t.Fatalf("want ProcFailedError{Rank:1} from Run, got %v", err)
	}
}

// TestKillNodeKillsAllItsRanks: a node death kills every rank placed on it.
func TestKillNodeKillsAllItsRanks(t *testing.T) {
	w := newWorld(t, 2, 2, func(cfg *Config) {
		cfg.Faults = fault.MustNew(fault.Spec{KillNodes: []fault.KillNode{{Node: 1, At: 0}}})
	})
	var got error
	err := w.Run(func(r *Rank) {
		if r.Node() == 1 {
			r.Proc().Sleep(simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8))
			return
		}
		if r.Rank() == 0 {
			r.Proc().Sleep(10 * simtime.Microsecond)
			got = Try(func() { r.Recv(2, 1, make([]byte, 8)) })
		}
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	var pf *ProcFailedError
	if !errors.As(got, &pf) || pf.Rank != 2 {
		t.Fatalf("want ProcFailedError{Rank:2}, got %v", got)
	}
	if !reflect.DeepEqual(w.DeadRanks(), []int{2, 3}) {
		t.Fatalf("dead ranks %v, want [2 3] (node 1)", w.DeadRanks())
	}
}

// TestShrinkRebuildsDenseComm: after a death, Shrink yields a dense
// communicator of the survivors with re-derived node leaders, agreed across
// all callers.
func TestShrinkRebuildsDenseComm(t *testing.T) {
	w := newWorld(t, 2, 2, nil) // ranks 0,1 on node 0; 2,3 on node 1
	// No fault plan: mark rank 1 dead by hand through the kill path to test
	// Shrink in isolation from detection.
	w.hasKills = true
	var mu []string
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			w.killRank(r, r.Now())
			return // dead: never calls Shrink
		}
		nc := WorldComm(r).Shrink()
		mu = append(mu, fmt.Sprintf("r%d:me=%d size=%d members=%v leaders=%v",
			r.Rank(), nc.Rank(), nc.Size(), nc.WorldRanks(), nc.NodeLeaders()))
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	want := []string{
		"r0:me=0 size=3 members=[0 2 3] leaders=[0 1]",
		"r2:me=1 size=3 members=[0 2 3] leaders=[0 1]",
		"r3:me=2 size=3 members=[0 2 3] leaders=[0 1]",
	}
	sort.Strings(mu)
	if !reflect.DeepEqual(mu, want) {
		t.Fatalf("shrink results:\n got %v\nwant %v", mu, want)
	}
}

// TestAgreeSurvivesFailure: a member dying mid-round completes the round for
// the survivors instead of wedging it; the agreed value ANDs only the
// arrived contributions and ok reports the death.
func TestAgreeSurvivesFailure(t *testing.T) {
	w := killWorld(t, 2, 2, fault.KillRank{Rank: 3, At: 0})
	type res struct {
		val uint64
		ok  bool
	}
	got := map[int]res{}
	err := w.Run(func(r *Rank) {
		if r.Rank() == 3 {
			r.Proc().Sleep(simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8)) // dies here, before agreeing
			return
		}
		v, ok := WorldComm(r).Agree(1)
		got[r.Rank()] = res{v, ok}
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	for _, rank := range []int{0, 1, 2} {
		if got[rank] != (res{1, false}) {
			t.Fatalf("rank %d agreed %+v, want {1 false}", rank, got[rank])
		}
	}
}

// TestAgreeAllAlive: with nobody dead, Agree is a plain AND with ok=true.
func TestAgreeAllAlive(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	run(t, w, func(r *Rank) {
		contrib := uint64(1)
		if r.Rank() == 2 {
			contrib = 0 // one dissenter
		}
		v, ok := WorldComm(r).Agree(contrib)
		if v != 0 || !ok {
			panic(fmt.Sprintf("rank %d: agree = (%d, %v), want (0, true)", r.Rank(), v, ok))
		}
	})
}

// TestRevokeFailsFast: collectives on a revoked communicator fail with
// RevokedError at the next tag-window draw.
func TestRevokeFailsFast(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		c := WorldComm(r)
		c.Revoke()
		if !c.Revoked() {
			panic("comm not revoked")
		}
		err := Try(func() { c.NextWindow() })
		var re *RevokedError
		if !errors.As(err, &re) {
			panic(fmt.Sprintf("want RevokedError, got %v", err))
		}
	})
}

// TestDeadlockErrorFormat pins the diagnosis format: virtual wedge time and
// the dead-peer annotation (satellite: DeadlockError bugfix).
func TestDeadlockErrorFormat(t *testing.T) {
	// A plain deadlock first: rank 0 waits forever on rank 1, which exited.
	w := newWorld(t, 2, 1, nil)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 7, make([]byte, 8))
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	msg := de.Error()
	want := fmt.Sprintf("mpi: deadlock at %v, 1 rank(s) blocked: rank0 blocked in recv (src=1, tag=7) since %v, waits on rank 1 (exited)",
		de.At, de.Blocked[0].Since)
	if msg != want {
		t.Fatalf("deadlock message:\n got %q\nwant %q", msg, want)
	}
	if !de.Blocked[0].PeerExited || de.Blocked[0].PeerDead {
		t.Fatalf("peer annotation wrong: %+v", de.Blocked[0])
	}

	// Dead-peer annotation: rank 0 is already blocked (its entry check saw a
	// live peer) when rank 1 dies at its sleep-resume op boundary; with the
	// detector budget forced to zero the wedge surfaces as the raw diagnosed
	// deadlock, annotated with the peer's death.
	w = killWorld(t, 2, 1, fault.KillRank{Rank: 1, At: 0})
	w.fdBudget = 0
	err = w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Proc().Sleep(simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8)) // unreached: dies at sleep resume
			return
		}
		r.Recv(1, 9, make([]byte, 8))
	})
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError with detector disabled, got %v", err)
	}
	if !strings.HasPrefix(de.Error(), fmt.Sprintf("mpi: deadlock at %v, ", de.At)) {
		t.Fatalf("missing wedge time: %q", de.Error())
	}
	if !strings.Contains(de.Error(), "waits on rank 1 (dead)") {
		t.Fatalf("missing dead-peer annotation: %q", de.Error())
	}
}

// TestShrinkAgainAfterSecondDeath: the recovery idiom — a member dying after
// a shrink publishes leaves it in the shrunk comm; shrinking again drops it.
func TestShrinkAgainAfterSecondDeath(t *testing.T) {
	w := killWorld(t, 2, 2,
		fault.KillRank{Rank: 1, At: 0},
		fault.KillRank{Rank: 2, At: simtime.Time(40 * simtime.Microsecond)})
	sizes := map[int][]int{}
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Proc().Sleep(simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8))
			return
		}
		c := WorldComm(r).Shrink() // drops rank 1 (needs its death first —
		// rank 1 dies at its op entry at 1µs; callers arriving earlier wait)
		sizes[r.Rank()] = append(sizes[r.Rank()], c.Size())
		if r.Rank() == 2 {
			r.Proc().Sleep(50 * simtime.Microsecond)
			r.Send(0, 1, make([]byte, 8)) // dies here (kill at 40µs)
			return
		}
		c2 := c.Shrink() // rank 2 never arrives; its death completes the round
		sizes[r.Rank()] = append(sizes[r.Rank()], c2.Size())
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	if !reflect.DeepEqual(sizes[0], []int{3, 2}) || !reflect.DeepEqual(sizes[3], []int{3, 2}) {
		t.Fatalf("shrink sizes: %v", sizes)
	}
}

// TestKillPlanDeterminism: two runs from the same spec produce identical
// horizons, dead sets and detection errors.
func TestKillPlanDeterminism(t *testing.T) {
	runOnce := func() (simtime.Time, []int, string) {
		w := killWorld(t, 2, 2, fault.KillRank{Rank: 2, At: simtime.Time(3 * simtime.Microsecond)})
		errs := map[int]string{}
		if err := w.Run(func(r *Rank) {
			if r.Rank() == 2 {
				r.Proc().Sleep(5 * simtime.Microsecond)
				r.Send(0, 1, make([]byte, 8))
				return
			}
			if e := Try(func() { r.Recv(2, 1, make([]byte, 64)) }); e != nil {
				errs[r.Rank()] = e.Error()
			}
		}); err != nil {
			t.Fatalf("world run: %v", err)
		}
		return w.Horizon(), w.DeadRanks(), fmt.Sprint(errs)
	}
	h1, d1, e1 := runOnce()
	h2, d2, e2 := runOnce()
	if h1 != h2 || !reflect.DeepEqual(d1, d2) || e1 != e2 {
		t.Fatalf("nondeterministic: (%v %v %q) vs (%v %v %q)", h1, d1, e1, h2, d2, e2)
	}
}

// TestNodeLeadersWorld: leader derivation on the intact world communicator.
func TestNodeLeadersWorld(t *testing.T) {
	w := newWorld(t, 3, 2, nil)
	run(t, w, func(r *Rank) {
		got := WorldComm(r).NodeLeaders()
		if !reflect.DeepEqual(got, []int{0, 2, 4}) {
			panic(fmt.Sprintf("leaders %v", got))
		}
	})
}

// TestKillSpecValidate: nonsense kill specs are refused.
func TestKillSpecValidate(t *testing.T) {
	if err := (fault.Spec{KillRanks: []fault.KillRank{{Rank: -1}}}).Validate(); err == nil {
		t.Fatal("negative kill rank accepted")
	}
	if err := (fault.Spec{KillNodes: []fault.KillNode{{Node: 0, At: -1}}}).Validate(); err == nil {
		t.Fatal("negative kill time accepted")
	}
	// Kill sections append to the plan fingerprint (cache-key fragment).
	p := fault.MustNew(fault.Spec{KillRanks: []fault.KillRank{{Rank: 3, At: simtime.Time(simtime.Microsecond)}}})
	if s := p.String(); !strings.Contains(s, "kill(r3@1us)") {
		t.Fatalf("fingerprint misses kill: %q", s)
	}
	if p2 := fault.MustNew(fault.Spec{}); strings.Contains(p2.String(), "kill") {
		t.Fatalf("kill-free fingerprint mentions kill: %q", p2.String())
	}
}
