package mpi

import (
	"fmt"

	"repro/internal/simtime"
)

// Async support: a rank can offload work — typically a whole collective —
// onto a helper process that shares its identity (rank number, node, fabric
// endpoint, PiP environment) but runs on its own virtual clock, modelling
// the progress thread / communication offload that makes nonblocking
// collectives overlap with computation.
//
// Epoch discipline: the helper draws collective epochs from a private band
// ((1<<30) | asyncSeq<<16), disjoint from the parent's world epochs and
// from communicator windows, and consistent across ranks because MPI
// semantics keep the per-rank async sequence numbers in lockstep. A helper
// may start at most 2^16 collectives; a rank may start at most 2^14 async
// operations.

const (
	asyncEpochBase = 1 << 30
	maxAsyncSeq    = 1 << 14
	asyncEpochSpan = 1 << 16
)

// AsyncOp is a pending asynchronous operation. Complete it with Wait from
// the parent rank's process.
type AsyncOp struct {
	done *simtime.Flag
	err  any
}

// Wait blocks the parent until the helper finishes. The parent's clock
// advances to the helper's completion time if that is later — the overlap
// benefit shows up as the parent paying only the *excess* of communication
// over its own computation.
func (a *AsyncOp) Wait(r *Rank) {
	a.done.Wait(r.proc)
	if a.err != nil {
		panic(a.err)
	}
}

// Async runs body on a helper process sharing this rank's identity and
// returns immediately. The helper starts at the caller's current virtual
// time. body receives the helper's rank handle, which must be used for all
// communication inside; the parent must not issue conflicting collectives
// concurrently (matching MPI's nonblocking-collective ordering rules:
// all ranks start the same nonblocking collectives in the same order).
func (r *Rank) Async(body func(ar *Rank)) *AsyncOp {
	r.asyncSeq++
	if r.asyncSeq >= maxAsyncSeq {
		panic("mpi: rank exceeded its async-operation budget (2^14)")
	}
	op := &AsyncOp{done: &simtime.Flag{}}
	helper := *r // shares world, rank id, env, endpoint
	helper.epoch = asyncEpochBase | uint64(r.asyncSeq)<<16
	helper.epochLimit = helper.epoch + asyncEpochSpan
	// The copied matchFn closes over the parent's match fields; rebuild it
	// so the helper's receives cannot clobber a parked parent receive. The
	// request freelist likewise must not be shared with the parent.
	helper.initMatch()
	helper.reqFree = nil
	r.proc.Spawn(fmt.Sprintf("rank%d/async%d", r.rank, r.asyncSeq), func(p *simtime.Proc) {
		helper.proc = p
		defer func() {
			if v := recover(); v != nil {
				op.err = v
			}
			op.done.Set(p, nil)
		}()
		body(&helper)
	})
	return op
}
