package mpi

// ULFM-style fault tolerance: permanent fail-stop rank death, failure
// detection, and the recovery primitives (Comm.Revoke, Comm.Shrink,
// Comm.Agree) modeled on MPI's User-Level Failure Mitigation proposal.
//
// Failure model. A fault.KillRank/KillNode spec declares that a rank dies
// permanently at a virtual time. Death is cooperative fail-stop: the rank
// stops at its next operation boundary (op entry or resumption from a
// blocking wait) at or after its kill time — a rank mid-computation finishes
// the computation first, exactly like a real process that only observes
// signals at cancellation points. A dead rank's fabric endpoint drops all
// traffic and its process unwinds and exits; it sends nothing ever again.
//
// Detection. Two paths, both yielding *ProcFailedError:
//
//   - Fail-fast at op entry: an operation naming a peer already known dead
//     (send, receive or probe with a concrete source) fails immediately.
//   - Quiescence backstop: an operation blocked on traffic that a death made
//     unsatisfiable is failed by the world's quiescence handler — when the
//     event queue drains with processes parked, pending kills are delivered
//     first, then every blocked rank is failed with a typed error naming the
//     dead peer. Detection latency on this path is "until global
//     quiescence": the error's DetectedAt is the virtual time the simulation
//     wedged, which is when a real runtime's failure detector would be the
//     only source of progress too.
//
// Both paths unwind the blocked operation as a panic; Try converts the
// unwind into an error return, and World.Run converts an unhandled unwind
// into the same typed error. Buffer-state contract: when an operation
// returns ProcFailedError, the caller's receive buffers are in an undefined
// intermediate state; survivor ranks must re-run the operation on a shrunk
// communicator to obtain defined results (see internal/recover).
//
// Recovery. Comm.Shrink and Comm.Agree are built on monotone shared state
// (the PiP shared address space the simulated runtime already assumes):
// each round keeps per-member arrival flags, completes when every member
// has either arrived or died, and is re-checked on every death — so late
// deaths can complete a round, retries are idempotent, and the primitives
// themselves survive failures, as ULFM requires of MPI_Comm_agree.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simtime"
)

// killNever is the kill-time sentinel for ranks the plan never kills.
const killNever = simtime.Time(math.MaxInt64)

// ProcFailedError reports that an MPI operation could not complete because a
// participating rank died (MPI_ERR_PROC_FAILED). Rank is the dead peer;
// DetectedAt is the virtual time the failure was detected — at op entry for
// a peer already known dead, or at global quiescence for an operation the
// death left blocked.
type ProcFailedError struct {
	Rank       int
	DetectedAt simtime.Time
	// Schedule is the schedule certificate of the interleaving that raised
	// the failure, set when the run was driven by a certifying chooser
	// (schedule exploration); "" otherwise.
	Schedule string
}

func (e *ProcFailedError) Error() string {
	s := fmt.Sprintf("mpi: rank %d failed (detected at %v)", e.Rank, e.DetectedAt)
	if e.Schedule != "" {
		s += " [schedule " + e.Schedule + "]"
	}
	return s
}

// RevokedError reports an operation on a communicator that a member revoked
// (MPI_ERR_REVOKED).
type RevokedError struct {
	CommID uint64
}

func (e *RevokedError) Error() string {
	return fmt.Sprintf("mpi: communicator %d revoked", e.CommID)
}

// rankKilled is the unwind token of the rank's own death. It propagates as a
// panic through every frame of the dying rank (including async-helper
// round trips) and is swallowed by the rank body wrapper in World.Run; it is
// deliberately not an error — the dead rank has no caller to report to.
type rankKilled struct{ rank int }

// Try runs op and converts a ULFM failure unwind — *ProcFailedError or
// *RevokedError — into an error return, leaving every other panic (including
// the caller's own death) untouched. It is the boundary between the MPI
// layer's panic-based error propagation (collectives have no error returns,
// as in the standard) and recovery code that handles failures:
//
//	err := mpi.Try(func() { lib.Allreduce(r, buf, n) })
//	var pf *mpi.ProcFailedError
//	if errors.As(err, &pf) { ... shrink and retry ... }
func Try(op func()) (err error) {
	defer func() {
		switch v := recover().(type) {
		case nil:
		case *ProcFailedError:
			err = v
		case *RevokedError:
			err = v
		default:
			panic(v)
		}
	}()
	op()
	return nil
}

// --- death bookkeeping ---------------------------------------------------

// checkSelfKill dies if this rank's kill time has arrived (or the rank is
// already marked dead — an async helper sharing the rank's identity may have
// died first). Callers gate on w.hasKills so fault-free runs pay nothing.
func (r *Rank) checkSelfKill() {
	w := r.world
	if w.dead[r.rank] {
		panic(rankKilled{r.rank})
	}
	if w.killAt[r.rank] <= r.proc.Now() {
		w.killRank(r, r.proc.Now())
		panic(rankKilled{r.rank})
	}
}

// checkPeerDead fails fast when an operation names a peer already known
// dead. Callers gate on w.hasKills.
func (r *Rank) checkPeerDead(op string, peer int) {
	w := r.world
	if peer < 0 || !w.dead[peer] {
		return
	}
	now := r.proc.Now()
	if w.rec != nil {
		w.rec.FailureDetected(r.proc, op, peer, now, now)
	}
	panic(&ProcFailedError{Rank: peer, DetectedAt: now, Schedule: w.engine.Certificate()})
}

// killRank executes a rank's death in the dying process's own context:
// membership state, the fabric endpoint, metrics, and any agreement rounds
// the death completes. Idempotent — async helper copies of a dead rank
// re-enter with the rank already marked.
func (w *World) killRank(r *Rank, at simtime.Time) {
	if w.dead[r.rank] {
		return
	}
	w.dead[r.rank] = true
	w.deadAt[r.rank] = at
	w.deadCount++
	w.fab.KillEndpoint(r.ep)
	if p := w.procs[r.rank]; p != nil {
		p.MarkDead()
	}
	if w.rec != nil {
		w.rec.ProcKilled(r.proc, r.rank, at)
	}
	// A death can complete pending Shrink/Agree rounds: the dead member
	// will never arrive, so rounds waiting only on it publish now, from
	// this (still-running) process's context.
	for _, rd := range w.rounds {
		w.tryPublish(rd, r.proc)
	}
}

// Dead reports whether a world rank has died.
func (w *World) Dead(rank int) bool { return w.dead[rank] }

// DeadRanks returns the world ranks that have died, ascending.
func (w *World) DeadRanks() []int {
	var out []int
	for rank, d := range w.dead {
		if d {
			out = append(out, rank)
		}
	}
	return out
}

// --- quiescence failure detector -----------------------------------------

// onQuiesce is the engine's quiescence handler (installed only when the
// fault plan kills somebody): the event queue has drained with processes
// still parked, so nothing can progress without intervention. In priority
// order it (1) delivers kills already due to parked ranks — a rank blocked
// past its kill time dies in place; (2) once deaths exist, fails every
// parked process not waiting inside a Shrink/Agree round with a typed
// ProcFailedError naming a dead peer; (3) if only agreement waiters remain,
// fails those too — their round is missing a member that exited without
// calling, and can never complete; (4) with nothing due and nobody
// detectable, jumps the clock to the earliest future kill — only that one,
// so staggered kill plans produce staggered recoveries rather than one
// collapsed mass failure. A firing budget bounds the handler against
// livelock; exhausting it falls through to the deadlock report.
func (w *World) onQuiesce(at simtime.Time) bool {
	if w.fdBudget <= 0 {
		return false
	}
	acted := false

	// (1) Kills already due: a parked rank whose kill time is at or before
	// the wedge dies now. The death executes in the rank's own context when
	// its unwind reaches the body wrapper.
	w.engine.ForEachParked(func(p *simtime.Proc) {
		rank := p.ID()
		if rank >= len(w.ranks) || w.dead[rank] || w.killAt[rank] == killNever {
			return
		}
		if w.killAt[rank] > at {
			return // future kill: last resort only, phase (4)
		}
		w.engine.Fail(p, rankKilled{rank}, at)
		acted = true
	})
	if acted {
		w.fdBudget--
		return true
	}

	if w.deadCount > 0 {
		// (2) Fail blocked processes outside agreement rounds.
		fail := func(p *simtime.Proc) {
			peer := w.blockedOnDead(p)
			if w.rec != nil {
				w.rec.FailureDetected(p, "blocked", peer, p.Now(), at)
			}
			w.engine.Fail(p, &ProcFailedError{Rank: peer, DetectedAt: at,
				Schedule: w.engine.Certificate()}, at)
			acted = true
		}
		w.engine.ForEachParked(func(p *simtime.Proc) {
			if rank := p.ID(); rank < len(w.ranks) && w.ranks[rank].agreeing {
				return
			}
			fail(p)
		})
		if acted {
			w.fdBudget--
			return true
		}

		// (3) Only agreement waiters remain, and no death or arrival is
		// coming: their rounds can never complete (a member exited without
		// calling).
		w.engine.ForEachParked(fail)
		if acted {
			w.fdBudget--
			return true
		}
	}

	// (4) Nothing is due and nobody is detectably stuck: the wedge can only
	// be broken by a kill still in the future. Advance to the earliest one.
	next := killNever
	w.engine.ForEachParked(func(p *simtime.Proc) {
		rank := p.ID()
		if rank >= len(w.ranks) || w.dead[rank] || w.killAt[rank] == killNever {
			return
		}
		if w.killAt[rank] < next {
			next = w.killAt[rank]
		}
	})
	if next == killNever {
		return false // wedged for reasons other than death: plain deadlock
	}
	w.engine.ForEachParked(func(p *simtime.Proc) {
		rank := p.ID()
		if rank >= len(w.ranks) || w.dead[rank] || w.killAt[rank] != next {
			return
		}
		w.engine.Fail(p, rankKilled{rank}, simtime.MaxTime(at, next))
		acted = true
	})
	if acted {
		w.fdBudget--
	}
	return acted
}

// blockedOnDead picks the dead rank to blame in a detection error: the peer
// the process is known to wait on when that peer is dead, else the lowest
// dead rank.
func (w *World) blockedOnDead(p *simtime.Proc) int {
	if on := p.WaitsOn(); on >= 0 && on < len(w.dead) && w.dead[on] {
		return on
	}
	for rank, d := range w.dead {
		if d {
			return rank
		}
	}
	return -1 // unreachable: callers check deadCount > 0
}

// --- fault-tolerant agreement and shrink ---------------------------------

// Round kinds.
const (
	roundShrink = byte('S')
	roundAgree  = byte('A')
)

// roundKey identifies one agreement round: all members of a communicator
// call Shrink/Agree in the same order (MPI collective semantics), so the
// per-rank call counters stay in lockstep and the key names the same round
// everywhere, across retries included.
type roundKey struct {
	comm uint64
	kind byte
	seq  uint64
}

// ftRound is the world-shared state of one Shrink/Agree round. Monotone by
// construction: arrivals and deaths only add information, and the round
// publishes exactly once, when every member has either arrived or died.
type ftRound struct {
	kind      byte
	members   []int  // world ranks, comm order
	arrived   []bool // by member index
	value     uint64 // AND over arrived contributions (Agree rounds)
	flag      simtime.Flag
	complete  bool
	anyDead   bool
	survivors []int  // members alive at publish time, comm order
	newID     uint64 // fresh communicator id (Shrink rounds)
}

// round returns (creating on first arrival) the shared round state for key.
func (w *World) round(key roundKey, members []int) *ftRound {
	if w.rounds == nil {
		w.rounds = make(map[roundKey]*ftRound)
	}
	rd := w.rounds[key]
	if rd == nil {
		rd = &ftRound{
			kind:    key.kind,
			members: members,
			arrived: make([]bool, len(members)),
			value:   ^uint64(0),
		}
		w.rounds[key] = rd
	}
	return rd
}

// tryPublish completes a round whose every member has arrived or died: it
// fixes the survivor list and agreed value, draws the shrunk communicator's
// id, and wakes the waiters. p provides the publishing context's clock —
// the last arriver, or a dying rank whose death completed the round.
func (w *World) tryPublish(rd *ftRound, p *simtime.Proc) {
	if rd.complete {
		return
	}
	for i, m := range rd.members {
		if !rd.arrived[i] && !w.dead[m] {
			return
		}
	}
	rd.complete = true
	for _, m := range rd.members {
		if w.dead[m] {
			rd.anyDead = true
		} else {
			rd.survivors = append(rd.survivors, m)
		}
	}
	if rd.kind == roundShrink {
		rd.newID = w.nextCommID()
	}
	rd.flag.Set(p, nil)
}

// arrive records this rank's contribution to a round and blocks until the
// round publishes. The wait is marked so the quiescence detector leaves it
// alone: it completes through other members' arrivals or deaths, never
// through traffic.
func (c *Comm) arrive(name string, rd *ftRound, contrib uint64) {
	r := c.r
	w := r.world
	if w.opGate {
		r.opBoundary(name, -1)
	}
	if !rd.arrived[c.me] {
		rd.arrived[c.me] = true
		rd.value &= contrib
		// Charge the agreement protocol's shared-state cost: one flag post
		// plus a visibility latency per member.
		r.env.Shm().Agreement(r.proc, len(rd.members))
		w.tryPublish(rd, r.proc)
	}
	r.agreeing = true
	r.setPending(name, -1, -1)
	rd.flag.Wait(r.proc)
	r.clearPending()
	r.agreeing = false
}

// Agree is fault-tolerant agreement (MPI_Comm_agree): every living member
// contributes a value; the call returns the bitwise AND of the contributions
// that arrived, with ok false when any member died before contributing (its
// contribution is simply absent, as in ULFM). Agree itself survives
// failures: a member dying mid-round completes the round rather than
// wedging it. Members must call Agree (and Shrink) in the same order.
func (c *Comm) Agree(contrib uint64) (value uint64, ok bool) {
	c.agrees++
	rd := c.r.world.round(roundKey{comm: c.id, kind: roundAgree, seq: c.agrees}, c.WorldRanks())
	c.arrive("agree", rd, contrib)
	return rd.value, !rd.anyDead
}

// Shrink builds a dense communicator of this communicator's survivors
// (MPI_Comm_shrink): members are the ranks alive when the round published,
// in the original comm order, with fresh contiguous comm ranks and a fresh
// communicator id agreed by all callers. Node-leader structure is re-derived
// from the result via NodeLeaders. A member that dies after the round
// publishes is still in the result — callers detecting a failure on the
// shrunk communicator shrink again (the recovery loop in internal/recover
// does exactly this).
func (c *Comm) Shrink() *Comm {
	c.shrinks++
	w := c.r.world
	rd := w.round(roundKey{comm: c.id, kind: roundShrink, seq: c.shrinks}, c.WorldRanks())
	c.arrive("shrink", rd, 0)
	me := -1
	for i, m := range rd.survivors {
		if m == c.r.rank {
			me = i
		}
	}
	if me < 0 {
		// Declared dead but still running: impossible for world ranks (a
		// dead rank unwinds before returning from arrive).
		panic(rankKilled{c.r.rank})
	}
	if w.rec != nil {
		w.rec.Metrics().Counter("mpi.shrinks").Add(1)
	}
	return &Comm{r: c.r, ranks: append([]int(nil), rd.survivors...), me: me, id: rd.newID}
}

// Revoke marks the communicator revoked: every subsequent collective on it
// (any caller drawing a tag window) fails with *RevokedError. Revocation
// here is advisory and fail-fast rather than interrupting — operations
// already blocked are completed or failed by the failure detector, not by
// the revocation. Revoking the world communicator revokes every
// world-scoped communicator handle (they share id 0).
func (c *Comm) Revoke() {
	w := c.r.world
	if w.revoked == nil {
		w.revoked = make(map[uint64]bool)
	}
	w.revoked[c.id] = true
}

// Revoked reports whether Revoke has been called on this communicator.
func (c *Comm) Revoked() bool {
	w := c.r.world
	return w.revoked != nil && w.revoked[c.id]
}

// checkRevoked panics with *RevokedError when the communicator is revoked;
// NextWindow calls it so every collective fails fast.
func (c *Comm) checkRevoked() {
	if c.Revoked() {
		panic(&RevokedError{CommID: c.id})
	}
}

// NodeLeaders re-derives the node-leader topology of the communicator:
// for each node hosting at least one member, the node's leader is its
// lowest comm rank. The result is ordered by node id — the structure the
// hierarchical (leader-based) algorithms rebuild after a Shrink changes
// membership.
func (c *Comm) NodeLeaders() []int {
	leaders := make(map[int]int)
	var nodes []int
	for cr, wr := range c.WorldRanks() {
		node, _ := c.r.world.cluster.Place(wr)
		if _, ok := leaders[node]; !ok {
			leaders[node] = cr
			nodes = append(nodes, node)
		}
	}
	sort.Ints(nodes)
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = leaders[n]
	}
	return out
}
