package mpi

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered subset of the world's ranks with its
// own rank numbering and a private tag-window space, so collectives on
// disjoint or nested communicators never interfere. The world communicator
// is available via WorldComm; subsets are carved with Split, which follows
// MPI_Comm_split semantics (group by color, order by key then world rank).
//
// PiP-MColl's multi-object algorithms are world-scope (they assume whole
// nodes, like the paper's system); communicator-scope collectives run the
// baseline algorithms via coll.CommView.
type Comm struct {
	r     *Rank
	ranks []int // world ranks in comm-rank order; nil means the world
	me    int   // this process's comm rank
	id    uint64
	seq   uint64
	// shrinks/agrees number this handle's Shrink/Agree calls; members call
	// the collectives in the same order, so the counters agree across
	// handles of one communicator and key the shared rounds (see ulfm.go).
	shrinks uint64
	agrees  uint64
}

// maxCommID and maxCommSeq bound the tag-window packing below.
const (
	maxCommID  = 1 << 12
	maxCommSeq = 1 << 20
)

// WorldComm returns the communicator spanning every rank. Its collectives
// draw tag windows from the rank's world epoch counter, so it may be
// freely mixed with direct world-scope collectives.
func WorldComm(r *Rank) *Comm {
	return &Comm{r: r, me: r.Rank()}
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int {
	if c.ranks == nil {
		return c.r.Size()
	}
	return len(c.ranks)
}

// WorldRanks returns the communicator's members as world ranks in comm
// order (a fresh copy; nil for the world communicator is expanded).
func (c *Comm) WorldRanks() []int {
	if c.ranks != nil {
		return append([]int(nil), c.ranks...)
	}
	all := make([]int, c.r.Size())
	for i := range all {
		all[i] = i
	}
	return all
}

// World returns the underlying world rank handle.
func (c *Comm) World() *Rank { return c.r }

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int {
	if c.ranks == nil {
		return commRank
	}
	if commRank < 0 || commRank >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: comm rank %d outside communicator of %d", commRank, len(c.ranks)))
	}
	return c.ranks[commRank]
}

// NextWindow returns a fresh tag window private to this communicator. For
// the world communicator it delegates to the world epoch counter; for split
// communicators it packs (comm id, sequence) above the world windows so the
// spaces cannot collide.
func (c *Comm) NextWindow() int {
	if c.r.world.revoked != nil {
		c.checkRevoked()
	}
	if c.ranks == nil {
		return int(c.r.NextEpoch()) << 24
	}
	c.seq++
	if c.seq >= maxCommSeq {
		panic("mpi: communicator exceeded its collective budget (2^20)")
	}
	return int((1<<32|c.id<<20|c.seq)<<24) | 0
}

// Send is a blocking comm-scoped send to comm rank dst.
func (c *Comm) Send(dst, tag int, data []byte) { c.r.Send(c.WorldRank(dst), tag, data) }

// Recv is a blocking comm-scoped receive from comm rank src.
func (c *Comm) Recv(src, tag int, buf []byte) int {
	return c.r.Recv(c.WorldRank(src), tag, buf)
}

// Isend starts a nonblocking comm-scoped send.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	return c.r.Isend(c.WorldRank(dst), tag, data)
}

// Irecv posts a nonblocking comm-scoped receive.
func (c *Comm) Irecv(src, tag int, buf []byte) *Request {
	return c.r.Irecv(c.WorldRank(src), tag, buf)
}

// Undefined is the color that opts a rank out of Split (MPI_UNDEFINED).
const Undefined = -1

// splitEntry is one member's contribution to a split.
type splitEntry struct {
	color, key, world int
}

// Split partitions the communicator: every member calls it with a color
// (Undefined to receive no communicator) and a key; members with equal
// colors form a new communicator ordered by (key, world rank). Split is a
// collective over c and returns nil for Undefined callers.
func (c *Comm) Split(color, key int) *Comm {
	size := c.Size()
	window := c.NextWindow()
	root := c.WorldRank(0)

	// Gather (color, key) at the comm root.
	mine := encodeSplitEntry(splitEntry{color: color, key: key, world: c.r.Rank()})
	var entries []splitEntry
	if c.r.Rank() == root {
		entries = make([]splitEntry, 0, size)
		entries = append(entries, splitEntry{color: color, key: key, world: c.r.Rank()})
		buf := make([]byte, splitEntryBytes)
		for i := 1; i < size; i++ {
			c.r.Recv(c.WorldRank(i), window+i, buf)
			entries = append(entries, decodeSplitEntry(buf))
		}
	} else {
		c.r.Send(root, window+c.me, mine)
	}

	// The root groups, orders, names each group with a world-unique comm
	// id, and distributes the membership lists.
	var result []byte // this rank's [id, members...] encoded reply
	if c.r.Rank() == root {
		groups := map[int][]splitEntry{}
		var colors []int
		for _, e := range entries {
			if e.color == Undefined {
				continue
			}
			if _, ok := groups[e.color]; !ok {
				colors = append(colors, e.color)
			}
			groups[e.color] = append(groups[e.color], e)
		}
		sort.Ints(colors) // deterministic id assignment order
		replies := map[int][]byte{}
		for _, col := range colors {
			g := groups[col]
			sort.Slice(g, func(i, j int) bool {
				if g[i].key != g[j].key {
					return g[i].key < g[j].key
				}
				return g[i].world < g[j].world
			})
			id := c.r.world.nextCommID()
			members := make([]int, len(g))
			for i, e := range g {
				members[i] = e.world
			}
			enc := encodeMembership(id, members)
			for _, e := range g {
				replies[e.world] = enc
			}
		}
		for i := 0; i < size; i++ {
			w := c.WorldRank(i)
			enc := replies[w] // nil (empty) for Undefined members
			if w == c.r.Rank() {
				result = enc
				continue
			}
			c.r.Send(w, window+size+i, enc)
		}
	} else {
		// Membership replies are bounded by the comm size.
		buf := make([]byte, 16+8*size)
		n := c.r.Recv(root, window+size+c.me, buf)
		result = buf[:n]
	}

	if len(result) == 0 {
		return nil // Undefined
	}
	id, members := decodeMembership(result)
	me := -1
	for i, w := range members {
		if w == c.r.Rank() {
			me = i
		}
	}
	if me < 0 {
		panic("mpi: split reply omits the caller")
	}
	return &Comm{r: c.r, ranks: members, me: me, id: id}
}

// nextCommID hands out world-unique communicator ids. The world structure
// is shared state, but the simulation engine serializes all rank execution,
// so a plain counter is safe and deterministic.
func (w *World) nextCommID() uint64 {
	w.commIDs++
	if w.commIDs >= maxCommID {
		panic("mpi: too many communicators (2^12)")
	}
	return w.commIDs
}

const splitEntryBytes = 24

func encodeSplitEntry(e splitEntry) []byte {
	b := make([]byte, splitEntryBytes)
	putInt64(b[0:], int64(e.color))
	putInt64(b[8:], int64(e.key))
	putInt64(b[16:], int64(e.world))
	return b
}

func decodeSplitEntry(b []byte) splitEntry {
	return splitEntry{
		color: int(getInt64(b[0:])),
		key:   int(getInt64(b[8:])),
		world: int(getInt64(b[16:])),
	}
}

func encodeMembership(id uint64, members []int) []byte {
	b := make([]byte, 16+8*len(members))
	putInt64(b[0:], int64(id))
	putInt64(b[8:], int64(len(members)))
	for i, m := range members {
		putInt64(b[16+8*i:], int64(m))
	}
	return b
}

func decodeMembership(b []byte) (id uint64, members []int) {
	id = uint64(getInt64(b[0:]))
	n := int(getInt64(b[8:]))
	members = make([]int, n)
	for i := range members {
		members[i] = int(getInt64(b[16+8*i:]))
	}
	return id, members
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}
