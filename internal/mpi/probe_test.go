package mpi

import (
	"bytes"
	"testing"

	"repro/internal/nums"
	"repro/internal/simtime"
)

func TestAnySourceReceivesAll(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				buf := make([]byte, 8)
				q := r.Irecv(AnySource, 5, buf)
				r.Wait(q)
				src := q.Source()
				if seen[src] {
					t.Errorf("source %d matched twice", src)
				}
				seen[src] = true
				want := make([]byte, 8)
				nums.FillBytes(want, src)
				if !bytes.Equal(buf, want) {
					t.Errorf("payload from %d wrong", src)
				}
			}
		} else {
			data := make([]byte, 8)
			nums.FillBytes(data, r.Rank())
			r.Send(0, 5, data)
		}
	})
}

func TestProbeThenSizedRecv(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			r.Proc().Advance(simtime.Microsecond)
			r.Send(1, 9, make([]byte, 777))
		} else {
			st := r.Probe(0, 9)
			if st.Bytes != 777 || st.Source != 0 || st.Tag != 9 {
				t.Fatalf("probe status = %+v", st)
			}
			buf := make([]byte, st.Bytes) // sized exactly from the probe
			if n := r.Recv(st.Source, st.Tag, buf); n != 777 {
				t.Fatalf("recv n = %d", n)
			}
		}
	})
}

func TestProbeDoesNotConsume(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1, []byte{42})
		} else {
			r.Probe(0, 1)
			r.Probe(0, 1) // still there
			buf := make([]byte, 1)
			r.Recv(0, 1, buf)
			if buf[0] != 42 {
				t.Fatalf("payload %d", buf[0])
			}
		}
	})
}

func TestIprobe(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			if _, ok := r.Iprobe(1, 3); ok {
				t.Error("iprobe matched nothing")
			}
			r.Send(1, 3, make([]byte, 16))
		} else {
			r.Recv(0, 3, make([]byte, 16))
			// Now probe for a message that was never sent.
			if _, ok := r.Iprobe(0, 99); ok {
				t.Error("iprobe matched a consumed/absent message")
			}
			// And one that is queued (self-send, intranode path).
			r.Isend(1, 7, []byte{1, 2})
			if st, ok := r.Iprobe(1, 7); !ok || st.Bytes != 2 {
				t.Errorf("iprobe self-send = %+v, %v", st, ok)
			}
			r.Recv(1, 7, make([]byte, 2))
		}
	})
}

func TestProbeAnySource(t *testing.T) {
	w := newWorld(t, 3, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			st := r.Probe(AnySource, 4)
			if st.Source != 1 && st.Source != 2 {
				t.Fatalf("probe source %d", st.Source)
			}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 4)
				q := r.Irecv(AnySource, 4, buf)
				r.Wait(q)
			}
		} else {
			r.Send(0, 4, make([]byte, 4))
		}
	})
}

func TestProbeBadSourcePanics(t *testing.T) {
	w := newWorld(t, 1, 1, nil)
	if err := w.Run(func(r *Rank) { r.Probe(7, 0) }); err == nil {
		t.Fatal("bad probe source accepted")
	}
}

func TestAnyTag(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 77, []byte{77})
			r.Send(1, 88, []byte{88})
		} else {
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 1)
				q := r.Irecv(0, AnyTag, buf)
				r.Wait(q)
				if int(buf[0]) != q.Tag() {
					t.Errorf("payload %d for tag %d", buf[0], q.Tag())
				}
				got[q.Tag()] = true
			}
			if !got[77] || !got[88] {
				t.Errorf("tags seen: %v", got)
			}
			// Probe with AnyTag on a fresh message.
		}
	})
	w2 := newWorld(t, 2, 1, nil)
	run(t, w2, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 123, make([]byte, 5))
		} else {
			st := r.Probe(AnySource, AnyTag)
			if st.Tag != 123 || st.Bytes != 5 {
				t.Errorf("probe = %+v", st)
			}
			r.Recv(0, 123, make([]byte, 5))
		}
	})
}
