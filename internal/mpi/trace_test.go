package mpi

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

func TestTracerRecordsTraffic(t *testing.T) {
	w := MustNewWorld(topology.New(2, 2, topology.Block), DefaultConfig())
	log := trace.NewLog(0)
	w.SetTracer(log)
	if w.Tracer() != log {
		t.Fatal("tracer not attached")
	}
	if err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 1, make([]byte, 100)) // internode
			r.Send(1, 2, make([]byte, 40))  // intranode
		case 1:
			r.Recv(0, 2, make([]byte, 40))
		case 2:
			r.Recv(0, 1, make([]byte, 100))
		}
	}); err != nil {
		t.Fatal(err)
	}
	v := log.Volume()
	if v.SendsInter != 1 || v.BytesInter != 100 || v.SendsIntra != 1 || v.BytesIntra != 40 {
		t.Fatalf("volume = %+v", v)
	}
	if msg := log.CheckCausality(); msg != "" {
		t.Fatalf("causality violation: %s", msg)
	}
	// Two sends, two receives.
	if log.Len() != 4 {
		t.Fatalf("events = %d", log.Len())
	}
}
