package mpi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nums"
	"repro/internal/topology"
)

// TestRandomTrafficProperty drives randomized point-to-point traffic: a
// random pairing of senders and receivers with random sizes and tags, every
// payload verified byte-for-byte at the receiver. Covers eager/rendezvous,
// intra/internode, and in/out-of-order matching under one roof.
func TestRandomTrafficProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(4)
		ppn := 1 + rng.Intn(4)
		size := nodes * ppn
		rounds := 1 + rng.Intn(4)

		// Precompute a traffic plan: per round, a random permutation
		// pairs each sender i with receiver perm[i]; sizes span eager
		// and rendezvous on both paths.
		type msg struct {
			src, dst, tag, n int
		}
		var plan []msg
		for round := 0; round < rounds; round++ {
			perm := rng.Perm(size)
			for i, j := range perm {
				n := 1 + rng.Intn(64<<10)
				plan = append(plan, msg{src: i, dst: j, tag: round<<16 | i, n: n})
			}
		}

		ok := true
		w := MustNewWorld(topology.New(nodes, ppn, topology.Block), DefaultConfig())
		err := w.Run(func(r *Rank) {
			var reqs []*Request
			var checks []func()
			for _, m := range plan {
				m := m
				if m.src == r.Rank() {
					data := make([]byte, m.n)
					nums.FillBytes(data, m.tag)
					reqs = append(reqs, r.Isend(m.dst, m.tag, data))
				}
				if m.dst == r.Rank() {
					buf := make([]byte, m.n)
					q := r.Irecv(m.src, m.tag, buf)
					reqs = append(reqs, q)
					checks = append(checks, func() {
						want := make([]byte, m.n)
						nums.FillBytes(want, m.tag)
						if !bytes.Equal(buf, want) {
							ok = false
						}
					})
				}
			}
			r.Waitall(reqs...)
			for _, c := range checks {
				c()
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFabricConservation: after arbitrary collective traffic, the fabric's
// counters record exactly the internode messages the tracer saw — nothing
// lost, nothing duplicated.
func TestFabricConservation(t *testing.T) {
	w := MustNewWorld(topology.New(3, 3, topology.Block), DefaultConfig())
	var wantBytes int64
	var wantMsgs int64
	if err := w.Run(func(r *Rank) {
		// Each rank sends to every rank on the next node.
		c := r.Cluster()
		nextNode := (r.Node() + 1) % c.Nodes()
		var reqs []*Request
		for l := 0; l < c.PPN(); l++ {
			n := 100 + 10*r.Rank() + l
			reqs = append(reqs, r.Isend(c.Rank(nextNode, l), 7000+r.Rank(), make([]byte, n)))
			if r.Rank() == 0 { // count the global plan once
				for src := 0; src < c.Size(); src++ {
					wantMsgs++
					wantBytes += int64(100 + 10*src + l)
				}
			}
		}
		prevNode := (r.Node() - 1 + c.Nodes()) % c.Nodes()
		for l := 0; l < c.PPN(); l++ {
			src := c.Rank(prevNode, l)
			buf := make([]byte, 100+10*src+r.Local())
			reqs = append(reqs, r.Irecv(src, 7000+src, buf))
		}
		r.Waitall(reqs...)
	}); err != nil {
		t.Fatal(err)
	}
	got := w.Fabric().Stats()
	if got.Messages != wantMsgs || got.Bytes != wantBytes {
		t.Fatalf("fabric stats = %+v, want %d msgs %d bytes", got, wantMsgs, wantBytes)
	}
}
