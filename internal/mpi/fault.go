package mpi

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/simtime"
)

// TimeoutError reports an MPI operation that blocked past Config.OpTimeout
// of virtual time. It escapes the rank body as a panic (MPI operations have
// no error returns, matching the standard's collectives) and World.Run
// converts it into this typed error for the caller.
type TimeoutError struct {
	Rank     int
	Op       string // "recv", "probe"
	Source   int    // AnySource for wildcard receives
	Tag      int
	Deadline simtime.Time // virtual time at which the operation gave up
	// Schedule is the schedule certificate of the interleaving that fired the
	// timeout, set under schedule exploration (where timeouts are enumerated
	// choices); "" otherwise.
	Schedule string
}

func (e *TimeoutError) Error() string {
	s := fmt.Sprintf("mpi: rank %d %s (src=%d, tag=%d) timed out at %v",
		e.Rank, e.Op, e.Source, e.Tag, e.Deadline)
	if e.Schedule != "" {
		s += " [schedule " + e.Schedule + "]"
	}
	return s
}

// BlockedRank is one entry of a deadlock diagnosis: which rank is stuck,
// in which operation, and what it is waiting for.
type BlockedRank struct {
	Rank    int    // world rank, or -1 for non-rank processes (async helpers)
	Name    string // process name
	Op      string // pending MPI op ("recv", "probe", ...) or the raw blocking primitive
	Source  int    // peer the op waits for (AnySource/-1 when unknown)
	Tag     int    // -1 when unknown
	Since   simtime.Time
	WaitsOn int // rank in the waker chain this one waits on, or -1
	// PeerDead/PeerExited annotate WaitsOn: the awaited rank died (so this
	// block could never be satisfied) or returned from its body without
	// sending (an application-level mismatch).
	PeerDead   bool
	PeerExited bool
}

func (b BlockedRank) String() string {
	s := fmt.Sprintf("%s blocked in %s", b.Name, b.Op)
	if b.Tag != -1 || b.Source != -1 {
		s += fmt.Sprintf(" (src=%d, tag=%d)", b.Source, b.Tag)
	}
	s += fmt.Sprintf(" since %v", b.Since)
	if b.WaitsOn >= 0 {
		s += fmt.Sprintf(", waits on rank %d", b.WaitsOn)
		switch {
		case b.PeerDead:
			s += " (dead)"
		case b.PeerExited:
			s += " (exited)"
		}
	}
	return s
}

// DeadlockError is the watchdog's report of a wedged MPI program: the event
// queue drained while ranks were still blocked. It wraps the engine-level
// *simtime.DeadlockError (errors.As reaches it) and adds the MPI-level
// diagnosis: per-rank pending operation with (source, tag) and the waker
// chain.
type DeadlockError struct {
	Blocked []BlockedRank
	// At is the virtual time of the wedge (the engine horizon when the
	// event queue drained).
	At simtime.Time
	// Schedule is the schedule certificate of the interleaving that wedged,
	// set under schedule exploration; "" otherwise.
	Schedule string
	engine   *simtime.DeadlockError
}

func (e *DeadlockError) Error() string {
	parts := make([]string, len(e.Blocked))
	for i, b := range e.Blocked {
		parts[i] = b.String()
	}
	s := fmt.Sprintf("mpi: deadlock at %v, %d rank(s) blocked: %s",
		e.At, len(e.Blocked), strings.Join(parts, "; "))
	if e.Schedule != "" {
		s += " [schedule " + e.Schedule + "]"
	}
	return s
}

// Unwrap exposes the underlying engine diagnosis.
func (e *DeadlockError) Unwrap() error { return e.engine }

// pendingOp is the rank's currently-blocking operation, recorded before any
// park so the watchdog can name it in a deadlock diagnosis.
type pendingOp struct {
	op       string
	src, tag int
	active   bool
}

// setPending annotates both the MPI-level bookkeeping and the engine-level
// wait detail before a potentially-blocking operation; clearPending undoes
// it on the fast path (park resumption clears the engine side itself).
func (r *Rank) setPending(op string, src, tag int) {
	r.pending = pendingOp{op: op, src: src, tag: tag, active: true}
	waits := -1
	if src >= 0 {
		waits = src
	}
	r.proc.SetWaitDetail(op, src, tag, waits)
}

func (r *Rank) clearPending() {
	r.pending.active = false
	r.proc.SetWaitDetail("", 0, 0, -1)
}

// wrapRunError converts engine-level failures into the MPI layer's typed
// errors: a rank-body panic carrying a *TimeoutError becomes that error,
// and an engine deadlock becomes a *DeadlockError with the per-rank
// diagnosis attached.
func (w *World) wrapRunError(err error) error {
	if err == nil {
		return nil
	}
	var pe *simtime.PanicError
	if errors.As(err, &pe) {
		switch v := pe.Value.(type) {
		case *TimeoutError:
			return v
		case *ProcFailedError:
			return v
		case *RevokedError:
			return v
		}
	}
	var de *simtime.DeadlockError
	if errors.As(err, &de) {
		return w.diagnoseDeadlock(de)
	}
	return err
}

func (w *World) diagnoseDeadlock(de *simtime.DeadlockError) *DeadlockError {
	me := &DeadlockError{engine: de, At: de.At, Schedule: de.Schedule}
	for _, pi := range de.Info {
		b := BlockedRank{Rank: -1, Name: pi.Name, Op: pi.Reason,
			Source: -1, Tag: -1, Since: pi.At, WaitsOn: pi.WaitsOn}
		// World ranks are spawned first, in rank order, so proc id ==
		// rank for them; later procs are async helpers.
		if pi.ID < len(w.ranks) {
			b.Rank = pi.ID
			if p := w.ranks[pi.ID].pending; p.active {
				b.Op, b.Source, b.Tag = p.op, p.src, p.tag
			}
		}
		if on := b.WaitsOn; on >= 0 && on < len(w.ranks) {
			b.PeerDead = w.dead[on]
			b.PeerExited = w.exited[on]
		}
		me.Blocked = append(me.Blocked, b)
	}
	return me
}

// chargeNoise bills any OS-noise detours that came due on this rank's
// virtual clock: the stolen CPU time advances the clock before the next
// operation proceeds (lazy billing — noise becomes visible exactly when the
// rank next interacts with the runtime, like a preempted process discovers
// lost time at its next syscall). Callers guard on r.noise != nil, so
// fault-free runs pay only a nil check.
func (r *Rank) chargeNoise() {
	extra, detours := r.noise.Due(r.proc.Now())
	if extra == 0 {
		return
	}
	t0 := r.proc.Now()
	r.proc.Advance(extra)
	if rec := r.world.rec; rec != nil {
		reg := rec.Metrics()
		reg.Counter("fault.noise_ns").Add(int64(extra / simtime.Nanosecond))
		reg.Counter("fault.detours").Add(int64(detours))
		if !rec.Lite() {
			rec.ProcSpan(r.proc, "os noise", "os-noise", t0, r.proc.Now())
		}
	}
}
