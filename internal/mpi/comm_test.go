package mpi

import (
	"testing"
)

func TestWorldComm(t *testing.T) {
	w := newWorld(t, 2, 3, nil)
	run(t, w, func(r *Rank) {
		c := WorldComm(r)
		if c.Size() != 6 || c.Rank() != r.Rank() || c.World() != r {
			t.Error("world comm accessors wrong")
		}
		if c.WorldRank(4) != 4 {
			t.Error("world comm translation wrong")
		}
		if got := c.WorldRanks(); len(got) != 6 || got[5] != 5 {
			t.Errorf("world ranks = %v", got)
		}
	})
}

func TestSplitByParity(t *testing.T) {
	w := newWorld(t, 2, 3, nil)
	run(t, w, func(r *Rank) {
		c := WorldComm(r).Split(r.Rank()%2, r.Rank())
		if c == nil {
			t.Errorf("rank %d got nil comm", r.Rank())
			return
		}
		if c.Size() != 3 {
			t.Errorf("rank %d comm size %d", r.Rank(), c.Size())
		}
		// Members ordered by key=world rank: comm rank = world rank / 2.
		if c.Rank() != r.Rank()/2 {
			t.Errorf("rank %d comm rank %d, want %d", r.Rank(), c.Rank(), r.Rank()/2)
		}
		for i, wr := range c.WorldRanks() {
			if wr%2 != r.Rank()%2 || wr/2 != i {
				t.Errorf("rank %d member %d = %d", r.Rank(), i, wr)
			}
		}
	})
}

func TestSplitKeyOrdersMembers(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	run(t, w, func(r *Rank) {
		// Reverse ordering: key = -rank.
		c := WorldComm(r).Split(0, -r.Rank())
		if c.Rank() != r.Size()-1-r.Rank() {
			t.Errorf("rank %d comm rank %d, want %d", r.Rank(), c.Rank(), r.Size()-1-r.Rank())
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	run(t, w, func(r *Rank) {
		color := 0
		if r.Rank() == 2 {
			color = Undefined
		}
		c := WorldComm(r).Split(color, 0)
		if r.Rank() == 2 {
			if c != nil {
				t.Error("Undefined rank received a comm")
			}
			return
		}
		if c == nil || c.Size() != 3 {
			t.Errorf("rank %d comm = %v", r.Rank(), c)
		}
	})
}

func TestSplitCommP2P(t *testing.T) {
	w := newWorld(t, 2, 3, nil)
	run(t, w, func(r *Rank) {
		c := WorldComm(r).Split(r.Rank()%2, 0)
		// Neighbours within the comm pass a token: comm rank i -> i+1.
		if c.Rank() == 0 {
			c.Send(1, 5, []byte{byte(r.Rank())})
		}
		if c.Rank() == 1 {
			buf := make([]byte, 1)
			c.Recv(0, 5, buf)
			if int(buf[0]) != c.WorldRank(0) {
				t.Errorf("comm p2p delivered %d, want %d", buf[0], c.WorldRank(0))
			}
		}
	})
}

func TestNestedSplit(t *testing.T) {
	w := newWorld(t, 2, 4, nil)
	run(t, w, func(r *Rank) {
		byNode := WorldComm(r).Split(r.Node(), r.Local())
		if byNode.Size() != 4 || byNode.Rank() != r.Local() {
			t.Errorf("rank %d node comm wrong: size %d me %d", r.Rank(), byNode.Size(), byNode.Rank())
		}
		byPair := byNode.Split(r.Local()/2, r.Local())
		if byPair.Size() != 2 || byPair.Rank() != r.Local()%2 {
			t.Errorf("rank %d pair comm wrong: size %d me %d", r.Rank(), byPair.Size(), byPair.Rank())
		}
	})
}

func TestCommWindowsDistinct(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	run(t, w, func(r *Rank) {
		a := WorldComm(r).Split(0, 0) // all ranks: one comm
		b := WorldComm(r).Split(r.Rank()%2, 0)
		wa, wb := a.NextWindow(), b.NextWindow()
		if wa == wb {
			t.Errorf("distinct comms share a tag window %d", wa)
		}
		if wa>>24 == 0 || wb>>24 == 0 {
			t.Error("comm window collides with raw user tags")
		}
	})
}

func TestCommRankTranslationPanics(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	err := w.Run(func(r *Rank) {
		c := WorldComm(r).Split(0, 0)
		c.WorldRank(99)
	})
	if err == nil {
		t.Fatal("bad comm rank accepted")
	}
}
