package mpi

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/trace"
)

// The static replay gate: worlds whose execution may depend on faults,
// timeouts, or observation must refuse to record, so the bench layer falls
// back to live mode instead of replaying an unsound schedule.
func TestRecordStaticGates(t *testing.T) {
	cluster := topology.New(2, 2, topology.Block)
	cases := []struct {
		name string
		prep func() (*World, error)
		want string // substring of the refusal, "" = must succeed
	}{
		{"clean", func() (*World, error) {
			return NewWorld(cluster, DefaultConfig())
		}, ""},
		{"fault plan", func() (*World, error) {
			cfg := DefaultConfig()
			plan, err := fault.New(fault.Spec{Seed: 1, Noise: []fault.Noise{
				{Amplitude: simtime.Microsecond, Period: 10 * simtime.Microsecond}}})
			if err != nil {
				return nil, err
			}
			cfg.Faults = plan
			return NewWorld(cluster, cfg)
		}, "fault plan"},
		{"kill plan", func() (*World, error) {
			cfg := DefaultConfig()
			plan, err := fault.New(fault.Spec{KillRanks: []fault.KillRank{
				{Rank: 1, At: 5 * simtime.Time(simtime.Microsecond)}}})
			if err != nil {
				return nil, err
			}
			cfg.Faults = plan
			return NewWorld(cluster, cfg)
		}, "kills"},
		{"op timeout", func() (*World, error) {
			cfg := DefaultConfig()
			cfg.OpTimeout = simtime.Second
			return NewWorld(cluster, cfg)
		}, "timeouts"},
		{"tracer", func() (*World, error) {
			w, err := NewWorld(cluster, DefaultConfig())
			if err == nil {
				w.SetTracer(trace.NewLog(1024))
			}
			return w, err
		}, "tracer"},
	}
	for _, tc := range cases {
		w, err := tc.prep()
		if err != nil {
			t.Fatalf("%s: building world: %v", tc.name, err)
		}
		rec, err := w.Record()
		if tc.want == "" {
			if err != nil || rec == nil {
				t.Fatalf("%s: Record() = %v, want success", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: Record() succeeded, want refusal mentioning %q", tc.name, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: refusal %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
