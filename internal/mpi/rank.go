package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pip"
	"repro/internal/shm"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Rank is one simulated MPI process. All methods must be called from the
// rank's own process body (the function passed to World.Run).
type Rank struct {
	world *World
	rank  int
	node  int
	local int
	env   *pip.NodeEnv
	ep    fabric.Endpoint
	proc  *simtime.Proc
	epoch uint64
	// epochLimit caps epoch draws for async helper ranks (0 = parent,
	// capped at the async band instead); asyncSeq numbers this rank's
	// async operations.
	epochLimit uint64
	asyncSeq   int
	// noise is the rank's OS-noise cursor (nil fault-free); pending is
	// the blocking op the watchdog names in a deadlock diagnosis.
	noise   *fault.RankNoise
	pending pendingOp
	// agreeing marks a park inside a Shrink/Agree round, which the
	// quiescence failure detector must not fail (see World.onQuiesce).
	agreeing bool
	// matchSrc/matchTag parameterize matchFn, the rank's reusable receive
	// predicate (see match) — one closure per rank instead of one per
	// blocking receive or probe.
	matchSrc int
	matchTag int
	matchFn  func(any) bool
	// reqFree recycles completed Requests (see getReq/putReq).
	reqFree []*Request
}

// getReq returns a zeroed request, reusing one recycled by Wait when
// available.
func (r *Rank) getReq() *Request {
	if n := len(r.reqFree); n > 0 {
		q := r.reqFree[n-1]
		r.reqFree[n-1] = nil
		r.reqFree = r.reqFree[:n-1]
		*q = Request{}
		return q
	}
	return &Request{}
}

// putReq recycles a completed request. The request's fields are preserved
// until getReq hands it out again, so the MPI idiom of reading N/Source/Tag
// right after Wait keeps working; a request must not be read after the rank
// issues another operation.
func (r *Rank) putReq(q *Request) { r.reqFree = append(r.reqFree, q) }

// initMatch builds the rank's cached receive predicate. It must close over
// this specific Rank struct, so async helpers (which copy the parent by
// value) rebuild it for themselves.
func (r *Rank) initMatch() {
	r.matchFn = func(it any) bool {
		env := envOf(it)
		return (r.matchSrc == AnySource || env.src == r.matchSrc) &&
			(r.matchTag == AnyTag || env.tag == r.matchTag)
	}
}

// match arms the cached predicate for a (source, tag) pair and returns it.
// The predicate may be held by a mailbox only while this rank is parked on
// that mailbox, which the blocking structure of Get/Peek guarantees; a rank
// has at most one blocking receive or probe in flight.
func (r *Rank) match(src, tag int) func(any) bool {
	r.matchSrc, r.matchTag = src, tag
	return r.matchFn
}

// Rank returns the process's global rank.
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.world.cluster.Size() }

// Node returns the node the rank lives on.
func (r *Rank) Node() int { return r.node }

// Local returns the rank's local index on its node (0..PPN-1).
func (r *Rank) Local() int { return r.local }

// Cluster returns the world's cluster description.
func (r *Rank) Cluster() *topology.Cluster { return r.world.cluster }

// World returns the enclosing world.
func (r *Rank) World() *World { return r.world }

// Env returns the PiP node environment shared by the rank's node — the
// posting board, node barrier and shared-memory cost domain PiP-MColl's
// algorithms program against directly.
func (r *Rank) Env() *pip.NodeEnv { return r.env }

// Proc returns the underlying simulated process (for clock reads and
// compute-cost charging).
func (r *Rank) Proc() *simtime.Proc { return r.proc }

// Now returns the rank's current virtual time.
func (r *Rank) Now() simtime.Time { return r.proc.Now() }

// NextEpoch returns a fresh collective epoch. MPI semantics guarantee all
// ranks invoke collectives in the same order, so per-rank counters stay in
// lockstep and the returned epoch identifies the same invocation everywhere.
// Async helpers draw from a private band (see Async); parents are capped
// below it so the bands can never collide.
func (r *Rank) NextEpoch() uint64 {
	r.epoch++
	switch {
	case r.epochLimit > 0 && r.epoch >= r.epochLimit:
		panic("mpi: async helper exceeded its collective budget (2^16)")
	case r.epochLimit == 0 && r.epoch >= asyncEpochBase:
		panic("mpi: rank exceeded the world collective budget (2^30)")
	}
	return r.epoch
}

// HarnessBarrier synchronizes all ranks at zero virtual cost. It is not an
// MPI operation: the benchmark harness uses it to separate warm-up from
// measurement and to align iteration starts, exactly like the paper's
// two-stage microbenchmark methodology (which excludes barrier cost).
// Async helpers must not call it (the barrier counts world ranks only).
func (r *Rank) HarnessBarrier() {
	if r.epochLimit > 0 {
		panic("mpi: HarnessBarrier called from an async helper")
	}
	r.world.harness.Wait(r.proc)
}

// envelope is one in-flight point-to-point message. Envelopes are pooled on
// the World (getEnv/putEnv): refs counts outstanding handles — the in-flight
// delivery plus, for internode rendezvous, the sender's request — and the
// envelope returns to the freelist when the count reaches zero. own is the
// envelope's scratch buffer for snapshot/bounce payloads; it stays attached
// across recycles so steady-state sends stop allocating payload copies.
type envelope struct {
	src, dst int
	tag      int
	n        int
	data     []byte        // snapshot, scratch, or live reference when zeroCopy
	own      []byte        // pooled scratch backing data on buffered paths
	zeroCopy bool          // intranode rendezvous: data points into sender's buffer
	consumed bool          // receiver has finished its copy out of data
	refs     int8          // outstanding handles; World.putEnv frees at zero
	srcLocal int           // sender's local rank, for mechanism cost accounting
	done     *simtime.Flag // set by the receiver when a zeroCopy transfer finishes
	msg      int           // recorder message id for internode sends, else -1
}

// scratch returns the envelope's own buffer resized to n bytes, reusing
// pooled capacity when possible.
func (env *envelope) scratch(n int) []byte {
	if cap(env.own) < n {
		env.own = make([]byte, n)
	}
	env.own = env.own[:n]
	return env.own
}

// envOf extracts the envelope from a mailbox item, which is either a fabric
// packet (internode) or a bare envelope (intranode).
func envOf(item any) *envelope {
	switch v := item.(type) {
	case fabric.Packet:
		return v.Payload.(*envelope)
	case *envelope:
		return v
	default:
		panic(fmt.Sprintf("mpi: foreign item in rank mailbox: %T", item))
	}
}

// reqKind discriminates Request completion styles.
type reqKind int

const (
	reqSendAt   reqKind = iota // complete at a known virtual time
	reqSendFlag                // complete when the receiver sets the flag
	reqRecv                    // complete by matching an incoming envelope
)

// Request is a pending nonblocking operation. Complete it with Rank.Wait or
// Rank.Waitall.
type Request struct {
	kind   reqKind
	doneAt simtime.Time
	flag   *simtime.Flag
	src    int
	tag    int
	buf    []byte
	n      int
	done   bool
	str    *fabric.SendTrace // stage timings of an internode send, when recorded
	env    *envelope         // sender handle on an internode rendezvous envelope
}

// N returns the number of bytes transferred, valid after completion (for
// receive requests it is the matched message's size).
func (q *Request) N() int { return q.n }

// Source returns the matched sender's rank, valid after a receive request
// completes (useful with AnySource).
func (q *Request) Source() int { return q.src }

// Tag returns the matched message's tag, valid after a receive request
// completes (useful with AnyTag).
func (q *Request) Tag() int { return q.tag }

// Isend starts a nonblocking send of data to rank dst with the given tag and
// returns a request that completes when the source buffer is reusable.
func (r *Rank) Isend(dst, tag int, data []byte) *Request {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mpi: Isend to rank %d in world of %d", dst, r.Size()))
	}
	if r.world.opGate {
		r.opBoundary("send", dst)
	}
	if r.noise != nil {
		r.chargeNoise()
	}
	intranode := r.world.cluster.SameNode(r.rank, dst)
	if r.world.traceP2P() {
		r.world.p2p(trace.Event{Kind: trace.KindSend, At: r.proc.Now(),
			Src: r.rank, Dst: dst, Tag: tag, Bytes: len(data), Intranode: intranode})
	}
	t0 := r.proc.Now()
	var q *Request
	if intranode {
		q = r.isendIntranode(dst, tag, data)
	} else {
		q = r.isendInternode(dst, tag, data)
	}
	if r.world.full() {
		r.world.rec.ProcSpan(r.proc, fmt.Sprintf("send→%d %dB", dst, len(data)),
			"p2p", t0, r.proc.Now())
	}
	return q
}

// isendInternode injects the payload into the fabric. Eager payloads are
// snapshotted into the envelope's pooled scratch (the NIC buffers them, and
// the sender may reuse its buffer the moment the local queue stage is done).
// Rendezvous payloads stay a live reference — the O(bytes) copy is skipped —
// because the source buffer is pinned until the send completes; if the
// receiver has not copied the data by the time the sender's Wait releases
// the buffer, Wait snapshots it then (see Rank.Wait).
func (r *Rank) isendInternode(dst, tag int, data []byte) *Request {
	env := r.world.getEnv()
	env.src, env.dst, env.tag, env.n, env.msg = r.rank, dst, tag, len(data), -1
	rendezvous := len(data) > r.world.cfg.Fabric.EagerLimit
	if rendezvous {
		env.data = data
		env.refs = 2 // in-flight delivery + the sender's request handle
	} else {
		snap := env.scratch(len(data))
		copy(snap, data)
		env.data = snap
		env.refs = 1
	}
	dstNode, dstLocal := r.world.cluster.Place(dst)
	doneAt, str := r.world.fab.SendTraced(r.proc, r.ep,
		fabric.Endpoint{Node: dstNode, Queue: dstLocal}, len(data), env)
	q := r.getReq()
	q.kind, q.doneAt = reqSendAt, doneAt
	if rendezvous {
		q.env = env
	}
	if r.world.full() {
		rec := r.world.rec
		// The synchronous CPU cost lands on the sender's own timeline; the
		// full stage decomposition rides the message for the receive side
		// and the drain charged at Wait.
		rec.PathSegFor(r.proc, "send-cpu", str.Issue, str.CPUDone)
		env.msg = rec.AddMessage(obs.Message{
			SrcProc: r.proc.ID(), DstProc: dst, Bytes: len(data), Tag: tag,
			Issue: str.Issue, Ready: str.RxQueueDone, Stages: str.Stages(),
		})
		q.str = &str
	}
	return q
}

// isendIntranode moves data through the node's shared memory. Small payloads
// take the double-copy eager bounce path; large ones are posted zero-copy
// and transferred by the receiver via the configured mechanism.
func (r *Rank) isendIntranode(dst, tag int, data []byte) *Request {
	cfg := r.world.cfg
	shmNode := r.env.Shm()
	if cfg.Mechanism == shm.PiP {
		// PiP transports synchronize message sizes before any data
		// moves (the overhead PiP-MColl is designed to avoid).
		shmNode.SizeSync(r.proc)
	}
	shmNode.Handoff(r.proc) // notify the peer: cacheline ping
	_, dstLocal := r.world.cluster.Place(dst)
	env := r.world.getEnv()
	env.src, env.dst, env.tag, env.n = r.rank, dst, tag, len(data)
	env.srcLocal, env.msg, env.refs = r.local, -1, 1
	if len(data) <= cfg.IntranodeEager {
		// Eager: copy into the pooled bounce buffer now; receiver copies out.
		bounce := env.scratch(len(data))
		shmNode.Memcpy(r.proc, bounce, data)
		env.data = bounce
		r.world.fab.Inbox(fabric.Endpoint{Node: r.node, Queue: dstLocal}).Put(r.proc, env)
		q := r.getReq()
		q.kind, q.doneAt = reqSendAt, r.proc.Now()
		return q
	}
	// Rendezvous: expose the live buffer; the receiver performs the
	// single-copy transfer and signals completion. The flag must be a fresh
	// allocation — the request holds it past the envelope's recycle.
	env.data, env.zeroCopy, env.done = data, true, &simtime.Flag{}
	r.world.fab.Inbox(fabric.Endpoint{Node: r.node, Queue: dstLocal}).Put(r.proc, env)
	q := r.getReq()
	q.kind, q.flag = reqSendFlag, env.done
	return q
}

// AnySource matches a receive against any sender (MPI_ANY_SOURCE).
const AnySource = -1

// AnyTag matches a receive or probe against any tag (MPI_ANY_TAG).
const AnyTag = -1

// Irecv posts a nonblocking receive for a message from src (or AnySource)
// with the given tag into buf. Matching happens when the request is waited
// on.
func (r *Rank) Irecv(src, tag int, buf []byte) *Request {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: Irecv from rank %d in world of %d", src, r.Size()))
	}
	q := r.getReq()
	q.kind, q.src, q.tag, q.buf = reqRecv, src, tag, buf
	return q
}

// Wait blocks until the request completes and returns the transferred byte
// count. Waiting on an already-completed request returns immediately.
func (r *Rank) Wait(q *Request) int {
	if q.done {
		return q.n
	}
	switch q.kind {
	case reqSendAt:
		t0 := r.proc.Now()
		r.proc.AdvanceTo(q.doneAt)
		if env := q.env; env != nil {
			// Internode rendezvous: the source buffer becomes reusable when
			// Wait returns. If the receiver's copy has not executed yet (the
			// engine may run it later in real order even though its virtual
			// time is covered by doneAt), preserve the bytes by snapshotting
			// into the envelope's pooled scratch now; if it has, the data is
			// already out and no copy is ever made.
			q.env = nil
			if !env.consumed {
				snap := env.scratch(env.n)
				copy(snap, env.data)
				env.data = snap
			}
			r.world.putEnv(env)
		}
		if q.str != nil && q.doneAt > t0 && r.world.full() {
			// The sender's clock jumped over the message's in-flight
			// stages; attribute the drained interval stage by stage.
			for _, st := range q.str.Stages() {
				lo, hi := st.Start, st.End
				if lo < t0 {
					lo = t0
				}
				if hi > q.doneAt {
					hi = q.doneAt
				}
				if hi > lo {
					r.world.rec.PathSegFor(r.proc, st.Cat, lo, hi)
				}
			}
		}
	case reqSendFlag:
		r.setPending("send-rendezvous", -1, -1)
		q.flag.Wait(r.proc)
		r.clearPending()
	case reqRecv:
		r.completeRecv(q)
	}
	q.done = true
	r.putReq(q)
	return q.n
}

// Waitall completes every request. Receive requests are progressed before
// send requests so that matched zero-copy sends (including self-sends) can
// complete; within each class, requests finish in argument order.
func (r *Rank) Waitall(reqs ...*Request) {
	for _, q := range reqs {
		if q.kind == reqRecv {
			r.Wait(q)
		}
	}
	for _, q := range reqs {
		r.Wait(q)
	}
}

// completeRecv blocks for a matching envelope and finishes the transfer:
// copy-out costs for eager paths, the mechanism's single-copy cost for
// intranode rendezvous, and truncation checking throughout.
func (r *Rank) completeRecv(q *Request) {
	if r.world.opGate {
		r.opBoundary("recv", q.src) // AnySource (-1) never fails fast
	}
	if r.noise != nil {
		r.chargeNoise()
	}
	t0 := r.proc.Now()
	match := r.match(q.src, q.tag)
	r.setPending("recv", q.src, q.tag)
	wildcard := q.src == AnySource || q.tag == AnyTag
	inbox := r.world.fab.Inbox(r.ep)
	var item any
	switch d := r.world.cfg.OpTimeout; {
	case d > 0 && r.world.exploring:
		// Under exploration the timeout is a choice, not a race: with no
		// queued match, the chooser decides whether the watchdog fires here
		// or the receive blocks optimistically (a block that never completes
		// surfaces as a certified DeadlockError).
		deadline := t0.Add(d)
		if _, ok := inbox.TryPeek(r.proc, match); !ok {
			if r.world.engine.Chooser().Choose(simtime.ChooseTimeout, timeoutCands) == 1 {
				r.proc.AdvanceTo(deadline)
				panic(&TimeoutError{Rank: r.rank, Op: "recv", Source: q.src, Tag: q.tag,
					Deadline: deadline, Schedule: r.world.engine.Certificate()})
			}
		}
		item = r.getMatch(inbox, match, wildcard)
	case d > 0:
		deadline := t0.Add(d)
		got, ok := inbox.GetDeadline(r.proc, match, deadline)
		if !ok {
			panic(&TimeoutError{Rank: r.rank, Op: "recv",
				Source: q.src, Tag: q.tag, Deadline: deadline})
		}
		item = got
	default:
		item = r.getMatch(inbox, match, wildcard)
	}
	r.clearPending()
	env := envOf(item)
	if r.world.full() && env.msg >= 0 {
		// Tie the wait (blocked or clock-jumped) to the matched message so
		// the critical path can route through the fabric to the sender.
		r.world.rec.RecvWait(r.proc, t0, r.proc.Now(), env.msg)
	}
	if env.n > len(q.buf) {
		panic(fmt.Sprintf("mpi: truncation on recv: %dB message from rank %d (tag %d) into %dB buffer",
			env.n, env.src, env.tag, len(q.buf)))
	}
	cfg := r.world.cfg
	shmNode := r.env.Shm()
	intranode := r.world.cluster.SameNode(env.src, r.rank)
	switch {
	case intranode && env.zeroCopy:
		if cfg.Mechanism == shm.PiP {
			shmNode.SizeSync(r.proc)
		}
		copy(q.buf, env.data)
		shmNode.ChargeTransfer(r.proc, cfg.Mechanism, env.srcLocal, r.local, env.n)
		env.done.Set(r.proc, nil)
	case intranode:
		if cfg.Mechanism == shm.PiP {
			shmNode.SizeSync(r.proc)
		}
		shmNode.Memcpy(r.proc, q.buf[:env.n], env.data) // bounce copy-out
	default:
		// Internode: eager messages are copied out of the receive
		// buffer pool; rendezvous payloads landed in place.
		if env.n <= cfg.Fabric.EagerLimit {
			shmNode.Memcpy(r.proc, q.buf[:env.n], env.data)
		} else {
			copy(q.buf, env.data)
			env.consumed = true // sender's Wait may skip its snapshot
		}
	}
	q.n = env.n
	q.src = env.src
	q.tag = env.tag
	if r.world.traceP2P() {
		r.world.p2p(trace.Event{Kind: trace.KindRecv, At: r.proc.Now(),
			Src: env.src, Dst: r.rank, Tag: env.tag, Bytes: env.n, Intranode: intranode})
	}
	if r.world.full() {
		r.world.rec.ProcSpan(r.proc, fmt.Sprintf("recv←%d %dB", env.src, env.n),
			"p2p", t0, r.proc.Now())
	}
	r.world.putEnv(env) // the receive owns the last (or only) delivery handle
}

// timeoutCands are the two outcomes of an enumerated OpTimeout choice:
// 0 = block (the timeout does not fire), 1 = fire the watchdog now.
var timeoutCands = []simtime.Cand{{Proc: -1}, {Proc: -1}}

// getMatch takes the matching envelope off the inbox. Wildcard receives
// under exploration expose the queued-match selection as a ChooseMatch
// point; exact-match receives always take the oldest (MPI's non-overtaking
// rule leaves them no freedom).
func (r *Rank) getMatch(inbox *simtime.Mailbox, match func(any) bool, wildcard bool) any {
	if r.world.exploring && wildcard {
		return inbox.GetChoose(r.proc, match)
	}
	return inbox.Get(r.proc, match)
}

// opBoundary is the per-operation hook run at every MPI operation entry
// (sends, receive completions, probes, agreement arrivals) when the world
// has kills declared or a chooser attached. It delivers this rank's own
// pending death, counts the boundary, executes op-indexed kills
// (fault.KillOp) — dying at the boundary, or arming a mid-op death that the
// next boundary/resume or the quiescence detector delivers — and fails fast
// against a peer already known dead.
func (r *Rank) opBoundary(op string, peer int) {
	w := r.world
	if w.hasKills {
		r.checkSelfKill()
	}
	k := w.opCount[r.rank]
	w.opCount[r.rank] = k + 1
	if w.killOp[r.rank] == k {
		if w.killAfter[r.rank] {
			w.killAt[r.rank] = r.proc.Now()
		} else {
			w.killRank(r, r.proc.Now())
			panic(rankKilled{r.rank})
		}
	}
	if w.hasKills {
		r.checkPeerDead(op, peer)
	}
}

// Status describes a pending message observed by Probe/Iprobe.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Probe blocks until a message from src (or AnySource) with the given tag
// is pending, and returns its envelope metadata without consuming it — the
// classic pattern for sizing a receive buffer before Recv.
func (r *Rank) Probe(src, tag int) Status {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: Probe from rank %d in world of %d", src, r.Size()))
	}
	if r.world.opGate {
		r.opBoundary("probe", src)
	}
	if r.noise != nil {
		r.chargeNoise()
	}
	r.setPending("probe", src, tag)
	inbox := r.world.fab.Inbox(r.ep)
	var item any
	if r.world.exploring && (src == AnySource || tag == AnyTag) {
		item = inbox.PeekChoose(r.proc, r.match(src, tag))
	} else {
		item = inbox.Peek(r.proc, r.match(src, tag))
	}
	r.clearPending()
	env := envOf(item)
	return Status{Source: env.src, Tag: env.tag, Bytes: env.n}
}

// Iprobe reports whether a matching message is already pending, without
// blocking or consuming it. Like any non-blocking cross-process read in the
// simulation, it may report false for a message whose delivery is scheduled
// at an earlier virtual time but has not executed yet; the blocking Probe
// has no such caveat.
func (r *Rank) Iprobe(src, tag int) (Status, bool) {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: Iprobe from rank %d in world of %d", src, r.Size()))
	}
	item, ok := r.world.fab.Inbox(r.ep).TryPeek(r.proc, r.match(src, tag))
	if !ok {
		return Status{}, false
	}
	env := envOf(item)
	return Status{Source: env.src, Tag: env.tag, Bytes: env.n}, true
}

// Send is a blocking send: it returns when the source buffer is reusable.
func (r *Rank) Send(dst, tag int, data []byte) {
	r.Wait(r.Isend(dst, tag, data))
}

// Recv is a blocking receive; it returns the received byte count.
func (r *Rank) Recv(src, tag int, buf []byte) int {
	return r.Wait(r.Irecv(src, tag, buf))
}

// Sendrecv exchanges messages with two (possibly different) peers without
// deadlocking, the workhorse of ring and Bruck algorithms.
func (r *Rank) Sendrecv(dst, sendTag int, sendData []byte, src, recvTag int, recvBuf []byte) int {
	rq := r.Irecv(src, recvTag, recvBuf)
	sq := r.Isend(dst, sendTag, sendData)
	r.Waitall(rq, sq)
	return rq.n
}

// Phase is an open display span on the rank's track, closed with End. The
// zero value (returned when no full recorder is attached) is a no-op, so
// instrumented algorithms cost nothing un-observed.
type Phase struct {
	r     *Rank
	name  string
	cat   string
	start simtime.Time
	on    bool
}

// Traced reports whether full-fidelity span recording is active. Callers
// that build span names dynamically (fmt.Sprintf etc.) should check it
// first so untraced runs skip the formatting allocation entirely.
func (r *Rank) Traced() bool { return r.world.full() }

// SpanStart opens a display span on the rank's track, e.g. a collective
// ("allgather 1KiB") or an algorithm phase. Nesting is by interval: close the
// inner phase before the outer and the viewer renders the hierarchy.
func (r *Rank) SpanStart(name, cat string) Phase {
	if r.world.full() {
		return Phase{r: r, name: name, cat: cat, start: r.proc.Now(), on: true}
	}
	return Phase{}
}

// PhaseStart opens an algorithm-phase span (category "phase").
func (r *Rank) PhaseStart(name string) Phase { return r.SpanStart(name, "phase") }

// End closes the span at the rank's current time.
func (ph Phase) End() {
	if ph.on {
		ph.r.world.rec.ProcSpan(ph.r.proc, ph.name, ph.cat, ph.start, ph.r.proc.Now())
	}
}
