package mpi

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// TestOpTimeoutTypedError pins the per-op virtual-time timeout: a receive
// that can never match aborts the run with a *TimeoutError naming the rank,
// operation and (source, tag), instead of wedging until the watchdog fires.
func TestOpTimeoutTypedError(t *testing.T) {
	w := newWorld(t, 2, 1, func(c *Config) {
		c.OpTimeout = simtime.Duration(simtime.Millisecond)
	})
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Recv(0, 9, make([]byte, 8))
		}
	})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Rank != 1 || te.Op != "recv" || te.Source != 0 || te.Tag != 9 {
		t.Errorf("timeout diagnosis = %+v, want rank 1 recv src=0 tag=9", te)
	}
	if want := simtime.Time(0).Add(simtime.Duration(simtime.Millisecond)); te.Deadline != want {
		t.Errorf("deadline = %v, want %v", te.Deadline, want)
	}
}

// TestOpTimeoutDoesNotFireOnMatch pins that a satisfied receive under a
// timeout behaves identically to one without.
func TestOpTimeoutDoesNotFireOnMatch(t *testing.T) {
	run := func(timeout simtime.Duration) simtime.Time {
		w := newWorld(t, 2, 1, func(c *Config) { c.OpTimeout = timeout })
		if err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(1, 5, make([]byte, 256))
			} else {
				r.Recv(0, 5, make([]byte, 256))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Horizon()
	}
	if a, b := run(0), run(simtime.Duration(simtime.Second)); a != b {
		t.Errorf("horizon with timeout %v != without %v", b, a)
	}
}

// TestDeadlockDiagnosisNamesBothRanks pins the watchdog output for the
// classic crossed-receive deadlock: both ranks blocked, each entry carrying
// the pending (source, tag) and the waker chain.
func TestDeadlockDiagnosisNamesBothRanks(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(1, 7, make([]byte, 8))
		} else {
			r.Recv(0, 8, make([]byte, 8))
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %+v, want both ranks", de.Blocked)
	}
	for i, want := range []BlockedRank{
		{Rank: 0, Op: "recv", Source: 1, Tag: 7, WaitsOn: 1},
		{Rank: 1, Op: "recv", Source: 0, Tag: 8, WaitsOn: 0},
	} {
		got := de.Blocked[i]
		if got.Rank != want.Rank || got.Op != want.Op || got.Source != want.Source ||
			got.Tag != want.Tag || got.WaitsOn != want.WaitsOn {
			t.Errorf("blocked[%d] = %+v, want %+v", i, got, want)
		}
	}
	// The engine-level diagnosis stays reachable for callers that want the
	// raw parked-process view.
	var se *simtime.DeadlockError
	if !errors.As(err, &se) || len(se.Info) != 2 {
		t.Errorf("engine diagnosis not reachable through Unwrap: %v", err)
	}
}

// TestDeadlockReportedThroughObs pins the watchdog → observability wiring:
// an instrumented wedged run records the deadlock counter and a terminal
// span per stuck rank.
func TestDeadlockReportedThroughObs(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	rec := obs.NewRecorder()
	w.Observe(rec)
	err := w.Run(func(r *Rank) {
		peer := 1 - r.Rank()
		r.Recv(peer, 3, make([]byte, 8))
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if got := rec.Metrics().Counter("watchdog.deadlocks").Value(); got != 1 {
		t.Errorf("watchdog.deadlocks = %d, want 1", got)
	}
}

// TestNoisePlanChargesRanks pins OS-noise billing: a noisy run is slower,
// deterministic per seed, and accounts its stolen time in fault.noise_ns.
func TestNoisePlanChargesRanks(t *testing.T) {
	body := func(r *Rank) {
		for i := 0; i < 20; i++ {
			peer := 1 - r.Rank()
			r.Sendrecv(peer, 100+i, make([]byte, 512), peer, 100+i, make([]byte, 512))
		}
	}
	run := func(seed uint64, amp simtime.Duration) (simtime.Time, int64) {
		cfg := DefaultConfig()
		if amp > 0 {
			cfg.Faults = fault.MustNew(fault.Spec{Seed: seed, Noise: []fault.Noise{{
				Amplitude: amp,
				Period:    2 * simtime.Microsecond,
				Jitter:    0.3,
			}}})
		}
		w, err := NewWorld(topology.New(2, 1, topology.Block), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewLiteRecorder()
		w.Observe(rec)
		if err := w.Run(body); err != nil {
			t.Fatal(err)
		}
		return w.Horizon(), rec.Metrics().Counter("fault.noise_ns").Value()
	}
	clean, cleanNoise := run(1, 0)
	if cleanNoise != 0 {
		t.Fatalf("fault-free run billed %dns of noise", cleanNoise)
	}
	noisy1, billed1 := run(1, 5*simtime.Microsecond)
	noisy2, billed2 := run(1, 5*simtime.Microsecond)
	if noisy1 != noisy2 || billed1 != billed2 {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", noisy1, billed1, noisy2, billed2)
	}
	if noisy1 <= clean {
		t.Errorf("noisy horizon %v not later than clean %v", noisy1, clean)
	}
	if billed1 <= 0 {
		t.Errorf("fault.noise_ns = %d, want > 0", billed1)
	}
}

// TestStragglerSkewsOneRank pins that a single-rank noise plan (a
// straggler) affects only the chosen rank's operations yet still delays the
// collective's completion (the healthy rank waits for the straggler).
func TestStragglerSkewsOneRank(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = fault.MustNew(fault.Spec{Seed: 2, Noise: []fault.Noise{{
		Ranks:     []int{1},
		Amplitude: 20 * simtime.Microsecond,
		Period:    500 * simtime.Nanosecond,
	}}})
	body := func(r *Rank) {
		peer := 1 - r.Rank()
		for i := 0; i < 10; i++ {
			r.Sendrecv(peer, 1+i, make([]byte, 64), peer, 1+i, make([]byte, 64))
		}
	}
	w, err := NewWorld(topology.New(2, 1, topology.Block), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	straggled := w.Horizon()

	clean := MustNewWorld(topology.New(2, 1, topology.Block), DefaultConfig())
	if err := clean.Run(body); err != nil {
		t.Fatal(err)
	}
	if straggled <= clean.Horizon() {
		t.Errorf("straggler horizon %v not later than clean %v", straggled, clean.Horizon())
	}
}

func TestConfigRejectsNegativeOpTimeout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OpTimeout = -1
	if _, err := NewWorld(topology.New(1, 2, topology.Block), cfg); err == nil {
		t.Fatal("negative OpTimeout accepted")
	}
}
