package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/nums"
	"repro/internal/shm"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newWorld(t *testing.T, nodes, ppn int, mut func(*Config)) *World {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	w, err := NewWorld(topology.New(nodes, ppn, topology.Block), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func run(t *testing.T, w *World, body func(*Rank)) {
	t.Helper()
	if err := w.Run(body); err != nil {
		t.Fatalf("world run: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.IntranodeEager = 0
	if bad.Validate() == nil {
		t.Fatal("zero intranode eager accepted")
	}
	if _, err := NewWorld(topology.New(1, 1, topology.Block), bad); err == nil {
		t.Fatal("NewWorld accepted bad config")
	}
	// Shared-memory calibration flows through Config.Validate too, so a
	// poisoned (NaN) bandwidth must be refused at world construction.
	bad = DefaultConfig()
	bad.Shm.CopyBandwidth = math.NaN()
	if _, err := NewWorld(topology.New(1, 2, topology.Block), bad); err == nil {
		t.Fatal("NewWorld accepted NaN shm bandwidth")
	}
	bad = DefaultConfig()
	bad.Fabric.LinkBandwidth = math.Inf(1)
	if _, err := NewWorld(topology.New(2, 1, topology.Block), bad); err == nil {
		t.Fatal("NewWorld accepted infinite fabric bandwidth")
	}
}

func TestInternodeSendRecv(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	msg := []byte("across the fabric")
	run(t, w, func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 42, msg)
		case 1:
			buf := make([]byte, len(msg))
			n := r.Recv(0, 42, buf)
			if n != len(msg) || !bytes.Equal(buf, msg) {
				t.Errorf("recv = %d %q", n, buf)
			}
		}
	})
}

func TestIntranodeSmallAndLarge(t *testing.T) {
	for _, size := range []int{16, 100 << 10} {
		size := size
		t.Run(fmt.Sprintf("%dB", size), func(t *testing.T) {
			w := newWorld(t, 1, 2, nil)
			msg := make([]byte, size)
			nums.FillBytes(msg, 3)
			run(t, w, func(r *Rank) {
				if r.Rank() == 0 {
					r.Send(1, 7, msg)
				} else {
					buf := make([]byte, size)
					r.Recv(0, 7, buf)
					if !bytes.Equal(buf, msg) {
						t.Error("intranode payload corrupted")
					}
				}
			})
		})
	}
}

func TestEagerSnapshotAllowsBufferReuse(t *testing.T) {
	// Sender mutates its buffer right after Send returns; the receiver
	// must still observe the original bytes.
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			buf := []byte{1, 2, 3, 4}
			r.Send(1, 0, buf)
			buf[0] = 99
		} else {
			got := make([]byte, 4)
			r.Proc().Advance(simtime.Second) // receive long after the mutation
			r.Recv(0, 0, got)
			if got[0] != 1 {
				t.Errorf("receiver saw mutated eager buffer: %v", got)
			}
		}
	})
}

func TestRendezvousInternode(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	size := w.Config().Fabric.EagerLimit * 4
	msg := make([]byte, size)
	nums.FillBytes(msg, 9)
	var sendDone, recvDone simtime.Time
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 5, msg)
			sendDone = r.Now()
		} else {
			buf := make([]byte, size)
			r.Recv(0, 5, buf)
			recvDone = r.Now()
			if !bytes.Equal(buf, msg) {
				t.Error("rendezvous payload corrupted")
			}
		}
	})
	if sendDone == 0 || recvDone < sendDone {
		t.Errorf("send done %v, recv done %v", sendDone, recvDone)
	}
}

func TestIntranodeZeroCopySenderBlocksUntilReceiverCopies(t *testing.T) {
	w := newWorld(t, 1, 2, nil)
	size := w.Config().IntranodeEager * 8
	msg := make([]byte, size)
	var sendDone, recvStart simtime.Time
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1, msg)
			sendDone = r.Now()
		} else {
			r.Proc().Advance(5 * simtime.Microsecond) // receiver is late
			recvStart = r.Now()
			r.Recv(0, 1, make([]byte, size))
		}
	})
	if sendDone < recvStart {
		t.Errorf("zero-copy send completed at %v before receiver engaged at %v", sendDone, recvStart)
	}
}

func TestSelfSendWithWaitall(t *testing.T) {
	for _, size := range []int{8, 64 << 10} {
		size := size
		t.Run(fmt.Sprintf("%dB", size), func(t *testing.T) {
			w := newWorld(t, 1, 1, nil)
			msg := make([]byte, size)
			nums.FillBytes(msg, 1)
			run(t, w, func(r *Rank) {
				buf := make([]byte, size)
				sq := r.Isend(0, 3, msg)
				rq := r.Irecv(0, 3, buf)
				r.Waitall(sq, rq)
				if !bytes.Equal(buf, msg) {
					t.Error("self-send corrupted")
				}
			})
		})
	}
}

func TestSendrecvRing(t *testing.T) {
	// Every rank passes a token to its right neighbour simultaneously.
	const n = 6
	w := newWorld(t, 3, 2, nil)
	got := make([]int, n)
	run(t, w, func(r *Rank) {
		right := (r.Rank() + 1) % n
		left := (r.Rank() - 1 + n) % n
		out := []byte{byte(r.Rank())}
		in := make([]byte, 1)
		r.Sendrecv(right, 11, out, left, 11, in)
		got[r.Rank()] = int(in[0])
	})
	for rank, v := range got {
		if want := (rank - 1 + n) % n; v != want {
			t.Errorf("rank %d received %d, want %d", rank, v, want)
		}
	}
}

func TestTagMatchingOutOfOrderArrival(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 100, []byte{100})
			r.Send(1, 200, []byte{200})
		} else {
			buf := make([]byte, 1)
			r.Recv(0, 200, buf) // match the second message first
			if buf[0] != 200 {
				t.Errorf("tag 200 delivered %d", buf[0])
			}
			r.Recv(0, 100, buf)
			if buf[0] != 100 {
				t.Errorf("tag 100 delivered %d", buf[0])
			}
		}
	})
}

func TestTruncationPanics(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, make([]byte, 16))
		} else {
			r.Recv(0, 0, make([]byte, 8))
		}
	})
	if err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestBadRankPanics(t *testing.T) {
	w := newWorld(t, 1, 1, nil)
	if err := w.Run(func(r *Rank) { r.Send(5, 0, nil) }); err == nil {
		t.Fatal("send to bad rank accepted")
	}
	w2 := newWorld(t, 1, 1, nil)
	if err := w2.Run(func(r *Rank) { r.Recv(-1, 0, nil) }); err == nil {
		t.Fatal("recv from bad rank accepted")
	}
}

func TestUnmatchedRecvDeadlocks(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Recv(0, 9, make([]byte, 4)) // nobody sends
		}
	})
	var dl *simtime.DeadlockError
	if !asDeadlock(err, &dl) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func asDeadlock(err error, dl **simtime.DeadlockError) bool {
	// World.Run wraps the engine diagnosis in *mpi.DeadlockError.
	return errors.As(err, dl)
}

func TestPiPMechanismChargesSizeSync(t *testing.T) {
	countSyncs := func(mech shm.Mechanism) int64 {
		w := newWorld(t, 1, 2, func(c *Config) { c.Mechanism = mech })
		run(t, w, func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(1, 0, make([]byte, 64))
			} else {
				r.Recv(0, 0, make([]byte, 64))
			}
		})
		return w.Env(0).Shm().Stats().SizeSyncs
	}
	if n := countSyncs(shm.PiP); n != 2 {
		t.Errorf("PiP mechanism charged %d size syncs, want 2 (sender+receiver)", n)
	}
	if n := countSyncs(shm.POSIX); n != 0 {
		t.Errorf("POSIX mechanism charged %d size syncs, want 0", n)
	}
}

func TestMechanismAffectsLargeTransferTime(t *testing.T) {
	elapsed := func(mech shm.Mechanism) simtime.Time {
		w := newWorld(t, 1, 2, func(c *Config) { c.Mechanism = mech })
		var end simtime.Time
		run(t, w, func(r *Rank) {
			const size = 256 << 10
			if r.Rank() == 0 {
				r.Send(1, 0, make([]byte, size))
			} else {
				r.Recv(0, 0, make([]byte, size))
				end = r.Now()
			}
		})
		return end
	}
	posix := elapsed(shm.POSIX)
	cma := elapsed(shm.CMA)
	if cma >= posix {
		t.Errorf("CMA single copy (%v) should beat POSIX double copy (%v) at 256kB", cma, posix)
	}
}

func TestEpochLockstep(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	epochs := make([]uint64, 4)
	run(t, w, func(r *Rank) {
		r.NextEpoch()
		epochs[r.Rank()] = r.NextEpoch()
	})
	for rank, e := range epochs {
		if e != 2 {
			t.Errorf("rank %d epoch = %d, want 2", rank, e)
		}
	}
}

func TestHarnessBarrierFree(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	ends := make([]simtime.Time, 4)
	run(t, w, func(r *Rank) {
		r.Proc().Advance(simtime.Duration(r.Rank()) * simtime.Microsecond)
		r.HarnessBarrier()
		ends[r.Rank()] = r.Now()
	})
	for rank, e := range ends {
		if want := simtime.Time(3 * simtime.Microsecond); e != want {
			t.Errorf("rank %d left harness barrier at %v, want %v", rank, e, want)
		}
	}
}

func TestRankAccessors(t *testing.T) {
	w := newWorld(t, 2, 3, nil)
	run(t, w, func(r *Rank) {
		if r.Size() != 6 || r.World() != w || r.Cluster() != w.Cluster() {
			t.Error("accessors wrong")
		}
		node, local := w.Cluster().Place(r.Rank())
		if r.Node() != node || r.Local() != local {
			t.Errorf("rank %d placement (%d,%d) vs (%d,%d)", r.Rank(), r.Node(), r.Local(), node, local)
		}
		if r.Env() != w.Env(node) {
			t.Error("env mismatch")
		}
	})
}

func TestWaitIdempotent(t *testing.T) {
	w := newWorld(t, 2, 1, nil)
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			q := r.Isend(1, 0, []byte{1})
			r.Wait(q)
			before := r.Now()
			if n := r.Wait(q); n != 0 || r.Now() != before {
				t.Error("second Wait had effects")
			}
		} else {
			q := r.Irecv(0, 0, make([]byte, 1))
			if n := r.Wait(q); n != 1 {
				t.Errorf("recv n = %d", n)
			}
			if n := r.Wait(q); n != 1 {
				t.Errorf("repeat Wait n = %d", n)
			}
		}
	})
}

func TestManyRanksAllToOne(t *testing.T) {
	// 4 nodes x 4 ranks funnel to rank 0, mixing intra- and internode.
	w := newWorld(t, 4, 4, nil)
	const n = 16
	sum := 0
	run(t, w, func(r *Rank) {
		if r.Rank() == 0 {
			buf := make([]byte, 1)
			for src := 1; src < n; src++ {
				r.Recv(src, src, buf)
				sum += int(buf[0])
			}
		} else {
			r.Send(0, r.Rank(), []byte{byte(r.Rank())})
		}
	})
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestWorldAccessorsAndHorizon(t *testing.T) {
	w := newWorld(t, 2, 2, nil)
	if w.Fabric() == nil || w.Config().IntranodeEager <= 0 {
		t.Fatal("world accessors wrong")
	}
	run(t, w, func(r *Rank) {
		r.Proc().Advance(7 * simtime.Microsecond)
	})
	if w.Horizon() != simtime.Time(7*simtime.Microsecond) {
		t.Fatalf("horizon = %v", w.Horizon())
	}
}
