package mpi

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/simtime"
)

// FuzzMatching drives the (source, tag) matching machinery with fuzzed
// schedules: a random set of messages from three senders to one receiver,
// random tags with deliberate duplicates, random payload sizes spanning the
// eager and rendezvous regimes, and a random permutation of the receive
// posting order. Every rank posts all of its nonblocking operations before
// any Waitall, so a correct matcher can never deadlock regardless of the
// schedule; a hang here is a matching bug and surfaces as a simulated
// deadlock error from World.Run.
//
// The checked property is MPI's non-overtaking rule: among messages with the
// same (source, tag), the j-th posted receive must complete with the j-th
// posted send, and the payload must arrive intact.
//
// Half the input space additionally arms a fuzzed (rank, kill-time) pair: the
// chosen rank dies permanently at the chosen virtual time, which — depending
// on where the time lands — cuts it down inside a send, a receive, a park in
// Waitall, or after it already finished. The checked property then weakens
// exactly as ULFM specifies and no further: the run still terminates (never
// wedges into a deadlock report), every surviving rank's operations either
// complete or fail with a typed *ProcFailedError naming a genuinely dead
// rank, and every receive slot that did complete still satisfies
// non-overtaking with an intact payload — never a wrong answer.
func FuzzMatching(f *testing.F) {
	f.Add([]byte{3, 4, 0, 1, 2})
	f.Add([]byte{11, 2, 1, 1, 1, 1, 2, 2, 3, 0, 0, 9, 9, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 12, 2, 3, 2, 3, 2, 3, 0, 0, 0, 255, 128, 64, 32, 16})
	// Seeds with the kill triple armed: sender killed at t=0, receiver killed
	// mid-schedule, late kill that may land after completion.
	f.Add([]byte{5, 6, 1, 2, 0, 1, 1, 0})
	f.Add([]byte{9, 8, 2, 2, 1, 3, 1, 0, 50, 200, 7, 7})
	f.Add([]byte{4, 10, 3, 1, 2, 0, 1, 3, 255, 9})
	// Seeds transcribed from the model checker's minimized counterexamples
	// against the planted broken-allreduce (internal/mc): certificates
	// mc1;t0/4,t0/3,t0/2,m1/2 and mc1;t0/4,t2/3,t1/2 convict an
	// arrival-order assumption on three same-tag senders into rank 0. These
	// encode that scenario in this harness's byte protocol — one message per
	// sender on a shared tag with the receive posting order permuted — at an
	// eager size, a rendezvous size, and with a mid-schedule kill.
	f.Add([]byte{2, 0, 0, 0, 1, 0, 2, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 12, 0, 0, 1, 0, 2, 0, 1, 1, 0, 0, 0})
	f.Add([]byte{2, 5, 0, 0, 1, 0, 2, 0, 1, 0, 1, 2, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		pos := 0
		next := func() int {
			b := data[pos%len(data)]
			pos++
			return int(b)
		}

		const nsenders = 3
		n := 1 + next()%12
		// 8B .. 32kB: small enough to stay fast, large enough to cross both
		// the intranode eager threshold and the fabric EagerLimit.
		size := 8 << (next() % 13)

		type spec struct{ src, tag, seq int }
		specs := make([]spec, n)
		perSrcTag := map[[2]int]int{}
		for i := range specs {
			src := 1 + next()%nsenders
			tag := next() % 4
			key := [2]int{src, tag}
			specs[i] = spec{src: src, tag: tag, seq: perSrcTag[key]}
			perSrcTag[key]++
		}

		// Fisher-Yates permutation of the receive posting order.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := next() % (i + 1)
			order[i], order[j] = order[j], order[i]
		}

		// Expected sequence number for each receive slot, in posting order:
		// the j-th posted receive for a given (source, tag) must match the
		// j-th posted send for that pair.
		type slot struct {
			src, tag, wantSeq int
			buf               []byte
		}
		slots := make([]slot, n)
		perRecv := map[[2]int]int{}
		for p, i := range order {
			s := specs[i]
			key := [2]int{s.src, s.tag}
			slots[p] = slot{src: s.src, tag: s.tag, wantSeq: perRecv[key], buf: make([]byte, size)}
			perRecv[key]++
		}

		fill := func(buf []byte, s spec) {
			buf[0], buf[1], buf[2] = byte(s.src), byte(s.tag), byte(s.seq)
			pat := byte(s.src*31 + s.tag*7 + s.seq + 1)
			for k := 3; k < len(buf); k++ {
				buf[k] = pat
			}
		}

		// The fuzzed kill triple: whether a rank dies, which one, and when
		// (0 .. ~51µs in 200ns steps, straddling typical schedule makespans
		// so kills land before, inside, and after the message exchange).
		killArmed := next()%2 == 1
		killRank := next() % 4
		killAt := simtime.Time(next()) * simtime.Time(200*simtime.Nanosecond)

		// Ranks 0,1 share node 0 and ranks 2,3 share node 1 under block
		// mapping, so sender 1 exercises the shared-memory path and senders
		// 2,3 the fabric path in the same schedule.
		var mut func(*Config)
		if killArmed {
			mut = func(cfg *Config) {
				cfg.Faults = fault.MustNew(fault.Spec{
					KillRanks: []fault.KillRank{{Rank: killRank, At: killAt}},
				})
			}
		}
		w := newWorld(t, 2, 2, mut)
		errs := make([]error, 4)
		run(t, w, func(r *Rank) {
			errs[r.Rank()] = Try(func() {
				var reqs []*Request
				if r.Rank() == 0 {
					for p := range slots {
						reqs = append(reqs, r.Irecv(slots[p].src, slots[p].tag, slots[p].buf))
					}
				} else {
					for _, s := range specs {
						if s.src != r.Rank() {
							continue
						}
						payload := make([]byte, size)
						fill(payload, s)
						reqs = append(reqs, r.Isend(0, s.tag, payload))
					}
				}
				r.Waitall(reqs...)
			})
		})

		if len(w.DeadRanks()) == 0 {
			// Fault-free (or the kill never came due): full verification.
			for rank, e := range errs {
				if e != nil {
					t.Fatalf("rank %d failed without any death: %v", rank, e)
				}
			}
			for p, sl := range slots {
				got := spec{src: int(sl.buf[0]), tag: int(sl.buf[1]), seq: int(sl.buf[2])}
				if got.src != sl.src || got.tag != sl.tag || got.seq != sl.wantSeq {
					t.Fatalf("recv slot %d (src=%d tag=%d): got header %+v, want seq %d (non-overtaking violated)",
						p, sl.src, sl.tag, got, sl.wantSeq)
				}
				pat := byte(sl.src*31 + sl.tag*7 + sl.wantSeq + 1)
				for k := 3; k < len(sl.buf); k++ {
					if sl.buf[k] != pat {
						t.Fatalf("recv slot %d: payload byte %d = %#x, want %#x", p, k, sl.buf[k], pat)
					}
				}
			}
			return
		}

		// Somebody died. The run already terminated (run() would have failed
		// on a deadlock); check every surviving failure is the typed error
		// naming a real dead rank.
		for rank, e := range errs {
			if e == nil || rank == killRank {
				continue
			}
			var pf *ProcFailedError
			if !errors.As(e, &pf) {
				t.Fatalf("rank %d: want ProcFailedError, got %v", rank, e)
			}
			if !w.Dead(pf.Rank) {
				t.Fatalf("rank %d blames rank %d, which is alive: %v", rank, pf.Rank, e)
			}
		}
		// Completed receives must still be right: a filled slot (senders are
		// ranks 1-3, so a filled header byte is nonzero) satisfies the same
		// non-overtaking and payload-integrity checks as a fault-free run.
		for p, sl := range slots {
			if sl.buf[0] == 0 {
				continue // never completed; buffer undefined by contract
			}
			got := spec{src: int(sl.buf[0]), tag: int(sl.buf[1]), seq: int(sl.buf[2])}
			if got.src != sl.src || got.tag != sl.tag || got.seq != sl.wantSeq {
				t.Fatalf("recv slot %d (src=%d tag=%d): completed with header %+v, want seq %d (wrong answer under failure)",
					p, sl.src, sl.tag, got, sl.wantSeq)
			}
			pat := byte(sl.src*31 + sl.tag*7 + sl.wantSeq + 1)
			for k := 3; k < len(sl.buf); k++ {
				if sl.buf[k] != pat {
					t.Fatalf("recv slot %d: payload byte %d = %#x, want %#x", p, k, sl.buf[k], pat)
				}
			}
		}
	})
}
