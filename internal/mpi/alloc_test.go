package mpi

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/race"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// mallocsDuring runs fn and returns the heap-object delta. World execution
// is sequential (the engine runs one goroutine at a time), so the global
// counter attributes cleanly to the simulated work between the reads.
func mallocsDuring(fn func()) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	fn()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// measureSendRecv runs iters matched send/recv pairs between two ranks
// (after a warm-up block that grows the envelope/request pools and mailbox
// slices) and returns allocations per send+recv pair.
func measureSendRecv(t *testing.T, nodes, ppn, size, iters int) float64 {
	t.Helper()
	w := newWorld(t, nodes, ppn, nil)
	msg := make([]byte, size)
	buf := make([]byte, size)
	var allocs uint64
	run(t, w, func(r *Rank) {
		peer := 1 - r.Rank()
		pump := func(n int) {
			for i := 0; i < n; i++ {
				if r.Rank() == 0 {
					r.Send(peer, 7, msg)
					r.Recv(peer, 8, buf)
				} else {
					r.Recv(peer, 7, buf)
					r.Send(peer, 8, msg)
				}
			}
		}
		pump(iters) // warm-up: pools and slices reach steady state
		if r.Rank() == 0 {
			allocs = mallocsDuring(func() { pump(iters) })
		} else {
			pump(iters)
		}
	})
	return float64(allocs) / float64(iters)
}

// TestSendRecvAllocCeilings pins the steady-state allocation cost of the
// point-to-point hot paths with no tracer or recorder attached: pooled
// envelopes and requests, the cached matcher, payload-carrying fabric
// delivery and lazy park reasons together make the per-message cost a
// small constant. The ceilings are deliberately a little above the
// measured values; they exist to catch a reintroduced per-message
// allocation (a fresh envelope, request, closure or trace event), which
// costs 2+ objects per pair and clears the ceiling by a wide margin.
func TestSendRecvAllocCeilings(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation ceilings are pinned for non-race builds only")
	}
	cases := []struct {
		name       string
		nodes, ppn int
		size       int
		ceiling    float64
	}{
		// Intranode eager: bounce-buffer copy through the pooled scratch.
		{"intranode-eager", 1, 2, 256, 1.0},
		// Intranode rendezvous keeps one fresh completion flag per message
		// (the receiver may outlive the envelope's recycle), plus that
		// flag's waiter list: 2 objects per message, 4 per pair.
		{"intranode-rendezvous", 1, 2, 16 << 10, 5.0},
		// Internode eager: pooled envelope through the fabric, payload
		// delivered without boxing a Packet.
		{"internode-eager", 2, 1, 256, 3.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			per := measureSendRecv(t, c.nodes, c.ppn, c.size, 400)
			t.Logf("%s: %.3f allocs per send+recv pair", c.name, per)
			if per > c.ceiling {
				t.Fatalf("%s allocates %.3f objects per send+recv pair, ceiling %.1f",
					c.name, per, c.ceiling)
			}
		})
	}
}

// TestUntracedP2PSkipsEventConstruction proves the tracer gate: the same
// eager exchange is allocation-measured with and without a tracer, and the
// traced run must cost strictly more — the per-message trace events exist
// only when someone is listening. (The untraced side is already pinned
// near zero by TestSendRecvAllocCeilings.)
func TestUntracedP2PSkipsEventConstruction(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation comparison is meaningful on non-race builds only")
	}
	// Ping-pong so sender and receiver stay in lockstep: the envelope pool
	// reaches steady state and any measured allocation is per-message work,
	// not pool growth.
	exchange := func(w *World) uint64 {
		msg := make([]byte, 128)
		buf := make([]byte, 128)
		var allocs uint64
		run(t, w, func(r *Rank) {
			peer := 1 - r.Rank()
			pump := func(n int) {
				for i := 0; i < n; i++ {
					if r.Rank() == 0 {
						r.Send(peer, 7, msg)
						r.Recv(peer, 8, buf)
					} else {
						r.Recv(peer, 7, buf)
						r.Send(peer, 8, msg)
					}
				}
			}
			pump(200)
			if r.Rank() == 0 {
				allocs = mallocsDuring(func() { pump(200) })
			} else {
				pump(200)
			}
		})
		return allocs
	}

	bare := newWorld(t, 1, 2, nil)
	plain := exchange(bare)

	traced := newWorld(t, 1, 2, nil)
	log := trace.NewLog(0)
	traced.SetTracer(log)
	withTracer := exchange(traced)

	t.Logf("200 exchange pairs: %d allocs untraced, %d traced (%d trace events)", plain, withTracer, log.Len())
	if log.Len() == 0 {
		t.Fatal("tracer saw no events; comparison is vacuous")
	}
	if withTracer <= plain {
		t.Fatalf("traced run allocated %d <= untraced %d; p2p gate is not the live path", withTracer, plain)
	}
	if plain > 20 {
		t.Fatalf("untraced run allocated %d objects over 200 exchange pairs; trace construction leaking past the gate", plain)
	}
}

// TestRendezvousSendBufferReuseAfterWait pins the deferred-snapshot
// contract for internode rendezvous sends: once Wait(sendReq) returns, the
// sender may immediately reuse (mutate) its buffer, whether the receiver
// has already consumed the message or has not yet posted its receive. The
// receiver must observe the original bytes in both orders.
func TestRendezvousSendBufferReuseAfterWait(t *testing.T) {
	const size = 64 << 10 // over the 16 KiB internode eager limit
	for _, tc := range []struct {
		name      string
		recvDelay simtime.Duration
	}{
		// Receiver posts first: the transfer copies straight from the live
		// buffer and marks the envelope consumed before the sender's Wait.
		{"receiver-first", 0},
		// Receiver arrives long after the sender's Wait returned and the
		// buffer was scribbled over: Wait must have snapshotted.
		{"sender-wait-first", simtime.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorld(t, 2, 1, nil)
			want := make([]byte, size)
			for i := range want {
				want[i] = byte(i * 7)
			}
			run(t, w, func(r *Rank) {
				switch r.Rank() {
				case 0:
					buf := make([]byte, size)
					copy(buf, want)
					q := r.Isend(1, 5, buf)
					r.Wait(q)
					// Contract point: after Wait the buffer is the
					// sender's again. Scribble over every byte.
					for i := range buf {
						buf[i] = 0xEE
					}
					// Second message proves the recycled envelope does
					// not alias the first transfer's bytes.
					r.Send(1, 6, []byte("second"))
				case 1:
					if tc.recvDelay > 0 {
						r.Proc().Sleep(tc.recvDelay)
					}
					got := make([]byte, size)
					r.Recv(0, 5, got)
					if !bytes.Equal(got, want) {
						t.Error("rendezvous payload corrupted by sender's post-Wait buffer reuse")
					}
					small := make([]byte, 6)
					r.Recv(0, 6, small)
					if string(small) != "second" {
						t.Errorf("follow-up message = %q", small)
					}
				}
			})
		})
	}
}
