package mpi

import (
	"fmt"

	"repro/internal/simtime"
)

// Record attaches a schedule recording (see simtime.Recording) to the
// world's engine, for goroutine-free replay of the run's event DAG. It must
// be called before Run.
//
// Record is the static half of the replay eligibility gate: it refuses any
// configuration whose execution may depend on data, failures, or wall-clock
// observation rather than on the (topology, algorithm, size-class) shape
// alone — a fault plan (Plan.HasKills-style inspection is subsumed by
// refusing every plan: noise and link faults perturb timing just as kills
// do), operation timeouts (deadline-bounded waits race their wakeups), and
// attached tracers or recorders (observer callbacks are not part of the
// DAG, and replay runs no rank code to feed them). The dynamic half is the
// recording-time taint flag: hazards only visible during execution
// (cancellable timers, failure delivery, quiescence activity) void the
// recording even if the static gate passed.
func (w *World) Record() (*simtime.Recording, error) {
	if reason := w.replayIneligible(); reason != "" {
		return nil, fmt.Errorf("mpi: record refused: %s", reason)
	}
	return w.engine.Record()
}

// replayIneligible returns the static reason this world's runs cannot be
// recorded for replay, or "" when recording is allowed.
func (w *World) replayIneligible() string {
	switch {
	case w.hasKills:
		return "fault plan has kills"
	case w.cfg.Faults != nil:
		return "fault plan attached"
	case w.cfg.OpTimeout > 0:
		return "operation timeouts enabled"
	case w.tracer != nil:
		return "tracer attached"
	case w.rec != nil:
		return "recorder attached"
	}
	return ""
}
