// Package mpi is a miniature MPI runtime over the simulated cluster: ranks,
// tagged point-to-point messaging (blocking and nonblocking), and the
// transport selection logic real MPI libraries apply — shared memory inside
// a node (with a configurable mechanism: PiP, POSIX, CMA, XPMEM, KNEM) and
// the fabric between nodes (eager for small payloads, rendezvous for large).
//
// It implements just enough of the MPI surface for every algorithm in the
// paper to run unmodified: Send/Recv/Isend/Irecv/Wait/Waitall with exact
// (source, tag) matching. Payloads are byte slices; reductions interpret
// them as little-endian float64 vectors via package nums.
//
// Matching note: messages between the same (source, destination) pair
// carrying the same tag are matched in delivery order, which under link
// contention may differ from issue order when their sizes differ. The
// collective algorithms in this repository give every logical message a
// distinct tag per (collective invocation, phase), so they never depend on
// same-tag ordering; user code should do the same.
package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pip"
	"repro/internal/shm"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config selects the transport models of a World.
type Config struct {
	// Fabric calibrates the inter-node network.
	Fabric fabric.Params
	// Shm calibrates each node's memory system.
	Shm shm.Params
	// Mechanism is the intranode large-message data path. PiP also
	// charges the per-message size synchronization the paper attributes
	// to PiP-based MPI transports (which PiP-MColl's algorithms avoid by
	// using the posting board directly).
	Mechanism shm.Mechanism
	// IntranodeEager is the largest intranode payload sent through the
	// double-copy eager bounce path (all mechanisms share it, as real
	// libraries do); larger payloads use the mechanism's single-copy
	// rendezvous path. Must be positive.
	IntranodeEager int
	// Faults optionally attaches a deterministic chaos plan: link
	// degradation, eager message loss with ack/retransmit recovery, OS
	// noise, and NIC queue stalls (see package fault). Nil — the default —
	// keeps every code path bit-identical to a fault-free build.
	Faults *fault.Plan
	// OpTimeout, when positive, bounds the virtual time any single
	// receive or probe may block; exceeding it aborts the run with a
	// *TimeoutError from World.Run. Zero disables timeouts.
	OpTimeout simtime.Duration
}

// DefaultConfig returns the calibration used by the paper experiments, with
// the PiP intranode mechanism (the PiP-MPICH baseline's transport).
func DefaultConfig() Config {
	return Config{
		Fabric:         fabric.DefaultParams(),
		Shm:            shm.DefaultParams(),
		Mechanism:      shm.PiP,
		IntranodeEager: 4 << 10,
	}
}

// Validate reports an error for nonsensical configuration.
func (c Config) Validate() error {
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	if err := c.Shm.Validate(); err != nil {
		return err
	}
	if c.IntranodeEager <= 0 {
		return fmt.Errorf("mpi: intranode eager limit must be positive, got %d", c.IntranodeEager)
	}
	if c.OpTimeout < 0 {
		return fmt.Errorf("mpi: negative op timeout %v", c.OpTimeout)
	}
	return nil
}

// World is one simulated MPI job: a cluster, its transports, and one Rank
// per process. Build it with NewWorld, then Run a rank body.
type World struct {
	cluster *topology.Cluster
	cfg     Config
	engine  *simtime.Engine
	fab     *fabric.Fabric
	envs    []*pip.NodeEnv
	ranks   []*Rank
	harness *simtime.Barrier
	tracer  *trace.Log
	rec     *obs.Recorder
	commIDs uint64
	envFree []*envelope // recycled message envelopes (see getEnv/putEnv)

	// Schedule-exploration state (see SetChooser). exploring switches the
	// wildcard-receive and timeout paths to enumerated choice points; opGate
	// (hasKills || exploring) gates the per-op boundary hook so fault-free,
	// unexplored runs stay bit-identical.
	exploring bool
	opGate    bool

	// ULFM failure-model state (see ulfm.go). hasKills gates every check so
	// fault-free runs stay bit-identical; the slices are allocated regardless
	// (the deadlock diagnosis reads dead/exited unconditionally).
	hasKills  bool
	killAt    []simtime.Time  // [rank] kill time, killNever when unkilled
	killOp    []int           // [rank] op-boundary kill index, -1 when none
	killAfter []bool          // [rank] arm at the boundary instead of dying at it
	opCount   []int           // [rank] operation boundaries passed (opGate runs)
	dead      []bool          // [rank] rank has died
	deadAt    []simtime.Time  // [rank] death time, valid when dead
	deadCount int             // number of dead ranks
	exited    []bool          // [rank] body returned normally
	procs     []*simtime.Proc // [rank] world-rank processes, set at spawn
	fdBudget  int             // quiescence-handler firing budget (livelock cap)
	revoked   map[uint64]bool // revoked communicator ids
	rounds    map[roundKey]*ftRound
}

// getEnv takes an envelope from the world's freelist, or allocates one. The
// engine serializes all rank execution, so the freelist needs no locking.
func (w *World) getEnv() *envelope {
	if n := len(w.envFree); n > 0 {
		env := w.envFree[n-1]
		w.envFree[n-1] = nil
		w.envFree = w.envFree[:n-1]
		return env
	}
	return &envelope{}
}

// putEnv drops one handle on env and recycles it when no handles remain. The
// scratch buffer stays attached so later sends reuse its capacity.
func (w *World) putEnv(env *envelope) {
	if env.refs--; env.refs > 0 {
		return
	}
	own := env.own
	*env = envelope{own: own}
	w.envFree = append(w.envFree, env)
}

// NewWorld builds a world on the given cluster.
func NewWorld(cluster *topology.Cluster, cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fab, err := fabric.New(cluster.Nodes(), cluster.PPN(), cfg.Fabric)
	if err != nil {
		return nil, err
	}
	fab.InjectFaults(cfg.Faults)
	// The MPI layer's envelopes carry their own metadata, so the fabric can
	// hand them to inboxes directly instead of boxing a Packet per message.
	fab.DeliverPayloads(true)
	w := &World{
		cluster: cluster,
		cfg:     cfg,
		engine:  simtime.NewEngine(),
		fab:     fab,
		envs:    make([]*pip.NodeEnv, cluster.Nodes()),
		harness: simtime.NewBarrier(cluster.Size()),
	}
	for n := range w.envs {
		shmNode, err := shm.NewNode(cfg.Shm)
		if err != nil {
			return nil, err
		}
		w.envs[n] = pip.NewNodeEnv(n, cluster.PPN(), shmNode)
	}
	w.ranks = make([]*Rank, cluster.Size())
	w.killAt = make([]simtime.Time, cluster.Size())
	w.killOp = make([]int, cluster.Size())
	w.killAfter = make([]bool, cluster.Size())
	w.opCount = make([]int, cluster.Size())
	w.dead = make([]bool, cluster.Size())
	w.deadAt = make([]simtime.Time, cluster.Size())
	w.exited = make([]bool, cluster.Size())
	w.procs = make([]*simtime.Proc, cluster.Size())
	w.hasKills = cfg.Faults.HasKills()
	w.opGate = w.hasKills
	w.fdBudget = 64*cluster.Size() + 64
	for r := range w.ranks {
		node, local := cluster.Place(r)
		w.ranks[r] = &Rank{
			world: w,
			rank:  r,
			node:  node,
			local: local,
			env:   w.envs[node],
			ep:    fabric.Endpoint{Node: node, Queue: local},
		}
		w.ranks[r].initMatch()
		w.killAt[r] = killNever
		if at, ok := cfg.Faults.KillTime(r, node); ok {
			w.killAt[r] = at
		}
		w.killOp[r] = -1
		if op, after, ok := cfg.Faults.OpKill(r); ok {
			w.killOp[r], w.killAfter[r] = op, after
		}
	}
	if w.hasKills {
		w.engine.SetQuiesceHandler(w.onQuiesce)
	}
	return w, nil
}

// MustNewWorld is NewWorld that panics on error, for drivers whose
// configuration is a program constant.
func MustNewWorld(cluster *topology.Cluster, cfg Config) *World {
	w, err := NewWorld(cluster, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Cluster returns the world's cluster description.
func (w *World) Cluster() *topology.Cluster { return w.cluster }

// Engine exposes the world's simulation engine, for the model-checking
// harness (schedule certificates, footprint slices).
func (w *World) Engine() *simtime.Engine { return w.engine }

// SetChooser attaches (or, with nil, removes) a schedule-exploration chooser
// before Run: the engine consults it at dispatch tie-breaks, wildcard
// receives offer their queued-match selection as a choice point, and
// OpTimeout deadlines are enumerated as fire-or-block choices instead of
// racing virtual time. Typed failures raised while exploring embed the
// chooser's schedule certificate (when it implements simtime.Certifier).
func (w *World) SetChooser(c simtime.Chooser) {
	w.engine.SetChooser(c)
	w.exploring = c != nil
	w.opGate = w.hasKills || w.exploring
}

// OpCounts returns each rank's count of MPI operation boundaries passed
// (send entries, receive completions, probes, agreement arrivals). Counted
// only while a chooser is attached or the fault plan kills somebody; the
// model checker uses a baseline run's counts to enumerate op-boundary kill
// timings exhaustively.
func (w *World) OpCounts() []int { return append([]int(nil), w.opCount...) }

// Config returns the world's transport configuration.
func (w *World) Config() Config { return w.cfg }

// Fabric exposes the inter-node network, for utilization reports.
func (w *World) Fabric() *fabric.Fabric { return w.fab }

// Env returns the PiP environment of a node.
func (w *World) Env(node int) *pip.NodeEnv { return w.envs[node] }

// Run spawns one simulated process per rank executing body and drives the
// simulation to completion. It may be called once per World.
func (w *World) Run(body func(r *Rank)) error {
	for _, r := range w.ranks {
		r := r
		w.engine.Spawn(fmt.Sprintf("rank%d", r.rank), func(p *simtime.Proc) {
			r.proc = p
			w.procs[r.rank] = p
			r.noise = w.cfg.Faults.NewRankNoise(r.rank)
			switch {
			case w.hasKills && r.noise != nil:
				p.SetResumeHook(func(*simtime.Proc) { r.checkSelfKill(); r.chargeNoise() })
			case w.hasKills:
				// Die at resumption from any blocking wait past the kill
				// time (op entries check separately).
				p.SetResumeHook(func(*simtime.Proc) { r.checkSelfKill() })
			case r.noise != nil:
				// Bill noise accrued across blocking waits too, not
				// only at operation entries.
				p.SetResumeHook(func(*simtime.Proc) { r.chargeNoise() })
			}
			if w.hasKills {
				// Swallow this rank's own death unwind: the dead process
				// exits normally as far as the engine is concerned. Kills
				// delivered by the quiescence detector (Engine.Fail) unwind
				// without passing an op boundary, so the death bookkeeping
				// runs here — killRank is idempotent for the paths that
				// already executed it in place.
				defer func() {
					if v := recover(); v != nil {
						if _, died := v.(rankKilled); died {
							w.killRank(r, r.proc.Now())
							return
						}
						panic(v)
					}
				}()
			}
			body(r)
			w.exited[r.rank] = true
		})
	}
	return w.wrapRunError(w.engine.Run())
}

// Horizon returns the virtual makespan after Run completes.
func (w *World) Horizon() simtime.Time { return w.engine.Horizon() }

// Events returns the number of discrete events the engine has dispatched —
// the denominator of the throughput suite's ns/event and allocs/event.
func (w *World) Events() int64 { return w.engine.Dispatches() }

// SetTracer attaches an event log; every point-to-point send and receive is
// recorded. Pass nil to disable. Must be called before Run.
//
// The legacy log rides the observability layer: events flow through an
// obs.Recorder (a cheap lite one is created on demand) which forwards them
// to the log, so old callers see identical events while instrumented worlds
// get spans and metrics from the same stream.
func (w *World) SetTracer(l *trace.Log) {
	w.tracer = l
	if l == nil {
		return
	}
	if w.rec == nil {
		w.rec = obs.NewLiteRecorder()
	}
	w.rec.AttachLog(l)
}

// Tracer returns the attached event log, or nil.
func (w *World) Tracer() *trace.Log { return w.tracer }

// Observe attaches a full recorder before Run: the engine reports scheduling
// (wait spans, run-queue depth), the fabric reports per-resource occupancy
// and message rates, each node's shared-memory domain reports copy/reduce/
// size-sync costs, and the MPI layer itself records per-rank operation spans
// and internode message stage timings. Any tracer attached via SetTracer
// (before or after) keeps receiving its events through the recorder.
func (w *World) Observe(rec *obs.Recorder) {
	w.rec = rec
	if rec == nil {
		w.engine.SetObserver(nil)
		w.fab.Observe(nil)
		for _, env := range w.envs {
			env.Shm().Observe(nil)
		}
		return
	}
	w.engine.SetObserver(rec)
	w.fab.Observe(rec)
	for _, env := range w.envs {
		env.Shm().Observe(rec)
	}
	if w.tracer != nil && rec != nil {
		rec.AttachLog(w.tracer)
	}
}

// Recorder returns the attached recorder, or nil.
func (w *World) Recorder() *obs.Recorder { return w.rec }

// p2p routes one point-to-point event to the observability layer (which
// forwards to any attached legacy logs) or, with no recorder, straight to
// the tracer.
func (w *World) p2p(e trace.Event) {
	if w.rec != nil {
		w.rec.P2P(e)
		return
	}
	if w.tracer != nil {
		w.tracer.Record(e)
	}
}

// full reports whether a full (non-lite) recorder is attached.
func (w *World) full() bool { return w.rec != nil && !w.rec.Lite() }

// traceP2P reports whether anything consumes point-to-point events; when it
// is false the send/recv paths skip building trace events entirely.
func (w *World) traceP2P() bool { return w.rec != nil || w.tracer != nil }
