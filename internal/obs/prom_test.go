package obs

import (
	"math"
	"strings"
	"testing"
)

// TestPromExpositionGolden pins the Prometheus text exposition format
// byte-for-byte: family ordering (counters, gauges, histograms; each
// name-sorted), name sanitization, HELP/TYPE lines, cumulative buckets
// with the mandatory +Inf, and _sum/_count. Any format change must be
// deliberate — scrapers parse this.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.queries").Add(5)
	r.Counter("serve.cache.hits").Add(3)
	r.Help("serve.queries", "total /query requests accepted for execution")
	r.Gauge("serve.queue.depth").Set(2)
	h := r.Histogram("serve.stage.cache_lookup_us", []float64{10, 100, 1000})
	h.Observe(7)
	h.Observe(42)
	h.Observe(42)
	h.Observe(5000)

	var b strings.Builder
	r.WriteProm(&b)
	want := `# HELP serve_cache_hits counter serve.cache.hits
# TYPE serve_cache_hits counter
serve_cache_hits 3
# HELP serve_queries total /query requests accepted for execution
# TYPE serve_queries counter
serve_queries 5
# HELP serve_queue_depth gauge serve.queue.depth
# TYPE serve_queue_depth gauge
serve_queue_depth 2
# HELP serve_stage_cache_lookup_us histogram serve.stage.cache_lookup_us
# TYPE serve_stage_cache_lookup_us histogram
serve_stage_cache_lookup_us_bucket{le="10"} 1
serve_stage_cache_lookup_us_bucket{le="100"} 3
serve_stage_cache_lookup_us_bucket{le="1000"} 3
serve_stage_cache_lookup_us_bucket{le="+Inf"} 4
serve_stage_cache_lookup_us_sum 5091
serve_stage_cache_lookup_us_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"serve.query.latency_ms": "serve_query_latency_ms",
		"bench.cells":            "bench_cells",
		"9lives":                 "_lives",
		"a-b c":                  "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 100, 1000})
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", h.Quantile(0.5))
	}
	// 100 observations spread uniformly in (10, 100].
	for i := 0; i < 100; i++ {
		h.Observe(10 + float64(i+1)*0.9)
	}
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 100 {
		t.Errorf("p50 = %g, want inside (10,100]", p50)
	}
	// Interpolated midpoint of the only populated bucket.
	if math.Abs(p50-55) > 1 {
		t.Errorf("p50 = %g, want ~55 (linear interpolation)", p50)
	}
	if got := h.Quantile(0); got != h.Snapshot().Min {
		t.Errorf("q0 = %g, want min %g", got, h.Snapshot().Min)
	}
	if got := h.Quantile(1); got != h.Snapshot().Max {
		t.Errorf("q1 = %g, want max %g", got, h.Snapshot().Max)
	}

	// Overflow bucket: quantiles landing beyond the last bound report the
	// observed max, never infinity.
	h2 := r.Histogram("q2", []float64{10})
	h2.Observe(5)
	h2.Observe(70000)
	if got := h2.Quantile(0.99); got != 70000 {
		t.Errorf("overflow quantile = %g, want observed max 70000", got)
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 2.5, 2.6, 99} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{1, 2, 4}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Count != 5 || s.Min != 0.5 || s.Max != 99 {
		t.Errorf("snapshot aggregates = %+v", s)
	}
}

// TestHistogramQuantileOverflowClamped pins the overflow behaviour: with
// every sample above the top bucket bound, any quantile is the observed
// max, and a non-finite observation (a duration computed from a zero
// stamp, say) degrades quantiles to the top bound instead of +Inf.
func TestHistogramQuantileOverflowClamped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ovf", []float64{1, 10, 100})
	for _, v := range []float64{250, 300, 1e6} {
		h.Observe(v)
	}
	max := h.Snapshot().Max
	for _, q := range []float64{0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != max {
			t.Errorf("q%g = %g, want observed max %g", q, got, max)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("q%g = %g, want finite", q, got)
		}
	}

	h.Observe(math.Inf(1)) // poisons the max aggregate
	for _, q := range []float64{0.5, 0.99, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("after Inf observation: q%g = %g, want finite", q, got)
		}
		if got != 100 {
			t.Errorf("after Inf observation: q%g = %g, want top bound 100", q, got)
		}
	}
}
