package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Perfetto / Chrome trace_event export. The output is plain trace-event JSON
// (the "JSON trace format" ui.perfetto.dev and chrome://tracing both load):
// one process group per domain — pid 1 "ranks" with one thread per simulated
// process, pid 2 "fabric" with one thread per interconnect resource, pid 3
// "engine" for scheduler counter tracks — complete ("X") events for spans
// and counter ("C") events for time series.
//
// The writer is deliberately hand-rolled: field order, float formatting and
// event ordering are all fixed, so the same simulation produces byte-
// identical output on every run and platform (pinned by a golden test).

// Perfetto pid assignments.
const (
	pidRanks  = 1
	pidFabric = 2
	pidEngine = 3
)

// jsonEscape escapes a string for embedding in a JSON string literal.
func jsonEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// usec renders a picosecond timestamp or duration as a microsecond decimal
// with exact integer arithmetic (six fractional digits), avoiding any
// platform-dependent float formatting.
func usec(ps int64) string {
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	return fmt.Sprintf("%s%d.%06d", neg, ps/1_000_000, ps%1_000_000)
}

// pfEvent is one pre-rendered trace event with its sort keys.
type pfEvent struct {
	ts   int64 // picoseconds
	pid  int
	tid  int
	dur  int64 // picoseconds; spans sort longer-first at equal ts for nesting
	kind int   // 0 = span, 1 = counter
	name string
	body string
}

// WritePerfetto renders everything the recorder holds as trace-event JSON.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var events []pfEvent

	// Process (rank) spans: tid = process id.
	for _, s := range r.spans {
		pid, tid := pidRanks, s.Proc
		if s.Proc < 0 {
			pid, tid = pidFabric, r.resourceTid(s.Resource)
		}
		args := ""
		if len(s.Args) > 0 {
			parts := make([]string, len(s.Args))
			for i, kv := range s.Args {
				parts[i] = fmt.Sprintf(`"%s":"%s"`, jsonEscape(kv.K), jsonEscape(kv.V))
			}
			args = `,"args":{` + strings.Join(parts, ",") + `}`
		}
		ts, dur := int64(s.Start), int64(s.End.Sub(s.Start))
		events = append(events, pfEvent{
			ts: ts, pid: pid, tid: tid, dur: dur, name: s.Name,
			body: fmt.Sprintf(`{"name":"%s","cat":"%s","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s%s}`,
				jsonEscape(s.Name), jsonEscape(s.Cat), pid, tid, usec(ts), usec(dur), args),
		})
	}

	// Counter tracks. Engine-owned tracks go to pidEngine, everything else
	// (fabric rates, protocol counts) to pidFabric.
	for _, name := range r.ctrOrder {
		ct := r.counters[name]
		pid := pidFabric
		if strings.HasPrefix(name, "engine") {
			pid = pidEngine
		}
		for _, s := range ct.samples {
			events = append(events, pfEvent{
				ts: int64(s.at), pid: pid, tid: 0, kind: 1, name: name,
				body: fmt.Sprintf(`{"name":"%s","ph":"C","pid":%d,"ts":%s,"args":{"value":%s}}`,
					jsonEscape(name), pid, usec(int64(s.at)), formatCounterValue(s.v)),
			})
		}
	}

	// Total order: time, then process/thread, longer spans first (so
	// nesting parents precede children at equal timestamps), spans before
	// counters, then name.
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.dur != b.dur {
			return a.dur > b.dur
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.name < b.name
	})

	var out []string
	out = append(out, r.metadataEvents()...)
	for _, e := range events {
		out = append(out, e.body)
	}

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, line := range out {
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := io.WriteString(w, line+sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// resourceTid returns the stable thread id of a resource track: its
// registration order.
func (r *Recorder) resourceTid(name string) int {
	for i, n := range r.resources {
		if n == name {
			return i
		}
	}
	return len(r.resources)
}

// metadataEvents names the processes and threads. Callers hold mu.
func (r *Recorder) metadataEvents() []string {
	var out []string
	meta := func(pid, tid int, kind, name string) {
		out = append(out, fmt.Sprintf(`{"name":"%s","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
			kind, pid, tid, jsonEscape(name)))
	}
	sortIdx := func(pid int) {
		out = append(out, fmt.Sprintf(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
			pid, pid))
	}
	meta(pidRanks, 0, "process_name", "ranks")
	sortIdx(pidRanks)
	procIDs := append([]int(nil), r.procOrder...)
	sort.Ints(procIDs)
	for _, id := range procIDs {
		meta(pidRanks, id, "thread_name", r.procName(id))
		out = append(out, fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
			pidRanks, id, id))
	}
	if len(r.resources) > 0 {
		meta(pidFabric, 0, "process_name", "fabric")
		sortIdx(pidFabric)
		for i, name := range r.resources {
			meta(pidFabric, i, "thread_name", name)
			out = append(out, fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
				pidFabric, i, i))
		}
	}
	for _, name := range r.ctrOrder {
		if strings.HasPrefix(name, "engine") {
			meta(pidEngine, 0, "process_name", "engine")
			sortIdx(pidEngine)
			break
		}
	}
	return out
}

// formatCounterValue renders a counter sample; integral values print without
// a fractional part so output is compact and platform-stable.
func formatCounterValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}
