package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/trace"
)

const ns = simtime.Nanosecond

func at(x int64) simtime.Time { return simtime.Time(0).Add(simtime.Duration(x) * ns) }

// runWaiters executes the canonical two-process engine scenario: "worker"
// sleeps 100 ns then releases "waiter", which parked on a counter at t=0
// (the sleep yields first, so the waiter genuinely blocks).
func runWaiters(t *testing.T, rec *Recorder) (worker, waiter *simtime.Proc) {
	t.Helper()
	e := simtime.NewEngine()
	e.SetObserver(rec)
	var c simtime.Counter
	worker = e.Spawn("worker", func(p *simtime.Proc) {
		p.Sleep(100 * ns)
		c.Add(p, 1)
	})
	waiter = e.Spawn("waiter", func(p *simtime.Proc) {
		c.WaitGE(p, 1)
		p.Advance(50 * ns)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return worker, waiter
}

func TestObserverWaitSegments(t *testing.T) {
	rec := NewRecorder()
	worker, waiter := runWaiters(t, rec)

	// The waiter blocked at t=0 and was released by the worker at t=100:
	// one sync-wait segment carrying the waker edge.
	segs := rec.SegsOf(waiter.ID())
	if len(segs) != 1 {
		t.Fatalf("waiter segs = %+v, want one wait", segs)
	}
	w := segs[0]
	if w.Cat != "sync-wait" || w.Start != at(0) || w.End != at(100) {
		t.Errorf("wait seg = %+v, want sync-wait [0,100ns]", w)
	}
	if w.Waker != worker.ID() {
		t.Errorf("wait waker = %d, want worker %d", w.Waker, worker.ID())
	}

	// The worker's self-wakeup (sleep) must NOT carry a waker edge.
	wsegs := rec.SegsOf(worker.ID())
	if len(wsegs) != 1 || wsegs[0].Cat != "sleep" || wsegs[0].Waker != -1 {
		t.Errorf("worker segs = %+v, want one self-woken sleep", wsegs)
	}

	// The wait also shows up as a display span named after the reason.
	var found bool
	for _, s := range rec.Spans() {
		if s.Proc == waiter.ID() && s.Cat == "sync-wait" && strings.HasPrefix(s.Name, "wait: ") {
			found = true
		}
	}
	if !found {
		t.Errorf("no wait display span for the waiter in %+v", rec.Spans())
	}

	// Engine dispatch metrics were counted.
	if rec.Metrics().Counter("engine.dispatches").Value() == 0 {
		t.Error("no dispatches counted")
	}
	if rec.Horizon() != at(100) {
		t.Errorf("horizon = %v, want %v", rec.Horizon(), at(100))
	}
}

func TestLiteRecorderNoOps(t *testing.T) {
	rec := NewLiteRecorder()
	lg := trace.NewLog(0)
	rec.AttachLog(lg)
	worker, waiter := runWaiters(t, rec)

	if got := rec.SegsOf(waiter.ID()); got != nil {
		t.Errorf("lite recorder kept segs %+v", got)
	}
	if got := rec.Spans(); len(got) != 0 {
		t.Errorf("lite recorder kept spans %+v", got)
	}
	if got := rec.AddMessage(Message{}); got != -1 {
		t.Errorf("lite AddMessage = %d, want -1", got)
	}
	_ = worker

	// P2P forwarding still works in lite mode.
	rec.P2P(trace.Event{Kind: trace.KindSend, Src: 0, Dst: 1, Bytes: 8})
	if lg.Len() != 1 {
		t.Errorf("lite recorder did not forward P2P events: log has %d", lg.Len())
	}
	if rec.Metrics().Counter("mpi.sends.inter").Value() != 1 {
		t.Error("lite recorder did not count P2P metrics")
	}
}

func TestRecvWaitAnnotation(t *testing.T) {
	rec := NewRecorder()
	// Use real procs purely as track identities.
	e := simtime.NewEngine()
	var sender, recver *simtime.Proc
	sender = e.Spawn("sender", func(p *simtime.Proc) {})
	recver = e.Spawn("recver", func(p *simtime.Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	msg := rec.AddMessage(Message{
		SrcProc: sender.ID(), DstProc: recver.ID(), Bytes: 64,
		Issue: at(0), Ready: at(100),
		Stages: []Stage{{Cat: "send-cpu", Start: at(0), End: at(10)}, {Cat: "wire", Start: at(10), End: at(100)}},
	})

	// Case 1: the engine already closed a recv-wait segment ending at the
	// completion time — RecvWait annotates it in place.
	rec.pathSeg(recver, "recv-wait", at(0), at(100), -1, -1)
	rec.RecvWait(recver, at(0), at(100), msg)
	segs := rec.SegsOf(recver.ID())
	if len(segs) != 1 || segs[0].Msg != msg {
		t.Fatalf("segs = %+v, want the existing wait annotated with msg %d", segs, msg)
	}

	// Case 2: pure clock jump (no blocking occurred) — RecvWait appends a
	// synthetic segment.
	rec.RecvWait(recver, at(100), at(150), msg)
	segs = rec.SegsOf(recver.ID())
	if len(segs) != 2 || segs[1].Cat != "recv-wait" || segs[1].Msg != msg {
		t.Fatalf("segs = %+v, want a synthetic recv-wait appended", segs)
	}

	// Case 3: zero-duration receive records nothing.
	rec.RecvWait(recver, at(150), at(150), msg)
	if got := rec.SegsOf(recver.ID()); len(got) != 2 {
		t.Fatalf("zero-duration receive grew segs: %+v", got)
	}
}

func TestWaitCatMapping(t *testing.T) {
	for reason, want := range map[string]string{
		"inject-window":      "injection",
		"sleep":              "sleep",
		"mailbox get":        "recv-wait",
		"mailbox peek":       "recv-wait",
		"barrier 1/4":        "sync-wait",
		"counter>=3 (now 1)": "sync-wait",
	} {
		if got := waitCat(reason); got != want {
			t.Errorf("waitCat(%q) = %q, want %q", reason, got, want)
		}
	}
}

func TestCounterSampleCollapse(t *testing.T) {
	rec := NewRecorder()
	rec.CounterSample("x", at(1), 1)
	rec.CounterSample("x", at(2), 1) // collapsed
	rec.CounterSample("x", at(3), 2)
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, `"ph":"C"`); got != 2 {
		t.Errorf("%d counter events, want 2 (same-value sample collapsed):\n%s", got, out)
	}
}

func TestPerfettoDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		rec := NewRecorder()
		runWaiters(t, rec)
		rec.RegisterResource("n0 link-tx")
		rec.ResourceSpan("n0 link-tx", "64B n0→n1", "link", at(5), at(25))
		var buf bytes.Buffer
		if err := rec.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("perfetto output differs across identical runs:\n--- a\n%s\n--- b\n%s", a, b)
	}
	for _, want := range []string{
		`"displayTimeUnit":"ns"`,
		`"name":"worker"`,      // rank-track thread name
		`"name":"n0 link-tx"`,  // fabric resource track
		`"name":"engine runq"`, // counter track
		`"ph":"X"`, `"ph":"C"`, `"ph":"M"`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("perfetto output missing %q", want)
		}
	}
}
