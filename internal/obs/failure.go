package obs

import (
	"fmt"

	"repro/internal/simtime"
)

// Failure-model metric names, shared by the MPI layer and the recovery
// loop so dashboards and tests agree on spelling.
const (
	// MetricProcKilled counts permanent fail-stop rank deaths executed by
	// the fault plan.
	MetricProcKilled = "fault.proc_killed"
	// MetricFailuresDetected counts blocking operations completed with a
	// ProcFailedError instead of their normal result.
	MetricFailuresDetected = "fault.failures_detected"
	// MetricRecoverShrinks counts communicator shrinks performed by the
	// recovery loop.
	MetricRecoverShrinks = "recover.shrinks"
	// MetricRecoverRetries counts collective re-executions performed by the
	// recovery loop (successful first attempts count zero).
	MetricRecoverRetries = "recover.retries"
	// MetricMCSchedules counts interleavings executed by the model-checking
	// explorer (internal/mc).
	MetricMCSchedules = "mc.schedules"
	// MetricMCPruned counts alternative interleavings the explorer's
	// partial-order reduction proved redundant and skipped.
	MetricMCPruned = "mc.pruned"
	// MetricMCViolations counts interleavings that broke the explored
	// program's correctness contract.
	MetricMCViolations = "mc.violations"
)

// ProcKilled records one permanent rank death: the counter always, plus an
// instantaneous span on the process's track in full-recorder runs so the
// death is visible in the trace next to the operations it cuts short.
func (r *Recorder) ProcKilled(p *simtime.Proc, rank int, at simtime.Time) {
	r.Metrics().Counter(MetricProcKilled).Add(1)
	if !r.Lite() {
		r.ProcSpan(p, fmt.Sprintf("rank %d killed", rank), "fault-kill", at, at)
	}
}

// FailureDetected records one failure detection on the detecting process's
// track: op is the blocked operation ("recv", "allreduce", ...), peer the
// dead rank it was waiting on, and [start, end] the interval between the op's
// start and the detection.
func (r *Recorder) FailureDetected(p *simtime.Proc, op string, peer int, start, end simtime.Time) {
	r.Metrics().Counter(MetricFailuresDetected).Add(1)
	if !r.Lite() {
		r.ProcSpan(p, fmt.Sprintf("%s: rank %d failed", op, peer), "fault-detect", start, end,
			KV{K: "peer", V: fmt.Sprint(peer)})
	}
}
