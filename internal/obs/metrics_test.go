package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstrumentsAndDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("fabric.messages").Add(3)
	r.Counter("fabric.messages").Add(2) // same instrument, by name
	r.Gauge("engine.runq.max").Set(7)
	h := r.Histogram("cell.wall_ms", DefaultBuckets)
	h.Observe(0.5)
	h.Observe(2.0)
	h.Observe(3.5)

	if got := r.Counter("fabric.messages").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.Gauge("engine.runq.max").Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	if h.Count() != 3 || h.Sum() != 6.0 {
		t.Errorf("hist count=%d sum=%g, want 3/6", h.Count(), h.Sum())
	}

	out := r.String()
	for _, want := range []string{
		"counter fabric.messages",
		"gauge   engine.runq.max",
		"hist    cell.wall_ms",
		"count=3",
		"min=0.5",
		"max=3.5",
		"mean=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDumpSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Add(1)
	r.Counter("aa").Add(1)
	r.Counter("mm").Add(1)
	out := r.String()
	ia, im, iz := strings.Index(out, "aa"), strings.Index(out, "mm"), strings.Index(out, "zz")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Errorf("dump not name-sorted:\n%s", out)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", DefaultBuckets).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", DefaultBuckets).Count(); got != 8000 {
		t.Errorf("hist count = %d, want 8000", got)
	}
}
