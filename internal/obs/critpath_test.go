package obs

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

// buildMessageScenario constructs the canonical two-process DAG by hand:
//
//	sender:  send-cpu [0,10]  (then idle)
//	message: stages send-cpu [0,10] + wire [10,100], ready at 100
//	recver:  recv-wait [0,100] matching the message, copy [100,150]
//
// The critical path of [0,150] is copy 50 + wire 90 + send-cpu 10.
func buildMessageScenario(t *testing.T) *Recorder {
	t.Helper()
	rec := NewRecorder()
	e := simtime.NewEngine()
	sender := e.Spawn("sender", func(p *simtime.Proc) {})
	recver := e.Spawn("recver", func(p *simtime.Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.PathSegFor(sender, "send-cpu", at(0), at(10))
	msg := rec.AddMessage(Message{
		SrcProc: sender.ID(), DstProc: recver.ID(), Bytes: 64,
		Issue: at(0), Ready: at(100),
		Stages: []Stage{
			{Cat: "send-cpu", Start: at(0), End: at(10)},
			{Cat: "wire", Start: at(10), End: at(100)},
		},
	})
	rec.RecvWait(recver, at(0), at(100), msg)
	rec.PathSegFor(recver, "copy", at(100), at(150))
	return rec
}

func TestCriticalPathFollowsMessage(t *testing.T) {
	rec := buildMessageScenario(t)
	rep := rec.CriticalPathTo(at(150))

	if rep.Makespan != 150*ns {
		t.Errorf("makespan = %v, want 150ns", rep.Makespan)
	}
	if rep.EndProc != "recver" {
		t.Errorf("end proc = %q, want recver", rep.EndProc)
	}
	want := map[string]simtime.Duration{
		"copy":     50 * ns,
		"wire":     90 * ns,
		"send-cpu": 10 * ns,
	}
	got := map[string]simtime.Duration{}
	for _, c := range rep.Components {
		got[c.Name] = c.Dur
	}
	for name, d := range want {
		if got[name] != d {
			t.Errorf("component %s = %v, want %v (all: %+v)", name, got[name], d, rep.Components)
		}
	}
	if len(got) != len(want) {
		t.Errorf("components = %+v, want exactly %v", rep.Components, want)
	}
	if rep.AttributedFrac() != 1.0 {
		t.Errorf("attributed %.3f, want 1.0", rep.AttributedFrac())
	}
	// Components are sorted by duration descending.
	for i := 1; i < len(rep.Components); i++ {
		if rep.Components[i].Dur > rep.Components[i-1].Dur {
			t.Errorf("components not sorted by duration: %+v", rep.Components)
		}
	}
	// Steps cover [0,150] contiguously in forward order.
	cursor := at(0)
	for _, s := range rep.Steps {
		if s.Start != cursor {
			t.Errorf("step %+v starts at %v, want %v", s, s.Start, cursor)
		}
		cursor = s.End
	}
	if cursor != at(150) {
		t.Errorf("steps end at %v, want 150ns", cursor)
	}
}

func TestCriticalPathFollowsWaker(t *testing.T) {
	rec := NewRecorder()
	worker, waiter := runWaiters(t, rec)
	rep := rec.CriticalPathTo(at(150))

	// The walk starts at the latest-ending instrumented track and
	// attributes the uninstrumented tail to compute. Everything is
	// accounted: no "untracked" component.
	if rep.AttributedFrac() < 1.0 {
		t.Errorf("attributed %.3f, want 1.0:\n%s", rep.AttributedFrac(), rep.Format())
	}
	for _, c := range rep.Components {
		if c.Name == "untracked" {
			t.Errorf("untracked time on the path:\n%s", rep.Format())
		}
	}
	_ = worker
	_ = waiter
}

func TestCriticalPathDeterministic(t *testing.T) {
	render := func() string {
		return buildMessageScenario(t).CriticalPathTo(at(150)).Format()
	}
	a := render()
	for i := 0; i < 3; i++ {
		if b := render(); b != a {
			t.Fatalf("critical path differs across identical runs:\n--- a\n%s\n--- b\n%s", a, b)
		}
	}
	if !strings.Contains(a, "attributed: 100.0% of makespan") {
		t.Errorf("format output:\n%s", a)
	}
}

func TestCriticalPathEmptyRecorder(t *testing.T) {
	rec := NewRecorder()
	rep := rec.CriticalPath()
	if len(rep.Steps) != 0 || rep.Makespan != 0 {
		t.Errorf("empty recorder path = %+v", rep)
	}
	if rep.AttributedFrac() != 1.0 {
		t.Errorf("empty attribution = %v, want vacuous 1.0", rep.AttributedFrac())
	}
}

// TestCriticalPathWakeCycle guards the equal-time wake cycle: two processes
// each carrying a wait segment ending at the same instant, each naming the
// other as waker. The visited set must break the cycle instead of looping.
func TestCriticalPathWakeCycle(t *testing.T) {
	rec := NewRecorder()
	e := simtime.NewEngine()
	a := e.Spawn("a", func(p *simtime.Proc) {})
	b := e.Spawn("b", func(p *simtime.Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.pathSeg(a, "sync-wait", at(0), at(100), -1, b.ID())
	rec.pathSeg(b, "sync-wait", at(0), at(100), -1, a.ID())
	rep := rec.CriticalPathTo(at(100))
	if rep.Makespan != 100*ns {
		t.Errorf("makespan = %v", rep.Makespan)
	}
	// Terminates and accounts the full interval one way or another.
	var total simtime.Duration
	for _, c := range rep.Components {
		total += c.Dur
	}
	if total != 100*ns {
		t.Errorf("components cover %v of 100ns: %+v", total, rep.Components)
	}
}
