// Package obs is the simulation observability layer: hierarchical spans
// stamped in virtual time, a metrics registry, a Chrome trace_event /
// Perfetto exporter, and a critical-path analyzer over the span DAG.
//
// A Recorder is attached to one simulated world (mpi.World.Observe wires it
// into the engine, the fabric and each node's shared-memory domain). The
// instrumented layers then record three kinds of data:
//
//   - display spans — what a human opens in ui.perfetto.dev: one track per
//     simulated process (rank), one track per fabric resource (injection
//     queues, node links), counter tracks for run-queue depth and message
//     rates;
//   - path segments — a disjoint, per-process tiling of virtual time into
//     named cost components (copy, reduce, injection, dma, wire, …) plus
//     the wake edges (who released a blocked process, which message a
//     receive matched) that let the critical-path analyzer walk the
//     dependency DAG backwards;
//   - metrics — counters/gauges/histograms in the attached Registry.
//
// All recording goes through one mutex. Inside a simulation the engine
// serializes processes anyway; the lock makes a Recorder safe to inspect
// from the test goroutine and keeps the package honest under -race.
package obs

import (
	"fmt"
	"sync"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// KV is one span annotation, shown under "args" in the trace viewer.
type KV struct {
	K, V string
}

// Span is one completed display interval on a process or resource track.
type Span struct {
	Proc     int    // process track id, or -1 for resource spans
	Resource string // resource track name when Proc < 0
	Name     string
	Cat      string
	Start    simtime.Time
	End      simtime.Time
	Args     []KV
}

// Stage is one hop of an internode message's fabric traversal, labelled
// with the cost component it occupies.
type Stage struct {
	Cat   string
	Start simtime.Time
	End   simtime.Time
}

// Message is the fabric-level record of one internode point-to-point
// message: when the sender issued it, when it became deliverable at the
// receiver, and the component-labelled stages in between. The critical-path
// analyzer follows a blocked receive through its message's stages back onto
// the sender's timeline.
type Message struct {
	SrcProc int // sender's process track (world rank)
	DstProc int
	Bytes   int
	Tag     int
	Issue   simtime.Time // sender's clock when the send was issued
	Ready   simtime.Time // earliest time the receiver can observe the payload
	Stages  []Stage      // contiguous, covering [Issue, Ready]
}

// PathSeg is one leaf interval of a process's cost timeline. Segments of one
// process are disjoint and recorded in nondecreasing time order. Wait
// segments carry the wake edge: Msg >= 0 names the matched internode
// message, Waker >= 0 the process whose action released the waiter.
type PathSeg struct {
	Cat   string
	Start simtime.Time
	End   simtime.Time
	Msg   int // index into the recorder's messages, or -1
	Waker int // releasing process id, or -1
}

// procTrack is the per-process recording state.
type procTrack struct {
	id         int
	name       string
	segs       []PathSeg
	blockStart simtime.Time
	blockCat   string
	blockName  string
	blocked    bool
}

// counterTrack is a time series rendered as a Perfetto counter track.
type counterTrack struct {
	name    string
	samples []sample
	last    float64
	haveOne bool
}

type sample struct {
	at simtime.Time
	v  float64
}

// Recorder collects spans, path segments, messages and counter samples for
// one simulated world. The zero value is not usable; call NewRecorder (full
// recording) or NewLiteRecorder (point-to-point events and metrics only —
// the legacy trace.Log adapter mode).
type Recorder struct {
	mu   sync.Mutex
	lite bool

	reg  *Registry
	logs []*trace.Log

	spans []Span
	msgs  []Message

	procs     map[int]*procTrack
	procOrder []int

	resources []string
	resSeen   map[string]bool

	counters map[string]*counterTrack
	ctrOrder []string

	horizon  simtime.Time
	runq     int
	maxRunq  int64
	dispatch int64
}

// NewRecorder returns a full recorder: spans, path segments, messages,
// counter tracks and metrics.
func NewRecorder() *Recorder {
	return &Recorder{
		reg:      NewRegistry(),
		procs:    make(map[int]*procTrack),
		resSeen:  make(map[string]bool),
		counters: make(map[string]*counterTrack),
	}
}

// NewLiteRecorder returns a recorder that only forwards point-to-point
// events to attached trace.Logs and counts metrics — the cheap mode behind
// the legacy World.SetTracer API. Span, segment, message and counter calls
// are no-ops.
func NewLiteRecorder() *Recorder {
	r := NewRecorder()
	r.lite = true
	return r
}

// Lite reports whether the recorder is in point-to-point-only mode.
func (r *Recorder) Lite() bool { return r.lite }

// Metrics returns the recorder's metrics registry.
func (r *Recorder) Metrics() *Registry { return r.reg }

// AttachLog subscribes a legacy event log: every point-to-point event
// recorded through P2P is forwarded to it. This is how trace.Log remains
// usable as a thin adapter over the span layer.
func (r *Recorder) AttachLog(l *trace.Log) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.logs {
		if have == l {
			return
		}
	}
	r.logs = append(r.logs, l)
}

// P2P records one point-to-point event: forwarded to attached logs and
// counted in the metrics registry. Called by the MPI layer on every send
// issue and receive completion.
func (r *Recorder) P2P(e trace.Event) {
	r.mu.Lock()
	logs := r.logs
	r.mu.Unlock()
	for _, l := range logs {
		l.Record(e)
	}
	where := "inter"
	if e.Intranode {
		where = "intra"
	}
	switch e.Kind {
	case trace.KindSend:
		r.reg.Counter("mpi.sends." + where).Add(1)
		r.reg.Counter("mpi.bytes." + where).Add(int64(e.Bytes))
	case trace.KindRecv:
		r.reg.Counter("mpi.recvs." + where).Add(1)
	}
}

// proc returns (creating if needed) the track of process id. Callers hold mu.
func (r *Recorder) proc(id int, name string) *procTrack {
	pt, ok := r.procs[id]
	if !ok {
		pt = &procTrack{id: id, name: name}
		r.procs[id] = pt
		r.procOrder = append(r.procOrder, id)
	}
	if pt.name == "" {
		pt.name = name
	}
	return pt
}

func (r *Recorder) note(t simtime.Time) {
	if t > r.horizon {
		r.horizon = t
	}
}

// ProcSpan records a display span on a process track.
func (r *Recorder) ProcSpan(p *simtime.Proc, name, cat string, start, end simtime.Time, args ...KV) {
	if r.lite || end < start {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.proc(p.ID(), p.Name())
	r.spans = append(r.spans, Span{Proc: p.ID(), Name: name, Cat: cat, Start: start, End: end, Args: args})
	r.note(end)
}

// PathSegFor records a leaf cost interval on a process's analysis timeline.
// Zero-length segments are dropped.
func (r *Recorder) PathSegFor(p *simtime.Proc, cat string, start, end simtime.Time) {
	r.pathSeg(p, cat, start, end, -1, -1)
}

func (r *Recorder) pathSeg(p *simtime.Proc, cat string, start, end simtime.Time, msg, waker int) {
	if r.lite || end <= start {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pt := r.proc(p.ID(), p.Name())
	pt.segs = append(pt.segs, PathSeg{Cat: cat, Start: start, End: end, Msg: msg, Waker: waker})
	r.note(end)
}

// RegisterResource declares a resource track so tracks appear in a stable,
// topology-derived order regardless of traffic. Safe to call repeatedly.
func (r *Recorder) RegisterResource(name string) {
	if r.lite {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.resSeen[name] {
		r.resSeen[name] = true
		r.resources = append(r.resources, name)
	}
}

// ResourceSpan records a display span on a resource track (e.g. one message
// occupying one node's tx link).
func (r *Recorder) ResourceSpan(resource, name, cat string, start, end simtime.Time, args ...KV) {
	if r.lite || end < start {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.resSeen[resource] {
		r.resSeen[resource] = true
		r.resources = append(r.resources, resource)
	}
	r.spans = append(r.spans, Span{Proc: -1, Resource: resource, Name: name, Cat: cat, Start: start, End: end, Args: args})
	r.note(end)
}

// CounterSample appends one point of a counter track. Consecutive samples
// with the same value are collapsed.
func (r *Recorder) CounterSample(track string, at simtime.Time, v float64) {
	if r.lite {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ct, ok := r.counters[track]
	if !ok {
		ct = &counterTrack{name: track}
		r.counters[track] = ct
		r.ctrOrder = append(r.ctrOrder, track)
	}
	if ct.haveOne && ct.last == v {
		return
	}
	ct.samples = append(ct.samples, sample{at: at, v: v})
	ct.last, ct.haveOne = v, true
	r.note(at)
}

// AddMessage records an internode message and returns its id for receive
// annotation. Lite recorders return -1.
func (r *Recorder) AddMessage(m Message) int {
	if r.lite {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, m)
	r.note(m.Ready)
	return len(r.msgs) - 1
}

// RecvWait ties a completed receive to the message it matched. If the
// receiver blocked (the engine observer closed a recv-wait segment ending at
// end), that segment is annotated; if the receive completed by a pure clock
// jump (the message was queued with a future delivery time), a synthetic
// wait segment is appended. Zero-duration receives record nothing: the
// message was not the receiver's constraint.
func (r *Recorder) RecvWait(p *simtime.Proc, start, end simtime.Time, msg int) {
	if r.lite || msg < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pt := r.proc(p.ID(), p.Name())
	if n := len(pt.segs); n > 0 {
		last := &pt.segs[n-1]
		if last.End == end && last.Cat == "recv-wait" {
			last.Msg = msg
			return
		}
	}
	if end > start {
		pt.segs = append(pt.segs, PathSeg{Cat: "recv-wait", Start: start, End: end, Msg: msg, Waker: -1})
		r.note(end)
	}
}

// waitCat maps an engine blocking reason to a path component.
func waitCat(reason string) string {
	switch {
	case reason == "inject-window":
		return "injection"
	case reason == "sleep":
		return "sleep"
	case len(reason) >= 7 && reason[:7] == "mailbox":
		return "recv-wait"
	default: // barrier, counter, flag
		return "sync-wait"
	}
}

// --- simtime.Observer implementation -----------------------------------

// ProcBlocked implements simtime.Observer: opens the process's wait.
func (r *Recorder) ProcBlocked(p *simtime.Proc, reason string, at simtime.Time) {
	if r.lite {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pt := r.proc(p.ID(), p.Name())
	pt.blocked = true
	pt.blockStart = at
	pt.blockCat = waitCat(reason)
	pt.blockName = reason
}

// ProcResumed implements simtime.Observer: closes the wait as a display span
// and a path segment carrying the waker edge.
func (r *Recorder) ProcResumed(p *simtime.Proc, at simtime.Time, waker *simtime.Proc) {
	if r.lite {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pt := r.proc(p.ID(), p.Name())
	if !pt.blocked {
		return
	}
	pt.blocked = false
	wid := -1
	if waker != nil && waker != p {
		wid = waker.ID()
	}
	if at > pt.blockStart {
		r.spans = append(r.spans, Span{
			Proc: p.ID(), Name: "wait: " + pt.blockName, Cat: pt.blockCat,
			Start: pt.blockStart, End: at,
		})
		pt.segs = append(pt.segs, PathSeg{Cat: pt.blockCat, Start: pt.blockStart, End: at, Msg: -1, Waker: wid})
		r.note(at)
	}
}

// DeadlockDetected implements simtime.DeadlockObserver: the watchdog hands
// over the blocked-state diagnosis before the engine returns its error, so
// the trace that shows how the program wedged also names who is stuck on
// what. Each stuck process gets a terminal "DEADLOCK" span carrying its
// pending-op detail, and the "watchdog.deadlocks" counter marks the event
// for metrics-only (lite) consumers.
func (r *Recorder) DeadlockDetected(parked []simtime.ParkedInfo, at simtime.Time) {
	r.reg.Counter("watchdog.deadlocks").Add(1)
	if r.lite {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, pi := range parked {
		r.proc(pi.ID, pi.Name)
		name := "DEADLOCK: " + pi.Reason
		if pi.Detail != "" {
			name += " [" + pi.Detail + "]"
		}
		end := at
		if end <= pi.At {
			end = pi.At + 1 // keep the marker visible even at zero extent
		}
		r.spans = append(r.spans, Span{
			Proc: pi.ID, Name: name, Cat: "watchdog",
			Start: pi.At, End: end,
		})
		r.note(end)
	}
}

// Dispatched implements simtime.Observer: samples the engine's run-queue
// depth as a counter track and tracks the high-water mark.
func (r *Recorder) Dispatched(p *simtime.Proc, at simtime.Time, pending int) {
	if r.lite {
		return
	}
	r.reg.Counter("engine.dispatches").Add(1)
	if int64(pending) > r.reg.Gauge("engine.runq.max").Value() {
		r.reg.Gauge("engine.runq.max").Set(int64(pending))
	}
	r.CounterSample("engine runq", at, float64(pending))
}

// Horizon returns the latest virtual time observed by any recording.
func (r *Recorder) Horizon() simtime.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.horizon
}

// Spans returns a copy of the recorded display spans.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Messages returns a copy of the recorded internode messages.
func (r *Recorder) Messages() []Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Message(nil), r.msgs...)
}

// SegsOf returns a copy of one process's path segments, for tests.
func (r *Recorder) SegsOf(proc int) []PathSeg {
	r.mu.Lock()
	defer r.mu.Unlock()
	pt, ok := r.procs[proc]
	if !ok {
		return nil
	}
	return append([]PathSeg(nil), pt.segs...)
}

// procName returns a display name for a process track id.
func (r *Recorder) procName(id int) string {
	if pt, ok := r.procs[id]; ok && pt.name != "" {
		return pt.name
	}
	return fmt.Sprintf("proc%d", id)
}
