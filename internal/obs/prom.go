package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4) for the metrics registry.
// The simulator's own series stay in virtual time; this renderer exists for
// the wall-clock serving layer, whose /metrics endpoint must be scrapeable
// by standard tooling. Output is deterministic — families sorted by kind
// then name, buckets in bound order — so a golden test can pin the format.

// promName maps a registry instrument name to a legal Prometheus metric
// name: dots (the registry's namespace separator) and any other character
// outside [a-zA-Z0-9_:] become underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf spelled out.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Help attaches exposition help text to an instrument name, emitted as the
// family's # HELP line by WriteProm. Instruments without help text get a
// generated placeholder, so registering help is optional.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = help
}

// helpFor returns the registered help text or a placeholder. Callers hold
// r.mu or operate on a snapshot taken under it.
func helpFor(help map[string]string, name, kind string) string {
	if h, ok := help[name]; ok {
		return h
	}
	return kind + " " + name
}

// WriteProm renders every instrument in Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// _bucket{le="..."} samples (including the mandatory +Inf bucket) plus
// _sum and _count. Families are sorted by kind then name; the legacy
// aligned dump remains available via Dump.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.hists)
	counters, gauges, hists := r.counters, r.gauges, r.hists
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	for _, n := range cnames {
		pn := promName(n)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			pn, helpFor(help, n, "counter"), pn, pn, counters[n].Value())
	}
	for _, n := range gnames {
		pn := promName(n)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			pn, helpFor(help, n, "gauge"), pn, pn, gauges[n].Value())
	}
	for _, n := range hnames {
		pn := promName(n)
		s := hists[n].Snapshot()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			pn, helpFor(help, n, "histogram"), pn)
		for i, bound := range s.Bounds {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), s.Cumulative[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, s.Count)
		fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(s.Sum))
		fmt.Fprintf(w, "%s_count %d\n", pn, s.Count)
	}
}
