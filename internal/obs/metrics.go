package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a metrics namespace: counters, gauges and histograms looked up
// by name. Lookup takes a short lock; the instruments themselves update with
// atomics (histograms use a small per-instrument lock), so hot paths in the
// simulation and the parallel bench runner stay cheap.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // exposition help text, see Help
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotone event counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value instrument.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations into fixed buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // bucket upper bounds; one overflow bucket follows
	counts []int64
	sum    float64
	min    float64
	max    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistSnapshot is a consistent copy of a histogram's state: the bucket
// upper bounds, the cumulative count at or below each bound, and the
// count/sum/min/max aggregates. Cumulative[len(Bounds)-1] excludes the
// overflow bucket; Count includes it (the +Inf bucket).
type HistSnapshot struct {
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
	Min        float64
	Max        float64
}

// Snapshot copies the histogram under its lock.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]int64, len(h.bounds)),
		Count:      h.n,
		Sum:        h.sum,
		Min:        h.min,
		Max:        h.max,
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i]
		s.Cumulative[i] = cum
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket that holds the target rank — the standard
// histogram_quantile estimate, bounded by the observed min and max so a
// wide first or overflow bucket cannot invent values outside the data.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return finiteMax(s)
	}
	rank := q * float64(s.Count)
	var prevCum int64
	lower := s.Min
	for i, bound := range s.Bounds {
		cum := s.Cumulative[i]
		if float64(cum) >= rank {
			in := cum - prevCum
			v := bound
			if in > 0 {
				lo := lower
				if lo > bound {
					lo = bound
				}
				v = lo + (bound-lo)*(rank-float64(prevCum))/float64(in)
			}
			return clamp(v, s.Min, finiteMax(s))
		}
		prevCum = cum
		lower = bound
	}
	// Target rank falls in the overflow bucket: the best bounded estimate
	// is the observed maximum.
	return finiteMax(s)
}

// finiteMax is the bounded upper estimate for quantiles: the observed
// maximum when it is finite, else the top bucket bound — an Observe(+Inf)
// or NaN lands in the overflow bucket and poisons the max aggregate, and a
// quantile must degrade to a finite bound rather than propagate Inf into
// dashboards and alerts.
func finiteMax(s HistSnapshot) float64 {
	if !math.IsInf(s.Max, 0) && !math.IsNaN(s.Max) {
		return s.Max
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultBuckets are the histogram bounds used when none are given:
// exponential from 1µs-scale to 10s-scale units.
var DefaultBuckets = []float64{
	0.001, 0.01, 0.1, 1, 10, 100, 1_000, 10_000,
}

// LatencyBucketsUS are histogram bounds for wall-clock latencies measured
// in microseconds, spanning the serving layer's range: a warm cache hit
// (tens of µs) through a cold multi-cell simulation (tens of seconds).
var LatencyBucketsUS = []float64{
	1, 5, 10, 25, 50, 100, 250, 500,
	1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000, 10_000_000,
}

// Histogram returns (creating if needed) the named histogram. Bounds are
// fixed at creation; pass nil for DefaultBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Dump writes every instrument, sorted by kind then name, one per line.
// The format is stable so tests and the -stats / -metrics CLI flags can pin
// it.
func (r *Registry) Dump(w io.Writer) {
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.hists)
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()

	for _, n := range cnames {
		fmt.Fprintf(w, "counter %-32s %d\n", n, counters[n].Value())
	}
	for _, n := range gnames {
		fmt.Fprintf(w, "gauge   %-32s %d\n", n, gauges[n].Value())
	}
	for _, n := range hnames {
		h := hists[n]
		h.mu.Lock()
		if h.n == 0 {
			fmt.Fprintf(w, "hist    %-32s count=0\n", n)
		} else {
			fmt.Fprintf(w, "hist    %-32s count=%d sum=%.6g min=%.6g max=%.6g mean=%.6g\n",
				n, h.n, h.sum, h.min, h.max, h.sum/float64(h.n))
		}
		h.mu.Unlock()
	}
}

// String renders Dump into a string.
func (r *Registry) String() string {
	var b strings.Builder
	r.Dump(&b)
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
