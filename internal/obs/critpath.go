package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Critical-path analysis. The recorder's path segments tile each process's
// virtual time with named cost components; wait segments carry wake edges
// (the releasing process, or the internode message a receive matched, whose
// stages name the fabric resources it crossed). Walking backwards from the
// last-finishing process along those edges yields the longest dependency
// chain — the set of operations that actually determined the makespan — and
// an attribution of the makespan to cost components: the decomposition the
// paper's Figures 1 and 6-14 argue from (injection overhead vs. DMA vs.
// wire vs. link queueing vs. PiP size synchronization).

// PathStep is one segment of the critical path, in forward time order.
type PathStep struct {
	Proc  int    // process track the time was spent on, or -1 for fabric stages
	Cat   string // cost component
	Start simtime.Time
	End   simtime.Time
}

// Dur returns the step's duration.
func (s PathStep) Dur() simtime.Duration { return s.End.Sub(s.Start) }

// Component is one cost component's share of the critical path.
type Component struct {
	Name string
	Dur  simtime.Duration
	Frac float64 // of the walked makespan
}

// PathReport is the result of a critical-path analysis.
type PathReport struct {
	Makespan   simtime.Duration // total virtual time walked ([0, horizon])
	Attributed simtime.Duration // portion covered by named components
	EndProc    string           // display name of the last-finishing process
	Steps      []PathStep       // forward order; contiguous over [0, horizon]
	Components []Component      // sorted by duration desc, then name
}

// AttributedFrac returns the attributed fraction of the makespan.
func (r *PathReport) AttributedFrac() float64 {
	if r.Makespan <= 0 {
		return 1
	}
	return float64(r.Attributed) / float64(r.Makespan)
}

// CriticalPath analyzes the span DAG back from the recorder's horizon.
func (r *Recorder) CriticalPath() *PathReport {
	return r.CriticalPathTo(r.Horizon())
}

// CriticalPathTo analyzes the span DAG back from an explicit end time
// (typically the world's horizon). The walk is deterministic: ties between
// processes break toward the lowest process id.
func (r *Recorder) CriticalPathTo(end simtime.Time) *PathReport {
	r.mu.Lock()
	defer r.mu.Unlock()

	rep := &PathReport{Makespan: simtime.Duration(end)}

	// Start at the process whose timeline reaches the end time; ties and
	// "nobody reaches it" fall back to the latest-ending, lowest-id track.
	ids := append([]int(nil), r.procOrder...)
	sort.Ints(ids)
	cur, best := -1, simtime.Time(-1)
	for _, id := range ids {
		segs := r.procs[id].segs
		if len(segs) == 0 {
			continue
		}
		if last := segs[len(segs)-1].End; last > best {
			cur, best = id, last
		}
	}
	if cur < 0 || end <= 0 {
		return rep
	}
	rep.EndProc = r.procName(cur)

	emit := func(proc int, cat string, start, t simtime.Time) {
		if t > start {
			rep.Steps = append(rep.Steps, PathStep{Proc: proc, Cat: cat, Start: start, End: t})
		}
	}

	t := end
	// visited guards against wake cycles at a single instant; it resets
	// whenever the walk makes backward progress.
	visited := map[int]bool{}
	maxSteps := 16 * (r.totalSegs() + 8)
	for steps := 0; t > 0; steps++ {
		if steps > maxSteps {
			emit(cur, "untracked", 0, t)
			break
		}
		s := lastSegBefore(r.procs[cur].segs, t)
		if s == nil {
			emit(cur, "compute", 0, t)
			break
		}
		if s.End < t {
			// Gap: local clock advance not claimed by any instrument.
			emit(cur, "compute", s.End, t)
			t = s.End
			visited = map[int]bool{cur: true}
			continue
		}
		// s contains t (s.Start < t <= s.End).
		switch {
		case s.Msg >= 0 && s.Msg < len(r.msgs):
			m := r.msgs[s.Msg]
			// Follow the message's fabric stages back to its issue
			// point on the sender.
			for i := len(m.Stages) - 1; i >= 0; i-- {
				st := m.Stages[i]
				hi := st.End
				if hi > t {
					hi = t
				}
				if hi > st.Start {
					emit(-1, st.Cat, st.Start, hi)
				}
			}
			if _, ok := r.procs[m.SrcProc]; ok && m.Issue < t {
				cur = m.SrcProc
				t = m.Issue
				visited = map[int]bool{cur: true}
				continue
			}
			// No sender timeline: attribute the remainder locally.
			if m.Issue < t {
				t = m.Issue
				visited = map[int]bool{cur: true}
				continue
			}
			// Degenerate message; consume the wait segment instead.
			emit(cur, s.Cat, s.Start, t)
			t = s.Start
			visited = map[int]bool{cur: true}
		case s.Waker >= 0 && !visited[s.Waker]:
			// The wait ended when the waker acted at time t; continue
			// on the waker's timeline.
			if _, ok := r.procs[s.Waker]; ok {
				cur = s.Waker
				visited[cur] = true
				continue
			}
			emit(cur, s.Cat, s.Start, t)
			t = s.Start
			visited = map[int]bool{cur: true}
		default:
			emit(cur, s.Cat, s.Start, t)
			t = s.Start
			visited = map[int]bool{cur: true}
		}
	}

	// Forward order, component rollup.
	sort.SliceStable(rep.Steps, func(i, j int) bool {
		if rep.Steps[i].Start != rep.Steps[j].Start {
			return rep.Steps[i].Start < rep.Steps[j].Start
		}
		return rep.Steps[i].End < rep.Steps[j].End
	})
	byCat := map[string]simtime.Duration{}
	for _, st := range rep.Steps {
		byCat[st.Cat] += st.Dur()
		if st.Cat != "untracked" {
			rep.Attributed += st.Dur()
		}
	}
	names := make([]string, 0, len(byCat))
	for n := range byCat {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		frac := 0.0
		if rep.Makespan > 0 {
			frac = float64(byCat[n]) / float64(rep.Makespan)
		}
		rep.Components = append(rep.Components, Component{Name: n, Dur: byCat[n], Frac: frac})
	}
	sort.SliceStable(rep.Components, func(i, j int) bool {
		if rep.Components[i].Dur != rep.Components[j].Dur {
			return rep.Components[i].Dur > rep.Components[j].Dur
		}
		return rep.Components[i].Name < rep.Components[j].Name
	})
	return rep
}

func (r *Recorder) totalSegs() int {
	n := 0
	for _, pt := range r.procs {
		n += len(pt.segs)
	}
	return n
}

// lastSegBefore returns the last segment with Start < t, or nil.
func lastSegBefore(segs []PathSeg, t simtime.Time) *PathSeg {
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].Start < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return &segs[lo-1]
}

// Format renders the report as the text block pipmcoll-trace prints.
func (r *PathReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %v makespan, %d segments, ends at %s\n",
		r.Makespan, len(r.Steps), r.EndProc)
	for _, c := range r.Components {
		fmt.Fprintf(&b, "  %-12s %12v  %5.1f%%\n", c.Name, c.Dur, 100*c.Frac)
	}
	fmt.Fprintf(&b, "  attributed: %.1f%% of makespan\n", 100*r.AttributedFrac())
	return b.String()
}
