package apps

import (
	"fmt"
	"math"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

// JacobiResult reports a distributed 2D Jacobi run.
type JacobiResult struct {
	Iterations int
	MaxDelta   float64 // global max |u_new - u_old| of the last sweep
	Checksum   float64 // global sum of the interior field
}

// Jacobi2D relaxes the Laplace equation on a global G x G grid with fixed
// boundary values (top edge = 100, others = 0), decomposed over the
// squarest 2D process grid. Each sweep exchanges halos with up to four
// neighbours (point-to-point) and reduces the convergence delta with the
// library's allreduce (Max) — the canonical structured-stencil workload.
// G must be divisible by both grid dimensions.
func Jacobi2D(r *mpi.Rank, lib *libs.Library, g, iters int) JacobiResult {
	size := r.Size()
	grid := topology.SquarestGrid(size)
	if g%grid.Rows() != 0 || g%grid.Cols() != 0 {
		panic(fmt.Sprintf("apps: %d grid not divisible by %dx%d process grid", g, grid.Rows(), grid.Cols()))
	}
	lr := g / grid.Rows() // local rows
	lc := g / grid.Cols() // local cols
	me := r.Rank()
	row, _ := grid.Coords(me)

	// Local field with a one-cell halo ring: (lr+2) x (lc+2).
	stride := lc + 2
	u := make([]float64, (lr+2)*stride)
	un := make([]float64, (lr+2)*stride)
	at := func(i, j int) int { return i*stride + j }
	// Boundary condition: global top edge = 100.
	if row == 0 {
		for j := 0; j < stride; j++ {
			u[at(0, j)] = 100
			un[at(0, j)] = 100
		}
	}

	up := grid.Neighbor(me, -1, 0)
	down := grid.Neighbor(me, 1, 0)
	left := grid.Neighbor(me, 0, -1)
	right := grid.Neighbor(me, 0, 1)

	rowBuf := make([]byte, lc*nums.F64Size)
	rowIn := make([]byte, lc*nums.F64Size)
	colBuf := make([]byte, lr*nums.F64Size)
	colIn := make([]byte, lr*nums.F64Size)

	var delta float64
	for it := 0; it < iters; it++ {
		tag := 8_000_000 + 8*it
		// Halo exchange: rows up/down, columns left/right. Each
		// direction is a symmetric sendrecv with distinct tags.
		if up >= 0 {
			for j := 0; j < lc; j++ {
				nums.SetF64At(rowBuf, j, u[at(1, j+1)])
			}
			r.Sendrecv(up, tag, rowBuf, up, tag+1, rowIn)
			for j := 0; j < lc; j++ {
				u[at(0, j+1)] = nums.F64At(rowIn, j)
			}
		}
		if down >= 0 {
			for j := 0; j < lc; j++ {
				nums.SetF64At(rowBuf, j, u[at(lr, j+1)])
			}
			r.Sendrecv(down, tag+1, rowBuf, down, tag, rowIn)
			for j := 0; j < lc; j++ {
				u[at(lr+1, j+1)] = nums.F64At(rowIn, j)
			}
		}
		if left >= 0 {
			for i := 0; i < lr; i++ {
				nums.SetF64At(colBuf, i, u[at(i+1, 1)])
			}
			r.Sendrecv(left, tag+2, colBuf, left, tag+3, colIn)
			for i := 0; i < lr; i++ {
				u[at(i+1, 0)] = nums.F64At(colIn, i)
			}
		}
		if right >= 0 {
			for i := 0; i < lr; i++ {
				nums.SetF64At(colBuf, i, u[at(i+1, lc)])
			}
			r.Sendrecv(right, tag+3, colBuf, right, tag+2, colIn)
			for i := 0; i < lr; i++ {
				u[at(i+1, lc+1)] = nums.F64At(colIn, i)
			}
		}

		// Sweep.
		localDelta := 0.0
		for i := 1; i <= lr; i++ {
			for j := 1; j <= lc; j++ {
				v := 0.25 * (u[at(i-1, j)] + u[at(i+1, j)] + u[at(i, j-1)] + u[at(i, j+1)])
				d := math.Abs(v - u[at(i, j)])
				if d > localDelta {
					localDelta = d
				}
				un[at(i, j)] = v
			}
		}
		u, un = un, u
		// Convergence check: global max delta.
		in := make([]byte, nums.F64Size)
		out := make([]byte, nums.F64Size)
		nums.SetF64At(in, 0, localDelta)
		lib.Allreduce(r, in, out, nums.Max)
		delta = nums.F64At(out, 0)
	}

	// Global checksum of the interior.
	sum := 0.0
	for i := 1; i <= lr; i++ {
		for j := 1; j <= lc; j++ {
			sum += u[at(i, j)]
		}
	}
	in := make([]byte, nums.F64Size)
	out := make([]byte, nums.F64Size)
	nums.SetF64At(in, 0, sum)
	lib.Allreduce(r, in, out, nums.Sum)
	return JacobiResult{Iterations: iters, MaxDelta: delta, Checksum: nums.F64At(out, 0)}
}

// SerialJacobi2D runs the identical relaxation on one process.
func SerialJacobi2D(g, iters int) JacobiResult {
	stride := g + 2
	u := make([]float64, (g+2)*stride)
	un := make([]float64, (g+2)*stride)
	at := func(i, j int) int { return i*stride + j }
	for j := 0; j < stride; j++ {
		u[at(0, j)] = 100
		un[at(0, j)] = 100
	}
	var delta float64
	for it := 0; it < iters; it++ {
		delta = 0
		for i := 1; i <= g; i++ {
			for j := 1; j <= g; j++ {
				v := 0.25 * (u[at(i-1, j)] + u[at(i+1, j)] + u[at(i, j-1)] + u[at(i, j+1)])
				if d := math.Abs(v - u[at(i, j)]); d > delta {
					delta = d
				}
				un[at(i, j)] = v
			}
		}
		u, un = un, u
	}
	sum := 0.0
	for i := 1; i <= g; i++ {
		for j := 1; j <= g; j++ {
			sum += u[at(i, j)]
		}
	}
	return JacobiResult{Iterations: iters, MaxDelta: delta, Checksum: sum}
}
