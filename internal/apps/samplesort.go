package apps

import (
	"fmt"
	"sort"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/nums"
)

// SampleSortResult reports a distributed sample-sort run.
type SampleSortResult struct {
	Local  []float64 // this rank's sorted partition
	Global int       // total elements across ranks (verified by allreduce)
}

// SampleSort globally sorts rank-deterministic float64 keys with regular
// sample sort: local sort, regular sampling, splitter broadcast, bucket
// partition, Alltoallv redistribution, local merge. Afterwards rank i's
// partition is sorted and every element on rank i precedes every element on
// rank i+1 — the classic alltoallv-dominated workload. keysPerRank must be
// at least the world size.
func SampleSort(r *mpi.Rank, keysPerRank int) SampleSortResult {
	size := r.Size()
	me := r.Rank()
	if keysPerRank < size {
		panic(fmt.Sprintf("apps: sample sort needs >= %d keys per rank, got %d", size, keysPerRank))
	}
	keys := syntheticKeys(me, keysPerRank)
	sort.Float64s(keys)

	v := coll.World(r)

	// Regular sampling: each rank contributes size equally spaced local
	// samples; gathered everywhere, the (i+1)·size-th order statistics
	// become the splitters.
	samples := make([]byte, size*nums.F64Size)
	for i := 0; i < size; i++ {
		nums.SetF64At(samples, i, keys[i*keysPerRank/size])
	}
	allSamples := make([]byte, size*size*nums.F64Size)
	coll.AllgatherBruck(v, samples, allSamples)
	pool := nums.F64(allSamples)
	sort.Float64s(pool)
	splitters := make([]float64, size-1)
	for i := range splitters {
		splitters[i] = pool[(i+1)*size]
	}

	// Partition the sorted local keys into per-destination buckets.
	sendCounts := make([]int, size)
	sendDispls := make([]int, size)
	at := 0
	for dst := 0; dst < size; dst++ {
		sendDispls[dst] = at * nums.F64Size
		for at < len(keys) && (dst == size-1 || keys[at] < splitters[dst]) {
			at++
		}
		sendCounts[dst] = at*nums.F64Size - sendDispls[dst]
	}

	// Exchange bucket sizes (alltoall of one count per peer), then data.
	countsOut := make([]byte, size*nums.F64Size)
	for i, c := range sendCounts {
		nums.SetF64At(countsOut, i, float64(c))
	}
	countsIn := make([]byte, size*nums.F64Size)
	coll.AlltoallPairwise(v, countsOut, countsIn)
	recvCounts := make([]int, size)
	recvDispls := make([]int, size)
	total := 0
	for i := range recvCounts {
		recvCounts[i] = int(nums.F64At(countsIn, i))
		recvDispls[i] = total
		total += recvCounts[i]
	}
	sendBytes := make([]byte, len(keys)*nums.F64Size)
	nums.PutF64(sendBytes, keys)
	recvBytes := make([]byte, total)
	coll.Alltoallv(v, sendBytes, sendCounts, sendDispls, recvBytes, recvCounts, recvDispls)

	local := nums.F64(recvBytes)
	sort.Float64s(local) // merge of sorted runs; a sort keeps the code small

	// Verify the global element count survived redistribution.
	in := make([]byte, nums.F64Size)
	out := make([]byte, nums.F64Size)
	nums.SetF64At(in, 0, float64(len(local)))
	coll.AllreduceRecDoubling(v, in, out, nums.Sum)
	return SampleSortResult{Local: local, Global: int(nums.F64At(out, 0))}
}

// syntheticKeys produces rank-deterministic pseudo-random keys with a
// rank-dependent skew, so buckets are uneven and alltoallv matters.
func syntheticKeys(rank, n int) []float64 {
	keys := make([]float64, n)
	state := uint64(rank*2654435761 + 12345)
	for i := range keys {
		state = state*6364136223846793005 + 1442695040888963407
		keys[i] = float64(state>>11) / float64(1<<53) * 1000
		if rank%2 == 1 {
			keys[i] = keys[i] * keys[i] / 1000 // skew odd ranks low
		}
	}
	return keys
}
