package apps

import (
	"fmt"
	"math"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
)

// KMeansResult reports a distributed k-means run.
type KMeansResult struct {
	Centroids [][]float64
	Inertia   float64 // sum of squared distances to assigned centroids
}

// KMeans clusters pointsPerRank synthetic D-dimensional points per rank
// into k clusters with Lloyd's algorithm for a fixed iteration count. The
// per-iteration communication is one allreduce of the (k·(D+1)) partial
// centroid sums + counts and one of the partial inertia — the pattern of
// every distributed EM-style algorithm. Points are deterministic per rank;
// all ranks return identical centroids.
func KMeans(r *mpi.Rank, lib *libs.Library, pointsPerRank, dim, k, iters int) KMeansResult {
	if k < 1 || dim < 1 || pointsPerRank < 1 {
		panic(fmt.Sprintf("apps: kmeans shape %d/%d/%d", pointsPerRank, dim, k))
	}
	pts := syntheticPoints(r.Rank(), pointsPerRank, dim, k)

	// Deterministic initial centroids, identical on all ranks.
	cents := make([][]float64, k)
	for c := range cents {
		cents[c] = make([]float64, dim)
		for d := range cents[c] {
			cents[c][d] = float64(c*37+d*11) / 7
		}
	}

	sumLen := k * (dim + 1) // per cluster: D coordinate sums + count
	sums := make([]byte, sumLen*nums.F64Size)
	global := make([]byte, sumLen*nums.F64Size)
	inBuf := make([]byte, nums.F64Size)
	outBuf := make([]byte, nums.F64Size)

	var inertia float64
	for it := 0; it < iters; it++ {
		for i := range sums {
			sums[i] = 0
		}
		localInertia := 0.0
		for _, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c := range cents {
				d := sqDist(p, cents[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			localInertia += bestD
			base := best * (dim + 1)
			for d := 0; d < dim; d++ {
				nums.SetF64At(sums, base+d, nums.F64At(sums, base+d)+p[d])
			}
			nums.SetF64At(sums, base+dim, nums.F64At(sums, base+dim)+1)
		}
		lib.Allreduce(r, sums, global, nums.Sum)
		for c := range cents {
			base := c * (dim + 1)
			n := nums.F64At(global, base+dim)
			if n == 0 {
				continue // empty cluster keeps its centroid
			}
			for d := 0; d < dim; d++ {
				cents[c][d] = nums.F64At(global, base+d) / n
			}
		}
		nums.SetF64At(inBuf, 0, localInertia)
		lib.Allreduce(r, inBuf, outBuf, nums.Sum)
		inertia = nums.F64At(outBuf, 0)
	}
	return KMeansResult{Centroids: cents, Inertia: inertia}
}

// SerialKMeans runs the same algorithm over the union of all ranks' points.
func SerialKMeans(ranks, pointsPerRank, dim, k, iters int) KMeansResult {
	var pts [][]float64
	for rank := 0; rank < ranks; rank++ {
		pts = append(pts, syntheticPoints(rank, pointsPerRank, dim, k)...)
	}
	cents := make([][]float64, k)
	for c := range cents {
		cents[c] = make([]float64, dim)
		for d := range cents[c] {
			cents[c][d] = float64(c*37+d*11) / 7
		}
	}
	var inertia float64
	for it := 0; it < iters; it++ {
		sums := make([][]float64, k)
		counts := make([]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		inertia = 0
		for _, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c := range cents {
				d := sqDist(p, cents[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			inertia += bestD
			for d := 0; d < dim; d++ {
				sums[best][d] += p[d]
			}
			counts[best]++
		}
		for c := range cents {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				cents[c][d] = sums[c][d] / counts[c]
			}
		}
	}
	return KMeansResult{Centroids: cents, Inertia: inertia}
}

// syntheticPoints produces rank-deterministic points around k well-spread
// anchors, so clustering has structure to find.
func syntheticPoints(rank, n, dim, k int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		anchor := (rank + i) % k
		for d := range p {
			jitter := float64((rank*131+i*29+d*17)%100)/100 - 0.5
			p[d] = float64(anchor*100+d*13) + jitter
		}
		pts[i] = p
	}
	return pts
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
