package apps

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func runWorld(t *testing.T, lib *libs.Library, nodes, ppn int, body func(*mpi.Rank)) {
	t.Helper()
	w, err := mpi.NewWorld(topology.New(nodes, ppn, topology.Block), lib.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatalf("world run: %v", err)
	}
}

func TestCGMatchesSerial(t *testing.T) {
	const n, iters = 240, 30
	serial := SerialCG(n, iters)
	for _, lib := range []*libs.Library{libs.PiPMColl(), libs.PiPMPICH()} {
		for _, sh := range [][2]int{{2, 3}, {4, 2}} {
			lib, sh := lib, sh
			t.Run(fmt.Sprintf("%s %dx%d", lib.Name(), sh[0], sh[1]), func(t *testing.T) {
				perRank := make([]float64, sh[0]*sh[1])
				runWorld(t, lib, sh[0], sh[1], func(r *mpi.Rank) {
					perRank[r.Rank()] = CG(r, lib, n, iters).Residual
				})
				got := CGResult{Iterations: iters, Residual: perRank[0]}
				// Every rank must agree exactly (identical allreduce
				// results everywhere).
				for rank, res := range perRank {
					if res != got.Residual {
						t.Errorf("rank %d residual %v != rank 0's %v", rank, res, got.Residual)
					}
				}
				// Parallel dot products reorder additions; residuals
				// agree to high relative precision.
				relErr := math.Abs(got.Residual-serial.Residual) / serial.Residual
				if relErr > 1e-9 {
					t.Errorf("parallel residual %v vs serial %v (rel %v)",
						got.Residual, serial.Residual, relErr)
				}
				// 30 CG iterations must have reduced the residual a lot.
				if got.Residual > SerialCG(n, 0).Residual/10 {
					t.Errorf("CG did not converge: %v", got.Residual)
				}
			})
		}
	}
}

func TestCGDimensionValidation(t *testing.T) {
	lib := libs.PiPMColl()
	w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), lib.Config())
	if err := w.Run(func(r *mpi.Rank) { CG(r, lib, 13, 1) }); err == nil {
		t.Fatal("indivisible CG dimension accepted")
	}
}

func TestKMeansMatchesSerial(t *testing.T) {
	const (
		points = 50
		dim    = 3
		k      = 4
		iters  = 5
	)
	for _, sh := range [][2]int{{2, 2}, {3, 2}} {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			lib := libs.PiPMColl()
			serial := SerialKMeans(sh[0]*sh[1], points, dim, k, iters)
			runWorld(t, lib, sh[0], sh[1], func(r *mpi.Rank) {
				got := KMeans(r, lib, points, dim, k, iters)
				relErr := math.Abs(got.Inertia-serial.Inertia) / serial.Inertia
				if relErr > 1e-9 {
					t.Errorf("rank %d inertia %v vs serial %v", r.Rank(), got.Inertia, serial.Inertia)
				}
				for c := range got.Centroids {
					for d := range got.Centroids[c] {
						if math.Abs(got.Centroids[c][d]-serial.Centroids[c][d]) > 1e-8 {
							t.Errorf("rank %d centroid (%d,%d) %v vs %v", r.Rank(), c, d,
								got.Centroids[c][d], serial.Centroids[c][d])
							return
						}
					}
				}
			})
		})
	}
}

func TestKMeansValidation(t *testing.T) {
	lib := libs.PiPMColl()
	w := mpi.MustNewWorld(topology.New(1, 2, topology.Block), lib.Config())
	if err := w.Run(func(r *mpi.Rank) { KMeans(r, lib, 10, 2, 0, 1) }); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSampleSortGloballySorted(t *testing.T) {
	const keys = 200
	for _, sh := range [][2]int{{2, 2}, {3, 3}, {4, 2}} {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			size := sh[0] * sh[1]
			lib := libs.PiPMColl()
			maxPerRank := make([]float64, size)
			minPerRank := make([]float64, size)
			counts := make([]int, size)
			runWorld(t, lib, sh[0], sh[1], func(r *mpi.Rank) {
				res := SampleSort(r, keys)
				if res.Global != size*keys {
					t.Errorf("rank %d global count %d, want %d", r.Rank(), res.Global, size*keys)
				}
				if !sort.Float64sAreSorted(res.Local) {
					t.Errorf("rank %d partition unsorted", r.Rank())
				}
				counts[r.Rank()] = len(res.Local)
				if len(res.Local) > 0 {
					minPerRank[r.Rank()] = res.Local[0]
					maxPerRank[r.Rank()] = res.Local[len(res.Local)-1]
				}
			})
			// Partitions must be globally ordered and complete.
			total := 0
			for i := 0; i < size; i++ {
				total += counts[i]
				if i > 0 && counts[i] > 0 && counts[i-1] > 0 &&
					minPerRank[i] < maxPerRank[i-1] {
					t.Errorf("rank %d min %v below rank %d max %v",
						i, minPerRank[i], i-1, maxPerRank[i-1])
				}
			}
			if total != size*keys {
				t.Errorf("elements lost: %d of %d", total, size*keys)
			}
		})
	}
}

func TestSampleSortPreservesMultiset(t *testing.T) {
	const keys = 64
	lib := libs.PiPMColl()
	var gathered []float64
	runWorld(t, lib, 2, 2, func(r *mpi.Rank) {
		res := SampleSort(r, keys)
		gathered = append(gathered, res.Local...) // sim-serialized appends
	})
	var want []float64
	for rank := 0; rank < 4; rank++ {
		want = append(want, syntheticKeys(rank, keys)...)
	}
	sort.Float64s(want)
	sort.Float64s(gathered)
	if len(gathered) != len(want) {
		t.Fatalf("multiset size %d, want %d", len(gathered), len(want))
	}
	for i := range want {
		if gathered[i] != want[i] {
			t.Fatalf("multiset differs at %d: %v vs %v", i, gathered[i], want[i])
		}
	}
}

func TestSampleSortValidation(t *testing.T) {
	lib := libs.PiPMColl()
	w := mpi.MustNewWorld(topology.New(3, 2, topology.Block), lib.Config())
	if err := w.Run(func(r *mpi.Rank) { SampleSort(r, 3) }); err == nil {
		t.Fatal("too few keys accepted")
	}
}

func TestJacobiMatchesSerial(t *testing.T) {
	const g, iters = 48, 20
	serial := SerialJacobi2D(g, iters)
	if serial.MaxDelta <= 0 || serial.Checksum <= 0 {
		t.Fatalf("serial degenerate: %+v", serial)
	}
	for _, sh := range [][2]int{{2, 2}, {2, 3}, {4, 4}} {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			lib := libs.PiPMColl()
			runWorld(t, lib, sh[0], sh[1], func(r *mpi.Rank) {
				got := Jacobi2D(r, lib, g, iters)
				// The max-delta reduction is order-insensitive: exact match.
				if got.MaxDelta != serial.MaxDelta {
					t.Errorf("rank %d delta %v vs serial %v", r.Rank(), got.MaxDelta, serial.MaxDelta)
				}
				relErr := math.Abs(got.Checksum-serial.Checksum) / serial.Checksum
				if relErr > 1e-12 {
					t.Errorf("rank %d checksum %v vs serial %v", r.Rank(), got.Checksum, serial.Checksum)
				}
			})
		})
	}
}

func TestJacobiValidation(t *testing.T) {
	lib := libs.PiPMColl()
	w := mpi.MustNewWorld(topology.New(3, 1, topology.Block), lib.Config())
	if err := w.Run(func(r *mpi.Rank) { Jacobi2D(r, lib, 10, 1) }); err == nil {
		t.Fatal("indivisible grid accepted")
	}
}
