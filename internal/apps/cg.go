// Package apps contains miniature HPC applications built on the simulated
// MPI stack — integration workloads exercising the collectives the way the
// paper's motivating applications do: iterative solvers (allreduce-bound
// dot products + halo exchange), clustering (centroid allreduce), and
// distributed sorting (alltoallv). Each app verifies its numerical result
// against a serial reference inside the simulation.
package apps

import (
	"fmt"
	"math"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
)

// CGResult reports a distributed conjugate-gradient run.
type CGResult struct {
	Iterations int
	Residual   float64 // final ||r||_2
}

// CG solves A·x = b for the diagonally dominant stencil matrix
// A = tridiag(-1, 4, -1) of global
// dimension n (divisible by the world size), distributed by contiguous row
// blocks. Each iteration needs one halo exchange (point-to-point with the
// neighbouring ranks) for the matrix-vector product and two global dot
// products (allreduce through the given library) — the communication
// pattern of every Krylov solver. b is the deterministic PatternValue
// vector. All ranks return identical results.
func CG(r *mpi.Rank, lib *libs.Library, n, iters int) CGResult {
	size := r.Size()
	if n%size != 0 {
		panic(fmt.Sprintf("apps: CG dimension %d not divisible by %d ranks", n, size))
	}
	local := n / size
	me := r.Rank()
	lo := me * local

	b := make([]float64, local)
	for i := range b {
		b[i] = nums.PatternValue(0, lo+i) / 1000
	}
	x := make([]float64, local)
	res := make([]float64, local) // residual r = b - A x = b (x starts 0)
	copy(res, b)
	p := make([]float64, local)
	copy(p, res)
	ap := make([]float64, local)

	dot := func(a, c []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * c[i]
		}
		buf := make([]byte, nums.F64Size)
		out := make([]byte, nums.F64Size)
		nums.SetF64At(buf, 0, s)
		lib.Allreduce(r, buf, out, nums.Sum)
		return nums.F64At(out, 0)
	}

	// matvec computes ap = A·p with a halo exchange of the boundary
	// elements to/from the neighbouring ranks.
	matvec := func(tagBase int) {
		leftHalo, rightHalo := 0.0, 0.0
		oneL := make([]byte, nums.F64Size)
		oneR := make([]byte, nums.F64Size)
		var reqs []*mpi.Request
		if me > 0 {
			out := make([]byte, nums.F64Size)
			nums.SetF64At(out, 0, p[0])
			reqs = append(reqs,
				r.Isend(me-1, tagBase, out),
				r.Irecv(me-1, tagBase+1, oneL))
		}
		if me < size-1 {
			out := make([]byte, nums.F64Size)
			nums.SetF64At(out, 0, p[local-1])
			reqs = append(reqs,
				r.Isend(me+1, tagBase+1, out),
				r.Irecv(me+1, tagBase, oneR))
		}
		r.Waitall(reqs...)
		if me > 0 {
			leftHalo = nums.F64At(oneL, 0)
		}
		if me < size-1 {
			rightHalo = nums.F64At(oneR, 0)
		}
		for i := 0; i < local; i++ {
			left := leftHalo
			if i > 0 {
				left = p[i-1]
			}
			right := rightHalo
			if i < local-1 {
				right = p[i+1]
			}
			ap[i] = 4*p[i] - left - right
		}
	}

	rr := dot(res, res)
	it := 0
	for ; it < iters; it++ {
		matvec(9000 + 4*it)
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			res[i] -= alpha * ap[i]
		}
		rrNew := dot(res, res)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = res[i] + beta*p[i]
		}
	}
	return CGResult{Iterations: it, Residual: math.Sqrt(rr)}
}

// SerialCG is the single-process reference with identical arithmetic
// structure (used by tests; parallel dot products may differ in the last
// bits because addition order differs).
func SerialCG(n, iters int) CGResult {
	b := make([]float64, n)
	for i := range b {
		b[i] = nums.PatternValue(0, i) / 1000
	}
	x := make([]float64, n)
	res := append([]float64(nil), b...)
	p := append([]float64(nil), res...)
	ap := make([]float64, n)
	dot := func(a, c []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * c[i]
		}
		return s
	}
	rr := dot(res, res)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			left, right := 0.0, 0.0
			if i > 0 {
				left = p[i-1]
			}
			if i < n-1 {
				right = p[i+1]
			}
			ap[i] = 4*p[i] - left - right
		}
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			res[i] -= alpha * ap[i]
		}
		rrNew := dot(res, res)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = res[i] + beta*p[i]
		}
	}
	return CGResult{Iterations: iters, Residual: math.Sqrt(rr)}
}
