package libs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/obs"
	"repro/internal/topology"
)

var updatePerfetto = flag.Bool("update", false, "rewrite the golden Perfetto trace")

// runObserved runs one PiP-MColl bcast on a tiny fixed shape (2 nodes × 2
// ppn = 4 ranks, 256 B) with a full recorder attached.
func runObserved(t *testing.T) *obs.Recorder {
	t.Helper()
	lib, err := ByName("PiP-MColl")
	if err != nil {
		t.Fatal(err)
	}
	cluster := topology.New(2, 2, topology.Block)
	world, err := mpi.NewWorld(cluster, lib.Config())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	world.Observe(rec)
	if err := world.Run(func(r *mpi.Rank) {
		lib.Bcast(r, 0, make([]byte, 256))
	}); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestPerfettoGolden pins the exact Perfetto JSON of the tiny fixed run.
// Any change to span names, track layout, event ordering or the exporter's
// number formatting shows up as a diff here. Regenerate with -update.
func TestPerfettoGolden(t *testing.T) {
	rec := runObserved(t)
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "bcast_2x2.perfetto.golden.json")
	if *updatePerfetto {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto trace drifted from golden %s (run with -update to regenerate after intentional changes)\ngot %d bytes, want %d",
			path, buf.Len(), len(want))
	}
}

// TestFaultLayerZeroCost is the chaos layer's zero-cost acceptance check:
// a world with an attached-but-empty fault.Plan (every mechanism disabled)
// exports a Perfetto trace byte-identical to the fault-free golden — the
// fault hooks on the hot paths must be provably free when nothing is
// injected.
func TestFaultLayerZeroCost(t *testing.T) {
	lib, err := ByName("PiP-MColl")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lib.Config()
	cfg.Faults = fault.MustNew(fault.Spec{Seed: 42})
	world, err := mpi.NewWorld(topology.New(2, 2, topology.Block), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	world.Observe(rec)
	if err := world.Run(func(r *mpi.Rank) {
		lib.Bcast(r, 0, make([]byte, 256))
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "bcast_2x2.perfetto.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("empty fault plan perturbed the trace: got %d bytes, golden %d", buf.Len(), len(want))
	}
	if fs := world.Fabric().FaultStats(); fs != (fabric.FaultStats{}) {
		t.Errorf("empty plan accumulated fault stats %+v", fs)
	}
}

// TestPerfettoByteIdenticalAcrossRuns is the determinism acceptance check:
// two independent simulations of the same spec export identical bytes.
func TestPerfettoByteIdenticalAcrossRuns(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := runObserved(t).WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Error("perfetto export differs across identical runs")
	}
}

// TestCriticalPathAttribution is the acceptance check on the analyzer: over
// every library and the paper's three collectives, the critical path must
// attribute at least 95% of the makespan to named cost components, and the
// report must be deterministic across runs.
func TestCriticalPathAttribution(t *testing.T) {
	cluster := topology.New(3, 2, topology.Block)
	for _, lib := range All() {
		lib := lib
		for _, op := range []string{"scatter", "allgather", "allreduce"} {
			t.Run(lib.Name()+"/"+op, func(t *testing.T) {
				run := func() string {
					world, err := mpi.NewWorld(cluster, lib.Config())
					if err != nil {
						t.Fatal(err)
					}
					rec := obs.NewRecorder()
					world.Observe(rec)
					size := cluster.Size()
					if err := world.Run(func(r *mpi.Rank) {
						switch op {
						case "scatter":
							var send []byte
							if r.Rank() == 0 {
								send = make([]byte, size*512)
							}
							lib.Scatter(r, 0, send, make([]byte, 512))
						case "allgather":
							lib.Allgather(r, make([]byte, 512), make([]byte, size*512))
						case "allreduce":
							lib.Allreduce(r, make([]byte, 512), make([]byte, 512), nums.Sum)
						}
					}); err != nil {
						t.Fatal(err)
					}
					rep := rec.CriticalPathTo(world.Horizon())
					if got := rep.AttributedFrac(); got < 0.95 {
						t.Errorf("attributed %.1f%% of makespan, want >= 95%%\n%s",
							100*got, rep.Format())
					}
					return rep.Format()
				}
				if a, b := run(), run(); a != b {
					t.Errorf("critical-path report differs across identical runs:\n--- a\n%s--- b\n%s", a, b)
				}
			})
		}
	}
}
