package libs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/shm"
	"repro/internal/topology"
)

func allProfiles() []*Library {
	return append(All(), PiPMCollSmall())
}

func TestNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range allProfiles() {
		if seen[l.Name()] {
			t.Fatalf("duplicate profile name %q", l.Name())
		}
		seen[l.Name()] = true
		got, err := ByName(l.Name())
		if err != nil || got.Name() != l.Name() {
			t.Fatalf("ByName(%q) = %v, %v", l.Name(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name resolved")
	}
}

func TestConfigsMatchMechanisms(t *testing.T) {
	cases := map[string]shm.Mechanism{
		"PiP-MColl": shm.PiP, "PiP-MPICH": shm.PiP, "OpenMPI": shm.CMA,
		"MVAPICH2": shm.XPMEM, "IntelMPI": shm.POSIX,
	}
	for name, mech := range cases {
		l, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if l.Config().Mechanism != mech {
			t.Errorf("%s mechanism = %v, want %v", name, l.Config().Mechanism, mech)
		}
		if err := l.Config().Validate(); err != nil {
			t.Errorf("%s config invalid: %v", name, err)
		}
	}
}

// Every profile must produce correct results for every collective across
// small and large payloads — the integration test tying libraries,
// algorithms and transports together.
func TestAllProfilesAllCollectivesCorrect(t *testing.T) {
	const nodes, ppn = 3, 4
	size := nodes * ppn
	for _, lib := range allProfiles() {
		for _, payload := range []int{64, 96 << 10} {
			lib, payload := lib, payload
			t.Run(fmt.Sprintf("%s %dB", lib.Name(), payload), func(t *testing.T) {
				w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), lib.Config())
				wantGather := make([]byte, size*payload)
				for i := 0; i < size; i++ {
					nums.FillBytes(wantGather[i*payload:(i+1)*payload], i)
				}
				wantSum := make([]byte, payload)
				nums.Fill(wantSum, 0)
				tmp := make([]byte, payload)
				for i := 1; i < size; i++ {
					nums.Fill(tmp, i)
					nums.Sum.Combine(wantSum, tmp)
				}
				err := w.Run(func(r *mpi.Rank) {
					// Scatter.
					var send []byte
					if r.Rank() == 0 {
						send = append([]byte(nil), wantGather...)
					}
					chunk := make([]byte, payload)
					lib.Scatter(r, 0, send, chunk)
					if !bytes.Equal(chunk, wantGather[r.Rank()*payload:(r.Rank()+1)*payload]) {
						t.Errorf("%s scatter rank %d wrong", lib.Name(), r.Rank())
					}
					// Allgather.
					mine := make([]byte, payload)
					nums.FillBytes(mine, r.Rank())
					full := make([]byte, size*payload)
					lib.Allgather(r, mine, full)
					if !bytes.Equal(full, wantGather) {
						t.Errorf("%s allgather rank %d wrong", lib.Name(), r.Rank())
					}
					// Allreduce.
					vec := make([]byte, payload)
					nums.Fill(vec, r.Rank())
					out := make([]byte, payload)
					lib.Allreduce(r, vec, out, nums.Sum)
					if !bytes.Equal(out, wantSum) {
						t.Errorf("%s allreduce rank %d wrong", lib.Name(), r.Rank())
					}
				})
				if err != nil {
					t.Fatalf("%s: %v", lib.Name(), err)
				}
			})
		}
	}
}

func TestPiPMCollSmallNeverSwitches(t *testing.T) {
	// The ablation profile must keep using the small algorithm at sizes
	// where the main profile has switched; its timing therefore differs
	// while results agree.
	const nodes, ppn, payload = 4, 2, 128 << 10
	elapsed := func(lib *Library) int64 {
		w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), lib.Config())
		if err := w.Run(func(r *mpi.Rank) {
			mine := make([]byte, payload)
			nums.FillBytes(mine, r.Rank())
			full := make([]byte, nodes*ppn*payload)
			lib.Allgather(r, mine, full)
		}); err != nil {
			t.Fatal(err)
		}
		return int64(w.Horizon())
	}
	main := elapsed(PiPMColl())
	small := elapsed(PiPMCollSmall())
	if small <= main {
		t.Errorf("ablation (always-small) %d should be slower than switched %d at 128kB", small, main)
	}
}
