// Package libs assembles the five "MPI libraries" the paper's evaluation
// compares: PiP-MColl itself, the PiP-MPICH baseline, and profiles standing
// in for Intel MPI, Open MPI and MVAPICH2. A profile is a transport
// configuration (which intranode mechanism the library uses) plus an
// algorithm-selection table (which collective algorithm runs at which size)
// — the same two axes on which the real libraries differ:
//
//	PiP-MColl    — PiP transport; the paper's multi-object algorithms
//	               with size-based switching (internal/core).
//	PiP-MColl-S  — ablation: PiP-MColl's small-message algorithms forced
//	               at every size (the PiP-MColl-small curve of Figures
//	               13-14).
//	PiP-MPICH    — the paper's baseline: stock MPICH flat algorithms
//	               (binomial, Bruck/recursive-doubling/ring,
//	               Rabenseifner) over the PiP intranode transport, which
//	               pays the per-message size synchronization.
//	Open MPI     — flat tuned algorithms over the CMA intranode
//	               mechanism (Open MPI's default single-copy path).
//	MVAPICH2     — hierarchical leader-based collectives over XPMEM.
//	Intel MPI    — hierarchical leader-based collectives over
//	               POSIX-SHMEM bounce buffers.
//
// Every profile exposes the same three collectives the paper benchmarks.
package libs

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/shm"
)

// Library is one comparable MPI implementation profile.
type Library struct {
	name string
	cfg  mpi.Config

	// algo names the algorithm band the profile's selection table picks for
	// (op, per-process bytes, total ranks) — the library component of a
	// schedule shape key (see ShapeClass).
	algo func(op string, bytes, ranks int) string

	scatter   func(r *mpi.Rank, root int, send, recv []byte)
	allgather func(r *mpi.Rank, send, recv []byte)
	allreduce func(r *mpi.Rank, send, recv []byte, op nums.Op)
	bcast     func(r *mpi.Rank, root int, buf []byte)
	gather    func(r *mpi.Rank, root int, send, recv []byte)
	reduce    func(r *mpi.Rank, root int, send, recv []byte, op nums.Op)
	alltoall  func(r *mpi.Rank, send, recv []byte)
}

// Name returns the profile's display name.
func (l *Library) Name() string { return l.name }

// Config returns the transport configuration the profile's world must use.
func (l *Library) Config() mpi.Config { return l.cfg }

// ShapeClass fingerprints the algorithm and size-class a measurement point
// selects under this profile: the algorithm band from the profile's
// selection table plus which side of the intranode eager/rendezvous switch
// the payload falls on. It names the (topology, algorithm, size-class) shape
// axis of schedule memoization — two points with different ShapeClass never
// share a recorded schedule, and the string makes a memo key self-describing
// in logs.
func (l *Library) ShapeClass(op string, bytes, ranks int) string {
	band := "default"
	if l.algo != nil {
		band = l.algo(op, bytes, ranks)
	}
	path := "eager"
	if bytes > l.cfg.IntranodeEager {
		path = "rendezvous"
	}
	return band + "/" + path
}

// span opens a collective-level display span, the root of the span
// hierarchy (collective → phase → per-rank op) in trace exports. The
// Traced check keeps the name formatting off untraced hot paths.
func span(r *mpi.Rank, op string, bytes int) mpi.Phase {
	if !r.Traced() {
		return mpi.Phase{}
	}
	return r.SpanStart(fmt.Sprintf("%s %dB", op, bytes), "collective")
}

// Scatter runs the profile's MPI_Scatter.
func (l *Library) Scatter(r *mpi.Rank, root int, send, recv []byte) {
	defer span(r, "scatter", len(recv)).End()
	l.scatter(r, root, send, recv)
}

// Allgather runs the profile's MPI_Allgather.
func (l *Library) Allgather(r *mpi.Rank, send, recv []byte) {
	defer span(r, "allgather", len(send)).End()
	l.allgather(r, send, recv)
}

// Allreduce runs the profile's MPI_Allreduce.
func (l *Library) Allreduce(r *mpi.Rank, send, recv []byte, op nums.Op) {
	defer span(r, "allreduce", len(send)).End()
	l.allreduce(r, send, recv, op)
}

// Bcast runs the profile's MPI_Bcast.
func (l *Library) Bcast(r *mpi.Rank, root int, buf []byte) {
	defer span(r, "bcast", len(buf)).End()
	l.bcast(r, root, buf)
}

// Gather runs the profile's MPI_Gather (recv significant only at root).
func (l *Library) Gather(r *mpi.Rank, root int, send, recv []byte) {
	defer span(r, "gather", len(send)).End()
	l.gather(r, root, send, recv)
}

// Reduce runs the profile's MPI_Reduce (recv significant only at root).
func (l *Library) Reduce(r *mpi.Rank, root int, send, recv []byte, op nums.Op) {
	defer span(r, "reduce", len(send)).End()
	l.reduce(r, root, send, recv, op)
}

// Alltoall runs the profile's MPI_Alltoall.
func (l *Library) Alltoall(r *mpi.Rank, send, recv []byte) {
	defer span(r, "alltoall", len(send)).End()
	l.alltoall(r, send, recv)
}

// TryAllreduce runs the profile's MPI_Allreduce and returns the typed ULFM
// failure (*mpi.ProcFailedError, *mpi.RevokedError) instead of unwinding
// when a member of the world dies mid-collective. On error the recv buffer
// is in an undefined intermediate state (see the buffer-state contract on
// internal/core's Try wrappers); the recovery loop in internal/recover
// re-runs the operation on the survivors.
func (l *Library) TryAllreduce(r *mpi.Rank, send, recv []byte, op nums.Op) error {
	return mpi.Try(func() { l.Allreduce(r, send, recv, op) })
}

// TryAllgather is Allgather with the TryAllreduce error contract.
func (l *Library) TryAllgather(r *mpi.Rank, send, recv []byte) error {
	return mpi.Try(func() { l.Allgather(r, send, recv) })
}

// TryScatter is Scatter with the TryAllreduce error contract.
func (l *Library) TryScatter(r *mpi.Rank, root int, send, recv []byte) error {
	return mpi.Try(func() { l.Scatter(r, root, send, recv) })
}

// Switch points for the baseline profiles, mirroring the documented MPICH /
// Open MPI tuning: ring allgather beyond 256 kB total, Rabenseifner
// allreduce beyond 16 kB vectors, hierarchical leader phases use the same.
const (
	flatRingThreshold = 256 << 10
	rabenThreshold    = 16 << 10
	hierRingThreshold = 256 << 10
	hierARThreshold   = 16 << 10
	bcastVDGThreshold = 128 << 10
	pairwiseThreshold = 4 << 10
)

func baseConfig(mech shm.Mechanism) mpi.Config {
	cfg := mpi.DefaultConfig()
	cfg.Mechanism = mech
	// The real libraries tune their intranode eager/rendezvous switch
	// differently (I_MPI_SHM_CELL sizes vs MVAPICH2's SMP_EAGERSIZE);
	// keeping the profiles' switch points distinct separates their
	// medium-message curves as in the paper's figures.
	switch mech {
	case shm.POSIX:
		cfg.IntranodeEager = 2 << 10
	case shm.XPMEM:
		cfg.IntranodeEager = 8 << 10
	}
	return cfg
}

// flatAlgorithms is the stock-MPICH selection table used by the PiP-MPICH
// and Open MPI profiles.
func flatAlgorithms(l *Library) {
	l.algo = func(op string, bytes, ranks int) string {
		switch op {
		case "allgather":
			if bytes*ranks >= flatRingThreshold {
				return "flat-ring"
			}
			return "flat-bruck"
		case "allreduce":
			if bytes >= rabenThreshold {
				return "flat-raben"
			}
			return "flat-recdbl"
		default:
			return "flat-binomial"
		}
	}
	l.scatter = func(r *mpi.Rank, root int, send, recv []byte) {
		coll.Scatter(coll.World(r), root, send, recv)
	}
	l.allgather = func(r *mpi.Rank, send, recv []byte) {
		coll.Allgather(coll.World(r), send, recv, flatRingThreshold)
	}
	l.allreduce = func(r *mpi.Rank, send, recv []byte, op nums.Op) {
		if len(send) >= rabenThreshold {
			coll.AllreduceRabenseifner(coll.World(r), send, recv, op)
		} else {
			coll.AllreduceRecDoubling(coll.World(r), send, recv, op)
		}
	}
	l.bcast = func(r *mpi.Rank, root int, buf []byte) {
		if len(buf) >= bcastVDGThreshold && len(buf)%r.Size() == 0 {
			coll.BcastScatterAllgather(coll.World(r), root, buf)
		} else {
			coll.Bcast(coll.World(r), root, buf)
		}
	}
	l.gather = func(r *mpi.Rank, root int, send, recv []byte) {
		coll.Gather(coll.World(r), root, send, recv)
	}
	l.reduce = func(r *mpi.Rank, root int, send, recv []byte, op nums.Op) {
		if len(send) >= rabenThreshold {
			coll.ReduceScatterGather(coll.World(r), root, send, recv, op)
		} else {
			coll.Reduce(coll.World(r), root, send, recv, op)
		}
	}
	l.alltoall = func(r *mpi.Rank, send, recv []byte) {
		coll.Alltoall(coll.World(r), send, recv, pairwiseThreshold)
	}
}

// hierAlgorithms is the leader-based selection table used by the MVAPICH2
// and Intel MPI profiles.
func hierAlgorithms(l *Library) {
	l.algo = func(op string, bytes, ranks int) string {
		switch op {
		case "allgather":
			if bytes*ranks >= hierRingThreshold {
				return "hier-ring"
			}
			return "hier-gather-bcast"
		case "allreduce":
			if bytes >= hierARThreshold {
				return "hier-raben"
			}
			return "hier-leader"
		default:
			return "hier-leader"
		}
	}
	l.scatter = func(r *mpi.Rank, root int, send, recv []byte) {
		coll.ScatterHier(coll.World(r), root, send, recv)
	}
	l.allgather = func(r *mpi.Rank, send, recv []byte) {
		coll.AllgatherHier(coll.World(r), send, recv, hierRingThreshold)
	}
	l.allreduce = func(r *mpi.Rank, send, recv []byte, op nums.Op) {
		coll.AllreduceHier(coll.World(r), send, recv, op, hierARThreshold)
	}
	l.bcast = func(r *mpi.Rank, root int, buf []byte) {
		coll.BcastHier(coll.World(r), root, buf)
	}
	l.gather = func(r *mpi.Rank, root int, send, recv []byte) {
		coll.GatherHier(coll.World(r), root, send, recv)
	}
	l.reduce = func(r *mpi.Rank, root int, send, recv []byte, op nums.Op) {
		coll.ReduceHier(coll.World(r), root, send, recv, op, rabenThreshold)
	}
	l.alltoall = func(r *mpi.Rank, send, recv []byte) {
		coll.Alltoall(coll.World(r), send, recv, pairwiseThreshold)
	}
}

// PiPMColl returns the paper's system with its default switch points.
func PiPMColl() *Library {
	l := &Library{name: "PiP-MColl", cfg: baseConfig(shm.PiP)}
	cl := core.Coll{}
	wireCore(l, cl)
	return l
}

// wireCore connects a PiP-MColl context's collectives to a profile.
func wireCore(l *Library, cl core.Coll) {
	l.algo = func(op string, bytes, ranks int) string {
		return cl.Tun.SizeClass(op, bytes)
	}
	l.scatter = cl.Scatter
	l.allgather = cl.Allgather
	l.allreduce = cl.Allreduce
	l.bcast = cl.Bcast
	l.gather = cl.Gather
	l.reduce = cl.Reduce
	l.alltoall = cl.Alltoall
}

// PiPMCollSmall returns the ablation variant that keeps the small-message
// algorithms at every size (Figures 13-14's PiP-MColl-small curve).
func PiPMCollSmall() *Library {
	l := &Library{name: "PiP-MColl-small", cfg: baseConfig(shm.PiP)}
	huge := 1 << 40
	cl := core.Coll{Tun: core.Tunables{AllgatherLargeMin: huge, AllreduceLargeMin: huge}}
	wireCore(l, cl)
	return l
}

// PiPMPICH returns the paper's baseline: stock flat algorithms over the PiP
// transport (with its per-message size synchronization).
func PiPMPICH() *Library {
	l := &Library{name: "PiP-MPICH", cfg: baseConfig(shm.PiP)}
	flatAlgorithms(l)
	return l
}

// OpenMPI returns the Open MPI stand-in: flat tuned algorithms over CMA.
func OpenMPI() *Library {
	l := &Library{name: "OpenMPI", cfg: baseConfig(shm.CMA)}
	flatAlgorithms(l)
	return l
}

// MVAPICH2 returns the MVAPICH2 stand-in: hierarchical collectives over
// XPMEM.
func MVAPICH2() *Library {
	l := &Library{name: "MVAPICH2", cfg: baseConfig(shm.XPMEM)}
	hierAlgorithms(l)
	return l
}

// IntelMPI returns the Intel MPI stand-in: hierarchical collectives over
// POSIX shared memory.
func IntelMPI() *Library {
	l := &Library{name: "IntelMPI", cfg: baseConfig(shm.POSIX)}
	hierAlgorithms(l)
	return l
}

// All returns the five profiles of the paper's main comparison figures, in
// the paper's plotting order.
func All() []*Library {
	return []*Library{IntelMPI(), OpenMPI(), MVAPICH2(), PiPMPICH(), PiPMColl()}
}

// ByName resolves a profile by its display name.
func ByName(name string) (*Library, error) {
	for _, l := range append(All(), PiPMCollSmall()) {
		if l.Name() == name {
			return l, nil
		}
	}
	return nil, fmt.Errorf("libs: unknown library %q", name)
}
