package libs

import (
	"errors"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

// requireBothBlocked asserts a deadlock diagnosis naming both ranks of a
// 2-rank world with their pending (source, tag) receives.
func requireBothBlocked(t *testing.T, err error) {
	t.Helper()
	var de *mpi.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *mpi.DeadlockError", err)
	}
	seen := map[int]bool{}
	for _, b := range de.Blocked {
		if b.Rank == 0 || b.Rank == 1 {
			seen[b.Rank] = true
			if b.Op != "recv" {
				t.Errorf("rank %d blocked in %q, want recv", b.Rank, b.Op)
			}
			if b.Source == -1 || b.Tag == -1 {
				t.Errorf("rank %d diagnosis lacks (source, tag): %+v", b.Rank, b)
			}
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("diagnosis %v does not name both ranks", de)
	}
}

// TestWatchdogDiagnosesBcastDeadlock wedges a 2-rank bcast the classic way
// — the ranks disagree about the root, so both wait for the other to send —
// and pins that the watchdog terminates the run naming both blocked ranks
// and their pending (source, tag) receives.
func TestWatchdogDiagnosesBcastDeadlock(t *testing.T) {
	for _, lib := range All() {
		lib := lib
		t.Run(lib.Name(), func(t *testing.T) {
			world := mpi.MustNewWorld(topology.New(2, 1, topology.Block), lib.Config())
			err := world.Run(func(r *mpi.Rank) {
				lib.Bcast(r, 1-r.Rank(), make([]byte, 256)) // each thinks the peer is root
			})
			requireBothBlocked(t, err)
		})
	}
}

// TestWatchdogDiagnosesAllreduceDeadlock wedges a 2-rank allreduce via an
// epoch skew (rank 1 behaves as if it already ran one more collective, the
// signature of a mismatched collective order across ranks): tags no longer
// line up, so both ranks block in their exchange receives.
func TestWatchdogDiagnosesAllreduceDeadlock(t *testing.T) {
	for _, lib := range All() {
		lib := lib
		t.Run(lib.Name(), func(t *testing.T) {
			world := mpi.MustNewWorld(topology.New(2, 1, topology.Block), lib.Config())
			err := world.Run(func(r *mpi.Rank) {
				if r.Rank() == 1 {
					r.NextEpoch() // skipped-collective skew
				}
				lib.Allreduce(r, make([]byte, 64), make([]byte, 64), nums.Sum)
			})
			requireBothBlocked(t, err)
		})
	}
}
