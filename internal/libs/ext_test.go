package libs

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

// TestExtensionCollectivesAllProfiles verifies Bcast, Gather, Reduce and
// Alltoall for every profile across small and large payloads and a
// non-zero, non-leader root.
func TestExtensionCollectivesAllProfiles(t *testing.T) {
	const nodes, ppn = 3, 4
	size := nodes * ppn
	root := 5 // node 1, local 1: exercises the root->leader hops
	for _, lib := range allProfiles() {
		for _, payload := range []int{48, 48 << 10} {
			lib, payload := lib, payload
			t.Run(fmt.Sprintf("%s %dB", lib.Name(), payload), func(t *testing.T) {
				w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), lib.Config())
				wantB := make([]byte, payload)
				nums.FillBytes(wantB, 77)
				wantGather := make([]byte, size*payload)
				for i := 0; i < size; i++ {
					nums.FillBytes(wantGather[i*payload:(i+1)*payload], i)
				}
				wantSum := make([]byte, payload)
				nums.Fill(wantSum, 0)
				tmp := make([]byte, payload)
				for i := 1; i < size; i++ {
					nums.Fill(tmp, i)
					nums.Sum.Combine(wantSum, tmp)
				}
				err := w.Run(func(r *mpi.Rank) {
					// Bcast.
					buf := make([]byte, payload)
					if r.Rank() == root {
						copy(buf, wantB)
					}
					lib.Bcast(r, root, buf)
					if !bytes.Equal(buf, wantB) {
						t.Errorf("%s bcast rank %d wrong", lib.Name(), r.Rank())
					}
					// Gather.
					mine := make([]byte, payload)
					nums.FillBytes(mine, r.Rank())
					var g []byte
					if r.Rank() == root {
						g = make([]byte, size*payload)
					}
					lib.Gather(r, root, mine, g)
					if r.Rank() == root && !bytes.Equal(g, wantGather) {
						t.Errorf("%s gather wrong", lib.Name())
					}
					// Reduce.
					vec := make([]byte, payload)
					nums.Fill(vec, r.Rank())
					var out []byte
					if r.Rank() == root {
						out = make([]byte, payload)
					}
					lib.Reduce(r, root, vec, out, nums.Sum)
					if r.Rank() == root && !bytes.Equal(out, wantSum) {
						t.Errorf("%s reduce wrong", lib.Name())
					}
					// Alltoall (size-divisible buffers).
					a2aChunk := payload / 8
					a2aSend := make([]byte, size*a2aChunk)
					for j := 0; j < size; j++ {
						nums.FillBytes(a2aSend[j*a2aChunk:(j+1)*a2aChunk], r.Rank()*1000+j)
					}
					a2aRecv := make([]byte, size*a2aChunk)
					lib.Alltoall(r, a2aSend, a2aRecv)
					for src := 0; src < size; src++ {
						want := make([]byte, a2aChunk)
						nums.FillBytes(want, src*1000+r.Rank())
						if !bytes.Equal(a2aRecv[src*a2aChunk:(src+1)*a2aChunk], want) {
							t.Errorf("%s alltoall rank %d block %d wrong", lib.Name(), r.Rank(), src)
							break
						}
					}
				})
				if err != nil {
					t.Fatalf("%s: %v", lib.Name(), err)
				}
			})
		}
	}
}

// TestBcastLargeUsesVanDeGeijn ensures the flat profiles switch broadcast
// algorithms with size (the composed path must beat the tree on large
// divisible buffers over the same transport).
func TestBcastLargeUsesVanDeGeijn(t *testing.T) {
	lib := PiPMPICH()
	elapsed := func(n int) int64 {
		w := mpi.MustNewWorld(topology.New(4, 3, topology.Block), lib.Config())
		if err := w.Run(func(r *mpi.Rank) {
			buf := make([]byte, n)
			if r.Rank() == 0 {
				nums.FillBytes(buf, 1)
			}
			lib.Bcast(r, 0, buf)
		}); err != nil {
			t.Fatal(err)
		}
		return int64(w.Horizon())
	}
	big := 516 << 10 // divisible by 12
	if vdg, tree := elapsed(big), elapsed(big+1); vdg >= tree {
		t.Errorf("van de Geijn bcast (%d) not faster than binomial (%d)", vdg, tree)
	}
}
