package libs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

// TestCollectiveSoak runs a randomized sequence of collectives — mixed
// operations, sizes, and roots, all ranks issuing the same sequence as MPI
// requires — in one world per library, verifying every result. This is the
// closest the suite gets to an application's lifetime: state (tag windows,
// attach caches, board epochs) must stay consistent across dozens of
// heterogeneous back-to-back collectives.
func TestCollectiveSoak(t *testing.T) {
	f := func(seed int64, libIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ls := allProfiles()
		lib := ls[int(libIdx)%len(ls)]
		nodes := 2 + rng.Intn(3)
		ppn := 1 + rng.Intn(3)
		size := nodes * ppn
		steps := 5 + rng.Intn(10)

		type step struct {
			op      int
			payload int
			root    int
		}
		plan := make([]step, steps)
		for i := range plan {
			plan[i] = step{
				op:      rng.Intn(7),
				payload: 8 * (1 + rng.Intn(512)), // 8B..4kB
				root:    rng.Intn(size),
			}
		}

		ok := true
		w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), lib.Config())
		err := w.Run(func(r *mpi.Rank) {
			me := r.Rank()
			for si, st := range plan {
				n := st.payload
				switch st.op {
				case 0: // scatter
					var send []byte
					if me == st.root {
						send = make([]byte, size*n)
						for i := 0; i < size; i++ {
							nums.FillBytes(send[i*n:(i+1)*n], si*100+i)
						}
					}
					recv := make([]byte, n)
					lib.Scatter(r, st.root, send, recv)
					want := make([]byte, n)
					nums.FillBytes(want, si*100+me)
					if !bytes.Equal(recv, want) {
						ok = false
					}
				case 1: // allgather
					mine := make([]byte, n)
					nums.FillBytes(mine, si*100+me)
					full := make([]byte, size*n)
					lib.Allgather(r, mine, full)
					for i := 0; i < size; i++ {
						want := make([]byte, n)
						nums.FillBytes(want, si*100+i)
						if !bytes.Equal(full[i*n:(i+1)*n], want) {
							ok = false
							break
						}
					}
				case 2: // allreduce
					vec := make([]byte, n)
					nums.Fill(vec, me)
					out := make([]byte, n)
					lib.Allreduce(r, vec, out, nums.Sum)
					want := make([]byte, n)
					nums.Fill(want, 0)
					tmp := make([]byte, n)
					for i := 1; i < size; i++ {
						nums.Fill(tmp, i)
						nums.Sum.Combine(want, tmp)
					}
					if !bytes.Equal(out, want) {
						ok = false
					}
				case 3: // bcast
					buf := make([]byte, n)
					if me == st.root {
						nums.FillBytes(buf, si)
					}
					lib.Bcast(r, st.root, buf)
					want := make([]byte, n)
					nums.FillBytes(want, si)
					if !bytes.Equal(buf, want) {
						ok = false
					}
				case 4: // gather
					mine := make([]byte, n)
					nums.FillBytes(mine, si*100+me)
					var g []byte
					if me == st.root {
						g = make([]byte, size*n)
					}
					lib.Gather(r, st.root, mine, g)
					if me == st.root {
						for i := 0; i < size; i++ {
							want := make([]byte, n)
							nums.FillBytes(want, si*100+i)
							if !bytes.Equal(g[i*n:(i+1)*n], want) {
								ok = false
								break
							}
						}
					}
				case 5: // reduce
					vec := make([]byte, n)
					nums.Fill(vec, me)
					var out []byte
					if me == st.root {
						out = make([]byte, n)
					}
					lib.Reduce(r, st.root, vec, out, nums.Sum)
					if me == st.root {
						want := make([]byte, n)
						nums.Fill(want, 0)
						tmp := make([]byte, n)
						for i := 1; i < size; i++ {
							nums.Fill(tmp, i)
							nums.Sum.Combine(want, tmp)
						}
						if !bytes.Equal(out, want) {
							ok = false
						}
					}
				case 6: // alltoall
					send := make([]byte, size*n)
					for j := 0; j < size; j++ {
						nums.FillBytes(send[j*n:(j+1)*n], si*1000+me*100+j)
					}
					recv := make([]byte, size*n)
					lib.Alltoall(r, send, recv)
					for src := 0; src < size; src++ {
						want := make([]byte, n)
						nums.FillBytes(want, si*1000+src*100+me)
						if !bytes.Equal(recv[src*n:(src+1)*n], want) {
							ok = false
							break
						}
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
