package recover_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/nums"
	screcover "repro/internal/recover"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// allreduceOp returns a recovery-friendly operation: each attempt rebuilds
// its output from the original send data (the buffer-state contract) and
// runs a comm-scoped allreduce over whatever communicator the loop passes.
func allreduceOp(send, recv []byte) func(*mpi.Comm) error {
	return func(c *mpi.Comm) error {
		for i := range recv {
			recv[i] = 0
		}
		return mpi.Try(func() {
			coll.AllreduceRecDoubling(coll.CommView(c), send, recv, nums.Sum)
		})
	}
}

// serialSum builds the bit-exact serial reference over the given world ranks.
func serialSum(payload int, ranks []int) []byte {
	want := make([]byte, payload)
	nums.Fill(want, ranks[0])
	tmp := make([]byte, payload)
	for _, wr := range ranks[1:] {
		nums.Fill(tmp, wr)
		nums.Sum.Combine(want, tmp)
	}
	return want
}

// TestRecoverAllreduceAfterRankDeath: a rank dies inside the first attempt;
// the loop shrinks once and the survivors' re-run verifies bit-exact against
// the serial reference over the final communicator's membership.
func TestRecoverAllreduceAfterRankDeath(t *testing.T) {
	const payload = 1 << 10
	cfg := mpi.DefaultConfig()
	cfg.Faults = fault.MustNew(fault.Spec{KillRanks: []fault.KillRank{{Rank: 1, At: 0}}})
	w, err := mpi.NewWorld(topology.New(2, 2, topology.Block), cfg)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		stats   screcover.Stats
		members []int
		data    []byte
	}
	got := map[int]result{}
	err = w.Run(func(r *mpi.Rank) {
		send := make([]byte, payload)
		nums.Fill(send, r.Rank())
		recv := make([]byte, payload)
		fc, stats, rerr := screcover.RunWithRecovery(mpi.WorldComm(r), allreduceOp(send, recv), 3)
		if r.Rank() == 1 {
			t.Errorf("rank 1 should have died inside the loop, got %v", rerr)
			return
		}
		if rerr != nil {
			t.Errorf("rank %d: recovery failed: %v", r.Rank(), rerr)
			return
		}
		got[r.Rank()] = result{stats: stats, members: fc.WorldRanks(), data: append([]byte(nil), recv...)}
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("survivors reporting: %d, want 3", len(got))
	}
	want := serialSum(payload, []int{0, 2, 3})
	for rank, res := range got {
		if !reflect.DeepEqual(res.members, []int{0, 2, 3}) {
			t.Fatalf("rank %d final comm %v, want [0 2 3]", rank, res.members)
		}
		if res.stats.Shrinks != 1 || res.stats.Attempts != 2 {
			t.Fatalf("rank %d stats %+v, want 2 attempts / 1 shrink", rank, res.stats)
		}
		if !bytes.Equal(res.data, want) {
			t.Fatalf("rank %d result differs from serial reference on survivors", rank)
		}
	}
}

// TestRecoverExhaustsBudget: with a zero retry budget the first failed
// attempt surfaces as ExhaustedError on every survivor, in lockstep.
func TestRecoverExhaustsBudget(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.Faults = fault.MustNew(fault.Spec{KillRanks: []fault.KillRank{{Rank: 3, At: 0}}})
	w, err := mpi.NewWorld(topology.New(2, 2, topology.Block), cfg)
	if err != nil {
		t.Fatal(err)
	}
	exhausted := 0
	err = w.Run(func(r *mpi.Rank) {
		if r.Rank() == 3 {
			send, recv := make([]byte, 64), make([]byte, 64)
			screcover.RunWithRecovery(mpi.WorldComm(r), allreduceOp(send, recv), 0)
			return // unreachable: dies inside
		}
		send, recv := make([]byte, 64), make([]byte, 64)
		nums.Fill(send, r.Rank())
		_, stats, rerr := screcover.RunWithRecovery(mpi.WorldComm(r), allreduceOp(send, recv), 0)
		var ex *screcover.ExhaustedError
		if !errors.As(rerr, &ex) {
			panic(fmt.Sprintf("rank %d: want ExhaustedError, got %v", r.Rank(), rerr))
		}
		if ex.Attempts != 1 || stats.Attempts != 1 || stats.Shrinks != 0 {
			panic(fmt.Sprintf("rank %d: stats %+v err %+v, want one attempt, no shrink", r.Rank(), stats, ex))
		}
		exhausted++
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
	if exhausted != 3 {
		t.Fatalf("%d survivors exhausted, want 3", exhausted)
	}
}

// TestRecoverFromRevocation: a revoked communicator fails the first attempt
// with RevokedError; the shrink (same members, fresh id) sheds the revoked
// state and the retry succeeds with everyone still aboard.
func TestRecoverFromRevocation(t *testing.T) {
	const payload = 256
	w, err := mpi.NewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := serialSum(payload, []int{0, 1, 2, 3})
	err = w.Run(func(r *mpi.Rank) {
		c := mpi.WorldComm(r)
		c.Revoke()
		send := make([]byte, payload)
		nums.Fill(send, r.Rank())
		recv := make([]byte, payload)
		fc, stats, rerr := screcover.RunWithRecovery(c, allreduceOp(send, recv), 2)
		if rerr != nil {
			panic(fmt.Sprintf("rank %d: %v", r.Rank(), rerr))
		}
		if stats.Attempts != 2 || stats.Shrinks != 1 {
			panic(fmt.Sprintf("rank %d: stats %+v, want 2 attempts / 1 shrink", r.Rank(), stats))
		}
		if fc.Size() != 4 {
			panic(fmt.Sprintf("rank %d: shrunk to %d members, want all 4", r.Rank(), fc.Size()))
		}
		if !bytes.Equal(recv, want) {
			panic(fmt.Sprintf("rank %d: result differs from serial reference", r.Rank()))
		}
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
}

// TestRecoverFaultFreeFastPath: with nothing failing the loop is one attempt,
// no agreement surprises, no shrink.
func TestRecoverFaultFreeFastPath(t *testing.T) {
	const payload = 128
	w, err := mpi.NewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := serialSum(payload, []int{0, 1, 2, 3})
	err = w.Run(func(r *mpi.Rank) {
		send := make([]byte, payload)
		nums.Fill(send, r.Rank())
		recv := make([]byte, payload)
		fc, stats, rerr := screcover.RunWithRecovery(mpi.WorldComm(r), allreduceOp(send, recv), 3)
		if rerr != nil || stats.Attempts != 1 || stats.Shrinks != 0 || fc.Size() != 4 {
			panic(fmt.Sprintf("rank %d: stats %+v err %v", r.Rank(), stats, rerr))
		}
		if !bytes.Equal(recv, want) {
			panic(fmt.Sprintf("rank %d: wrong result", r.Rank()))
		}
	})
	if err != nil {
		t.Fatalf("world run: %v", err)
	}
}

// TestRecoverDeterminism: the same kill spec produces the same horizon and
// stats run over run.
func TestRecoverDeterminism(t *testing.T) {
	runOnce := func() (simtime.Time, screcover.Stats) {
		cfg := mpi.DefaultConfig()
		cfg.Faults = fault.MustNew(fault.Spec{KillRanks: []fault.KillRank{{Rank: 2, At: simtime.Time(2 * simtime.Microsecond)}}})
		w, err := mpi.NewWorld(topology.New(2, 2, topology.Block), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var s0 screcover.Stats
		if err := w.Run(func(r *mpi.Rank) {
			send, recv := make([]byte, 4096), make([]byte, 4096)
			nums.Fill(send, r.Rank())
			_, stats, rerr := screcover.RunWithRecovery(mpi.WorldComm(r), allreduceOp(send, recv), 4)
			if r.Rank() == 0 {
				if rerr != nil {
					panic(rerr)
				}
				s0 = stats
			}
		}); err != nil {
			t.Fatalf("world run: %v", err)
		}
		return w.Horizon(), s0
	}
	h1, s1 := runOnce()
	h2, s2 := runOnce()
	if h1 != h2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v %+v) vs (%v %+v)", h1, s1, h2, s2)
	}
}
