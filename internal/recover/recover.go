// Package recover is the self-healing layer over the ULFM primitives: it
// turns a collective that may fail with *mpi.ProcFailedError (a member died)
// or *mpi.RevokedError (the communicator was revoked) into a loop that
// shrinks the communicator to the survivors and re-executes until the
// operation succeeds everywhere or a retry budget runs out — the standard
// ULFM recovery idiom (detect → agree → shrink → redo).
//
// The loop is itself a collective: every living member of the communicator
// must call RunWithRecovery with the same operation and the same budget, and
// the operation must be re-runnable from its original inputs (the buffer-state
// contract in internal/core leaves receive buffers undefined after a failure,
// so each attempt must rebuild its outputs from the original send data).
package recover

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// Stats counts the work one caller's recovery loop performed.
type Stats struct {
	// Attempts is the number of times op ran (>= 1).
	Attempts int
	// Shrinks is the number of communicator shrinks (== Attempts-1 unless the
	// budget ran out after a shrink).
	Shrinks int
}

// ExhaustedError reports a recovery loop that ran out of retries with the
// operation still failing somewhere.
type ExhaustedError struct {
	// Attempts is how many times the operation ran.
	Attempts int
	// Last is this caller's error from the final attempt; nil when the local
	// attempt succeeded but the agreement reported a failure elsewhere.
	Last error
}

func (e *ExhaustedError) Error() string {
	if e.Last == nil {
		return fmt.Sprintf("recover: %d attempt(s) exhausted, last failure on another rank", e.Attempts)
	}
	return fmt.Sprintf("recover: %d attempt(s) exhausted, last failure: %v", e.Attempts, e.Last)
}

// RunWithRecovery runs op over comm, and on failure shrinks the communicator
// and re-runs op on the survivors until one attempt succeeds on every living
// member or maxRetries re-executions have been spent. It returns the
// communicator of the last attempt — the one op succeeded on, which callers
// use for any follow-up work (its membership is the surviving world ranks).
//
// Success is global, decided with fault-tolerant agreement: after each
// attempt every member contributes 1 if its local op returned nil, and the
// attempt stands only when the agreed AND is 1 with every member alive —
// a member succeeding locally while another died or failed re-runs too, so
// all survivors stay in lockstep (same attempt count, same final comm).
//
// op may report failure either by returning the error (the Try* wrappers in
// internal/core and internal/libs) or by letting the typed failure panic
// escape (raw collectives); both are treated identically. A caller's own
// death is not handled here — it unwinds through RunWithRecovery like any
// other frame of the dying rank.
func RunWithRecovery(comm *mpi.Comm, op func(*mpi.Comm) error, maxRetries int) (*mpi.Comm, Stats, error) {
	if comm == nil {
		panic("recover: nil communicator")
	}
	if maxRetries < 0 {
		panic(fmt.Sprintf("recover: negative retry budget %d", maxRetries))
	}
	w := comm.World().World()
	var stats Stats
	cur := comm
	for {
		var localErr error
		tryErr := mpi.Try(func() { localErr = op(cur) })
		if localErr == nil {
			localErr = tryErr
		}
		stats.Attempts++

		contrib := uint64(1)
		if localErr != nil {
			contrib = 0
		}
		value, allAlive := cur.Agree(contrib)
		if value == 1 && allAlive {
			return cur, stats, nil
		}
		if stats.Attempts > maxRetries {
			return cur, stats, &ExhaustedError{Attempts: stats.Attempts, Last: localErr}
		}

		// Shrink to the survivors and redo. When the failure was a revocation
		// (nobody dead), the membership is unchanged but the fresh
		// communicator id sheds the revoked state, so the retry can succeed.
		cur = cur.Shrink()
		stats.Shrinks++
		if rec := w.Recorder(); rec != nil {
			m := rec.Metrics()
			m.Counter(obs.MetricRecoverShrinks).Add(1)
			m.Counter(obs.MetricRecoverRetries).Add(1)
		}
	}
}
