package topology

import (
	"testing"
	"testing/quick"
)

func TestBlockPlacement(t *testing.T) {
	c := New(4, 3, Block)
	cases := []struct{ rank, node, local int }{
		{0, 0, 0}, {1, 0, 1}, {2, 0, 2},
		{3, 1, 0}, {5, 1, 2}, {11, 3, 2},
	}
	for _, tc := range cases {
		n, l := c.Place(tc.rank)
		if n != tc.node || l != tc.local {
			t.Errorf("Place(%d) = (%d,%d), want (%d,%d)", tc.rank, n, l, tc.node, tc.local)
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	c := New(4, 3, RoundRobin)
	cases := []struct{ rank, node, local int }{
		{0, 0, 0}, {1, 1, 0}, {3, 3, 0},
		{4, 0, 1}, {11, 3, 2},
	}
	for _, tc := range cases {
		n, l := c.Place(tc.rank)
		if n != tc.node || l != tc.local {
			t.Errorf("Place(%d) = (%d,%d), want (%d,%d)", tc.rank, n, l, tc.node, tc.local)
		}
	}
}

// Property: Rank and Place are inverses for every layout and cluster shape.
func TestPlaceRankRoundTrip(t *testing.T) {
	f := func(nodes, ppn uint8, layoutBit bool) bool {
		n := int(nodes%16) + 1
		p := int(ppn%16) + 1
		layout := Block
		if layoutBit {
			layout = RoundRobin
		}
		c := New(n, p, layout)
		seen := make(map[int]bool)
		for node := 0; node < n; node++ {
			for local := 0; local < p; local++ {
				r := c.Rank(node, local)
				if seen[r] {
					return false // duplicate rank: mapping not a bijection
				}
				seen[r] = true
				gotNode, gotLocal := c.Place(r)
				if gotNode != node || gotLocal != local {
					return false
				}
			}
		}
		return len(seen) == c.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeRanks(t *testing.T) {
	c := New(3, 4, Block)
	got := c.NodeRanks(1)
	want := []int{4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeRanks(1) = %v, want %v", got, want)
		}
	}
	rr := New(3, 4, RoundRobin)
	got = rr.NodeRanks(1)
	want = []int{1, 4, 7, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rr NodeRanks(1) = %v, want %v", got, want)
		}
	}
}

func TestSameNode(t *testing.T) {
	c := New(2, 2, Block)
	if !c.SameNode(0, 1) || c.SameNode(1, 2) {
		t.Fatal("SameNode wrong for block layout")
	}
}

func TestPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", shape[0], shape[1])
				}
			}()
			New(shape[0], shape[1], Block)
		}()
	}
}

func TestPanicsOnBadRank(t *testing.T) {
	c := New(2, 2, Block)
	for _, r := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Place(%d) did not panic", r)
				}
			}()
			c.Place(r)
		}()
	}
}

func TestAccessorsAndString(t *testing.T) {
	c := New(128, 18, Block)
	if c.Nodes() != 128 || c.PPN() != 18 || c.Size() != 2304 {
		t.Fatalf("accessors wrong: %v", c)
	}
	if c.String() == "" || c.Layout().String() != "block" {
		t.Fatal("string forms empty")
	}
	if RoundRobin.String() != "round-robin" {
		t.Fatal("round-robin name")
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(12, 3, 4)
	if g.Rows() != 3 || g.Cols() != 4 {
		t.Fatal("shape wrong")
	}
	row, col := g.Coords(7)
	if row != 1 || col != 3 {
		t.Fatalf("Coords(7) = (%d,%d)", row, col)
	}
	if g.RankAt(1, 3) != 7 {
		t.Fatal("RankAt wrong")
	}
	// Neighbors of rank 5 (row 1, col 1).
	if g.Neighbor(5, -1, 0) != 1 || g.Neighbor(5, 1, 0) != 9 ||
		g.Neighbor(5, 0, -1) != 4 || g.Neighbor(5, 0, 1) != 6 {
		t.Fatal("interior neighbors wrong")
	}
	// Boundaries.
	if g.Neighbor(0, -1, 0) != -1 || g.Neighbor(0, 0, -1) != -1 {
		t.Fatal("boundary should be -1")
	}
	if g.Neighbor(11, 1, 0) != -1 || g.Neighbor(11, 0, 1) != -1 {
		t.Fatal("far boundary should be -1")
	}
}

func TestGridRoundTrip(t *testing.T) {
	f := func(rows, cols uint8) bool {
		r := int(rows%6) + 1
		c := int(cols%6) + 1
		g := NewGrid(r*c, r, c)
		for rank := 0; rank < r*c; rank++ {
			row, col := g.Coords(rank)
			if g.RankAt(row, col) != rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSquarestGrid(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 12: {3, 4}, 7: {1, 7}, 36: {6, 6}, 18: {3, 6}}
	for size, want := range cases {
		g := SquarestGrid(size)
		if g.Rows() != want[0] || g.Cols() != want[1] {
			t.Errorf("SquarestGrid(%d) = %dx%d, want %dx%d", size, g.Rows(), g.Cols(), want[0], want[1])
		}
	}
}

func TestGridValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(6, 2, 2) },
		func() { NewGrid(4, 0, 4) },
		func() { NewGrid(12, 3, 4).Coords(12) },
		func() { NewGrid(12, 3, 4).RankAt(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
