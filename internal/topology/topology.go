// Package topology describes the simulated cluster layout: how many nodes,
// how many processes per node, and how MPI ranks map onto (node, local rank)
// coordinates. The paper's testbed is 128 Xeon Broadwell nodes with 18
// processes per node (2304 ranks, block layout); all experiment drivers build
// their clusters through this package so that the mapping logic lives in one
// place and is exhaustively tested.
package topology

import "fmt"

// Layout selects how consecutive ranks are placed on nodes.
type Layout int

const (
	// Block places ranks 0..P-1 on node 0, P..2P-1 on node 1, and so on.
	// This is the layout the paper (and mpirun defaults) use, and the one
	// PiP-MColl's rank arithmetic assumes.
	Block Layout = iota
	// RoundRobin deals ranks onto nodes like cards: rank r lives on node
	// r mod N. Included to test algorithm correctness under remapping.
	RoundRobin
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case Block:
		return "block"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Cluster is an immutable description of a simulated machine.
type Cluster struct {
	nodes  int
	ppn    int
	layout Layout
}

// New returns a cluster of nodes × ppn ranks with the given layout.
// It panics if nodes or ppn is not positive, since a cluster's shape is
// always program-chosen, never user input.
func New(nodes, ppn int, layout Layout) *Cluster {
	if nodes < 1 || ppn < 1 {
		panic(fmt.Sprintf("topology: invalid cluster %d nodes x %d ppn", nodes, ppn))
	}
	return &Cluster{nodes: nodes, ppn: ppn, layout: layout}
}

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return c.nodes }

// PPN returns the number of processes (ranks) per node.
func (c *Cluster) PPN() int { return c.ppn }

// Size returns the total number of ranks.
func (c *Cluster) Size() int { return c.nodes * c.ppn }

// Layout returns the rank placement policy.
func (c *Cluster) Layout() Layout { return c.layout }

// Place returns the node id and local rank of a global rank.
func (c *Cluster) Place(rank int) (node, local int) {
	c.checkRank(rank)
	switch c.layout {
	case Block:
		return rank / c.ppn, rank % c.ppn
	case RoundRobin:
		return rank % c.nodes, rank / c.nodes
	default:
		panic("topology: unknown layout")
	}
}

// Rank returns the global rank living at (node, local).
func (c *Cluster) Rank(node, local int) int {
	if node < 0 || node >= c.nodes || local < 0 || local >= c.ppn {
		panic(fmt.Sprintf("topology: (%d,%d) outside %dx%d cluster", node, local, c.nodes, c.ppn))
	}
	switch c.layout {
	case Block:
		return node*c.ppn + local
	case RoundRobin:
		return local*c.nodes + node
	default:
		panic("topology: unknown layout")
	}
}

// Node returns the node id of a global rank.
func (c *Cluster) Node(rank int) int { n, _ := c.Place(rank); return n }

// Local returns the local rank (0..PPN-1) of a global rank.
func (c *Cluster) Local(rank int) int { _, l := c.Place(rank); return l }

// SameNode reports whether two ranks share a node.
func (c *Cluster) SameNode(a, b int) bool { return c.Node(a) == c.Node(b) }

// NodeRanks returns the global ranks living on a node, in local-rank order.
func (c *Cluster) NodeRanks(node int) []int {
	ranks := make([]int, c.ppn)
	for l := 0; l < c.ppn; l++ {
		ranks[l] = c.Rank(node, l)
	}
	return ranks
}

// String describes the cluster shape.
func (c *Cluster) String() string {
	return fmt.Sprintf("%d nodes x %d ppn (%d ranks, %s)", c.nodes, c.ppn, c.Size(), c.layout)
}

func (c *Cluster) checkRank(rank int) {
	if rank < 0 || rank >= c.Size() {
		panic(fmt.Sprintf("topology: rank %d outside cluster of size %d", rank, c.Size()))
	}
}

// Grid is a 2D Cartesian process grid over a cluster's ranks (row-major),
// the MPI_Cart_create-style helper stencil codes use. Rows*Cols must equal
// the cluster size.
type Grid struct {
	rows, cols int
}

// NewGrid shapes size ranks into rows x cols (row-major). It panics unless
// rows*cols == size.
func NewGrid(size, rows, cols int) Grid {
	if rows < 1 || cols < 1 || rows*cols != size {
		panic(fmt.Sprintf("topology: grid %dx%d over %d ranks", rows, cols, size))
	}
	return Grid{rows: rows, cols: cols}
}

// SquarestGrid returns the most-square rows x cols factorization of size.
func SquarestGrid(size int) Grid {
	best := 1
	for d := 1; d*d <= size; d++ {
		if size%d == 0 {
			best = d
		}
	}
	return Grid{rows: best, cols: size / best}
}

// Rows returns the number of grid rows.
func (g Grid) Rows() int { return g.rows }

// Cols returns the number of grid columns.
func (g Grid) Cols() int { return g.cols }

// Coords returns rank's (row, col).
func (g Grid) Coords(rank int) (row, col int) {
	if rank < 0 || rank >= g.rows*g.cols {
		panic(fmt.Sprintf("topology: rank %d outside %dx%d grid", rank, g.rows, g.cols))
	}
	return rank / g.cols, rank % g.cols
}

// RankAt returns the rank at (row, col).
func (g Grid) RankAt(row, col int) int {
	if row < 0 || row >= g.rows || col < 0 || col >= g.cols {
		panic(fmt.Sprintf("topology: (%d,%d) outside %dx%d grid", row, col, g.rows, g.cols))
	}
	return row*g.cols + col
}

// Neighbor returns the rank one step in the given direction (drow, dcol),
// or -1 at a non-periodic boundary.
func (g Grid) Neighbor(rank, drow, dcol int) int {
	row, col := g.Coords(rank)
	nr, nc := row+drow, col+dcol
	if nr < 0 || nr >= g.rows || nc < 0 || nc >= g.cols {
		return -1
	}
	return g.RankAt(nr, nc)
}
