package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-1.2909944487358056) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	one := Summarize([]float64{7})
	if one.StdDev != 0 || one.Median != 7 || one.Mean != 7 {
		t.Fatalf("single-sample summary = %+v", one)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median = %v", odd.Median)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

// Property: min <= median <= max and min <= mean <= max.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip inputs whose sum overflows float64: the harness
			// only ever summarizes microsecond-scale runtimes.
			if math.IsNaN(x) || math.Abs(x) > 1e300/float64(len(xs)) {
				return true
			}
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9*math.Abs(s.Mean) && s.Mean <= s.Max+1e-9*math.Abs(s.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableSetGetFormat(t *testing.T) {
	tb := NewTable("T", "size", "us", []string{"A", "B"}, []string{"16B", "1kB"})
	tb.Set("16B", "A", 1.5)
	tb.Set("1kB", "B", 2.5)
	if tb.Get("16B", "A") != 1.5 {
		t.Fatal("get wrong")
	}
	if !math.IsNaN(tb.Get("16B", "B")) {
		t.Fatal("unset cell not NaN")
	}
	out := tb.Format()
	for _, want := range []string{"T", "size", "A", "B", "1.5", "2.5", "-", "[us]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestTableUnknownNamesPanic(t *testing.T) {
	tb := NewTable("T", "x", "", []string{"A"}, []string{"r"})
	for _, f := range []func(){
		func() { tb.Set("bogus", "A", 1) },
		func() { tb.Set("r", "bogus", 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestNormalized(t *testing.T) {
	tb := NewTable("T", "x", "us", []string{"A", "Ref"}, []string{"r1", "r2"})
	tb.Set("r1", "A", 10)
	tb.Set("r1", "Ref", 5)
	tb.Set("r2", "A", 3)
	tb.Set("r2", "Ref", 6)
	n := tb.Normalized("Ref")
	if n.Get("r1", "A") != 2 || n.Get("r1", "Ref") != 1 || n.Get("r2", "A") != 0.5 {
		t.Fatalf("normalized = %+v", n.Cells)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("T", "x", "", []string{"A"}, []string{"r"})
	tb.Set("r", "A", 1.25)
	got := tb.CSV()
	want := "x,A\nr,1.25\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}
