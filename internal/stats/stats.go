// Package stats provides the summary statistics and table formatting the
// benchmark harness uses to report paper figures: mean/stddev over
// repetitions (the paper's methodology) and aligned ASCII / CSV rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics; it panics on an empty sample
// (callers always control repetition counts).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Table is a labelled grid of measurements: one row per x-axis point (e.g.
// message size), one column per series (e.g. library).
type Table struct {
	Title    string
	XLabel   string
	Unit     string // unit of the cell values, e.g. "us" or "Mmsg/s"
	Columns  []string
	RowNames []string
	Cells    [][]float64 // [row][col]; NaN marks a missing measurement
}

// NewTable allocates a table with NaN-filled cells.
func NewTable(title, xlabel, unit string, columns, rows []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(columns))
		for j := range cells[i] {
			cells[i][j] = math.NaN()
		}
	}
	return &Table{Title: title, XLabel: xlabel, Unit: unit,
		Columns: columns, RowNames: rows, Cells: cells}
}

// Set stores a cell by row and column name; unknown names panic (harness
// bugs, not user input).
func (t *Table) Set(row, col string, v float64) {
	t.Cells[t.rowIndex(row)][t.colIndex(col)] = v
}

// Get reads a cell by names.
func (t *Table) Get(row, col string) float64 {
	return t.Cells[t.rowIndex(row)][t.colIndex(col)]
}

func (t *Table) rowIndex(name string) int {
	for i, r := range t.RowNames {
		if r == name {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown row %q in table %q", name, t.Title))
}

func (t *Table) colIndex(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown column %q in table %q", name, t.Title))
}

// Normalized returns a copy with every row divided by the row's value in
// the reference column — the paper's "normalized to PiP-MColl" bar style.
func (t *Table) Normalized(refCol string) *Table {
	out := NewTable(t.Title+" (normalized to "+refCol+")", t.XLabel, "x", t.Columns, t.RowNames)
	ref := t.colIndex(refCol)
	for i, row := range t.Cells {
		for j, v := range row {
			out.Cells[i][j] = v / row[ref]
		}
	}
	return out
}

// Equal reports whether two tables have identical structure and identical
// cells (NaN cells compare equal) — the invariant the cached and parallel
// benchmark paths must preserve against the serial path.
func (t *Table) Equal(u *Table) bool {
	if t.Title != u.Title || t.XLabel != u.XLabel || t.Unit != u.Unit ||
		len(t.Columns) != len(u.Columns) || len(t.RowNames) != len(u.RowNames) {
		return false
	}
	for i, c := range t.Columns {
		if u.Columns[i] != c {
			return false
		}
	}
	for i, r := range t.RowNames {
		if u.RowNames[i] != r {
			return false
		}
	}
	for i, row := range t.Cells {
		for j, v := range row {
			w := u.Cells[i][j]
			if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
				return false
			}
		}
	}
	return true
}

// Format renders the table as aligned ASCII.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.RowNames {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.4g", v)
	}
	for j, c := range t.Columns {
		widths[j+1] = len(c)
		for i := range t.RowNames {
			if w := len(cell(t.Cells[i][j])); w > widths[j+1] {
				widths[j+1] = w
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], t.XLabel)
	for j, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[j+1], c)
	}
	if t.Unit != "" {
		fmt.Fprintf(&b, "  [%s]", t.Unit)
	}
	b.WriteByte('\n')
	for i, r := range t.RowNames {
		fmt.Fprintf(&b, "%-*s", widths[0], r)
		for j := range t.Columns {
			fmt.Fprintf(&b, "  %*s", widths[j+1], cell(t.Cells[i][j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for i, r := range t.RowNames {
		b.WriteString(r)
		for j := range t.Columns {
			b.WriteByte(',')
			if v := t.Cells[i][j]; !math.IsNaN(v) {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
