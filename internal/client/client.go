// Package client is the retrying HTTP client for the pipmcoll-serve query
// API: exponential backoff with full jitter, Retry-After awareness, and a
// bounded attempt/time budget, all context-aware. The CLIs use it when
// -server is set, and the load-test harness uses it to measure goodput
// (eventual success within budget) instead of raw 429 counts — a shed
// request that succeeds on retry is throughput, not failure.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/query"
)

// Config configures a Client. Zero values pick the documented defaults.
type Config struct {
	// BaseURL is the server root (e.g. http://host:8090), no trailing
	// slash required.
	BaseURL string
	// HTTP is the transport client; nil uses a client with a 60s timeout.
	HTTP *http.Client
	// ClientID is sent as X-Client for fair scheduling; empty omits it.
	ClientID string
	// MaxAttempts bounds tries per request, first attempt included
	// (default 5). MaxElapsed bounds the whole retry loop including
	// backoff sleeps (default 60s); whichever budget runs out first ends
	// the loop with an ExhaustedError.
	MaxAttempts int
	MaxElapsed  time.Duration
	// BaseDelay and MaxDelay shape the backoff: attempt n sleeps a
	// uniformly random duration in [0, min(MaxDelay, BaseDelay·2ⁿ)] —
	// "full jitter", which decorrelates retrying clients. A Retry-After
	// hint raises the floor of that window: the server's estimate of when
	// capacity returns beats a blind die roll. Defaults 100ms / 5s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed fixes the jitter sequence for deterministic tests (0 seeds
	// from the clock).
	Seed int64
}

// Client retries queries against one server with backoff.
type Client struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client, applying Config defaults.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 5
	}
	if cfg.MaxElapsed <= 0 {
		cfg.MaxElapsed = 60 * time.Second
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Attempt records one try of a request, for retry accounting.
type Attempt struct {
	Status int           // HTTP status (0 on transport error)
	Err    string        // transport error, if any
	Waited time.Duration // backoff slept before this attempt
}

// Outcome summarizes one request's retry loop.
type Outcome struct {
	Attempts []Attempt
	// Shed counts 429 responses along the way; Retried is attempts beyond
	// the first. A request with Shed>0 that ultimately succeeded is the
	// "shed then succeeded on retry" goodput case.
	Shed    int
	Retried int
}

// ExhaustedError reports a retry loop that ran out of budget without a
// success: every attempt, what ended it, and the last failure seen.
type ExhaustedError struct {
	Attempts   int
	Elapsed    time.Duration
	LastStatus int
	LastErr    error
}

// Error summarizes the exhausted budget.
func (e *ExhaustedError) Error() string {
	s := fmt.Sprintf("client: gave up after %d attempts in %s", e.Attempts, e.Elapsed.Round(time.Millisecond))
	if e.LastStatus != 0 {
		s += fmt.Sprintf(" (last status %d)", e.LastStatus)
	}
	if e.LastErr != nil {
		s += fmt.Sprintf(": %v", e.LastErr)
	}
	return s
}

// Unwrap exposes the final underlying failure.
func (e *ExhaustedError) Unwrap() error { return e.LastErr }

// retryable reports whether a status is worth another attempt: shed load
// (429), transient server failures (500/502), shutdown drains (503) and
// gateway timeouts (504). 4xx request errors are permanent.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the sleep before attempt n (0-based first retry): full
// jitter over an exponentially growing cap, floored at the server's
// Retry-After hint when one was given.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	cap := c.cfg.BaseDelay << n
	if cap > c.cfg.MaxDelay || cap <= 0 {
		cap = c.cfg.MaxDelay
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(cap) + 1))
	c.mu.Unlock()
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// Query POSTs a query.Request and retries per the config until success,
// a permanent error, an exhausted budget, or ctx cancellation. The
// returned Outcome carries per-attempt accounting even on failure.
func (c *Client) Query(ctx context.Context, req query.Request) (*query.Response, Outcome, error) {
	body, err := req.Canonical()
	if err != nil {
		return nil, Outcome{}, err
	}
	// Canonical strips timeout_ms (it is transport policy, not experiment
	// identity), so a request deadline rides the header instead.
	var timeoutHdr string
	if req.TimeoutMS > 0 {
		timeoutHdr = strconv.Itoa(req.TimeoutMS)
	}

	var (
		out        Outcome
		start      = time.Now()
		lastStatus int
		lastErr    error
	)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		var waited time.Duration
		if attempt > 0 {
			waited = c.backoff(attempt-1, retryAfterHint(lastStatus, lastErr))
			if remaining := c.cfg.MaxElapsed - time.Since(start); waited > remaining {
				break // sleeping would blow the time budget; give up now
			}
			select {
			case <-time.After(waited):
			case <-ctx.Done():
				return nil, out, ctx.Err()
			}
			out.Retried++
		}

		resp, status, err := c.post(ctx, body, timeoutHdr)
		out.Attempts = append(out.Attempts, Attempt{Status: status, Waited: waited,
			Err: errString(err)})
		if status == http.StatusTooManyRequests {
			out.Shed++
		}
		if err == nil && status == http.StatusOK {
			return resp, out, nil
		}
		if ctx.Err() != nil {
			return nil, out, ctx.Err()
		}
		lastStatus, lastErr = status, err
		if status != 0 && status != http.StatusOK && !retryable(status) {
			// Request errors (4xx other than 429) are permanent: retrying a
			// malformed query would just re-fail.
			return nil, out, fmt.Errorf("client: permanent failure: %w", err)
		}
		if time.Since(start) >= c.cfg.MaxElapsed {
			break
		}
	}
	return nil, out, &ExhaustedError{Attempts: len(out.Attempts),
		Elapsed: time.Since(start), LastStatus: lastStatus, LastErr: lastErr}
}

// statusError is a non-200 response: the status, the server's error
// message, and its Retry-After hint — which rides the error value from
// post back to the backoff computation, keeping the retry loop stateless.
type statusError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("status %d: %s", e.status, e.msg)
	}
	return fmt.Sprintf("status %d", e.status)
}

// parseRetryAfter decodes a Retry-After header value per RFC 9110 §10.2.3:
// either a non-negative integer of seconds or an HTTP-date. Negative
// seconds, dates in the past, and unparseable values yield 0 — "retry
// whenever", never a negative floor that would corrupt the backoff window.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if sec, err := strconv.Atoi(h); err == nil {
		if sec <= 0 {
			return 0
		}
		return time.Duration(sec) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// retryAfterHint extracts the server's backoff hint from the last failed
// attempt, if it carried one.
func retryAfterHint(status int, err error) time.Duration {
	if se, ok := err.(*statusError); ok {
		return se.retryAfter
	}
	return 0
}

// post sends one attempt. A non-200 returns (nil, status, *statusError)
// with the body's error message and any Retry-After hint attached.
func (c *Client) post(ctx context.Context, body []byte, timeoutHdr string) (*query.Response, int, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	hr.Header.Set("Content-Type", "application/json")
	if c.cfg.ClientID != "" {
		hr.Header.Set("X-Client", c.cfg.ClientID)
	}
	if timeoutHdr != "" {
		hr.Header.Set("X-Timeout-Ms", timeoutHdr)
	}
	resp, err := c.cfg.HTTP.Do(hr)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		se := &statusError{status: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil {
			se.msg = e.Error
		}
		if h := resp.Header.Get("Retry-After"); h != "" {
			se.retryAfter = parseRetryAfter(h, time.Now())
		}
		return nil, resp.StatusCode, se
	}
	var qr query.Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("client: decoding response: %w", err)
	}
	return &qr, resp.StatusCode, nil
}

// errString renders an error for attempt records ("" for nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
