package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
)

// testReq is a minimal valid request for round-trips.
func testReq() query.Request {
	return query.Request{Cell: &query.Cell{Library: "PiP-MColl", Collective: "allgather",
		Nodes: 1, PPN: 2, Bytes: 64}, Opts: query.Opts{Warmup: 1, Iters: 1}}
}

// scriptServer answers each request with the next status in script; a 0
// status sends a valid 200 query.Response. Headers maps a status to a
// Retry-After value sent with it.
func scriptServer(t *testing.T, script []int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		status := script[int(n-1)%len(script)]
		if status == 0 {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(query.Response{Cells: 1})
			return
		}
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": "scripted failure"})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestSuccessAfterRetries(t *testing.T) {
	ts, calls := scriptServer(t, []int{503, 429, 0}, "")
	cl := New(Config{BaseURL: ts.URL, BaseDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond, Seed: 1})
	resp, out, err := cl.Query(context.Background(), testReq())
	if err != nil || resp == nil {
		t.Fatalf("eventual success failed: %v", err)
	}
	if calls.Load() != 3 || len(out.Attempts) != 3 || out.Retried != 2 {
		t.Fatalf("attempts: calls %d, outcome %+v", calls.Load(), out)
	}
	if out.Shed != 1 {
		t.Fatalf("shed = %d, want 1 (the 429)", out.Shed)
	}
	if out.Attempts[0].Status != 503 || out.Attempts[2].Status != 200 {
		t.Fatalf("attempt statuses %+v", out.Attempts)
	}
	if out.Attempts[1].Waited <= 0 {
		t.Fatal("retry recorded no backoff wait")
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	ts, calls := scriptServer(t, []int{503}, "")
	cl := New(Config{BaseURL: ts.URL, MaxAttempts: 3,
		BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1})
	_, out, err := cl.Query(context.Background(), testReq())
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err %v, want ExhaustedError", err)
	}
	if ex.Attempts != 3 || ex.LastStatus != 503 || calls.Load() != 3 {
		t.Fatalf("exhausted %+v after %d calls", ex, calls.Load())
	}
	if len(out.Attempts) != 3 {
		t.Fatalf("outcome %+v", out)
	}
	if !strings.Contains(ex.Error(), "gave up after 3 attempts") {
		t.Fatalf("error text %q", ex.Error())
	}
}

func TestPermanent4xxNotRetried(t *testing.T) {
	ts, calls := scriptServer(t, []int{400}, "")
	cl := New(Config{BaseURL: ts.URL, Seed: 1})
	_, out, err := cl.Query(context.Background(), testReq())
	if err == nil || !strings.Contains(err.Error(), "permanent") {
		t.Fatalf("err %v, want permanent failure", err)
	}
	if calls.Load() != 1 || len(out.Attempts) != 1 {
		t.Fatalf("4xx was retried: %d calls", calls.Load())
	}
	if !strings.Contains(err.Error(), "scripted failure") {
		t.Fatalf("server's error message lost: %v", err)
	}
}

func TestRetryAfterRaisesBackoffFloor(t *testing.T) {
	cl := New(Config{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1})
	if d := cl.backoff(0, 700*time.Millisecond); d < 700*time.Millisecond {
		t.Fatalf("backoff %s below the Retry-After floor", d)
	}
	// And the hint is parsed off the response into the attempt loop.
	ts, _ := scriptServer(t, []int{429, 0}, "1")
	rcl := New(Config{BaseURL: ts.URL, BaseDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond, MaxElapsed: 5 * time.Second, Seed: 1})
	start := time.Now()
	_, _, err := rcl.Query(context.Background(), testReq())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry ignored Retry-After: 1s hint, retried after %s", elapsed)
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	cl := New(Config{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 99})
	for n := 0; n < 10; n++ {
		capN := 10 * time.Millisecond << n
		if capN > 80*time.Millisecond || capN <= 0 {
			capN = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			if d := cl.backoff(n, 0); d < 0 || d > capN {
				t.Fatalf("backoff(%d) = %s outside [0, %s]", n, d, capN)
			}
		}
	}
}

func TestSeededJitterDeterministic(t *testing.T) {
	a := New(Config{Seed: 7})
	b := New(Config{Seed: 7})
	for n := 0; n < 8; n++ {
		if da, db := a.backoff(n, 0), b.backoff(n, 0); da != db {
			t.Fatalf("same seed diverged at step %d: %s vs %s", n, da, db)
		}
	}
}

func TestContextCancelDuringBackoff(t *testing.T) {
	ts, _ := scriptServer(t, []int{503}, "")
	cl := New(Config{BaseURL: ts.URL, BaseDelay: 10 * time.Second,
		MaxDelay: 10 * time.Second, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := cl.Query(ctx, testReq())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context deadline", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestMaxElapsedStopsBeforeSleeping(t *testing.T) {
	ts, calls := scriptServer(t, []int{503}, "")
	cl := New(Config{BaseURL: ts.URL, MaxAttempts: 100,
		MaxElapsed: 20 * time.Millisecond, BaseDelay: 50 * time.Millisecond,
		MaxDelay: 50 * time.Millisecond, Seed: 1})
	start := time.Now()
	_, _, err := cl.Query(context.Background(), testReq())
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err %v, want ExhaustedError", err)
	}
	if time.Since(start) > 2*time.Second || calls.Load() > 3 {
		t.Fatalf("time budget not enforced: %d calls in %s", calls.Load(), time.Since(start))
	}
}

// TestTimeoutRidesHeader: the canonical body strips timeout_ms (it must
// not split cache addresses), so the deadline travels as X-Timeout-Ms.
func TestTimeoutRidesHeader(t *testing.T) {
	var gotHeader atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get("X-Timeout-Ms"))
		var req query.Request
		json.NewDecoder(r.Body).Decode(&req)
		if req.TimeoutMS != 0 {
			t.Errorf("timeout_ms leaked into the canonical body: %d", req.TimeoutMS)
		}
		json.NewEncoder(w).Encode(query.Response{})
	}))
	defer ts.Close()
	cl := New(Config{BaseURL: ts.URL, Seed: 1})
	req := testReq()
	req.TimeoutMS = 2500
	if _, _, err := cl.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if gotHeader.Load() != "2500" {
		t.Fatalf("X-Timeout-Ms = %q, want 2500", gotHeader.Load())
	}
}

func TestClientIDHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Client"))
		json.NewEncoder(w).Encode(query.Response{})
	}))
	defer ts.Close()
	cl := New(Config{BaseURL: ts.URL, ClientID: "tester", Seed: 1})
	if _, _, err := cl.Query(context.Background(), testReq()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "tester" {
		t.Fatalf("X-Client = %q", got.Load())
	}
}

// TestParseRetryAfter covers both RFC 9110 forms of the header — integer
// seconds and HTTP-date — and the clamping of everything unusable
// (negative seconds, past dates, garbage) to zero.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"integer seconds", "7", 7 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds", "-3", 0},
		{"http-date in the future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http-date in the past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http-date rfc850 form", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second},
		{"garbage", "soon", 0},
		{"fractional seconds not in the grammar", "1.5", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.h, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.h, got, tc.want)
		}
	}
}

// TestRetryAfterHTTPDateHeader: a server sending the HTTP-date form raises
// the backoff floor end to end, same as the integer form.
func TestRetryAfterHTTPDateHeader(t *testing.T) {
	// HTTP-dates carry whole-second resolution, so the floor only shows up
	// with a date comfortably in the next second.
	date := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	ts, calls := scriptServer(t, []int{http.StatusServiceUnavailable, 0}, date)
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond, Seed: 1})
	start := time.Now()
	_, out, err := c.Query(context.Background(), testReq())
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 || out.Retried != 1 {
		t.Fatalf("calls=%d retried=%d, want 2/1", calls.Load(), out.Retried)
	}
	// Date formatting truncated up to a second; the retry must still have
	// waited most of the remainder (generous lower bound sheds timer slop).
	if waited := time.Since(start); waited < 900*time.Millisecond {
		t.Fatalf("retried after %v; the HTTP-date floor was ignored", waited)
	}
}
