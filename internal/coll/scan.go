package coll

import (
	"fmt"

	"repro/internal/nums"
)

// Scan and Exscan (prefix reductions) plus ReduceScatterBlock complete the
// reduction family. All use the standard MPICH algorithms and require
// commutative, associative operators (which all nums operators are).

// Scan computes the inclusive prefix reduction: view index i receives
// op(send_0, ..., send_i). Recursive doubling with ordered partial sums:
// at step k, exchange with me±2^k and fold the lower neighbour's partial
// into both the running result and the carried partial.
func Scan(v View, send, recv []byte, op nums.Op) {
	scanRecDoubling(v, send, recv, op, v.tagWindow(), false)
}

// Exscan computes the exclusive prefix: view index i receives
// op(send_0, ..., send_{i-1}); index 0's recv is left untouched (as in
// MPI, where it is undefined).
func Exscan(v View, send, recv []byte, op nums.Op) {
	scanRecDoubling(v, send, recv, op, v.tagWindow(), true)
}

func scanRecDoubling(v View, send, recv []byte, op nums.Op, tag int, exclusive bool) {
	if len(send) != len(recv) {
		panic(fmt.Sprintf("coll: scan buffer mismatch %d != %d", len(send), len(recv)))
	}
	if len(send)%nums.F64Size != 0 {
		panic(fmt.Sprintf("coll: scan buffer %dB is not a float64 vector", len(send)))
	}
	size := v.Size()
	// partial carries op over a contiguous rank interval ending at me;
	// result carries op over [0, me] (or [0, me) for exscan, valid once
	// anything has been folded in).
	partial := make([]byte, len(send))
	v.memcpy(partial, send)
	result := make([]byte, len(send))
	haveResult := !exclusive
	if haveResult {
		v.memcpy(result, send)
	}

	step := 0
	for mask := 1; mask < size; mask <<= 1 {
		lower := v.me - mask
		upper := v.me + mask
		tmp := make([]byte, len(send))
		switch {
		case lower >= 0 && upper < size:
			v.Sendrecv(upper, tag+step, partial, lower, tag+step, tmp)
		case upper < size:
			v.Send(upper, tag+step, partial)
		case lower >= 0:
			v.Recv(lower, tag+step, tmp)
		}
		if lower >= 0 {
			// tmp covers [lower-2^k+1 .. lower]: fold below me.
			if haveResult {
				v.combine(result, tmp, op)
			} else {
				v.memcpy(result, tmp)
				haveResult = true
			}
			v.combine(partial, tmp, op)
		}
		step++
	}
	if haveResult {
		v.memcpy(recv, result)
	}
}

// ReduceScatterBlock reduces equal blocks across the view and leaves view
// index i with the fully reduced block i: recv holds len(send)/size bytes.
// The ring reduce-scatter phase of the large allreduce, exposed as the
// standalone MPI_Reduce_scatter_block. op must be commutative.
func ReduceScatterBlock(v View, send, recv []byte, op nums.Op) {
	size := v.Size()
	if len(send)%size != 0 || len(recv) != len(send)/size {
		panic(fmt.Sprintf("coll: reduce_scatter_block buffers %dB/%dB for %d ranks",
			len(send), len(recv), size))
	}
	if len(send)%nums.F64Size != 0 || (len(send)/size)%nums.F64Size != 0 {
		panic("coll: reduce_scatter_block blocks must be float64 vectors")
	}
	tag := v.tagWindow()
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	blockBytes := len(send) / size
	block := func(b []byte, i int) []byte { return b[i*blockBytes : (i+1)*blockBytes] }
	acc := make([]byte, len(send))
	v.memcpy(acc, send)
	tmp := make([]byte, blockBytes)
	left := (v.me - 1 + size) % size
	right := (v.me + 1) % size
	// After size-1 steps, rank me holds the complete block (me+1) mod
	// size; one final neighbour shuffle moves block me home.
	for s := 0; s < size-1; s++ {
		sendBlock := (v.me - s + 2*size) % size
		recvBlock := (v.me - s - 1 + 2*size) % size
		v.Sendrecv(right, tag+s, block(acc, sendBlock), left, tag+s, tmp)
		v.combine(block(acc, recvBlock), tmp, op)
	}
	own := (v.me + 1) % size
	v.Sendrecv(right, tag+size, block(acc, own), left, tag+size, recv)
}
