package coll

import (
	"fmt"

	"repro/internal/nums"
)

// checkReduceBufs validates an allreduce buffer pair: equal length, float64
// aligned.
func checkReduceBufs(send, recv []byte) {
	if len(send) != len(recv) {
		panic(fmt.Sprintf("coll: allreduce buffer mismatch %d != %d", len(send), len(recv)))
	}
	if len(send)%nums.F64Size != 0 {
		panic(fmt.Sprintf("coll: allreduce buffer %dB is not a float64 vector", len(send)))
	}
}

// blockCounts splits elems elements into blocks pieces as evenly as possible
// and returns per-block element counts and displacements.
func blockCounts(elems, blocks int) (cnts, disps []int) {
	cnts = make([]int, blocks)
	disps = make([]int, blocks)
	base, extra := elems/blocks, elems%blocks
	off := 0
	for i := range cnts {
		cnts[i] = base
		if i < extra {
			cnts[i]++
		}
		disps[i] = off
		off += cnts[i]
	}
	return cnts, disps
}

// foldRemainder implements the standard MPI non-power-of-two preparation:
// the first 2*rem ranks pair up, even ranks donate their vector to the odd
// neighbour and go idle, and the survivors renumber into a power-of-two
// group. It returns the caller's new rank (-1 if idle) and the translation
// from new ranks back to view indices.
func foldRemainder(v View, acc []byte, op nums.Op, tag int) (newRank int, translate func(int) int) {
	size := v.Size()
	pof2 := prevPow2(size)
	rem := size - pof2
	translate = func(nr int) int {
		if nr < rem {
			return nr*2 + 1
		}
		return nr + rem
	}
	switch {
	case v.me < 2*rem && v.me%2 == 0:
		v.Send(v.me+1, tag, acc)
		return -1, translate
	case v.me < 2*rem:
		tmp := make([]byte, len(acc))
		v.Recv(v.me-1, tag, tmp)
		v.combine(acc, tmp, op)
		return v.me / 2, translate
	default:
		return v.me - rem, translate
	}
}

// unfoldRemainder delivers the final result back to the idle even ranks.
func unfoldRemainder(v View, acc []byte, tag int) {
	rem := v.Size() - prevPow2(v.Size())
	if v.me >= 2*rem {
		return
	}
	if v.me%2 == 0 {
		v.Recv(v.me+1, tag, acc)
	} else {
		v.Send(v.me-1, tag, acc)
	}
}

// AllreduceRecDoubling is the latency-optimal recursive-doubling allreduce,
// the MPI standard choice for small messages. Non-power-of-two sizes fold
// the first ranks into a power-of-two group. op must be commutative.
func AllreduceRecDoubling(v View, send, recv []byte, op nums.Op) {
	allreduceRecDoubling(v, send, recv, op, v.tagWindow())
}

func allreduceRecDoubling(v View, send, recv []byte, op nums.Op, tag int) {
	checkReduceBufs(send, recv)
	size := v.Size()
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	acc := make([]byte, len(send))
	v.memcpy(acc, send)

	newRank, translate := foldRemainder(v, acc, op, tag)
	if newRank >= 0 {
		pof2 := prevPow2(size)
		tmp := make([]byte, len(acc))
		mask := 1
		step := 1
		for mask < pof2 {
			peer := translate(newRank ^ mask)
			v.Sendrecv(peer, tag+step, acc, peer, tag+step, tmp)
			v.combine(acc, tmp, op)
			mask <<= 1
			step++
		}
	}
	unfoldRemainder(v, acc, tag+phaseStride-1)
	v.memcpy(recv, acc)
}

// AllreduceRing is the bandwidth-optimal ring allreduce (ring
// reduce-scatter followed by ring allgather), the choice of mainstream
// libraries for large vectors. op must be commutative.
func AllreduceRing(v View, send, recv []byte, op nums.Op) {
	allreduceRing(v, send, recv, op, v.tagWindow())
}

func allreduceRing(v View, send, recv []byte, op nums.Op, tag int) {
	checkReduceBufs(send, recv)
	size := v.Size()
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	elems := len(send) / nums.F64Size
	cnts, disps := blockCounts(elems, size)
	block := func(b []byte, i int) []byte {
		return b[disps[i]*nums.F64Size : (disps[i]+cnts[i])*nums.F64Size]
	}
	acc := make([]byte, len(send))
	v.memcpy(acc, send)
	tmp := make([]byte, (elems/size+1)*nums.F64Size)

	left := (v.me - 1 + size) % size
	right := (v.me + 1) % size

	// Reduce-scatter: after size-1 steps rank me owns the fully reduced
	// block (me+1) mod size.
	for s := 0; s < size-1; s++ {
		sendBlock := (v.me - s + size*2) % size
		recvBlock := (v.me - s - 1 + size*2) % size
		in := tmp[:cnts[recvBlock]*nums.F64Size]
		v.Sendrecv(right, tag+s, block(acc, sendBlock), left, tag+s, in)
		v.combine(block(acc, recvBlock), in, op)
	}
	// Allgather the reduced blocks around the ring.
	for s := 0; s < size-1; s++ {
		sendBlock := (v.me + 1 - s + size*2) % size
		recvBlock := (v.me - s + size*2) % size
		v.Sendrecv(right, tag+phaseStride+s, block(acc, sendBlock),
			left, tag+phaseStride+s, block(acc, recvBlock))
	}
	v.memcpy(recv, acc)
}

// AllreduceRabenseifner is Rabenseifner's algorithm: recursive-halving
// reduce-scatter followed by recursive-doubling allgather — the classic
// large-message allreduce the paper cites as the traditional baseline its
// large-message design improves on. op must be commutative.
func AllreduceRabenseifner(v View, send, recv []byte, op nums.Op) {
	allreduceRabenseifner(v, send, recv, op, v.tagWindow())
}

func allreduceRabenseifner(v View, send, recv []byte, op nums.Op, tag int) {
	checkReduceBufs(send, recv)
	size := v.Size()
	elems := len(send) / nums.F64Size
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	pof2 := prevPow2(size)
	if elems < pof2 {
		// Too few elements to scatter one per process: fall back, as
		// MPICH does.
		allreduceRecDoubling(v, send, recv, op, tag)
		return
	}
	acc := make([]byte, len(send))
	v.memcpy(acc, send)

	newRank, translate := foldRemainder(v, acc, op, tag)
	cnts, disps := blockCounts(elems, pof2)
	seg := func(b []byte, idx, blocks int) []byte {
		lo := disps[idx] * nums.F64Size
		n := 0
		for i := idx; i < idx+blocks; i++ {
			n += cnts[i]
		}
		return b[lo : lo+n*nums.F64Size]
	}
	sendIdx, recvIdx, lastIdx := 0, 0, pof2

	if newRank >= 0 {
		tmp := make([]byte, len(acc))
		// Recursive halving reduce-scatter.
		mask := 1
		step := 1
		for mask < pof2 {
			newPeer := newRank ^ mask
			peer := translate(newPeer)
			half := pof2 / (mask * 2)
			if newRank < newPeer {
				sendIdx = recvIdx + half
			} else {
				recvIdx = sendIdx + half
			}
			var sSeg, rSeg []byte
			if newRank < newPeer {
				sSeg = seg(acc, sendIdx, lastIdx-sendIdx)
				rSeg = seg(tmp, recvIdx, sendIdx-recvIdx)
			} else {
				sSeg = seg(acc, sendIdx, recvIdx-sendIdx)
				rSeg = seg(tmp, recvIdx, lastIdx-recvIdx)
			}
			v.Sendrecv(peer, tag+step, sSeg, peer, tag+step, rSeg)
			v.combine(seg(acc, recvIdx, countBlocks(cnts, recvIdx, len(rSeg))), rSeg, op)
			sendIdx = recvIdx
			mask <<= 1
			if mask < pof2 {
				lastIdx = recvIdx + pof2/mask
			}
			step++
		}

		// Recursive doubling allgather of the reduced segments.
		mask = pof2 >> 1
		for mask > 0 {
			newPeer := newRank ^ mask
			peer := translate(newPeer)
			half := pof2 / (mask * 2)
			var sSeg, rSeg []byte
			if newRank < newPeer {
				if mask != pof2/2 {
					lastIdx = lastIdx + half
				}
				recvIdx = sendIdx + half
				sSeg = seg(acc, sendIdx, recvIdx-sendIdx)
				rSeg = seg(acc, recvIdx, lastIdx-recvIdx)
			} else {
				recvIdx = sendIdx - half
				sSeg = seg(acc, sendIdx, lastIdx-sendIdx)
				rSeg = seg(acc, recvIdx, sendIdx-recvIdx)
			}
			v.Sendrecv(peer, tag+phaseStride+step, sSeg, peer, tag+phaseStride+step, rSeg)
			if newRank > newPeer {
				sendIdx = recvIdx
			}
			mask >>= 1
			step++
		}
	}
	unfoldRemainder(v, acc, tag+2*phaseStride-1)
	v.memcpy(recv, acc)
}

// countBlocks returns how many blocks starting at idx cover byteLen bytes.
func countBlocks(cnts []int, idx, byteLen int) int {
	want := byteLen / nums.F64Size
	n := 0
	blocks := 0
	for i := idx; n < want; i++ {
		n += cnts[i]
		blocks++
	}
	if n != want {
		panic("coll: segment does not align to block boundaries")
	}
	return blocks
}

// Barrier blocks until every rank of the view has entered it, using the
// dissemination algorithm (ceil(log2 size) rounds of zero-byte exchanges).
func Barrier(v View) {
	barrierDissemination(v, v.tagWindow())
}

func barrierDissemination(v View, tag int) {
	size := v.Size()
	empty := []byte{}
	in := []byte{}
	step := 0
	for mask := 1; mask < size; mask <<= 1 {
		dst := (v.me + mask) % size
		src := (v.me - mask + size) % size
		v.Sendrecv(dst, tag+step, empty, src, tag+step, in)
		step++
	}
}
