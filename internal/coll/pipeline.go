package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// BcastChainPipelined is the segmented chain broadcast: buf flows down the
// rank chain root → root+1 → ... in segments of segSize bytes, so rank i
// forwards segment k downstream while segment k+1 is still inbound — the
// classic pipelined broadcast whose steady-state throughput approaches link
// bandwidth independent of the chain length (for messages much larger than
// one segment). A baseline alternative to the van de Geijn composition for
// large broadcasts.
func BcastChainPipelined(v View, root int, buf []byte, segSize int) {
	size := v.Size()
	checkRoot("bcast", root, size)
	if segSize <= 0 {
		panic(fmt.Sprintf("coll: pipelined bcast segment size %d", segSize))
	}
	if size == 1 || len(buf) == 0 {
		return
	}
	tag := v.tagWindow()
	rel := (v.me - root + size) % size
	hasNext := rel+1 < size
	next := (v.me + 1) % size
	prev := (v.me - 1 + size) % size

	nseg := (len(buf) + segSize - 1) / segSize
	seg := func(k int) []byte {
		lo := k * segSize
		hi := lo + segSize
		if hi > len(buf) {
			hi = len(buf)
		}
		return buf[lo:hi]
	}

	var forwards []*mpi.Request
	for k := 0; k < nseg; k++ {
		if rel > 0 {
			v.Recv(prev, tag+k, seg(k))
		}
		if hasNext {
			// Forward asynchronously: the next segment's receive (or
			// the root's next injection) overlaps this send.
			forwards = append(forwards, v.Isend(next, tag+k, seg(k)))
		}
	}
	v.r.Waitall(forwards...)
}
