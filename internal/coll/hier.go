package coll

import (
	"fmt"

	"repro/internal/nums"
	"repro/internal/topology"
)

// The hierarchical compositions mirror what Open MPI, MVAPICH2 and Intel
// MPI actually run on multi-core clusters: an intranode phase through shared
// memory to the node leader (local rank 0), an internode phase among the
// leaders only (so a single process per node drives the NIC — the
// single-object behaviour PiP-MColl's multi-object design attacks), and an
// intranode fan-out of the result.
//
// They require the Block rank layout: the internode phase moves contiguous
// per-node slabs of the buffers.

// requireBlock panics unless the cluster uses the Block layout.
func requireBlock(v View, opName string) {
	if v.r.Cluster().Layout() != topology.Block {
		panic(fmt.Sprintf("coll: hierarchical %s requires block rank layout", opName))
	}
}

// isLeader reports whether the caller is its node's leader (local rank 0).
func isLeader(v View) bool { return v.r.Local() == 0 }

// ScatterHier scatters from the world root: the root forwards the full
// buffer to its node leader if needed, leaders scatter per-node slabs over
// a binomial tree, and each leader scatters its slab within the node.
// send is significant only at root; every rank receives its chunk in recv.
func ScatterHier(r View, root int, send, recv []byte) {
	requireBlock(r, "scatter")
	tag := newTagWindow(r.r)
	c := r.r.Cluster()
	size := c.Size()
	checkRoot("scatter", root, size)
	chunk := len(recv)
	if r.me == root {
		checkChunk("scatter", size, chunk, len(send))
	}
	rootNode := c.Node(root)
	leaderOfRoot := c.Rank(rootNode, 0)
	ppn := c.PPN()

	full := send
	if root != leaderOfRoot {
		// Hand the payload to the root's node leader.
		if r.me == root {
			r.r.Send(leaderOfRoot, tag, send)
		}
		if r.r.Rank() == leaderOfRoot {
			full = make([]byte, size*chunk)
			r.r.Recv(root, tag, full)
		}
	}

	// Internode: leaders scatter per-node slabs (ppn chunks each).
	ph := r.r.PhaseStart("leader-scatter")
	nodeSlab := make([]byte, ppn*chunk)
	if isLeader(r) {
		lv := LeaderView(r.r)
		scatterTree(lv, rootNode, full, nodeSlab, tag+phaseStride)
	}
	ph.End()
	// Intranode: each leader scatters its slab.
	ph = r.r.PhaseStart("intra-scatter")
	nv := NodeView(r.r)
	scatterTree(nv, 0, nodeSlab, recv, tag+2*phaseStride)
	ph.End()
}

// GatherHier is the mirror: intranode gather to leaders, internode gather
// of node slabs to the root's leader, then a hop to the root if it is not a
// leader. recv is significant only at root.
func GatherHier(r View, root int, send, recv []byte) {
	requireBlock(r, "gather")
	tag := newTagWindow(r.r)
	c := r.r.Cluster()
	size := c.Size()
	checkRoot("gather", root, size)
	chunk := len(send)
	if r.me == root {
		checkChunk("gather", size, chunk, len(recv))
	}
	rootNode := c.Node(root)
	leaderOfRoot := c.Rank(rootNode, 0)
	ppn := c.PPN()

	ph := r.r.PhaseStart("intra-gather")
	nodeSlab := make([]byte, ppn*chunk)
	nv := NodeView(r.r)
	gatherTree(nv, 0, send, nodeSlab, tag)
	ph.End()

	full := recv
	if r.r.Rank() == leaderOfRoot && root != leaderOfRoot {
		full = make([]byte, size*chunk)
	}
	ph = r.r.PhaseStart("leader-gather")
	if isLeader(r) {
		lv := LeaderView(r.r)
		gatherTree(lv, rootNode, nodeSlab, full, tag+phaseStride)
	}
	ph.End()
	if root != leaderOfRoot {
		if r.r.Rank() == leaderOfRoot {
			r.r.Send(root, tag+2*phaseStride, full)
		}
		if r.me == root {
			r.r.Recv(leaderOfRoot, tag+2*phaseStride, recv)
		}
	}
}

// BcastHier broadcasts from the world root: hop to the root's leader,
// binomial bcast among leaders, binomial bcast within each node.
func BcastHier(r View, root int, buf []byte) {
	requireBlock(r, "bcast")
	tag := newTagWindow(r.r)
	c := r.r.Cluster()
	checkRoot("bcast", root, c.Size())
	rootNode := c.Node(root)
	leaderOfRoot := c.Rank(rootNode, 0)
	if root != leaderOfRoot {
		if r.me == root {
			r.r.Send(leaderOfRoot, tag, buf)
		}
		if r.r.Rank() == leaderOfRoot {
			r.r.Recv(root, tag, buf)
		}
	}
	ph := r.r.PhaseStart("leader-bcast")
	if isLeader(r) {
		bcastTree(LeaderView(r.r), rootNode, buf, tag+phaseStride)
	}
	ph.End()
	ph = r.r.PhaseStart("intra-bcast")
	bcastTree(NodeView(r.r), 0, buf, tag+2*phaseStride)
	ph.End()
}

// AllgatherHier gathers chunks within each node, allgathers node slabs
// among leaders (algorithm chosen by total size against ringThreshold, as
// mainstream libraries tune it), then broadcasts the full buffer locally.
func AllgatherHier(r View, send, recv []byte, ringThreshold int) {
	requireBlock(r, "allgather")
	tag := newTagWindow(r.r)
	c := r.r.Cluster()
	chunk := len(send)
	checkChunk("allgather", c.Size(), chunk, len(recv))
	ppn := c.PPN()

	ph := r.r.PhaseStart("intra-gather")
	nodeSlab := make([]byte, ppn*chunk)
	gatherTree(NodeView(r.r), 0, send, nodeSlab, tag)
	ph.End()
	ph = r.r.PhaseStart("leader-allgather")
	if isLeader(r) {
		lv := LeaderView(r.r)
		if len(recv) > ringThreshold {
			allgatherRing(lv, nodeSlab, recv, tag+phaseStride)
		} else if lv.Size()&(lv.Size()-1) == 0 {
			allgatherRecDoubling(lv, nodeSlab, recv, tag+phaseStride)
		} else {
			allgatherBruck(lv, nodeSlab, recv, tag+phaseStride)
		}
	}
	ph.End()
	ph = r.r.PhaseStart("intra-bcast")
	bcastTree(NodeView(r.r), 0, recv, tag+2*phaseStride)
	ph.End()
}

// AllreduceHier reduces within each node to the leader, allreduces among
// leaders (recursive doubling below ringThreshold, ring above), then
// broadcasts the result locally. op must be commutative.
func AllreduceHier(r View, send, recv []byte, op nums.Op, ringThreshold int) {
	requireBlock(r, "allreduce")
	tag := newTagWindow(r.r)
	checkReduceBufs(send, recv)

	ph := r.r.PhaseStart("intra-reduce")
	partial := make([]byte, len(send))
	reduceTree(NodeView(r.r), 0, send, partial, op, tag)
	ph.End()
	ph = r.r.PhaseStart("leader-allreduce")
	if isLeader(r) {
		lv := LeaderView(r.r)
		if len(send) > ringThreshold {
			allreduceRing(lv, partial, recv, op, tag+phaseStride)
		} else {
			allreduceRecDoubling(lv, partial, recv, op, tag+phaseStride)
		}
	}
	ph.End()
	ph = r.r.PhaseStart("intra-bcast")
	bcastTree(NodeView(r.r), 0, recv, tag+3*phaseStride)
	ph.End()
}
