package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Variable-count collectives (MPI_Scatterv / MPI_Gatherv / MPI_Allgatherv):
// the v-variants let every rank contribute or receive a different amount,
// which irregular applications (unbalanced domain decompositions, variable-
// length records) rely on. The implementations reuse the fixed-count
// algorithm structures with per-rank counts and displacements.

// checkCounts validates a counts/displacements pair against a buffer, with
// non-overlap enforced by requiring displacements to be in count order when
// walked sequentially (the common MPI usage; overlapping segments would
// make the collectives ill-defined).
func checkCounts(opName string, counts, displs []int, size, bufLen int, atRoot bool) {
	if !atRoot {
		return
	}
	if len(counts) != size || len(displs) != size {
		panic(fmt.Sprintf("coll: %s needs %d counts/displs, got %d/%d",
			opName, size, len(counts), len(displs)))
	}
	for i := 0; i < size; i++ {
		if counts[i] < 0 || displs[i] < 0 || displs[i]+counts[i] > bufLen {
			panic(fmt.Sprintf("coll: %s segment %d [%d,+%d) outside %dB buffer",
				opName, i, displs[i], counts[i], bufLen))
		}
	}
}

// Scatterv distributes counts[i] bytes from send[displs[i]:] (root only) to
// view index i's recv (whose length must equal counts[i] there). Linear
// algorithm: the root streams each segment directly, as MPICH does (a tree
// cannot help when segment sizes are arbitrary).
func Scatterv(v View, root int, send []byte, counts, displs []int, recv []byte) {
	tag := v.tagWindow()
	size := v.Size()
	checkRoot("scatterv", root, size)
	checkCounts("scatterv", counts, displs, size, len(send), v.me == root)
	if v.me == root {
		reqs := make([]*mpi.Request, 0, size-1)
		for i := 0; i < size; i++ {
			if i == root {
				v.memcpy(recv, send[displs[i]:displs[i]+counts[i]])
				continue
			}
			reqs = append(reqs, v.Isend(i, tag+i, send[displs[i]:displs[i]+counts[i]]))
		}
		v.r.Waitall(reqs...)
		return
	}
	v.Recv(root, tag+v.me, recv)
}

// Gatherv collects view index i's send (len counts[i] at root) into
// recv[displs[i]:] at the root. Linear, mirroring Scatterv.
func Gatherv(v View, root int, send []byte, counts, displs []int, recv []byte) {
	tag := v.tagWindow()
	size := v.Size()
	checkRoot("gatherv", root, size)
	checkCounts("gatherv", counts, displs, size, len(recv), v.me == root)
	if v.me == root {
		for i := 0; i < size; i++ {
			if i == root {
				v.memcpy(recv[displs[i]:displs[i]+counts[i]], send)
				continue
			}
			v.Recv(i, tag+i, recv[displs[i]:displs[i]+counts[i]])
		}
		return
	}
	v.Send(root, tag+v.me, send)
}

// Allgatherv gathers view index i's send (len counts[i]) into every rank's
// recv at displs[i]. Every rank must pass identical counts/displs. The
// implementation is the ring algorithm generalized to unequal blocks — the
// MPI standard choice, bandwidth-optimal regardless of skew.
func Allgatherv(v View, send []byte, counts, displs []int, recv []byte) {
	tag := v.tagWindow()
	size := v.Size()
	checkCounts("allgatherv", counts, displs, size, len(recv), true)
	if len(send) != counts[v.me] {
		panic(fmt.Sprintf("coll: allgatherv rank %d sends %dB, counts say %dB",
			v.me, len(send), counts[v.me]))
	}
	v.memcpy(recv[displs[v.me]:displs[v.me]+counts[v.me]], send)
	if size == 1 {
		return
	}
	left := (v.me - 1 + size) % size
	right := (v.me + 1) % size
	for s := 0; s < size-1; s++ {
		sendBlock := (v.me - s + 2*size) % size
		recvBlock := (v.me - s - 1 + 2*size) % size
		v.Sendrecv(right, tag+s,
			recv[displs[sendBlock]:displs[sendBlock]+counts[sendBlock]],
			left, tag+s,
			recv[displs[recvBlock]:displs[recvBlock]+counts[recvBlock]])
	}
}

// Alltoallv is the variable-count total exchange: view index i sends
// sendCounts[j] bytes from send[sendDispls[j]:] to view index j, receiving
// recvCounts[j] bytes into recv[recvDispls[j]:]. Counts must agree pairwise
// (my sendCounts[j] == j's recvCounts[i]); the pairwise-exchange schedule
// handles arbitrary skew.
func Alltoallv(v View, send []byte, sendCounts, sendDispls []int,
	recv []byte, recvCounts, recvDispls []int) {
	size := v.Size()
	checkCounts("alltoallv-send", sendCounts, sendDispls, size, len(send), true)
	checkCounts("alltoallv-recv", recvCounts, recvDispls, size, len(recv), true)
	tag := v.tagWindow()
	// Self block.
	v.memcpy(recv[recvDispls[v.me]:recvDispls[v.me]+recvCounts[v.me]],
		send[sendDispls[v.me]:sendDispls[v.me]+sendCounts[v.me]])
	for s := 1; s < size; s++ {
		dst := (v.me + s) % size
		src := (v.me - s + size) % size
		rq := v.Irecv(src, tag+s, recv[recvDispls[src]:recvDispls[src]+recvCounts[src]])
		sq := v.Isend(dst, tag+s, send[sendDispls[dst]:sendDispls[dst]+sendCounts[dst]])
		v.r.Waitall(rq, sq)
	}
}
