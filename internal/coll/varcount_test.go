package coll

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
)

// varLayout builds a skewed counts/displacements layout: rank i contributes
// (i%4+1)*stride bytes, packed contiguously.
func varLayout(size, stride int) (counts, displs []int, total int) {
	counts = make([]int, size)
	displs = make([]int, size)
	for i := range counts {
		counts[i] = (i%4 + 1) * stride
		displs[i] = total
		total += counts[i]
	}
	return counts, displs, total
}

// varExpected builds the packed reference buffer: rank i's segment is
// FillBytes(seed=i).
func varExpected(counts, displs []int, total int) []byte {
	out := make([]byte, total)
	for i := range counts {
		nums.FillBytes(out[displs[i]:displs[i]+counts[i]], i)
	}
	return out
}

func TestScattervGatherv(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, root := range []int{0, size - 1} {
			sh, root := sh, root
			t.Run(fmt.Sprintf("%dx%d root%d", sh[0], sh[1], root), func(t *testing.T) {
				counts, displs, total := varLayout(size, 24)
				full := varExpected(counts, displs, total)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					me := r.Rank()
					// Scatterv.
					var send []byte
					if me == root {
						send = append([]byte(nil), full...)
					}
					recv := make([]byte, counts[me])
					Scatterv(World(r), root, send, counts, displs, recv)
					if !bytes.Equal(recv, full[displs[me]:displs[me]+counts[me]]) {
						t.Errorf("rank %d scatterv wrong", me)
					}
					// Gatherv (send back what was received).
					var g []byte
					if me == root {
						g = make([]byte, total)
					}
					Gatherv(World(r), root, recv, counts, displs, g)
					if me == root && !bytes.Equal(g, full) {
						t.Errorf("gatherv at root wrong")
					}
				})
			})
		}
	}
}

func TestAllgatherv(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			counts, displs, total := varLayout(size, 16)
			want := varExpected(counts, displs, total)
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				send := make([]byte, counts[r.Rank()])
				nums.FillBytes(send, r.Rank())
				recv := make([]byte, total)
				Allgatherv(World(r), send, counts, displs, recv)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d allgatherv wrong", r.Rank())
				}
			})
		})
	}
}

func TestAllgathervZeroCounts(t *testing.T) {
	// Ranks may legitimately contribute nothing.
	runWorld(t, 2, 3, func(r *mpi.Rank) {
		size := r.Size()
		counts := make([]int, size)
		displs := make([]int, size)
		total := 0
		for i := range counts {
			if i%2 == 0 {
				counts[i] = 32
			}
			displs[i] = total
			total += counts[i]
		}
		send := make([]byte, counts[r.Rank()])
		nums.FillBytes(send, r.Rank())
		recv := make([]byte, total)
		Allgatherv(World(r), send, counts, displs, recv)
		for i := 0; i < size; i++ {
			want := make([]byte, counts[i])
			nums.FillBytes(want, i)
			if !bytes.Equal(recv[displs[i]:displs[i]+counts[i]], want) {
				t.Errorf("rank %d block %d wrong", r.Rank(), i)
			}
		}
	})
}

func TestVarcountValidation(t *testing.T) {
	// Wrong counts length at root.
	runExpectError(t, func(r *mpi.Rank) {
		Scatterv(World(r), 0, make([]byte, 16), []int{16}, []int{0}, make([]byte, 16))
	})
	// Segment outside the buffer.
	runExpectError(t, func(r *mpi.Rank) {
		counts := []int{8, 16, 8, 8}
		displs := []int{0, 8, 24, 32}
		Gatherv(World(r), 0, make([]byte, counts[r.Rank()]), counts, displs, make([]byte, 32))
	})
	// Send length disagreeing with counts in allgatherv.
	runExpectError(t, func(r *mpi.Rank) {
		counts := []int{8, 8, 8, 8}
		displs := []int{0, 8, 16, 24}
		Allgatherv(World(r), make([]byte, 9), counts, displs, make([]byte, 32))
	})
}

func TestScattervOverCommView(t *testing.T) {
	runWorld(t, 2, 4, func(r *mpi.Rank) {
		c := mpi.WorldComm(r).Split(r.Rank()%2, r.Rank())
		v := CommView(c)
		counts, displs, total := varLayout(v.Size(), 8)
		full := varExpected(counts, displs, total)
		var send []byte
		if v.Me() == 0 {
			send = append([]byte(nil), full...)
		}
		recv := make([]byte, counts[v.Me()])
		Scatterv(v, 0, send, counts, displs, recv)
		if !bytes.Equal(recv, full[displs[v.Me()]:displs[v.Me()]+counts[v.Me()]]) {
			t.Errorf("rank %d comm scatterv wrong", r.Rank())
		}
	})
}

func TestAlltoallv(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			// Rank i sends (i+j)%5 * 8 bytes to rank j, pattern-filled.
			cnt := func(i, j int) int { return ((i + j) % 5) * 8 }
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				me := r.Rank()
				sendCounts := make([]int, size)
				sendDispls := make([]int, size)
				total := 0
				for j := 0; j < size; j++ {
					sendCounts[j] = cnt(me, j)
					sendDispls[j] = total
					total += sendCounts[j]
				}
				send := make([]byte, total)
				for j := 0; j < size; j++ {
					nums.FillBytes(send[sendDispls[j]:sendDispls[j]+sendCounts[j]], me*1000+j)
				}
				recvCounts := make([]int, size)
				recvDispls := make([]int, size)
				rtotal := 0
				for j := 0; j < size; j++ {
					recvCounts[j] = cnt(j, me)
					recvDispls[j] = rtotal
					rtotal += recvCounts[j]
				}
				recv := make([]byte, rtotal)
				Alltoallv(World(r), send, sendCounts, sendDispls, recv, recvCounts, recvDispls)
				for j := 0; j < size; j++ {
					want := make([]byte, recvCounts[j])
					nums.FillBytes(want, j*1000+me)
					if !bytes.Equal(recv[recvDispls[j]:recvDispls[j]+recvCounts[j]], want) {
						t.Errorf("rank %d block from %d wrong", me, j)
						break
					}
				}
			})
		})
	}
}
