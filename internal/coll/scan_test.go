package coll

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
)

// expectedPrefix computes op(send_0..send_k) over the rank patterns.
func expectedPrefix(k, elems int, op nums.Op) []byte {
	acc := make([]byte, elems*nums.F64Size)
	nums.Fill(acc, 0)
	for i := 1; i <= k; i++ {
		b := make([]byte, elems*nums.F64Size)
		nums.Fill(b, i)
		op.Combine(acc, b)
	}
	return acc
}

func TestScanAllShapes(t *testing.T) {
	for _, sh := range shapes {
		for _, elems := range []int{1, 9, 200} {
			sh, elems := sh, elems
			t.Run(fmt.Sprintf("%dx%d n%d", sh[0], sh[1], elems), func(t *testing.T) {
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, elems*nums.F64Size)
					nums.Fill(send, r.Rank())
					recv := make([]byte, len(send))
					Scan(World(r), send, recv, nums.Sum)
					if !bytes.Equal(recv, expectedPrefix(r.Rank(), elems, nums.Sum)) {
						t.Errorf("rank %d scan wrong", r.Rank())
					}
				})
			})
		}
	}
}

func TestScanMax(t *testing.T) {
	runWorld(t, 3, 2, func(r *mpi.Rank) {
		const elems = 4
		send := make([]byte, elems*nums.F64Size)
		nums.Fill(send, r.Rank())
		recv := make([]byte, len(send))
		Scan(World(r), send, recv, nums.Max)
		if !bytes.Equal(recv, expectedPrefix(r.Rank(), elems, nums.Max)) {
			t.Errorf("rank %d max-scan wrong", r.Rank())
		}
	})
}

func TestExscan(t *testing.T) {
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			const elems = 7
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				send := make([]byte, elems*nums.F64Size)
				nums.Fill(send, r.Rank())
				recv := make([]byte, len(send))
				sentinel := byte(0xAB)
				for i := range recv {
					recv[i] = sentinel
				}
				Exscan(World(r), send, recv, nums.Sum)
				if r.Rank() == 0 {
					for _, b := range recv {
						if b != sentinel {
							t.Error("rank 0 exscan buffer modified")
							break
						}
					}
					return
				}
				if !bytes.Equal(recv, expectedPrefix(r.Rank()-1, elems, nums.Sum)) {
					t.Errorf("rank %d exscan wrong", r.Rank())
				}
			})
		})
	}
}

func TestScanBadBuffersPanic(t *testing.T) {
	runExpectError(t, func(r *mpi.Rank) {
		Scan(World(r), make([]byte, 8), make([]byte, 16), nums.Sum)
	})
	runExpectError(t, func(r *mpi.Rank) {
		Scan(World(r), make([]byte, 7), make([]byte, 7), nums.Sum)
	})
}

func TestReduceScatterBlock(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, blockElems := range []int{1, 16} {
			sh, blockElems := sh, blockElems
			t.Run(fmt.Sprintf("%dx%d be%d", sh[0], sh[1], blockElems), func(t *testing.T) {
				elems := size * blockElems
				want := expectedSum(size, elems)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, elems*nums.F64Size)
					nums.Fill(send, r.Rank())
					recv := make([]byte, blockElems*nums.F64Size)
					ReduceScatterBlock(World(r), send, recv, nums.Sum)
					lo := r.Rank() * blockElems * nums.F64Size
					if !bytes.Equal(recv, want[lo:lo+len(recv)]) {
						t.Errorf("rank %d reduce_scatter block wrong", r.Rank())
					}
				})
			})
		}
	}
}

func TestReduceScatterBlockValidation(t *testing.T) {
	runExpectError(t, func(r *mpi.Rank) {
		ReduceScatterBlock(World(r), make([]byte, 33), make([]byte, 8), nums.Sum)
	})
	runExpectError(t, func(r *mpi.Rank) {
		ReduceScatterBlock(World(r), make([]byte, 32), make([]byte, 16), nums.Sum)
	})
}

func TestScanOverCommView(t *testing.T) {
	runWorld(t, 2, 4, func(r *mpi.Rank) {
		c := mpi.WorldComm(r).Split(r.Rank()%2, r.Rank())
		v := CommView(c)
		send := make([]byte, 8)
		nums.SetF64At(send, 0, float64(r.Rank()))
		recv := make([]byte, 8)
		Scan(v, send, recv, nums.Sum)
		want := 0.0
		for i, wr := range c.WorldRanks() {
			if i > v.Me() {
				break
			}
			want += float64(wr)
		}
		if got := nums.F64At(recv, 0); got != want {
			t.Errorf("rank %d comm scan = %v, want %v", r.Rank(), got, want)
		}
	})
}
