package coll

import (
	"fmt"

	"repro/internal/nums"
)

// Bcast broadcasts buf (same length everywhere) from view index root using
// the binomial tree algorithm, the conventional MPI choice the paper's
// Section III-A contrasts with. Entry point for world use; hierarchical
// compositions call bcastTree with an explicit tag window.
func Bcast(v View, root int, buf []byte) {
	bcastTree(v, root, buf, v.tagWindow())
}

// bcastTree is the binomial broadcast over a view.
func bcastTree(v View, root int, buf []byte, tag int) {
	size := v.Size()
	checkRoot("bcast", root, size)
	if size == 1 {
		return
	}
	rel := (v.me - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (v.me - mask + size) % size
			v.Recv(src, tag, buf)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dst := (v.me + mask) % size
			v.Send(dst, tag, buf)
		}
		mask >>= 1
	}
}

// Scatter distributes equal chunks of send (root only) so that view index i
// receives send[i*chunk:(i+1)*chunk] into recv. Binomial tree: the root
// sends subtree-sized blocks down, halving at each level.
func Scatter(v View, root int, send, recv []byte) {
	scatterTree(v, root, send, recv, v.tagWindow())
}

func scatterTree(v View, root int, send, recv []byte, tag int) {
	size := v.Size()
	checkRoot("scatter", root, size)
	chunk := len(recv)
	if v.me == root {
		checkChunk("scatter", size, chunk, len(send))
	}
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	rel := (v.me - root + size) % size

	// tmp holds this process's subtree data in relative-rank order.
	var tmp []byte
	cur := 0
	if v.me == root {
		if root == 0 {
			tmp = send // read-only below; sends snapshot as needed
		} else {
			// Rotate so relative rank 0's chunk comes first.
			tmp = make([]byte, len(send))
			v.memcpy(tmp[:len(send)-root*chunk], send[root*chunk:])
			v.memcpy(tmp[len(send)-root*chunk:], send[:root*chunk])
		}
		cur = size * chunk
	} else {
		mask := 1
		for mask < size {
			if rel&mask != 0 {
				src := (v.me - mask + size) % size
				want := mask
				if size-rel < want {
					want = size - rel
				}
				tmp = make([]byte, want*chunk)
				cur = v.Recv(src, tag+maskLog2(mask), tmp)
				break
			}
			mask <<= 1
		}
	}

	// Forward phase: peel off the upper halves of the held block.
	mask := nextPow2(size) >> 1
	for mask > 0 {
		if rel&(mask-1) == 0 && rel+mask < size && cur > mask*chunk {
			dst := (v.me + mask) % size
			v.Send(dst, tag+maskLog2(mask), tmp[mask*chunk:cur])
			cur = mask * chunk
		}
		mask >>= 1
	}
	v.memcpy(recv, tmp[:chunk])
}

// Gather collects each view index i's send chunk into recv (root only) at
// offset i*chunk, via the binomial tree (the mirror image of Scatter).
func Gather(v View, root int, send, recv []byte) {
	gatherTree(v, root, send, recv, v.tagWindow())
}

func gatherTree(v View, root int, send, recv []byte, tag int) {
	size := v.Size()
	checkRoot("gather", root, size)
	chunk := len(send)
	if v.me == root {
		checkChunk("gather", size, chunk, len(recv))
	}
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	rel := (v.me - root + size) % size

	subtree := nextPow2(size) // upper bound; trimmed by size-rel below
	if size-rel < subtree {
		subtree = size - rel
	}
	tmp := make([]byte, subtree*chunk)
	v.memcpy(tmp[:chunk], send)
	cur := chunk

	mask := 1
	for mask < size {
		if rel&mask == 0 {
			if rel+mask < size {
				src := (v.me + mask) % size
				n := v.Recv(src, tag+maskLog2(mask), tmp[mask*chunk:])
				cur = mask*chunk + n
			}
		} else {
			dst := (v.me - mask + size) % size
			v.Send(dst, tag+maskLog2(mask), tmp[:cur])
			return
		}
		mask <<= 1
	}
	// Root: tmp holds data in relative order; rotate into absolute order.
	if root == 0 {
		v.memcpy(recv, tmp)
		return
	}
	v.memcpy(recv[root*chunk:], tmp[:(size-root)*chunk])
	v.memcpy(recv[:root*chunk], tmp[(size-root)*chunk:])
}

// Reduce combines every view index's send vector with op into recv at root
// (recv is only written at root), via the binomial tree.
func Reduce(v View, root int, send, recv []byte, op nums.Op) {
	reduceTree(v, root, send, recv, op, v.tagWindow())
}

func reduceTree(v View, root int, send, recv []byte, op nums.Op, tag int) {
	size := v.Size()
	checkRoot("reduce", root, size)
	if v.me == root && len(recv) != len(send) {
		panic(fmt.Sprintf("coll: reduce buffer mismatch %d != %d", len(recv), len(send)))
	}
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	rel := (v.me - root + size) % size
	acc := make([]byte, len(send))
	v.memcpy(acc, send)
	in := make([]byte, len(send))

	mask := 1
	for mask < size {
		if rel&mask == 0 {
			if rel+mask < size {
				src := (v.me + mask) % size
				v.Recv(src, tag+maskLog2(mask), in)
				v.combine(acc, in, op)
			}
		} else {
			dst := (v.me - mask + size) % size
			v.Send(dst, tag+maskLog2(mask), acc)
			return
		}
		mask <<= 1
	}
	v.memcpy(recv, acc)
}

// checkRoot validates a root index against a view size.
func checkRoot(opName string, root, size int) {
	if root < 0 || root >= size {
		panic(fmt.Sprintf("coll: %s root %d outside view of %d", opName, root, size))
	}
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// prevPow2 returns the largest power of two <= n (n >= 1).
func prevPow2(n int) int {
	p := 1
	for p*2 <= n {
		p <<= 1
	}
	return p
}

// maskLog2 returns log2 of a power-of-two mask, for per-level tag offsets.
func maskLog2(mask int) int {
	l := 0
	for mask > 1 {
		mask >>= 1
		l++
	}
	return l
}
