package coll

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// runWorld builds a world over nodes x ppn and runs body on every rank.
func runWorld(t *testing.T, nodes, ppn int, body func(*mpi.Rank)) {
	t.Helper()
	w, err := mpi.NewWorld(topology.New(nodes, ppn, topology.Block), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatalf("world run (%dx%d): %v", nodes, ppn, err)
	}
}

// shapes covers power-of-two and odd node/rank counts, single node, and
// single rank per node.
var shapes = [][2]int{{1, 1}, {1, 4}, {2, 1}, {2, 3}, {3, 2}, {4, 4}, {5, 3}, {8, 2}, {3, 5}}

// expectedGather builds the reference gathered buffer: rank i's chunk is
// FillBytes(chunk, i).
func expectedGather(size, chunk int) []byte {
	out := make([]byte, size*chunk)
	for i := 0; i < size; i++ {
		nums.FillBytes(out[i*chunk:(i+1)*chunk], i)
	}
	return out
}

// expectedSum builds the reference allreduce-sum result over rank patterns.
func expectedSum(size, elems int) []byte {
	acc := make([]byte, elems*nums.F64Size)
	nums.Fill(acc, 0)
	for i := 1; i < size; i++ {
		b := make([]byte, elems*nums.F64Size)
		nums.Fill(b, i)
		nums.Sum.Combine(acc, b)
	}
	return acc
}

func TestBcastAllShapesAllRoots(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for root := 0; root < size; root += 1 + size/3 {
			sh, root := sh, root
			t.Run(fmt.Sprintf("%dx%d root%d", sh[0], sh[1], root), func(t *testing.T) {
				want := make([]byte, 100)
				nums.FillBytes(want, 42)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					buf := make([]byte, 100)
					if r.Rank() == root {
						copy(buf, want)
					}
					Bcast(World(r), root, buf)
					if !bytes.Equal(buf, want) {
						t.Errorf("rank %d: bcast result wrong", r.Rank())
					}
				})
			})
		}
	}
}

func TestScatterAllShapesAllRoots(t *testing.T) {
	const chunk = 24
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for root := 0; root < size; root += 1 + size/3 {
			sh, root := sh, root
			t.Run(fmt.Sprintf("%dx%d root%d", sh[0], sh[1], root), func(t *testing.T) {
				full := expectedGather(size, chunk)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					var send []byte
					if r.Rank() == root {
						send = append([]byte(nil), full...)
					}
					recv := make([]byte, chunk)
					Scatter(World(r), root, send, recv)
					want := full[r.Rank()*chunk : (r.Rank()+1)*chunk]
					if !bytes.Equal(recv, want) {
						t.Errorf("rank %d got wrong chunk", r.Rank())
					}
				})
			})
		}
	}
}

func TestGatherAllShapesAllRoots(t *testing.T) {
	const chunk = 17
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for root := 0; root < size; root += 1 + size/2 {
			sh, root := sh, root
			t.Run(fmt.Sprintf("%dx%d root%d", sh[0], sh[1], root), func(t *testing.T) {
				want := expectedGather(size, chunk)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, chunk)
					nums.FillBytes(send, r.Rank())
					var recv []byte
					if r.Rank() == root {
						recv = make([]byte, size*chunk)
					}
					Gather(World(r), root, send, recv)
					if r.Rank() == root && !bytes.Equal(recv, want) {
						t.Errorf("root %d gathered wrong data", root)
					}
				})
			})
		}
	}
}

func TestReduceAllShapes(t *testing.T) {
	const elems = 9
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		root := size - 1
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			want := expectedSum(size, elems)
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				send := make([]byte, elems*nums.F64Size)
				nums.Fill(send, r.Rank())
				var recv []byte
				if r.Rank() == root {
					recv = make([]byte, len(send))
				}
				Reduce(World(r), root, send, recv, nums.Sum)
				if r.Rank() == root && !bytes.Equal(recv, want) {
					t.Errorf("reduce at root wrong: got %v want %v",
						nums.F64(recv), nums.F64(want))
				}
			})
		})
	}
}

func testAllgather(t *testing.T, name string, ag func(View, []byte, []byte), pow2Only bool) {
	const chunk = 16
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		if pow2Only && size&(size-1) != 0 {
			continue
		}
		sh := sh
		t.Run(fmt.Sprintf("%s %dx%d", name, sh[0], sh[1]), func(t *testing.T) {
			want := expectedGather(size, chunk)
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				send := make([]byte, chunk)
				nums.FillBytes(send, r.Rank())
				recv := make([]byte, size*chunk)
				ag(World(r), send, recv)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d allgather wrong", r.Rank())
				}
			})
		})
	}
}

func TestAllgatherBruck(t *testing.T)       { testAllgather(t, "bruck", AllgatherBruck, false) }
func TestAllgatherRing(t *testing.T)        { testAllgather(t, "ring", AllgatherRing, false) }
func TestAllgatherRecDoubling(t *testing.T) { testAllgather(t, "recdbl", AllgatherRecDoubling, true) }

func TestAllgatherRecDoublingRejectsNonPow2(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(3, 1, topology.Block), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		AllgatherRecDoubling(World(r), make([]byte, 8), make([]byte, 24))
	})
	if err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

func TestAllgatherAutoSelect(t *testing.T) {
	const chunk = 32
	for _, thresh := range []int{1, 1 << 30} { // force ring, force small path
		thresh := thresh
		t.Run(fmt.Sprintf("thresh%d", thresh), func(t *testing.T) {
			want := expectedGather(6, chunk)
			runWorld(t, 3, 2, func(r *mpi.Rank) {
				send := make([]byte, chunk)
				nums.FillBytes(send, r.Rank())
				recv := make([]byte, 6*chunk)
				Allgather(World(r), send, recv, thresh)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d allgather wrong", r.Rank())
				}
			})
		})
	}
}

func testAllreduce(t *testing.T, name string, ar func(View, []byte, []byte, nums.Op)) {
	for _, sh := range shapes {
		for _, elems := range []int{1, 7, 64, 1000} {
			size := sh[0] * sh[1]
			sh, elems := sh, elems
			t.Run(fmt.Sprintf("%s %dx%d n%d", name, sh[0], sh[1], elems), func(t *testing.T) {
				want := expectedSum(size, elems)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, elems*nums.F64Size)
					nums.Fill(send, r.Rank())
					recv := make([]byte, len(send))
					ar(World(r), send, recv, nums.Sum)
					if !bytes.Equal(recv, want) {
						t.Errorf("rank %d allreduce wrong: got %v want %v",
							r.Rank(), nums.F64(recv)[:min(4, elems)], nums.F64(want)[:min(4, elems)])
					}
				})
			})
		}
	}
}

func TestAllreduceRecDoubling(t *testing.T)  { testAllreduce(t, "recdbl", AllreduceRecDoubling) }
func TestAllreduceRing(t *testing.T)         { testAllreduce(t, "ring", AllreduceRing) }
func TestAllreduceRabenseifner(t *testing.T) { testAllreduce(t, "raben", AllreduceRabenseifner) }

func TestAllreduceOtherOps(t *testing.T) {
	ops := []nums.Op{nums.Max, nums.Min, nums.Prod}
	for _, op := range ops {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			const elems = 5
			want := make([]byte, elems*nums.F64Size)
			nums.Fill(want, 0)
			for i := 1; i < 6; i++ {
				b := make([]byte, elems*nums.F64Size)
				nums.Fill(b, i)
				op.Combine(want, b)
			}
			runWorld(t, 3, 2, func(r *mpi.Rank) {
				send := make([]byte, elems*nums.F64Size)
				nums.Fill(send, r.Rank())
				recv := make([]byte, len(send))
				AllreduceRecDoubling(World(r), send, recv, op)
				if !bytes.Equal(recv, want) {
					t.Errorf("rank %d %s wrong", r.Rank(), op.Name)
				}
			})
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			size := sh[0] * sh[1]
			var maxArrive, minLeave int64
			minLeave = 1 << 62
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				r.Proc().Advance(simtime.Duration(r.Rank()+1) * simtime.Microsecond)
				arrive := int64(r.Now())
				if arrive > maxArrive {
					maxArrive = arrive
				}
				Barrier(World(r))
				leave := int64(r.Now())
				if leave < minLeave {
					minLeave = leave
				}
			})
			if size > 1 && minLeave < maxArrive {
				t.Errorf("a rank left the barrier (%d) before the last arrival (%d)", minLeave, maxArrive)
			}
		})
	}
}

func TestHierCollectives(t *testing.T) {
	const chunk = 16
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			full := expectedGather(size, chunk)
			sum := expectedSum(size, 8)
			root := size / 2
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				me := r.Rank()
				// ScatterHier
				var send []byte
				if me == root {
					send = append([]byte(nil), full...)
				}
				recv := make([]byte, chunk)
				ScatterHier(World(r), root, send, recv)
				if !bytes.Equal(recv, full[me*chunk:(me+1)*chunk]) {
					t.Errorf("rank %d hier scatter wrong", me)
				}
				// GatherHier
				mine := make([]byte, chunk)
				nums.FillBytes(mine, me)
				var gbuf []byte
				if me == root {
					gbuf = make([]byte, size*chunk)
				}
				GatherHier(World(r), root, mine, gbuf)
				if me == root && !bytes.Equal(gbuf, full) {
					t.Errorf("hier gather wrong at root")
				}
				// BcastHier
				bbuf := make([]byte, 64)
				if me == root {
					nums.FillBytes(bbuf, 7)
				}
				BcastHier(World(r), root, bbuf)
				wantB := make([]byte, 64)
				nums.FillBytes(wantB, 7)
				if !bytes.Equal(bbuf, wantB) {
					t.Errorf("rank %d hier bcast wrong", me)
				}
				// AllgatherHier (both leader algorithm paths)
				for _, thresh := range []int{1, 1 << 30} {
					abuf := make([]byte, size*chunk)
					AllgatherHier(World(r), mine, abuf, thresh)
					if !bytes.Equal(abuf, full) {
						t.Errorf("rank %d hier allgather wrong (thresh %d)", me, thresh)
					}
				}
				// AllreduceHier (both leader algorithm paths)
				vec := make([]byte, 64)
				nums.Fill(vec, me)
				for _, thresh := range []int{1, 1 << 30} {
					out := make([]byte, 64)
					AllreduceHier(World(r), vec, out, nums.Sum, thresh)
					if !bytes.Equal(out, sum) {
						t.Errorf("rank %d hier allreduce wrong (thresh %d)", me, thresh)
					}
				}
			})
		})
	}
}

func TestHierRequiresBlockLayout(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 2, topology.RoundRobin), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		BcastHier(World(r), 0, make([]byte, 8))
	})
	if err == nil {
		t.Fatal("round-robin layout accepted by hierarchical collective")
	}
}

func TestViewIndexTranslation(t *testing.T) {
	runWorld(t, 2, 3, func(r *mpi.Rank) {
		nv := NodeView(r)
		if nv.Size() != 3 || nv.Me() != r.Local() {
			t.Errorf("rank %d node view wrong: size %d me %d", r.Rank(), nv.Size(), nv.Me())
		}
		lv := LeaderView(r)
		if lv.Size() != 2 {
			t.Errorf("leader view size %d", lv.Size())
		}
		if r.Local() == 0 && lv.Me() != r.Node() {
			t.Errorf("leader me %d != node %d", lv.Me(), r.Node())
		}
		wv := World(r)
		if wv.Size() != 6 || wv.Me() != r.Rank() {
			t.Error("world view wrong")
		}
	})
}

func TestViewBadIndexPanics(t *testing.T) {
	w := mpi.MustNewWorld(topology.New(2, 2, topology.Block), mpi.DefaultConfig())
	err := w.Run(func(r *mpi.Rank) {
		NodeView(r).Send(5, 0, nil)
	})
	if err == nil {
		t.Fatal("bad view index accepted")
	}
}

func TestBlockCounts(t *testing.T) {
	cnts, disps := blockCounts(10, 4)
	wantC := []int{3, 3, 2, 2}
	wantD := []int{0, 3, 6, 8}
	for i := range wantC {
		if cnts[i] != wantC[i] || disps[i] != wantD[i] {
			t.Fatalf("blockCounts(10,4) = %v %v", cnts, disps)
		}
	}
	total := 0
	for _, c := range cnts {
		total += c
	}
	if total != 10 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestPowHelpers(t *testing.T) {
	if nextPow2(1) != 1 || nextPow2(5) != 8 || nextPow2(8) != 8 {
		t.Fatal("nextPow2 wrong")
	}
	if prevPow2(1) != 1 || prevPow2(5) != 4 || prevPow2(8) != 8 {
		t.Fatal("prevPow2 wrong")
	}
	if maskLog2(1) != 0 || maskLog2(8) != 3 {
		t.Fatal("maskLog2 wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
