package coll

import (
	"bytes"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
)

// TestCommViewCollectives runs every baseline collective over split
// communicators: two disjoint groups execute concurrently and must not
// interfere (distinct tag windows), each producing its own group-local
// result.
func TestCommViewCollectives(t *testing.T) {
	runWorld(t, 2, 4, func(r *mpi.Rank) {
		group := r.Rank() % 2
		c := mpi.WorldComm(r).Split(group, r.Rank())
		v := CommView(c)
		size := v.Size()
		if size != 4 {
			t.Fatalf("group size %d", size)
		}

		// Group-local allreduce: sum of members' world ranks.
		wantSum := 0.0
		for _, wr := range c.WorldRanks() {
			wantSum += float64(wr)
		}
		vec := make([]byte, 8)
		nums.SetF64At(vec, 0, float64(r.Rank()))
		out := make([]byte, 8)
		AllreduceRecDoubling(v, vec, out, nums.Sum)
		if got := nums.F64At(out, 0); got != wantSum {
			t.Errorf("rank %d group %d allreduce = %v, want %v", r.Rank(), group, got, wantSum)
		}

		// Group-local allgather of the members' world ranks.
		const chunk = 8
		mine := make([]byte, chunk)
		nums.FillBytes(mine, r.Rank())
		full := make([]byte, size*chunk)
		AllgatherBruck(v, mine, full)
		for i, wr := range c.WorldRanks() {
			want := make([]byte, chunk)
			nums.FillBytes(want, wr)
			if !bytes.Equal(full[i*chunk:(i+1)*chunk], want) {
				t.Errorf("rank %d group allgather block %d wrong", r.Rank(), i)
			}
		}

		// Group-local bcast from group index 1.
		buf := make([]byte, 32)
		if v.Me() == 1 {
			nums.FillBytes(buf, 100+group)
		}
		Bcast(v, 1, buf)
		want := make([]byte, 32)
		nums.FillBytes(want, 100+group)
		if !bytes.Equal(buf, want) {
			t.Errorf("rank %d group bcast wrong", r.Rank())
		}

		// Group-local ring allreduce and alltoall for coverage of the
		// comm tag space under multi-phase algorithms.
		vec2 := make([]byte, 64)
		nums.Fill(vec2, r.Rank())
		out2 := make([]byte, 64)
		AllreduceRing(v, vec2, out2, nums.Sum)
		wantVec := make([]byte, 64)
		first := true
		for _, wr := range c.WorldRanks() {
			b := make([]byte, 64)
			nums.Fill(b, wr)
			if first {
				copy(wantVec, b)
				first = false
			} else {
				nums.Sum.Combine(wantVec, b)
			}
		}
		if !bytes.Equal(out2, wantVec) {
			t.Errorf("rank %d group ring allreduce wrong", r.Rank())
		}
	})
}

// TestCommViewSurvivesEpochDivergence: one group runs extra collectives so
// its members' world epoch counters diverge from the other group's, then
// both groups run a collective concurrently — the comm-private tag windows
// must keep them isolated.
func TestCommViewSurvivesEpochDivergence(t *testing.T) {
	runWorld(t, 2, 4, func(r *mpi.Rank) {
		group := r.Rank() % 2
		c := mpi.WorldComm(r).Split(group, r.Rank())
		v := CommView(c)

		if group == 0 {
			// Extra group-0-only collectives: epoch counters diverge.
			for i := 0; i < 3; i++ {
				buf := make([]byte, 16)
				Bcast(v, 0, buf)
			}
		}
		// Now both groups allreduce concurrently.
		vec := make([]byte, 8)
		nums.SetF64At(vec, 0, 1)
		out := make([]byte, 8)
		AllreduceRecDoubling(v, vec, out, nums.Sum)
		if got := nums.F64At(out, 0); got != 4 {
			t.Errorf("rank %d group %d sum = %v, want 4", r.Rank(), group, got)
		}
	})
}

// TestCommViewMatchesWorldView: a comm spanning the whole world must give
// identical results to the world view.
func TestCommViewMatchesWorldView(t *testing.T) {
	runWorld(t, 2, 3, func(r *mpi.Rank) {
		c := mpi.WorldComm(r).Split(0, r.Rank())
		v := CommView(c)
		if v.Size() != r.Size() || v.Me() != r.Rank() {
			t.Fatalf("full-world comm view: size %d me %d", v.Size(), v.Me())
		}
		const chunk = 16
		mine := make([]byte, chunk)
		nums.FillBytes(mine, r.Rank())
		got := make([]byte, r.Size()*chunk)
		AllgatherRing(v, mine, got)
		if !bytes.Equal(got, expectedGather(r.Size(), chunk)) {
			t.Errorf("rank %d full-world comm allgather wrong", r.Rank())
		}
	})
}

func TestCommViewHierRejected(t *testing.T) {
	// Hierarchical algorithms are world-scope; using them through a
	// partial comm view would silently assume whole nodes. They must be
	// driven only with world views — document by behaviour: a sub-comm
	// over half the world still runs flat algorithms correctly (above),
	// and the hier entry points operate on the world regardless of any
	// comms in play.
	runWorld(t, 2, 2, func(r *mpi.Rank) {
		for i := 0; i < 2; i++ {
			buf := make([]byte, 24)
			if r.Rank() == 0 {
				nums.FillBytes(buf, 9)
			}
			BcastHier(World(r), 0, buf)
			want := make([]byte, 24)
			nums.FillBytes(want, 9)
			if !bytes.Equal(buf, want) {
				t.Errorf("hier bcast after comm traffic wrong (iter %d)", i)
			}
		}
	})
}
