package coll

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

func TestBcastChainPipelinedCorrect(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, segSize := range []int{64, 4 << 10} {
			for _, root := range []int{0, size - 1} {
				sh, segSize, root := sh, segSize, root
				t.Run(fmt.Sprintf("%dx%d seg%d root%d", sh[0], sh[1], segSize, root), func(t *testing.T) {
					const n = 10_000 // not a multiple of the segment size
					want := make([]byte, n)
					nums.FillBytes(want, 21)
					runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
						buf := make([]byte, n)
						if r.Rank() == root {
							copy(buf, want)
						}
						BcastChainPipelined(World(r), root, buf, segSize)
						if !bytes.Equal(buf, want) {
							t.Errorf("rank %d pipelined bcast wrong", r.Rank())
						}
					})
				})
			}
		}
	}
}

func TestBcastChainPipelinedBeatsUnsegmented(t *testing.T) {
	// For a large buffer over a long chain, pipelining must beat the
	// single-segment chain (which serializes the full buffer per hop).
	const n = 1 << 20
	elapsed := func(segSize int) int64 {
		w := mpi.MustNewWorld(topology.New(8, 1, topology.Block), mpi.DefaultConfig())
		if err := w.Run(func(r *mpi.Rank) {
			buf := make([]byte, n)
			if r.Rank() == 0 {
				nums.FillBytes(buf, 1)
			}
			BcastChainPipelined(World(r), 0, buf, segSize)
		}); err != nil {
			t.Fatal(err)
		}
		return int64(w.Horizon())
	}
	pipelined := elapsed(32 << 10)
	unsegmented := elapsed(n)
	if pipelined >= unsegmented {
		t.Errorf("pipelined (%d) not faster than unsegmented chain (%d)", pipelined, unsegmented)
	}
	// Steady state: the pipelined chain over 8 hops should cost well
	// under half the store-and-forward chain.
	if pipelined > unsegmented*2/3 {
		t.Errorf("pipelining too weak: %d vs %d", pipelined, unsegmented)
	}
}

func TestBcastChainPipelinedValidation(t *testing.T) {
	runExpectError(t, func(r *mpi.Rank) {
		BcastChainPipelined(World(r), 0, make([]byte, 64), 0)
	})
	runExpectError(t, func(r *mpi.Rank) {
		BcastChainPipelined(World(r), 9, make([]byte, 64), 8)
	})
}
