package coll

// Alltoall baselines: the Bruck algorithm for small messages (log rounds,
// each moving half the buffer) and the pairwise-exchange algorithm for
// large ones (size-1 rounds, each a single sendrecv with a distinct peer).
// These are MPICH's standard selections and serve as comparators for the
// multi-object alltoall extension in internal/core.

// AlltoallBruck performs a total exchange: view index i's chunk j of send
// lands at view index j's chunk i of recv. Bruck's algorithm: local
// rotation, log2(size) rounds exchanging the blocks whose index has bit k
// set, and a final inverse rotation. Latency-optimal for small chunks.
func AlltoallBruck(v View, send, recv []byte) {
	alltoallBruck(v, send, recv, v.tagWindow())
}

func alltoallBruck(v View, send, recv []byte, tag int) {
	size := v.Size()
	chunk := chunkOfAlltoall(v, send, recv)
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	me := v.me

	// Phase 1: local rotation — tmp block i = send block (me+i) mod size.
	tmp := make([]byte, len(send))
	v.memcpy(tmp[:(size-me)*chunk], send[me*chunk:])
	v.memcpy(tmp[(size-me)*chunk:], send[:me*chunk])

	// Phase 2: for each bit k, send all blocks with bit k set to me+2^k
	// and receive the same block set from me-2^k.
	stage := 0
	for mask := 1; mask < size; mask <<= 1 {
		dst := (me + mask) % size
		src := (me - mask + size) % size
		// Pack the blocks whose index has this bit set.
		var idx []int
		for b := 0; b < size; b++ {
			if b&mask != 0 {
				idx = append(idx, b)
			}
		}
		out := make([]byte, len(idx)*chunk)
		for i, b := range idx {
			v.memcpy(out[i*chunk:(i+1)*chunk], tmp[b*chunk:(b+1)*chunk])
		}
		in := make([]byte, len(out))
		v.Sendrecv(dst, tag+stage, out, src, tag+stage, in)
		for i, b := range idx {
			v.memcpy(tmp[b*chunk:(b+1)*chunk], in[i*chunk:(i+1)*chunk])
		}
		stage++
	}

	// Phase 3: inverse rotation — recv block j comes from tmp block
	// (me-j) mod size, reversed block order.
	for j := 0; j < size; j++ {
		b := (me - j + size) % size
		v.memcpy(recv[j*chunk:(j+1)*chunk], tmp[b*chunk:(b+1)*chunk])
	}
}

// AlltoallPairwise performs the total exchange in size-1 rounds: in round
// s, exchange chunk (me XOR-free pairing) with peer (me+s) / (me-s). The
// bandwidth-optimal choice for large chunks.
func AlltoallPairwise(v View, send, recv []byte) {
	alltoallPairwise(v, send, recv, v.tagWindow())
}

func alltoallPairwise(v View, send, recv []byte, tag int) {
	size := v.Size()
	chunk := chunkOfAlltoall(v, send, recv)
	v.memcpy(recv[v.me*chunk:(v.me+1)*chunk], send[v.me*chunk:(v.me+1)*chunk])
	for s := 1; s < size; s++ {
		dst := (v.me + s) % size
		src := (v.me - s + size) % size
		v.Sendrecv(dst, tag+s, send[dst*chunk:(dst+1)*chunk],
			src, tag+s, recv[src*chunk:(src+1)*chunk])
	}
}

// Alltoall picks Bruck below the threshold on per-chunk bytes, pairwise at
// or above it (MPICH's tuning).
func Alltoall(v View, send, recv []byte, pairwiseThreshold int) {
	if chunkOfAlltoall(v, send, recv) >= pairwiseThreshold {
		AlltoallPairwise(v, send, recv)
	} else {
		AlltoallBruck(v, send, recv)
	}
}

// chunkOfAlltoall validates the buffers and returns the per-peer chunk.
func chunkOfAlltoall(v View, send, recv []byte) int {
	size := v.Size()
	if len(send) != len(recv) || len(send)%size != 0 {
		panic("coll: alltoall buffers must be equal and size-divisible")
	}
	return len(send) / size
}
