package coll

// AllgatherBruck gathers every view index's send chunk into recv (at offset
// i*chunk for view index i) using the Bruck algorithm: ceil(log2 size)
// rounds of doubling block exchanges followed by a local rotation. The MPI
// standard choice for small messages on non-power-of-two sizes.
func AllgatherBruck(v View, send, recv []byte) {
	allgatherBruck(v, send, recv, v.tagWindow())
}

func allgatherBruck(v View, send, recv []byte, tag int) {
	size := v.Size()
	chunk := len(send)
	checkChunk("allgather", size, chunk, len(recv))
	if size == 1 {
		v.memcpy(recv, send)
		return
	}

	// tmp accumulates blocks in relative order: tmp block i holds the
	// data of view index (me+i) % size.
	tmp := make([]byte, len(recv))
	v.memcpy(tmp[:chunk], send)

	have := 1
	step := 0
	for have < size {
		cnt := have
		if size-have < cnt {
			cnt = size - have
		}
		src := (v.me + have) % size
		dst := (v.me - have + size) % size
		v.Sendrecv(dst, tag+step, tmp[:cnt*chunk], src, tag+step, tmp[have*chunk:(have+cnt)*chunk])
		have += cnt
		step++
	}

	// Rotate into absolute order: tmp block i belongs to view index
	// (me+i) % size.
	v.memcpy(recv[v.me*chunk:], tmp[:(size-v.me)*chunk])
	v.memcpy(recv[:v.me*chunk], tmp[(size-v.me)*chunk:])
}

// AllgatherRecDoubling is the recursive-doubling allgather, the MPI standard
// choice for small messages on power-of-two sizes. It panics if the view
// size is not a power of two.
func AllgatherRecDoubling(v View, send, recv []byte) {
	allgatherRecDoubling(v, send, recv, v.tagWindow())
}

func allgatherRecDoubling(v View, send, recv []byte, tag int) {
	size := v.Size()
	chunk := len(send)
	checkChunk("allgather", size, chunk, len(recv))
	if size&(size-1) != 0 {
		panic("coll: recursive-doubling allgather requires power-of-two size")
	}
	v.memcpy(recv[v.me*chunk:(v.me+1)*chunk], send)
	mask := 1
	step := 0
	for mask < size {
		peer := v.me ^ mask
		myBlock := v.me &^ (mask - 1)
		peerBlock := peer &^ (mask - 1)
		v.Sendrecv(peer, tag+step,
			recv[myBlock*chunk:(myBlock+mask)*chunk],
			peer, tag+step,
			recv[peerBlock*chunk:(peerBlock+mask)*chunk])
		mask <<= 1
		step++
	}
}

// AllgatherRing is the bandwidth-optimal ring allgather used by MPI
// libraries for large messages: size-1 steps, each passing one block to the
// right neighbour.
func AllgatherRing(v View, send, recv []byte) {
	allgatherRing(v, send, recv, v.tagWindow())
}

func allgatherRing(v View, send, recv []byte, tag int) {
	size := v.Size()
	chunk := len(send)
	checkChunk("allgather", size, chunk, len(recv))
	v.memcpy(recv[v.me*chunk:(v.me+1)*chunk], send)
	if size == 1 {
		return
	}
	left := (v.me - 1 + size) % size
	right := (v.me + 1) % size
	for s := 0; s < size-1; s++ {
		sendBlock := (v.me - s + size*2) % size
		recvBlock := (v.me - s - 1 + size*2) % size
		v.Sendrecv(right, tag+s,
			recv[sendBlock*chunk:(sendBlock+1)*chunk],
			left, tag+s,
			recv[recvBlock*chunk:(recvBlock+1)*chunk])
	}
}

// Allgather picks the conventional MPI algorithm for the view size (the
// selection MPICH documents): recursive doubling for power-of-two sizes
// with small payloads, Bruck for non-power-of-two small payloads, and the
// ring for large payloads.
func Allgather(v View, send, recv []byte, ringThreshold int) {
	total := len(send) * v.Size()
	switch {
	case total > ringThreshold:
		AllgatherRing(v, send, recv)
	case v.Size()&(v.Size()-1) == 0:
		AllgatherRecDoubling(v, send, recv)
	default:
		AllgatherBruck(v, send, recv)
	}
}
