package coll

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

func expectedAlltoall(size, chunk, me int) []byte {
	out := make([]byte, size*chunk)
	for src := 0; src < size; src++ {
		nums.FillBytes(out[src*chunk:(src+1)*chunk], src*1000+me)
	}
	return out
}

func testAlltoall(t *testing.T, name string, a2a func(View, []byte, []byte), chunk int) {
	t.Helper()
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		sh := sh
		t.Run(fmt.Sprintf("%s %dx%d", name, sh[0], sh[1]), func(t *testing.T) {
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				send := make([]byte, size*chunk)
				for j := 0; j < size; j++ {
					nums.FillBytes(send[j*chunk:(j+1)*chunk], r.Rank()*1000+j)
				}
				recv := make([]byte, size*chunk)
				a2a(World(r), send, recv)
				if !bytes.Equal(recv, expectedAlltoall(size, chunk, r.Rank())) {
					t.Errorf("rank %d %s wrong", r.Rank(), name)
				}
			})
		})
	}
}

func TestAlltoallBruck(t *testing.T)    { testAlltoall(t, "bruck", AlltoallBruck, 16) }
func TestAlltoallPairwise(t *testing.T) { testAlltoall(t, "pairwise", AlltoallPairwise, 16) }

func TestAlltoallAutoSelect(t *testing.T) {
	for _, thresh := range []int{1, 1 << 30} {
		thresh := thresh
		testAlltoall(t, fmt.Sprintf("auto-%d", thresh),
			func(v View, s, r []byte) { Alltoall(v, s, r, thresh) }, 32)
	}
}

func TestAlltoallBadBuffersPanic(t *testing.T) {
	runExpectError(t, func(r *mpi.Rank) {
		AlltoallBruck(World(r), make([]byte, 7), make([]byte, 7))
	})
}

func TestBcastScatterAllgather(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			n := size * 96 // divisible by size
			want := make([]byte, n)
			nums.FillBytes(want, 5)
			for _, root := range []int{0, size - 1} {
				root := root
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					buf := make([]byte, n)
					if r.Rank() == root {
						copy(buf, want)
					}
					BcastScatterAllgather(World(r), root, buf)
					if !bytes.Equal(buf, want) {
						t.Errorf("rank %d vdg bcast wrong (root %d)", r.Rank(), root)
					}
				})
			}
		})
	}
}

func TestBcastScatterAllgatherIndivisiblePanics(t *testing.T) {
	runExpectError(t, func(r *mpi.Rank) {
		BcastScatterAllgather(World(r), 0, make([]byte, 7))
	})
}

func TestReduceScatterGather(t *testing.T) {
	for _, sh := range shapes {
		size := sh[0] * sh[1]
		for _, elems := range []int{1, 64, 1000} {
			sh, elems := sh, elems
			t.Run(fmt.Sprintf("%dx%d n%d", sh[0], sh[1], elems), func(t *testing.T) {
				root := size / 2
				want := expectedSum(size, elems)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, elems*nums.F64Size)
					nums.Fill(send, r.Rank())
					var recv []byte
					if r.Rank() == root {
						recv = make([]byte, len(send))
					}
					ReduceScatterGather(World(r), root, send, recv, nums.Sum)
					if r.Rank() == root && !bytes.Equal(recv, want) {
						t.Errorf("rsg reduce wrong: got %v want %v",
							nums.F64(recv)[:min(3, elems)], nums.F64(want)[:min(3, elems)])
					}
				})
			})
		}
	}
}

func TestReduceHier(t *testing.T) {
	for _, sh := range [][2]int{{2, 3}, {4, 4}, {3, 5}} {
		for _, elems := range []int{16, 4096} { // below and above the large threshold
			size := sh[0] * sh[1]
			sh, elems := sh, elems
			t.Run(fmt.Sprintf("%dx%d n%d", sh[0], sh[1], elems), func(t *testing.T) {
				root := size - 1 // non-leader root
				want := expectedSum(size, elems)
				runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
					send := make([]byte, elems*nums.F64Size)
					nums.Fill(send, r.Rank())
					var recv []byte
					if r.Rank() == root {
						recv = make([]byte, len(send))
					}
					ReduceHier(World(r), root, send, recv, nums.Sum, 8<<10)
					if r.Rank() == root && !bytes.Equal(recv, want) {
						t.Errorf("hier reduce wrong")
					}
				})
			})
		}
	}
}

// runExpectError runs a 2x2 world expecting the body to fail.
func runExpectError(t *testing.T, body func(*mpi.Rank)) {
	t.Helper()
	w, err := mpi.NewWorld(clusterForTest(), mpi.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err == nil {
		t.Fatal("expected failure, got success")
	}
}

func clusterForTest() *topology.Cluster { return topology.New(2, 2, topology.Block) }
