package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/topology"
)

// NeighborAlltoallGrid is the MPI-3-style neighborhood exchange over a 2D
// Cartesian grid: every rank swaps one equal-size block with each existing
// North/South/West/East neighbour in a single call — the halo-exchange
// primitive stencil codes otherwise hand-roll. sendBlocks and recvBlocks
// hold four slots in N,S,W,E order; nil slots at domain boundaries are
// skipped (their recv slots are left untouched).
func NeighborAlltoallGrid(v View, g topology.Grid, sendBlocks, recvBlocks [4][]byte) {
	if g.Rows()*g.Cols() != v.Size() {
		panic(fmt.Sprintf("coll: %dx%d grid over %d ranks", g.Rows(), g.Cols(), v.Size()))
	}
	tag := v.tagWindow()
	dirs := [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} // N,S,W,E
	// A message sent north is received by the peer as its south block:
	// direction d pairs with opposite[d].
	opposite := [4]int{1, 0, 3, 2}

	var reqs []*mpi.Request
	for d, dir := range dirs {
		peer := g.Neighbor(v.me, dir[0], dir[1])
		if peer < 0 {
			continue
		}
		if sendBlocks[d] == nil || recvBlocks[d] == nil {
			panic(fmt.Sprintf("coll: neighbor %d exists but its block slot is nil", d))
		}
		reqs = append(reqs,
			v.Irecv(peer, tag+opposite[d], recvBlocks[d]),
			v.Isend(peer, tag+d, sendBlocks[d]))
	}
	v.r.Waitall(reqs...)
}
