// Package coll implements the baseline MPI collective algorithms the paper
// compares against: binomial trees (bcast, scatter, gather, reduce), the
// Bruck and recursive-doubling and ring allgathers, recursive-doubling,
// ring, and Rabenseifner allreduces, a dissemination barrier, and the
// hierarchical (leader-per-node) compositions mainstream MPI libraries use.
//
// Every algorithm works on a View — a communicator-like window over a
// subset of ranks — so the same code runs flat over the world, over one
// node's ranks, or over the per-node leaders inside hierarchical
// compositions. All algorithms assume commutative reduction operators (the
// nums operators all are).
//
// Tag discipline: each public entry point draws a fresh epoch from the rank
// and shifts it left by tagShift, giving every collective invocation a
// private tag window; internal steps and nested sub-collectives carve
// disjoint sub-windows so no two concurrent logical messages between a pair
// ever share a tag.
package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/shm"
)

// tagShift sizes each collective invocation's private tag window (2^24 tags:
// enough for a flat ring over millions of ranks and nested phase offsets).
const tagShift = 24

// phaseStride separates nested sub-collectives' tag ranges within a window.
const phaseStride = 1 << 20

// View is a communicator-like window over a subset of the world's ranks.
// The zero value is invalid; construct with World, NodeView, LeaderView or
// CommView.
type View struct {
	r      *mpi.Rank
	ranks  []int // world ranks in view order; nil means the whole world
	me     int   // caller's index within the view
	window func() int
}

// CommView adapts an mpi communicator for the collective algorithms. Tag
// windows come from the communicator's private space, so concurrent
// collectives on disjoint communicators cannot interfere even when the
// members' world epoch counters have diverged.
func CommView(c *mpi.Comm) View {
	var ranks []int
	if c.Size() != c.World().Size() {
		ranks = c.WorldRanks()
	}
	return View{r: c.World(), ranks: ranks, me: c.Rank(), window: c.NextWindow}
}

// World returns the view spanning every rank.
func World(r *mpi.Rank) View {
	return View{r: r, me: r.Rank()}
}

// NodeView returns the view over the caller's node, ordered by local rank.
func NodeView(r *mpi.Rank) View {
	return View{r: r, ranks: r.Cluster().NodeRanks(r.Node()), me: r.Local()}
}

// LeaderView returns the view over each node's local rank 0, ordered by
// node id. The caller must itself be a leader to communicate through it.
func LeaderView(r *mpi.Rank) View {
	c := r.Cluster()
	leaders := make([]int, c.Nodes())
	for n := range leaders {
		leaders[n] = c.Rank(n, 0)
	}
	return View{r: r, ranks: leaders, me: r.Node()}
}

// Size returns the number of ranks in the view.
func (v View) Size() int {
	if v.ranks == nil {
		return v.r.Size()
	}
	return len(v.ranks)
}

// Me returns the caller's index within the view.
func (v View) Me() int { return v.me }

// Rank returns the underlying MPI rank.
func (v View) Rank() *mpi.Rank { return v.r }

// worldRank translates a view index to a world rank.
func (v View) worldRank(i int) int {
	if v.ranks == nil {
		return i
	}
	if i < 0 || i >= len(v.ranks) {
		panic(fmt.Sprintf("coll: view index %d outside view of %d", i, len(v.ranks)))
	}
	return v.ranks[i]
}

// Isend starts a nonblocking send to view index dst.
func (v View) Isend(dst, tag int, data []byte) *mpi.Request {
	return v.r.Isend(v.worldRank(dst), tag, data)
}

// Irecv posts a nonblocking receive from view index src.
func (v View) Irecv(src, tag int, buf []byte) *mpi.Request {
	return v.r.Irecv(v.worldRank(src), tag, buf)
}

// Send is a blocking send to view index dst.
func (v View) Send(dst, tag int, data []byte) { v.r.Send(v.worldRank(dst), tag, data) }

// Recv is a blocking receive from view index src.
func (v View) Recv(src, tag int, buf []byte) int {
	return v.r.Recv(v.worldRank(src), tag, buf)
}

// Sendrecv exchanges with two view peers without deadlock.
func (v View) Sendrecv(dst, sendTag int, sendData []byte, src, recvTag int, recvBuf []byte) int {
	return v.r.Sendrecv(v.worldRank(dst), sendTag, sendData, v.worldRank(src), recvTag, recvBuf)
}

// shm returns the caller's node shared-memory domain for local cost charges.
func (v View) shm() *shm.Node { return v.r.Env().Shm() }

// combine folds src into acc with the reduction cost charged.
func (v View) combine(acc, src []byte, op nums.Op) {
	v.shm().Combine(v.r.Proc(), acc, src, op)
}

// memcpy performs a charged local copy.
func (v View) memcpy(dst, src []byte) { v.shm().Memcpy(v.r.Proc(), dst, src) }

// newTagWindow draws the invocation-private tag window base.
func newTagWindow(r *mpi.Rank) int { return int(r.NextEpoch()) << tagShift }

// tagWindow draws a window from the view's source: the communicator's
// private space for CommViews, the world epoch counter otherwise.
func (v View) tagWindow() int {
	if v.window != nil {
		return v.window()
	}
	return newTagWindow(v.r)
}

// checkChunk validates the usual "recv is size chunks of send" contract.
func checkChunk(opName string, size, chunk, total int) {
	if chunk < 0 || total != size*chunk {
		panic(fmt.Sprintf("coll: %s buffer mismatch: %d ranks x %dB chunk vs %dB total",
			opName, size, chunk, total))
	}
}
