package coll

import (
	"fmt"

	"repro/internal/nums"
)

// Large-message baselines used by the library profiles for the extension
// collectives: the van de Geijn broadcast (scatter + ring allgather) and
// the reduce-scatter + gather reduce, both MPICH's standard large-message
// selections.

// BcastScatterAllgather broadcasts buf from root by scattering equal chunks
// down the binomial tree and reassembling them with the ring allgather —
// bandwidth-optimal for large buffers. len(buf) must divide by the view
// size; callers fall back to the binomial tree otherwise.
func BcastScatterAllgather(v View, root int, buf []byte) {
	bcastScatterAllgather(v, root, buf, v.tagWindow())
}

func bcastScatterAllgather(v View, root int, buf []byte, tag int) {
	size := v.Size()
	if len(buf)%size != 0 {
		panic(fmt.Sprintf("coll: van de Geijn bcast needs size-divisible buffer (%dB / %d)", len(buf), size))
	}
	chunk := len(buf) / size
	piece := make([]byte, chunk)
	scatterTree(v, root, buf, piece, tag)
	allgatherRing(v, piece, buf, tag+phaseStride)
}

// ReduceScatterGather reduces to root via a ring reduce-scatter followed by
// a chunk gather: after the ring pass, view index i owns the fully reduced
// block (i+1) mod size and ships it straight to the root. recv is
// significant only at root; op must be commutative.
func ReduceScatterGather(v View, root int, send, recv []byte, op nums.Op) {
	reduceScatterGather(v, root, send, recv, op, v.tagWindow())
}

// reduceScatterGather is the tag-parameterized form for use inside
// hierarchical compositions, where only a subset of ranks executes it and
// drawing a fresh epoch would desynchronize the per-rank epoch counters.
func reduceScatterGather(v View, root int, send, recv []byte, op nums.Op, tag int) {
	if v.me == root && len(recv) != len(send) {
		panic(fmt.Sprintf("coll: reduce buffer mismatch %d != %d", len(recv), len(send)))
	}
	if len(send)%nums.F64Size != 0 {
		panic(fmt.Sprintf("coll: reduce buffer %dB is not a float64 vector", len(send)))
	}
	size := v.Size()
	if size == 1 {
		v.memcpy(recv, send)
		return
	}
	elems := len(send) / nums.F64Size
	cnts, disps := blockCounts(elems, size)
	block := func(b []byte, i int) []byte {
		return b[disps[i]*nums.F64Size : (disps[i]+cnts[i])*nums.F64Size]
	}
	acc := make([]byte, len(send))
	v.memcpy(acc, send)
	tmp := make([]byte, (elems/size+1)*nums.F64Size)
	left := (v.me - 1 + size) % size
	right := (v.me + 1) % size
	for s := 0; s < size-1; s++ {
		sendBlock := (v.me - s + size*2) % size
		recvBlock := (v.me - s - 1 + size*2) % size
		in := tmp[:cnts[recvBlock]*nums.F64Size]
		v.Sendrecv(right, tag+s, block(acc, sendBlock), left, tag+s, in)
		v.combine(block(acc, recvBlock), in, op)
	}
	// View index i owns block (i+1) mod size; gather the blocks at root.
	own := (v.me + 1) % size
	gatherTag := tag + phaseStride
	if v.me == root {
		for i := 0; i < size; i++ {
			b := (i + 1) % size
			if cnts[b] == 0 {
				continue
			}
			if i == root {
				v.memcpy(block(recv, b), block(acc, b))
				continue
			}
			v.Recv(i, gatherTag+b, block(recv, b))
		}
		return
	}
	if cnts[own] > 0 {
		v.Send(root, gatherTag+own, block(acc, own))
	}
}

// ReduceHier is the leader-based reduce used by the hierarchical profiles:
// intranode reduce to the leader, a flat reduce among leaders toward the
// root's leader, then a hop to the root if it is not a leader.
func ReduceHier(r View, root int, send, recv []byte, op nums.Op, largeThreshold int) {
	requireBlock(r, "reduce")
	tag := newTagWindow(r.r)
	c := r.r.Cluster()
	checkRoot("reduce", root, c.Size())
	rootNode := c.Node(root)
	leaderOfRoot := c.Rank(rootNode, 0)

	partial := make([]byte, len(send))
	reduceTree(NodeView(r.r), 0, send, partial, op, tag)

	target := recv
	if r.r.Rank() == leaderOfRoot && root != leaderOfRoot {
		target = make([]byte, len(send))
	}
	if isLeader(r) {
		lv := LeaderView(r.r)
		if len(send) >= largeThreshold {
			reduceScatterGather(lv, rootNode, partial, target, op, tag+phaseStride)
		} else {
			reduceTree(lv, rootNode, partial, target, op, tag+phaseStride)
		}
	}
	if root != leaderOfRoot {
		if r.r.Rank() == leaderOfRoot {
			r.r.Send(root, tag+2*phaseStride, target)
		}
		if r.Me() == root {
			r.r.Recv(leaderOfRoot, tag+2*phaseStride, recv)
		}
	}
}
