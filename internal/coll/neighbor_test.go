package coll

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

func TestNeighborAlltoallGrid(t *testing.T) {
	for _, sh := range [][2]int{{2, 2}, {3, 2}, {4, 4}, {2, 3}} {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(t *testing.T) {
			size := sh[0] * sh[1]
			grid := topology.SquarestGrid(size)
			const n = 40
			runWorld(t, sh[0], sh[1], func(r *mpi.Rank) {
				me := r.Rank()
				dirs := [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
				var send, recv [4][]byte
				for d, dir := range dirs {
					if grid.Neighbor(me, dir[0], dir[1]) < 0 {
						continue
					}
					send[d] = make([]byte, n)
					nums.FillBytes(send[d], me*10+d)
					recv[d] = make([]byte, n)
				}
				NeighborAlltoallGrid(World(r), grid, send, recv)
				// The block received from direction d is the peer's
				// block sent in the opposite direction.
				opposite := [4]int{1, 0, 3, 2}
				for d, dir := range dirs {
					peer := grid.Neighbor(me, dir[0], dir[1])
					if peer < 0 {
						continue
					}
					want := make([]byte, n)
					nums.FillBytes(want, peer*10+opposite[d])
					if !bytes.Equal(recv[d], want) {
						t.Errorf("rank %d direction %d: wrong halo from %d", me, d, peer)
					}
				}
			})
		})
	}
}

func TestNeighborAlltoallValidation(t *testing.T) {
	runExpectError(t, func(r *mpi.Rank) {
		NeighborAlltoallGrid(World(r), topology.NewGrid(2, 1, 2), [4][]byte{}, [4][]byte{})
	})
	runExpectError(t, func(r *mpi.Rank) {
		// Grid matches but a needed slot is nil.
		NeighborAlltoallGrid(World(r), topology.SquarestGrid(r.Size()), [4][]byte{}, [4][]byte{})
	})
}

func TestNeighborAlltoallRepeated(t *testing.T) {
	// Back-to-back halo exchanges (the stencil steady state) must not
	// cross-match between iterations.
	runWorld(t, 2, 2, func(r *mpi.Rank) {
		grid := topology.SquarestGrid(r.Size())
		dirs := [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
		for it := 0; it < 3; it++ {
			var send, recv [4][]byte
			for d, dir := range dirs {
				if grid.Neighbor(r.Rank(), dir[0], dir[1]) < 0 {
					continue
				}
				send[d] = make([]byte, 8)
				nums.FillBytes(send[d], it*100+r.Rank()*10+d)
				recv[d] = make([]byte, 8)
			}
			NeighborAlltoallGrid(World(r), grid, send, recv)
			opposite := [4]int{1, 0, 3, 2}
			for d, dir := range dirs {
				peer := grid.Neighbor(r.Rank(), dir[0], dir[1])
				if peer < 0 {
					continue
				}
				want := make([]byte, 8)
				nums.FillBytes(want, it*100+peer*10+opposite[d])
				if !bytes.Equal(recv[d], want) {
					t.Errorf("iter %d rank %d dir %d wrong", it, r.Rank(), d)
				}
			}
		}
	})
}
