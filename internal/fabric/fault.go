package fabric

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/simtime"
)

// FaultStats aggregates the fabric-level fault counters. Under a loss plan,
// Retransmits == Drops + Corruptions by construction: every failed attempt
// is followed by exactly one retransmission (the final permitted attempt
// always delivers), which is the accounting invariant the resilience
// acceptance tests pin.
type FaultStats struct {
	Drops       int64 // eager attempts lost in the fabric
	Corruptions int64 // eager attempts discarded by the receiver's checksum
	Retransmits int64 // retransmissions issued (one per failed attempt)
	Stalls      int64 // sends delayed by a frozen injection queue
	DeadDrops   int64 // deliveries discarded because the destination endpoint is dead
}

// InjectFaults attaches a fault plan to the fabric. Must be called before
// any traffic; a nil plan (or never calling this) leaves every send on the
// exact fault-free code path. The plan is immutable and may be shared; all
// mutable state (per-endpoint send sequence numbers, counters) lives here.
func (f *Fabric) InjectFaults(p *fault.Plan) {
	f.faults = p
	if p != nil && p.LossEnabled() {
		f.sendSeq = make([]uint64, f.nodes*f.queues)
	}
}

// Faults returns the attached fault plan (nil when fault-free).
func (f *Fabric) Faults() *fault.Plan { return f.faults }

// FaultStats returns cumulative fault counters (zero when fault-free).
func (f *Fabric) FaultStats() FaultStats { return f.fstats }

// linkService returns the service time of n bytes at a node link at virtual
// time at, applying any active degradation window. Fault-free (and outside
// any window) this is exactly the base max(o_l, M/B_l) expression, so
// timings are bit-identical with no plan attached.
func (f *Fabric) linkService(node int, at simtime.Time, n int) simtime.Duration {
	pr := f.params
	if f.faults != nil && f.faults.Degraded(node, at) {
		bw, ov := f.faults.LinkScale(node, at)
		return maxDuration(simtime.Duration(float64(pr.LinkOverhead)*ov),
			simtime.TransferTime(n, pr.LinkBandwidth*bw))
	}
	return maxDuration(pr.LinkOverhead, simtime.TransferTime(n, pr.LinkBandwidth))
}

// bookFailedAttempt charges the resources one lost or corrupted eager
// attempt genuinely consumed: the injection queue and tx link always (the
// message left the node before vanishing); for a corrupted attempt also the
// wire, rx link and drain queue (the receiver processed it before the
// checksum failed). Returns the time the attempt cleared the injection
// queue — the sender's retransmission timer runs from there.
//
// Wasted attempts occupy the same serial stations as real traffic, which is
// the mechanism behind the measurable multi-object difference: designs with
// more in-flight messages pay retransmission contention differently.
func (f *Fabric) bookFailedAttempt(src, dst Endpoint, n int, start simtime.Time, outcome fault.Outcome) simtime.Time {
	pr := f.params
	qService := pr.QueueOverhead + simtime.TransferTime(n, pr.QueueBandwidth)
	qStart, qDone := f.txQueue[f.index(src)].Use(start, qService)
	lStart, lDone := f.txLink[src.Node].Use(qDone, f.linkService(src.Node, qDone, n))
	f.rate[src.Node].add(lStart)

	var rlStart, rlDone, rqStart, rqDone simtime.Time
	if outcome == fault.Corrupted {
		arrive := lDone.Add(pr.WireLatency)
		rlStart, rlDone = f.rxLink[dst.Node].Use(arrive, f.linkService(dst.Node, arrive, n))
		rService := pr.RecvOverhead + simtime.TransferTime(n, pr.QueueBandwidth)
		rqStart, rqDone = f.rxQueue[f.index(dst)].Use(rlDone, rService)
	}

	if outcome == fault.Corrupted {
		f.fstats.Corruptions++
	} else {
		f.fstats.Drops++
	}
	f.fstats.Retransmits++

	rec := f.rec
	if rec == nil {
		return qDone
	}
	reg := rec.Metrics()
	if outcome == fault.Corrupted {
		reg.Counter("fault.corruptions").Add(1)
	} else {
		reg.Counter("fault.drops").Add(1)
	}
	reg.Counter("fault.retransmits").Add(1)
	if rec.Lite() {
		return qDone
	}
	name := fmt.Sprintf("%dB n%d→n%d %s", n, src.Node, dst.Node, outcome)
	cat := "fault-" + outcome.String()
	rec.ResourceSpan(fmt.Sprintf("n%d q%d tx", src.Node, src.Queue), name, cat, qStart, qDone)
	rec.ResourceSpan(fmt.Sprintf("n%d link-tx", src.Node), name, cat, lStart, lDone)
	if outcome == fault.Corrupted {
		rec.ResourceSpan(fmt.Sprintf("n%d link-rx", dst.Node), name, cat, rlStart, rlDone)
		rec.ResourceSpan(fmt.Sprintf("n%d q%d rx", dst.Node, dst.Queue), name, cat, rqStart, rqDone)
	}
	return qDone
}

// KillEndpoint marks an endpoint permanently dead (fail-stop): from now on
// every delivery destined to it is silently discarded instead of entering its
// inbox, modelling a NIC whose host process has died. The sender still pays
// the full network traversal — fail-stop silence is indistinguishable from a
// slow receiver at the fabric level; detection is the MPI layer's job.
func (f *Fabric) KillEndpoint(ep Endpoint) {
	if f.dead == nil {
		f.dead = make([]bool, f.nodes*f.queues)
	}
	f.dead[f.index(ep)] = true
}

// EndpointDead reports whether KillEndpoint has been called on ep.
func (f *Fabric) EndpointDead(ep Endpoint) bool {
	return f.dead != nil && f.dead[f.index(ep)]
}

// recordDeadDrop notes a delivery discarded at a dead destination endpoint.
func (f *Fabric) recordDeadDrop(dst Endpoint) {
	f.fstats.DeadDrops++
	if f.rec != nil {
		f.rec.Metrics().Counter("fault.dead_drops").Add(1)
	}
}

// recordStall notes a send delayed by a frozen injection queue.
func (f *Fabric) recordStall(src Endpoint, from, until simtime.Time) {
	f.fstats.Stalls++
	rec := f.rec
	if rec == nil {
		return
	}
	rec.Metrics().Counter("fault.stalls").Add(1)
	if !rec.Lite() {
		rec.ResourceSpan(fmt.Sprintf("n%d q%d tx", src.Node, src.Queue),
			"nic stall", "fault-stall", from, until)
	}
}
