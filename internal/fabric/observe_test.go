package fabric

import (
	"testing"

	"repro/internal/simtime"
)

// contentionParams gives round numbers so every station booking below can
// be computed by hand: 1 B/ns queue DMA, 2 B/ns link, 100 ns wire.
func contentionParams() Params {
	return Params{
		WireLatency:    100 * simtime.Nanosecond,
		QueueOverhead:  50 * simtime.Nanosecond,
		QueueBandwidth: 1.0e9, // 1 B/ns
		LinkOverhead:   10 * simtime.Nanosecond,
		LinkBandwidth:  2.0e9, // 2 B/ns
		RecvOverhead:   20 * simtime.Nanosecond,
		SendCPU:        5 * simtime.Nanosecond,
		EagerLimit:     1 << 20,
	}
}

// TestLinkReportMultiQueueContention runs the canonical 2-node 2-queue
// scenario — both of node 0's queues inject a 1000 B eager message to node 1
// at t=0 — and checks Stats, NodeStats, LinkReport and MessageRateWindow
// against hand-computed values.
//
// Per-sender timeline (independent queues, shared link):
//
//	CPUDone   = 5 ns
//	qService  = 50 + 1000/1 = 1050 ns  → both qDone = 1055 ns
//	lService  = max(10, 1000/2) = 500 ns
//	txLink    = [1055,1555] and [1555,2055] (earliest-fit, serial)
//	arrive    = lDone + 100 → 1655 / 2155
//	rxLink    = [1655,2155] and [2155,2655]
//	rService  = 20 + 1000 = 1020 ns → rxQueue [2155,3175] / [2655,3675]
func TestLinkReportMultiQueueContention(t *testing.T) {
	pr := contentionParams()
	f := MustNew(2, 2, pr)
	e := simtime.NewEngine()
	const n = 1000

	sendDone := make([]simtime.Time, 2)
	recvAt := make([]simtime.Time, 2)
	for q := 0; q < 2; q++ {
		q := q
		e.Spawn("sender", func(p *simtime.Proc) {
			sendDone[q] = f.Send(p, Endpoint{0, q}, Endpoint{1, q}, n, nil)
		})
		e.Spawn("recver", func(p *simtime.Proc) {
			f.Inbox(Endpoint{1, q}).Get(p, nil)
			recvAt[q] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	ns := func(x int64) simtime.Duration { return simtime.Duration(x) * simtime.Nanosecond }
	at := func(x int64) simtime.Time { return simtime.Time(0).Add(ns(x)) }

	// Eager sends complete at their (uncontended) queue stage.
	for q, d := range sendDone {
		if d != at(1055) {
			t.Errorf("sender %d done at %v, want %v", q, d, at(1055))
		}
	}
	// Receives land at the serialized rx-queue completions, one per slot.
	gotRecv := []simtime.Time{recvAt[0], recvAt[1]}
	if gotRecv[0] > gotRecv[1] {
		gotRecv[0], gotRecv[1] = gotRecv[1], gotRecv[0]
	}
	if gotRecv[0] != at(3175) || gotRecv[1] != at(3675) {
		t.Errorf("recv times %v, want [%v %v]", gotRecv, at(3175), at(3675))
	}

	s := f.Stats()
	if s.Messages != 2 || s.Bytes != 2*n || s.Eager != 2 || s.Rendezvous != 0 {
		t.Errorf("Stats = %+v, want 2 eager messages, %d bytes", s, 2*n)
	}
	n0, n1 := f.NodeStats(0), f.NodeStats(1)
	if n0.Messages != 2 || n0.Bytes != 2*n || n0.Eager != 2 || n0.Rendezvous != 0 {
		t.Errorf("NodeStats(0) = %+v, want all traffic source-side", n0)
	}
	if n1.Messages != 0 {
		t.Errorf("NodeStats(1) = %+v, want zero (source-side accounting)", n1)
	}

	// Node 0: tx side only. Link busy 2×500 ns; the two injection queues
	// each busy 1050 ns; second link booking drains at 2055 ns.
	l0 := f.Link(0)
	if l0.TxBusy != ns(1000) {
		t.Errorf("node0 TxBusy = %v, want %v", l0.TxBusy, ns(1000))
	}
	if l0.TxLast != at(2055) {
		t.Errorf("node0 TxLast = %v, want %v", l0.TxLast, at(2055))
	}
	if l0.TxQueueBusy != ns(2100) {
		t.Errorf("node0 TxQueueBusy = %v, want %v", l0.TxQueueBusy, ns(2100))
	}
	if l0.TxQueueLast != at(1055) {
		t.Errorf("node0 TxQueueLast = %v, want %v", l0.TxQueueLast, at(1055))
	}
	if l0.RxBusy != 0 || l0.RxQueueBusy != 0 {
		t.Errorf("node0 rx side busy (%v, %v), want idle", l0.RxBusy, l0.RxQueueBusy)
	}

	// Node 1: rx side only. Link busy 2×500 ns ending at 2655 ns; drain
	// queues each busy 1020 ns, the later one ending at 3675 ns.
	l1 := f.Link(1)
	if l1.RxBusy != ns(1000) {
		t.Errorf("node1 RxBusy = %v, want %v", l1.RxBusy, ns(1000))
	}
	if l1.RxLast != at(2655) {
		t.Errorf("node1 RxLast = %v, want %v", l1.RxLast, at(2655))
	}
	if l1.RxQueueBusy != ns(2040) {
		t.Errorf("node1 RxQueueBusy = %v, want %v", l1.RxQueueBusy, ns(2040))
	}
	if l1.RxQueueLast != at(3675) {
		t.Errorf("node1 RxQueueLast = %v, want %v", l1.RxQueueLast, at(3675))
	}
	if l1.TxBusy != 0 || l1.TxQueueBusy != 0 {
		t.Errorf("node1 tx side busy (%v, %v), want idle", l1.TxBusy, l1.TxQueueBusy)
	}

	// Both tx-link starts (1055 ns, 1555 ns) fall inside the 10 µs rate
	// window, attributed to the source node.
	if got := f.MessageRateWindow(0); got != 2 {
		t.Errorf("MessageRateWindow(0) = %d, want 2", got)
	}
	if got := f.MessageRateWindow(1); got != 0 {
		t.Errorf("MessageRateWindow(1) = %d, want 0", got)
	}
}

// TestRendezvousTraceTimeline pins the full stage timeline of one
// rendezvous send: the RTS/CTS handshake (2×wire + 2×link overhead =
// 220 ns) delays the queue stage, and completion is at link drain.
func TestRendezvousTraceTimeline(t *testing.T) {
	pr := contentionParams()
	pr.EagerLimit = 100 // force rendezvous for the 1000 B payload
	f := MustNew(2, 1, pr)
	e := simtime.NewEngine()
	const n = 1000
	var tr SendTrace
	var done simtime.Time
	e.Spawn("sender", func(p *simtime.Proc) {
		done, tr = f.SendTraced(p, Endpoint{0, 0}, Endpoint{1, 0}, n, nil)
	})
	e.Spawn("recver", func(p *simtime.Proc) {
		f.Inbox(Endpoint{1, 0}).Get(p, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	at := func(x int64) simtime.Time {
		return simtime.Time(0).Add(simtime.Duration(x) * simtime.Nanosecond)
	}
	want := []struct {
		name string
		got  simtime.Time
		at   simtime.Time
	}{
		{"Issue", tr.Issue, at(0)},
		{"CPUDone", tr.CPUDone, at(5)},
		{"HandshakeDone", tr.HandshakeDone, at(225)}, // 5 + 2*100 + 2*10
		{"QueueDone", tr.QueueDone, at(1275)},        // 225 + 1050
		{"LinkDone", tr.LinkDone, at(1775)},          // 1275 + 500
		{"Arrive", tr.Arrive, at(1875)},              // + wire
		{"RxLinkDone", tr.RxLinkDone, at(2375)},      // + 500
		{"RxQueueDone", tr.RxQueueDone, at(3395)},    // + 1020
	}
	for _, w := range want {
		if w.got != w.at {
			t.Errorf("%s = %v, want %v", w.name, w.got, w.at)
		}
	}
	if !tr.Rendezvous {
		t.Error("trace not marked rendezvous")
	}
	if done != tr.LinkDone {
		t.Errorf("rendezvous completed at %v, want link drain %v", done, tr.LinkDone)
	}
	s := f.Stats()
	if s.Rendezvous != 1 || s.Eager != 0 {
		t.Errorf("Stats = %+v, want 1 rendezvous, 0 eager", s)
	}
	// The stage decomposition must tile [Issue, RxQueueDone] contiguously.
	stages := tr.Stages()
	if len(stages) == 0 {
		t.Fatal("no stages")
	}
	cursor := tr.Issue
	for _, st := range stages {
		if st.Start != cursor {
			t.Errorf("stage %q starts at %v, want %v (gap)", st.Cat, st.Start, cursor)
		}
		if st.End < st.Start {
			t.Errorf("stage %q ends before it starts: %+v", st.Cat, st)
		}
		cursor = st.End
	}
	if cursor != tr.RxQueueDone {
		t.Errorf("stages end at %v, want %v", cursor, tr.RxQueueDone)
	}
}
