// Package fabric models the inter-node interconnect: a multi-queue NIC per
// node feeding a node-wide link, with wire latency, eager/rendezvous
// protocols, and receive-side processing.
//
// The model is what lets the reproduction exhibit the paper's Figure 1
// behaviour, which motivates the whole multi-object design: a single sender
// process cannot saturate either the NIC message rate or the link bandwidth,
// while k concurrent senders scale both until the node-level caps are hit.
// Concretely, each process owns a private injection (and drain) queue with a
// per-message overhead and a per-queue DMA bandwidth, and all queues on a
// node share a serial link with its own (smaller) per-message overhead and
// (larger) total bandwidth:
//
//	queue stage:  o_q + M/B_q      (serial per process queue)
//	link stage:   max(o_l, M/B_l)  (serial per node, tx and rx separately)
//	wire:         L                (propagation latency)
//
// so message rate scales like k/o_q up to 1/o_l and throughput like k·B_q up
// to B_l. Messages above the eager limit pay a rendezvous round-trip before
// data moves, and complete at the sender only when the payload has left the
// node; eager messages complete as soon as the local queue stage finishes.
package fabric

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Params are the calibration constants of the fabric model. The defaults
// (see DefaultParams) approximate one Intel Omni-Path 100 Gb/s port as
// described in the paper's experimental setup.
type Params struct {
	// WireLatency is the one-way propagation delay between any two nodes
	// (the fabric is modelled as a full crossbar, like a fat-tree with
	// full bisection bandwidth).
	WireLatency simtime.Duration
	// QueueOverhead is the per-message processing cost of one process's
	// injection queue; its reciprocal is the per-process message rate.
	QueueOverhead simtime.Duration
	// QueueBandwidth is the DMA bandwidth of a single injection/drain
	// queue in bytes/s. A single process cannot push data faster than
	// this, which is why multiple senders improve large-message
	// throughput (Figure 1b).
	QueueBandwidth float64
	// LinkOverhead is the per-message cost at the node's link; its
	// reciprocal is the node-level message-rate cap (97 M msg/s for OPA).
	LinkOverhead simtime.Duration
	// LinkBandwidth is the node's total injection bandwidth in bytes/s
	// (100 Gb/s = 12.5 GB/s for OPA).
	LinkBandwidth float64
	// RecvOverhead is the per-message receive-side queue processing cost.
	RecvOverhead simtime.Duration
	// SendCPU is the CPU time the sending process itself spends
	// initiating a transfer (descriptor write, doorbell).
	SendCPU simtime.Duration
	// EagerLimit is the largest payload sent eagerly. Larger messages use
	// a rendezvous handshake costing one extra round trip and complete at
	// the sender only after the payload clears the node link.
	EagerLimit int
	// InjectionWindow is the maximum number of in-flight sends per
	// endpoint: Send blocks the caller until the oldest outstanding
	// message has cleared the injection queue. This models NIC queue
	// depth/credits, and keeps the simulation honest — without it a
	// process could book unbounded far-future resource slots while its
	// own clock stands still, starving later (in simulation order, but
	// not in virtual time) senders of link gaps. Zero means unlimited.
	InjectionWindow int

	// The optional two-level topology models an oversubscribed fat tree:
	// nodes are grouped under leaf switches of GroupSize nodes each, and
	// traffic between groups pays extra latency and shares a per-group
	// uplink. GroupSize 0 (the default, used by all paper experiments)
	// keeps the flat full-bisection crossbar.

	// GroupSize is the number of nodes per leaf switch (0 = flat).
	GroupSize int
	// GroupLatency is the extra one-way latency for inter-group hops.
	GroupLatency simtime.Duration
	// GroupBandwidth is each group's uplink bandwidth in bytes/s shared
	// by all of the group's inter-group traffic (0 = unconstrained).
	GroupBandwidth float64
}

// DefaultParams returns the OPA-like calibration used by all paper-figure
// experiments. Per-queue message rate ~3.3 M msg/s (one core driving PSM2),
// node cap 97 M msg/s, per-queue DMA 8 GB/s (a single queue approaches but
// cannot reach the 12.5 GB/s link, per Figure 1b), ~1 µs wire latency.
func DefaultParams() Params {
	return Params{
		WireLatency:     simtime.Nanos(900),
		QueueOverhead:   simtime.Nanos(300), // ~3.3 M msg/s per process
		QueueBandwidth:  8.0e9,
		LinkOverhead:    simtime.Nanos(10.3), // ~97 M msg/s per node
		LinkBandwidth:   12.5e9,              // 100 Gb/s
		RecvOverhead:    simtime.Nanos(90),
		SendCPU:         simtime.Nanos(60),
		EagerLimit:      16 << 10,
		InjectionWindow: 8,
	}
}

// Validate reports an error if any parameter is nonsensical.
func (p Params) Validate() error {
	// NaN slips through ordered comparisons (every one is false), so the
	// float fields are checked for finiteness explicitly.
	for _, bw := range []float64{p.QueueBandwidth, p.LinkBandwidth, p.GroupBandwidth} {
		if math.IsNaN(bw) || math.IsInf(bw, 0) {
			return fmt.Errorf("fabric: non-finite bandwidth: %+v", p)
		}
	}
	switch {
	case p.WireLatency < 0, p.QueueOverhead < 0, p.LinkOverhead < 0,
		p.RecvOverhead < 0, p.SendCPU < 0:
		return fmt.Errorf("fabric: negative duration parameter: %+v", p)
	case p.QueueBandwidth <= 0 || p.LinkBandwidth <= 0:
		return fmt.Errorf("fabric: bandwidths must be positive: %+v", p)
	case p.EagerLimit < 0:
		return fmt.Errorf("fabric: negative eager limit %d", p.EagerLimit)
	case p.InjectionWindow < 0:
		return fmt.Errorf("fabric: negative injection window %d", p.InjectionWindow)
	case p.GroupSize < 0 || p.GroupLatency < 0 || p.GroupBandwidth < 0:
		return fmt.Errorf("fabric: negative group topology parameter: %+v", p)
	}
	return nil
}

// Endpoint identifies one process's attachment point: (node, queue). The MPI
// layer maps local ranks to queues one-to-one.
type Endpoint struct {
	Node  int
	Queue int
}

// Packet is what the fabric delivers to a destination inbox. Payload is an
// opaque reference owned by the communication layer above (the fabric never
// copies user data; copy costs are charged by the shared-memory and MPI
// layers where copies actually happen).
type Packet struct {
	Src     Endpoint
	Dst     Endpoint
	Bytes   int
	Payload any
	SentAt  simtime.Time // sender's clock when the send was issued
}

// Stats aggregates per-fabric traffic counters, used by tests and by the
// Figure 1 harness to compute achieved rates.
type Stats struct {
	Messages   int64
	Bytes      int64
	Eager      int64 // messages at or below the eager limit
	Rendezvous int64 // messages that paid the RTS/CTS handshake
}

// NodeStats aggregates traffic injected by one node (source-side).
type NodeStats struct {
	Messages   int64
	Bytes      int64
	Eager      int64
	Rendezvous int64
}

// Fabric is the cluster-wide interconnect. It is not safe for concurrent use
// outside a simtime engine (which serializes all process execution).
type Fabric struct {
	params Params
	nodes  int
	queues int

	txQueue []simtime.Station // [node*queues + queue]
	rxQueue []simtime.Station
	txLink  []simtime.Station // [node]
	rxLink  []simtime.Station
	inbox   []*simtime.Mailbox // [node*queues + queue]
	window  []windowRing       // [node*queues + queue] outstanding-send ring
	upTx    []simtime.Station  // [group] uplink toward the spine
	upRx    []simtime.Station  // [group] downlink from the spine

	stats     Stats
	nodeStats []NodeStats // [node], source-side
	rate      []rateRing  // [node], tx-link start times in the rate window

	faults  *fault.Plan // nil = fault-free (the common case)
	sendSeq []uint64    // [node*queues + queue] eager send ordinal, loss plans only
	fstats  FaultStats
	dead    []bool // [node*queues + queue] fail-stop endpoints; nil when nobody died

	// deliverPayload, when set, hands the payload value itself to the
	// destination inbox instead of wrapping it in a Packet — one interface
	// boxing allocation saved per message for layers (like mpi) whose
	// payloads already carry the metadata. Default off: raw fabric users
	// and tests receive Packets.
	deliverPayload bool

	rec *obs.Recorder
}

// DeliverPayloads switches the fabric between Packet delivery (off, the
// default) and direct payload delivery (on). Call before any traffic flows.
func (f *Fabric) DeliverPayloads(on bool) { f.deliverPayload = on }

// New builds a fabric for nodes × queuesPerNode endpoints.
func New(nodes, queuesPerNode int, params Params) (*Fabric, error) {
	if nodes < 1 || queuesPerNode < 1 {
		return nil, fmt.Errorf("fabric: invalid shape %d nodes x %d queues", nodes, queuesPerNode)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		params:    params,
		nodes:     nodes,
		queues:    queuesPerNode,
		txQueue:   make([]simtime.Station, nodes*queuesPerNode),
		rxQueue:   make([]simtime.Station, nodes*queuesPerNode),
		txLink:    make([]simtime.Station, nodes),
		rxLink:    make([]simtime.Station, nodes),
		inbox:     make([]*simtime.Mailbox, nodes*queuesPerNode),
		nodeStats: make([]NodeStats, nodes),
		rate:      make([]rateRing, nodes),
	}
	for i := range f.inbox {
		f.inbox[i] = &simtime.Mailbox{}
	}
	if params.InjectionWindow > 0 {
		f.window = make([]windowRing, nodes*queuesPerNode)
		for i := range f.window {
			f.window[i].slots = make([]simtime.Time, params.InjectionWindow)
		}
	}
	if params.GroupSize > 0 {
		groups := (nodes + params.GroupSize - 1) / params.GroupSize
		f.upTx = make([]simtime.Station, groups)
		f.upRx = make([]simtime.Station, groups)
	}
	return f, nil
}

// MustNew is New that panics on error, for experiment drivers whose shapes
// are program constants.
func MustNew(nodes, queuesPerNode int, params Params) *Fabric {
	f, err := New(nodes, queuesPerNode, params)
	if err != nil {
		panic(err)
	}
	return f
}

// Params returns the fabric's calibration.
func (f *Fabric) Params() Params { return f.params }

// Nodes returns the number of nodes the fabric connects.
func (f *Fabric) Nodes() int { return f.nodes }

// QueuesPerNode returns the number of endpoints per node.
func (f *Fabric) QueuesPerNode() int { return f.queues }

// Stats returns cumulative traffic counters.
func (f *Fabric) Stats() Stats { return f.stats }

// LinkReport describes the occupancy of one node's link and queue stations,
// for utilization analysis in tests and the benchmark harness.
type LinkReport struct {
	TxBusy, RxBusy simtime.Duration // cumulative service time
	TxLast, RxLast simtime.Time     // completion time of the last booked job
	TxQueueBusy    simtime.Duration // summed over the node's injection queues
	RxQueueBusy    simtime.Duration // summed over the node's drain queues
	TxQueueLast    simtime.Time     // latest completion among injection queues
	RxQueueLast    simtime.Time     // latest completion among drain queues
}

// Link returns the occupancy report for a node.
func (f *Fabric) Link(node int) LinkReport {
	if node < 0 || node >= f.nodes {
		panic(fmt.Sprintf("fabric: node %d outside %d-node fabric", node, f.nodes))
	}
	r := LinkReport{
		TxBusy: f.txLink[node].Busy(), RxBusy: f.rxLink[node].Busy(),
		TxLast: f.txLink[node].FreeAt(), RxLast: f.rxLink[node].FreeAt(),
	}
	for q := 0; q < f.queues; q++ {
		i := node*f.queues + q
		r.TxQueueBusy += f.txQueue[i].Busy()
		r.RxQueueBusy += f.rxQueue[i].Busy()
		r.TxQueueLast = simtime.MaxTime(r.TxQueueLast, f.txQueue[i].FreeAt())
		r.RxQueueLast = simtime.MaxTime(r.RxQueueLast, f.rxQueue[i].FreeAt())
	}
	return r
}

func (f *Fabric) index(ep Endpoint) int {
	if ep.Node < 0 || ep.Node >= f.nodes || ep.Queue < 0 || ep.Queue >= f.queues {
		panic(fmt.Sprintf("fabric: endpoint %+v outside %dx%d fabric", ep, f.nodes, f.queues))
	}
	return ep.Node*f.queues + ep.Queue
}

// Inbox returns the delivery mailbox of an endpoint. The layer above blocks
// on it with a match predicate to receive packets.
func (f *Fabric) Inbox(ep Endpoint) *simtime.Mailbox { return f.inbox[f.index(ep)] }

// Send injects a packet of n bytes from src to dst, carrying payload. The
// calling process p must be the one attached to src. Send advances p's clock
// by the send CPU cost (plus the rendezvous round trip for large messages)
// and returns the virtual time at which the send completes locally — when
// the source buffer may be reused. Delivery to the destination inbox is
// scheduled asynchronously; the receiver observes the packet no earlier than
// its full network traversal.
//
// Sending to an endpoint on the same node is a programming error in the
// layers above (intranode traffic goes through shared memory) and panics.
func (f *Fabric) Send(p *simtime.Proc, src, dst Endpoint, n int, payload any) simtime.Time {
	done, _ := f.SendTraced(p, src, dst, n, payload)
	return done
}

// SendTraced is Send returning, additionally, the full stage-by-stage timing
// of the message's fabric traversal, for observability and critical-path
// attribution.
func (f *Fabric) SendTraced(p *simtime.Proc, src, dst Endpoint, n int, payload any) (simtime.Time, SendTrace) {
	if src.Node == dst.Node {
		panic(fmt.Sprintf("fabric: intranode send %+v -> %+v (use shm)", src, dst))
	}
	if n < 0 {
		panic(fmt.Sprintf("fabric: negative payload size %d", n))
	}
	pr := f.params
	tr := SendTrace{Src: src, Dst: dst, Bytes: n}
	tr.Issue = p.Now()
	p.Advance(pr.SendCPU)
	tr.CPUDone = p.Now()

	if f.window != nil {
		// Injection flow control: block until the oldest outstanding
		// send on this endpoint has cleared the injection queue.
		if wait := f.window[f.index(src)].oldest(); wait > p.Now() {
			p.SleepLabeled(wait.Sub(p.Now()), "inject-window")
		}
	}
	tr.WindowFree = p.Now()

	start := p.Now()
	tr.Rendezvous = n > pr.EagerLimit
	if tr.Rendezvous {
		// RTS/CTS handshake: one round trip before any payload moves.
		// The handshake itself rides the message-rate machinery as two
		// tiny control messages; we charge their latency but not their
		// (negligible) serialization.
		start = start.Add(2*pr.WireLatency + 2*pr.LinkOverhead)
	}
	tr.HandshakeDone = start

	tr.StallDone = start
	tr.RetransmitDone = start
	tr.Attempts = 1
	ackRequired := false
	if f.faults != nil {
		// Transient NIC stall: the injection queue is frozen; the send
		// waits at its mouth until the window clears.
		if clear := f.faults.StallClear(src.Node, src.Queue, start); clear > start {
			f.recordStall(src, start, clear)
			start = clear
			tr.StallDone = clear
		}
		// Eager loss/recovery: decide each attempt's fate up front (the
		// decision hashes (seed, endpoint, seq, attempt), so this is
		// order-independent), book the resources failed attempts waste,
		// and back off exponentially between attempts. Rendezvous
		// payloads already handshake and are treated as reliable.
		if !tr.Rendezvous && f.faults.LossEnabled() {
			ackRequired = true
			seq := f.sendSeq[f.index(src)]
			f.sendSeq[f.index(src)]++
			for attempt := 0; ; attempt++ {
				outcome := f.faults.EagerOutcome(f.index(src), seq, attempt, tr.Issue)
				if outcome == fault.Delivered {
					tr.Attempts = attempt + 1
					break
				}
				sent := f.bookFailedAttempt(src, dst, n, start, outcome)
				start = sent.Add(f.faults.Backoff(attempt))
			}
			tr.RetransmitDone = start
		}
	}

	qService := pr.QueueOverhead + simtime.TransferTime(n, pr.QueueBandwidth)
	qStart, qDone := f.txQueue[f.index(src)].Use(start, qService)
	tr.QueueStart, tr.QueueDone = qStart, qDone
	tr.QueueProcDone = qStart.Add(pr.QueueOverhead)

	lStart, lDone := f.txLink[src.Node].Use(qDone, f.linkService(src.Node, qDone, n))
	tr.LinkStart, tr.LinkDone = lStart, lDone

	arrive := lDone.Add(pr.WireLatency)
	if pr.GroupSize > 0 {
		srcGroup := src.Node / pr.GroupSize
		dstGroup := dst.Node / pr.GroupSize
		if srcGroup != dstGroup {
			// Inter-group: serialize through both groups' uplinks and
			// pay the spine hop.
			gService := simtime.TransferTime(n, pr.GroupBandwidth)
			upStart, upDone := f.upTx[srcGroup].Use(lDone, gService)
			spine := upDone.Add(pr.GroupLatency)
			downStart, downDone := f.upRx[dstGroup].Use(spine, gService)
			arrive = downDone.Add(pr.WireLatency)
			tr.Grouped = true
			tr.UpStart, tr.UpDone = upStart, upDone
			tr.DownStart, tr.DownDone = downStart, downDone
		}
	}
	tr.Arrive = arrive
	rlStart, rlDone := f.rxLink[dst.Node].Use(arrive, f.linkService(dst.Node, arrive, n))
	tr.RxLinkStart, tr.RxLinkDone = rlStart, rlDone

	rService := pr.RecvOverhead + simtime.TransferTime(n, pr.QueueBandwidth)
	rqStart, rqDone := f.rxQueue[f.index(dst)].Use(rlDone, rService)
	tr.RxQueueStart, tr.RxQueueDone = rqStart, rqDone
	tr.RxProcDone = rqStart.Add(pr.RecvOverhead)

	if f.window != nil {
		f.window[f.index(src)].push(qDone)
	}

	f.account(&tr)

	switch {
	case f.dead != nil && f.dead[f.index(dst)]:
		// Fail-stop destination: the message traversed the network and is
		// discarded at the dead NIC. The sender has already paid the full
		// traversal; nothing reaches the inbox.
		f.recordDeadDrop(dst)
	case f.deliverPayload:
		f.inbox[f.index(dst)].PutAt(p, rqDone, payload)
	default:
		f.inbox[f.index(dst)].PutAt(p, rqDone, Packet{
			Src: src, Dst: dst, Bytes: n, Payload: payload, SentAt: tr.Issue,
		})
	}

	switch {
	case ackRequired:
		// Under a loss plan eager sends carry a modeled ack: the source
		// buffer may be reused only once the receiver has the payload
		// and the (latency-only) ack control message returns.
		tr.Complete = rqDone.Add(pr.WireLatency)
	case tr.Rendezvous:
		// Large sends complete only when the payload has cleared the
		// node link: the source buffer is pinned until then.
		tr.Complete = lDone
	default:
		// Eager sends complete when the local queue stage has consumed
		// the buffer (the NIC has its own copy in flight).
		tr.Complete = qDone
	}
	return tr.Complete, tr
}

// windowRing tracks the injection-queue completion times of the most recent
// InjectionWindow sends from one endpoint.
type windowRing struct {
	slots []simtime.Time
	head  int
	count int
}

// oldest returns the completion time of the oldest tracked send, or zero if
// the window still has room.
func (w *windowRing) oldest() simtime.Time {
	if w.count < len(w.slots) {
		return 0
	}
	return w.slots[w.head]
}

// push records a new send's queue completion, evicting the oldest.
func (w *windowRing) push(t simtime.Time) {
	w.slots[w.head] = t
	w.head = (w.head + 1) % len(w.slots)
	if w.count < len(w.slots) {
		w.count++
	}
}

func maxDuration(a, b simtime.Duration) simtime.Duration {
	if a > b {
		return a
	}
	return b
}
