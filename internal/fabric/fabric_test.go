package fabric

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/simtime"
)

func testParams() Params {
	p := DefaultParams()
	p.WireLatency = 100 * simtime.Nanosecond
	return p
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.LinkBandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero link bandwidth accepted")
	}
	bad = DefaultParams()
	bad.WireLatency = -1
	if bad.Validate() == nil {
		t.Fatal("negative latency accepted")
	}
	bad = DefaultParams()
	bad.EagerLimit = -1
	if bad.Validate() == nil {
		t.Fatal("negative eager limit accepted")
	}
	// NaN/Inf sail through ordered comparisons, so Validate must reject
	// them explicitly.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad = DefaultParams()
		bad.LinkBandwidth = v
		if bad.Validate() == nil {
			t.Errorf("link bandwidth %v accepted", v)
		}
		bad = DefaultParams()
		bad.GroupBandwidth = v
		if bad.Validate() == nil {
			t.Errorf("group bandwidth %v accepted", v)
		}
	}
}

func TestNewRejectsBadShape(t *testing.T) {
	if _, err := New(0, 1, DefaultParams()); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := New(1, 0, DefaultParams()); err == nil {
		t.Fatal("0 queues accepted")
	}
	bad := DefaultParams()
	bad.QueueBandwidth = -1
	if _, err := New(2, 2, bad); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestSingleMessageLatency(t *testing.T) {
	pr := testParams()
	f := MustNew(2, 1, pr)
	e := simtime.NewEngine()
	var sendDone, recvAt simtime.Time
	src, dst := Endpoint{0, 0}, Endpoint{1, 0}
	const n = 64
	e.Spawn("sender", func(p *simtime.Proc) {
		sendDone = f.Send(p, src, dst, n, "hello")
	})
	e.Spawn("recver", func(p *simtime.Proc) {
		pkt := f.Inbox(dst).Get(p, nil).(Packet)
		recvAt = p.Now()
		if pkt.Payload != "hello" || pkt.Bytes != n {
			t.Errorf("packet = %+v", pkt)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Eager path: expected end-to-end time is sendCPU + queue + link + wire
	// + rx link + rx queue, with no contention.
	q := pr.QueueOverhead + simtime.TransferTime(n, pr.QueueBandwidth)
	l := pr.LinkOverhead // 64B at 12.5GB/s is far below the overhead
	r := pr.RecvOverhead + simtime.TransferTime(n, pr.QueueBandwidth)
	want := simtime.Time(0).Add(pr.SendCPU + q + l + pr.WireLatency + l + r)
	if recvAt != want {
		t.Errorf("recv at %v, want %v", recvAt, want)
	}
	if wantSend := simtime.Time(0).Add(pr.SendCPU + q); sendDone != wantSend {
		t.Errorf("send done at %v, want %v (eager completes at queue stage)", sendDone, wantSend)
	}
}

func TestRendezvousSlowerAndPinsBuffer(t *testing.T) {
	pr := testParams()
	f := MustNew(2, 1, pr)
	e := simtime.NewEngine()
	n := pr.EagerLimit + 1
	var sendDone, recvAt simtime.Time
	e.Spawn("sender", func(p *simtime.Proc) {
		sendDone = f.Send(p, Endpoint{0, 0}, Endpoint{1, 0}, n, nil)
	})
	e.Spawn("recver", func(p *simtime.Proc) {
		f.Inbox(Endpoint{1, 0}).Get(p, nil)
		recvAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Rendezvous completes at the link stage, after the handshake RTT.
	minSend := simtime.Time(0).Add(pr.SendCPU + 2*pr.WireLatency +
		simtime.TransferTime(n, pr.QueueBandwidth) + simtime.TransferTime(n, pr.LinkBandwidth))
	if sendDone < minSend {
		t.Errorf("rendezvous send done at %v, want >= %v", sendDone, minSend)
	}
	if recvAt <= sendDone {
		t.Errorf("recv at %v not after send completion %v", recvAt, sendDone)
	}
}

func TestIntranodeSendPanics(t *testing.T) {
	f := MustNew(2, 2, testParams())
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		f.Send(p, Endpoint{0, 0}, Endpoint{0, 1}, 8, nil)
	})
	if err := e.Run(); err == nil {
		t.Fatal("intranode fabric send did not fail")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	f := MustNew(2, 1, testParams())
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		f.Send(p, Endpoint{0, 0}, Endpoint{1, 0}, -1, nil)
	})
	if err := e.Run(); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestBadEndpointPanics(t *testing.T) {
	f := MustNew(2, 1, testParams())
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		f.Inbox(Endpoint{5, 0})
	})
	if err := e.Run(); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

// flood measures the achieved message rate and throughput when k sender
// processes on node 0 each send count messages of n bytes to k receivers on
// node 1 — the Figure 1 microbenchmark.
func flood(t *testing.T, k, count, n int) (msgsPerSec, bytesPerSec float64) {
	t.Helper()
	f := MustNew(2, k, testParams())
	e := simtime.NewEngine()
	for q := 0; q < k; q++ {
		q := q
		e.Spawn(fmt.Sprintf("s%d", q), func(p *simtime.Proc) {
			for i := 0; i < count; i++ {
				f.Send(p, Endpoint{0, q}, Endpoint{1, q}, n, nil)
			}
		})
		e.Spawn(fmt.Sprintf("r%d", q), func(p *simtime.Proc) {
			for i := 0; i < count; i++ {
				f.Inbox(Endpoint{1, q}).Get(p, nil)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	elapsed := simtime.Duration(e.Horizon()).Seconds()
	total := float64(k * count)
	return total / elapsed, total * float64(n) / elapsed
}

func TestMultiSenderMessageRateScalesThenSaturates(t *testing.T) {
	// Figure 1a shape: message rate grows with sender count and flattens
	// once the shared link's per-message cap binds.
	const n = 4 << 10
	rate1, _ := flood(t, 1, 200, n)
	rate4, _ := flood(t, 4, 200, n)
	rate16, _ := flood(t, 16, 200, n)
	if rate4 < 1.5*rate1 {
		t.Errorf("4 senders rate %.3g not well above 1 sender %.3g", rate4, rate1)
	}
	if rate16 < rate4 {
		t.Errorf("16 senders rate %.3g below 4 senders %.3g", rate16, rate4)
	}
	// Saturation: 16 senders must not get 4x the 4-sender rate.
	if rate16 > 3.5*rate4 {
		t.Errorf("no saturation: 16 senders %.3g vs 4 senders %.3g", rate16, rate4)
	}
}

func TestMultiSenderThroughputScalesThenSaturates(t *testing.T) {
	// Figure 1b shape: one sender is DMA-limited well below link
	// bandwidth; enough senders reach (and never exceed) the link.
	const n = 128 << 10
	_, bw1 := flood(t, 1, 50, n)
	_, bw8 := flood(t, 8, 50, n)
	pr := testParams()
	if bw1 > 1.2*pr.QueueBandwidth {
		t.Errorf("single sender %.3g B/s exceeds per-queue DMA %.3g", bw1, pr.QueueBandwidth)
	}
	if bw8 < 0.8*pr.LinkBandwidth {
		t.Errorf("8 senders %.3g B/s does not approach link %.3g", bw8, pr.LinkBandwidth)
	}
	if bw8 > 1.05*pr.LinkBandwidth {
		t.Errorf("8 senders %.3g B/s exceeds link bandwidth %.3g", bw8, pr.LinkBandwidth)
	}
}

func TestStatsCount(t *testing.T) {
	f := MustNew(2, 1, testParams())
	e := simtime.NewEngine()
	e.Spawn("s", func(p *simtime.Proc) {
		for i := 0; i < 5; i++ {
			f.Send(p, Endpoint{0, 0}, Endpoint{1, 0}, 100, nil)
		}
	})
	e.Spawn("r", func(p *simtime.Proc) {
		for i := 0; i < 5; i++ {
			f.Inbox(Endpoint{1, 0}).Get(p, nil)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Messages != 5 || s.Bytes != 500 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCausalityRecvAfterSend(t *testing.T) {
	// Property over many shapes: every packet is observed at or after the
	// instant it was sent plus the wire latency.
	pr := testParams()
	f := MustNew(3, 2, pr)
	e := simtime.NewEngine()
	type obs struct{ sent, recv simtime.Time }
	var all []obs
	for q := 0; q < 2; q++ {
		q := q
		e.Spawn(fmt.Sprintf("s%d", q), func(p *simtime.Proc) {
			for i := 0; i < 20; i++ {
				p.Advance(simtime.Duration(i*7) * simtime.Nanosecond)
				f.Send(p, Endpoint{0, q}, Endpoint{1 + q%2, q}, 32*(i+1), nil)
			}
		})
		e.Spawn(fmt.Sprintf("r%d", q), func(p *simtime.Proc) {
			for i := 0; i < 20; i++ {
				pkt := f.Inbox(Endpoint{1 + q%2, q}).Get(p, nil).(Packet)
				all = append(all, obs{pkt.SentAt, p.Now()})
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(all) != 40 {
		t.Fatalf("observed %d packets, want 40", len(all))
	}
	for i, o := range all {
		if o.recv < o.sent.Add(pr.WireLatency) {
			t.Errorf("packet %d: recv %v before send %v + wire", i, o.recv, o.sent)
		}
	}
}

func TestLinkReport(t *testing.T) {
	f := MustNew(2, 2, testParams())
	e := simtime.NewEngine()
	e.Spawn("s", func(p *simtime.Proc) {
		f.Send(p, Endpoint{0, 0}, Endpoint{1, 1}, 1000, nil)
	})
	e.Spawn("r", func(p *simtime.Proc) {
		f.Inbox(Endpoint{1, 1}).Get(p, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tx := f.Link(0)
	rx := f.Link(1)
	if tx.TxBusy <= 0 || tx.TxQueueBusy <= 0 || tx.TxLast <= 0 || tx.TxQueueLast <= 0 {
		t.Fatalf("tx report empty: %+v", tx)
	}
	if rx.RxBusy <= 0 || rx.RxQueueBusy <= 0 || rx.RxLast <= 0 || rx.RxQueueLast <= 0 {
		t.Fatalf("rx report empty: %+v", rx)
	}
	if tx.RxBusy != 0 || rx.TxBusy != 0 {
		t.Fatalf("reports leaked across directions: tx=%+v rx=%+v", tx, rx)
	}
	if f.Params().LinkBandwidth != testParams().LinkBandwidth ||
		f.Nodes() != 2 || f.QueuesPerNode() != 2 {
		t.Fatal("accessors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Link(9) did not panic")
		}
	}()
	f.Link(9)
}
