package fabric

import (
	"fmt"
	"testing"

	"repro/internal/simtime"
)

func groupedParams(groupSize int, groupBW float64) Params {
	p := DefaultParams()
	p.WireLatency = 100 * simtime.Nanosecond
	p.GroupSize = groupSize
	p.GroupLatency = 500 * simtime.Nanosecond
	p.GroupBandwidth = groupBW
	return p
}

func TestGroupValidation(t *testing.T) {
	bad := groupedParams(2, 1e9)
	bad.GroupLatency = -1
	if bad.Validate() == nil {
		t.Fatal("negative group latency accepted")
	}
	bad = groupedParams(-1, 1e9)
	if bad.Validate() == nil {
		t.Fatal("negative group size accepted")
	}
}

// oneMsgTime measures a single n-byte transfer between two nodes.
func oneMsgTime(t *testing.T, p Params, srcNode, dstNode, n int) simtime.Time {
	t.Helper()
	nodes := dstNode + 1
	if srcNode >= nodes {
		nodes = srcNode + 1
	}
	f := MustNew(nodes, 1, p)
	e := simtime.NewEngine()
	var recvAt simtime.Time
	e.Spawn("s", func(pr *simtime.Proc) {
		f.Send(pr, Endpoint{srcNode, 0}, Endpoint{dstNode, 0}, n, nil)
	})
	e.Spawn("r", func(pr *simtime.Proc) {
		f.Inbox(Endpoint{dstNode, 0}).Get(pr, nil)
		recvAt = pr.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return recvAt
}

func TestInterGroupPaysExtraLatency(t *testing.T) {
	p := groupedParams(2, 0)            // unconstrained uplink isolates the latency term
	intra := oneMsgTime(t, p, 0, 1, 64) // same group {0,1}
	inter := oneMsgTime(t, p, 0, 2, 64) // group 0 -> group 1
	// The documented semantics: exactly GroupLatency extra one-way.
	want := intra.Add(p.GroupLatency)
	if inter != want {
		t.Fatalf("inter-group = %v, want %v (intra %v)", inter, want, intra)
	}
}

func TestFlatFabricUnchangedByGroupDefaults(t *testing.T) {
	flat := DefaultParams()
	flat.WireLatency = 100 * simtime.Nanosecond
	if got, want := oneMsgTime(t, flat, 0, 3, 256), oneMsgTime(t, groupedParams(0, 0), 0, 3, 256); got != want {
		t.Fatalf("flat vs groupsize-0: %v vs %v", got, want)
	}
}

func TestGroupUplinkSerializes(t *testing.T) {
	// Two nodes of one group each blast a different remote group; their
	// shared uplink must serialize the large payloads.
	p := groupedParams(2, 2e9) // slow uplink: 2 GB/s
	f := MustNew(4, 1, p)
	e := simtime.NewEngine()
	const n = 1 << 20 // 1 MB: 500us through the uplink
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("s%d", i), func(pr *simtime.Proc) {
			f.Send(pr, Endpoint{i, 0}, Endpoint{2 + i, 0}, n, nil)
		})
		e.Spawn(fmt.Sprintf("r%d", i), func(pr *simtime.Proc) {
			f.Inbox(Endpoint{2 + i, 0}).Get(pr, nil)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	uplink := simtime.TransferTime(n, p.GroupBandwidth)
	if got := simtime.Duration(e.Horizon()); got < 2*uplink {
		t.Fatalf("makespan %v; two 1MB transfers through a shared %v uplink must take >= %v",
			got, uplink, 2*uplink)
	}
	// Sanity: with per-group destinations in *different* source groups,
	// no shared uplink — must be faster than the serialized case.
	p2 := groupedParams(1, 2e9) // every node its own group
	f2 := MustNew(4, 1, p2)
	e2 := simtime.NewEngine()
	for i := 0; i < 2; i++ {
		i := i
		e2.Spawn(fmt.Sprintf("s%d", i), func(pr *simtime.Proc) {
			f2.Send(pr, Endpoint{i, 0}, Endpoint{2 + i, 0}, n, nil)
		})
		e2.Spawn(fmt.Sprintf("r%d", i), func(pr *simtime.Proc) {
			f2.Inbox(Endpoint{2 + i, 0}).Get(pr, nil)
		})
	}
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if e2.Horizon() >= e.Horizon() {
		t.Fatalf("independent uplinks (%v) not faster than shared (%v)",
			e2.Horizon(), e.Horizon())
	}
}

func TestGroupedCollectiveStillCorrect(t *testing.T) {
	// The fabric change is below the MPI layer; a collective over a
	// grouped fabric must stay correct (checked via the conservation of
	// delivered bytes and packet payloads).
	p := groupedParams(2, 4e9)
	f := MustNew(4, 2, p)
	e := simtime.NewEngine()
	const msgs = 6
	got := map[string]bool{}
	for q := 0; q < 2; q++ {
		q := q
		e.Spawn(fmt.Sprintf("s%d", q), func(pr *simtime.Proc) {
			for i := 0; i < msgs; i++ {
				dst := Endpoint{Node: (i % 3) + 1, Queue: q}
				f.Send(pr, Endpoint{0, q}, dst, 32, fmt.Sprintf("m%d-%d", q, i))
			}
		})
	}
	for node := 1; node < 4; node++ {
		for q := 0; q < 2; q++ {
			node, q := node, q
			e.Spawn(fmt.Sprintf("r%d-%d", node, q), func(pr *simtime.Proc) {
				for i := 0; i < msgs/3; i++ {
					pkt := f.Inbox(Endpoint{node, q}).Get(pr, nil).(Packet)
					got[pkt.Payload.(string)] = true
				}
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*msgs {
		t.Fatalf("delivered %d distinct payloads, want %d", len(got), 2*msgs)
	}
}
