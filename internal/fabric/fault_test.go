package fabric

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/simtime"
)

// sendRecv runs one eager send across a fresh 2-node fabric carrying the
// given plan and returns (send completion, receive time, fault stats).
func sendRecv(t *testing.T, plan *fault.Plan, n int) (simtime.Time, simtime.Time, FaultStats, *Fabric) {
	t.Helper()
	f := MustNew(2, 1, testParams())
	f.InjectFaults(plan)
	e := simtime.NewEngine()
	var sendDone, recvAt simtime.Time
	e.Spawn("sender", func(p *simtime.Proc) {
		sendDone = f.Send(p, Endpoint{0, 0}, Endpoint{1, 0}, n, "payload")
	})
	e.Spawn("recver", func(p *simtime.Proc) {
		pkt := f.Inbox(Endpoint{1, 0}).Get(p, nil).(Packet)
		recvAt = p.Now()
		if pkt.Payload != "payload" {
			t.Errorf("payload corrupted in delivery: %v", pkt.Payload)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return sendDone, recvAt, f.FaultStats(), f
}

// TestEmptyPlanIdentical is the zero-cost guarantee at fabric level: an
// attached-but-empty plan leaves every timing bit-identical to nil.
func TestEmptyPlanIdentical(t *testing.T) {
	for _, n := range []int{64, 4 << 10, 32 << 10} {
		s0, r0, _, _ := sendRecv(t, nil, n)
		s1, r1, fs, _ := sendRecv(t, fault.MustNew(fault.Spec{Seed: 1}), n)
		if s0 != s1 || r0 != r1 {
			t.Errorf("n=%d: empty plan changed timings: send %v vs %v, recv %v vs %v", n, s0, s1, r0, r1)
		}
		if fs != (FaultStats{}) {
			t.Errorf("n=%d: empty plan accumulated stats %+v", n, fs)
		}
	}
}

// TestRetransmitAccounting pins the drops==retransmits invariant and that
// recovery delays both sender completion and delivery.
func TestRetransmitAccounting(t *testing.T) {
	plan := fault.MustNew(fault.Spec{
		Seed: 3,
		Loss: fault.Loss{DropRate: 1, MaxAttempts: 3, RTO: 10 * simtime.Microsecond},
	})
	s0, r0, _, _ := sendRecv(t, nil, 256)
	s1, r1, fs, _ := sendRecv(t, plan, 256)
	if fs.Drops != 2 || fs.Retransmits != 2 || fs.Corruptions != 0 {
		t.Fatalf("stats = %+v, want 2 drops / 2 retransmits (MaxAttempts 3, DropRate 1)", fs)
	}
	if r1 <= r0 {
		t.Errorf("faulted delivery %v not later than clean %v", r1, r0)
	}
	// Two failed attempts back off 10µs then 20µs before the final one.
	if minDelay := simtime.Duration(30 * simtime.Microsecond); r1.Sub(r0) < minDelay {
		t.Errorf("recovery added only %v, want >= %v of backoff", r1.Sub(r0), minDelay)
	}
	// Ack semantics: under a loss plan the sender completes only after
	// delivery plus the ack's wire latency.
	if s1 <= r1 {
		t.Errorf("acked send completed at %v, before delivery %v + ack", s1, r1)
	}
	_ = s0
}

func TestCorruptionBooksReceiveSide(t *testing.T) {
	plan := fault.MustNew(fault.Spec{
		Seed: 3,
		Loss: fault.Loss{CorruptRate: 1, MaxAttempts: 2, RTO: simtime.Microsecond},
	})
	_, _, fs, f := sendRecv(t, plan, 256)
	if fs.Corruptions != 1 || fs.Retransmits != 1 || fs.Drops != 0 {
		t.Fatalf("stats = %+v, want 1 corruption / 1 retransmit", fs)
	}
	// The corrupted attempt wasted the destination's rx stations: busy time
	// exceeds the single clean delivery's service.
	pr := f.Params()
	oneMsg := pr.RecvOverhead + simtime.TransferTime(256, pr.QueueBandwidth)
	if busy := f.Link(1).RxQueueBusy; busy < 2*oneMsg {
		t.Errorf("rx queue busy %v, want >= %v (clean + corrupted attempt)", busy, 2*oneMsg)
	}
}

// TestRetransmitDeterministic pins byte-identical fault behaviour across
// runs of the same seed, and different behaviour across seeds.
func TestRetransmitDeterministic(t *testing.T) {
	spec := fault.Spec{Seed: 11, Loss: fault.Loss{DropRate: 0.4, RTO: simtime.Microsecond}}
	run := func(seed uint64) (simtime.Time, FaultStats) {
		s := spec
		s.Seed = seed
		f := MustNew(2, 1, testParams())
		f.InjectFaults(fault.MustNew(s))
		e := simtime.NewEngine()
		var last simtime.Time
		e.Spawn("sender", func(p *simtime.Proc) {
			for i := 0; i < 40; i++ {
				f.Send(p, Endpoint{0, 0}, Endpoint{1, 0}, 128, i)
			}
		})
		e.Spawn("recver", func(p *simtime.Proc) {
			for i := 0; i < 40; i++ {
				f.Inbox(Endpoint{1, 0}).Get(p, nil)
				last = p.Now()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last, f.FaultStats()
	}
	a1, fs1 := run(11)
	a2, fs2 := run(11)
	if a1 != a2 || fs1 != fs2 {
		t.Fatalf("same seed diverged: %v/%+v vs %v/%+v", a1, fs1, a2, fs2)
	}
	if fs1.Drops == 0 {
		t.Fatal("DropRate 0.4 over 40 messages produced no drops")
	}
	if fs1.Drops != fs1.Retransmits {
		t.Fatalf("drops %d != retransmits %d", fs1.Drops, fs1.Retransmits)
	}
	b, fsB := run(12)
	if a1 == b && fs1 == fsB {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestLinkDegradeSlowsTransfer(t *testing.T) {
	plan := fault.MustNew(fault.Spec{Degrade: []fault.LinkDegrade{{
		Node: 0, BandwidthScale: 0.1, OverheadScale: 4,
	}}})
	// Large-but-eager payload so bandwidth dominates.
	_, r0, _, _ := sendRecv(t, nil, 8<<10)
	_, r1, _, _ := sendRecv(t, plan, 8<<10)
	if r1 <= r0 {
		t.Errorf("degraded link delivered at %v, clean at %v; want slower", r1, r0)
	}
}

func TestRendezvousUnaffectedByLoss(t *testing.T) {
	plan := fault.MustNew(fault.Spec{Loss: fault.Loss{DropRate: 1, MaxAttempts: 3}})
	pr := testParams()
	n := pr.EagerLimit + 1
	s0, r0, _, _ := sendRecv(t, nil, n)
	s1, r1, fs, _ := sendRecv(t, plan, n)
	if s0 != s1 || r0 != r1 {
		t.Errorf("rendezvous timings changed under eager-loss plan: %v/%v vs %v/%v", s0, r0, s1, r1)
	}
	if fs != (FaultStats{}) {
		t.Errorf("rendezvous accumulated fault stats %+v", fs)
	}
}

func TestQueueStallDelaysSend(t *testing.T) {
	stallEnd := simtime.Time(0).Add(200 * simtime.Microsecond)
	plan := fault.MustNew(fault.Spec{Stalls: []fault.QueueStall{{
		Node: 0, Queue: 0, From: 0, Duration: 200 * simtime.Microsecond,
	}}})
	_, r1, fs, _ := sendRecv(t, plan, 64)
	if fs.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", fs.Stalls)
	}
	if r1 < stallEnd {
		t.Errorf("delivery at %v, before the stall window ends at %v", r1, stallEnd)
	}
	// Other queue on the same node is unaffected.
	f := MustNew(2, 2, testParams())
	f.InjectFaults(plan)
	e := simtime.NewEngine()
	var recvAt simtime.Time
	e.Spawn("sender", func(p *simtime.Proc) {
		f.Send(p, Endpoint{0, 1}, Endpoint{1, 0}, 64, nil)
	})
	e.Spawn("recver", func(p *simtime.Proc) {
		f.Inbox(Endpoint{1, 0}).Get(p, nil)
		recvAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt >= stallEnd {
		t.Errorf("unstalled queue delivered at %v, inside the other queue's stall", recvAt)
	}
	if f.FaultStats().Stalls != 0 {
		t.Errorf("unstalled queue counted a stall")
	}
}
