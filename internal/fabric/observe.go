package fabric

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// SendTrace is the stage-by-stage timing of one internode message, captured
// by SendTraced. All times are absolute virtual timestamps; group-uplink
// fields are meaningful only when Grouped is true.
type SendTrace struct {
	Src, Dst   Endpoint
	Bytes      int
	Rendezvous bool
	Grouped    bool
	// Attempts is how many times the message was injected before it got
	// through: 1 fault-free, more under a loss plan.
	Attempts int

	Issue          simtime.Time // sender's clock at the Send call
	CPUDone        simtime.Time // after the send-CPU charge
	WindowFree     simtime.Time // after any injection-window stall
	HandshakeDone  simtime.Time // after the RTS/CTS round trip (== WindowFree when eager)
	StallDone      simtime.Time // after any NIC-stall freeze (== HandshakeDone fault-free)
	RetransmitDone simtime.Time // start of the delivered attempt (== StallDone fault-free)
	QueueStart     simtime.Time // injection-queue service start
	QueueProcDone  simtime.Time // QueueStart + per-message queue overhead
	QueueDone      simtime.Time // injection DMA complete
	LinkStart      simtime.Time // node tx-link service start
	LinkDone       simtime.Time
	UpStart        simtime.Time // group uplink (Grouped only)
	UpDone         simtime.Time
	DownStart      simtime.Time // group downlink (Grouped only)
	DownDone       simtime.Time
	Arrive         simtime.Time // at the destination node, before its rx link
	RxLinkStart    simtime.Time
	RxLinkDone     simtime.Time
	RxQueueStart   simtime.Time // drain-queue service start
	RxProcDone     simtime.Time // RxQueueStart + per-message receive overhead
	RxQueueDone    simtime.Time // payload visible to the receiving process
	Complete       simtime.Time // sender-local completion (buffer reusable)
}

// Stages decomposes the traversal [Issue, RxQueueDone] into contiguous
// cost-component intervals for the critical-path analyzer: send-cpu,
// injection (window stalls, queue waits, per-message queue overhead),
// rendezvous, dma, link-queue (waiting for a busy serial link), link, wire,
// recv-cpu.
func (t SendTrace) Stages() []obs.Stage {
	var out []obs.Stage
	cur := t.Issue
	add := func(cat string, to simtime.Time) {
		if to > cur {
			out = append(out, obs.Stage{Cat: cat, Start: cur, End: to})
			cur = to
		}
	}
	add("send-cpu", t.CPUDone)
	add("injection", t.WindowFree)
	add("rendezvous", t.HandshakeDone)
	add("nic-stall", t.StallDone)
	add("retransmit", t.RetransmitDone)
	add("injection", t.QueueStart) // waiting behind the queue's earlier jobs
	add("injection", t.QueueProcDone)
	add("dma", t.QueueDone)
	add("link-queue", t.LinkStart)
	add("link", t.LinkDone)
	if t.Grouped {
		add("link-queue", t.UpStart)
		add("link", t.UpDone)
		add("wire", t.DownStart)
		add("link", t.DownDone)
	}
	add("wire", t.Arrive)
	add("link-queue", t.RxLinkStart)
	add("link", t.RxLinkDone)
	add("link-queue", t.RxQueueStart)
	add("recv-cpu", t.RxProcDone)
	add("dma", t.RxQueueDone)
	return out
}

// RateWindow is the sliding window over which per-node message rates are
// reported (MessageRateWindow, and the "n<i> msg-rate" counter track).
const RateWindow = simtime.Duration(10_000_000) // 10 µs in picoseconds

// rateRing tracks one node's tx-link service starts inside the rate window.
// Starts arrive mostly-but-not-strictly increasing (the earliest-fit Station
// can backfill gaps), so the ring keeps everything newer than max-window and
// counts against the newest start.
type rateRing struct {
	starts []simtime.Time
	max    simtime.Time
}

func (r *rateRing) add(t simtime.Time) {
	if t > r.max {
		r.max = t
	}
	horizon := r.max.Add(-RateWindow)
	kept := r.starts[:0]
	for _, s := range r.starts {
		if s > horizon {
			kept = append(kept, s)
		}
	}
	r.starts = kept
	if t > horizon {
		r.starts = append(r.starts, t)
	}
}

func (r *rateRing) count() int { return len(r.starts) }

// Observe attaches a recorder: fabric resource tracks are pre-registered in
// topology order (so track layout is independent of traffic), and every
// subsequent send records per-resource display spans, per-node message-rate
// counter samples, and protocol metrics.
func (f *Fabric) Observe(rec *obs.Recorder) {
	f.rec = rec
	if rec == nil || rec.Lite() {
		return
	}
	for nd := 0; nd < f.nodes; nd++ {
		for q := 0; q < f.queues; q++ {
			rec.RegisterResource(fmt.Sprintf("n%d q%d tx", nd, q))
		}
		rec.RegisterResource(fmt.Sprintf("n%d link-tx", nd))
		rec.RegisterResource(fmt.Sprintf("n%d link-rx", nd))
		for q := 0; q < f.queues; q++ {
			rec.RegisterResource(fmt.Sprintf("n%d q%d rx", nd, q))
		}
	}
}

// NodeStats returns the source-side traffic counters of one node.
func (f *Fabric) NodeStats(node int) NodeStats {
	if node < 0 || node >= f.nodes {
		panic(fmt.Sprintf("fabric: node %d outside %d-node fabric", node, f.nodes))
	}
	return f.nodeStats[node]
}

// MessageRateWindow returns how many messages started tx-link service on the
// node within RateWindow of the node's most recent service start.
func (f *Fabric) MessageRateWindow(node int) int {
	if node < 0 || node >= f.nodes {
		panic(fmt.Sprintf("fabric: node %d outside %d-node fabric", node, f.nodes))
	}
	return f.rate[node].count()
}

// account updates global/per-node stats and, when a recorder is attached,
// emits the message's resource spans, rate samples and protocol metrics.
func (f *Fabric) account(tr *SendTrace) {
	f.stats.Messages++
	f.stats.Bytes += int64(tr.Bytes)
	ns := &f.nodeStats[tr.Src.Node]
	ns.Messages++
	ns.Bytes += int64(tr.Bytes)
	proto := "eager"
	if tr.Rendezvous {
		f.stats.Rendezvous++
		ns.Rendezvous++
		proto = "rendezvous"
	} else {
		f.stats.Eager++
		ns.Eager++
	}
	f.rate[tr.Src.Node].add(tr.LinkStart)

	rec := f.rec
	if rec == nil {
		return
	}
	reg := rec.Metrics()
	reg.Counter("fabric." + proto).Add(1)
	reg.Counter("fabric.messages").Add(1)
	reg.Counter("fabric.bytes").Add(int64(tr.Bytes))
	if rec.Lite() {
		return
	}
	name := fmt.Sprintf("%dB n%d→n%d", tr.Bytes, tr.Src.Node, tr.Dst.Node)
	rec.ResourceSpan(fmt.Sprintf("n%d q%d tx", tr.Src.Node, tr.Src.Queue),
		name, proto, tr.QueueStart, tr.QueueDone)
	rec.ResourceSpan(fmt.Sprintf("n%d link-tx", tr.Src.Node),
		name, proto, tr.LinkStart, tr.LinkDone)
	rec.ResourceSpan(fmt.Sprintf("n%d link-rx", tr.Dst.Node),
		name, proto, tr.RxLinkStart, tr.RxLinkDone)
	rec.ResourceSpan(fmt.Sprintf("n%d q%d rx", tr.Dst.Node, tr.Dst.Queue),
		name, proto, tr.RxQueueStart, tr.RxQueueDone)
	rec.CounterSample(fmt.Sprintf("n%d msg-rate", tr.Src.Node),
		tr.LinkStart, float64(f.rate[tr.Src.Node].count()))
}
