package mc

// Schedule certificates: the canonical, replayable encoding of one explored
// interleaving. A certificate is the sequence of decisions a run's chooser
// took, one token per choice point, in choice order:
//
//	mc1;t1/3,t0/2,m2/3
//
// `mc1` is the format version. Each token is <kind-letter><pick>/<arity>:
// the letter is simtime.ChoiceKind.Code ('t' dispatch tie, 'm' wildcard
// match, 'o' timeout, 'k' kill), pick the 0-based alternative taken, arity
// how many alternatives existed. Trailing all-default (pick 0) tokens are
// trimmed — forcing a prefix and defaulting the rest reproduces the run
// exactly, so the trimmed form is canonical. A program explored under an
// op-boundary kill carries the kill as a leading clause so the certificate
// alone names the full scenario:
//
//	mc1;k2.5+;t1/3          (rank 2 dies after its 5th op boundary)
//
// Certificates embed into typed errors raised under exploration
// (ProcFailedError/TimeoutError/DeadlockError gain a Schedule field), print
// with every Violation, and replay via cmd/pipmcoll-verify -schedule.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/simtime"
)

// certVersion is the leading format tag of every certificate.
const certVersion = "mc1"

// pick is one recorded (or forced) decision at a choice point.
type pick struct {
	kind simtime.ChoiceKind
	k    int // alternative taken, 0-based
	n    int // arity at the choice point
}

// killClause renders an op-boundary kill as a certificate clause, "" for a
// fault-free program.
func killClause(kill *fault.KillOp) string {
	if kill == nil {
		return ""
	}
	after := ""
	if kill.After {
		after = "+"
	}
	return fmt.Sprintf("k%d.%d%s", kill.Rank, kill.Op, after)
}

// parseKillClause is the inverse of killClause.
func parseKillClause(s string) (*fault.KillOp, error) {
	body, after := strings.CutSuffix(s, "+")
	rank, op, ok := strings.Cut(strings.TrimPrefix(body, "k"), ".")
	if !strings.HasPrefix(s, "k") || !ok {
		return nil, fmt.Errorf("mc: bad kill clause %q", s)
	}
	r, err1 := strconv.Atoi(rank)
	o, err2 := strconv.Atoi(op)
	if err1 != nil || err2 != nil || r < 0 || o < 0 {
		return nil, fmt.Errorf("mc: bad kill clause %q", s)
	}
	return &fault.KillOp{Rank: r, Op: o, After: after}, nil
}

// formatCert renders the canonical certificate for a kill scenario and a
// pick sequence (trailing defaults trimmed).
func formatCert(kill *fault.KillOp, picks []pick) string {
	end := len(picks)
	for end > 0 && picks[end-1].k == 0 {
		end--
	}
	var b strings.Builder
	b.WriteString(certVersion)
	b.WriteByte(';')
	if kc := killClause(kill); kc != "" {
		b.WriteString(kc)
		b.WriteByte(';')
	}
	for i, p := range picks[:end] {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(p.kind.Code())
		b.WriteString(strconv.Itoa(p.k))
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(p.n))
	}
	return b.String()
}

// ParseCertificate decodes a certificate into its kill scenario (nil when
// fault-free) and forced choice prefix. It validates the version tag, token
// syntax, kind letters, and pick/arity sanity.
func ParseCertificate(s string) (*fault.KillOp, []pick, error) {
	parts := strings.Split(s, ";")
	if parts[0] != certVersion {
		return nil, nil, fmt.Errorf("mc: certificate version %q, want %q", parts[0], certVersion)
	}
	parts = parts[1:]
	var kill *fault.KillOp
	if len(parts) > 0 && strings.HasPrefix(parts[0], "k") && strings.Contains(parts[0], ".") {
		var err error
		if kill, err = parseKillClause(parts[0]); err != nil {
			return nil, nil, err
		}
		parts = parts[1:]
	}
	switch {
	case len(parts) == 0 || parts[0] == "":
		return kill, nil, nil
	case len(parts) > 1:
		return nil, nil, fmt.Errorf("mc: certificate %q has %d clauses, want at most 2", s, len(parts)+1)
	}
	var picks []pick
	for _, tok := range strings.Split(parts[0], ",") {
		if len(tok) < 4 {
			return nil, nil, fmt.Errorf("mc: bad certificate token %q", tok)
		}
		kind, ok := simtime.KindFromCode(tok[0])
		if !ok {
			return nil, nil, fmt.Errorf("mc: bad choice kind %q in token %q", tok[0], tok)
		}
		ks, ns, found := strings.Cut(tok[1:], "/")
		k, err1 := strconv.Atoi(ks)
		n, err2 := strconv.Atoi(ns)
		if !found || err1 != nil || err2 != nil || n < 2 || k < 0 || k >= n {
			return nil, nil, fmt.Errorf("mc: bad certificate token %q", tok)
		}
		picks = append(picks, pick{kind: kind, k: k, n: n})
	}
	return kill, picks, nil
}

// Minimize delta-debugs a violating pick vector: each non-default pick is
// greedily reset to the default (0) and the program re-run with the
// shortened vector forced; resets that still violate stick. The loop runs
// to a fixed point, so the result is 1-minimal — resetting any single
// remaining non-default pick loses the violation. Runs spent minimizing are
// counted into st.
func (x *explorer) minimize(picks []pick) []pick {
	cur := append([]pick(nil), picks...)
	for changed := true; changed; {
		changed = false
		for i := range cur {
			if cur[i].k == 0 {
				continue
			}
			cand := append([]pick(nil), cur...)
			cand[i].k = 0
			res := x.runOne(cand)
			if res.violation != nil && !res.diverged {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}
