package mc

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/simtime"
)

func TestCertificateRoundTrip(t *testing.T) {
	cases := []struct {
		kill  *fault.KillOp
		picks []pick
		want  string
	}{
		{nil, nil, "mc1;"},
		{nil, []pick{{simtime.ChooseTie, 0, 3}}, "mc1;"}, // all-default trims to empty
		{nil, []pick{{simtime.ChooseTie, 1, 3}}, "mc1;t1/3"},
		{nil, []pick{{simtime.ChooseTie, 0, 4}, {simtime.ChooseMatch, 2, 3}, {simtime.ChooseTimeout, 0, 2}},
			"mc1;t0/4,m2/3"},
		{&fault.KillOp{Rank: 2, Op: 5, After: true}, []pick{{simtime.ChooseTie, 1, 2}}, "mc1;k2.5+;t1/2"},
		{&fault.KillOp{Rank: 0, Op: 0}, nil, "mc1;k0.0;"},
	}
	for _, c := range cases {
		got := formatCert(c.kill, c.picks)
		if got != c.want {
			t.Errorf("formatCert(%v, %v) = %q, want %q", c.kill, c.picks, got, c.want)
			continue
		}
		kill, picks, err := ParseCertificate(got)
		if err != nil {
			t.Errorf("ParseCertificate(%q): %v", got, err)
			continue
		}
		if !sameKill(kill, c.kill) {
			t.Errorf("ParseCertificate(%q) kill = %v, want %v", got, kill, c.kill)
		}
		// Parsing loses trailing defaults by design; re-format must agree.
		if re := formatCert(kill, picks); re != got {
			t.Errorf("re-format of %q = %q", got, re)
		}
	}
}

func TestParseCertificateRejects(t *testing.T) {
	bad := []string{
		"",
		"mc2;t1/3",      // wrong version
		"mc1;x1/3",      // unknown kind letter
		"mc1;t1",        // no arity
		"mc1;t3/3",      // pick out of range
		"mc1;t0/1",      // arity below 2
		"mc1;t1/3;t1/3", // too many clauses
		"mc1;k2.x;t1/3", // bad kill clause
		"mc1;k-1.0;",    // negative rank
	}
	for _, s := range bad {
		if _, _, err := ParseCertificate(s); err == nil {
			t.Errorf("ParseCertificate(%q) accepted, want error", s)
		}
	}
}

func TestKillClauseRoundTrip(t *testing.T) {
	for _, k := range []fault.KillOp{{Rank: 0, Op: 0}, {Rank: 3, Op: 12, After: true}} {
		got, err := parseKillClause(killClause(&k))
		if err != nil {
			t.Fatalf("parseKillClause(%q): %v", killClause(&k), err)
		}
		if *got != k {
			t.Fatalf("round trip %v -> %q -> %v", k, killClause(&k), *got)
		}
	}
}
