package mc

// Verification programs: the concrete collectives the explorer proves
// correct on small worlds, each packaged as a Program with a fresh world
// per run and a serial-reference check. The contract every program
// enforces:
//
//   - Fault-free: World.Run returns nil, every rank finishes, and every
//     rank's output matches the serial reference bit-exact.
//   - Under a kill: the run ends with nil or a typed failure
//     (ProcFailedError, TimeoutError, RevokedError, DeadlockError — never
//     an untyped error or a silent wedge), and every rank that completed
//     without error still holds bit-exact (or lockstep-identical) results.
//
// BrokenAllreduce is the deliberately planted bug (arrival-indexed gather)
// used to prove the explorer finds real schedule-dependent defects.
//
// Known limitation: op-boundary kill timing counts a rank's operations in
// program order, which is only schedule-stable for plain collectives; the
// async-helper paths (nonblocking internode progress) share the parent
// rank's identity, so programs explored here stick to the collectives'
// synchronous call graphs.

import (
	"bytes"
	"fmt"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/nums"
	recovery "repro/internal/recover"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// outcome is one rank's recorded result for a run.
type outcome struct {
	out  []byte
	err  error
	done bool
}

// typedFailure reports whether err is one of the failure types the
// verification contract accepts.
func typedFailure(err error) bool {
	switch err.(type) {
	case *mpi.ProcFailedError, *mpi.TimeoutError, *mpi.RevokedError, *mpi.DeadlockError:
		return true
	}
	return false
}

// killConfig returns the default config with the kill scenario attached.
func killConfig(kill *fault.KillOp) mpi.Config {
	cfg := mpi.DefaultConfig()
	if kill != nil {
		cfg.Faults = fault.MustNew(fault.Spec{KillOps: []fault.KillOp{*kill}})
	}
	return cfg
}

// newWorld builds the small world every program runs on.
func newWorld(nodes, ppn int, kill *fault.KillOp) *mpi.World {
	return mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), killConfig(kill))
}

// serialSum is the serial reference for a sum-allreduce over n ranks whose
// rank r contributes nums.Fill(_, r): element i holds Σ_r PatternValue(r, i).
// Pattern values are small integers, so float64 summation is exact and the
// comparison is bit-exact.
func serialSum(ranks []int, elems int) []byte {
	out := make([]byte, elems*nums.F64Size)
	for i := 0; i < elems; i++ {
		var s float64
		for _, r := range ranks {
			s += nums.PatternValue(r, i)
		}
		nums.SetF64At(out, i, s)
	}
	return out
}

func worldRanks(n int) []int {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// checkOutcomes is the shared verdict for programs with a fixed per-rank
// reference output (want == nil means "no payload to compare").
func checkOutcomes(kill *fault.KillOp, outs []outcome, want []byte) CheckFn {
	return func(w *mpi.World, runErr error) error {
		if kill == nil {
			if runErr != nil {
				return fmt.Errorf("fault-free run failed: %w", runErr)
			}
			for r := range outs {
				switch {
				case !outs[r].done:
					return fmt.Errorf("fault-free run: rank %d never finished", r)
				case outs[r].err != nil:
					return fmt.Errorf("fault-free run: rank %d failed: %w", r, outs[r].err)
				case want != nil && !bytes.Equal(outs[r].out, want):
					return fmt.Errorf("rank %d result differs from serial reference", r)
				}
			}
			return nil
		}
		if runErr != nil && !typedFailure(runErr) {
			return fmt.Errorf("untyped failure: %w", runErr)
		}
		for r := range outs {
			o := outs[r]
			switch {
			case r == kill.Rank:
				// The victim may die mid-operation; nothing to assert.
			case !o.done:
				// A survivor that never finished is only acceptable when the
				// run itself unwound with a typed failure.
				if runErr == nil {
					return fmt.Errorf("run returned nil but rank %d never finished", r)
				}
			case o.err != nil:
				if !typedFailure(o.err) {
					return fmt.Errorf("rank %d untyped failure: %w", r, o.err)
				}
			case want != nil && !bytes.Equal(o.out, want):
				return fmt.Errorf("rank %d completed without error but differs from serial reference", r)
			}
		}
		return nil
	}
}

// Barrier is a dissemination barrier on nodes×ppn ranks: the contract is
// pure liveness — every interleaving completes or fails typed.
func Barrier(nodes, ppn int, kill *fault.KillOp) Program {
	return Program{
		Name: fmt.Sprintf("barrier-%dx%d", nodes, ppn),
		Kill: kill,
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			w := newWorld(nodes, ppn, kill)
			outs := make([]outcome, nodes*ppn)
			body := func(r *mpi.Rank) {
				me := r.Rank()
				outs[me].err = mpi.Try(func() { coll.Barrier(coll.World(r)) })
				outs[me].done = true
			}
			return w, body, checkOutcomes(kill, outs, nil)
		},
	}
}

// Bcast is a binomial-tree broadcast of payload bytes from rank 0; every
// completing rank must hold the root's exact bytes.
func Bcast(nodes, ppn, payload int, kill *fault.KillOp) Program {
	return Program{
		Name: fmt.Sprintf("bcast-%dx%d-%dB", nodes, ppn, payload),
		Kill: kill,
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			w := newWorld(nodes, ppn, kill)
			n := nodes * ppn
			outs := make([]outcome, n)
			want := make([]byte, payload)
			nums.FillBytes(want, 42)
			body := func(r *mpi.Rank) {
				me := r.Rank()
				buf := make([]byte, payload)
				if me == 0 {
					copy(buf, want)
				}
				outs[me].err = mpi.Try(func() { coll.Bcast(coll.World(r), 0, buf) })
				outs[me].out = buf
				outs[me].done = true
			}
			return w, body, checkOutcomes(kill, outs, want)
		},
	}
}

// Allreduce is the ring allreduce (reduce-scatter + allgather) summing
// elems float64s per rank; every completing rank must match the serial sum
// bit-exact.
func Allreduce(nodes, ppn, elems int, kill *fault.KillOp) Program {
	return Program{
		Name: fmt.Sprintf("allreduce-%dx%d-%de", nodes, ppn, elems),
		Kill: kill,
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			w := newWorld(nodes, ppn, kill)
			n := nodes * ppn
			outs := make([]outcome, n)
			want := serialSum(worldRanks(n), elems)
			body := func(r *mpi.Rank) {
				me := r.Rank()
				send := make([]byte, elems*nums.F64Size)
				recv := make([]byte, elems*nums.F64Size)
				nums.Fill(send, me)
				outs[me].err = mpi.Try(func() {
					coll.AllreduceRing(coll.World(r), send, recv, nums.Sum)
				})
				outs[me].out = recv
				outs[me].done = true
			}
			return w, body, checkOutcomes(kill, outs, want)
		},
	}
}

// BrokenAllreduce is the planted bug: an allreduce whose reduce-scatter is
// honest (coll.ReduceScatterBlock leaves rank r holding reduced block r)
// but whose gather phase receives the survivors' blocks at rank 0 with a
// shared tag from AnySource and places them BY ARRIVAL ORDER — the classic
// mistake of assuming cross-sender FIFO. The default schedule happens to
// deliver blocks in rank order, so sampling passes; an alternative match
// (or dispatch) order permutes the result and the explorer convicts it
// with a replayable certificate.
func BrokenAllreduce(nodes, ppn, blockElems int) Program {
	return Program{
		Name: fmt.Sprintf("broken-allreduce-%dx%d-%de", nodes, ppn, blockElems),
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			w := newWorld(nodes, ppn, nil)
			n := nodes * ppn
			elems := n * blockElems
			block := blockElems * nums.F64Size
			outs := make([]outcome, n)
			want := serialSum(worldRanks(n), elems)
			body := func(r *mpi.Rank) {
				me := r.Rank()
				send := make([]byte, elems*nums.F64Size)
				recv := make([]byte, elems*nums.F64Size)
				nums.Fill(send, me)
				outs[me].err = mpi.Try(func() {
					coll.ReduceScatterBlock(coll.World(r), send, recv[me*block:(me+1)*block], nums.Sum)
					window := int(r.NextEpoch()) << 24
					if me == 0 {
						for i := 1; i < n; i++ {
							// BUG: slot i is the i-th ARRIVAL, not the sender's
							// block id — correct code would probe for the source
							// or use per-source tags.
							r.Recv(mpi.AnySource, window, recv[i*block:(i+1)*block])
						}
						for dst := 1; dst < n; dst++ {
							r.Send(dst, window+1, recv)
						}
					} else {
						r.Send(0, window, recv[me*block:(me+1)*block])
						r.Recv(0, window+1, recv)
					}
				})
				outs[me].out = recv
				outs[me].done = true
			}
			return w, body, checkOutcomes(nil, outs, want)
		},
	}
}

// AgreeShrink drives one Agree / Shrink / Agree sequence on the world
// communicator. The pinned property is lockstep: every rank that completes
// reports an identical transcript (agreed value, ok flag, survivor set,
// post-shrink agreement) — fault-free it must equal the serial reference,
// and under any kill timing the survivors must still agree with each other.
func AgreeShrink(nodes, ppn int, kill *fault.KillOp) Program {
	return Program{
		Name: fmt.Sprintf("agree-shrink-%dx%d", nodes, ppn),
		Kill: kill,
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			w := newWorld(nodes, ppn, kill)
			n := nodes * ppn
			outs := make([]outcome, n)
			allBits := uint64(1)<<n - 1
			want := []byte(fmt.Sprintf("v=%x ok=true survivors=%v v2=%x ok2=true",
				^allBits, worldRanks(n), allBits))
			body := func(r *mpi.Rank) {
				me := r.Rank()
				outs[me].err = mpi.Try(func() {
					c := mpi.WorldComm(r)
					// Contribute ^0 with our own bit cleared: the AND ends up
					// with exactly the non-contributors' bits set.
					v, ok := c.Agree(^uint64(0) &^ (1 << uint(me)))
					nc := c.Shrink()
					var mask uint64
					for _, wr := range nc.WorldRanks() {
						mask |= 1 << wr
					}
					v2, ok2 := nc.Agree(mask)
					outs[me].out = []byte(fmt.Sprintf("v=%x ok=%v survivors=%v v2=%x ok2=%v",
						v, ok, nc.WorldRanks(), v2, ok2))
				})
				outs[me].done = true
			}
			check := func(w *mpi.World, runErr error) error {
				if kill == nil {
					return checkOutcomes(nil, outs, want)(w, runErr)
				}
				if err := checkOutcomes(kill, outs, nil)(w, runErr); err != nil {
					return err
				}
				var ref []byte
				for r := range outs {
					o := outs[r]
					if r == kill.Rank || !o.done || o.err != nil {
						continue
					}
					if ref == nil {
						ref = o.out
					} else if !bytes.Equal(o.out, ref) {
						return fmt.Errorf("agreement broke lockstep: rank %d says %q, earlier survivor says %q",
							r, o.out, ref)
					}
				}
				return nil
			}
			return w, body, check
		},
	}
}

// RecoverAllreduce wraps the ring allreduce in the shrink-and-retry
// recovery loop: under any kill timing, every rank that completes recovery
// must land on the same shrunk membership and hold the serial sum over
// exactly that membership, bit-exact.
func RecoverAllreduce(nodes, ppn, elems int, kill *fault.KillOp) Program {
	return Program{
		Name: fmt.Sprintf("recover-allreduce-%dx%d-%de", nodes, ppn, elems),
		Kill: kill,
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			w := newWorld(nodes, ppn, kill)
			n := nodes * ppn
			outs := make([]outcome, n)
			members := make([][]int, n)
			body := func(r *mpi.Rank) {
				me := r.Rank()
				send := make([]byte, elems*nums.F64Size)
				recv := make([]byte, elems*nums.F64Size)
				final, _, err := recovery.RunWithRecovery(mpi.WorldComm(r), func(c *mpi.Comm) error {
					nums.Fill(send, me)
					return mpi.Try(func() {
						coll.AllreduceRing(coll.CommView(c), send, recv, nums.Sum)
					})
				}, n)
				if err == nil {
					members[me] = final.WorldRanks()
				}
				outs[me].out, outs[me].err, outs[me].done = recv, err, true
			}
			check := func(w *mpi.World, runErr error) error {
				if err := checkOutcomes(kill, outs, nil)(w, runErr); err != nil {
					return err
				}
				var refMembers []int
				for r := range outs {
					o := outs[r]
					if (kill != nil && r == kill.Rank) || !o.done || o.err != nil {
						continue
					}
					if refMembers == nil {
						refMembers = members[r]
					} else if fmt.Sprint(members[r]) != fmt.Sprint(refMembers) {
						return fmt.Errorf("recovery diverged: rank %d on members %v, earlier survivor on %v",
							r, members[r], refMembers)
					}
					if want := serialSum(members[r], elems); !bytes.Equal(o.out, want) {
						return fmt.Errorf("rank %d recovered result differs from serial sum over %v",
							r, members[r])
					}
				}
				return nil
			}
			return w, body, check
		},
	}
}

// defaultChooser drives a counting baseline run: always the default pick.
type defaultChooser struct{}

func (defaultChooser) Choose(simtime.ChoiceKind, []simtime.Cand) int { return 0 }

// KillVariants enumerates every op-boundary kill scenario for a program
// family: it runs the fault-free variant once under the default schedule to
// count each rank's operation boundaries, then builds one Program per
// (rank, boundary, before/after). Boundary counts are taken from the
// default schedule; a kill index past another schedule's count simply never
// fires there (the rank survives), which the kill contract already covers.
func KillVariants(mk func(*fault.KillOp) Program) ([]Program, error) {
	base := mk(nil)
	w, body, _ := base.Build()
	w.SetChooser(defaultChooser{})
	if err := w.Run(body); err != nil {
		return nil, fmt.Errorf("mc: baseline run of %q failed: %w", base.Name, err)
	}
	var out []Program
	for r, ops := range w.OpCounts() {
		for op := 0; op < ops; op++ {
			for _, after := range []bool{false, true} {
				kill := &fault.KillOp{Rank: r, Op: op, After: after}
				p := mk(kill)
				p.Name = fmt.Sprintf("%s/%s", p.Name, killClause(kill))
				out = append(out, p)
			}
		}
	}
	return out, nil
}
