// Package mc is the model-checking harness: it runs a program on a small
// simulated world under a controlled scheduler, systematically enumerating
// every nondeterministic choice point — dispatch ties, wildcard-receive
// match selection, timeout races, kill timing — and asserts that every
// interleaving either yields the serial-reference result bit-exact or
// terminates with a typed failure. A program that survives exhaustive
// exploration is proved correct on that world, not merely unfalsified by
// sampled seeds.
//
// Exploration is stateless depth-first search over the choice tree: each
// run re-executes the program from scratch with a forced prefix of picks
// and defaults (pick 0) beyond it, then expands alternatives only at choice
// points past the prefix — every forced prefix is therefore visited exactly
// once. Dispatch-tie alternatives are pruned with a dynamic
// partial-order-reduction argument: the engine records, per dispatch slice,
// the synchronization objects the slice touched (its footprint), and an
// alternative "run candidate j first" is explored only when j's slice is
// dependent — overlapping footprints, or a slice that mutated its own tie
// group — with some candidate ordered before it. Independent reorderings
// commute and are provably covered by the default order. Match, timeout and
// kill alternatives are never pruned; they produce genuinely different
// outcomes, not reorderings.
//
// Every violating interleaving is reported as a schedule certificate (see
// cert.go) that replays the failure exactly, optionally shrunk first by a
// delta-debugging minimizer.
package mc

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// CheckFn judges one finished run: the world after Run and Run's error go
// in; nil comes out when the interleaving met the program's contract, and a
// descriptive error when it did not (wrong bytes, silent wedge, untyped
// failure).
type CheckFn func(w *mpi.World, runErr error) error

// Program is one model-checking target: a factory producing a fresh world,
// rank body and checker per run (exploration re-executes it once per
// schedule), plus the op-boundary kill scenario it runs under, if any.
type Program struct {
	Name  string
	Kill  *fault.KillOp
	Build func() (*mpi.World, func(*mpi.Rank), CheckFn)
}

// Options tune an exploration.
type Options struct {
	// Naive disables partial-order reduction: every alternative at every
	// choice point is explored. Ground truth for pruning-soundness tests.
	Naive bool
	// MaxSchedules bounds the number of executed runs (0 = unlimited). An
	// exploration stopped by the bound reports Truncated — its guarantees
	// cover only the visited prefix of the tree.
	MaxSchedules int
	// MaxViolations stops the search after this many violations (0 =
	// unlimited); 1 gives counterexample-finding mode.
	MaxViolations int
	// Minimize delta-debugs each reported violation to a 1-minimal
	// certificate before returning it.
	Minimize bool
	// Metrics, when set, receives the exploration counters (mc.schedules,
	// mc.pruned, mc.violations).
	Metrics *obs.Registry
}

// Stats summarizes one exploration.
type Stats struct {
	// Schedules is the number of interleavings executed, including runs
	// spent minimizing violations.
	Schedules int
	// Pruned counts alternatives partial-order reduction proved redundant.
	Pruned int
	// Violations counts interleavings that broke the program's contract.
	Violations int
	// Truncated reports that a budget (MaxSchedules/MaxViolations) stopped
	// the search before the choice tree was exhausted.
	Truncated bool
}

// Violation is one interleaving that broke the program's contract.
type Violation struct {
	// Certificate replays the violating schedule exactly.
	Certificate string
	// Minimized is the delta-debugged 1-minimal certificate (set only under
	// Options.Minimize; it replays a violation too, not necessarily an
	// identical error message).
	Minimized string
	// Err describes what went wrong.
	Err error
}

// node is one choice point observed during a run.
type node struct {
	kind  simtime.ChoiceKind
	n     int   // arity
	k     int   // pick taken
	slice int   // engine slice index at choose time (= chosen cand's slice)
	procs []int // ChooseTie candidate process ids, in candidate order
}

// runChooser forces a pick prefix and records every choice point. Beyond
// the prefix it picks the default (0). A prefix entry that no longer fits
// the run (kind/arity drift after a program change) marks the run diverged
// and falls back to the default rather than crashing the engine.
type runChooser struct {
	prefix   []pick
	kill     *fault.KillOp
	eng      *simtime.Engine
	nodes    []node
	diverged bool
}

func (c *runChooser) Choose(kind simtime.ChoiceKind, cands []simtime.Cand) int {
	i := len(c.nodes)
	k := 0
	if i < len(c.prefix) {
		if p := c.prefix[i]; p.kind == kind && p.n == len(cands) {
			k = p.k
		} else {
			c.diverged = true
		}
	}
	nd := node{kind: kind, n: len(cands), k: k, slice: len(c.eng.Slices())}
	if kind == simtime.ChooseTie {
		nd.procs = make([]int, len(cands))
		for j, cd := range cands {
			nd.procs[j] = cd.Proc
		}
	}
	c.nodes = append(c.nodes, nd)
	return k
}

// Certificate renders the decisions taken so far — the engine attaches it
// to typed failures raised mid-run (simtime.Certifier).
func (c *runChooser) Certificate() string { return formatCert(c.kill, picksOf(c.nodes)) }

func picksOf(nodes []node) []pick {
	out := make([]pick, len(nodes))
	for i, nd := range nodes {
		out[i] = pick{kind: nd.kind, k: nd.k, n: nd.n}
	}
	return out
}

// runResult is one executed interleaving.
type runResult struct {
	nodes     []node
	slices    []simtime.SliceInfo
	violation error
	diverged  bool
}

// explorer carries one exploration's state.
type explorer struct {
	prog Program
	opt  Options
	st   Stats
}

// runOne executes the program once under the forced prefix.
func (x *explorer) runOne(prefix []pick) *runResult {
	w, body, check := x.prog.Build()
	ch := &runChooser{prefix: prefix, kill: x.prog.Kill, eng: w.Engine()}
	w.SetChooser(ch)
	err := w.Run(body)
	x.st.Schedules++
	return &runResult{
		nodes:     ch.nodes,
		slices:    w.Engine().Slices(),
		violation: check(w, err),
		diverged:  ch.diverged,
	}
}

// sliceFor maps candidate j of a tie node to its dispatch slice: the first
// slice of that process at or after the choice point. Nil (not found — the
// run ended before the candidate dispatched) is treated as dependent.
func sliceFor(nd node, slices []simtime.SliceInfo, j int) *simtime.SliceInfo {
	for i := nd.slice; i < len(slices); i++ {
		if slices[i].Proc == nd.procs[j] {
			return &slices[i]
		}
	}
	return nil
}

// dependent reports whether two dispatch slices may not commute: either
// mutated its own tie group (Joined), or their synchronization-object
// footprints overlap. Footprints are small sorted-by-first-touch id lists;
// quadratic scan beats allocating sets at these sizes.
func dependent(a, b *simtime.SliceInfo) bool {
	if a == nil || b == nil || a.Joined || b.Joined {
		return true
	}
	for _, x := range a.Objs {
		for _, y := range b.Objs {
			if x == y {
				return true
			}
		}
	}
	return false
}

// expand returns which alternatives (1..n-1) of a choice point to explore.
func (x *explorer) expand(nd node, res *runResult) []int {
	all := make([]int, 0, nd.n-1)
	for j := 1; j < nd.n; j++ {
		all = append(all, j)
	}
	if x.opt.Naive || nd.kind != simtime.ChooseTie {
		return all // match/timeout/kill choices are real branches, never pruned
	}
	sl := make([]*simtime.SliceInfo, nd.n)
	for j := range sl {
		sl[j] = sliceFor(nd, res.slices, j)
	}
	out := all[:0]
	for j := 1; j < nd.n; j++ {
		for i := 0; i < j; i++ {
			if dependent(sl[i], sl[j]) {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// Explore runs the program under every (non-pruned) interleaving, depth
// first, and returns the exploration stats and any violations found. The
// error return reports infrastructure failures only (never a program
// violation).
func Explore(prog Program, opt Options) (Stats, []Violation, error) {
	x := &explorer{prog: prog, opt: opt}
	stack := [][]pick{nil} // DFS frontier of forced prefixes; nil = default run
	var viols []Violation
	for len(stack) > 0 {
		if opt.MaxSchedules > 0 && x.st.Schedules >= opt.MaxSchedules {
			x.st.Truncated = true
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res := x.runOne(prefix)
		if res.violation != nil {
			x.st.Violations++
			v := Violation{Certificate: formatCert(prog.Kill, picksOf(res.nodes)), Err: res.violation}
			if opt.Minimize {
				v.Minimized = formatCert(prog.Kill, x.minimize(picksOf(res.nodes)))
			}
			viols = append(viols, v)
			if opt.MaxViolations > 0 && len(viols) >= opt.MaxViolations {
				x.st.Truncated = x.st.Truncated || len(stack) > 0
				break
			}
		}
		// Expand alternatives at choice points past the forced prefix; the
		// prefix's own nodes were expanded by the ancestor run that forced
		// them.
		for i := len(prefix); i < len(res.nodes); i++ {
			nd := res.nodes[i]
			alts := x.expand(nd, res)
			for _, j := range alts {
				np := make([]pick, i+1)
				copy(np, picksOf(res.nodes[:i]))
				np[i] = pick{kind: nd.kind, k: j, n: nd.n}
				stack = append(stack, np)
			}
			x.st.Pruned += nd.n - 1 - len(alts)
		}
	}
	if reg := opt.Metrics; reg != nil {
		reg.Counter(obs.MetricMCSchedules).Add(int64(x.st.Schedules))
		reg.Counter(obs.MetricMCPruned).Add(int64(x.st.Pruned))
		reg.Counter(obs.MetricMCViolations).Add(int64(x.st.Violations))
	}
	return x.st, viols, nil
}

// CertKill extracts a certificate's kill clause (nil when fault-free), so
// drivers can rebuild the right program variant before Replay.
func CertKill(cert string) (*fault.KillOp, error) {
	kill, _, err := ParseCertificate(cert)
	return kill, err
}

// sameKill reports whether two kill scenarios are the same (both nil, or
// equal).
func sameKill(a, b *fault.KillOp) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// Replay runs the program once under the certificate's forced schedule and
// returns the check's verdict: nil when the interleaving met the contract,
// the violation otherwise. The second return reports replay problems — a
// malformed certificate, a kill clause that does not match the program, or
// a schedule that diverged (the program changed since the certificate was
// recorded).
func Replay(prog Program, cert string) (violation error, err error) {
	kill, picks, err := ParseCertificate(cert)
	if err != nil {
		return nil, err
	}
	if !sameKill(kill, prog.Kill) {
		return nil, fmt.Errorf("mc: certificate kill clause %q does not match program %q (%s)",
			killClause(kill), prog.Name, killClause(prog.Kill))
	}
	x := &explorer{prog: prog}
	res := x.runOne(picks)
	if res.diverged {
		return nil, fmt.Errorf("mc: schedule diverged — certificate %q no longer fits program %q", cert, prog.Name)
	}
	return res.violation, nil
}

// MinimizeViolation delta-debugs a violating certificate to a 1-minimal
// one. It fails if the certificate does not reproduce a violation.
func MinimizeViolation(prog Program, cert string) (string, error) {
	kill, picks, err := ParseCertificate(cert)
	if err != nil {
		return "", err
	}
	if !sameKill(kill, prog.Kill) {
		return "", fmt.Errorf("mc: certificate kill clause %q does not match program %q",
			killClause(kill), prog.Name)
	}
	x := &explorer{prog: prog}
	if res := x.runOne(picks); res.violation == nil {
		return "", fmt.Errorf("mc: certificate %q does not violate program %q", cert, prog.Name)
	}
	return formatCert(prog.Kill, x.minimize(picks)), nil
}
