package mc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// explore is the test shorthand for an unbounded exhaustive exploration.
func explore(t *testing.T, p Program, opt Options) (Stats, []Violation) {
	t.Helper()
	st, viols, err := Explore(p, opt)
	if err != nil {
		t.Fatalf("%s: Explore: %v", p.Name, err)
	}
	return st, viols
}

// requireClean asserts an exhaustive, violation-free exploration.
func requireClean(t *testing.T, p Program, opt Options) Stats {
	t.Helper()
	st, viols := explore(t, p, opt)
	for _, v := range viols {
		t.Errorf("%s: violation %s: %v", p.Name, v.Certificate, v.Err)
	}
	if st.Truncated {
		t.Errorf("%s: exploration truncated after %d schedules (not a proof)", p.Name, st.Schedules)
	}
	if st.Schedules < 1 {
		t.Errorf("%s: no schedules executed", p.Name)
	}
	return st
}

// TestExhaustiveFaultFree proves the fault-free collectives correct on every
// interleaving of the small worlds: all schedules executed, none truncated,
// zero violations.
func TestExhaustiveFaultFree(t *testing.T) {
	progs := []Program{
		Barrier(1, 2, nil), Barrier(1, 3, nil), Barrier(1, 4, nil), Barrier(2, 2, nil),
		Bcast(1, 4, 64, nil), Bcast(2, 2, 64, nil),
		Allreduce(1, 4, 4, nil), Allreduce(2, 2, 4, nil),
		AgreeShrink(1, 4, nil), AgreeShrink(2, 2, nil),
		RecoverAllreduce(1, 3, 4, nil),
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			requireClean(t, p, Options{})
		})
	}
}

// TestMultipleSchedulesExplored pins that exploration actually branches:
// a 3-rank barrier has ties, so more than one interleaving must run.
func TestMultipleSchedulesExplored(t *testing.T) {
	st := requireClean(t, Barrier(1, 3, nil), Options{})
	if st.Schedules < 2 {
		t.Fatalf("barrier-1x3 explored %d schedules, want >= 2", st.Schedules)
	}
}

// TestDPORPruningSpeedup asserts the partial-order reduction is worth at
// least 5x over naive enumeration on the ring allreduce, while reaching the
// same verdict (no violations either way).
func TestDPORPruningSpeedup(t *testing.T) {
	p := Allreduce(2, 2, 4, nil)
	dpor := requireClean(t, p, Options{})
	naive := requireClean(t, p, Options{Naive: true})
	if naive.Schedules < 5*dpor.Schedules {
		t.Fatalf("DPOR %d schedules vs naive %d: speedup %.1fx, want >= 5x",
			dpor.Schedules, naive.Schedules, float64(naive.Schedules)/float64(dpor.Schedules))
	}
	if dpor.Pruned == 0 {
		t.Fatal("DPOR pruned nothing")
	}
	if naive.Pruned != 0 {
		t.Fatalf("naive mode pruned %d alternatives, want 0", naive.Pruned)
	}
}

// TestExploreMetrics checks the exploration counters land in the registry
// under the shared metric names.
func TestExploreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	st := requireClean(t, Barrier(1, 3, nil), Options{Metrics: reg})
	if got := reg.Counter(obs.MetricMCSchedules).Value(); got != int64(st.Schedules) {
		t.Errorf("mc.schedules = %d, want %d", got, st.Schedules)
	}
	if got := reg.Counter(obs.MetricMCPruned).Value(); got != int64(st.Pruned) {
		t.Errorf("mc.pruned = %d, want %d", got, st.Pruned)
	}
	if got := reg.Counter(obs.MetricMCViolations).Value(); got != 0 {
		t.Errorf("mc.violations = %d, want 0", got)
	}
}

// TestExhaustiveOneKill sweeps every op-boundary kill timing of every rank
// for the core collectives and explores each scenario exhaustively: every
// interleaving must end in a typed failure or a bit-exact result on the
// completing ranks.
func TestExhaustiveOneKill(t *testing.T) {
	families := []struct {
		name string
		mk   func(*fault.KillOp) Program
		min  int // variant-count floor so a counting regression can't hollow out the sweep
	}{
		{"barrier-2x2", func(k *fault.KillOp) Program { return Barrier(2, 2, k) }, 16},
		{"bcast-1x4", func(k *fault.KillOp) Program { return Bcast(1, 4, 64, k) }, 8},
		{"allreduce-2x2", func(k *fault.KillOp) Program { return Allreduce(2, 2, 4, k) }, 32},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			variants, err := KillVariants(f.mk)
			if err != nil {
				t.Fatal(err)
			}
			if len(variants) < f.min {
				t.Fatalf("%d kill variants, want >= %d", len(variants), f.min)
			}
			for _, p := range variants {
				requireClean(t, p, Options{})
			}
		})
	}
}

// TestAgreeShrinkKillSweep is the ULFM agreement pin: Agree/Shrink/Agree
// explored under ALL mid-round kill timings on 4-rank worlds, with the
// check asserting every completing rank reports an identical transcript
// (survivors in lockstep).
func TestAgreeShrinkKillSweep(t *testing.T) {
	for _, shape := range []struct{ nodes, ppn int }{{1, 4}, {2, 2}, {1, 3}} {
		variants, err := KillVariants(func(k *fault.KillOp) Program {
			return AgreeShrink(shape.nodes, shape.ppn, k)
		})
		if err != nil {
			t.Fatal(err)
		}
		// Three agreement arrivals per rank, each killable before and after.
		if want := shape.nodes * shape.ppn * 3 * 2; len(variants) != want {
			t.Fatalf("%dx%d: %d kill variants, want %d", shape.nodes, shape.ppn, len(variants), want)
		}
		for _, p := range variants {
			requireClean(t, p, Options{})
		}
	}
}

// TestRecoverAllreduceKillSweep proves the shrink-and-retry loop delivers
// the serial sum over the agreed survivor set under every kill timing.
func TestRecoverAllreduceKillSweep(t *testing.T) {
	variants, err := KillVariants(func(k *fault.KillOp) Program {
		return RecoverAllreduce(1, 3, 4, k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) == 0 {
		t.Fatal("no kill variants")
	}
	for _, p := range variants {
		requireClean(t, p, Options{})
	}
}

// TestPlantedBugConvicted is the end-to-end counterexample story: the
// arrival-indexed gather passes the default schedule (so replay/goldens and
// naive testing would miss it), the explorer convicts it, the minimized
// certificate is 1-minimal, and Replay reproduces the violation from the
// certificate string alone.
func TestPlantedBugConvicted(t *testing.T) {
	p := BrokenAllreduce(1, 4, 2)

	if res := (&explorer{prog: p}).runOne(nil); res.violation != nil {
		t.Fatalf("planted bug fails on the default schedule (%v) — it must only fail on reordered schedules", res.violation)
	}

	st, viols := explore(t, p, Options{MaxViolations: 1, Minimize: true})
	if len(viols) != 1 {
		t.Fatalf("explorer found %d violations, want 1 (stats %+v)", len(viols), st)
	}
	v := viols[0]
	if v.Minimized == "" {
		t.Fatal("no minimized certificate")
	}

	// The certificate alone must reproduce the violation.
	for _, cert := range []string{v.Certificate, v.Minimized} {
		viol, err := Replay(p, cert)
		if err != nil {
			t.Fatalf("Replay(%s): %v", cert, err)
		}
		if viol == nil {
			t.Fatalf("Replay(%s) did not reproduce the violation", cert)
		}
	}

	// 1-minimality: resetting any single remaining non-default pick loses it.
	_, picks, err := ParseCertificate(v.Minimized)
	if err != nil {
		t.Fatal(err)
	}
	x := &explorer{prog: p}
	for i := range picks {
		if picks[i].k == 0 {
			continue
		}
		cand := append([]pick(nil), picks...)
		cand[i].k = 0
		if res := x.runOne(cand); res.violation != nil && !res.diverged {
			t.Errorf("minimized certificate is not 1-minimal: zeroing pick %d still violates", i)
		}
	}

	// MinimizeViolation on the un-minimized certificate agrees.
	min2, err := MinimizeViolation(p, v.Certificate)
	if err != nil {
		t.Fatal(err)
	}
	if viol, err := Replay(p, min2); err != nil || viol == nil {
		t.Fatalf("MinimizeViolation result %q does not replay a violation (viol=%v err=%v)", min2, viol, err)
	}
}

// deadlockProg wedges by construction: rank 0 receives a message nobody
// sends. The contract for this program is that the wedge surfaces as a
// typed, certificate-carrying DeadlockError — never a silent hang.
func deadlockProg() Program {
	return Program{
		Name: "deadlock-probe",
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			w := mpi.MustNewWorld(topology.New(1, 2, topology.Block), mpi.DefaultConfig())
			body := func(r *mpi.Rank) {
				if r.Rank() == 0 {
					buf := make([]byte, 8)
					r.Recv(1, 7, buf)
				}
			}
			check := func(w *mpi.World, runErr error) error { return runErr }
			return w, body, check
		},
	}
}

// TestDeadlockCertified asserts a wedged interleaving is reported as a
// DeadlockError carrying a parseable schedule certificate.
func TestDeadlockCertified(t *testing.T) {
	_, viols := explore(t, deadlockProg(), Options{})
	if len(viols) == 0 {
		t.Fatal("deadlock program produced no violations")
	}
	for _, v := range viols {
		var de *mpi.DeadlockError
		if !errors.As(v.Err, &de) {
			t.Fatalf("violation is %T (%v), want *mpi.DeadlockError", v.Err, v.Err)
		}
		if !strings.HasPrefix(de.Schedule, certVersion+";") {
			t.Fatalf("deadlock schedule certificate %q lacks %s prefix", de.Schedule, certVersion)
		}
		if _, _, err := ParseCertificate(de.Schedule); err != nil {
			t.Fatalf("deadlock certificate does not parse: %v", err)
		}
	}
}

// timeoutProg makes OpTimeout a real race: rank 1 computes past the
// deadline before sending, rank 0 receives with a timeout. Under
// exploration the fire-or-block outcome is an enumerated choice, so both
// interleavings must appear: one completing normally, one failing with a
// certified TimeoutError.
func timeoutProg(sawTimeout, sawOK *int) Program {
	return Program{
		Name: "timeout-probe",
		Build: func() (*mpi.World, func(*mpi.Rank), CheckFn) {
			cfg := mpi.DefaultConfig()
			cfg.OpTimeout = simtime.Millisecond
			w := mpi.MustNewWorld(topology.New(1, 2, topology.Block), cfg)
			body := func(r *mpi.Rank) {
				buf := make([]byte, 8)
				if r.Rank() == 0 {
					r.Recv(1, 7, buf)
				} else {
					r.Proc().Advance(2 * simtime.Millisecond)
					r.Send(0, 7, buf)
				}
			}
			check := func(w *mpi.World, runErr error) error {
				var te *mpi.TimeoutError
				switch {
				case runErr == nil:
					*sawOK++
					return nil
				case errors.As(runErr, &te):
					*sawTimeout++
					if _, _, err := ParseCertificate(te.Schedule); err != nil {
						return err
					}
					return nil
				default:
					return runErr
				}
			}
			return w, body, check
		},
	}
}

// TestTimeoutEnumerated asserts both outcomes of an armed OpTimeout are
// explored — the optimistic block that completes and the certified timeout.
func TestTimeoutEnumerated(t *testing.T) {
	var sawTimeout, sawOK int
	requireClean(t, timeoutProg(&sawTimeout, &sawOK), Options{})
	if sawTimeout == 0 || sawOK == 0 {
		t.Fatalf("timeout race not fully explored: %d timeout runs, %d clean runs", sawTimeout, sawOK)
	}
}

// TestKillVariantsShape checks the enumeration: one variant per (rank,
// boundary, before/after) with the kill clause in the name and the kill
// wired into the program.
func TestKillVariantsShape(t *testing.T) {
	variants, err := KillVariants(func(k *fault.KillOp) Program { return Bcast(1, 4, 64, k) })
	if err != nil {
		t.Fatal(err)
	}
	if len(variants)%2 != 0 {
		t.Fatalf("%d variants, want before/after pairs", len(variants))
	}
	seen := map[string]bool{}
	for _, p := range variants {
		if p.Kill == nil {
			t.Fatalf("variant %s lost its kill", p.Name)
		}
		kc := killClause(p.Kill)
		if !strings.HasSuffix(p.Name, kc) {
			t.Errorf("variant name %q does not end in kill clause %q", p.Name, kc)
		}
		if seen[kc] {
			t.Errorf("duplicate kill variant %s", kc)
		}
		seen[kc] = true
	}
}

// TestBoundedBudget checks MaxSchedules truncates and says so.
func TestBoundedBudget(t *testing.T) {
	st, _ := explore(t, Allreduce(1, 4, 4, nil), Options{MaxSchedules: 10})
	if !st.Truncated {
		t.Fatal("bounded exploration not marked truncated")
	}
	if st.Schedules > 10 {
		t.Fatalf("budget of 10 ran %d schedules", st.Schedules)
	}
}
