package simtime

import "fmt"

// Schedule memoization: a fault-free simulation's event DAG is fixed by its
// inputs — every wakeup either exists before the first dispatch (a spawn) or
// is posted while exactly one process runs, at a time offset determined by
// the calibrated cost models. Recording captures that DAG during one live
// Run; Schedule replays it as a goroutine-free walk over the same typed
// 4-ary event heap, re-charging each recorded cost term without parking or
// waking a single goroutine. Replay is verified bit-identical in virtual
// time: every popped event is checked against the recorded dispatch stream,
// so a divergence (a schedule replayed against the wrong shape, or a model
// change since recording) fails loudly instead of fabricating timings.
//
// The soundness argument is the engine's one-pending-wakeup-per-process
// invariant (see Engine.post): events carry no identity beyond (t, seq), seq
// is assigned in posting order, and the heap pops a total order over
// (t, seq) — so pushing the recorded seeds in recorded order and, after the
// k-th pop, the k-th dispatch's recorded edges in recorded order reproduces
// the live run's pop sequence exactly, by induction on dispatch count.
//
// Anything that breaks the DAG's determinism taints the recording instead of
// silently mis-replaying: cancellable timers (deadline-bounded waits may
// race their wakeup), Engine.Fail, and quiescence-handler activity (both are
// fault-model machinery). Layers above add their own static gates — see
// mpi.(*World).Record.

// Recording accumulates a live run's event DAG. Attach one with
// Engine.Record before Run, then call Schedule after a successful Run.
type Recording struct {
	e       *Engine
	started bool   // first dispatch seen; earlier posts are seeds
	taint   string // first taint reason; non-empty voids the recording
	curT    Time   // event time of the dispatch currently executing

	seeds     []Time     // pre-run spawn events, in posting (seq) order
	dispatchT []Time     // event time of every dispatch, in pop order
	edgeStart []int32    // per-dispatch offsets into edgeDelta
	edgeDelta []Duration // post time minus dispatch time, in posting order
	marks     []Time     // caller-recorded instants (see Mark)
	maxQueue  int        // peak heap occupancy, to presize replay heaps
}

// Record attaches a fresh Recording to the engine. It must be called before
// Run, and refuses engines with a quiescence handler installed: quiescence
// handlers exist to inject failures, whose timing is not part of the static
// DAG.
func (e *Engine) Record() (*Recording, error) {
	if e.running || e.dispatched > 0 {
		return nil, fmt.Errorf("simtime: Record after Run started")
	}
	if e.quiesce != nil {
		return nil, fmt.Errorf("simtime: Record on an engine with a quiescence handler")
	}
	if e.chooser != nil {
		return nil, fmt.Errorf("simtime: Record on an engine with a chooser (schedule exploration)")
	}
	r := &Recording{e: e}
	e.rec = r
	return r, nil
}

// post records one wakeup. timer marks cancellable timer events, which may
// be withdrawn by a racing wakeup and therefore void the recording.
func (r *Recording) post(t Time, timer bool) {
	if timer {
		r.Taint("cancellable timer posted (deadline-bounded wait)")
	}
	if r.taint != "" {
		return
	}
	if n := len(r.e.events); n > r.maxQueue {
		r.maxQueue = n
	}
	if !r.started {
		r.seeds = append(r.seeds, t)
		return
	}
	r.edgeDelta = append(r.edgeDelta, t.Sub(r.curT))
}

// dispatch records the engine popping one event; posts until the next
// dispatch are its edges.
func (r *Recording) dispatch(t Time) {
	if r.taint != "" {
		return
	}
	r.started = true
	r.curT = t
	r.dispatchT = append(r.dispatchT, t)
	r.edgeStart = append(r.edgeStart, int32(len(r.edgeDelta)))
}

// Mark appends a caller-chosen virtual instant to the recording — the hook
// measurement harnesses use to carry per-iteration boundaries into the
// schedule. Because replay is bit-identical in virtual time, the recorded
// instants are the replayed instants; no recovery pass is needed.
func (r *Recording) Mark(t Time) {
	if r.taint == "" {
		r.marks = append(r.marks, t)
	}
}

// Taint voids the recording with a reason (the first one sticks). The
// engine calls it for dynamic determinism hazards; layers above may call it
// for their own (e.g. a data-dependent branch they cannot prove fixed).
func (r *Recording) Taint(reason string) {
	if r.taint == "" {
		r.taint = reason
		// Release the partial DAG eagerly: a tainted recording never
		// becomes a Schedule, and long runs record millions of edges.
		r.seeds, r.dispatchT, r.edgeStart, r.edgeDelta, r.marks = nil, nil, nil, nil, nil
	}
}

// Tainted returns the first taint reason, or "".
func (r *Recording) Tainted() string { return r.taint }

// Schedule finalizes the recording into an immutable, replayable Schedule.
// It fails if the recording was tainted or the run did not complete cleanly
// (every process finished and the heap drained).
func (r *Recording) Schedule() (*Schedule, error) {
	e := r.e
	if r.taint != "" {
		return nil, fmt.Errorf("simtime: recording tainted: %s", r.taint)
	}
	if e.running {
		return nil, fmt.Errorf("simtime: Schedule during Run")
	}
	if e.failure != nil || e.done != len(e.procs) || len(e.events) != 0 {
		return nil, fmt.Errorf("simtime: Schedule of an incomplete run")
	}
	if int64(len(r.dispatchT)) != e.dispatched {
		return nil, fmt.Errorf("simtime: recording saw %d dispatches, engine made %d",
			len(r.dispatchT), e.dispatched)
	}
	// A process may advance its clock after its last wakeup (trailing
	// compute); the engine folds that into the horizon at process exit, so
	// the replayed horizon needs the exit clocks alongside the pop stream.
	var exitMax Time
	for _, p := range e.procs {
		if p.now > exitMax {
			exitMax = p.now
		}
	}
	e.rec = nil
	return &Schedule{
		seeds:     r.seeds,
		dispatchT: r.dispatchT,
		edgeStart: append(r.edgeStart, int32(len(r.edgeDelta))),
		edgeDelta: r.edgeDelta,
		marks:     r.marks,
		horizon:   e.horizon,
		exitMax:   exitMax,
		maxQueue:  r.maxQueue,
	}, nil
}

// Schedule is the immutable, replayable form of one recorded run. It is safe
// for concurrent Replay calls.
type Schedule struct {
	seeds     []Time
	dispatchT []Time
	edgeStart []int32 // len(dispatchT)+1 offsets into edgeDelta
	edgeDelta []Duration
	marks     []Time
	horizon   Time
	exitMax   Time
	maxQueue  int
}

// Events returns the number of dispatches the schedule replays — the same
// count Engine.Dispatches reports for the live run.
func (s *Schedule) Events() int64 { return int64(len(s.dispatchT)) }

// Horizon returns the recorded virtual makespan, which Replay re-derives and
// verifies.
func (s *Schedule) Horizon() Time { return s.horizon }

// Marks returns the instants recorded via Recording.Mark, in call order. The
// returned slice is shared; callers must not modify it.
func (s *Schedule) Marks() []Time { return s.marks }

// ReplayError reports a divergence between a replay walk and its recording —
// a schedule replayed against a mutated model, or a corrupted memo entry.
type ReplayError struct {
	Dispatch int // pop index of the divergence, -1 for end-of-walk checks
	Detail   string
}

func (e *ReplayError) Error() string {
	return fmt.Sprintf("simtime: replay diverged at dispatch %d: %s", e.Dispatch, e.Detail)
}

// Replay walks the schedule goroutine-free: seeds are pushed into a fresh
// event heap, the minimum (t, seq) event is popped, and the popped
// dispatch's recorded edges are pushed at their recorded cost offsets. Every
// pop is verified against the recorded dispatch stream and the re-derived
// horizon against the recorded one, so a successful Replay is a proof of
// bit-identical virtual time, not an assumption. It returns the horizon.
func (s *Schedule) Replay() (Time, error) {
	h := make(eventHeap, 0, s.maxQueue+1)
	var seq uint64
	for _, t := range s.seeds {
		seq++
		h.push(event{t: t, seq: seq})
	}
	var maxT Time
	for k := range s.dispatchT {
		if len(h) == 0 {
			return 0, &ReplayError{Dispatch: k, Detail: "event heap drained early"}
		}
		ev := h.pop()
		if ev.t != s.dispatchT[k] {
			return 0, &ReplayError{Dispatch: k, Detail: fmt.Sprintf(
				"popped t=%v, recorded t=%v", ev.t, s.dispatchT[k])}
		}
		if ev.t > maxT {
			maxT = ev.t
		}
		for _, d := range s.edgeDelta[s.edgeStart[k]:s.edgeStart[k+1]] {
			seq++
			h.push(event{t: ev.t.Add(d), seq: seq})
		}
	}
	if len(h) != 0 {
		return 0, &ReplayError{Dispatch: -1, Detail: fmt.Sprintf(
			"%d events left after the last dispatch", len(h))}
	}
	horizon := maxT
	if s.exitMax > horizon {
		horizon = s.exitMax
	}
	if horizon != s.horizon {
		return 0, &ReplayError{Dispatch: -1, Detail: fmt.Sprintf(
			"replayed horizon %v, recorded %v", horizon, s.horizon)}
	}
	return horizon, nil
}
