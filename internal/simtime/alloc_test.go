package simtime

import (
	"runtime"
	"testing"

	"repro/internal/race"
)

// mallocsDuring runs fn and returns the heap-object allocation delta. The
// engine is sequential (one goroutine runs at a time), so the global
// Mallocs counter attributes cleanly to the simulated work.
func mallocsDuring(fn func()) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	fn()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestParkAllocCeiling pins the steady-state allocation cost of the
// park/resume cycle: two processes ping-pong on a counter, so every
// iteration is one WaitGE park, one resume, and one event dispatch per
// side. The lazy parkReason and the typed event heap make this path
// allocation-free once the heap and waiter slices have grown; the ceiling
// catches any reintroduced fmt.Sprintf or interface boxing.
func TestParkAllocCeiling(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation ceilings are pinned for non-race builds only")
	}
	const iters = 2000
	e := NewEngine()
	a := &Counter{}
	b := &Counter{}
	e.Spawn("ping", func(p *Proc) {
		for i := 1; i <= iters; i++ {
			a.Add(p, 1)
			b.WaitGE(p, uint64(i))
		}
	})
	e.Spawn("pong", func(p *Proc) {
		for i := 1; i <= iters; i++ {
			a.WaitGE(p, uint64(i))
			b.Add(p, 1)
		}
	})

	var allocs uint64
	e.Spawn("meter", func(p *Proc) {
		// Warm up: let slices (event heap, waiter lists) reach steady
		// state before the measured region starts.
		a.WaitGE(p, iters/2)
		allocs = mallocsDuring(func() {
			a.WaitGE(p, iters)
		})
	})
	mustRun(t, e)

	perPark := float64(allocs) / float64(iters) // ~iters parks in the window
	const ceiling = 0.10
	t.Logf("park/resume cycle: %d allocs over ~%d parks = %.3f allocs/park", allocs, iters, perPark)
	if perPark > ceiling {
		t.Fatalf("park/resume allocates %.3f objects per cycle, ceiling %.2f", perPark, ceiling)
	}
}

// TestDispatchCounter checks Engine.Dispatches counts every dispatched
// event exactly once — it is the denominator of every throughput metric.
func TestDispatchCounter(t *testing.T) {
	e := NewEngine()
	const sleeps = 7
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < sleeps; i++ {
			p.Sleep(Nanosecond)
		}
	})
	mustRun(t, e)
	// One dispatch for the spawn wake-up plus one per sleep wake-up.
	if got := e.Dispatches(); got != sleeps+1 {
		t.Fatalf("Dispatches() = %d, want %d", got, sleeps+1)
	}
}
