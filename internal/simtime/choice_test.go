package simtime

import (
	"strings"
	"testing"
)

// scriptChooser forces a fixed pick sequence, then defaults to 0. It records
// every choice point it is offered.
type scriptChooser struct {
	script []int
	seen   []ChoiceKind
	arity  []int
}

func (s *scriptChooser) Choose(kind ChoiceKind, cands []Cand) int {
	i := len(s.seen)
	s.seen = append(s.seen, kind)
	s.arity = append(s.arity, len(cands))
	if i < len(s.script) {
		return s.script[i]
	}
	return 0
}

// tieWorld spawns n processes that all wake at the same instant and append
// their id to order.
func tieWorld(n int, order *[]int) *Engine {
	e := NewEngine()
	for i := 0; i < n; i++ {
		id := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(Duration(100)) // all due at t=100: a guaranteed tie
			*order = append(*order, id)
		})
	}
	return e
}

// TestChooserDefaultPreservesOrder pins that an attached all-zeros chooser
// reproduces the engine's default deterministic schedule exactly.
func TestChooserDefaultPreservesOrder(t *testing.T) {
	var base []int
	if err := tieWorld(3, &base).Run(); err != nil {
		t.Fatal(err)
	}
	var got []int
	e := tieWorld(3, &got)
	c := &scriptChooser{}
	e.SetChooser(c)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(base) != 3 || len(got) != 3 {
		t.Fatalf("order lens: base=%v got=%v", base, got)
	}
	for i := range base {
		if base[i] != got[i] {
			t.Fatalf("default chooser changed schedule: base=%v got=%v", base, got)
		}
	}
	if len(c.seen) == 0 || c.seen[0] != ChooseTie {
		t.Fatalf("expected ChooseTie choice points, saw %v", c.seen)
	}
	// Three processes due at one instant: first point has 3 candidates, the
	// re-formed group has 2.
	if c.arity[0] != 3 || c.arity[1] != 2 {
		t.Fatalf("tie arities = %v, want [3 2]", c.arity)
	}
}

// TestChooserAltTieOrder pins that a non-default tie pick reorders dispatch.
func TestChooserAltTieOrder(t *testing.T) {
	var got []int
	e := tieWorld(3, &got)
	e.SetChooser(&scriptChooser{script: []int{2}}) // run the last-posted first
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("forced pick 2 of tie, dispatch order = %v", got)
	}
}

// TestGetChooseMatchPoint pins that GetChoose offers a ChooseMatch point over
// queued matches and honours the pick, while plain Get stays FIFO.
func TestGetChooseMatchPoint(t *testing.T) {
	run := func(pick int) (val int, c *scriptChooser) {
		e := NewEngine()
		var mb Mailbox
		c = &scriptChooser{script: []int{pick}}
		e.SetChooser(c)
		e.Spawn("w", func(p *Proc) {
			mb.Put(p, 10)
			mb.Put(p, 20)
			mb.Put(p, 30)
			val = mb.GetChoose(p, nil).(int)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return val, c
	}
	v, c := run(0)
	if v != 10 {
		t.Fatalf("pick 0 got %d, want 10", v)
	}
	if len(c.seen) != 1 || c.seen[0] != ChooseMatch || c.arity[0] != 3 {
		t.Fatalf("choice points = %v arity %v, want one ChooseMatch/3", c.seen, c.arity)
	}
	if v, _ := run(2); v != 30 {
		t.Fatalf("pick 2 got %d, want 30", v)
	}
}

// TestSlicesRecordFootprints pins that dispatch slices record touched
// synchronization objects and that disjoint mailboxes get distinct ids.
func TestSlicesRecordFootprints(t *testing.T) {
	e := NewEngine()
	var a, b Mailbox
	e.SetChooser(&scriptChooser{})
	e.Spawn("pa", func(p *Proc) {
		p.Sleep(Duration(10))
		a.Put(p, 1)
	})
	e.Spawn("pb", func(p *Proc) {
		p.Sleep(Duration(10))
		b.Put(p, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	slices := e.Slices()
	if len(slices) == 0 {
		t.Fatal("no slices recorded under chooser")
	}
	// The two post-sleep slices touch one mailbox each, with different ids.
	var objs [][]uint32
	for _, s := range slices {
		if len(s.Objs) > 0 {
			objs = append(objs, s.Objs)
		}
	}
	if len(objs) != 2 || len(objs[0]) != 1 || len(objs[1]) != 1 || objs[0][0] == objs[1][0] {
		t.Fatalf("footprints = %v, want two disjoint single-object slices", objs)
	}
}

// TestRecordRefusesChooser pins that schedule memoization refuses an engine
// under exploration.
func TestRecordRefusesChooser(t *testing.T) {
	e := NewEngine()
	e.SetChooser(&scriptChooser{})
	if _, err := e.Record(); err == nil || !strings.Contains(err.Error(), "chooser") {
		t.Fatalf("Record on chooser engine: err=%v, want chooser refusal", err)
	}
}

type fixedCert string

func (f fixedCert) Choose(ChoiceKind, []Cand) int { return 0 }
func (f fixedCert) Certificate() string           { return string(f) }

// TestDeadlockCarriesSchedule pins that a deadlock under a certifying chooser
// embeds the schedule certificate in the typed error and its message.
func TestDeadlockCarriesSchedule(t *testing.T) {
	e := NewEngine()
	var mb Mailbox
	e.SetChooser(fixedCert("mc1;t1/2"))
	e.Spawn("stuck", func(p *Proc) { mb.Get(p, nil) })
	err := e.Run()
	var d *DeadlockError
	if !asDeadlock(err, &d) {
		t.Fatalf("Run err = %v, want DeadlockError", err)
	}
	if d.Schedule != "mc1;t1/2" {
		t.Fatalf("Schedule = %q", d.Schedule)
	}
	if !strings.Contains(d.Error(), "mc1;t1/2") {
		t.Fatalf("message %q lacks certificate", d.Error())
	}
}

func asDeadlock(err error, out **DeadlockError) bool {
	d, ok := err.(*DeadlockError)
	if ok {
		*out = d
	}
	return ok
}
